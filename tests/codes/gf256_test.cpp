#include "codes/gf256.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fbf::codes {
namespace {

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(Gf256::add(0x53, 0xca), 0x53 ^ 0xca);
  EXPECT_EQ(Gf256::sub(0x53, 0xca), Gf256::add(0x53, 0xca));
  EXPECT_EQ(Gf256::add(0x7f, 0x7f), 0);  // characteristic 2
}

TEST(Gf256, MultiplicationByZeroAndOne) {
  for (int a = 0; a < 256; ++a) {
    const auto e = static_cast<Gf256::Elem>(a);
    EXPECT_EQ(Gf256::mul(e, 0), 0);
    EXPECT_EQ(Gf256::mul(0, e), 0);
    EXPECT_EQ(Gf256::mul(e, 1), e);
    EXPECT_EQ(Gf256::mul(1, e), e);
  }
}

TEST(Gf256, KnownAesProduct) {
  // Classic AES example: 0x53 * 0xca = 0x01.
  EXPECT_EQ(Gf256::mul(0x53, 0xca), 0x01);
  EXPECT_EQ(Gf256::mul(0x02, 0x80), 0x1b);  // reduction by 0x11b
}

TEST(Gf256, MultiplicationCommutesAndAssociates) {
  for (int a = 1; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 11) {
      const auto ea = static_cast<Gf256::Elem>(a);
      const auto eb = static_cast<Gf256::Elem>(b);
      EXPECT_EQ(Gf256::mul(ea, eb), Gf256::mul(eb, ea));
      for (int c = 1; c < 256; c += 63) {
        const auto ec = static_cast<Gf256::Elem>(c);
        EXPECT_EQ(Gf256::mul(Gf256::mul(ea, eb), ec),
                  Gf256::mul(ea, Gf256::mul(eb, ec)));
      }
    }
  }
}

TEST(Gf256, DistributesOverAddition) {
  for (int a = 1; a < 256; a += 13) {
    for (int b = 0; b < 256; b += 17) {
      for (int c = 0; c < 256; c += 19) {
        const auto ea = static_cast<Gf256::Elem>(a);
        const auto eb = static_cast<Gf256::Elem>(b);
        const auto ec = static_cast<Gf256::Elem>(c);
        EXPECT_EQ(Gf256::mul(ea, Gf256::add(eb, ec)),
                  Gf256::add(Gf256::mul(ea, eb), Gf256::mul(ea, ec)));
      }
    }
  }
}

TEST(Gf256, EveryNonZeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto e = static_cast<Gf256::Elem>(a);
    const auto inv = Gf256::inv(e);
    EXPECT_EQ(Gf256::mul(e, inv), 1) << "a=" << a;
    EXPECT_EQ(Gf256::div(1, e), inv);
    EXPECT_EQ(Gf256::div(e, e), 1);
  }
  EXPECT_THROW(Gf256::inv(0), util::CheckError);
  EXPECT_THROW(Gf256::div(5, 0), util::CheckError);
}

TEST(Gf256, GeneratorHasFullOrder) {
  // 0x03 must generate all 255 non-zero elements.
  std::array<bool, 256> seen{};
  Gf256::Elem x = 1;
  for (int i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[x]) << "cycle shorter than 255 at " << i;
    seen[x] = true;
    x = Gf256::mul(x, Gf256::kGenerator);
  }
  EXPECT_EQ(x, 1);  // back to the start after 255 steps
}

TEST(Gf256, PowMatchesRepeatedMultiplication) {
  for (Gf256::Elem base : {Gf256::Elem{2}, Gf256::Elem{3}, Gf256::Elem{29}}) {
    Gf256::Elem acc = 1;
    for (unsigned e = 0; e < 300; ++e) {
      EXPECT_EQ(Gf256::pow(base, e), acc) << "e=" << e;
      acc = Gf256::mul(acc, base);
    }
  }
  EXPECT_EQ(Gf256::pow(0, 0), 1);
  EXPECT_EQ(Gf256::pow(0, 5), 0);
}

TEST(Gf256, MulAddIsFusedMultiplyXor) {
  std::vector<Gf256::Elem> dst{1, 2, 3, 0};
  const std::vector<Gf256::Elem> src{10, 20, 0, 40};
  const Gf256::Elem c = 0x1d;
  auto expected = dst;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    expected[i] = Gf256::add(expected[i], Gf256::mul(c, src[i]));
  }
  Gf256::mul_add(dst, src, c);
  EXPECT_EQ(dst, expected);
}

TEST(Gf256, MulAddSpecialCoefficients) {
  std::vector<Gf256::Elem> dst{5, 6};
  const std::vector<Gf256::Elem> src{9, 9};
  Gf256::mul_add(dst, src, 0);  // no-op
  EXPECT_EQ(dst, (std::vector<Gf256::Elem>{5, 6}));
  Gf256::mul_add(dst, src, 1);  // plain xor
  EXPECT_EQ(dst, (std::vector<Gf256::Elem>{5 ^ 9, 6 ^ 9}));
  std::vector<Gf256::Elem> small{1};
  EXPECT_THROW(Gf256::mul_add(small, src, 1), util::CheckError);
}

}  // namespace
}  // namespace fbf::codes
