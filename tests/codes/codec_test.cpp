#include "codes/codec.h"

#include <gtest/gtest.h>

#include "codes/builders.h"
#include "util/check.h"

namespace fbf::codes {
namespace {

Cell cell(int r, int c) {
  return Cell{static_cast<std::int16_t>(r), static_cast<std::int16_t>(c)};
}

StripeData encoded_stripe(const Layout& l, std::size_t chunk = 32,
                          std::uint64_t seed = 1) {
  StripeData s(l, chunk);
  util::Rng rng(seed);
  s.fill_random(rng);
  encode(s);
  return s;
}

TEST(XorInto, BasicAndSizeMismatch) {
  std::vector<std::byte> a{std::byte{0x0f}, std::byte{0xf0}, std::byte{0xaa}};
  const std::vector<std::byte> b{std::byte{0xff}, std::byte{0xf0},
                                 std::byte{0x55}};
  xor_into(a, b);
  EXPECT_EQ(a[0], std::byte{0xf0});
  EXPECT_EQ(a[1], std::byte{0x00});
  EXPECT_EQ(a[2], std::byte{0xff});
  std::vector<std::byte> small(2);
  EXPECT_THROW(xor_into(small, b), util::CheckError);
}

TEST(XorInto, SelfInverse) {
  util::Rng rng(3);
  std::vector<std::byte> a(100);
  std::vector<std::byte> b(100);
  rng.fill_bytes(a);
  rng.fill_bytes(b);
  const auto orig = a;
  xor_into(a, b);
  xor_into(a, b);
  EXPECT_EQ(a, orig);
}

TEST(XorInto, HandlesNonWordSizes) {
  for (std::size_t n : {1u, 7u, 8u, 9u, 15u, 17u}) {
    std::vector<std::byte> a(n, std::byte{0x3c});
    const std::vector<std::byte> b(n, std::byte{0xc3});
    xor_into(a, b);
    for (std::byte v : a) {
      EXPECT_EQ(v, std::byte{0xff});
    }
  }
}

TEST(StripeData, ZeroInitialized) {
  const Layout l = make_rtp(5);
  StripeData s(l, 16);
  for (int i = 0; i < l.num_cells(); ++i) {
    for (std::byte b : s.chunk(l.cell_at(i))) {
      EXPECT_EQ(b, std::byte{0});
    }
  }
}

TEST(StripeData, RejectsZeroChunkSize) {
  const Layout l = make_rtp(5);
  EXPECT_THROW(StripeData(l, 0), util::CheckError);
}

TEST(Codec, EncodeMakesAllChainsVerify) {
  for (int p : {5, 7, 11}) {
    for (CodeId id : kAllCodes) {
      const Layout l = make_layout(id, p);
      const StripeData s = encoded_stripe(l);
      EXPECT_TRUE(verify(s)) << l.name();
    }
  }
}

TEST(Codec, AllZeroStripeVerifies) {
  const Layout l = make_star(5);
  StripeData s(l, 8);
  encode(s);
  EXPECT_TRUE(verify(s));
}

TEST(Codec, CorruptionBreaksVerification) {
  const Layout l = make_star(5);
  StripeData s = encoded_stripe(l);
  auto span = s.chunk(cell(0, 0));
  span[0] ^= std::byte{1};
  EXPECT_FALSE(verify(s));
}

TEST(Codec, DecodeSingleErasedDataCell) {
  const Layout l = make_rtp(7);
  StripeData s = encoded_stripe(l);
  const StripeData original = s;
  const std::vector<Cell> erased{cell(2, 3)};
  s.erase(erased[0]);
  const DecodeResult r = decode_erasures(s, erased);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.peeled, 1);
  EXPECT_EQ(r.gaussian_solved, 0);
  const auto got = s.chunk(erased[0]);
  const auto want = original.chunk(erased[0]);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
}

TEST(Codec, DecodeSingleErasedParityCell) {
  const Layout l = make_star(5);
  StripeData s = encoded_stripe(l);
  const StripeData original = s;
  const Cell parity = cell(0, l.p());  // horizontal parity column
  ASSERT_EQ(l.kind(parity), CellKind::Parity);
  s.erase(parity);
  EXPECT_TRUE(decode_erasures(s, {parity}).ok);
  const auto got = s.chunk(parity);
  const auto want = original.chunk(parity);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
}

TEST(Codec, DecodeFullTripleColumnErasure) {
  for (CodeId id : kAllCodes) {
    const Layout l = make_layout(id, 7);
    StripeData s = encoded_stripe(l, 24, 99);
    const StripeData original = s;
    std::vector<Cell> erased;
    for (int col : {0, 3, l.cols() - 1}) {
      for (const Cell& c : l.column_cells(col)) {
        erased.push_back(c);
        s.erase(c);
      }
    }
    const DecodeResult r = decode_erasures(s, erased);
    EXPECT_TRUE(r.ok) << l.name();
    for (const Cell& c : erased) {
      const auto got = s.chunk(c);
      const auto want = original.chunk(c);
      EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
          << l.name() << " " << to_string(c);
    }
  }
}

TEST(Codec, DecodePartialStripePatterns) {
  // Every contiguous single-column error the workload generator can emit.
  const Layout l = make_layout(CodeId::Tip, 7);
  for (int col = 0; col < l.cols(); ++col) {
    for (int len = 1; len <= l.rows(); ++len) {
      for (int start = 0; start + len <= l.rows(); ++start) {
        StripeData s = encoded_stripe(l, 16, 7);
        const StripeData original = s;
        std::vector<Cell> erased;
        for (int r = start; r < start + len; ++r) {
          erased.push_back(cell(r, col));
          s.erase(erased.back());
        }
        ASSERT_TRUE(decode_erasures(s, erased).ok)
            << "col=" << col << " start=" << start << " len=" << len;
        for (const Cell& c : erased) {
          const auto got = s.chunk(c);
          const auto want = original.chunk(c);
          ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
        }
      }
    }
  }
}

TEST(Codec, ErasureDecodableMatchesDecode) {
  const Layout l = make_star(5);
  std::vector<Cell> erased;
  for (int col : {0, 1, 2}) {
    for (const Cell& c : l.column_cells(col)) {
      erased.push_back(c);
    }
  }
  EXPECT_TRUE(erasure_decodable(l, erased));
  // Four erased columns exceed the code's distance.
  for (const Cell& c : l.column_cells(3)) {
    erased.push_back(c);
  }
  EXPECT_FALSE(erasure_decodable(l, erased));
}

TEST(Codec, QuadColumnErasureFailsGracefully) {
  const Layout l = make_rtp(5);
  StripeData s = encoded_stripe(l);
  std::vector<Cell> erased;
  for (int col : {0, 1, 2, 3}) {
    for (const Cell& c : l.column_cells(col)) {
      erased.push_back(c);
      s.erase(c);
    }
  }
  EXPECT_FALSE(decode_erasures(s, erased).ok);
}

}  // namespace
}  // namespace fbf::codes
