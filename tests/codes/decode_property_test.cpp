// Decode property test: random erasure patterns inside the 3DFT budget —
// up to three distinct columns, each fully or partially erased, which is
// exactly the shape mid-recovery escalation produces (a traced partial
// column plus whole failed disks). For every pattern, the peeling decoder
// and the generic GF(2) Gauss solver must both restore the original bytes
// (so the two paths are bit-identical), and the symbolic peel plan used by
// the fault-path planner must replay consistently and agree with the
// decoder's peeled/gauss accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include "codes/builders.h"
#include "codes/codec.h"
#include "util/rng.h"

namespace fbf::codes {
namespace {

using Param = std::tuple<CodeId, int>;

class DecodeProperty : public ::testing::TestWithParam<Param> {};

/// A random pattern of 1..3 distinct columns; each column is erased fully
/// (a failed disk) or partially (a latent error burst), at least one cell
/// per column.
std::vector<Cell> random_pattern(const Layout& l, util::Rng& rng) {
  const int ncols = 1 + static_cast<int>(rng.uniform_int(0, 2));
  std::set<int> cols;
  while (static_cast<int>(cols.size()) < ncols) {
    cols.insert(static_cast<int>(rng.uniform_int(0, l.cols() - 1)));
  }
  std::vector<Cell> erased;
  for (int col : cols) {
    if (rng.uniform_int(0, 1) == 0) {
      for (const Cell& c : l.column_cells(col)) {
        erased.push_back(c);
      }
    } else {
      const int lo = static_cast<int>(rng.uniform_int(0, l.rows() - 1));
      const int hi = static_cast<int>(rng.uniform_int(lo, l.rows() - 1));
      for (int row = lo; row <= hi; ++row) {
        erased.push_back(Cell{static_cast<std::int16_t>(row),
                              static_cast<std::int16_t>(col)});
      }
    }
  }
  std::sort(erased.begin(), erased.end());
  return erased;
}

/// Replays the symbolic plan: every step's chain must contain the target
/// and no other still-lost cell, and the leftover set must be exactly the
/// plan's gauss_cells.
void check_plan_replays(const Layout& l, const std::vector<Cell>& erased,
                        const PeelPlan& plan) {
  std::set<Cell> lost(erased.begin(), erased.end());
  for (const PeelPlan::Step& step : plan.steps) {
    ASSERT_EQ(lost.count(step.target), 1u) << "step targets a live cell";
    const Chain& chain = l.chain(step.chain_id);
    bool contains_target = false;
    for (const Cell& member : chain.cells) {
      if (member == step.target) {
        contains_target = true;
      } else {
        EXPECT_EQ(lost.count(member), 0u)
            << "chain " << step.chain_id << " reads still-lost cell "
            << to_string(member);
      }
    }
    ASSERT_TRUE(contains_target);
    lost.erase(step.target);
  }
  const std::set<Cell> gauss(plan.gauss_cells.begin(),
                             plan.gauss_cells.end());
  EXPECT_EQ(lost, gauss);
}

TEST_P(DecodeProperty, PeelAndGaussAgreeOnRandomBudgetPatterns) {
  const auto [id, p] = GetParam();
  const Layout l = make_layout(id, p);
  StripeData pristine(l, 16);
  util::Rng data_rng(0xdec0deull + p);
  pristine.fill_random(data_rng);
  encode(pristine);
  ASSERT_TRUE(verify(pristine));

  util::Rng rng(0x9a77e4ull * static_cast<std::uint64_t>(p) +
                static_cast<std::uint64_t>(id));
  int gauss_patterns = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<Cell> erased = random_pattern(l, rng);
    SCOPED_TRACE(l.name() + " trial " + std::to_string(trial));

    // Any <=3-column pattern is inside the 3DFT budget.
    ASSERT_TRUE(erasure_decodable(l, erased));

    const PeelPlan plan = plan_peeling(l, erased);
    ASSERT_NO_FATAL_FAILURE(check_plan_replays(l, erased, plan));
    ASSERT_EQ(plan.steps.size() + plan.gauss_cells.size(), erased.size());
    gauss_patterns += plan.gauss_cells.empty() ? 0 : 1;
    (void)gauss_patterns;  // informational: some codes peel every pattern

    StripeData peel = pristine;
    for (const Cell& c : erased) {
      peel.erase(c);
    }
    StripeData gauss = peel;

    const DecodeResult pr = decode_erasures(peel, erased);
    ASSERT_TRUE(pr.ok);
    EXPECT_EQ(pr.peeled, static_cast<int>(plan.steps.size()));
    EXPECT_EQ(pr.gaussian_solved, static_cast<int>(plan.gauss_cells.size()));

    const DecodeResult gr =
        decode_erasures(gauss, erased, DecodeMethod::GaussOnly);
    ASSERT_TRUE(gr.ok);
    EXPECT_EQ(gr.peeled, 0);
    EXPECT_EQ(gr.gaussian_solved, static_cast<int>(erased.size()));

    // Both decoders restore the original bytes, hence are bit-identical.
    for (const Cell& c : erased) {
      const auto want = pristine.chunk(c);
      const auto got_peel = peel.chunk(c);
      const auto got_gauss = gauss.chunk(c);
      ASSERT_TRUE(std::equal(got_peel.begin(), got_peel.end(), want.begin()))
          << "peel path diverged at " << to_string(c);
      ASSERT_TRUE(std::equal(got_gauss.begin(), got_gauss.end(), want.begin()))
          << "gauss path diverged at " << to_string(c);
    }
    ASSERT_TRUE(verify(peel));
    ASSERT_TRUE(verify(gauss));
  }
  // The GaussOnly decode above exercises the solver on every pattern; the
  // PeelThenGauss fallback branch only fires on patterns a chain pass
  // cannot finish, which some codes' column structure never produces.
  SCOPED_TRACE("gauss fallback patterns: " + std::to_string(gauss_patterns));
}

TEST_P(DecodeProperty, PlanOnEmptyPatternIsEmpty) {
  const auto [id, p] = GetParam();
  const Layout l = make_layout(id, p);
  const PeelPlan plan = plan_peeling(l, {});
  EXPECT_TRUE(plan.steps.empty());
  EXPECT_TRUE(plan.gauss_cells.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllCodes, DecodeProperty,
    ::testing::Combine(::testing::Values(CodeId::Tip, CodeId::Hdd1,
                                         CodeId::TripleStar, CodeId::Star),
                       ::testing::Values(5, 7)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace fbf::codes
