#include "codes/builders.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fbf::codes {
namespace {

TEST(Builders, IsPrime) {
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_TRUE(is_prime(5));
  EXPECT_TRUE(is_prime(13));
  EXPECT_FALSE(is_prime(1));
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(9));
  EXPECT_FALSE(is_prime(15));
}

TEST(Builders, CodeNamesRoundTrip) {
  for (CodeId id : kAllCodes) {
    EXPECT_EQ(code_from_string(to_string(id)), id);
  }
  EXPECT_EQ(code_from_string("triple-star"), CodeId::TripleStar);
  EXPECT_EQ(code_from_string("Tip"), CodeId::Tip);
  EXPECT_THROW(code_from_string("nope"), util::CheckError);
}

TEST(Builders, DiskCountsMatchPaper) {
  for (int p : {5, 7, 11, 13}) {
    EXPECT_EQ(code_disks(CodeId::Tip, p), p + 1);
    EXPECT_EQ(code_disks(CodeId::Hdd1, p), p + 1);
    EXPECT_EQ(code_disks(CodeId::TripleStar, p), p + 2);
    EXPECT_EQ(code_disks(CodeId::Star, p), p + 3);
    for (CodeId id : kAllCodes) {
      const Layout l = make_layout(id, p);
      EXPECT_EQ(l.cols(), code_disks(id, p));
      EXPECT_EQ(l.rows(), p - 1);
      EXPECT_EQ(l.p(), p);
    }
  }
}

TEST(Builders, ParityBudgetIsThreePerRow) {
  // Every 3DFT layout spends exactly 3(p-1) cells on parity.
  for (int p : {5, 7, 11}) {
    for (CodeId id : kAllCodes) {
      const Layout l = make_layout(id, p);
      EXPECT_EQ(l.num_parity_cells(), 3 * (p - 1));
      EXPECT_EQ(l.num_data_cells(), (p - 1) * (l.cols() - 3));
    }
  }
}

TEST(Builders, StarRejectsNonPrime) {
  EXPECT_THROW(make_star(9), util::CheckError);
  EXPECT_THROW(make_star(4), util::CheckError);
  EXPECT_THROW(make_rtp(6), util::CheckError);
}

TEST(Builders, RejectsOverShortening) {
  EXPECT_THROW(make_star(5, 4), util::CheckError);
  EXPECT_THROW(make_rtp(5, 3), util::CheckError);
  EXPECT_THROW(make_star(5, -1), util::CheckError);
}

TEST(Builders, ShorteningReducesColumnsOnly) {
  const Layout full = make_star(7);
  const Layout shortened = make_star(7, 2);
  EXPECT_EQ(shortened.cols(), full.cols() - 2);
  EXPECT_EQ(shortened.rows(), full.rows());
  EXPECT_EQ(shortened.chains().size(), full.chains().size());
}

TEST(Builders, StarHorizontalChainsSpanDataPlusParity) {
  const Layout l = make_star(5);
  for (int id : l.chains_in(Direction::Horizontal)) {
    const Chain& ch = l.chain(id);
    EXPECT_EQ(ch.cells.size(), static_cast<std::size_t>(l.p() + 1));
    // All cells share the chain's row.
    for (const Cell& c : ch.cells) {
      EXPECT_EQ(c.row, ch.parity_cell.row);
    }
  }
}

TEST(Builders, StarDiagonalChainsCarryAdjuster) {
  // STAR diagonal chains fold in the adjuster diagonal: size is
  // (p-1 base) + (p-1 adjuster) + 1 parity = 2p - 1.
  const Layout l = make_star(7);
  for (int id : l.chains_in(Direction::Diagonal)) {
    EXPECT_EQ(l.chain(id).cells.size(),
              static_cast<std::size_t>(2 * l.p() - 1));
  }
  for (int id : l.chains_in(Direction::AntiDiagonal)) {
    EXPECT_EQ(l.chain(id).cells.size(),
              static_cast<std::size_t>(2 * l.p() - 1));
  }
}

TEST(Builders, RtpChainsAreAdjusterFree) {
  // RTP-style (TripleStar/TIP substitutes) chains are plain diagonals:
  // p-1 members + 1 parity cell.
  const Layout l = make_rtp(7);
  for (int id : l.chains_in(Direction::Diagonal)) {
    EXPECT_EQ(l.chain(id).cells.size(), static_cast<std::size_t>(l.p()));
  }
  for (int id : l.chains_in(Direction::AntiDiagonal)) {
    EXPECT_EQ(l.chain(id).cells.size(), static_cast<std::size_t>(l.p()));
  }
}

TEST(Builders, StarAdjusterCellsAppearInEveryDiagonalChain) {
  // The paper notes STAR's adjusters are "referenced more than three
  // times and always assigned with highest priority" — geometrically,
  // adjuster-diagonal cells sit on every diagonal chain.
  const Layout l = make_star(5);
  const int p = l.p();
  int adjuster_cells = 0;
  for (int i = 0; i < l.num_cells(); ++i) {
    const Cell c = l.cell_at(i);
    if (c.col >= p) {
      continue;  // parity columns
    }
    if ((c.row + c.col) % p == p - 1) {
      ++adjuster_cells;
      EXPECT_EQ(l.chains_containing(c, Direction::Diagonal).size(),
                static_cast<std::size_t>(p - 1));
    }
  }
  EXPECT_EQ(adjuster_cells, p - 1);
}

TEST(Builders, RtpUpdateComplexityIsOptimal) {
  // Adjuster-free layouts: a data cell sits on its horizontal chain plus
  // at most one diagonal and one anti-diagonal (the "missing diagonal"
  // cells lose one), so update complexity is 2 or 3 — the 3DFT optimum.
  for (int p : {5, 7, 11}) {
    const Layout l = make_rtp(p);
    for (int i = 0; i < l.num_cells(); ++i) {
      const Cell c = l.cell_at(i);
      if (l.kind(c) != CellKind::Data) {
        continue;
      }
      const int uc = l.update_complexity(c);
      EXPECT_GE(uc, 2) << to_string(c);
      EXPECT_LE(uc, 3) << to_string(c);
    }
    EXPECT_GT(l.average_update_complexity(), 2.0);
    EXPECT_LE(l.average_update_complexity(), 3.0);
  }
}

TEST(Builders, StarAdjusterUpdateComplexityIsPPlusOne) {
  // An adjuster-diagonal cell feeds all p-1 diagonal parities plus its
  // horizontal and anti-diagonal chains: p + 1 parity updates.
  for (int p : {5, 7}) {
    const Layout l = make_star(p);
    for (int j = 1; j < p; ++j) {
      const Cell c{static_cast<std::int16_t>((p - 1 - j) % p),
                   static_cast<std::int16_t>(j)};
      EXPECT_EQ(l.update_complexity(c), p + 1) << "p=" << p << " j=" << j;
    }
    // Non-adjuster data cells stay at the optimum 3.
    const Cell plain{0, 0};
    EXPECT_EQ(l.update_complexity(plain), 3);
  }
}

TEST(Builders, UpdateComplexityRejectsParityCells) {
  const Layout l = make_star(5);
  const Cell parity{0, static_cast<std::int16_t>(l.p())};
  ASSERT_EQ(l.kind(parity), CellKind::Parity);
  EXPECT_THROW(l.update_complexity(parity), util::CheckError);
}

TEST(Builders, AdjusterLayoutsAverageHigherUpdateComplexity) {
  for (int p : {5, 7, 11, 13}) {
    const double tip = make_layout(CodeId::Tip, p).average_update_complexity();
    const double star =
        make_layout(CodeId::Star, p).average_update_complexity();
    EXPECT_LT(tip, 3.0 + 1e-9);
    EXPECT_GT(star, tip + 1.0);  // the TIP-vs-STAR contrast
  }
}

TEST(Builders, LayoutNamesAreDescriptive) {
  EXPECT_NE(make_layout(CodeId::Star, 5).name().find("STAR"),
            std::string::npos);
  EXPECT_NE(make_layout(CodeId::Tip, 5).name().find("p=5"),
            std::string::npos);
}

}  // namespace
}  // namespace fbf::codes
