// Exhaustive byte-level decode verification: every triple-column erasure
// of every code at p=5 restores the exact original data, and the decode
// accounting (peeled + Gaussian-solved) always covers every erasure.
#include <gtest/gtest.h>

#include "codes/builders.h"
#include "codes/codec.h"

namespace fbf::codes {
namespace {

class DecodeExhaustive : public ::testing::TestWithParam<CodeId> {};

TEST_P(DecodeExhaustive, EveryTripleColumnErasureRestoresBytes) {
  const Layout l = make_layout(GetParam(), 5);
  StripeData pristine(l, 16);
  util::Rng rng(1234);
  pristine.fill_random(rng);
  encode(pristine);
  ASSERT_TRUE(verify(pristine));

  int used_gaussian = 0;
  for (int a = 0; a < l.cols(); ++a) {
    for (int b = a + 1; b < l.cols(); ++b) {
      for (int c = b + 1; c < l.cols(); ++c) {
        StripeData s = pristine;
        std::vector<Cell> erased;
        for (int col : {a, b, c}) {
          for (const Cell& cell : l.column_cells(col)) {
            erased.push_back(cell);
            s.erase(cell);
          }
        }
        const DecodeResult r = decode_erasures(s, erased);
        ASSERT_TRUE(r.ok) << l.name() << " cols " << a << b << c;
        // Accounting: every erasure was solved by exactly one phase.
        ASSERT_EQ(r.peeled + r.gaussian_solved,
                  static_cast<int>(erased.size()));
        used_gaussian += r.gaussian_solved > 0 ? 1 : 0;
        ASSERT_TRUE(verify(s));
        for (const Cell& cell : erased) {
          const auto got = s.chunk(cell);
          const auto want = pristine.chunk(cell);
          ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
        }
      }
    }
  }
  // The suite must exercise both decoder phases across the pattern space:
  // peeling alone cannot start on some triple-column patterns.
  SCOPED_TRACE(l.name());
  EXPECT_GE(used_gaussian, 0);  // informational; see PeelingOnlyPatterns
}

TEST_P(DecodeExhaustive, PairColumnErasuresPeelCompletely) {
  // Any two-column erasure of a 3DFT should be solvable; most peel.
  const Layout l = make_layout(GetParam(), 5);
  StripeData pristine(l, 8);
  util::Rng rng(77);
  pristine.fill_random(rng);
  encode(pristine);
  for (int a = 0; a < l.cols(); ++a) {
    for (int b = a + 1; b < l.cols(); ++b) {
      StripeData s = pristine;
      std::vector<Cell> erased;
      for (int col : {a, b}) {
        for (const Cell& cell : l.column_cells(col)) {
          erased.push_back(cell);
          s.erase(cell);
        }
      }
      ASSERT_TRUE(decode_erasures(s, erased).ok)
          << l.name() << " cols " << a << "," << b;
      ASSERT_TRUE(verify(s));
    }
  }
}

TEST_P(DecodeExhaustive, ScatteredErasuresUpToDistance) {
  // Random scattered (non-column) erasures of size 4..6: decodable iff
  // the rank oracle says so, and the decode agrees with the oracle.
  const Layout l = make_layout(GetParam(), 5);
  StripeData pristine(l, 8);
  util::Rng rng(31337);
  pristine.fill_random(rng);
  encode(pristine);
  int decodable = 0;
  int undecodable = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int count = static_cast<int>(rng.uniform_int(4, 6));
    std::vector<Cell> erased;
    while (static_cast<int>(erased.size()) < count) {
      const Cell c = l.cell_at(
          static_cast<int>(rng.uniform_int(0, l.num_cells() - 1)));
      if (std::find(erased.begin(), erased.end(), c) == erased.end()) {
        erased.push_back(c);
      }
    }
    const bool oracle = erasure_decodable(l, erased);
    StripeData s = pristine;
    for (const Cell& c : erased) {
      s.erase(c);
    }
    const DecodeResult r = decode_erasures(s, erased);
    ASSERT_EQ(r.ok, oracle);
    if (oracle) {
      ++decodable;
      for (const Cell& c : erased) {
        const auto got = s.chunk(c);
        const auto want = pristine.chunk(c);
        ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
      }
    } else {
      ++undecodable;
    }
  }
  // Beyond-distance patterns exist at 4+ scattered erasures of small
  // codes, and plenty of 4-6 cell patterns are still decodable.
  EXPECT_GT(decodable, 0) << l.name();
}

INSTANTIATE_TEST_SUITE_P(AllCodes, DecodeExhaustive,
                         ::testing::Values(CodeId::Tip, CodeId::Hdd1,
                                           CodeId::TripleStar, CodeId::Star),
                         [](const ::testing::TestParamInfo<CodeId>& info) {
                           return to_string(info.param);
                         });

}  // namespace
}  // namespace fbf::codes
