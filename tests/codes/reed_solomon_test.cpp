#include "codes/reed_solomon.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace fbf::codes {
namespace {

/// Owns n chunk buffers and hands out the span views RS wants.
struct Stripe {
  Stripe(int n, std::size_t len, std::uint64_t seed, int k) {
    util::Rng rng(seed);
    buffers.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      buffers[static_cast<std::size_t>(i)].resize(len);
      if (i < k) {
        for (auto& b : buffers[static_cast<std::size_t>(i)]) {
          b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        }
      }
    }
  }
  std::vector<std::span<std::uint8_t>> spans() {
    std::vector<std::span<std::uint8_t>> out;
    for (auto& b : buffers) {
      out.emplace_back(b);
    }
    return out;
  }
  std::vector<std::vector<std::uint8_t>> buffers;
};

void encode_stripe(const ReedSolomon& rs, Stripe& s) {
  std::vector<std::span<const std::uint8_t>> data;
  std::vector<std::span<std::uint8_t>> parity;
  for (int i = 0; i < rs.k(); ++i) {
    data.emplace_back(s.buffers[static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < rs.m(); ++i) {
    parity.emplace_back(s.buffers[static_cast<std::size_t>(rs.k() + i)]);
  }
  rs.encode(data, parity);
}

TEST(ReedSolomon, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomon(0, 3), util::CheckError);
  EXPECT_THROW(ReedSolomon(3, 0), util::CheckError);
  EXPECT_THROW(ReedSolomon(250, 10), util::CheckError);
}

TEST(ReedSolomon, EncodeDecodeRoundTripAllSingleErasures) {
  const ReedSolomon rs(6, 3);
  for (int e = 0; e < rs.n(); ++e) {
    Stripe s(rs.n(), 64, 42, rs.k());
    encode_stripe(rs, s);
    const auto original = s.buffers;
    s.buffers[static_cast<std::size_t>(e)].assign(64, 0);
    auto spans = s.spans();
    ASSERT_TRUE(rs.decode(spans, {e}));
    EXPECT_EQ(s.buffers, original) << "erasure " << e;
  }
}

TEST(ReedSolomon, AllTripleErasuresDecodable) {
  const ReedSolomon rs(6, 3);
  Stripe pristine(rs.n(), 32, 7, rs.k());
  encode_stripe(rs, pristine);
  for (int a = 0; a < rs.n(); ++a) {
    for (int b = a + 1; b < rs.n(); ++b) {
      for (int c = b + 1; c < rs.n(); ++c) {
        Stripe s = pristine;
        for (int e : {a, b, c}) {
          s.buffers[static_cast<std::size_t>(e)].assign(32, 0);
        }
        auto spans = s.spans();
        ASSERT_TRUE(rs.decode(spans, {a, b, c}))
            << a << "," << b << "," << c;
        EXPECT_EQ(s.buffers, pristine.buffers);
      }
    }
  }
}

TEST(ReedSolomon, TooManyErasuresRejected) {
  const ReedSolomon rs(4, 2);
  Stripe s(rs.n(), 16, 3, rs.k());
  encode_stripe(rs, s);
  auto spans = s.spans();
  EXPECT_FALSE(rs.decode(spans, {0, 1, 2}));
}

TEST(ReedSolomon, EmptyErasureSetIsNoop) {
  const ReedSolomon rs(4, 2);
  Stripe s(rs.n(), 16, 3, rs.k());
  encode_stripe(rs, s);
  const auto before = s.buffers;
  auto spans = s.spans();
  EXPECT_TRUE(rs.decode(spans, {}));
  EXPECT_EQ(s.buffers, before);
}

TEST(ReedSolomon, ParityOnlyErasures) {
  const ReedSolomon rs(5, 3);
  Stripe s(rs.n(), 16, 9, rs.k());
  encode_stripe(rs, s);
  const auto original = s.buffers;
  for (int e : {5, 6, 7}) {
    s.buffers[static_cast<std::size_t>(e)].assign(16, 0);
  }
  auto spans = s.spans();
  ASSERT_TRUE(rs.decode(spans, {5, 6, 7}));
  EXPECT_EQ(s.buffers, original);
}

TEST(ReedSolomon, RandomPatternsAcrossGeometries) {
  util::Rng rng(99);
  for (const auto& [k, m] : std::vector<std::pair<int, int>>{
           {2, 1}, {4, 2}, {10, 4}, {12, 3}}) {
    const ReedSolomon rs(k, m);
    for (int trial = 0; trial < 10; ++trial) {
      Stripe s(rs.n(), 24, rng.next_u64(), rs.k());
      encode_stripe(rs, s);
      const auto original = s.buffers;
      std::vector<int> erased;
      const int count = static_cast<int>(rng.uniform_int(1, m));
      while (static_cast<int>(erased.size()) < count) {
        const int e = static_cast<int>(rng.uniform_int(0, rs.n() - 1));
        if (std::find(erased.begin(), erased.end(), e) == erased.end()) {
          erased.push_back(e);
          s.buffers[static_cast<std::size_t>(e)].assign(24, 0);
        }
      }
      auto spans = s.spans();
      ASSERT_TRUE(rs.decode(spans, erased));
      ASSERT_EQ(s.buffers, original) << "k=" << k << " m=" << m;
    }
  }
}

TEST(ReedSolomon, CoefficientsAreCauchy) {
  const ReedSolomon rs(4, 3);
  for (int r = 0; r < rs.m(); ++r) {
    for (int c = 0; c < rs.k(); ++c) {
      const auto x = static_cast<Gf256::Elem>(r);
      const auto y = static_cast<Gf256::Elem>(rs.m() + c);
      EXPECT_EQ(Gf256::mul(rs.coefficient(r, c), Gf256::add(x, y)), 1);
    }
  }
}

}  // namespace
}  // namespace fbf::codes
