// Property suite: the four layouts are 3-erasure MDS at every prime the
// paper evaluates, chains XOR to zero by construction, and random triple
// erasures (not only full columns) behave per the chain-rank oracle.
#include <gtest/gtest.h>

#include <tuple>

#include "codes/builders.h"
#include "codes/codec.h"
#include "util/rng.h"

namespace fbf::codes {
namespace {

using Param = std::tuple<CodeId, int>;

class MdsProperty : public ::testing::TestWithParam<Param> {
 protected:
  Layout layout() const {
    return make_layout(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

TEST_P(MdsProperty, AllTripleColumnErasuresDecodable) {
  EXPECT_TRUE(mds3_check(layout()));
}

TEST_P(MdsProperty, EncodedChainsAllXorToZero) {
  const Layout l = layout();
  StripeData s(l, 32);
  util::Rng rng(0xfeedu);
  s.fill_random(rng);
  encode(s);
  EXPECT_TRUE(verify(s));
}

TEST_P(MdsProperty, RandomCellTriplesDecodeWhenOracleSaysSo) {
  const Layout l = layout();
  util::Rng rng(0xabcdu);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Cell> erased;
    while (erased.size() < 3) {
      const Cell c = l.cell_at(static_cast<int>(
          rng.uniform_int(0, l.num_cells() - 1)));
      if (std::find(erased.begin(), erased.end(), c) == erased.end()) {
        erased.push_back(c);
      }
    }
    // Any <= 3 arbitrary cell erasures are within the code's distance
    // (column erasures dominate cell erasures), so the oracle must pass...
    ASSERT_TRUE(erasure_decodable(l, erased));
    StripeData s(l, 16);
    s.fill_random(rng);
    encode(s);
    const StripeData original = s;
    for (const Cell& c : erased) {
      s.erase(c);
    }
    ASSERT_TRUE(decode_erasures(s, erased).ok);
    for (const Cell& c : erased) {
      const auto got = s.chunk(c);
      const auto want = original.chunk(c);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
    }
  }
}

TEST_P(MdsProperty, DecodeRestoresEveryPartialStripeFormat) {
  const Layout l = layout();
  util::Rng rng(0x1234u);
  StripeData pristine(l, 16);
  pristine.fill_random(rng);
  encode(pristine);
  // Partial stripe errors on the first data column and on the last column.
  for (int col : {0, l.cols() - 1}) {
    for (int len = 1; len <= l.rows(); ++len) {
      StripeData s = pristine;
      std::vector<Cell> erased;
      for (int r = 0; r < len; ++r) {
        erased.push_back(Cell{static_cast<std::int16_t>(r),
                              static_cast<std::int16_t>(col)});
        s.erase(erased.back());
      }
      ASSERT_TRUE(decode_erasures(s, erased).ok)
          << l.name() << " col=" << col << " len=" << len;
      for (const Cell& c : erased) {
        const auto got = s.chunk(c);
        const auto want = pristine.chunk(c);
        ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
      }
    }
  }
}

TEST(MdsLargePrime, AllCodesStayMdsAtP17) {
  // Beyond the paper's largest prime: the constructions are generic in p.
  for (CodeId id : kAllCodes) {
    EXPECT_TRUE(mds3_check(make_layout(id, 17))) << to_string(id);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodesAllPrimes, MdsProperty,
    ::testing::Combine(::testing::Values(CodeId::Tip, CodeId::Hdd1,
                                         CodeId::TripleStar, CodeId::Star),
                       ::testing::Values(5, 7, 11, 13)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace fbf::codes
