#include "codes/layout.h"

#include <gtest/gtest.h>

#include "codes/builders.h"
#include "util/check.h"

namespace fbf::codes {
namespace {

Cell cell(int r, int c) {
  return Cell{static_cast<std::int16_t>(r), static_cast<std::int16_t>(c)};
}

TEST(Layout, CellIndexRoundTrips) {
  const Layout l = make_star(5);
  for (int i = 0; i < l.num_cells(); ++i) {
    EXPECT_EQ(l.cell_index(l.cell_at(i)), i);
  }
}

TEST(Layout, CellIndexOutOfBoundsThrows) {
  const Layout l = make_star(5);
  EXPECT_THROW(l.cell_index(cell(-1, 0)), util::CheckError);
  EXPECT_THROW(l.cell_index(cell(0, l.cols())), util::CheckError);
  EXPECT_THROW(l.cell_at(l.num_cells()), util::CheckError);
}

TEST(Layout, ChainIdsMatchPositions) {
  const Layout l = make_rtp(7);
  for (std::size_t i = 0; i < l.chains().size(); ++i) {
    EXPECT_EQ(l.chains()[i].id, static_cast<int>(i));
    EXPECT_EQ(&l.chain(static_cast<int>(i)), &l.chains()[i]);
  }
}

TEST(Layout, ChainsPartitionIntoThreeDirections) {
  for (int p : {5, 7}) {
    const Layout l = make_star(p);
    std::size_t total = 0;
    for (Direction d : {Direction::Horizontal, Direction::Diagonal,
                        Direction::AntiDiagonal}) {
      const auto ids = l.chains_in(d);
      EXPECT_EQ(ids.size(), static_cast<std::size_t>(p - 1));
      total += ids.size();
      for (int id : ids) {
        EXPECT_EQ(l.chain(id).dir, d);
      }
    }
    EXPECT_EQ(total, l.chains().size());
  }
}

TEST(Layout, ParityCellsAreMarkedParity) {
  const Layout l = make_rtp(5);
  int parity_cells = 0;
  for (int i = 0; i < l.num_cells(); ++i) {
    if (l.kind(l.cell_at(i)) == CellKind::Parity) {
      ++parity_cells;
    }
  }
  EXPECT_EQ(parity_cells, l.num_parity_cells());
  EXPECT_EQ(parity_cells, static_cast<int>(l.chains().size()));
  for (const Chain& ch : l.chains()) {
    EXPECT_EQ(l.kind(ch.parity_cell), CellKind::Parity);
  }
}

TEST(Layout, ChainsContainingIsConsistent) {
  const Layout l = make_star(7);
  for (int i = 0; i < l.num_cells(); ++i) {
    const Cell c = l.cell_at(i);
    for (int id : l.chains_containing(c)) {
      const Chain& ch = l.chain(id);
      EXPECT_TRUE(std::binary_search(ch.cells.begin(), ch.cells.end(), c));
    }
  }
  // Reverse direction: every chain member lists the chain.
  for (const Chain& ch : l.chains()) {
    for (const Cell& c : ch.cells) {
      const auto ids = l.chains_containing(c);
      EXPECT_NE(std::find(ids.begin(), ids.end(), ch.id), ids.end());
    }
  }
}

TEST(Layout, ChainsContainingByDirectionFilters) {
  const Layout l = make_rtp(7);
  const Cell c = cell(0, 0);
  const auto all = l.chains_containing(c);
  std::size_t sum = 0;
  for (Direction d : {Direction::Horizontal, Direction::Diagonal,
                      Direction::AntiDiagonal}) {
    const auto ids = l.chains_containing(c, d);
    for (int id : ids) {
      EXPECT_EQ(l.chain(id).dir, d);
    }
    sum += ids.size();
  }
  EXPECT_EQ(sum, all.size());
}

TEST(Layout, EncodeOrderCoversEveryChainOnce) {
  for (int p : {5, 7, 11}) {
    const Layout l = make_rtp(p);
    std::vector<bool> seen(l.chains().size(), false);
    for (int id : l.encode_order()) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(id)]);
      seen[static_cast<std::size_t>(id)] = true;
    }
    EXPECT_EQ(l.encode_order().size(), l.chains().size());
  }
}

TEST(Layout, EncodeOrderRespectsDependencies) {
  // In RTP layouts the diagonal chains include row-parity cells, so every
  // horizontal chain must be produced before any diagonal chain needing it.
  const Layout l = make_rtp(5);
  std::vector<bool> produced(l.chains().size(), false);
  for (int id : l.encode_order()) {
    const Chain& ch = l.chain(id);
    for (const Cell& c : ch.cells) {
      if (c == ch.parity_cell || l.kind(c) == CellKind::Data) {
        continue;
      }
      bool ok = false;
      for (int other : l.chains_containing(c)) {
        if (l.chain(other).parity_cell == c) {
          ok = produced[static_cast<std::size_t>(other)];
        }
      }
      EXPECT_TRUE(ok) << "chain " << id << " consumed unproduced parity "
                      << to_string(c);
    }
    produced[static_cast<std::size_t>(id)] = true;
  }
}

TEST(Layout, ColumnCellsReturnsWholeColumn) {
  const Layout l = make_star(5);
  const auto cells = l.column_cells(2);
  ASSERT_EQ(cells.size(), static_cast<std::size_t>(l.rows()));
  for (int r = 0; r < l.rows(); ++r) {
    EXPECT_EQ(cells[static_cast<std::size_t>(r)], cell(r, 2));
  }
  EXPECT_THROW(l.column_cells(l.cols()), util::CheckError);
}

TEST(Layout, RejectsDuplicateParityProducers) {
  Chain a;
  a.dir = Direction::Horizontal;
  a.parity_cell = cell(0, 1);
  a.cells = {cell(0, 0), cell(0, 1)};
  Chain b = a;
  b.dir = Direction::Diagonal;
  EXPECT_THROW(Layout("bad", 3, 1, 2, {a, b}), util::CheckError);
}

TEST(Layout, RejectsChainMissingItsParityCell) {
  Chain a;
  a.dir = Direction::Horizontal;
  a.parity_cell = cell(0, 1);
  a.cells = {cell(0, 0)};
  EXPECT_THROW(Layout("bad", 3, 1, 2, {a}), util::CheckError);
}

TEST(Layout, DirectionNames) {
  EXPECT_STREQ(to_string(Direction::Horizontal), "horizontal");
  EXPECT_STREQ(to_string(Direction::Diagonal), "diagonal");
  EXPECT_STREQ(to_string(Direction::AntiDiagonal), "anti-diagonal");
}

TEST(Layout, CellToString) {
  EXPECT_EQ(to_string(cell(4, 4)), "C(4,4)");
}

}  // namespace
}  // namespace fbf::codes
