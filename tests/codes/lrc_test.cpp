#include "codes/lrc.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace fbf::codes {
namespace {

struct Stripe {
  Stripe(const LrcCode& code, std::size_t len, std::uint64_t seed) {
    util::Rng rng(seed);
    buffers.resize(static_cast<std::size_t>(code.n()));
    for (int i = 0; i < code.n(); ++i) {
      buffers[static_cast<std::size_t>(i)].resize(len);
      if (i < code.k()) {
        for (auto& b : buffers[static_cast<std::size_t>(i)]) {
          b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
        }
      }
    }
  }
  std::vector<std::span<std::uint8_t>> spans() {
    std::vector<std::span<std::uint8_t>> out;
    for (auto& b : buffers) {
      out.emplace_back(b);
    }
    return out;
  }
  std::vector<std::span<const std::uint8_t>> const_spans() const {
    std::vector<std::span<const std::uint8_t>> out;
    for (const auto& b : buffers) {
      out.emplace_back(b);
    }
    return out;
  }
  std::vector<std::vector<std::uint8_t>> buffers;
};

TEST(Lrc, RejectsBadParameters) {
  EXPECT_THROW(LrcCode(7, 2, 2), util::CheckError);  // k not divisible by l
  EXPECT_THROW(LrcCode(0, 1, 1), util::CheckError);
  EXPECT_THROW(LrcCode(254, 2, 2), util::CheckError);
}

TEST(Lrc, ChainStructure) {
  const LrcCode code(12, 2, 2);  // Azure LRC(12,2,2)
  EXPECT_EQ(code.n(), 16);
  EXPECT_EQ(code.group_size(), 6);
  EXPECT_EQ(code.group_of(0), 0);
  EXPECT_EQ(code.group_of(5), 0);
  EXPECT_EQ(code.group_of(6), 1);
  const auto local0 = code.local_chain(0);
  EXPECT_EQ(local0.size(), 7u);
  EXPECT_EQ(local0.back(), 12);  // local parity of group 0
  const auto global1 = code.global_chain(1);
  EXPECT_EQ(global1.size(), 13u);
  EXPECT_EQ(global1.back(), 15);
}

TEST(Lrc, EncodeVerifyRoundTrip) {
  const LrcCode code(12, 2, 2);
  Stripe s(code, 48, 5);
  auto spans = s.spans();
  code.encode(spans);
  EXPECT_TRUE(code.verify(s.const_spans()));
  // Corrupt one byte -> verification fails.
  s.buffers[3][7] ^= 1;
  EXPECT_FALSE(code.verify(s.const_spans()));
}

TEST(Lrc, SingleFailureRecoversLocally) {
  const LrcCode code(12, 2, 2);
  Stripe s(code, 32, 11);
  auto spans = s.spans();
  code.encode(spans);
  const auto original = s.buffers;
  for (int e = 0; e < code.n(); ++e) {
    Stripe damaged = s;
    damaged.buffers[static_cast<std::size_t>(e)].assign(32, 0);
    auto dspans = damaged.spans();
    ASSERT_TRUE(code.decode(dspans, {e})) << "erasure " << e;
    EXPECT_EQ(damaged.buffers, original);
  }
}

TEST(Lrc, AzureConfigurationToleratesAnyThreeFailures) {
  const LrcCode code(12, 2, 2);
  Stripe s(code, 16, 23);
  auto spans = s.spans();
  code.encode(spans);
  const auto original = s.buffers;
  for (int a = 0; a < code.n(); ++a) {
    for (int b = a + 1; b < code.n(); ++b) {
      for (int c = b + 1; c < code.n(); ++c) {
        Stripe damaged = s;
        for (int e : {a, b, c}) {
          damaged.buffers[static_cast<std::size_t>(e)].assign(16, 0);
        }
        auto dspans = damaged.spans();
        ASSERT_TRUE(code.decode(dspans, {a, b, c}))
            << a << "," << b << "," << c;
        ASSERT_EQ(damaged.buffers, original);
      }
    }
  }
}

TEST(Lrc, FourFailuresInOneGroupAreUnrecoverable) {
  // LRC(12,2,2) has distance 4 for in-group patterns beyond its budget:
  // 4 data erasures in one group exceed local parity + 2 globals.
  const LrcCode code(12, 2, 2);
  Stripe s(code, 16, 31);
  auto spans = s.spans();
  code.encode(spans);
  for (int e : {0, 1, 2, 3}) {
    s.buffers[static_cast<std::size_t>(e)].assign(16, 0);
  }
  auto dspans = s.spans();
  EXPECT_FALSE(code.decode(dspans, {0, 1, 2, 3}));
}

TEST(Lrc, SomeFourFailurePatternsAcrossGroupsRecover) {
  // Maximal recoverability: 2 erasures per group (1 data + its local
  // parity each) plus... use a decodable spread: one data per group + the
  // two globals.
  const LrcCode code(12, 2, 2);
  Stripe s(code, 16, 37);
  auto spans = s.spans();
  code.encode(spans);
  const auto original = s.buffers;
  const std::vector<int> erased{0, 6, 14, 15};
  for (int e : erased) {
    s.buffers[static_cast<std::size_t>(e)].assign(16, 0);
  }
  auto dspans = s.spans();
  ASSERT_TRUE(code.decode(dspans, erased));
  EXPECT_EQ(s.buffers, original);
}

TEST(Lrc, PlanUsesLocalChainForLoneGroupFailure) {
  const LrcCode code(12, 2, 2);
  const auto plan = code.plan_recovery({2});
  ASSERT_EQ(plan.reads_per_erasure.size(), 1u);
  // Local chain: 5 other group members + the local parity.
  EXPECT_EQ(plan.reads_per_erasure[0].size(), 6u);
  EXPECT_EQ(plan.distinct_reads, 6);
}

TEST(Lrc, PlanFallsBackToGlobalAndSharesReads) {
  const LrcCode code(12, 2, 2);
  // Two failures in the same group: locals unusable, globals share all
  // surviving data reads.
  const auto plan = code.plan_recovery({0, 1});
  ASSERT_EQ(plan.reads_per_erasure.size(), 2u);
  EXPECT_GT(plan.total_references, plan.distinct_reads);
  // Shared chunks must carry reference count >= 2 (FBF priority >= 2).
  int shared = 0;
  for (int c : plan.reference_count) {
    shared += c >= 2 ? 1 : 0;
  }
  EXPECT_GE(shared, 10);  // the other 10 data chunks feed both globals
}

TEST(Lrc, PlanReferenceCountsConsistent) {
  const LrcCode code(12, 3, 2);
  const auto plan = code.plan_recovery({0, 4, 8});
  int total = 0;
  for (int c : plan.reference_count) {
    total += c;
  }
  EXPECT_EQ(total, plan.total_references);
}

}  // namespace
}  // namespace fbf::codes
