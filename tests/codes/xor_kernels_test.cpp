#include "codes/xor_kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "codes/builders.h"
#include "codes/codec.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fbf::codes {
namespace {

/// Restores the default dispatch decision after each test so the order the
/// suite runs in cannot leak a forced kernel into unrelated tests.
class XorKernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { set_xor_kernel(saved_); }
  XorKernel saved_ = active_xor_kernel();
};

TEST_F(XorKernelsTest, SupportedAlwaysContainsScalarAndActive) {
  const auto& kernels = supported_xor_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front(), XorKernel::Scalar);
  EXPECT_NE(std::find(kernels.begin(), kernels.end(), active_xor_kernel()),
            kernels.end());
}

TEST_F(XorKernelsTest, SetRejectsUnsupportedAndKeepsDispatch) {
  const auto& kernels = supported_xor_kernels();
  const XorKernel before = active_xor_kernel();
  for (XorKernel k : {XorKernel::Avx2, XorKernel::Avx512, XorKernel::Neon}) {
    if (std::find(kernels.begin(), kernels.end(), k) == kernels.end()) {
      EXPECT_FALSE(set_xor_kernel(k));
      EXPECT_EQ(active_xor_kernel(), before);
    }
  }
  EXPECT_TRUE(set_xor_kernel(XorKernel::Scalar));
  EXPECT_EQ(active_xor_kernel(), XorKernel::Scalar);
}

TEST_F(XorKernelsTest, XorIntoRejectsSizeMismatch) {
  std::vector<std::byte> a(8);
  std::vector<std::byte> b(7);
  EXPECT_THROW(xor_into(a, b), util::CheckError);
  EXPECT_THROW(xor_fold(a, std::vector<std::span<const std::byte>>{b}),
               util::CheckError);
}

// Every dispatched variant against the portable reference, across odd sizes
// (0..257 covers each kernel's wide loop, narrow loop, and byte tail),
// misaligned base offsets, and 1..8 sources — for both fold semantics.
TEST_F(XorKernelsTest, DifferentialAgainstScalarReference) {
  constexpr std::size_t kMaxSize = 257;
  constexpr std::size_t kGuard = 64;
  const std::size_t offsets[] = {0, 1, 3, 7, 31, 63};
  util::Rng rng(0xd1ffu);

  // One oversized pool per role; each case carves misaligned windows.
  std::vector<std::byte> dst_pool(kMaxSize + 2 * kGuard + 64);
  std::vector<std::vector<std::byte>> src_pools(8);
  for (auto& p : src_pools) {
    p.resize(kMaxSize + 64);
  }

  for (XorKernel kernel : supported_xor_kernels()) {
    SCOPED_TRACE(std::string(to_string(kernel)));
    for (std::size_t size = 0; size <= kMaxSize; ++size) {
      for (std::size_t offset : offsets) {
        for (std::size_t nsrcs = 1; nsrcs <= 8; ++nsrcs) {
          for (bool accumulate : {false, true}) {
            rng.fill_bytes(dst_pool);
            std::vector<std::span<const std::byte>> srcs;
            std::vector<const std::byte*> raw;
            for (std::size_t s = 0; s < nsrcs; ++s) {
              rng.fill_bytes(src_pools[s]);
              // Stagger source offsets so dst/src alignments differ.
              const std::size_t so = (offset + s) % 64;
              srcs.push_back({src_pools[s].data() + so, size});
              raw.push_back(src_pools[s].data() + so);
            }
            std::vector<std::byte> expected(
                dst_pool.begin() + static_cast<std::ptrdiff_t>(kGuard +
                                                               offset),
                dst_pool.begin() + static_cast<std::ptrdiff_t>(kGuard +
                                                               offset + size));
            detail::xor_fold_scalar(expected.data(), raw.data(), nsrcs, size,
                                    accumulate);

            const std::vector<std::byte> before = dst_pool;
            ASSERT_TRUE(set_xor_kernel(kernel));
            std::span<std::byte> dst{dst_pool.data() + kGuard + offset, size};
            if (accumulate) {
              xor_fold_into(dst, srcs);
            } else {
              xor_fold(dst, srcs);
            }

            ASSERT_TRUE(std::equal(dst.begin(), dst.end(), expected.begin()))
                << "size=" << size << " offset=" << offset
                << " nsrcs=" << nsrcs << " accumulate=" << accumulate;
            // Guard bytes on both flanks of the window must be untouched.
            for (std::size_t g = 0; g < kGuard + offset; ++g) {
              ASSERT_EQ(dst_pool[g], before[g]) << "leading guard at " << g;
            }
            for (std::size_t g = kGuard + offset + size; g < dst_pool.size();
                 ++g) {
              ASSERT_EQ(dst_pool[g], before[g]) << "trailing guard at " << g;
            }
          }
        }
      }
    }
  }
}

TEST_F(XorKernelsTest, XorIntoMatchesSingleSourceFold) {
  util::Rng rng(0xabcdu);
  for (XorKernel kernel : supported_xor_kernels()) {
    ASSERT_TRUE(set_xor_kernel(kernel));
    for (std::size_t size : {0u, 1u, 63u, 64u, 257u, 4096u}) {
      std::vector<std::byte> a(size);
      std::vector<std::byte> b(size);
      rng.fill_bytes(a);
      rng.fill_bytes(b);
      std::vector<std::byte> expected = a;
      const std::byte* src = b.data();
      detail::xor_fold_scalar(expected.data(), &src, 1, size, true);
      xor_into(a, b);
      EXPECT_EQ(a, expected) << to_string(kernel) << " size=" << size;
    }
  }
}

TEST_F(XorKernelsTest, EmptySourceListZeroesOrPreservesDst) {
  std::vector<std::byte> dst(100, std::byte{0x5a});
  const std::vector<std::span<const std::byte>> none;
  xor_fold_into(dst, none);  // dst ^= nothing
  EXPECT_TRUE(std::all_of(dst.begin(), dst.end(),
                          [](std::byte b) { return b == std::byte{0x5a}; }));
  xor_fold(dst, none);  // dst = empty fold = zero
  EXPECT_TRUE(std::all_of(dst.begin(), dst.end(),
                          [](std::byte b) { return b == std::byte{0}; }));
}

// encode -> erase -> decode_erasures -> verify must round-trip
// byte-identically under every kernel variant: the stripe bytes a variant
// produces must equal the scalar build's bytes chunk for chunk.
TEST_F(XorKernelsTest, DecodeRoundTripBitIdenticalAcrossKernels) {
  for (CodeId code : {CodeId::Tip, CodeId::Star}) {
    const Layout l = make_layout(code, 7);
    // Odd chunk size: every fold exercises the sub-vector tail.
    constexpr std::size_t kChunk = 1000;

    // Reference run entirely on the scalar kernel.
    ASSERT_TRUE(set_xor_kernel(XorKernel::Scalar));
    util::Rng rng(0x5eedu);
    StripeData reference(l, kChunk);
    reference.fill_random(rng);
    encode(reference);
    ASSERT_TRUE(verify(reference));

    std::vector<Cell> erased;
    for (int col : {0, 2, 5}) {
      const auto cells = l.column_cells(col);
      erased.insert(erased.end(), cells.begin(), cells.end());
    }

    for (XorKernel kernel : supported_xor_kernels()) {
      SCOPED_TRACE(std::string(to_string(kernel)));
      ASSERT_TRUE(set_xor_kernel(kernel));
      util::Rng rng2(0x5eedu);
      StripeData s(l, kChunk);
      s.fill_random(rng2);
      encode(s);
      ASSERT_TRUE(verify(s));
      for (const Cell& c : erased) {
        s.erase(c);
      }
      const DecodeResult res = decode_erasures(s, erased);
      ASSERT_TRUE(res.ok);
      ASSERT_TRUE(verify(s));
      for (int i = 0; i < l.num_cells(); ++i) {
        const Cell c = l.cell_at(i);
        const auto got = s.chunk(c);
        const auto want = reference.chunk(c);
        ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
            << "chunk " << to_string(c) << " differs";
      }
    }
  }
}

// xor_fold_batch must be bit-identical to folding its jobs one at a time
// with the portable reference — for every dispatched variant, batch sizes
// 1/2/odd/large, mixed accumulate flags, and ragged job sizes that stress
// each kernel's tail handling.
TEST_F(XorKernelsTest, BatchMatchesSequentialFoldAcrossKernels) {
  util::Rng rng(0xba7c4u);
  for (XorKernel kernel : supported_xor_kernels()) {
    SCOPED_TRACE(std::string(to_string(kernel)));
    for (std::size_t batch : {1u, 2u, 7u, 64u}) {
      // Stable backing stores: FoldJob keeps raw pointers.
      std::vector<std::vector<std::byte>> dsts(batch);
      std::vector<std::vector<std::byte>> expected(batch);
      std::vector<std::vector<std::vector<std::byte>>> srcs(batch);
      std::vector<std::vector<const std::byte*>> ptrs(batch);
      std::vector<FoldJob> jobs;
      for (std::size_t j = 0; j < batch; ++j) {
        const std::size_t size = 1 + (j * 37) % 300;  // ragged, tail-heavy
        const std::size_t nsrcs = 1 + j % 5;
        const bool accumulate = (j % 3) == 0;
        dsts[j].resize(size);
        rng.fill_bytes(dsts[j]);
        expected[j] = dsts[j];
        for (std::size_t s = 0; s < nsrcs; ++s) {
          srcs[j].emplace_back(size);
          rng.fill_bytes(srcs[j].back());
          ptrs[j].push_back(srcs[j].back().data());
        }
        detail::xor_fold_scalar(expected[j].data(), ptrs[j].data(), nsrcs,
                                size, accumulate);
        jobs.push_back(
            FoldJob{dsts[j].data(), ptrs[j].data(), nsrcs, size, accumulate});
      }
      ASSERT_TRUE(set_xor_kernel(kernel));
      xor_fold_batch(jobs);
      for (std::size_t j = 0; j < batch; ++j) {
        ASSERT_EQ(dsts[j], expected[j]) << "batch=" << batch << " job=" << j;
      }
    }
  }
}

// The pool-split path (big batches fan out through parallel_for) must
// produce the same bytes as the serial dispatch: jobs are independent, so
// execution order cannot matter.
TEST_F(XorKernelsTest, BatchParallelSplitIsBitIdentical) {
  util::Rng rng(0x9001u);
  constexpr std::size_t kJobs = 24;
  constexpr std::size_t kSize = 64 * 1024;  // 24 jobs * 3 spans > 1 MiB
  std::vector<std::vector<std::byte>> serial_dst(kJobs);
  std::vector<std::vector<std::byte>> pooled_dst(kJobs);
  std::vector<std::vector<std::byte>> src(kJobs);
  std::vector<const std::byte*> ptr(kJobs);
  std::vector<FoldJob> serial_jobs;
  std::vector<FoldJob> pooled_jobs;
  for (std::size_t j = 0; j < kJobs; ++j) {
    serial_dst[j].resize(kSize);
    rng.fill_bytes(serial_dst[j]);
    pooled_dst[j] = serial_dst[j];
    src[j].resize(kSize);
    rng.fill_bytes(src[j]);
    ptr[j] = src[j].data();
    serial_jobs.push_back(FoldJob{serial_dst[j].data(), &ptr[j], 1, kSize,
                                  (j % 2) == 0});
    pooled_jobs.push_back(FoldJob{pooled_dst[j].data(), &ptr[j], 1, kSize,
                                  (j % 2) == 0});
  }
  xor_fold_batch(serial_jobs);
  util::ThreadPool pool(4);
  xor_fold_batch(pooled_jobs, &pool);
  for (std::size_t j = 0; j < kJobs; ++j) {
    ASSERT_EQ(pooled_dst[j], serial_dst[j]) << "job " << j;
  }
}

// FoldBatch's overlap barriers must make a batched dependency chain land
// on the same bytes as immediate sequential folds: RAW (a later fold reads
// an earlier fold's destination), WAW, and WAR all force a flush.
TEST_F(XorKernelsTest, FoldBatchPreservesDependencyChains) {
  util::Rng rng(0xdeb7u);
  constexpr std::size_t kSize = 129;
  std::vector<std::byte> a(kSize);
  std::vector<std::byte> b(kSize);
  std::vector<std::byte> c(kSize);
  std::vector<std::byte> d(kSize);
  rng.fill_bytes(a);
  rng.fill_bytes(b);
  rng.fill_bytes(c);
  rng.fill_bytes(d);

  // Reference: immediate folds in program order.
  auto run_sequential = [&](std::vector<std::byte> va, std::vector<std::byte> vb,
                            std::vector<std::byte> vc,
                            std::vector<std::byte> vd) {
    xor_fold(vb, std::vector<std::span<const std::byte>>{va});       // b = a
    xor_fold(vc, std::vector<std::span<const std::byte>>{vb, va});   // RAW on b
    xor_fold_into(va, std::vector<std::span<const std::byte>>{vd});  // WAR on a
    xor_fold(vd, std::vector<std::span<const std::byte>>{vc});       // RAW on c
    return std::vector<std::vector<std::byte>>{va, vb, vc, vd};
  };
  const auto expected = run_sequential(a, b, c, d);

  FoldBatch batch;
  batch.add(b, std::vector<std::span<const std::byte>>{a});
  batch.add(c, std::vector<std::span<const std::byte>>{b, a});
  batch.add(a, std::vector<std::span<const std::byte>>{d}, /*accumulate=*/true);
  batch.add(d, std::vector<std::span<const std::byte>>{c});
  batch.flush();
  EXPECT_EQ(a, expected[0]);
  EXPECT_EQ(b, expected[1]);
  EXPECT_EQ(c, expected[2]);
  EXPECT_EQ(d, expected[3]);
}

TEST_F(XorKernelsTest, FoldBatchIndependentJobsCoalesceAndDestructorFlushes) {
  util::Rng rng(0x70a1u);
  constexpr std::size_t kSize = 77;
  std::vector<std::byte> s1(kSize);
  std::vector<std::byte> s2(kSize);
  rng.fill_bytes(s1);
  rng.fill_bytes(s2);
  std::vector<std::byte> d1(kSize, std::byte{0xff});
  std::vector<std::byte> d2(kSize, std::byte{0xff});
  {
    FoldBatch batch;
    batch.add(d1, std::vector<std::span<const std::byte>>{s1, s2});
    batch.add(d2, std::vector<std::span<const std::byte>>{s2});
    EXPECT_EQ(batch.pending(), 2u);  // independent: one wave, no flush yet
    // Destructor dispatches the pending wave.
  }
  std::vector<std::byte> want1(kSize);
  std::vector<std::byte> want2(kSize);
  const std::byte* p1[] = {s1.data(), s2.data()};
  detail::xor_fold_scalar(want1.data(), p1, 2, kSize, false);
  const std::byte* p2[] = {s2.data()};
  detail::xor_fold_scalar(want2.data(), p2, 1, kSize, false);
  EXPECT_EQ(d1, want1);
  EXPECT_EQ(d2, want2);
}

TEST_F(XorKernelsTest, StripeDataChunksAre64ByteAligned) {
  const Layout l = make_layout(CodeId::Tip, 7);
  for (std::size_t chunk_size : {1u, 7u, 64u, 1000u, 4096u}) {
    StripeData s(l, chunk_size);
    for (int i = 0; i < l.num_cells(); ++i) {
      const auto span = s.chunk(l.cell_at(i));
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(span.data()) %
                    StripeData::kAlignment,
                0u);
      EXPECT_EQ(span.size(), chunk_size);
    }
  }
}

}  // namespace
}  // namespace fbf::codes
