#include "codes/xor_kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "codes/builders.h"
#include "codes/codec.h"
#include "util/check.h"
#include "util/rng.h"

namespace fbf::codes {
namespace {

/// Restores the default dispatch decision after each test so the order the
/// suite runs in cannot leak a forced kernel into unrelated tests.
class XorKernelsTest : public ::testing::Test {
 protected:
  void TearDown() override { set_xor_kernel(saved_); }
  XorKernel saved_ = active_xor_kernel();
};

TEST_F(XorKernelsTest, SupportedAlwaysContainsScalarAndActive) {
  const auto& kernels = supported_xor_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front(), XorKernel::Scalar);
  EXPECT_NE(std::find(kernels.begin(), kernels.end(), active_xor_kernel()),
            kernels.end());
}

TEST_F(XorKernelsTest, SetRejectsUnsupportedAndKeepsDispatch) {
  const auto& kernels = supported_xor_kernels();
  const XorKernel before = active_xor_kernel();
  for (XorKernel k : {XorKernel::Avx2, XorKernel::Avx512, XorKernel::Neon}) {
    if (std::find(kernels.begin(), kernels.end(), k) == kernels.end()) {
      EXPECT_FALSE(set_xor_kernel(k));
      EXPECT_EQ(active_xor_kernel(), before);
    }
  }
  EXPECT_TRUE(set_xor_kernel(XorKernel::Scalar));
  EXPECT_EQ(active_xor_kernel(), XorKernel::Scalar);
}

TEST_F(XorKernelsTest, XorIntoRejectsSizeMismatch) {
  std::vector<std::byte> a(8);
  std::vector<std::byte> b(7);
  EXPECT_THROW(xor_into(a, b), util::CheckError);
  EXPECT_THROW(xor_fold(a, std::vector<std::span<const std::byte>>{b}),
               util::CheckError);
}

// Every dispatched variant against the portable reference, across odd sizes
// (0..257 covers each kernel's wide loop, narrow loop, and byte tail),
// misaligned base offsets, and 1..8 sources — for both fold semantics.
TEST_F(XorKernelsTest, DifferentialAgainstScalarReference) {
  constexpr std::size_t kMaxSize = 257;
  constexpr std::size_t kGuard = 64;
  const std::size_t offsets[] = {0, 1, 3, 7, 31, 63};
  util::Rng rng(0xd1ffu);

  // One oversized pool per role; each case carves misaligned windows.
  std::vector<std::byte> dst_pool(kMaxSize + 2 * kGuard + 64);
  std::vector<std::vector<std::byte>> src_pools(8);
  for (auto& p : src_pools) {
    p.resize(kMaxSize + 64);
  }

  for (XorKernel kernel : supported_xor_kernels()) {
    SCOPED_TRACE(std::string(to_string(kernel)));
    for (std::size_t size = 0; size <= kMaxSize; ++size) {
      for (std::size_t offset : offsets) {
        for (std::size_t nsrcs = 1; nsrcs <= 8; ++nsrcs) {
          for (bool accumulate : {false, true}) {
            rng.fill_bytes(dst_pool);
            std::vector<std::span<const std::byte>> srcs;
            std::vector<const std::byte*> raw;
            for (std::size_t s = 0; s < nsrcs; ++s) {
              rng.fill_bytes(src_pools[s]);
              // Stagger source offsets so dst/src alignments differ.
              const std::size_t so = (offset + s) % 64;
              srcs.push_back({src_pools[s].data() + so, size});
              raw.push_back(src_pools[s].data() + so);
            }
            std::vector<std::byte> expected(
                dst_pool.begin() + static_cast<std::ptrdiff_t>(kGuard +
                                                               offset),
                dst_pool.begin() + static_cast<std::ptrdiff_t>(kGuard +
                                                               offset + size));
            detail::xor_fold_scalar(expected.data(), raw.data(), nsrcs, size,
                                    accumulate);

            const std::vector<std::byte> before = dst_pool;
            ASSERT_TRUE(set_xor_kernel(kernel));
            std::span<std::byte> dst{dst_pool.data() + kGuard + offset, size};
            if (accumulate) {
              xor_fold_into(dst, srcs);
            } else {
              xor_fold(dst, srcs);
            }

            ASSERT_TRUE(std::equal(dst.begin(), dst.end(), expected.begin()))
                << "size=" << size << " offset=" << offset
                << " nsrcs=" << nsrcs << " accumulate=" << accumulate;
            // Guard bytes on both flanks of the window must be untouched.
            for (std::size_t g = 0; g < kGuard + offset; ++g) {
              ASSERT_EQ(dst_pool[g], before[g]) << "leading guard at " << g;
            }
            for (std::size_t g = kGuard + offset + size; g < dst_pool.size();
                 ++g) {
              ASSERT_EQ(dst_pool[g], before[g]) << "trailing guard at " << g;
            }
          }
        }
      }
    }
  }
}

TEST_F(XorKernelsTest, XorIntoMatchesSingleSourceFold) {
  util::Rng rng(0xabcdu);
  for (XorKernel kernel : supported_xor_kernels()) {
    ASSERT_TRUE(set_xor_kernel(kernel));
    for (std::size_t size : {0u, 1u, 63u, 64u, 257u, 4096u}) {
      std::vector<std::byte> a(size);
      std::vector<std::byte> b(size);
      rng.fill_bytes(a);
      rng.fill_bytes(b);
      std::vector<std::byte> expected = a;
      const std::byte* src = b.data();
      detail::xor_fold_scalar(expected.data(), &src, 1, size, true);
      xor_into(a, b);
      EXPECT_EQ(a, expected) << to_string(kernel) << " size=" << size;
    }
  }
}

TEST_F(XorKernelsTest, EmptySourceListZeroesOrPreservesDst) {
  std::vector<std::byte> dst(100, std::byte{0x5a});
  const std::vector<std::span<const std::byte>> none;
  xor_fold_into(dst, none);  // dst ^= nothing
  EXPECT_TRUE(std::all_of(dst.begin(), dst.end(),
                          [](std::byte b) { return b == std::byte{0x5a}; }));
  xor_fold(dst, none);  // dst = empty fold = zero
  EXPECT_TRUE(std::all_of(dst.begin(), dst.end(),
                          [](std::byte b) { return b == std::byte{0}; }));
}

// encode -> erase -> decode_erasures -> verify must round-trip
// byte-identically under every kernel variant: the stripe bytes a variant
// produces must equal the scalar build's bytes chunk for chunk.
TEST_F(XorKernelsTest, DecodeRoundTripBitIdenticalAcrossKernels) {
  for (CodeId code : {CodeId::Tip, CodeId::Star}) {
    const Layout l = make_layout(code, 7);
    // Odd chunk size: every fold exercises the sub-vector tail.
    constexpr std::size_t kChunk = 1000;

    // Reference run entirely on the scalar kernel.
    ASSERT_TRUE(set_xor_kernel(XorKernel::Scalar));
    util::Rng rng(0x5eedu);
    StripeData reference(l, kChunk);
    reference.fill_random(rng);
    encode(reference);
    ASSERT_TRUE(verify(reference));

    std::vector<Cell> erased;
    for (int col : {0, 2, 5}) {
      const auto cells = l.column_cells(col);
      erased.insert(erased.end(), cells.begin(), cells.end());
    }

    for (XorKernel kernel : supported_xor_kernels()) {
      SCOPED_TRACE(std::string(to_string(kernel)));
      ASSERT_TRUE(set_xor_kernel(kernel));
      util::Rng rng2(0x5eedu);
      StripeData s(l, kChunk);
      s.fill_random(rng2);
      encode(s);
      ASSERT_TRUE(verify(s));
      for (const Cell& c : erased) {
        s.erase(c);
      }
      const DecodeResult res = decode_erasures(s, erased);
      ASSERT_TRUE(res.ok);
      ASSERT_TRUE(verify(s));
      for (int i = 0; i < l.num_cells(); ++i) {
        const Cell c = l.cell_at(i);
        const auto got = s.chunk(c);
        const auto want = reference.chunk(c);
        ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
            << "chunk " << to_string(c) << " differs";
      }
    }
  }
}

TEST_F(XorKernelsTest, StripeDataChunksAre64ByteAligned) {
  const Layout l = make_layout(CodeId::Tip, 7);
  for (std::size_t chunk_size : {1u, 7u, 64u, 1000u, 4096u}) {
    StripeData s(l, chunk_size);
    for (int i = 0; i < l.num_cells(); ++i) {
      const auto span = s.chunk(l.cell_at(i));
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(span.data()) %
                    StripeData::kAlignment,
                0u);
      EXPECT_EQ(span.size(), chunk_size);
    }
  }
}

}  // namespace
}  // namespace fbf::codes
