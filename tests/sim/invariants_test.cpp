// Cross-engine conservation laws (sim/validate.h): both engines must
// satisfy the same accounting identities on every run, and validation
// must reject metrics that break them.
#include "sim/validate.h"

#include <gtest/gtest.h>

#include "codes/builders.h"
#include "sim/dor_engine.h"
#include "sim/reconstruction.h"
#include "util/check.h"
#include "workload/app_trace.h"

namespace fbf::sim {
namespace {

std::vector<workload::StripeError> make_trace(const codes::Layout& l,
                                              int n_errors,
                                              std::uint64_t seed = 5) {
  workload::ErrorTraceConfig cfg;
  cfg.num_stripes = 10000;
  cfg.num_errors = n_errors;
  cfg.target_col = 0;
  cfg.seed = seed;
  return workload::generate_error_trace(l, cfg);
}

SimMetrics run_sor(const codes::Layout& l, const ArrayGeometry& g,
                   const std::vector<workload::StripeError>& errors,
                   cache::PolicyId policy, std::size_t cache_chunks) {
  ReconstructionConfig cfg;
  cfg.workers = 4;
  cfg.chunk_bytes = 32 * 1024;
  cfg.cache_bytes = cache_chunks * cfg.chunk_bytes;
  cfg.policy = policy;
  cfg.seed = 11;
  ReconstructionEngine engine(l, g, cfg);
  return engine.run(errors);
}

SimMetrics run_dor(const codes::Layout& l, const ArrayGeometry& g,
                   const std::vector<workload::StripeError>& errors,
                   cache::PolicyId policy, std::size_t cache_chunks) {
  DorConfig cfg;
  cfg.chunk_bytes = 32 * 1024;
  cfg.cache_bytes = cache_chunks * cfg.chunk_bytes;
  cfg.policy = policy;
  cfg.seed = 11;
  DorEngine engine(l, g, cfg);
  return engine.run(errors);
}

TEST(Invariants, SorSatisfiesConservationLaws) {
  for (cache::PolicyId policy :
       {cache::PolicyId::Fbf, cache::PolicyId::Lru, cache::PolicyId::Arc}) {
    const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
    const ArrayGeometry g(l, 10000);
    const auto errors = make_trace(l, 40);
    const SimMetrics m = run_sor(l, g, errors, policy, 64);
    EXPECT_NO_THROW(validate_run(m, errors));
    EXPECT_EQ(m.planned_disk_reads, 0u);  // SOR reads are all demand misses
  }
}

TEST(Invariants, DorSatisfiesConservationLaws) {
  for (cache::PolicyId policy :
       {cache::PolicyId::Fbf, cache::PolicyId::TwoQ, cache::PolicyId::Lfu}) {
    const codes::Layout l = codes::make_layout(codes::CodeId::TripleStar, 7);
    const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
    const auto errors = make_trace(l, 30);
    const SimMetrics m = run_dor(l, g, errors, policy, 16);
    EXPECT_NO_THROW(validate_run(m, errors));
    // The streaming plan fetches each distinct surviving chunk once; every
    // extra read is a consumption miss.
    EXPECT_GT(m.planned_disk_reads, 0u);
    EXPECT_EQ(m.disk_reads, m.planned_disk_reads + m.cache.misses);
  }
}

TEST(Invariants, HoldAcrossAllCodesAndSchemes) {
  for (codes::CodeId id : codes::kAllCodes) {
    const codes::Layout l = codes::make_layout(id, 5);
    const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
    const auto errors = make_trace(l, 12);
    for (recovery::SchemeKind kind : {recovery::SchemeKind::HorizontalFirst,
                                      recovery::SchemeKind::RoundRobin,
                                      recovery::SchemeKind::GreedyMinIO}) {
      {
        ReconstructionConfig cfg;
        cfg.workers = 2;
        cfg.chunk_bytes = 32 * 1024;
        cfg.cache_bytes = 32 * cfg.chunk_bytes;
        cfg.scheme = kind;
        ReconstructionEngine engine(l, g, cfg);
        const SimMetrics m = engine.run(errors);
        EXPECT_NO_THROW(validate_run(m, errors)) << l.name();
      }
      {
        DorConfig cfg;
        cfg.chunk_bytes = 32 * 1024;
        cfg.cache_bytes = 32 * cfg.chunk_bytes;
        cfg.scheme = kind;
        DorEngine engine(l, g, cfg);
        const SimMetrics m = engine.run(errors);
        EXPECT_NO_THROW(validate_run(m, errors)) << l.name();
      }
    }
  }
}

TEST(Invariants, SorWithAppTrafficStillValidates) {
  // Foreground ops land on the disks but are metered separately; the
  // per-disk cross-checks relax, the recovery identities must still hold.
  const codes::Layout l = codes::make_layout(codes::CodeId::Star, 7);
  const ArrayGeometry g(l, 10000);
  const auto errors = make_trace(l, 20);
  workload::AppTraceConfig app_cfg;
  app_cfg.num_stripes = 10000;
  app_cfg.num_requests = 500;
  const auto app = workload::generate_app_trace(l, app_cfg);
  ReconstructionConfig cfg;
  cfg.workers = 4;
  cfg.chunk_bytes = 32 * 1024;
  cfg.cache_bytes = 64 * cfg.chunk_bytes;
  ReconstructionEngine engine(l, g, cfg);
  const SimMetrics m = engine.run(errors, app);
  ASSERT_EQ(m.app_requests, 500u);
  EXPECT_NO_THROW(validate_run(m, errors));
}

TEST(Invariants, ValidateRejectsCorruptedMetrics) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000);
  const auto errors = make_trace(l, 15);
  const SimMetrics good = run_sor(l, g, errors, cache::PolicyId::Fbf, 32);
  ASSERT_NO_THROW(validate_run(good, errors));

  SimMetrics m = good;
  m.disk_reads += 1;  // a read no miss accounts for
  EXPECT_THROW(validate_metrics(m), util::CheckError);

  m = good;
  m.cache.hits += 1;  // a consumption out of thin air
  EXPECT_THROW(validate_metrics(m), util::CheckError);

  m = good;
  m.disk_writes += 1;  // a spare write with no recovered chunk
  EXPECT_THROW(validate_metrics(m), util::CheckError);

  m = good;
  m.reconstruction_ms = 0.0;  // disks busy past the claimed makespan
  EXPECT_THROW(validate_metrics(m), util::CheckError);

  m = good;
  m.stripes_recovered -= 1;  // a damaged stripe left unrecovered
  EXPECT_THROW(validate_run(m, errors), util::CheckError);

  m = good;
  m.chunks_recovered += 1;  // more rebuilt chunks than the trace lost
  EXPECT_THROW(validate_run(m, errors), util::CheckError);
}

TEST(Invariants, DorTerminatesWithBufferSmallerThanChain) {
  // Regression: before attempt_completion consumed the freshly delivered
  // member first, these configurations livelocked — every completion
  // round's miss-inserts evicted the fresh chunk before its turn (LFU
  // keeps high-frequency keys over fresh freq-1 arrivals even at 16
  // chunks), so the same member set was re-read forever.
  const codes::Layout l = codes::make_layout(codes::CodeId::TripleStar, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  const auto errors = make_trace(l, 10);
  for (cache::PolicyId policy :
       {cache::PolicyId::Lfu, cache::PolicyId::TwoQ, cache::PolicyId::Fbf,
        cache::PolicyId::Lru}) {
    const SimMetrics m = run_dor(l, g, errors, policy, 1);
    EXPECT_NO_THROW(validate_run(m, errors));
    EXPECT_EQ(m.stripes_recovered, errors.size());
  }
}

TEST(Invariants, DorRejectsZeroCapacityBuffer) {
  // A zero-chunk buffer livelocks DOR (every consumption misses and
  // re-enqueues forever), so the constructor must refuse it.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 100);
  DorConfig cfg;
  cfg.chunk_bytes = 32 * 1024;
  cfg.cache_bytes = cfg.chunk_bytes - 1;  // rounds down to zero chunks
  EXPECT_THROW(DorEngine(l, g, cfg), util::CheckError);
}

TEST(Invariants, DorDiskReadsMonotoneUnderShrinkingBuffer) {
  // Shrinking the shared buffer can only force more re-reads, never fewer,
  // and consumption hit ratio can only fall.
  const codes::Layout l = codes::make_layout(codes::CodeId::TripleStar, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  const auto errors = make_trace(l, 30);
  std::uint64_t prev_reads = 0;
  double prev_hit_ratio = 1.0;
  bool first = true;
  for (std::size_t chunks : {4096u, 256u, 64u, 16u, 4u, 1u}) {
    const SimMetrics m = run_dor(l, g, errors, cache::PolicyId::Fbf, chunks);
    EXPECT_NO_THROW(validate_run(m, errors)) << "buffer " << chunks;
    if (!first) {
      EXPECT_GE(m.disk_reads, prev_reads) << "buffer " << chunks;
      EXPECT_LE(m.cache.hit_ratio(), prev_hit_ratio) << "buffer " << chunks;
    }
    first = false;
    prev_reads = m.disk_reads;
    prev_hit_ratio = m.cache.hit_ratio();
  }
}

TEST(Invariants, SorDiskReadsMonotoneUnderShrinkingCache) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Star, 7);
  const ArrayGeometry g(l, 10000);
  const auto errors = make_trace(l, 40);
  std::uint64_t prev_reads = 0;
  bool first = true;
  for (std::size_t chunks : {4096u, 512u, 64u, 8u, 0u}) {
    const SimMetrics m = run_sor(l, g, errors, cache::PolicyId::Fbf, chunks);
    EXPECT_NO_THROW(validate_run(m, errors)) << "cache " << chunks;
    if (!first) {
      EXPECT_GE(m.disk_reads, prev_reads) << "cache " << chunks;
    }
    first = false;
    prev_reads = m.disk_reads;
  }
}

}  // namespace
}  // namespace fbf::sim
