#include "sim/disk.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fbf::sim {
namespace {

DiskParams fixed_params() {
  DiskParams p;
  p.kind = DiskModelKind::FixedLatency;
  p.read_ms = 10.0;
  p.write_ms = 12.0;
  return p;
}

TEST(Disk, FixedLatencyIdleService) {
  Disk d(0, fixed_params(), 1);
  EXPECT_DOUBLE_EQ(d.submit_read(0.0, 5), 10.0);
  EXPECT_DOUBLE_EQ(d.submit_write(20.0, 5), 32.0);
}

TEST(Disk, FcfsQueueingDelaysSecondRequest) {
  Disk d(0, fixed_params(), 1);
  EXPECT_DOUBLE_EQ(d.submit_read(0.0, 1), 10.0);
  // Arrives while busy: starts at 10, finishes at 20.
  EXPECT_DOUBLE_EQ(d.submit_read(2.0, 2), 20.0);
  // Arrives after the queue drained: starts at its arrival.
  EXPECT_DOUBLE_EQ(d.submit_read(25.0, 3), 35.0);
}

TEST(Disk, StatsTrackOps) {
  Disk d(3, fixed_params(), 1);
  d.submit_read(0.0, 1);
  d.submit_read(0.0, 2);
  d.submit_write(0.0, 3);
  EXPECT_EQ(d.stats().reads, 2u);
  EXPECT_EQ(d.stats().writes, 1u);
  EXPECT_DOUBLE_EQ(d.stats().busy_ms, 32.0);
  EXPECT_DOUBLE_EQ(d.stats().last_completion_ms, 32.0);
  EXPECT_EQ(d.id(), 3);
}

TEST(Disk, UtilizationFraction) {
  Disk d(0, fixed_params(), 1);
  d.submit_read(0.0, 1);
  EXPECT_DOUBLE_EQ(d.utilization(100.0), 0.1);
  EXPECT_DOUBLE_EQ(d.utilization(0.0), 0.0);
}

TEST(Disk, DetailedModelPositiveAndBounded) {
  DiskParams p;
  p.kind = DiskModelKind::Detailed;
  p.capacity_chunks = 1 << 20;
  Disk d(0, p, 7);
  double prev_done = 0.0;
  for (std::uint64_t lba : {0ull, 1000ull, 500000ull, 3ull}) {
    const double done = d.submit_read(prev_done, lba);
    const double service = done - prev_done;
    EXPECT_GT(service, 0.0);
    // Bounded by max seek + full rotation + transfer.
    EXPECT_LT(service, p.seek_max_ms + 60000.0 / p.rpm + 5.0);
    prev_done = done;
  }
}

TEST(Disk, DetailedModelSeekGrowsWithDistance) {
  DiskParams p;
  p.kind = DiskModelKind::Detailed;
  p.rpm = 1e9;  // suppress rotational randomness
  p.capacity_chunks = 1 << 20;
  Disk near(0, p, 7);
  Disk far(0, p, 7);
  near.submit_read(0.0, 0);
  far.submit_read(0.0, 0);
  const double near_done = near.submit_read(100.0, 1);
  const double far_done = far.submit_read(100.0, 1 << 19);
  EXPECT_LT(near_done, far_done);
}

TEST(Disk, DetailedModelDeterministicPerSeed) {
  DiskParams p;
  p.kind = DiskModelKind::Detailed;
  Disk a(0, p, 42);
  Disk b(0, p, 42);
  for (std::uint64_t lba = 0; lba < 50; lba += 7) {
    EXPECT_DOUBLE_EQ(a.submit_read(0.0, lba), b.submit_read(0.0, lba));
  }
}

TEST(Disk, TransferTimeMatchesHandComputation) {
  // transfer_MiBps is mebibytes per second (the field was once misnamed
  // transfer_mbps); pin the unit with exact hand-computed times.
  DiskParams p;
  p.transfer_MiBps = 100.0;
  p.chunk_bytes = 1 << 20;  // 1 MiB at 100 MiB/s is exactly 10 ms
  EXPECT_DOUBLE_EQ(transfer_time_ms(p), 10.0);
  p.transfer_MiBps = 150.0;
  p.chunk_bytes = 32 * 1024;  // 32 KiB / (150 * 1048576 / 1000 B/ms)
  EXPECT_DOUBLE_EQ(transfer_time_ms(p), 32768.0 / (150.0 * 1048.576));
  EXPECT_NEAR(transfer_time_ms(p), 5.0 / 24.0, 1e-12);  // = 1000/(150*32)
}

TEST(Disk, DetailedServiceIncludesTransferTime) {
  // Zero-distance access with rotation suppressed leaves pure transfer.
  DiskParams p;
  p.kind = DiskModelKind::Detailed;
  p.rpm = 1e12;  // rotational latency ~ 0
  Disk d(0, p, 7);
  d.submit_read(0.0, 0);
  const double t0 = d.free_at_ms();
  const double done = d.submit_read(t0, 0);  // same LBA: no seek
  EXPECT_NEAR(done - t0, transfer_time_ms(p), 1e-6);
}

TEST(Disk, RejectsNonPositiveLatency) {
  DiskParams p;
  p.read_ms = 0.0;
  EXPECT_THROW(Disk(0, p, 1), util::CheckError);
}

}  // namespace
}  // namespace fbf::sim
