#include "sim/array_geometry.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include <set>

#include "codes/builders.h"

namespace fbf::sim {
namespace {

using codes::Cell;

Cell cell(int r, int c) {
  return Cell{static_cast<std::int16_t>(r), static_cast<std::int16_t>(c)};
}

TEST(ArrayGeometry, DiskEqualsColumnWithoutRotation) {
  const codes::Layout l = codes::make_star(5);
  const ArrayGeometry g(l, 100);
  for (int col = 0; col < l.cols(); ++col) {
    EXPECT_EQ(g.disk_of(7, cell(1, col)), col);
  }
  EXPECT_EQ(g.num_disks(), l.cols());
}

TEST(ArrayGeometry, RotationShiftsByStripe) {
  const codes::Layout l = codes::make_star(5);
  const ArrayGeometry g(l, 100, /*rotate_columns=*/true);
  EXPECT_EQ(g.disk_of(0, cell(0, 2)), 2);
  EXPECT_EQ(g.disk_of(1, cell(0, 2)), 3);
  EXPECT_EQ(g.disk_of(static_cast<std::uint64_t>(l.cols()), cell(0, 2)), 2);
}

TEST(ArrayGeometry, LbaLayoutIsRowMajorPerStripe) {
  const codes::Layout l = codes::make_rtp(5);
  const ArrayGeometry g(l, 100);
  EXPECT_EQ(g.lba_of(0, cell(0, 1)), 0u);
  EXPECT_EQ(g.lba_of(0, cell(3, 1)), 3u);
  EXPECT_EQ(g.lba_of(1, cell(0, 1)),
            static_cast<std::uint64_t>(l.rows()));
  EXPECT_EQ(g.lba_of(9, cell(2, 0)),
            9u * static_cast<std::uint64_t>(l.rows()) + 2u);
}

TEST(ArrayGeometry, SpareRegionBeyondDataRegion) {
  const codes::Layout l = codes::make_rtp(5);
  const ArrayGeometry g(l, 100);
  const auto data_cap = g.disk_capacity_chunks();
  for (std::uint64_t stripe : {0ull, 50ull, 99ull}) {
    const auto lba = g.lba_of(stripe, cell(1, 1));
    EXPECT_LT(lba, data_cap);
    EXPECT_EQ(g.spare_lba_of(stripe, cell(1, 1)), data_cap + lba);
  }
}

TEST(ArrayGeometry, ChunkKeysAreUniqueAcrossStripesAndCells) {
  const codes::Layout l = codes::make_star(5);
  const ArrayGeometry g(l, 10);
  std::set<std::uint64_t> keys;
  for (std::uint64_t s = 0; s < 10; ++s) {
    for (int i = 0; i < l.num_cells(); ++i) {
      EXPECT_TRUE(keys.insert(g.chunk_key(s, l.cell_at(i))).second);
    }
  }
  EXPECT_EQ(keys.size(), 10u * static_cast<std::size_t>(l.num_cells()));
}

TEST(ArrayGeometry, SameDiskSparingKeepsHomeDisk) {
  const codes::Layout l = codes::make_rtp(5);
  const ArrayGeometry g(l, 100, false, SparePlacement::SameDisk);
  for (std::uint64_t s : {0ull, 17ull, 99ull}) {
    for (int col = 0; col < l.cols(); ++col) {
      EXPECT_EQ(g.spare_disk_of(s, cell(1, col)), g.disk_of(s, cell(1, col)));
    }
  }
}

TEST(ArrayGeometry, DistributedSparingAvoidsHomeDisk) {
  const codes::Layout l = codes::make_rtp(5);
  const ArrayGeometry g(l, 100, false, SparePlacement::Distributed);
  for (std::uint64_t s = 0; s < 50; ++s) {
    for (int r = 0; r < l.rows(); ++r) {
      const codes::Cell c = cell(r, 0);
      const int spare = g.spare_disk_of(s, c);
      EXPECT_NE(spare, g.disk_of(s, c));
      EXPECT_GE(spare, 0);
      EXPECT_LT(spare, l.cols());
    }
  }
}

TEST(ArrayGeometry, DistributedSparingSpreadsAcrossDisks) {
  const codes::Layout l = codes::make_rtp(5);
  const ArrayGeometry g(l, 1000, false, SparePlacement::Distributed);
  std::set<int> targets;
  for (std::uint64_t s = 0; s < 100; ++s) {
    targets.insert(g.spare_disk_of(s, cell(0, 0)));
  }
  // Writes must rotate over many peers, not pile on one disk.
  EXPECT_GE(targets.size(), static_cast<std::size_t>(l.cols()) - 2);
}

TEST(ArrayGeometry, BoundsChecks) {
  const codes::Layout l = codes::make_rtp(5);
  const ArrayGeometry g(l, 10);
  EXPECT_THROW(g.lba_of(10, cell(0, 0)), util::CheckError);
  EXPECT_THROW(g.disk_of(0, cell(0, l.cols())), util::CheckError);
  EXPECT_THROW(ArrayGeometry(l, 0), util::CheckError);
}

}  // namespace
}  // namespace fbf::sim
