// Structural guarantees of the pluggable disk-mapping strategies
// (DESIGN.md §15): injective addressing over pools wider than a stripe,
// balance of the declustered layouts, the t-design's uniform pairwise
// overlap, Naive's byte-compatibility with the pre-strategy mapping, and
// collision-freedom of the distributed spare regions (the spare-LBA
// aliasing regression).
#include "sim/array_geometry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

#include "codes/builders.h"
#include "util/check.h"

namespace fbf::sim {
namespace {

using codes::Cell;

Cell cell(int r, int c) {
  return Cell{static_cast<std::int16_t>(r), static_cast<std::int16_t>(c)};
}

std::uint64_t binom_u64(int n, int k) {
  if (k < 0 || k > n) return 0;
  std::uint64_t r = 1;
  for (int i = 0; i < k; ++i) {
    r = r * static_cast<std::uint64_t>(n - i) /
        static_cast<std::uint64_t>(i + 1);
  }
  return r;
}

/// The set of pool disks stripe `s` occupies.
std::set<int> stripe_disks(const ArrayGeometry& g, std::uint64_t s) {
  std::set<int> disks;
  for (int c = 0; c < g.layout().cols(); ++c) {
    disks.insert(g.disk_of(s, cell(0, c)));
  }
  return disks;
}

TEST(LayoutStrategy, NamesRoundTrip) {
  for (LayoutStrategy s :
       {LayoutStrategy::Naive, LayoutStrategy::Rotate,
        LayoutStrategy::TDesignDecluster, LayoutStrategy::D3}) {
    LayoutStrategy parsed{};
    EXPECT_TRUE(layout_strategy_from_string(to_string(s), parsed));
    EXPECT_EQ(parsed, s);
  }
  LayoutStrategy parsed = LayoutStrategy::Rotate;
  EXPECT_FALSE(layout_strategy_from_string("raid5", parsed));
  EXPECT_EQ(parsed, LayoutStrategy::Rotate);  // untouched on failure
}

TEST(LayoutStrategy, ConstructorGuards) {
  const codes::Layout l = codes::make_star(5);  // 8 columns
  // Pool narrower than the stripe cannot place all columns.
  EXPECT_THROW(ArrayGeometry(l, 10, LayoutStrategy::Rotate, l.cols() - 1),
               util::CheckError);
  // Naive is the identity map; a wider pool would leave disks unaddressed.
  EXPECT_THROW(ArrayGeometry(l, 10, LayoutStrategy::Naive, l.cols() + 1),
               util::CheckError);
  // The t-design Pascal table is u64; pools past 64 disks would overflow.
  EXPECT_THROW(ArrayGeometry(l, 10, LayoutStrategy::TDesignDecluster, 65),
               util::CheckError);
  // In-range pools construct for every strategy.
  for (LayoutStrategy s : {LayoutStrategy::Rotate,
                           LayoutStrategy::TDesignDecluster,
                           LayoutStrategy::D3}) {
    const ArrayGeometry g(l, 10, s, l.cols() + 4);
    EXPECT_EQ(g.num_disks(), l.cols() + 4);
    EXPECT_EQ(g.strategy(), s);
  }
}

TEST(LayoutStrategy, NaiveMatchesLegacyIdentityMapping) {
  const codes::Layout l = codes::make_star(7);
  const ArrayGeometry legacy(l, 500, /*rotate_columns=*/false,
                             SparePlacement::SameDisk);
  const ArrayGeometry naive(l, 500, LayoutStrategy::Naive, /*pool_disks=*/0,
                            SparePlacement::SameDisk);
  ASSERT_EQ(naive.num_disks(), legacy.num_disks());
  for (std::uint64_t s : {0ull, 3ull, 499ull}) {
    for (int ci = 0; ci < l.num_cells(); ++ci) {
      const Cell c = l.cell_at(ci);
      EXPECT_EQ(naive.disk_of(s, c), legacy.disk_of(s, c));
      EXPECT_EQ(naive.disk_of(s, c), c.col);  // pre-strategy identity
      EXPECT_EQ(naive.lba_of(s, c), legacy.lba_of(s, c));
      EXPECT_EQ(naive.spare_lba_of(s, c), legacy.spare_lba_of(s, c));
      EXPECT_EQ(naive.chunk_key(s, c), legacy.chunk_key(s, c));
    }
  }
}

TEST(LayoutStrategy, AddressingIsInjectiveAcrossWidePool) {
  const codes::Layout l = codes::make_rtp(7);  // 8 columns
  const std::uint64_t stripes = 1000;
  for (LayoutStrategy s : {LayoutStrategy::Rotate,
                           LayoutStrategy::TDesignDecluster,
                           LayoutStrategy::D3}) {
    for (int pool : {l.cols(), l.cols() + 1, l.cols() + 5}) {
      const ArrayGeometry g(l, stripes, s, pool, SparePlacement::Distributed);
      std::set<std::pair<int, std::uint64_t>> addresses;
      for (std::uint64_t stripe = 0; stripe < stripes; ++stripe) {
        std::set<int> disks;
        for (int ci = 0; ci < l.num_cells(); ++ci) {
          const Cell c = l.cell_at(ci);
          const int disk = g.disk_of(stripe, c);
          ASSERT_GE(disk, 0);
          ASSERT_LT(disk, pool);
          disks.insert(disk);
          ASSERT_TRUE(addresses.insert({disk, g.lba_of(stripe, c)}).second)
              << to_string(s) << " pool=" << pool << " stripe=" << stripe;
        }
        // A stripe's columns must land on pairwise-distinct disks, or a
        // single disk failure costs two chunks of the same stripe.
        ASSERT_EQ(static_cast<int>(disks.size()), l.cols())
            << to_string(s) << " pool=" << pool << " stripe=" << stripe;
      }
    }
  }
}

TEST(LayoutStrategy, TDesignFullSweepIsPerfectlyBalanced) {
  const codes::Layout l = codes::make_rtp(3);  // 4 columns — keeps C(n,k) small
  const int k = l.cols();
  const int n = k + 3;  // pool of 7
  const std::uint64_t blocks = binom_u64(n, k);  // C(7,4) = 35
  const ArrayGeometry g(l, blocks, LayoutStrategy::TDesignDecluster, n);

  std::map<int, std::uint64_t> per_disk;
  std::map<std::pair<int, int>, std::uint64_t> per_pair;
  std::set<std::set<int>> seen_blocks;
  for (std::uint64_t stripe = 0; stripe < blocks; ++stripe) {
    const std::set<int> disks = stripe_disks(g, stripe);
    ASSERT_EQ(static_cast<int>(disks.size()), k);
    // Every k-subset of the pool appears exactly once per design sweep.
    EXPECT_TRUE(seen_blocks.insert(disks).second);
    for (int d : disks) ++per_disk[d];
    for (int a : disks) {
      for (int b : disks) {
        if (a < b) ++per_pair[{a, b}];
      }
    }
  }
  EXPECT_EQ(seen_blocks.size(), blocks);
  // Replication: every disk carries exactly C(n-1, k-1) blocks.
  const std::uint64_t r = binom_u64(n - 1, k - 1);
  ASSERT_EQ(static_cast<int>(per_disk.size()), n);
  for (const auto& [disk, count] : per_disk) {
    EXPECT_EQ(count, r) << "disk " << disk;
  }
  // Pairwise overlap: every disk pair co-occurs in exactly C(n-2, k-2)
  // blocks — the uniform-rebuild-overlap property declustering is for.
  const std::uint64_t lambda = binom_u64(n - 2, k - 2);
  ASSERT_EQ(per_pair.size(),
            static_cast<std::size_t>(binom_u64(n, 2)));
  for (const auto& [pair, count] : per_pair) {
    EXPECT_EQ(count, lambda)
        << "pair (" << pair.first << ", " << pair.second << ")";
  }
}

TEST(LayoutStrategy, D3FullRoundIsPerfectlyBalanced) {
  const codes::Layout l = codes::make_star(5);  // 8 columns
  const int n = l.cols() + 4;                   // pool of 12
  // One full cycle: n offsets per round times one round per unit.
  std::vector<std::uint64_t> units;
  for (std::uint64_t m = 1; m < static_cast<std::uint64_t>(n); ++m) {
    if (std::gcd(m, static_cast<std::uint64_t>(n)) == 1) units.push_back(m);
  }
  const std::uint64_t cycle = static_cast<std::uint64_t>(n) * units.size();
  const ArrayGeometry g(l, cycle, LayoutStrategy::D3, n);

  std::map<int, std::uint64_t> per_disk;
  for (std::uint64_t stripe = 0; stripe < cycle; ++stripe) {
    for (int d : stripe_disks(g, stripe)) ++per_disk[d];
  }
  // Each n-stripe round places every column on every disk exactly once,
  // so the full cycle is perfectly balanced: cols * cycle / n per disk.
  const std::uint64_t expect =
      static_cast<std::uint64_t>(l.cols()) * cycle /
      static_cast<std::uint64_t>(n);
  ASSERT_EQ(static_cast<int>(per_disk.size()), n);
  for (const auto& [disk, count] : per_disk) {
    EXPECT_EQ(count, expect) << "disk " << disk;
  }
}

TEST(LayoutStrategy, PrefixBalanceWithinOneChunkPerRound) {
  // Truncated prefixes (arbitrary stripe counts) stay balanced to within
  // one stripe's worth of chunks per disk for the declustered strategies.
  const codes::Layout l = codes::make_rtp(5);  // 6 columns
  const int n = l.cols() + 4;                  // pool of 10
  for (LayoutStrategy s :
       {LayoutStrategy::TDesignDecluster, LayoutStrategy::D3}) {
    const std::uint64_t stripes = 5000;
    const ArrayGeometry g(l, stripes, s, n);
    std::vector<std::uint64_t> per_disk(static_cast<std::size_t>(n), 0);
    for (std::uint64_t stripe = 0; stripe < stripes; ++stripe) {
      for (int d : stripe_disks(g, stripe)) {
        ++per_disk[static_cast<std::size_t>(d)];
      }
    }
    const auto [lo, hi] = std::minmax_element(per_disk.begin(),
                                              per_disk.end());
    // Long-run drift bound: each design sweep / D3 cycle is perfectly
    // balanced, so imbalance comes only from the final partial period.
    const double mean =
        static_cast<double>(stripes) * l.cols() / static_cast<double>(n);
    EXPECT_LT(static_cast<double>(*hi - *lo), 0.05 * mean) << to_string(s);
  }
}

TEST(LayoutStrategy, DistributedSpareAddressesAreCollisionFree) {
  // The spare-LBA aliasing regression: under Distributed placement two
  // chunks from different home disks can share a spare disk; their spare
  // (disk, LBA) pairs must still be distinct — and distinct from every
  // data address.
  const codes::Layout l = codes::make_rtp(5);  // 6 columns
  const std::uint64_t stripes = 600;
  for (LayoutStrategy s : {LayoutStrategy::Rotate,
                           LayoutStrategy::TDesignDecluster,
                           LayoutStrategy::D3}) {
    const ArrayGeometry g(l, stripes, s, l.cols() + 3,
                          SparePlacement::Distributed);
    std::set<std::pair<int, std::uint64_t>> addresses;
    for (std::uint64_t stripe = 0; stripe < stripes; ++stripe) {
      for (int ci = 0; ci < l.num_cells(); ++ci) {
        const Cell c = l.cell_at(ci);
        ASSERT_TRUE(
            addresses.insert({g.disk_of(stripe, c), g.lba_of(stripe, c)})
                .second);
        const int spare_disk = g.spare_disk_of(stripe, c);
        const std::uint64_t spare_lba = g.spare_lba_of(stripe, c);
        ASSERT_GE(spare_lba, g.disk_capacity_chunks());
        ASSERT_TRUE(addresses.insert({spare_disk, spare_lba}).second)
            << to_string(s) << " stripe=" << stripe << " cell "
            << codes::to_string(c) << " aliases another spare copy";
      }
    }
  }
}

TEST(LayoutStrategy, SpareDiskAvoidsHomeAndCoversPool) {
  const codes::Layout l = codes::make_rtp(5);
  const int pool = l.cols() + 3;
  const ArrayGeometry g(l, 2000, LayoutStrategy::Rotate, pool,
                        SparePlacement::Distributed);
  std::set<int> spare_targets;
  for (std::uint64_t stripe = 0; stripe < 2000; ++stripe) {
    for (int ci = 0; ci < l.num_cells(); ++ci) {
      const Cell c = l.cell_at(ci);
      const int spare = g.spare_disk_of(stripe, c);
      ASSERT_GE(spare, 0);
      ASSERT_LT(spare, pool);
      // Spare never lands on the home disk (that disk just failed).
      ASSERT_NE(spare, g.disk_of(stripe, c));
      spare_targets.insert(spare);
    }
  }
  // Declustered sparing spreads rewrite load over the whole pool.
  EXPECT_EQ(static_cast<int>(spare_targets.size()), pool);
}

}  // namespace
}  // namespace fbf::sim
