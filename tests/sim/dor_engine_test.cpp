#include "sim/dor_engine.h"

#include <gtest/gtest.h>

#include <string>

#include "codes/builders.h"
#include "recovery/scheme.h"
#include "recovery/scheme_cache.h"
#include "util/check.h"

namespace fbf::sim {
namespace {

DorConfig small_config() {
  DorConfig c;
  c.cache_bytes = 64 * 32 * 1024;  // 64 chunks, shared buffer
  c.chunk_bytes = 32 * 1024;
  c.seed = 11;
  return c;
}

std::vector<workload::StripeError> make_trace(const codes::Layout& l,
                                              int n_errors,
                                              std::uint64_t seed = 5) {
  workload::ErrorTraceConfig cfg;
  cfg.num_stripes = 10000;
  cfg.num_errors = n_errors;
  cfg.target_col = 0;
  cfg.seed = seed;
  return workload::generate_error_trace(l, cfg);
}

TEST(DorEngine, RecoversEveryChunk) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  const auto errors = make_trace(l, 30);
  std::uint64_t expected = 0;
  for (const auto& e : errors) {
    expected += static_cast<std::uint64_t>(e.error.num_chunks);
  }
  DorEngine engine(l, g, small_config());
  const SimMetrics m = engine.run(errors);
  EXPECT_EQ(m.chunks_recovered, expected);
  EXPECT_EQ(m.disk_writes, expected);
  EXPECT_EQ(m.stripes_recovered, errors.size());
  EXPECT_GT(m.reconstruction_ms, 0.0);
}

TEST(DorEngine, EventQueueReservationsAreExact) {
  // Faultless DOR issues exactly one in-flight read per disk shard and one
  // spare write per planned task, so the reserves are exact and regrowth
  // must be structurally zero.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  DorEngine engine(l, g, small_config());
  const SimMetrics m = engine.run(make_trace(l, 30));
  EXPECT_GT(m.engine_events, 0u);
  EXPECT_EQ(m.event_queue_regrowths, 0u);
}

TEST(DorEngine, AllCodesAllSchemesComplete) {
  for (codes::CodeId id : codes::kAllCodes) {
    const codes::Layout l = codes::make_layout(id, 5);
    const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
    for (recovery::SchemeKind kind :
         {recovery::SchemeKind::HorizontalFirst,
          recovery::SchemeKind::RoundRobin,
          recovery::SchemeKind::GreedyMinIO}) {
      auto cfg = small_config();
      cfg.scheme = kind;
      DorEngine engine(l, g, cfg);
      const SimMetrics m = engine.run(make_trace(l, 12));
      EXPECT_EQ(m.stripes_recovered, 12u) << l.name();
    }
  }
}

TEST(DorEngine, AmpleBufferFetchesEachDistinctChunkOnce) {
  // With a buffer larger than the whole working set, planned reads cover
  // every distinct chunk exactly once and every consumption hits.
  const codes::Layout l = codes::make_layout(codes::CodeId::TripleStar, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  const auto errors = make_trace(l, 20);
  // Distinct fetch count from the schemes themselves.
  recovery::SchemeCache schemes(l);
  std::uint64_t distinct = 0;
  for (const auto& e : errors) {
    distinct += static_cast<std::uint64_t>(
        schemes.get(e.error, recovery::SchemeKind::RoundRobin)
            ->distinct_reads());
  }
  auto cfg = small_config();
  cfg.cache_bytes = (1u << 16) * cfg.chunk_bytes;
  DorEngine engine(l, g, cfg);
  const SimMetrics m = engine.run(errors);
  EXPECT_EQ(m.disk_reads, distinct);
  EXPECT_EQ(m.cache.misses, 0u);  // no consumption ever missed
  EXPECT_GT(m.cache.hits, 0u);
}

TEST(DorEngine, TightBufferForcesRereads) {
  const codes::Layout l = codes::make_layout(codes::CodeId::TripleStar, 11);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  const auto errors = make_trace(l, 30);
  auto tight = small_config();
  tight.cache_bytes = 8 * tight.chunk_bytes;
  DorEngine a(l, g, tight);
  const SimMetrics small = a.run(errors);
  auto ample = small_config();
  ample.cache_bytes = (1u << 16) * ample.chunk_bytes;
  DorEngine b(l, g, ample);
  const SimMetrics big = b.run(errors);
  EXPECT_GT(small.disk_reads, big.disk_reads);
  EXPECT_GT(small.cache.misses, 0u);
}

TEST(DorEngine, FbfBeatsLruUnderModeratePressure) {
  // Buffer ~10% of the distinct working set: the regime where FBF's
  // priority pinning pays off under DOR too. (At *extreme* pressure the
  // effect inverts: Queue2/Queue3 fill with pinned chunks from many
  // in-flight stripes and the one-shot majority thrashes harder than
  // under LRU — bench_ablation_dor_sor shows that crossover.)
  const codes::Layout l = codes::make_layout(codes::CodeId::TripleStar, 11);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  const auto errors = make_trace(l, 60);
  auto cfg = small_config();
  cfg.cache_bytes = 256 * cfg.chunk_bytes;
  cfg.policy = cache::PolicyId::Fbf;
  DorEngine fbf_engine(l, g, cfg);
  const SimMetrics fbf = fbf_engine.run(errors);
  cfg.policy = cache::PolicyId::Lru;
  DorEngine lru_engine(l, g, cfg);
  const SimMetrics lru = lru_engine.run(errors);
  EXPECT_LE(fbf.disk_reads, lru.disk_reads);
  EXPECT_GE(fbf.cache.hit_ratio(), lru.cache.hit_ratio());
}

TEST(DorEngine, DeterministicAcrossRuns) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Star, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  const auto errors = make_trace(l, 25);
  DorEngine a(l, g, small_config());
  DorEngine b(l, g, small_config());
  const SimMetrics ma = a.run(errors);
  const SimMetrics mb = b.run(errors);
  EXPECT_EQ(ma.disk_reads, mb.disk_reads);
  EXPECT_EQ(ma.cache.hits, mb.cache.hits);
  EXPECT_DOUBLE_EQ(ma.reconstruction_ms, mb.reconstruction_ms);
}

TEST(DorEngine, AppTrafficIsServedAndMeasured) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  workload::AppTraceConfig app_cfg;
  app_cfg.num_stripes = 10000;
  app_cfg.num_requests = 200;
  app_cfg.read_fraction = 0.6;
  app_cfg.mean_interarrival_ms = 0.5;
  const auto apps = workload::generate_app_trace(l, app_cfg);
  DorEngine engine(l, g, small_config());
  const SimMetrics m = engine.run(make_trace(l, 20), apps);
  EXPECT_EQ(m.app_requests, 200u);
  EXPECT_EQ(m.app_requests, m.app_served + m.app_parked_drained);
  EXPECT_EQ(m.app_parked_drained,
            m.app_degraded_reads + m.app_degraded_writes);
  EXPECT_GT(m.app_response_ms.mean(), 0.0);
  EXPECT_EQ(m.event_queue_regrowths, 0u);  // arrivals fit the bulk shard
}

TEST(DorEngine, DegradedRequestsParkUntilRecovery) {
  // DOR's repaired signal is the last traced loss of a stripe reaching its
  // persisted spare copy: one read and one write aimed at damaged chunks
  // must park on that signal and drain afterwards.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  const auto errors = make_trace(l, 10);
  std::vector<workload::AppRequest> apps;
  workload::AppRequest read;
  read.stripe = errors[0].stripe;
  read.cell = errors[0].error.cells().front();
  read.is_read = true;
  read.arrival_ms = 0.0;
  apps.push_back(read);
  workload::AppRequest write;
  write.stripe = errors[1].stripe;
  write.cell = errors[1].error.cells().front();
  write.is_read = false;
  write.arrival_ms = 0.0;
  apps.push_back(write);
  DorEngine engine(l, g, small_config());
  const SimMetrics m = engine.run(errors, apps);
  EXPECT_EQ(m.app_requests, 2u);
  EXPECT_EQ(m.app_degraded_reads, 1u);
  EXPECT_EQ(m.app_degraded_writes, 1u);
  EXPECT_EQ(m.app_parked_drained, 2u);
  EXPECT_EQ(m.app_served, 0u);
  EXPECT_EQ(m.app_response_ms.count(), 2u);
  // Both waited for their stripes' recovery, far beyond one disk trip.
  EXPECT_GT(m.app_response_ms.min(), 15.0);
}

TEST(DorEngine, AppRequestAfterRecoveryIsNotDegraded) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  const auto errors = make_trace(l, 5);
  workload::AppRequest late;
  late.stripe = errors[0].stripe;
  late.cell = errors[0].error.cells().front();
  late.is_read = false;  // RMW against the repaired (spare) location
  late.arrival_ms = 1e7;
  DorEngine engine(l, g, small_config());
  const SimMetrics m = engine.run(errors, {late});
  EXPECT_EQ(m.app_degraded_reads, 0u);
  EXPECT_EQ(m.app_degraded_writes, 0u);
  EXPECT_EQ(m.app_served, 1u);
}

TEST(DorEngine, SameSeedAppRunsAreByteIdentical) {
  const codes::Layout l = codes::make_layout(codes::CodeId::TripleStar, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  const auto errors = make_trace(l, 25);
  workload::AppTraceConfig app_cfg;
  app_cfg.num_stripes = 10000;
  app_cfg.num_requests = 400;
  app_cfg.read_fraction = 0.6;
  app_cfg.deadline_ms = 30.0;
  app_cfg.mean_interarrival_ms = 0.4;
  const auto apps = workload::generate_app_trace(l, app_cfg);
  auto cfg = small_config();
  cfg.throttle.rebuild_reads_per_sec = 800.0;
  DorEngine a(l, g, cfg);
  DorEngine b(l, g, cfg);
  const SimMetrics ma = a.run(errors, apps);
  const SimMetrics mb = b.run(errors, apps);
  EXPECT_EQ(ma.disk_reads, mb.disk_reads);
  EXPECT_EQ(ma.app_served, mb.app_served);
  EXPECT_EQ(ma.app_parked_drained, mb.app_parked_drained);
  EXPECT_EQ(ma.app_deadline_miss, mb.app_deadline_miss);
  EXPECT_DOUBLE_EQ(ma.reconstruction_ms, mb.reconstruction_ms);
  EXPECT_DOUBLE_EQ(ma.app_response_ms.mean(), mb.app_response_ms.mean());
  EXPECT_EQ(ma.app_response_hist.count(), mb.app_response_hist.count());
}

TEST(DorEngine, ThrottleSlowsRebuildWithoutLosingWork) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  const auto errors = make_trace(l, 30);
  DorEngine free_engine(l, g, small_config());
  const SimMetrics unthrottled = free_engine.run(errors);
  auto cfg = small_config();
  cfg.throttle.rebuild_reads_per_sec = 100.0;
  cfg.throttle.burst = 1;
  DorEngine slow_engine(l, g, cfg);
  const SimMetrics throttled = slow_engine.run(errors);
  EXPECT_GT(throttled.reconstruction_ms, unthrottled.reconstruction_ms);
  EXPECT_EQ(throttled.stripes_recovered, unthrottled.stripes_recovered);
  EXPECT_EQ(throttled.chunks_recovered, unthrottled.chunks_recovered);
  // Deferred submissions keep the one-in-flight-per-reader shard bound.
  EXPECT_EQ(throttled.event_queue_regrowths, 0u);
}

// ---------------------------------------------------------------------------
// Coalesced-vs-legacy identity (DESIGN §14). DorConfig::legacy_loop selects
// the seed's one-event-per-read loop; the service-cursor fast path must
// reproduce its SimMetrics exactly — including engine_events, because
// elided events still count — under every feature in combination.
// ---------------------------------------------------------------------------

void expect_metrics_identical(const SimMetrics& fast, const SimMetrics& legacy,
                              const std::string& context) {
  EXPECT_EQ(fast.engine_events, legacy.engine_events) << context;
  EXPECT_EQ(fast.disk_reads, legacy.disk_reads) << context;
  EXPECT_EQ(fast.disk_writes, legacy.disk_writes) << context;
  EXPECT_EQ(fast.planned_disk_reads, legacy.planned_disk_reads) << context;
  EXPECT_EQ(fast.stripes_recovered, legacy.stripes_recovered) << context;
  EXPECT_EQ(fast.chunks_recovered, legacy.chunks_recovered) << context;
  EXPECT_EQ(fast.total_chunk_requests, legacy.total_chunk_requests) << context;
  EXPECT_EQ(fast.cache.hits, legacy.cache.hits) << context;
  EXPECT_EQ(fast.cache.misses, legacy.cache.misses) << context;
  EXPECT_EQ(fast.cache.evictions, legacy.cache.evictions) << context;
  EXPECT_DOUBLE_EQ(fast.reconstruction_ms, legacy.reconstruction_ms)
      << context;
  EXPECT_DOUBLE_EQ(fast.response_ms.mean(), legacy.response_ms.mean())
      << context;
  EXPECT_DOUBLE_EQ(fast.response_ms.max(), legacy.response_ms.max())
      << context;
  EXPECT_EQ(fast.response_ms.count(), legacy.response_ms.count()) << context;
  EXPECT_EQ(fast.app_requests, legacy.app_requests) << context;
  EXPECT_EQ(fast.app_served, legacy.app_served) << context;
  EXPECT_EQ(fast.app_parked_drained, legacy.app_parked_drained) << context;
  EXPECT_EQ(fast.app_degraded_reads, legacy.app_degraded_reads) << context;
  EXPECT_EQ(fast.app_degraded_writes, legacy.app_degraded_writes) << context;
  EXPECT_EQ(fast.app_deadline_miss, legacy.app_deadline_miss) << context;
  EXPECT_DOUBLE_EQ(fast.app_response_ms.mean(), legacy.app_response_ms.mean())
      << context;
  EXPECT_EQ(fast.fault.sector_errors, legacy.fault.sector_errors) << context;
  EXPECT_EQ(fast.fault.retries, legacy.fault.retries) << context;
  EXPECT_EQ(fast.fault.replans, legacy.fault.replans) << context;
  EXPECT_EQ(fast.fault.gauss_fallbacks, legacy.fault.gauss_fallbacks)
      << context;
  EXPECT_EQ(fast.fault.disk_failures, legacy.fault.disk_failures) << context;
  EXPECT_EQ(fast.fault.escalated_stripes, legacy.fault.escalated_stripes)
      << context;
  EXPECT_EQ(fast.fault.extra_lost_chunks, legacy.fault.extra_lost_chunks)
      << context;
  ASSERT_EQ(fast.disk_busy_ms.size(), legacy.disk_busy_ms.size()) << context;
  for (std::size_t d = 0; d < fast.disk_busy_ms.size(); ++d) {
    EXPECT_DOUBLE_EQ(fast.disk_busy_ms[d], legacy.disk_busy_ms[d])
        << context << " disk " << d;
    EXPECT_EQ(fast.disk_ops[d], legacy.disk_ops[d]) << context << " disk "
                                                    << d;
  }
}

TEST(DorCoalescing, MatchesLegacyLoopOnPlainRecovery) {
  for (codes::CodeId id :
       {codes::CodeId::Tip, codes::CodeId::TripleStar}) {
    const codes::Layout l = codes::make_layout(id, 7);
    const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
    const auto errors = make_trace(l, 40);
    auto fast_cfg = small_config();
    fast_cfg.legacy_loop = false;
    auto legacy_cfg = small_config();
    legacy_cfg.legacy_loop = true;
    DorEngine fast(l, g, fast_cfg);
    DorEngine legacy(l, g, legacy_cfg);
    expect_metrics_identical(fast.run(errors), legacy.run(errors), l.name());
  }
}

TEST(DorCoalescing, MatchesLegacyLoopUnderCombinedStress) {
  // Everything at once: UREs + transients + stragglers + a mid-recovery
  // disk failure (escalation and Gauss fallbacks), foreground app traffic
  // with deadlines, and rebuild throttling. Any event the fast path
  // elides, reorders, or double-counts diverges here.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  const auto errors = make_trace(l, 30);
  workload::AppTraceConfig app_cfg;
  app_cfg.num_stripes = 10000;
  app_cfg.num_requests = 300;
  app_cfg.read_fraction = 0.6;
  app_cfg.deadline_ms = 30.0;
  app_cfg.mean_interarrival_ms = 0.4;
  const auto apps = workload::generate_app_trace(l, app_cfg);
  auto cfg = small_config();
  cfg.faults.ure_rate = 0.03;
  cfg.faults.transient_rate = 0.01;
  cfg.faults.stragglers = 2;
  cfg.faults.straggler_factor = 3.0;
  cfg.faults.disk_failure_times_ms = {200.0};
  cfg.throttle.rebuild_reads_per_sec = 800.0;
  auto legacy_cfg = cfg;
  legacy_cfg.legacy_loop = true;
  cfg.legacy_loop = false;
  DorEngine fast(l, g, cfg);
  DorEngine legacy(l, g, legacy_cfg);
  const SimMetrics mf = fast.run(errors, apps);
  const SimMetrics ml = legacy.run(errors, apps);
  EXPECT_GT(mf.fault.replans, 0u);  // the stress actually engaged
  expect_metrics_identical(mf, ml, "combined stress");
}

TEST(DorCoalescing, VerifyDataChecksEveryRecoveredChunk) {
  // verify_data carries real bytes through the coalesced loop and
  // FBF_CHECKs each recovered chunk against ground truth (single-dispatch
  // chain folds + Gauss solves). A pass is the assertion.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  auto cfg = small_config();
  cfg.verify_data = true;
  DorEngine engine(l, g, cfg);
  const SimMetrics m = engine.run(make_trace(l, 25));
  EXPECT_EQ(m.stripes_recovered, 25u);
}

TEST(DorCoalescing, VerifyDataCoversFaultReplans) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  auto cfg = small_config();
  cfg.verify_data = true;
  cfg.faults.ure_rate = 0.05;
  cfg.faults.transient_rate = 0.01;
  DorEngine engine(l, g, cfg);
  const SimMetrics m = engine.run(make_trace(l, 20));
  EXPECT_EQ(m.stripes_recovered, 20u);
  EXPECT_GT(m.fault.replans, 0u);
}

TEST(DorCoalescing, VerifyDataRejectsLegacyLoop) {
  // The legacy loop predates data verification; the combination is a
  // configuration error, not a silent fallback.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  auto cfg = small_config();
  cfg.verify_data = true;
  cfg.legacy_loop = true;
  DorEngine engine(l, g, cfg);
  EXPECT_THROW(engine.run(make_trace(l, 2)), util::CheckError);
}

TEST(DorEngine, EmptyTraceIsNoop) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 100);
  DorEngine engine(l, g, small_config());
  const SimMetrics m = engine.run({});
  EXPECT_EQ(m.disk_reads, 0u);
  EXPECT_DOUBLE_EQ(m.reconstruction_ms, 0.0);
}

}  // namespace
}  // namespace fbf::sim
