// Differential fuzz of the deterministic fault layer: the fault stream is
// a pure function of (seed, run label), so replaying the same plan must
// reproduce every fault counter and the whole deterministic metrics
// document, in both engines. Also pins the escalation contract: an extra
// whole-disk failure inside the 3DFT budget escalates partial recovery to
// full recovery and still recovers everything; a fault load beyond the
// budget aborts with a structured EscalationError.
#include <gtest/gtest.h>

#include <string>

#include "codes/builders.h"
#include "core/experiment.h"
#include "obs/observer.h"
#include "sim/dor_engine.h"
#include "sim/faults/faults.h"
#include "sim/reconstruction.h"

namespace fbf::sim {
namespace {

void expect_same_fault_stats(const FaultStats& a, const FaultStats& b) {
  EXPECT_EQ(a.enabled, b.enabled);
  EXPECT_EQ(a.sector_errors, b.sector_errors);
  EXPECT_EQ(a.transient_failures, b.transient_failures);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.dead_disk_reads, b.dead_disk_reads);
  EXPECT_EQ(a.replans, b.replans);
  EXPECT_EQ(a.gauss_fallbacks, b.gauss_fallbacks);
  EXPECT_EQ(a.disk_failures, b.disk_failures);
  EXPECT_EQ(a.escalated_stripes, b.escalated_stripes);
  EXPECT_EQ(a.extra_lost_chunks, b.extra_lost_chunks);
  EXPECT_EQ(a.respared, b.respared);
  EXPECT_EQ(a.straggler_disks, b.straggler_disks);
}

core::ExperimentConfig faulty_config(core::EngineKind engine) {
  core::ExperimentConfig c;
  c.code = codes::CodeId::Tip;
  c.p = 7;
  c.engine = engine;
  c.workers = 8;
  c.num_errors = 40;
  c.num_stripes = 50000;
  c.cache_bytes = 8ull << 20;
  c.seed = 2024;
  c.faults.ure_rate = 0.03;
  c.faults.transient_rate = 0.01;
  c.faults.stragglers = 2;
  c.faults.straggler_factor = 3.0;
  return c;
}

struct RunCapture {
  core::ExperimentResult result;
  std::string metrics;  ///< deterministic document (no wall block)
};

RunCapture capture(const core::ExperimentConfig& base) {
  obs::RunObserver observer;
  core::ExperimentConfig cfg = base;
  cfg.obs = &observer;
  RunCapture rc;
  rc.result = core::run_experiment(cfg);
  rc.metrics = observer.metrics_json(/*include_wall=*/false);
  return rc;
}

TEST(FaultConfig, DefaultIsDisabled) {
  EXPECT_FALSE(FaultConfig{}.enabled());
  FaultConfig ure;
  ure.ure_rate = 1e-4;
  EXPECT_TRUE(ure.enabled());
  FaultConfig transient;
  transient.transient_rate = 1e-3;
  EXPECT_TRUE(transient.enabled());
  FaultConfig stragglers;
  stragglers.stragglers = 2;
  EXPECT_TRUE(stragglers.enabled());
  stragglers.straggler_factor = 1.0;  // a 1x straggler is not a fault
  EXPECT_FALSE(stragglers.enabled());
  FaultConfig failures;
  failures.disk_failure_times_ms = {100.0};
  EXPECT_TRUE(failures.enabled());
}

TEST(FaultPlan, PureFunctionOfSeedAndLabel) {
  FaultConfig fc;
  fc.ure_rate = 0.5;
  fc.transient_rate = 0.5;
  fc.stragglers = 3;
  fc.disk_failure_times_ms = {100.0, 200.0};
  const FaultPlan a(fc, 99, "run.x", 10);
  const FaultPlan b(fc, 99, "run.x", 10);
  const FaultPlan other(fc, 99, "run.y", 10);
  ASSERT_EQ(a.disk_failures().size(), 2u);
  int label_differences = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    EXPECT_EQ(a.sector_error(key), b.sector_error(key));
    EXPECT_EQ(a.transient(key), b.transient(key));
    label_differences += a.sector_error(key) != other.sector_error(key);
  }
  for (int d = 0; d < 10; ++d) {
    EXPECT_EQ(a.service_multiplier(d), b.service_multiplier(d));
    EXPECT_EQ(a.disk_failed(d, 150.0), b.disk_failed(d, 150.0));
  }
  EXPECT_EQ(a.straggler_count(), 3u);
  // Different labels draw different streams (2^-1000 false-positive odds).
  EXPECT_GT(label_differences, 0);
}

class FaultReplay : public ::testing::TestWithParam<core::EngineKind> {};

TEST_P(FaultReplay, SameSeedReplaysByteIdentically) {
  const core::ExperimentConfig cfg = faulty_config(GetParam());
  const RunCapture a = capture(cfg);
  const RunCapture b = capture(cfg);

  // The injected load must be visible, or this test vacuously passes.
  EXPECT_GT(a.result.fault.sector_errors, 0u);
  EXPECT_GT(a.result.fault.retries, 0u);
  EXPECT_EQ(a.result.fault.straggler_disks, 2u);

  expect_same_fault_stats(a.result.fault, b.result.fault);
  EXPECT_EQ(a.result.disk_reads, b.result.disk_reads);
  EXPECT_EQ(a.result.cache_hits, b.result.cache_hits);
  EXPECT_EQ(a.result.chunks_recovered, b.result.chunks_recovered);
  EXPECT_DOUBLE_EQ(a.result.reconstruction_ms, b.result.reconstruction_ms);
  EXPECT_EQ(a.metrics, b.metrics);

  // Fault-aware conservation: every extra loss was recovered on top of the
  // trace, and every retry is a real disk read (SOR plans no reads up
  // front, so its reads are exactly misses + retries; DOR adds its
  // streaming plan on top).
  EXPECT_EQ(a.result.stripes_recovered,
            40u + a.result.fault.escalated_stripes);
  if (GetParam() == core::EngineKind::Sor) {
    EXPECT_EQ(a.result.disk_reads,
              a.result.cache_misses + a.result.fault.retries);
  } else {
    EXPECT_GE(a.result.disk_reads,
              a.result.cache_misses + a.result.fault.retries);
  }
  EXPECT_GE(a.result.chunks_recovered, a.result.fault.extra_lost_chunks);
}

TEST_P(FaultReplay, DisabledFaultsMatchBaselineByteForByte) {
  core::ExperimentConfig cfg = faulty_config(GetParam());
  cfg.faults = FaultConfig{};  // disabled: exact pre-fault code path
  core::ExperimentConfig baseline = cfg;
  const RunCapture a = capture(cfg);
  const RunCapture b = capture(baseline);
  EXPECT_FALSE(a.result.fault.enabled);
  EXPECT_EQ(a.metrics, b.metrics);
  // No run.fault.* keys leak into the fault-free document.
  EXPECT_EQ(a.metrics.find("run.fault."), std::string::npos);
}

TEST_P(FaultReplay, MidRecoveryDiskFailureEscalatesAndRecovers) {
  core::ExperimentConfig cfg = faulty_config(GetParam());
  cfg.faults = FaultConfig{};
  cfg.faults.disk_failure_times_ms = {200.0};
  const RunCapture a = capture(cfg);
  EXPECT_EQ(a.result.fault.disk_failures, 1u);
  EXPECT_GT(a.result.fault.escalated_stripes, 0u);
  EXPECT_GT(a.result.fault.extra_lost_chunks, 0u);
  // Escalated stripes are recovered in full on top of the traced ones.
  EXPECT_EQ(a.result.stripes_recovered,
            40u + a.result.fault.escalated_stripes);
  // Replays deterministically, like every other fault kind.
  const RunCapture b = capture(cfg);
  expect_same_fault_stats(a.result.fault, b.result.fault);
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST_P(FaultReplay, LaterFailureInvalidatesSpareCopies) {
  // The DESIGN.md §11 gap: spare copies written after the first failure
  // can sit on the disk the second failure kills. They must be invalidated
  // and re-recovered — never silently read back from a dead disk — and
  // every invalidation is visible in run.fault.respared.
  core::ExperimentConfig cfg = faulty_config(GetParam());
  cfg.faults = FaultConfig{};
  cfg.faults.disk_failure_times_ms = {100.0, 400.0};
  const RunCapture a = capture(cfg);
  EXPECT_EQ(a.result.fault.disk_failures, 2u);
  EXPECT_GT(a.result.fault.respared, 0u);
  // Conservation law: each respared chunk re-enters escalation, so it is
  // also an extra lost chunk and is recovered again on top of the trace.
  EXPECT_LE(a.result.fault.respared, a.result.fault.extra_lost_chunks);
  EXPECT_EQ(a.result.stripes_recovered,
            40u + a.result.fault.escalated_stripes);
  // Replays deterministically, like every other fault kind.
  const RunCapture b = capture(cfg);
  expect_same_fault_stats(a.result.fault, b.result.fault);
  EXPECT_EQ(a.metrics, b.metrics);
}

TEST_P(FaultReplay, BeyondBudgetAbortsWithStructuredDiagnostic) {
  core::ExperimentConfig cfg = faulty_config(GetParam());
  cfg.faults = FaultConfig{};
  // Three whole-disk failures on top of traced column errors: some stripe
  // ends up with four lost columns, beyond any 3DFT's erasure budget.
  cfg.faults.disk_failure_times_ms = {100.0, 200.0, 300.0};
  try {
    core::run_experiment(cfg);
    FAIL() << "expected EscalationError";
  } catch (const EscalationError& e) {
    EXPECT_EQ(e.failed_disks().size(), 3u);
    EXPECT_GT(e.lost_cells().size(), 3u);
    EXPECT_NE(std::string(e.what()).find("not decodable"),
              std::string::npos);
  }
}

TEST(FaultEventQueue, ReservationsHoldUnderFaultLoad) {
  // The sharded event queues reserve for the fault path up front (disk
  // failures, escalation targets, a replan slab); a regrowth under this
  // URE + transient + straggler + disk-failure load means a bound is
  // wrong. Direct engine runs, because the regrowth counter is engine
  // instrumentation that the experiment layer deliberately never exports.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 50000, true, SparePlacement::Distributed);
  workload::ErrorTraceConfig tc;
  tc.num_stripes = 50000;
  tc.num_errors = 40;
  tc.target_col = 0;
  tc.seed = 5;
  const auto errors = workload::generate_error_trace(l, tc);
  FaultConfig faults;
  faults.ure_rate = 0.03;
  faults.transient_rate = 0.01;
  faults.stragglers = 2;
  faults.straggler_factor = 3.0;
  faults.disk_failure_times_ms = {200.0};

  ReconstructionConfig sor;
  sor.workers = 8;
  sor.cache_bytes = 8ull << 20;
  sor.seed = 2024;
  sor.faults = faults;
  ReconstructionEngine sor_engine(l, g, sor);
  const SimMetrics sm = sor_engine.run(errors);
  EXPECT_GT(sm.fault.replans, 0u);
  EXPECT_GT(sm.engine_events, 0u);
  EXPECT_EQ(sm.event_queue_regrowths, 0u);

  DorConfig dor;
  dor.cache_bytes = 8ull << 20;
  dor.seed = 2024;
  dor.faults = faults;
  DorEngine dor_engine(l, g, dor);
  const SimMetrics dm = dor_engine.run(errors);
  EXPECT_GT(dm.fault.replans, 0u);
  EXPECT_GT(dm.engine_events, 0u);
  EXPECT_EQ(dm.event_queue_regrowths, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, FaultReplay,
                         ::testing::Values(core::EngineKind::Sor,
                                           core::EngineKind::Dor),
                         [](const ::testing::TestParamInfo<core::EngineKind>&
                                info) {
                           return info.param == core::EngineKind::Sor
                                      ? "Sor"
                                      : "Dor";
                         });

}  // namespace
}  // namespace fbf::sim
