// Structural invariants of the chain layouts and the array geometry that
// every engine and the fault-path planner rely on, pinned per code family:
//
//  - chain counts and lengths: p-1 chains per direction, horizontal chains
//    uniformly cols-2 long and partitioning the data+horizontal-parity
//    cells;
//  - membership: every data cell sits in exactly one horizontal chain and
//    at least one chain per diagonal direction; the RTP family is
//    exactly-one everywhere, the STAR (adjuster) family additionally has
//    adjuster cells riding on *every* chain of a diagonal direction;
//  - geometry: per-stripe column->disk maps are permutations, (disk, LBA)
//    addressing is injective, the spare region never overlaps the data
//    region, and distributed sparing never targets the home disk.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "codes/builders.h"
#include "sim/array_geometry.h"

namespace fbf::sim {
namespace {

using codes::Cell;
using codes::CellKind;
using codes::Chain;
using codes::CodeId;
using codes::Direction;
using codes::Layout;

using Param = std::tuple<CodeId, int>;

/// Per-family shape table (probed once, now pinned): total columns and
/// whether the code carries a STAR-style adjuster diagonal.
struct Shape {
  int cols = 0;
  bool adjuster = false;
};

Shape shape_of(CodeId id, int p) {
  switch (id) {
    case CodeId::Tip:        return {p + 1, false};
    case CodeId::Hdd1:       return {p + 1, true};
    case CodeId::TripleStar: return {p + 2, false};
    case CodeId::Star:       return {p + 3, true};
  }
  ADD_FAILURE() << "unknown code";
  return {};
}

class StructuralInvariants : public ::testing::TestWithParam<Param> {
 protected:
  Layout layout() const {
    return codes::make_layout(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
  int p() const { return std::get<1>(GetParam()); }
  Shape shape() const {
    return shape_of(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

TEST_P(StructuralInvariants, ChainCountsAndLengths) {
  const Layout l = layout();
  const Shape s = shape();
  EXPECT_EQ(l.rows(), p() - 1);
  EXPECT_EQ(l.cols(), s.cols);
  EXPECT_EQ(static_cast<int>(l.chains().size()), 3 * (p() - 1));
  for (Direction d : {Direction::Horizontal, Direction::Diagonal,
                      Direction::AntiDiagonal}) {
    EXPECT_EQ(static_cast<int>(l.chains_in(d).size()), p() - 1)
        << codes::to_string(d);
  }
  // Horizontal chains are uniformly cols-2 long: one cell per column minus
  // the two diagonal-parity columns every 3DFT reserves.
  for (int id : l.chains_in(Direction::Horizontal)) {
    EXPECT_EQ(static_cast<int>(l.chain(id).cells.size()), l.cols() - 2);
  }
  // Every chain can recover one lost member from the rest: length >= 2.
  for (const Chain& chain : l.chains()) {
    EXPECT_GE(chain.cells.size(), 2u);
  }
}

TEST_P(StructuralInvariants, ChainsAreWellFormed) {
  const Layout l = layout();
  std::set<Cell> parity_cells;
  for (const Chain& chain : l.chains()) {
    EXPECT_EQ(chain.id, static_cast<int>(&chain - l.chains().data()));
    EXPECT_TRUE(std::is_sorted(chain.cells.begin(), chain.cells.end()));
    EXPECT_EQ(std::adjacent_find(chain.cells.begin(), chain.cells.end()),
              chain.cells.end())
        << "duplicate cell in chain " << chain.id;
    EXPECT_TRUE(std::binary_search(chain.cells.begin(), chain.cells.end(),
                                   chain.parity_cell));
    EXPECT_TRUE(parity_cells.insert(chain.parity_cell).second)
        << "parity cell shared by two chains";
    EXPECT_EQ(l.kind(chain.parity_cell), CellKind::Parity);
    for (const Cell& c : chain.cells) {
      EXPECT_TRUE(l.in_bounds(c));
    }
  }
}

TEST_P(StructuralInvariants, MembershipPerDirection) {
  const Layout l = layout();
  const Shape s = shape();
  // Brute-force membership counts, cross-checked against the layout's own
  // chains_containing index.
  for (int ci = 0; ci < l.num_cells(); ++ci) {
    const Cell cell = l.cell_at(ci);
    std::map<Direction, int> count;
    std::set<int> containing;
    for (const Chain& chain : l.chains()) {
      if (std::binary_search(chain.cells.begin(), chain.cells.end(), cell)) {
        ++count[chain.dir];
        containing.insert(chain.id);
      }
    }
    const auto indexed = l.chains_containing(cell);
    EXPECT_EQ(std::set<int>(indexed.begin(), indexed.end()), containing);
    for (Direction d : {Direction::Horizontal, Direction::Diagonal,
                        Direction::AntiDiagonal}) {
      EXPECT_EQ(static_cast<int>(l.chains_containing(cell, d).size()),
                count[d]);
    }

    // Horizontal chains partition their cells: never two per cell.
    EXPECT_LE(count[Direction::Horizontal], 1);
    if (l.kind(cell) == CellKind::Data) {
      // The constructor invariant the recovery planner leans on: every
      // data cell is recoverable through its horizontal chain. Diagonal
      // coverage is NOT guaranteed — RDP-style layouts leave the missing
      // diagonal uncovered and the scheme generator falls back across
      // directions.
      EXPECT_EQ(count[Direction::Horizontal], 1) << codes::to_string(cell);
    }
    for (Direction d : {Direction::Diagonal, Direction::AntiDiagonal}) {
      if (s.adjuster) {
        // STAR-family adjuster cells ride on every chain of the direction;
        // everything else behaves like the RTP family.
        EXPECT_TRUE(count[d] <= 1 || count[d] == p() - 1)
            << codes::to_string(cell) << " in " << count[d] << " "
            << codes::to_string(d) << " chains";
      } else {
        EXPECT_LE(count[d], 1) << codes::to_string(cell);
      }
    }
  }
  // Adjuster codes must actually contain adjuster cells (and only they may
  // exceed the RTP update-complexity optimum of 3).
  int max_uc = 0;
  for (int ci = 0; ci < l.num_cells(); ++ci) {
    const Cell cell = l.cell_at(ci);
    if (l.kind(cell) == CellKind::Data) {
      max_uc = std::max(max_uc, l.update_complexity(cell));
    }
  }
  if (s.adjuster) {
    EXPECT_EQ(max_uc, l.rows() + 2);
  } else {
    EXPECT_LE(max_uc, 3);
  }
}

TEST_P(StructuralInvariants, GeometryAddressingIsInjective) {
  const Layout l = layout();
  const std::uint64_t num_stripes = 4096;
  struct Variant {
    LayoutStrategy strategy;
    int pool;  // 0 = stripe width
  };
  const Variant variants[] = {
      {LayoutStrategy::Naive, 0},
      {LayoutStrategy::Rotate, 0},
      {LayoutStrategy::Rotate, l.cols() + 5},
      {LayoutStrategy::TDesignDecluster, l.cols() + 5},
      {LayoutStrategy::D3, l.cols() + 5},
  };
  for (const Variant& v : variants) {
    const ArrayGeometry g(l, num_stripes, v.strategy, v.pool,
                          SparePlacement::Distributed);
    ASSERT_EQ(g.num_disks(), v.pool == 0 ? l.cols() : v.pool);
    std::set<std::pair<int, std::uint64_t>> addresses;
    std::set<std::uint64_t> keys;
    for (std::uint64_t stripe : {0ull, 1ull, 7ull, 4095ull}) {
      std::set<int> disks;
      for (int ci = 0; ci < l.num_cells(); ++ci) {
        const Cell cell = l.cell_at(ci);
        const int disk = g.disk_of(stripe, cell);
        ASSERT_GE(disk, 0);
        ASSERT_LT(disk, g.num_disks());
        disks.insert(disk);
        EXPECT_TRUE(
            addresses.insert({disk, g.lba_of(stripe, cell)}).second)
            << "two chunks share disk " << disk << " (strategy="
            << to_string(v.strategy) << ")";
        EXPECT_TRUE(keys.insert(g.chunk_key(stripe, cell)).second);
        // The spare region starts past every data LBA.
        EXPECT_LT(g.lba_of(stripe, cell), g.disk_capacity_chunks());
        EXPECT_GE(g.spare_lba_of(stripe, cell), g.disk_capacity_chunks());
        // Declustered sparing spreads writes off the home disk.
        EXPECT_NE(g.spare_disk_of(stripe, cell), disk);
      }
      // Each stripe's columns land on pairwise-distinct disks (a full
      // permutation when the pool is exactly the stripe width).
      EXPECT_EQ(static_cast<int>(disks.size()), l.cols());
    }
  }
  // SameDisk placement pins the spare copy to the home disk instead.
  const ArrayGeometry same(l, num_stripes, true, SparePlacement::SameDisk);
  EXPECT_EQ(same.spare_disk_of(3, Cell{1, 2}), same.disk_of(3, Cell{1, 2}));
}

INSTANTIATE_TEST_SUITE_P(
    AllCodes, StructuralInvariants,
    ::testing::Combine(::testing::Values(CodeId::Tip, CodeId::Hdd1,
                                         CodeId::TripleStar, CodeId::Star),
                       ::testing::Values(5, 7)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(codes::to_string(std::get<0>(info.param))) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace fbf::sim
