// Ordering-equivalence tests for the sharded event core. The engines key
// events by (t, seq) with unique seq — a strict total order — so the
// sharded queue must pop the exact sequence a single global heap would;
// the randomized tests here drive both against each other through mixed
// push/pop streams, and the edge tests pin the one-shard, empty-shard,
// and reservation-accounting behavior the engines rely on.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "util/rng.h"

namespace fbf::sim {
namespace {

struct Event {
  double t = 0.0;
  std::uint64_t seq = 0;
  std::uint32_t shard = 0;  ///< payload: which shard it was pushed to
  bool operator>(const Event& o) const {
    return t > o.t || (t == o.t && seq > o.seq);
  }
};

using ReferenceHeap =
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>;

TEST(ShardedEventQueue, StartsEmpty) {
  ShardedEventQueue<Event> q(4);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.regrowths(), 0u);
}

TEST(ShardedEventQueue, SingleShardIsAPlainMinHeap) {
  ShardedEventQueue<Event> q(1);
  std::uint64_t seq = 0;
  for (double t : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    q.push(0, Event{t, seq++, 0});
  }
  for (double expect : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    EXPECT_DOUBLE_EQ(q.pop().t, expect);
  }
  EXPECT_TRUE(q.empty());
}

TEST(ShardedEventQueue, OnlyOneShardPopulated) {
  // Empty shards must never win the tournament, whichever leaf holds the
  // events (exercises both children of every internal node).
  for (std::size_t populated = 0; populated < 5; ++populated) {
    ShardedEventQueue<Event> q(5);
    std::uint64_t seq = 0;
    for (double t : {9.0, 7.0, 8.0}) {
      q.push(populated, Event{t, seq++, 0});
    }
    EXPECT_DOUBLE_EQ(q.pop().t, 7.0);
    EXPECT_DOUBLE_EQ(q.pop().t, 8.0);
    EXPECT_DOUBLE_EQ(q.pop().t, 9.0);
    EXPECT_TRUE(q.empty());
  }
}

TEST(ShardedEventQueue, TimeTiesBreakBySequence) {
  ShardedEventQueue<Event> q(3);
  q.push(2, Event{1.0, 5, 2});
  q.push(0, Event{1.0, 3, 0});
  q.push(1, Event{1.0, 4, 1});
  EXPECT_EQ(q.pop().seq, 3u);
  EXPECT_EQ(q.pop().seq, 4u);
  EXPECT_EQ(q.pop().seq, 5u);
}

TEST(ShardedEventQueue, NonPowerOfTwoShardCounts) {
  // The tournament pads leaves to a power of two; the padding leaves must
  // stay inert for every shard count.
  for (std::size_t shards : {1u, 2u, 3u, 5u, 6u, 7u, 9u, 17u}) {
    ShardedEventQueue<Event> q(shards);
    util::Rng rng(0xabcdu + shards);
    ReferenceHeap ref;
    std::uint64_t seq = 0;
    for (int i = 0; i < 200; ++i) {
      const Event ev{rng.uniform_real(0.0, 100.0), seq++,
                     static_cast<std::uint32_t>(
                         rng.uniform_int(0, static_cast<std::int64_t>(shards) -
                                                1))};
      q.push(ev.shard, ev);
      ref.push(ev);
    }
    while (!ref.empty()) {
      const Event got = q.pop();
      EXPECT_DOUBLE_EQ(got.t, ref.top().t);
      EXPECT_EQ(got.seq, ref.top().seq);
      ref.pop();
    }
    EXPECT_TRUE(q.empty());
  }
}

TEST(ShardedEventQueue, RandomizedMixedStreamMatchesGlobalHeap) {
  // Interleaved pushes and pops with skewed shard choice (the engines'
  // real shape: a few hot shards, many idle), compared pop-for-pop
  // against a single global heap.
  util::Rng rng(20260808);
  for (int round = 0; round < 20; ++round) {
    const std::size_t shards =
        static_cast<std::size_t>(rng.uniform_int(1, 12));
    ShardedEventQueue<Event> q(shards);
    ReferenceHeap ref;
    std::uint64_t seq = 0;
    for (int step = 0; step < 2000; ++step) {
      if (ref.empty() || rng.bernoulli(0.55)) {
        // Squaring skews the choice toward shard 0.
        const double u = rng.uniform01();
        const auto shard = static_cast<std::uint32_t>(
            u * u * static_cast<double>(shards));
        const Event ev{rng.uniform_real(0.0, 10.0), seq++, shard};
        q.push(shard, ev);
        ref.push(ev);
      } else {
        const Event got = q.pop();
        ASSERT_DOUBLE_EQ(got.t, ref.top().t);
        ASSERT_EQ(got.seq, ref.top().seq);
        ref.pop();
      }
      ASSERT_EQ(q.size(), ref.size());
    }
    while (!ref.empty()) {
      ASSERT_EQ(q.pop().seq, ref.top().seq);
      ref.pop();
    }
  }
}

TEST(ShardedEventQueue, ReserveIsAdditiveAndPreventsRegrowth) {
  ShardedEventQueue<Event> q(2);
  q.reserve(0, 3);
  q.reserve(0, 2);  // additive: shard 0 now holds 5 without regrowth
  std::uint64_t seq = 0;
  for (int i = 0; i < 5; ++i) {
    q.push(0, Event{static_cast<double>(i), seq++, 0});
  }
  EXPECT_EQ(q.regrowths(), 0u);
  // The 6th push on shard 0 breaches the reservation.
  q.push(0, Event{9.0, seq++, 0});
  EXPECT_EQ(q.regrowths(), 1u);
  // An unreserved shard counts its very first push.
  q.push(1, Event{9.0, seq++, 1});
  EXPECT_EQ(q.regrowths(), 2u);
}

TEST(ShardedEventQueue, PopAfterDrainAndRefill) {
  ShardedEventQueue<Event> q(3);
  std::uint64_t seq = 0;
  q.push(1, Event{2.0, seq++, 1});
  EXPECT_DOUBLE_EQ(q.pop().t, 2.0);
  EXPECT_TRUE(q.empty());
  q.push(2, Event{1.0, seq++, 2});
  q.push(0, Event{0.5, seq++, 0});
  EXPECT_DOUBLE_EQ(q.pop().t, 0.5);
  EXPECT_DOUBLE_EQ(q.pop().t, 1.0);
  EXPECT_TRUE(q.empty());
}

TEST(ShardedEventQueue, ShardOutOfRangeIsChecked) {
  ShardedEventQueue<Event> q(2);
  EXPECT_THROW(q.push(2, Event{}), util::CheckError);
  EXPECT_THROW(q.pop(), util::CheckError);  // empty queue
}

TEST(ShardedEventQueue, PeekReturnsPopWithoutRemoving) {
  ShardedEventQueue<Event> q(4);
  std::uint64_t seq = 0;
  q.push(2, Event{3.0, seq++, 2});
  q.push(0, Event{1.0, seq++, 0});
  q.push(3, Event{2.0, seq++, 3});
  EXPECT_DOUBLE_EQ(q.peek().t, 1.0);
  EXPECT_EQ(q.size(), 3u);  // peek must not consume
  EXPECT_DOUBLE_EQ(q.pop().t, 1.0);
  EXPECT_DOUBLE_EQ(q.peek().t, 2.0);
  q.push(1, Event{0.5, seq++, 1});  // a later push can displace the winner
  EXPECT_DOUBLE_EQ(q.peek().t, 0.5);
  EXPECT_DOUBLE_EQ(q.pop().t, 0.5);
}

TEST(ShardedEventQueue, PeekMatchesPopOnRandomizedStreams) {
  // The DOR service cursors decide elide-vs-push from peek(); it must
  // agree with pop() at every step of a mixed stream across shard counts.
  for (const std::size_t shards : {1u, 3u, 8u}) {
    ShardedEventQueue<Event> q(shards);
    util::Rng rng(0x9ee7ull + shards);
    std::uint64_t seq = 0;
    for (int i = 0; i < 2000; ++i) {
      if (q.empty() || rng.bernoulli(0.55)) {
        const auto shard =
            static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(shards) - 1));
        q.push(shard, Event{rng.uniform_real(0.0, 100.0), seq++, 0});
      } else {
        const Event expect = q.peek();
        const Event got = q.pop();
        ASSERT_DOUBLE_EQ(got.t, expect.t) << "step " << i;
        ASSERT_EQ(got.seq, expect.seq) << "step " << i;
      }
    }
  }
}

TEST(ShardedEventQueue, PeekAtEmptyIsChecked) {
  ShardedEventQueue<Event> q(2);
  EXPECT_THROW(q.peek(), util::CheckError);
  std::uint64_t seq = 0;
  q.push(0, Event{1.0, seq++, 0});
  q.pop();
  EXPECT_THROW(q.peek(), util::CheckError);  // drained queue too
}

TEST(ForcedGlobalEventHeap, DefaultsToOff) {
  // The CI byte-identity check flips FBF_GLOBAL_EVENT_HEAP in a separate
  // process; in-process the knob must read as off so the engines shard.
  EXPECT_FALSE(forced_global_event_heap());
}

}  // namespace
}  // namespace fbf::sim
