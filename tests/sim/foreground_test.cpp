#include "sim/foreground.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fbf::sim {
namespace {

ThrottleConfig rate(double per_sec, int burst = 16) {
  ThrottleConfig c;
  c.rebuild_reads_per_sec = per_sec;
  c.burst = burst;
  return c;
}

TEST(ThrottleConfig, DisabledByDefault) {
  EXPECT_FALSE(ThrottleConfig{}.enabled());
  EXPECT_TRUE(rate(100.0).enabled());
}

TEST(RebuildThrottle, RejectsDegenerateConfigs) {
  EXPECT_THROW(RebuildThrottle(rate(0.0)), util::CheckError);
  EXPECT_THROW(RebuildThrottle(rate(100.0, 0)), util::CheckError);
}

TEST(RebuildThrottle, GrantsSpaceOutAtTheConfiguredInterval) {
  // 1000 reads/s with burst 1: one grant per millisecond, back to back.
  RebuildThrottle t(rate(1000.0, 1));
  EXPECT_DOUBLE_EQ(t.acquire(0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.acquire(0.0), 1.0);
  EXPECT_DOUBLE_EQ(t.acquire(0.0), 2.0);
  EXPECT_DOUBLE_EQ(t.acquire(0.0), 3.0);
}

TEST(RebuildThrottle, BurstDepthAllowsImmediateGrants) {
  RebuildThrottle t(rate(1000.0, 4));
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(t.acquire(0.0), 0.0) << i;
  }
  EXPECT_DOUBLE_EQ(t.acquire(0.0), 1.0);  // bucket drained
}

TEST(RebuildThrottle, ElapsedTimeRefillsTheBucket) {
  RebuildThrottle t(rate(1000.0, 1));
  EXPECT_DOUBLE_EQ(t.acquire(0.0), 0.0);
  // 10 ms of idle time mints tokens (capped at the burst of 1), so the
  // next request at t=10 goes straight through.
  EXPECT_DOUBLE_EQ(t.acquire(10.0), 10.0);
  // A fractional refill pushes the grant to when the full token exists.
  EXPECT_DOUBLE_EQ(t.acquire(10.5), 11.0);
}

TEST(RebuildThrottle, RefillNeverOvershootsBurst) {
  RebuildThrottle t(rate(1000.0, 2));
  EXPECT_DOUBLE_EQ(t.acquire(0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.acquire(0.0), 0.0);
  // A long idle gap refills to exactly `burst` tokens, not more: two
  // immediate grants, then the interval reasserts itself.
  EXPECT_DOUBLE_EQ(t.acquire(100.0), 100.0);
  EXPECT_DOUBLE_EQ(t.acquire(100.0), 100.0);
  EXPECT_DOUBLE_EQ(t.acquire(100.0), 101.0);
}

TEST(RebuildThrottle, DeferredGrantsKeepFutureAccounting) {
  // After a future-dated grant, `last_ms_` sits at the grant time; calls
  // from earlier `now` values must queue behind it, never double-mint.
  RebuildThrottle t(rate(100.0, 1));  // 10 ms interval
  EXPECT_DOUBLE_EQ(t.acquire(0.0), 0.0);
  EXPECT_DOUBLE_EQ(t.acquire(0.0), 10.0);
  EXPECT_DOUBLE_EQ(t.acquire(5.0), 20.0);  // now < last: no refill
  EXPECT_DOUBLE_EQ(t.acquire(20.0), 30.0);
}

}  // namespace
}  // namespace fbf::sim
