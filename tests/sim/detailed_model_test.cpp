// End-to-end coverage of the detailed (seek/rotate/transfer) disk model
// and the per-disk metric surfaces.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "sim/reconstruction.h"

namespace fbf::sim {
namespace {

core::ExperimentConfig detailed_config() {
  core::ExperimentConfig cfg;
  cfg.code = codes::CodeId::Tip;
  cfg.p = 7;
  cfg.workers = 8;
  cfg.num_errors = 30;
  cfg.num_stripes = 50000;
  cfg.cache_bytes = 8ull << 20;
  cfg.disk_model = DiskModelKind::Detailed;
  cfg.seed = 99;
  return cfg;
}

TEST(DetailedModel, ExperimentCompletesAndRecovers) {
  const core::ExperimentResult r = core::run_experiment(detailed_config());
  EXPECT_EQ(r.stripes_recovered, 30u);
  EXPECT_GT(r.reconstruction_ms, 0.0);
  EXPECT_GT(r.avg_response_ms, 0.0);
}

TEST(DetailedModel, DeterministicPerSeed) {
  const core::ExperimentResult a = core::run_experiment(detailed_config());
  const core::ExperimentResult b = core::run_experiment(detailed_config());
  EXPECT_DOUBLE_EQ(a.reconstruction_ms, b.reconstruction_ms);
  EXPECT_DOUBLE_EQ(a.avg_response_ms, b.avg_response_ms);
  EXPECT_EQ(a.disk_reads, b.disk_reads);
}

TEST(DetailedModel, HitCountsMatchFixedModel) {
  // The disk model changes timing, never the logical request stream, so
  // cache behaviour is identical across models.
  auto cfg = detailed_config();
  const core::ExperimentResult detailed = core::run_experiment(cfg);
  cfg.disk_model = DiskModelKind::FixedLatency;
  const core::ExperimentResult fixed = core::run_experiment(cfg);
  EXPECT_EQ(detailed.cache_hits, fixed.cache_hits);
  EXPECT_EQ(detailed.disk_reads, fixed.disk_reads);
}

TEST(DetailedModel, DetailedServiceIsFasterThanTenMsFloor) {
  // A 7200rpm disk with short seeks averages well under the paper's flat
  // 10 ms; mean response should come in lower than the fixed model's.
  auto cfg = detailed_config();
  const core::ExperimentResult detailed = core::run_experiment(cfg);
  cfg.disk_model = DiskModelKind::FixedLatency;
  const core::ExperimentResult fixed = core::run_experiment(cfg);
  EXPECT_LT(detailed.avg_response_ms, fixed.avg_response_ms);
}

TEST(DetailedModel, PerDiskMetricsConserveOps) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 50000, true, SparePlacement::Distributed);
  workload::ErrorTraceConfig tc;
  tc.num_stripes = 50000;
  tc.num_errors = 25;
  tc.seed = 4;
  const auto errors = workload::generate_error_trace(l, tc);
  ReconstructionConfig rc;
  rc.workers = 8;
  rc.cache_bytes = 4ull << 20;
  ReconstructionEngine engine(l, g, rc);
  const SimMetrics m = engine.run(errors);
  ASSERT_EQ(m.disk_ops.size(), static_cast<std::size_t>(g.num_disks()));
  std::uint64_t total_ops = 0;
  double total_busy = 0.0;
  for (std::size_t d = 0; d < m.disk_ops.size(); ++d) {
    total_ops += m.disk_ops[d];
    total_busy += m.disk_busy_ms[d];
  }
  EXPECT_EQ(total_ops, m.disk_reads + m.disk_writes);
  // Fixed model: every op is exactly 10 ms of busy time.
  EXPECT_NEAR(total_busy, static_cast<double>(total_ops) * 10.0, 1e-6);
  // No disk can be busy past the makespan.
  for (double busy : m.disk_busy_ms) {
    EXPECT_LE(busy, m.reconstruction_ms + 1e-9);
  }
}

TEST(Metrics, SummaryLineContainsAllHeadlineFields) {
  auto cfg = detailed_config();
  cfg.disk_model = DiskModelKind::FixedLatency;
  const codes::Layout l = codes::make_layout(cfg.code, cfg.p);
  const ArrayGeometry g(l, cfg.num_stripes);
  workload::ErrorTraceConfig tc;
  tc.num_stripes = cfg.num_stripes;
  tc.num_errors = 10;
  ReconstructionConfig rc;
  rc.workers = 4;
  rc.cache_bytes = 4ull << 20;
  ReconstructionEngine engine(l, g, rc);
  const SimMetrics m = engine.run(workload::generate_error_trace(l, tc));
  const std::string line = m.summary_line();
  EXPECT_NE(line.find("hit_ratio="), std::string::npos);
  EXPECT_NE(line.find("disk_reads="), std::string::npos);
  EXPECT_NE(line.find("reconstruction_ms="), std::string::npos);
  EXPECT_NE(line.find("stripes=10"), std::string::npos);
}

TEST(Placement, RotationBalancesDiskLoad) {
  // With fixed columns, the row-parity column (read by every RTP chain)
  // and the error column concentrate load; rotation spreads both.
  const codes::Layout l = codes::make_layout(codes::CodeId::TripleStar, 11);
  workload::ErrorTraceConfig tc;
  tc.num_stripes = 100000;
  tc.num_errors = 120;
  tc.seed = 21;
  const auto errors = workload::generate_error_trace(l, tc);
  auto imbalance = [&](bool rotate) {
    const ArrayGeometry g(l, 100000, rotate, SparePlacement::Distributed);
    ReconstructionConfig rc;
    rc.workers = 16;
    rc.cache_bytes = 16ull << 20;
    ReconstructionEngine engine(l, g, rc);
    const SimMetrics m = engine.run(errors);
    std::uint64_t max_ops = 0;
    std::uint64_t total = 0;
    for (std::uint64_t ops : m.disk_ops) {
      max_ops = std::max(max_ops, ops);
      total += ops;
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(m.disk_ops.size());
    return static_cast<double>(max_ops) / mean;
  };
  EXPECT_LT(imbalance(true), imbalance(false));
  EXPECT_LT(imbalance(true), 1.35);  // rotated: near-uniform
}

TEST(Placement, RotationDoesNotChangeCacheBehaviour) {
  // Rotation remaps chunks to disks but the logical request stream (and
  // thus hits/misses) is identical.
  auto cfg = detailed_config();
  cfg.disk_model = DiskModelKind::FixedLatency;
  cfg.layout_strategy = LayoutStrategy::Rotate;
  const core::ExperimentResult rotated = core::run_experiment(cfg);
  cfg.layout_strategy = LayoutStrategy::Naive;
  const core::ExperimentResult fixed = core::run_experiment(cfg);
  EXPECT_EQ(rotated.cache_hits, fixed.cache_hits);
  EXPECT_EQ(rotated.disk_reads, fixed.disk_reads);
}

TEST(Placement, SparePlacementDoesNotChangeCacheBehaviour) {
  auto cfg = detailed_config();
  cfg.disk_model = DiskModelKind::FixedLatency;
  cfg.spare_placement = SparePlacement::Distributed;
  const core::ExperimentResult distributed = core::run_experiment(cfg);
  cfg.spare_placement = SparePlacement::SameDisk;
  const core::ExperimentResult same = core::run_experiment(cfg);
  EXPECT_EQ(distributed.cache_hits, same.cache_hits);
  EXPECT_EQ(distributed.disk_reads, same.disk_reads);
  EXPECT_EQ(distributed.disk_writes, same.disk_writes);
}

}  // namespace
}  // namespace fbf::sim
