#include "sim/reconstruction.h"

#include <gtest/gtest.h>

#include "codes/builders.h"

namespace fbf::sim {
namespace {

ReconstructionConfig small_config() {
  ReconstructionConfig c;
  c.workers = 4;
  c.cache_bytes = 64 * 32 * 1024;  // 64 chunks total, 16 per worker
  c.chunk_bytes = 32 * 1024;
  c.seed = 11;
  return c;
}

std::vector<workload::StripeError> make_trace(const codes::Layout& l,
                                              int n_errors,
                                              std::uint64_t seed = 5) {
  workload::ErrorTraceConfig cfg;
  cfg.num_stripes = 10000;
  cfg.num_errors = n_errors;
  cfg.target_col = 0;
  cfg.seed = seed;
  return workload::generate_error_trace(l, cfg);
}

TEST(ReconstructionConfigTest, PerWorkerCapacity) {
  ReconstructionConfig c;
  c.chunk_bytes = 32 * 1024;
  c.workers = 128;
  c.cache_bytes = 256ull << 20;  // 8192 chunks
  EXPECT_EQ(c.per_worker_capacity(), 64u);
  c.cache_bytes = 2ull << 20;  // 64 chunks across 128 workers -> clamp to 1
  EXPECT_EQ(c.per_worker_capacity(), 1u);
  c.cache_bytes = 0;
  EXPECT_EQ(c.per_worker_capacity(), 0u);
}

TEST(Reconstruction, EventQueueReservationsAreExact) {
  // SOR's shard bounds (one pending event per worker, app arrivals plus
  // disk failures in the bulk shard) are structural invariants: a single
  // regrowth means a reservation was wrong, not that the run was big.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000);
  ReconstructionEngine engine(l, g, small_config());
  const SimMetrics m = engine.run(make_trace(l, 40));
  EXPECT_GT(m.engine_events, 0u);
  EXPECT_EQ(m.event_queue_regrowths, 0u);
}

TEST(Reconstruction, RecoversEveryStripeAndChunk) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000);
  const auto errors = make_trace(l, 40);
  std::uint64_t expected_chunks = 0;
  for (const auto& e : errors) {
    expected_chunks += static_cast<std::uint64_t>(e.error.num_chunks);
  }
  ReconstructionEngine engine(l, g, small_config());
  const SimMetrics m = engine.run(errors);
  EXPECT_EQ(m.stripes_recovered, errors.size());
  EXPECT_EQ(m.chunks_recovered, expected_chunks);
  EXPECT_EQ(m.disk_writes, expected_chunks);
  EXPECT_GT(m.reconstruction_ms, 0.0);
}

TEST(Reconstruction, MissesEqualDiskReads) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Star, 5);
  const ArrayGeometry g(l, 10000);
  ReconstructionEngine engine(l, g, small_config());
  const SimMetrics m = engine.run(make_trace(l, 30));
  EXPECT_EQ(m.cache.misses, m.disk_reads);
  EXPECT_EQ(m.cache.hits + m.cache.misses, m.total_chunk_requests);
}

TEST(Reconstruction, DataVerificationModePasses) {
  // Carry real bytes through every scheme step and compare to ground
  // truth — if the simulator ever XORed the wrong chunks this throws.
  for (codes::CodeId id : codes::kAllCodes) {
    const codes::Layout l = codes::make_layout(id, 5);
    const ArrayGeometry g(l, 10000);
    auto cfg = small_config();
    cfg.verify_data = true;
    ReconstructionEngine engine(l, g, cfg);
    const SimMetrics m = engine.run(make_trace(l, 12));
    EXPECT_EQ(m.stripes_recovered, 12u) << l.name();
  }
}

TEST(Reconstruction, DeterministicAcrossRuns) {
  const codes::Layout l = codes::make_layout(codes::CodeId::TripleStar, 7);
  const ArrayGeometry g(l, 10000);
  const auto errors = make_trace(l, 25);
  ReconstructionEngine a(l, g, small_config());
  ReconstructionEngine b(l, g, small_config());
  const SimMetrics ma = a.run(errors);
  const SimMetrics mb = b.run(errors);
  EXPECT_EQ(ma.cache.hits, mb.cache.hits);
  EXPECT_EQ(ma.disk_reads, mb.disk_reads);
  EXPECT_DOUBLE_EQ(ma.reconstruction_ms, mb.reconstruction_ms);
  EXPECT_DOUBLE_EQ(ma.response_ms.mean(), mb.response_ms.mean());
}

TEST(Reconstruction, ResponseTimeBetweenCacheAndLoadedDisk) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000);
  auto cfg = small_config();
  ReconstructionEngine engine(l, g, cfg);
  const SimMetrics m = engine.run(make_trace(l, 20));
  EXPECT_GE(m.response_ms.min(), cfg.cache_access_ms);
  // A miss costs at least one full disk access.
  EXPECT_GE(m.response_ms.max(), cfg.disk.read_ms);
}

TEST(Reconstruction, BiggerCacheNeverIncreasesDiskReads) {
  const codes::Layout l = codes::make_layout(codes::CodeId::TripleStar, 11);
  const ArrayGeometry g(l, 10000);
  const auto errors = make_trace(l, 60);
  std::uint64_t prev_reads = ~0ull;
  for (std::size_t chunks : {4u, 16u, 64u, 256u}) {
    auto cfg = small_config();
    cfg.policy = cache::PolicyId::Fbf;
    cfg.cache_bytes = chunks * cfg.chunk_bytes * 4;  // 4 workers
    ReconstructionEngine engine(l, g, cfg);
    const SimMetrics m = engine.run(errors);
    EXPECT_LE(m.disk_reads, prev_reads);
    prev_reads = m.disk_reads;
  }
}

TEST(Reconstruction, SchemeMemoizationReducesGenerations) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000);
  const auto errors = make_trace(l, 50);
  auto memo = small_config();
  ReconstructionEngine a(l, g, memo);
  const SimMetrics with_memo = a.run(errors);
  auto no_memo = small_config();
  no_memo.memoize_schemes = false;
  ReconstructionEngine b(l, g, no_memo);
  const SimMetrics without = b.run(errors);
  EXPECT_EQ(without.schemes_generated, errors.size());
  EXPECT_LT(with_memo.schemes_generated, without.schemes_generated);
  EXPECT_EQ(with_memo.schemes_generated + with_memo.scheme_cache_hits,
            errors.size());
  // Memoization must not change simulated behaviour.
  EXPECT_EQ(with_memo.disk_reads, without.disk_reads);
  EXPECT_DOUBLE_EQ(with_memo.reconstruction_ms, without.reconstruction_ms);
}

TEST(Reconstruction, DelayedDetectionPushesCompletionOut) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000);
  workload::ErrorTraceConfig cfg;
  cfg.num_stripes = 10000;
  cfg.num_errors = 5;
  cfg.mean_interarrival_ms = 10000.0;
  cfg.seed = 3;
  const auto errors = workload::generate_error_trace(l, cfg);
  ReconstructionEngine engine(l, g, small_config());
  const SimMetrics m = engine.run(errors);
  EXPECT_GE(m.reconstruction_ms, errors.back().detect_time_ms);
  EXPECT_EQ(m.stripes_recovered, errors.size());
}

TEST(Reconstruction, AppTrafficIsServedAndMeasured) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000);
  workload::AppTraceConfig app_cfg;
  app_cfg.num_stripes = 10000;
  app_cfg.num_requests = 200;
  app_cfg.mean_interarrival_ms = 0.5;
  const auto apps = workload::generate_app_trace(l, app_cfg);
  ReconstructionEngine engine(l, g, small_config());
  const SimMetrics m = engine.run(make_trace(l, 20), apps);
  EXPECT_EQ(m.app_requests, 200u);
  EXPECT_GT(m.app_response_ms.mean(), 0.0);
}

TEST(Reconstruction, ContentionSlowsAppTraffic) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000);
  workload::AppTraceConfig app_cfg;
  app_cfg.num_stripes = 10000;
  app_cfg.num_requests = 300;
  app_cfg.mean_interarrival_ms = 0.3;
  const auto apps = workload::generate_app_trace(l, app_cfg);
  ReconstructionEngine idle(l, g, small_config());
  const double idle_ms = idle.run({}, apps).app_response_ms.mean();
  ReconstructionEngine busy(l, g, small_config());
  const double busy_ms =
      busy.run(make_trace(l, 60), apps).app_response_ms.mean();
  EXPECT_GT(busy_ms, idle_ms);
}

TEST(Reconstruction, DegradedReadsParkUntilRecovery) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000);
  const auto errors = make_trace(l, 10);
  // Aim one app read directly at a damaged chunk and one at a healthy one.
  std::vector<workload::AppRequest> apps;
  workload::AppRequest degraded;
  degraded.stripe = errors[0].stripe;
  degraded.cell = errors[0].error.cells().front();
  degraded.is_read = true;
  degraded.arrival_ms = 0.0;
  apps.push_back(degraded);
  workload::AppRequest healthy;
  healthy.stripe = errors[0].stripe + 1 == 10000 ? 0 : errors[0].stripe + 1;
  healthy.cell = codes::Cell{0, 0};
  healthy.is_read = true;
  healthy.arrival_ms = 0.0;
  // Keep the healthy stripe genuinely healthy.
  for (const auto& e : errors) {
    ASSERT_NE(e.stripe, healthy.stripe);
  }
  apps.push_back(healthy);
  ReconstructionEngine engine(l, g, small_config());
  const SimMetrics m = engine.run(errors, apps);
  EXPECT_EQ(m.app_requests, 2u);
  EXPECT_EQ(m.app_degraded_reads, 1u);
  EXPECT_EQ(m.app_response_ms.count(), 2u);
  // The degraded read waited for its stripe's reconstruction — several
  // chain fetches, far beyond the healthy read's single ~10 ms disk trip.
  EXPECT_GT(m.app_response_ms.max(), 30.0);
  EXPECT_LT(m.app_response_ms.min(), 15.0);
}

TEST(Reconstruction, AppReadAfterRecoveryIsNotDegraded) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000);
  const auto errors = make_trace(l, 5);
  std::vector<workload::AppRequest> apps;
  workload::AppRequest late;
  late.stripe = errors[0].stripe;
  late.cell = errors[0].error.cells().front();
  late.is_read = true;
  late.arrival_ms = 1e7;  // long after reconstruction finishes
  apps.push_back(late);
  ReconstructionEngine engine(l, g, small_config());
  const SimMetrics m = engine.run(errors, apps);
  EXPECT_EQ(m.app_degraded_reads, 0u);
  EXPECT_LT(m.app_response_ms.max(), 50.0);
}

TEST(Reconstruction, DegradedWritesParkUntilRecovery) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000);
  const auto errors = make_trace(l, 10);
  // One write aimed at a damaged chunk (RMW cannot read its target), one
  // at a healthy stripe.
  std::vector<workload::AppRequest> apps;
  workload::AppRequest degraded;
  degraded.stripe = errors[0].stripe;
  degraded.cell = errors[0].error.cells().front();
  degraded.is_read = false;
  degraded.arrival_ms = 0.0;
  apps.push_back(degraded);
  workload::AppRequest healthy;
  healthy.stripe = errors[0].stripe + 1 == 10000 ? 0 : errors[0].stripe + 1;
  healthy.cell = codes::Cell{0, 0};
  healthy.is_read = false;
  healthy.arrival_ms = 0.0;
  for (const auto& e : errors) {
    ASSERT_NE(e.stripe, healthy.stripe);
  }
  apps.push_back(healthy);
  ReconstructionEngine engine(l, g, small_config());
  const SimMetrics m = engine.run(errors, apps);
  EXPECT_EQ(m.app_requests, 2u);
  EXPECT_EQ(m.app_degraded_writes, 1u);
  EXPECT_EQ(m.app_degraded_reads, 0u);
  EXPECT_EQ(m.app_served, 1u);
  EXPECT_EQ(m.app_parked_drained, 1u);
  EXPECT_EQ(m.app_response_ms.count(), 2u);
  // The parked write waited out its stripe's reconstruction.
  EXPECT_GT(m.app_response_ms.max(), 30.0);
}

TEST(Reconstruction, DamagedParityParksTheWrite) {
  // A write whose RMW parity sources are damaged has no valid sources even
  // though its own target is healthy: it must park until the stripe is
  // repaired (DESIGN.md §13's damaged-parity rule).
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000);
  const codes::Chain& chain = l.chain(0);
  const codes::Cell parity = chain.parity_cell;
  codes::Cell data{-1, -1};
  for (const codes::Cell& c : chain.cells) {
    if (l.kind(c) == codes::CellKind::Data) {
      data = c;
      break;
    }
  }
  ASSERT_NE(data.col, -1);
  // Hand-craft the trace: the chain's parity chunk is the only loss.
  workload::StripeError err;
  err.stripe = 42;
  err.error.col = parity.col;
  err.error.first_row = parity.row;
  err.error.num_chunks = 1;
  err.detect_time_ms = 0.0;
  workload::AppRequest write;
  write.stripe = err.stripe;
  write.cell = data;
  write.is_read = false;
  write.arrival_ms = 0.0;
  ReconstructionEngine engine(l, g, small_config());
  const SimMetrics m = engine.run({err}, {write});
  EXPECT_EQ(m.app_requests, 1u);
  EXPECT_EQ(m.app_degraded_writes, 1u);
  EXPECT_EQ(m.app_served, 0u);
  EXPECT_EQ(m.app_parked_drained, 1u);
  // Conservation law the validator enforces on every run.
  EXPECT_EQ(m.app_requests, m.app_served + m.app_parked_drained);
}

TEST(Reconstruction, WriteAfterRecoveryHitsSpareLocation) {
  // Once a damaged chunk is repaired its live copy is in the spare area:
  // a later RMW must touch the spare disk, never the dead original sector.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 10000, false, SparePlacement::Distributed);
  const auto errors = make_trace(l, 10);
  const std::uint64_t stripe = errors[0].stripe;
  const codes::Cell cell = errors[0].error.cells().front();
  const int original = g.disk_of(stripe, cell);
  const int spare = g.spare_disk_of(stripe, cell);
  ASSERT_NE(original, spare);  // Distributed placement spreads spares
  workload::AppRequest write;
  write.stripe = stripe;
  write.cell = cell;
  write.is_read = false;
  write.arrival_ms = 1e7;  // long after reconstruction finishes
  ReconstructionEngine base_engine(l, g, small_config());
  const SimMetrics base = base_engine.run(errors);
  ReconstructionEngine engine(l, g, small_config());
  const SimMetrics m = engine.run(errors, {write});
  EXPECT_EQ(m.app_degraded_writes, 0u);
  EXPECT_EQ(m.app_served, 1u);
  // RMW = read+write of the target plus read+write of each chain parity.
  const auto chains = l.chains_containing(cell);
  std::uint64_t total_delta = 0;
  for (std::size_t d = 0; d < m.disk_ops.size(); ++d) {
    total_delta += m.disk_ops[d] - base.disk_ops[d];
  }
  EXPECT_EQ(total_delta, 2u * (1u + chains.size()));
  // The target's two ops landed on the spare disk; the original sector's
  // disk sees traffic only if it also hosts one of the parity cells.
  std::uint64_t original_delta =
      m.disk_ops[static_cast<std::size_t>(original)] -
      base.disk_ops[static_cast<std::size_t>(original)];
  for (const int chain_id : chains) {
    if (g.disk_of(stripe, l.chain(chain_id).parity_cell) == original) {
      original_delta -= 2;
    }
  }
  EXPECT_EQ(original_delta, 0u);
  EXPECT_GE(m.disk_ops[static_cast<std::size_t>(spare)] -
                base.disk_ops[static_cast<std::size_t>(spare)],
            2u);
}

TEST(Reconstruction, SameSeedAppRunsAreByteIdentical) {
  const codes::Layout l = codes::make_layout(codes::CodeId::TripleStar, 7);
  const ArrayGeometry g(l, 10000);
  const auto errors = make_trace(l, 25);
  workload::AppTraceConfig app_cfg;
  app_cfg.num_stripes = 10000;
  app_cfg.num_requests = 400;
  app_cfg.read_fraction = 0.6;
  app_cfg.deadline_ms = 30.0;
  app_cfg.mean_interarrival_ms = 0.4;
  const auto apps = workload::generate_app_trace(l, app_cfg);
  auto cfg = small_config();
  cfg.throttle.rebuild_reads_per_sec = 800.0;
  ReconstructionEngine a(l, g, cfg);
  ReconstructionEngine b(l, g, cfg);
  const SimMetrics ma = a.run(errors, apps);
  const SimMetrics mb = b.run(errors, apps);
  EXPECT_EQ(ma.disk_reads, mb.disk_reads);
  EXPECT_EQ(ma.app_served, mb.app_served);
  EXPECT_EQ(ma.app_parked_drained, mb.app_parked_drained);
  EXPECT_EQ(ma.app_deadline_miss, mb.app_deadline_miss);
  EXPECT_DOUBLE_EQ(ma.reconstruction_ms, mb.reconstruction_ms);
  EXPECT_DOUBLE_EQ(ma.app_response_ms.mean(), mb.app_response_ms.mean());
  EXPECT_DOUBLE_EQ(ma.app_response_ms.max(), mb.app_response_ms.max());
  EXPECT_EQ(ma.app_response_hist.count(), mb.app_response_hist.count());
}

TEST(Reconstruction, ThrottleSlowsRebuildWithoutLosingWork) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000);
  const auto errors = make_trace(l, 40);
  ReconstructionEngine free_engine(l, g, small_config());
  const SimMetrics unthrottled = free_engine.run(errors);
  auto cfg = small_config();
  cfg.throttle.rebuild_reads_per_sec = 100.0;
  cfg.throttle.burst = 1;
  ReconstructionEngine slow_engine(l, g, cfg);
  const SimMetrics throttled = slow_engine.run(errors);
  EXPECT_GT(throttled.reconstruction_ms, unthrottled.reconstruction_ms);
  EXPECT_EQ(throttled.stripes_recovered, unthrottled.stripes_recovered);
  EXPECT_EQ(throttled.chunks_recovered, unthrottled.chunks_recovered);
  // The throttle reorders submissions in time, never the demand pattern.
  EXPECT_EQ(throttled.disk_reads, unthrottled.disk_reads);
}

TEST(Reconstruction, SingleWorkerStillCompletes) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Star, 5);
  const ArrayGeometry g(l, 10000);
  auto cfg = small_config();
  cfg.workers = 1;
  ReconstructionEngine engine(l, g, cfg);
  const SimMetrics m = engine.run(make_trace(l, 10));
  EXPECT_EQ(m.stripes_recovered, 10u);
}

TEST(Reconstruction, EmptyTraceIsNoop) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const ArrayGeometry g(l, 100);
  ReconstructionEngine engine(l, g, small_config());
  const SimMetrics m = engine.run({});
  EXPECT_EQ(m.stripes_recovered, 0u);
  EXPECT_EQ(m.total_chunk_requests, 0u);
  EXPECT_DOUBLE_EQ(m.reconstruction_ms, 0.0);
}

}  // namespace
}  // namespace fbf::sim
