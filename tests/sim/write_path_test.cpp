// Partial-stripe write path, end to end through both engines: the
// parity-update planner serves degraded writes inline instead of parking
// them, the dirty write-back cache flushes on eviction, on the periodic
// tick, and at termination, and the new accounting obeys its conservation
// laws under faults and throttling. The DOR legacy/fast byte-identity
// contract is re-checked with the write path enabled, since both loops
// wire the flush ticks independently.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "codes/builders.h"
#include "obs/observer.h"
#include "sim/dor_engine.h"
#include "sim/reconstruction.h"
#include "sim/validate.h"
#include "workload/app_trace.h"
#include "workload/errors.h"

namespace fbf::sim {
namespace {

std::vector<workload::StripeError> make_trace(const codes::Layout& l,
                                              int n_errors, int target_col,
                                              std::uint64_t seed = 5) {
  workload::ErrorTraceConfig cfg;
  cfg.num_stripes = 10000;
  cfg.num_errors = n_errors;
  cfg.target_col = target_col;
  cfg.seed = seed;
  return workload::generate_error_trace(l, cfg);
}

std::vector<workload::AppRequest> make_apps(const codes::Layout& l,
                                            int n, double read_fraction,
                                            double rewrite = 0.0,
                                            std::uint64_t seed = 7) {
  workload::AppTraceConfig cfg;
  cfg.num_stripes = 10000;
  cfg.num_requests = n;
  cfg.read_fraction = read_fraction;
  cfg.mean_interarrival_ms = 0.5;
  cfg.rewrite_fraction = rewrite;
  cfg.seed = seed;
  return workload::generate_app_trace(l, cfg);
}

WritePathConfig write_on(std::size_t chunks = 32,
                         double flush_ms = 25.0) {
  WritePathConfig w;
  w.cache_chunks = chunks;
  w.flush_interval_ms = flush_ms;
  return w;
}

ReconstructionConfig sor_config() {
  ReconstructionConfig c;
  c.workers = 8;
  c.cache_bytes = 64 * 32 * 1024;
  c.chunk_bytes = 32 * 1024;
  c.seed = 11;
  return c;
}

DorConfig dor_config() {
  DorConfig c;
  c.cache_bytes = 64 * 32 * 1024;
  c.chunk_bytes = 32 * 1024;
  c.seed = 11;
  return c;
}

/// The write-path conservation laws from sim/validate.cpp, asserted
/// directly so every test run checks them whether or not FBF_VALIDATE is
/// exported in the environment.
void expect_write_laws(const SimMetrics& m, const std::string& context) {
  validate_metrics(m);
  EXPECT_EQ(m.write.spare_writes, m.chunks_recovered) << context;
  EXPECT_EQ(m.disk_writes, m.write.spare_writes + m.write.write_backs +
                               m.write.parity_updates)
      << context;
  EXPECT_EQ(m.write.dirty_installed, m.write.flushed + m.write.lost_dirty)
      << context;
  EXPECT_EQ(m.write.flushed, m.write.write_backs) << context;
}

TEST(WritePath, ConfigDefaultsToDisabled) {
  EXPECT_FALSE(WritePathConfig{}.enabled());
  EXPECT_TRUE(write_on().enabled());
}

TEST(WritePath, DisabledRunsExportNoWriteCounters) {
  // A write-free run must not flip the export gate: the pre-PR golden
  // files (tests/golden) pin the exact bytes; this pins the gate itself.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  ReconstructionEngine engine(l, g, sor_config());
  const SimMetrics m =
      engine.run(make_trace(l, 10, 0), make_apps(l, 50, 0.5));
  EXPECT_FALSE(m.write.enabled);
  EXPECT_EQ(m.write.rmw_plans, 0u);
  EXPECT_EQ(m.write.dirty_installed, 0u);
  EXPECT_EQ(m.write.spare_writes, m.chunks_recovered);  // live either way
  expect_write_laws(m, "disabled");
}

TEST(WritePath, SorServesWritesThroughPlannerAndFlushes) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  auto cfg = sor_config();
  cfg.write = write_on();
  ReconstructionEngine engine(l, g, cfg);
  const SimMetrics m =
      engine.run(make_trace(l, 10, 0), make_apps(l, 200, 0.4, 0.4));
  EXPECT_TRUE(m.write.enabled);
  EXPECT_GT(m.write.rmw_plans + m.write.rcw_plans + m.write.direct_plans, 0u);
  EXPECT_GT(m.write.parity_updates, 0u);
  EXPECT_GT(m.write.dirty_installed, 0u);
  EXPECT_GT(m.write.write_backs, 0u);
  EXPECT_GT(m.write.flush_ticks, 0u);
  EXPECT_GT(m.write.write_hits, 0u);  // the rewrite fraction gets reuse
  EXPECT_EQ(m.write.lost_dirty, 0u);  // no disk failures in this run
  expect_write_laws(m, "sor planner");
}

TEST(WritePath, DorBothLoopsServeWritesAndAgree) {
  // The legacy/fast byte-identity contract must survive the write path:
  // both loops arm the same flush ticks and drain the same write-backs.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  const auto errors = make_trace(l, 20, -1);
  const auto apps = make_apps(l, 300, 0.5, 0.3);
  std::string json[2];
  for (int pass = 0; pass < 2; ++pass) {
    obs::RunObserver observer;
    auto cfg = dor_config();
    cfg.write = write_on();
    cfg.legacy_loop = pass == 1;
    cfg.observer = &observer;
    DorEngine engine(l, g, cfg);
    const SimMetrics m = engine.run(errors, apps);
    EXPECT_GT(m.write.write_backs, 0u);
    EXPECT_GT(m.write.flush_ticks, 0u);
    expect_write_laws(m, pass == 1 ? "dor legacy" : "dor fast");
    json[pass] = observer.metrics_json(/*include_wall=*/false);
  }
  EXPECT_EQ(json[0], json[1])
      << "fast and legacy DOR loops diverged with the write path enabled";
}

TEST(WritePath, DamagedParityWriteIsServedInlineNotParked) {
  // Legacy rule: a write whose chain parity is damaged parks until the
  // stripe recovers. The planner replaces the park with a degraded plan
  // (the damaged parity is simply skipped; the delta propagates when the
  // parity is rebuilt), so the same trace must serve strictly more writes
  // at arrival. Writes aimed at damaged *data* targets still park.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  const auto errors = make_trace(l, 24, -1, 9);
  std::vector<workload::AppRequest> apps;
  int parity_damaged = 0;
  for (const workload::StripeError& e : errors) {
    const codes::Cell damaged = e.error.cells().front();
    if (l.kind(damaged) == codes::CellKind::Data) {
      continue;
    }
    // The chain this cell is the parity *of* (it may also be a member of
    // chains in other directions, which do not trigger the park rule).
    int owning_chain = -1;
    for (int chain_id : l.chains_containing(damaged)) {
      if (l.chain(chain_id).parity_cell == damaged) {
        owning_chain = chain_id;
        break;
      }
    }
    if (owning_chain < 0) {
      continue;
    }
    // A healthy data cell in the damaged parity's chain.
    for (const codes::Cell& c : l.chain(owning_chain).cells) {
      if (!(c == damaged) && l.kind(c) == codes::CellKind::Data) {
        workload::AppRequest r;
        r.stripe = e.stripe;
        r.cell = c;
        r.is_read = false;
        r.arrival_ms = 0.05 * static_cast<double>(++parity_damaged);
        apps.push_back(r);
        break;
      }
    }
  }
  ASSERT_GT(parity_damaged, 0) << "trace produced no damaged parity cells";

  auto legacy_cfg = sor_config();
  ReconstructionEngine legacy(l, g, legacy_cfg);
  const SimMetrics lm = legacy.run(errors, apps);
  EXPECT_EQ(lm.app_parked_drained, static_cast<std::uint64_t>(parity_damaged))
      << "every parity-damaged write should park on the legacy path";

  auto cfg = sor_config();
  cfg.write = write_on();
  ReconstructionEngine planned(l, g, cfg);
  const SimMetrics pm = planned.run(errors, apps);
  EXPECT_EQ(pm.app_parked_drained, 0u)
      << "the planner must serve parity-damaged writes inline";
  EXPECT_EQ(pm.write.degraded_plans,
            static_cast<std::uint64_t>(parity_damaged));
  EXPECT_EQ(pm.app_served, pm.app_requests);
  expect_write_laws(pm, "degraded inline");
}

TEST(WritePath, EvictionPressureTriggersWriteBacks) {
  // A two-line write cache under a write-heavy stream: almost every write
  // evicts a dirty victim, which must surface as an evicted-dirty drain
  // (flushed == write_backs) rather than silent loss.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  auto cfg = sor_config();
  cfg.write = write_on(/*chunks=*/2, /*flush_ms=*/0.0);  // no ticks
  ReconstructionEngine engine(l, g, cfg);
  const SimMetrics m =
      engine.run(make_trace(l, 8, 0), make_apps(l, 250, 0.2));
  EXPECT_EQ(m.write.flush_ticks, 0u);
  EXPECT_GT(m.write.evicted_dirty, 0u);
  EXPECT_GE(m.write.flushed, m.write.evicted_dirty);
  expect_write_laws(m, "eviction pressure");
}

TEST(WritePath, DiskFailureLosesDirtyLinesBoundForIt) {
  // Dirty lines live in controller RAM and survive a disk failure, except
  // those whose write-back *target* died: they have nowhere to flush and
  // are dropped as lost_dirty. Ticks are off and the cache is large, so
  // lines stay dirty long enough for the failure to catch them.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  for (const bool legacy_loop : {false, true}) {
    auto cfg = dor_config();
    cfg.write = write_on(/*chunks=*/256, /*flush_ms=*/0.0);
    cfg.faults.disk_failure_times_ms = {60.0};
    cfg.legacy_loop = legacy_loop;
    DorEngine engine(l, g, cfg);
    const SimMetrics m =
        engine.run(make_trace(l, 20, 0), make_apps(l, 400, 0.3));
    const std::string context =
        legacy_loop ? "disk failure (legacy)" : "disk failure (fast)";
    EXPECT_GT(m.write.lost_dirty, 0u) << context;
    EXPECT_GT(m.write.flushed, 0u) << context;
    expect_write_laws(m, context);
  }
}

TEST(WritePath, LawsHoldUnderCombinedFaultAndThrottleStress) {
  // Faults (UREs, transients, a mid-run disk failure), throttling, flush
  // ticks, and eviction pressure at once, on both engines: the write
  // accounting must stay conserved through replans and escalations.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  // Errors pinned to one column: a random multi-column trace plus the
  // whole-disk failure below can escalate past the 3DFT erasure budget.
  const auto errors = make_trace(l, 16, 0);
  const auto apps = make_apps(l, 300, 0.5, 0.3);
  FaultConfig faults;
  faults.ure_rate = 0.03;
  faults.transient_rate = 0.01;
  faults.disk_failure_times_ms = {150.0};
  ThrottleConfig throttle;
  throttle.rebuild_reads_per_sec = 800.0;

  auto sor = sor_config();
  sor.write = write_on(/*chunks=*/8, /*flush_ms=*/10.0);
  sor.faults = faults;
  sor.throttle = throttle;
  ReconstructionEngine se(l, g, sor);
  const SimMetrics sm = se.run(errors, apps);
  EXPECT_GT(sm.write.write_backs, 0u);
  expect_write_laws(sm, "sor stress");

  auto dor = dor_config();
  dor.write = write_on(/*chunks=*/8, /*flush_ms=*/10.0);
  dor.faults = faults;
  dor.throttle = throttle;
  DorEngine de(l, g, dor);
  const SimMetrics dm = de.run(errors, apps);
  EXPECT_GT(dm.write.write_backs, 0u);
  expect_write_laws(dm, "dor stress");
}

TEST(WritePath, FavorableRetentionHoldsDirtyLinesAcrossTicks) {
  // retain_favorable keeps priority>=2 lines dirty across periodic
  // flushes; with it off every tick drains the whole dirty set. The
  // retained counter separates the two behaviors on the same trace.
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  const ArrayGeometry g(l, 10000, true, SparePlacement::Distributed);
  const auto errors = make_trace(l, 24, 0);
  // Writes aimed at cells of damaged stripes stamp priority 3 (stripe
  // under repair), so retention has favorable lines to hold.
  std::vector<workload::AppRequest> apps = make_apps(l, 150, 0.5);
  for (std::size_t i = 0; i < errors.size(); ++i) {
    workload::AppRequest r;
    r.stripe = errors[i].stripe;
    for (const codes::Cell& c : l.chain(0).cells) {
      if (l.kind(c) == codes::CellKind::Data &&
          !(c == errors[i].error.cells().front())) {
        r.cell = c;
        break;
      }
    }
    r.is_read = false;
    r.arrival_ms = 0.1 * static_cast<double>(i + 1);
    apps.push_back(r);
  }
  SimMetrics m[2];
  for (const bool retain : {false, true}) {
    auto cfg = sor_config();
    cfg.write = write_on(/*chunks=*/64, /*flush_ms=*/5.0);
    cfg.write.retain_favorable = retain;
    ReconstructionEngine engine(l, g, cfg);
    m[retain ? 1 : 0] = engine.run(errors, apps);
    expect_write_laws(m[retain ? 1 : 0],
                      retain ? "retain on" : "retain off");
  }
  EXPECT_EQ(m[0].write.retained_dirty, 0u);
  EXPECT_GT(m[1].write.retained_dirty, 0u);
}

}  // namespace
}  // namespace fbf::sim
