#include "workload/errors.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include <set>

#include "codes/builders.h"

namespace fbf::workload {
namespace {

const codes::Layout& layout() {
  static const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 11);
  return l;
}

ErrorTraceConfig base_config() {
  ErrorTraceConfig c;
  c.num_stripes = 100000;
  c.num_errors = 500;
  c.target_col = 0;
  c.seed = 17;
  return c;
}

TEST(ErrorTrace, SizesWithinPaperRange) {
  const auto trace = generate_error_trace(layout(), base_config());
  ASSERT_EQ(trace.size(), 500u);
  for (const auto& e : trace) {
    EXPECT_GE(e.error.num_chunks, 1);
    EXPECT_LE(e.error.num_chunks, layout().rows());  // (p-1) chunks max
    EXPECT_GE(e.error.first_row, 0);
    EXPECT_LE(e.error.first_row + e.error.num_chunks, layout().rows());
  }
}

TEST(ErrorTrace, MeanSizeNearHalfStripe) {
  auto cfg = base_config();
  cfg.num_errors = 4000;
  const auto trace = generate_error_trace(layout(), cfg);
  double sum = 0.0;
  for (const auto& e : trace) {
    sum += e.error.num_chunks;
  }
  // Uniform over [1, p-1] -> mean p/2 = (1 + (p-1)) / 2.
  const double expected = (1.0 + layout().rows()) / 2.0;
  EXPECT_NEAR(sum / static_cast<double>(trace.size()), expected, 0.25);
}

TEST(ErrorTrace, StripesAreDistinct) {
  const auto trace = generate_error_trace(layout(), base_config());
  std::set<std::uint64_t> stripes;
  for (const auto& e : trace) {
    EXPECT_TRUE(stripes.insert(e.stripe).second);
  }
}

TEST(ErrorTrace, TargetColumnRespected) {
  auto cfg = base_config();
  cfg.target_col = 3;
  for (const auto& e : generate_error_trace(layout(), cfg)) {
    EXPECT_EQ(e.error.col, 3);
  }
}

TEST(ErrorTrace, RandomColumnModeCoversSeveralDisks) {
  auto cfg = base_config();
  cfg.target_col = -1;
  std::set<int> cols;
  for (const auto& e : generate_error_trace(layout(), cfg)) {
    EXPECT_GE(e.error.col, 0);
    EXPECT_LT(e.error.col, layout().cols());
    cols.insert(e.error.col);
  }
  EXPECT_GT(cols.size(), 3u);
}

TEST(ErrorTrace, SpatialLocalityClustersStripes) {
  auto clustered_cfg = base_config();
  clustered_cfg.spatial_locality = 0.95;
  clustered_cfg.locality_window = 8;
  auto spread_cfg = base_config();
  spread_cfg.spatial_locality = 0.0;
  auto near_fraction = [](const std::vector<StripeError>& trace) {
    // Fraction of errors within 8 stripes of the previously generated one
    // (trace is time-ordered and all detect times are 0 here, so re-sort
    // by generation is unnecessary: same order).
    int near = 0;
    for (std::size_t i = 1; i < trace.size(); ++i) {
      const auto a = trace[i - 1].stripe;
      const auto b = trace[i].stripe;
      if ((b > a ? b - a : a - b) <= 8) {
        ++near;
      }
    }
    return static_cast<double>(near) / static_cast<double>(trace.size());
  };
  const double clustered =
      near_fraction(generate_error_trace(layout(), clustered_cfg));
  const double spread =
      near_fraction(generate_error_trace(layout(), spread_cfg));
  EXPECT_GT(clustered, spread + 0.3);
}

TEST(ErrorTrace, DeterministicPerSeed) {
  const auto a = generate_error_trace(layout(), base_config());
  const auto b = generate_error_trace(layout(), base_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stripe, b[i].stripe);
    EXPECT_EQ(a[i].error, b[i].error);
  }
  auto other_cfg = base_config();
  other_cfg.seed = 18;
  const auto c = generate_error_trace(layout(), other_cfg);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs |= a[i].stripe != c[i].stripe;
  }
  EXPECT_TRUE(differs);
}

TEST(ErrorTrace, InterarrivalTimesSorted) {
  auto cfg = base_config();
  cfg.mean_interarrival_ms = 5.0;
  const auto trace = generate_error_trace(layout(), cfg);
  double prev = -1.0;
  for (const auto& e : trace) {
    EXPECT_GE(e.detect_time_ms, prev);
    prev = e.detect_time_ms;
  }
  EXPECT_GT(trace.back().detect_time_ms, 0.0);
}

TEST(ErrorTrace, DenseTraceFillsAllStripes) {
  auto cfg = base_config();
  cfg.num_stripes = 64;
  cfg.num_errors = 64;
  const auto trace = generate_error_trace(layout(), cfg);
  std::set<std::uint64_t> stripes;
  for (const auto& e : trace) {
    stripes.insert(e.stripe);
  }
  EXPECT_EQ(stripes.size(), 64u);
}

TEST(ErrorTrace, MaxChunksOverrideClampsSizes) {
  // Regression: sizes were always drawn from [1, rows] with no way to
  // model smaller latent errors; the override must cap every draw.
  auto cfg = base_config();
  cfg.num_errors = 2000;
  cfg.max_chunks = 3;
  bool saw_max = false;
  for (const auto& e : generate_error_trace(layout(), cfg)) {
    EXPECT_GE(e.error.num_chunks, 1);
    EXPECT_LE(e.error.num_chunks, 3);
    saw_max |= e.error.num_chunks == 3;
  }
  EXPECT_TRUE(saw_max);  // the cap itself is reachable, not excluded
}

TEST(ErrorTrace, MaxChunksBelowFullColumnExcludesFullColumnErrors) {
  // With max_chunks = rows - 1, no error may span the whole column — the
  // draw that previously reached rows must now be impossible.
  auto cfg = base_config();
  cfg.num_errors = 2000;
  cfg.max_chunks = layout().rows() - 1;
  for (const auto& e : generate_error_trace(layout(), cfg)) {
    EXPECT_LT(e.error.num_chunks, layout().rows());
  }
}

TEST(ErrorTrace, MaxChunksDefaultMatchesPaperBound) {
  // max_chunks = 0 must behave exactly like the paper's [1, min(rows,
  // p-1)] = [1, rows] draw: identical trace, same seed.
  auto explicit_cfg = base_config();
  explicit_cfg.max_chunks = layout().rows();
  const auto a = generate_error_trace(layout(), base_config());
  const auto b = generate_error_trace(layout(), explicit_cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stripe, b[i].stripe);
    EXPECT_EQ(a[i].error, b[i].error);
  }
}

TEST(ErrorTrace, RejectsOutOfRangeMaxChunks) {
  auto cfg = base_config();
  cfg.max_chunks = -1;
  EXPECT_THROW(generate_error_trace(layout(), cfg), util::CheckError);
  cfg.max_chunks = layout().rows() + 1;
  EXPECT_THROW(generate_error_trace(layout(), cfg), util::CheckError);
}

TEST(ErrorTrace, RejectsBadConfigs) {
  auto cfg = base_config();
  cfg.num_errors = 0;
  EXPECT_THROW(generate_error_trace(layout(), cfg), util::CheckError);
  cfg = base_config();
  cfg.num_errors = 10;
  cfg.num_stripes = 5;
  EXPECT_THROW(generate_error_trace(layout(), cfg), util::CheckError);
  cfg = base_config();
  cfg.target_col = layout().cols();
  EXPECT_THROW(generate_error_trace(layout(), cfg), util::CheckError);
  cfg = base_config();
  cfg.spatial_locality = 1.5;
  EXPECT_THROW(generate_error_trace(layout(), cfg), util::CheckError);
}

}  // namespace
}  // namespace fbf::workload
