#include "workload/app_trace.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include <set>

#include "codes/builders.h"

namespace fbf::workload {
namespace {

const codes::Layout& layout() {
  static const codes::Layout l = codes::make_layout(codes::CodeId::Star, 7);
  return l;
}

TEST(AppTrace, GeneratesRequestedCount) {
  AppTraceConfig cfg;
  cfg.num_requests = 321;
  const auto trace = generate_app_trace(layout(), cfg);
  EXPECT_EQ(trace.size(), 321u);
}

TEST(AppTrace, ArrivalsAreSortedAndPositive) {
  AppTraceConfig cfg;
  cfg.num_requests = 500;
  double prev = 0.0;
  for (const auto& r : generate_app_trace(layout(), cfg)) {
    EXPECT_GE(r.arrival_ms, prev);
    prev = r.arrival_ms;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(AppTrace, CellsInBounds) {
  AppTraceConfig cfg;
  cfg.num_requests = 500;
  for (const auto& r : generate_app_trace(layout(), cfg)) {
    EXPECT_TRUE(layout().in_bounds(r.cell));
    EXPECT_LT(r.stripe, cfg.num_stripes);
  }
}

TEST(AppTrace, ReadFractionApproximatelyHonored) {
  AppTraceConfig cfg;
  cfg.num_requests = 5000;
  cfg.read_fraction = 0.7;
  int reads = 0;
  for (const auto& r : generate_app_trace(layout(), cfg)) {
    reads += r.is_read ? 1 : 0;
  }
  EXPECT_NEAR(reads / 5000.0, 0.7, 0.05);
}

TEST(AppTrace, ZipfSkewConcentratesOnHotStripes) {
  AppTraceConfig cfg;
  cfg.num_requests = 5000;
  cfg.zipf_skew = 0.99;
  cfg.num_stripes = 100000;
  std::uint64_t low = 0;
  for (const auto& r : generate_app_trace(layout(), cfg)) {
    if (r.stripe < 10000) {
      ++low;
    }
  }
  // Uniform would put ~10% in the first decile; Zipf far more.
  EXPECT_GT(low, 1500u);
}

TEST(AppTrace, DeterministicPerSeed) {
  AppTraceConfig cfg;
  cfg.num_requests = 100;
  const auto a = generate_app_trace(layout(), cfg);
  const auto b = generate_app_trace(layout(), cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stripe, b[i].stripe);
    EXPECT_EQ(a[i].cell, b[i].cell);
    EXPECT_EQ(a[i].is_read, b[i].is_read);
    EXPECT_DOUBLE_EQ(a[i].arrival_ms, b[i].arrival_ms);
  }
}

TEST(AppTrace, RejectsBadConfig) {
  AppTraceConfig cfg;
  cfg.read_fraction = 2.0;
  EXPECT_THROW(generate_app_trace(layout(), cfg), util::CheckError);
  cfg = AppTraceConfig{};
  cfg.mean_interarrival_ms = 0.0;
  EXPECT_THROW(generate_app_trace(layout(), cfg), util::CheckError);
}

}  // namespace
}  // namespace fbf::workload
