#include "workload/trace_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "codes/builders.h"
#include "util/check.h"

namespace fbf::workload {
namespace {

const codes::Layout& layout() {
  static const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 7);
  return l;
}

std::vector<StripeError> sample_trace() {
  ErrorTraceConfig cfg;
  cfg.num_stripes = 5000;
  cfg.num_errors = 50;
  cfg.mean_interarrival_ms = 3.0;
  cfg.seed = 9;
  return generate_error_trace(layout(), cfg);
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const auto trace = sample_trace();
  std::stringstream ss;
  write_error_trace(ss, trace);
  const auto loaded = read_error_trace(ss, layout());
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded[i].stripe, trace[i].stripe);
    EXPECT_EQ(loaded[i].error, trace[i].error);
    EXPECT_DOUBLE_EQ(loaded[i].detect_time_ms, trace[i].detect_time_ms);
  }
}

TEST(TraceIo, HeaderIsWritten) {
  std::stringstream ss;
  write_error_trace(ss, {});
  EXPECT_EQ(ss.str(), "stripe,col,first_row,num_chunks,detect_time_ms\n");
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  std::stringstream ss;
  write_error_trace(ss, {});
  EXPECT_TRUE(read_error_trace(ss, layout()).empty());
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream ss("1,2,3,4,5\n");
  EXPECT_THROW(read_error_trace(ss, layout()), util::CheckError);
}

TEST(TraceIo, RejectsMalformedRow) {
  std::stringstream ss(
      "stripe,col,first_row,num_chunks,detect_time_ms\nnot-a-number,0,0,1,0\n");
  EXPECT_THROW(read_error_trace(ss, layout()), util::CheckError);
}

TEST(TraceIo, RejectsOutOfRangeColumn) {
  std::stringstream ss(
      "stripe,col,first_row,num_chunks,detect_time_ms\n7,99,0,1,0\n");
  EXPECT_THROW(read_error_trace(ss, layout()), util::CheckError);
}

TEST(TraceIo, RejectsOversizedError) {
  std::stringstream ss(
      "stripe,col,first_row,num_chunks,detect_time_ms\n7,0,4,5,0\n");
  EXPECT_THROW(read_error_trace(ss, layout()), util::CheckError);
}

TEST(TraceIo, RejectsTrailingGarbage) {
  // Regression: "1,2,0,3,5.0,junk" used to parse — operator>> stopped at
  // the valid prefix and silently dropped the rest of the line.
  const std::string header = "stripe,col,first_row,num_chunks,detect_time_ms\n";
  for (const char* row : {
           "1,2,0,3,5.0,junk\n",   // sixth field
           "1,2,0,3,5.0,\n",       // fifth comma
           "1,2,0,3,5.0junk\n",    // stray chars glued to the double
           "1,2,0,3,5.0 7\n",      // second value after whitespace
       }) {
    std::stringstream ss(header + row);
    EXPECT_THROW(read_error_trace(ss, layout()), util::CheckError) << row;
  }
}

TEST(TraceIo, TrailingWhitespaceAndCrlfAccepted) {
  // CRLF line endings and trailing spaces are formatting, not data loss.
  std::stringstream ss(
      "stripe,col,first_row,num_chunks,detect_time_ms\n7,0,0,2,1.5 \r\n");
  const auto trace = read_error_trace(ss, layout());
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_DOUBLE_EQ(trace[0].detect_time_ms, 1.5);
}

TEST(TraceIo, SkipsBlankLines) {
  std::stringstream ss(
      "stripe,col,first_row,num_chunks,detect_time_ms\n7,0,0,2,1.5\n\n");
  const auto trace = read_error_trace(ss, layout());
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].stripe, 7u);
  EXPECT_EQ(trace[0].error.num_chunks, 2);
  EXPECT_DOUBLE_EQ(trace[0].detect_time_ms, 1.5);
}

TEST(TraceIo, FileRoundTrip) {
  const auto trace = sample_trace();
  const std::string path = ::testing::TempDir() + "/fbf_trace_test.csv";
  save_error_trace(path, trace);
  const auto loaded = load_error_trace(path, layout());
  EXPECT_EQ(loaded.size(), trace.size());
  EXPECT_THROW(load_error_trace("/nonexistent/dir/trace.csv", layout()),
               util::CheckError);
}

}  // namespace
}  // namespace fbf::workload
