#include "cache/core/dirty_tracker.h"

#include <gtest/gtest.h>

#include <vector>

namespace fbf::cache::core {
namespace {

std::vector<DirtyLine> snapshot_of(const DirtyTracker& t) {
  std::vector<DirtyLine> out;
  t.snapshot(out);
  return out;
}

TEST(DirtyTracker, MarkReportsOnlyCleanToDirtyTransitions) {
  DirtyTracker t(8);
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.mark(10, 1));
  EXPECT_TRUE(t.mark(20, 3));
  EXPECT_FALSE(t.mark(10, 2));  // restamp, not a transition
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.contains(10));
  EXPECT_TRUE(t.contains(20));
  EXPECT_FALSE(t.contains(30));
}

TEST(DirtyTracker, RestampKeepsMarkOrderAndLatestPriorityWins) {
  DirtyTracker t(8);
  t.mark(1, 1);
  t.mark(2, 1);
  t.mark(3, 1);
  t.mark(1, 3);  // rewrite of the oldest line: stays oldest, priority 3
  const std::vector<DirtyLine> expected{{1, 3}, {2, 1}, {3, 1}};
  EXPECT_EQ(snapshot_of(t), expected);
}

TEST(DirtyTracker, ClearReturnsStampedPriorityOrZero) {
  DirtyTracker t(8);
  t.mark(5, 2);
  EXPECT_EQ(t.clear(5), 2);
  EXPECT_EQ(t.clear(5), 0);  // already clean
  EXPECT_EQ(t.clear(99), 0);  // never dirty
  EXPECT_TRUE(t.empty());
}

TEST(DirtyTracker, SnapshotDoesNotClear) {
  DirtyTracker t(8);
  t.mark(7, 1);
  t.mark(8, 2);
  EXPECT_EQ(snapshot_of(t).size(), 2u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(snapshot_of(t), snapshot_of(t));
}

TEST(DirtyTracker, DrainEmptiesInMarkOrder) {
  DirtyTracker t(8);
  t.mark(3, 1);
  t.mark(1, 2);
  t.mark(2, 3);
  std::vector<DirtyLine> out;
  t.drain(out);
  const std::vector<DirtyLine> expected{{3, 1}, {1, 2}, {2, 3}};
  EXPECT_EQ(out, expected);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.clear(3), 0);
}

TEST(DirtyTracker, DrainRetainsLinesAtOrAboveMinPriority) {
  DirtyTracker t(8);
  t.mark(1, 1);
  t.mark(2, 3);
  t.mark(3, 1);
  t.mark(4, 2);
  std::vector<DirtyLine> out;
  t.drain(out, /*retain_min_priority=*/2);
  const std::vector<DirtyLine> drained{{1, 1}, {3, 1}};
  EXPECT_EQ(out, drained);
  const std::vector<DirtyLine> retained{{2, 3}, {4, 2}};
  EXPECT_EQ(snapshot_of(t), retained);
  // A full drain then takes the retained lines, still in mark order.
  out.clear();
  t.drain(out);
  EXPECT_EQ(out, retained);
  EXPECT_TRUE(t.empty());
}

TEST(DirtyTracker, ReusesSlotsAfterClearUpToCapacity) {
  DirtyTracker t(4);
  for (int round = 0; round < 16; ++round) {
    for (Key k = 0; k < 4; ++k) {
      EXPECT_TRUE(t.mark(100 * round + k, 1));
    }
    EXPECT_EQ(t.size(), 4u);
    std::vector<DirtyLine> out;
    t.drain(out);
    EXPECT_EQ(out.size(), 4u);
    EXPECT_TRUE(t.empty());
  }
}

}  // namespace
}  // namespace fbf::cache::core
