// Scenario tests for Algorithm 1, including the paper's Figures 5-7
// walk-throughs (warm-up, demotion, replacement).
#include "cache/fbf_policy.h"

#include <gtest/gtest.h>

namespace fbf::cache {
namespace {

TEST(FbfPolicy, InsertLandsInPriorityQueue) {
  FbfCache c(8);
  c.request(1, 3);
  c.request(2, 2);
  c.request(3, 1);
  EXPECT_EQ(c.queue_of(1), 3);
  EXPECT_EQ(c.queue_of(2), 2);
  EXPECT_EQ(c.queue_of(3), 1);
  EXPECT_EQ(c.queue_size(3), 1u);
  EXPECT_EQ(c.queue_size(2), 1u);
  EXPECT_EQ(c.queue_size(1), 1u);
}

TEST(FbfPolicy, PaperFigure5WarmUp) {
  // Requests C(1,1)[p3], C(2,2)[p1], C(4,4)[p2], C(5,5)[p1], C(0,6)[p1]:
  // queues end as Q3={C11}, Q2={C44}, Q1={C22, C55, C06}.
  FbfCache c(16);
  c.request(11, 3);
  c.request(22, 1);
  c.request(44, 2);
  c.request(55, 1);
  c.request(6, 1);
  EXPECT_EQ(c.queue_of(11), 3);
  EXPECT_EQ(c.queue_of(44), 2);
  EXPECT_EQ(c.queue_of(22), 1);
  EXPECT_EQ(c.queue_of(55), 1);
  EXPECT_EQ(c.queue_of(6), 1);
}

TEST(FbfPolicy, PaperFigure6DemotionChain) {
  // A Queue3 chunk demotes to Queue2 on its first hit and to Queue1 on the
  // next — one expected reference consumed per hit.
  FbfCache c(8);
  c.request(11, 3);
  EXPECT_EQ(c.queue_of(11), 3);
  EXPECT_TRUE(c.request(11, 3));
  EXPECT_EQ(c.queue_of(11), 2);
  EXPECT_TRUE(c.request(11, 3));
  EXPECT_EQ(c.queue_of(11), 1);
  EXPECT_TRUE(c.request(11, 3));
  EXPECT_EQ(c.queue_of(11), 1);  // Queue1 hits stay in Queue1 (MRU refresh)
}

TEST(FbfPolicy, PaperFigure7ReplacementFavorsHighPriority) {
  // A full cache evicts from Queue1 even when the Queue2 chunk is the
  // least recently used chunk overall.
  FbfCache c(3);
  c.request(11, 2);  // oldest access, but priority 2
  c.request(16, 1);
  c.request(17, 1);
  c.request(18, 1);  // cache full: must evict 16 (Queue1 LRU), never 11
  EXPECT_TRUE(c.contains(11));
  EXPECT_FALSE(c.contains(16));
  EXPECT_TRUE(c.contains(17));
  EXPECT_TRUE(c.contains(18));
}

TEST(FbfPolicy, EvictionDrainsQueue1ThenQueue2ThenQueue3) {
  FbfCache c(3);
  c.request(1, 1);
  c.request(2, 2);
  c.request(3, 3);
  c.request(4, 1);  // evicts 1 (Queue1)
  EXPECT_FALSE(c.contains(1));
  c.request(5, 3);  // evicts 4 (now the only Queue1 entry)
  EXPECT_FALSE(c.contains(4));
  c.request(6, 3);  // Queue1 empty -> evicts 2 (Queue2)
  EXPECT_FALSE(c.contains(2));
  c.request(7, 3);  // Queue2 empty -> evicts 3 (Queue3 LRU)
  EXPECT_FALSE(c.contains(3));
  EXPECT_TRUE(c.contains(5));
  EXPECT_TRUE(c.contains(6));
  EXPECT_TRUE(c.contains(7));
}

TEST(FbfPolicy, LruOrderWithinQueue) {
  FbfCache c(2);
  c.request(1, 1);
  c.request(2, 1);
  c.request(1, 1);  // hit: 1 moves to MRU of Queue1
  c.request(3, 1);  // evicts 2 (LRU of Queue1)
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
}

TEST(FbfPolicy, NoDemoteVariantKeepsLevel) {
  FbfCache c(8, /*demote_on_hit=*/false);
  c.request(11, 3);
  c.request(11, 3);
  c.request(11, 3);
  EXPECT_EQ(c.queue_of(11), 3);
  EXPECT_STREQ(c.name(), "FBF-nodemote");
}

TEST(FbfPolicy, CyclicSharedChunkSurvivesWhereLruThrashes) {
  // Three chains share chunk 99 (priority 3); chain bodies are one-shot
  // (priority 1) and larger than the cache. FBF must hold 99 across
  // chains; the hits on 99 are exactly what the paper's Figure 3
  // motivates (chunk C(4,4) fetched once, reused later).
  FbfCache c(4);
  int hits_on_shared = 0;
  for (int chain = 0; chain < 3; ++chain) {
    hits_on_shared += c.request(99, 3) ? 1 : 0;
    for (Key k = 0; k < 6; ++k) {
      c.request(1000 + 100 * static_cast<Key>(chain) + k, 1);
    }
  }
  EXPECT_EQ(hits_on_shared, 2);
}

TEST(FbfPolicy, CapacityInvariantUnderRandomTrace) {
  FbfCache c(5);
  std::uint64_t state = 9;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    c.request(state % 32, static_cast<int>(state % 3) + 1);
    ASSERT_LE(c.size(), 5u);
    ASSERT_EQ(c.queue_size(1) + c.queue_size(2) + c.queue_size(3), c.size());
  }
}

TEST(FbfPolicy, InstallPlacesByPriorityWithoutStats) {
  FbfCache c(4);
  c.install(50, 2);
  EXPECT_EQ(c.queue_of(50), 2);
  EXPECT_EQ(c.stats().accesses(), 0u);
}

TEST(FbfPolicy, EvictsFromQueue3WhenLowerQueuesEmpty) {
  // Replacement prefers Queue1, then Queue2 — but when only favorable
  // blocks remain, Queue3's LRU must go rather than the insert failing.
  FbfCache c(2);
  c.request(10, 3);
  c.request(11, 3);
  ASSERT_EQ(c.queue_size(1), 0u);
  ASSERT_EQ(c.queue_size(2), 0u);
  ASSERT_EQ(c.queue_size(3), 2u);
  c.request(12, 3);
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_FALSE(c.contains(10));  // Queue3's LRU
  EXPECT_TRUE(c.contains(11));
  EXPECT_TRUE(c.contains(12));
  EXPECT_EQ(c.size(), 2u);
}

TEST(FbfPolicy, EvictsFromQueue2WhenQueue1Empty) {
  FbfCache c(2);
  c.request(10, 2);  // Queue2
  c.request(11, 3);  // Queue3
  c.request(12, 1);  // Queue1 empty at eviction time: Queue2 drains first
  EXPECT_FALSE(c.contains(10));
  EXPECT_TRUE(c.contains(11));
  EXPECT_TRUE(c.contains(12));
}

TEST(FbfPolicy, QueueOfAbsentKeyIsZero) {
  FbfCache c(4);
  EXPECT_EQ(c.queue_of(123), 0);
}

}  // namespace
}  // namespace fbf::cache
