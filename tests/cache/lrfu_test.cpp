#include "cache/lrfu.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fbf::cache {
namespace {

TEST(Lrfu, RejectsBadLambda) {
  EXPECT_THROW(LrfuCache(4, -0.1), util::CheckError);
  EXPECT_THROW(LrfuCache(4, 1.5), util::CheckError);
}

TEST(Lrfu, BasicMissThenHit) {
  LrfuCache c(4);
  EXPECT_FALSE(c.request(1));
  EXPECT_TRUE(c.request(1));
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(Lrfu, CrfGrowsWithHitsAndDecaysWithTime) {
  LrfuCache c(8, 0.5);
  c.request(1);
  const double after_one = c.crf(1);
  c.request(1);
  const double after_two = c.crf(1);
  EXPECT_GT(after_two, after_one);
  // Unrelated traffic ages key 1.
  for (Key k = 10; k < 14; ++k) {
    c.request(k);
  }
  EXPECT_LT(c.crf(1), after_two);
  EXPECT_DOUBLE_EQ(c.crf(999), 0.0);
}

TEST(Lrfu, HighLambdaBehavesLikeLru) {
  // lambda = 1: only the last reference matters, so the LRU victim and
  // the LRFU victim coincide.
  LrfuCache c(2, 1.0);
  c.request(1);
  c.request(2);
  c.request(1);  // 2 is now least recent
  c.request(3);  // must evict 2
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
}

TEST(Lrfu, LowLambdaBehavesLikeLfu) {
  // lambda ~ 0: counts dominate; a twice-referenced old key outlives a
  // newer once-referenced one.
  LrfuCache c(2, 0.0001);
  c.request(1);
  c.request(1);
  c.request(2);
  c.request(3);  // evicts 2 (count 1), not 1 (count 2)
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
}

TEST(Lrfu, CapacityInvariantUnderRandomTrace) {
  LrfuCache c(6);
  std::uint64_t state = 77;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    c.request(state % 40);
    ASSERT_LE(c.size(), 6u);
  }
  EXPECT_EQ(c.size(), 6u);
}

TEST(Lrfu, RegistryIntegration) {
  const auto c = make_policy(PolicyId::Lrfu, 4);
  EXPECT_STREQ(c->name(), "LRFU");
  EXPECT_EQ(policy_from_string("lrfu"), PolicyId::Lrfu);
}

}  // namespace
}  // namespace fbf::cache
