// Properties every replacement policy must satisfy, run across the whole
// policy registry via TEST_P.
#include <gtest/gtest.h>

#include "cache/policy.h"
#include "util/check.h"
#include "util/rng.h"

namespace fbf::cache {
namespace {

class PolicyProperty : public ::testing::TestWithParam<PolicyId> {};

TEST_P(PolicyProperty, FactoryProducesWorkingPolicy) {
  const auto c = make_policy(GetParam(), 4);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->capacity(), 4u);
  EXPECT_FALSE(c->request(1));
  EXPECT_TRUE(c->contains(1));
  EXPECT_TRUE(c->request(1));
}

TEST_P(PolicyProperty, NameRoundTripsThroughRegistry) {
  const auto c = make_policy(GetParam(), 2);
  EXPECT_EQ(policy_from_string(to_string(GetParam())), GetParam());
  EXPECT_STREQ(c->name(), to_string(GetParam()));
}

TEST_P(PolicyProperty, CapacityInvariantUnderRandomTrace) {
  const auto c = make_policy(GetParam(), 7);
  util::Rng rng(1234);
  for (int i = 0; i < 8000; ++i) {
    const Key k = static_cast<Key>(rng.uniform_int(0, 60));
    const int prio = static_cast<int>(rng.uniform_int(1, 3));
    c->request(k, prio);
    ASSERT_LE(c->size(), 7u);
  }
  EXPECT_EQ(c->size(), 7u);  // steady state: cache full
}

TEST_P(PolicyProperty, StatsAddUp) {
  const auto c = make_policy(GetParam(), 5);
  util::Rng rng(99);
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    c->request(static_cast<Key>(rng.uniform_int(0, 20)),
               static_cast<int>(rng.uniform_int(1, 3)));
  }
  EXPECT_EQ(c->stats().accesses(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(c->stats().hits + c->stats().misses,
            static_cast<std::uint64_t>(n));
}

TEST_P(PolicyProperty, HitImpliesContainsBeforehand) {
  const auto c = make_policy(GetParam(), 6);
  util::Rng rng(5);
  for (int i = 0; i < 4000; ++i) {
    const Key k = static_cast<Key>(rng.uniform_int(0, 25));
    const bool resident = c->contains(k);
    const bool hit = c->request(k, static_cast<int>(rng.uniform_int(1, 3)));
    ASSERT_EQ(hit, resident);
    ASSERT_TRUE(c->contains(k));  // after a request the key is resident
  }
}

TEST_P(PolicyProperty, DeterministicAcrossRuns) {
  const auto a = make_policy(GetParam(), 8);
  const auto b = make_policy(GetParam(), 8);
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  for (int i = 0; i < 5000; ++i) {
    const Key ka = static_cast<Key>(rng_a.uniform_int(0, 40));
    const Key kb = static_cast<Key>(rng_b.uniform_int(0, 40));
    const int pa = static_cast<int>(rng_a.uniform_int(1, 3));
    const int pb = static_cast<int>(rng_b.uniform_int(1, 3));
    ASSERT_EQ(a->request(ka, pa), b->request(kb, pb));
  }
  EXPECT_EQ(a->stats().hits, b->stats().hits);
  EXPECT_EQ(a->stats().evictions, b->stats().evictions);
}

TEST_P(PolicyProperty, ZeroCapacityNeverStores) {
  const auto c = make_policy(GetParam(), 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(c->request(3));
    EXPECT_FALSE(c->contains(3));
  }
  EXPECT_EQ(c->size(), 0u);
  c->install(3);
  EXPECT_EQ(c->size(), 0u);
}

TEST_P(PolicyProperty, WorkingSetWithinCapacityConverges) {
  // Once a small working set is resident, rereferencing it must hit.
  const auto c = make_policy(GetParam(), 10);
  for (int round = 0; round < 5; ++round) {
    for (Key k = 0; k < 5; ++k) {
      c->request(k, 1);
    }
  }
  for (Key k = 0; k < 5; ++k) {
    EXPECT_TRUE(c->request(k, 1)) << "key " << k;
  }
}

TEST_P(PolicyProperty, RejectsOutOfRangePriority) {
  const auto c = make_policy(GetParam(), 4);
  EXPECT_THROW(c->request(1, 0), util::CheckError);
  EXPECT_THROW(c->request(1, 4), util::CheckError);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyProperty,
    ::testing::Values(PolicyId::Fifo, PolicyId::Lru, PolicyId::Lfu,
                      PolicyId::Arc, PolicyId::Lru2, PolicyId::TwoQ,
                      PolicyId::Lrfu, PolicyId::Fbf, PolicyId::FbfNoDemote),
    [](const ::testing::TestParamInfo<PolicyId>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace fbf::cache
