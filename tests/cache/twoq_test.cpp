#include "cache/twoq.h"

#include <gtest/gtest.h>

namespace fbf::cache {
namespace {

TEST(TwoQ, MissInsertsIntoProbation) {
  TwoQCache c(4);
  EXPECT_FALSE(c.request(1));
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.request(1));  // hit in A1in
}

TEST(TwoQ, GhostHitPromotesToMain) {
  TwoQCache c(4);  // kin = 1
  c.request(1);    // into A1in
  c.request(2);    // 1 pushed through (kin=1) once capacity forces it
  c.request(3);
  c.request(4);
  c.request(5);  // by now 1 has been evicted into the ghost list
  EXPECT_FALSE(c.contains(1));
  EXPECT_FALSE(c.request(1));  // ghost hit -> re-admit into Am (still a miss)
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.request(1));  // now a real hit in Am
}

TEST(TwoQ, CapacityNeverExceeded) {
  TwoQCache c(8);
  std::uint64_t state = 4;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    c.request(state % 50);
    ASSERT_LE(c.size(), 8u);
  }
}

TEST(TwoQ, OneShotScanDoesNotPolluteMainQueue) {
  TwoQCache c(8);
  // Build a protected working set: push 100/101 through probation into the
  // ghost list, then ghost-promote them into Am.
  for (Key k : {100, 101, 0, 1, 2, 3, 4, 5, 6, 7}) {
    c.request(k);
  }
  EXPECT_FALSE(c.contains(100));
  c.request(100);  // ghost hits promote into Am
  c.request(101);
  EXPECT_TRUE(c.contains(100));
  EXPECT_TRUE(c.contains(101));
  // A long one-shot scan flows through A1in without touching Am entries.
  for (Key k = 1000; k < 1040; ++k) {
    c.request(k);
  }
  EXPECT_TRUE(c.contains(100));
  EXPECT_TRUE(c.contains(101));
}

TEST(TwoQ, CapacityOne) {
  TwoQCache c(1);
  EXPECT_FALSE(c.request(1));
  EXPECT_TRUE(c.request(1));
  c.request(2);
  EXPECT_LE(c.size(), 1u);
}

}  // namespace
}  // namespace fbf::cache
