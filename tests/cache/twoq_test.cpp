#include "cache/twoq.h"

#include <gtest/gtest.h>

namespace fbf::cache {
namespace {

TEST(TwoQ, MissInsertsIntoProbation) {
  TwoQCache c(4);
  EXPECT_FALSE(c.request(1));
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.request(1));  // hit in A1in
}

TEST(TwoQ, GhostHitPromotesToMain) {
  TwoQCache c(4);  // kin = 1
  c.request(1);    // into A1in
  c.request(2);    // 1 pushed through (kin=1) once capacity forces it
  c.request(3);
  c.request(4);
  c.request(5);  // by now 1 has been evicted into the ghost list
  EXPECT_FALSE(c.contains(1));
  EXPECT_FALSE(c.request(1));  // ghost hit -> re-admit into Am (still a miss)
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.request(1));  // now a real hit in Am
}

TEST(TwoQ, CapacityNeverExceeded) {
  TwoQCache c(8);
  std::uint64_t state = 4;
  for (int i = 0; i < 10000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    c.request(state % 50);
    ASSERT_LE(c.size(), 8u);
  }
}

TEST(TwoQ, OneShotScanDoesNotPolluteMainQueue) {
  TwoQCache c(8);
  // Build a protected working set: push 100/101 through probation into the
  // ghost list, then ghost-promote them into Am.
  for (Key k : {100, 101, 0, 1, 2, 3, 4, 5, 6, 7}) {
    c.request(k);
  }
  EXPECT_FALSE(c.contains(100));
  c.request(100);  // ghost hits promote into Am
  c.request(101);
  EXPECT_TRUE(c.contains(100));
  EXPECT_TRUE(c.contains(101));
  // A long one-shot scan flows through A1in without touching Am entries.
  for (Key k = 1000; k < 1040; ++k) {
    c.request(k);
  }
  EXPECT_TRUE(c.contains(100));
  EXPECT_TRUE(c.contains(101));
}

TEST(TwoQ, InstallOnGhostStaysInProbation) {
  // A ghosted key installed by the reconstruction path re-enters A1in; only
  // a demand re-reference may promote into the protected Am queue.
  TwoQCache c(4);  // kin = 1, kout = 2
  for (Key k = 1; k <= 5; ++k) {
    c.request(k);  // key 1 pushed through probation into the ghost list
  }
  ASSERT_FALSE(c.contains(1));
  ASSERT_EQ(c.a1out_size(), 1u);
  c.install(1);
  EXPECT_TRUE(c.contains(1));
  EXPECT_EQ(c.am_size(), 0u);    // not ghost-promoted
  EXPECT_EQ(c.a1out_size(), 1u); // 1 left the ghost; the new victim entered

  // Control: a demand access on the ghost promotes.
  TwoQCache d(4);
  for (Key k = 1; k <= 5; ++k) {
    d.request(k);
  }
  d.request(1);
  EXPECT_EQ(d.am_size(), 1u);
}

TEST(TwoQ, InstallResidentIsNoOp) {
  TwoQCache c(4);
  for (Key k = 1; k <= 5; ++k) {
    c.request(k);
  }
  c.request(1);  // ghost hit -> Am
  ASSERT_EQ(c.am_size(), 1u);
  const auto evictions_before = c.stats().evictions;
  c.install(1);  // resident in Am
  c.install(3);  // resident in A1in
  EXPECT_EQ(c.am_size(), 1u);
  EXPECT_EQ(c.a1in_size(), 3u);
  EXPECT_EQ(c.stats().evictions, evictions_before);
  EXPECT_EQ(c.stats().accesses(), 6u);  // installs count no hits/misses
}

TEST(TwoQ, CapacityOne) {
  TwoQCache c(1);
  EXPECT_FALSE(c.request(1));
  EXPECT_TRUE(c.request(1));
  c.request(2);
  EXPECT_LE(c.size(), 1u);
}

}  // namespace
}  // namespace fbf::cache
