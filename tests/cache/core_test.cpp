// Unit coverage for the flat cache-core primitives (src/cache/core),
// independent of any policy: slab exhaustion and recycling, hash-table
// probe wraparound and backward-shift deletion, indexed-heap ordering
// under arbitrary removal, intrusive-list linking, and the capacity 0/1
// and move/clear edge cases every policy constructor leans on.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/core/hash_index.h"
#include "cache/core/indexed_heap.h"
#include "cache/core/intrusive_list.h"
#include "cache/core/slab.h"
#include "util/check.h"
#include "util/rng.h"

namespace fbf::cache::core {
namespace {

using Slab = NodeSlab<NoData>;

// ---------------------------------------------------------------- NodeSlab

TEST(NodeSlab, AcquireReleaseRecyclesSlots) {
  Slab slab(3);
  EXPECT_EQ(slab.capacity(), 3u);
  EXPECT_EQ(slab.in_use(), 0u);

  const Index a = slab.acquire(10);
  const Index b = slab.acquire(20);
  const Index c = slab.acquire(30);
  EXPECT_EQ(slab.in_use(), 3u);
  EXPECT_EQ(slab[a].key, 10u);
  EXPECT_EQ(slab[b].key, 20u);
  EXPECT_EQ(slab[c].key, 30u);

  slab.release(b);
  EXPECT_EQ(slab.in_use(), 2u);
  const Index d = slab.acquire(40);  // must reuse the freed slot
  EXPECT_EQ(d, b);
  EXPECT_EQ(slab[d].key, 40u);
  EXPECT_EQ(slab[d].prev, kNil);
  EXPECT_EQ(slab[d].next, kNil);
}

TEST(NodeSlab, ExhaustionIsAProgrammerError) {
  Slab slab(2);
  slab.acquire(1);
  slab.acquire(2);
  EXPECT_THROW(slab.acquire(3), util::CheckError);
  EXPECT_EQ(slab.in_use(), 2u);
}

TEST(NodeSlab, ZeroCapacityAcquireThrows) {
  Slab slab(0);
  EXPECT_EQ(slab.capacity(), 0u);
  EXPECT_THROW(slab.acquire(1), util::CheckError);
}

TEST(NodeSlab, ReleaseWithNothingInUseThrows) {
  Slab slab(1);
  EXPECT_THROW(slab.release(0), util::CheckError);
}

TEST(NodeSlab, ClearRebuildsTheFreeList) {
  Slab slab(2);
  slab.acquire(1);
  slab.acquire(2);
  slab.clear();
  EXPECT_EQ(slab.in_use(), 0u);
  // The full capacity is acquirable again.
  slab.acquire(3);
  slab.acquire(4);
  EXPECT_EQ(slab.in_use(), 2u);
}

TEST(NodeSlab, MoveTransfersStateAndIndicesStayValid) {
  Slab slab(2);
  const Index a = slab.acquire(7);
  Slab moved(std::move(slab));
  EXPECT_EQ(moved.in_use(), 1u);
  EXPECT_EQ(moved[a].key, 7u);
  const Index b = moved.acquire(8);
  EXPECT_NE(a, b);
  EXPECT_EQ(moved.in_use(), 2u);
}

TEST(NodeSlab, PayloadResetOnAcquire) {
  struct Counter {
    int n = 5;
  };
  NodeSlab<Counter> slab(1);
  const Index a = slab.acquire(1);
  slab[a].data.n = 99;
  slab.release(a);
  const Index b = slab.acquire(2);
  EXPECT_EQ(slab[b].data.n, 5);  // default-constructed payload again
}

// ------------------------------------------------------------ KeyIndexTable

TEST(KeyIndexTable, InsertFindErase) {
  KeyIndexTable table(8);
  EXPECT_EQ(table.find(1), kNil);
  table.insert(1, 100);
  table.insert(2, 200);
  EXPECT_EQ(table.find(1), 100u);
  EXPECT_EQ(table.find(2), 200u);
  EXPECT_EQ(table.size(), 2u);
  table.erase(1);
  EXPECT_EQ(table.find(1), kNil);
  EXPECT_EQ(table.find(2), 200u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(KeyIndexTable, PowerOfTwoSizingKeepsLoadUnderQuarter) {
  KeyIndexTable table(5);
  EXPECT_GE(table.bucket_count(), 4u * 5u);
  EXPECT_EQ(table.bucket_count() & (table.bucket_count() - 1), 0u);
}

TEST(KeyIndexTable, DuplicateInsertAndAbsentEraseThrow) {
  KeyIndexTable table(4);
  table.insert(9, 1);
  EXPECT_THROW(table.insert(9, 2), util::CheckError);
  EXPECT_THROW(table.erase(10), util::CheckError);
  EXPECT_THROW(KeyIndexTable(1).erase(0), util::CheckError);
}

TEST(KeyIndexTable, InsertPastEntryBoundThrows) {
  KeyIndexTable table(2);
  table.insert(1, 1);
  table.insert(2, 2);
  EXPECT_THROW(table.insert(3, 3), util::CheckError);
}

/// Finds `count` keys whose home slot equals `slot` — used to force a
/// probe cluster at a chosen position.
std::vector<Key> keys_homing_at(const KeyIndexTable& table, std::size_t slot,
                                std::size_t count) {
  std::vector<Key> keys;
  for (Key k = 0; keys.size() < count; ++k) {
    if (table.home_slot(k) == slot) {
      keys.push_back(k);
    }
  }
  return keys;
}

TEST(KeyIndexTable, ProbeClusterWrapsAroundTheSlotArray) {
  KeyIndexTable table(8);  // 16 slots
  const std::size_t last = table.bucket_count() - 1;
  // Three keys all homing at the last slot: two must wrap to slots 0, 1.
  const std::vector<Key> keys = keys_homing_at(table, last, 3);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    table.insert(keys[i], static_cast<Index>(i));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(table.find(keys[i]), static_cast<Index>(i));
  }
}

TEST(KeyIndexTable, BackwardShiftDeletionAcrossTheWrap) {
  KeyIndexTable table(8);
  const std::size_t last = table.bucket_count() - 1;
  const std::vector<Key> keys = keys_homing_at(table, last, 4);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    table.insert(keys[i], static_cast<Index>(i));
  }
  // Deleting the head of the cluster (stored at the shared home slot) must
  // backward-shift the wrapped tail so lookups still terminate correctly.
  table.erase(keys[0]);
  EXPECT_EQ(table.find(keys[0]), kNil);
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_EQ(table.find(keys[i]), static_cast<Index>(i));
  }
  // And deleting from the middle keeps the rest reachable.
  table.erase(keys[2]);
  EXPECT_EQ(table.find(keys[2]), kNil);
  EXPECT_EQ(table.find(keys[1]), 1u);
  EXPECT_EQ(table.find(keys[3]), 3u);
}

TEST(KeyIndexTable, RandomizedChurnAgainstAStdMap) {
  util::Rng rng(123);
  KeyIndexTable table(64);
  std::vector<std::pair<Key, Index>> shadow;
  for (int op = 0; op < 20000; ++op) {
    const Key k = static_cast<Key>(rng.uniform_int(0, 200));
    const auto it = std::find_if(shadow.begin(), shadow.end(),
                                 [&](const auto& e) { return e.first == k; });
    if (it != shadow.end()) {
      ASSERT_EQ(table.find(k), it->second) << "op " << op;
      table.erase(k);
      shadow.erase(it);
    } else if (shadow.size() < 64) {
      ASSERT_EQ(table.find(k), kNil) << "op " << op;
      const auto v = static_cast<Index>(rng.uniform_int(0, 1 << 20));
      table.insert(k, v);
      shadow.push_back({k, v});
    }
    ASSERT_EQ(table.size(), shadow.size());
  }
  for (const auto& [k, v] : shadow) {
    EXPECT_EQ(table.find(k), v);
  }
}

TEST(KeyIndexTable, ClearEmptiesWithoutResizing) {
  KeyIndexTable table(4);
  table.insert(1, 1);
  table.insert(2, 2);
  const std::size_t buckets = table.bucket_count();
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.find(1), kNil);
  EXPECT_EQ(table.bucket_count(), buckets);
  table.insert(1, 9);
  EXPECT_EQ(table.find(1), 9u);
}

TEST(KeyIndexTable, CapacityZeroAndOneEdgeCases) {
  KeyIndexTable zero(0);
  EXPECT_EQ(zero.find(42), kNil);
  EXPECT_THROW(zero.insert(42, 0), util::CheckError);

  KeyIndexTable one(1);
  one.insert(42, 7);
  EXPECT_EQ(one.find(42), 7u);
  EXPECT_THROW(one.insert(43, 8), util::CheckError);
  one.erase(42);
  one.insert(43, 8);
  EXPECT_EQ(one.find(43), 8u);
}

TEST(KeyIndexTable, MoveTransfersEntries) {
  KeyIndexTable table(4);
  table.insert(5, 50);
  KeyIndexTable moved(std::move(table));
  EXPECT_EQ(moved.find(5), 50u);
  EXPECT_EQ(moved.size(), 1u);
}

// ------------------------------------------------------------ IntrusiveList

TEST(IntrusiveList, PushEraseAndPopMaintainLinks) {
  Slab slab(4);
  IntrusiveList list;
  EXPECT_TRUE(list.empty());

  const Index a = slab.acquire(1);
  const Index b = slab.acquire(2);
  const Index c = slab.acquire(3);
  list.push_back(slab, a);
  list.push_back(slab, b);
  list.push_back(slab, c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.front(), a);
  EXPECT_EQ(list.back(), c);

  list.erase(slab, b);  // middle
  EXPECT_EQ(slab[a].next, c);
  EXPECT_EQ(slab[c].prev, a);
  EXPECT_EQ(list.size(), 2u);

  EXPECT_EQ(list.pop_front(slab), a);
  EXPECT_EQ(list.front(), c);
  EXPECT_EQ(list.back(), c);
  list.erase(slab, c);
  EXPECT_TRUE(list.empty());
  EXPECT_THROW(list.pop_front(slab), util::CheckError);
}

TEST(IntrusiveList, MoveToBackAndInsertAfter) {
  Slab slab(4);
  IntrusiveList list;
  const Index a = slab.acquire(1);
  const Index b = slab.acquire(2);
  const Index c = slab.acquire(3);
  list.push_back(slab, a);
  list.push_back(slab, b);
  list.move_to_back(slab, a);
  EXPECT_EQ(list.front(), b);
  EXPECT_EQ(list.back(), a);
  list.move_to_back(slab, a);  // already MRU: no-op
  EXPECT_EQ(list.back(), a);

  list.insert_after(slab, b, c);  // b, c, a
  EXPECT_EQ(slab[b].next, c);
  EXPECT_EQ(slab[c].next, a);
  EXPECT_EQ(list.size(), 3u);

  const Index d = slab.acquire(4);
  list.insert_after(slab, a, d);  // tail insert updates back()
  EXPECT_EQ(list.back(), d);
}

TEST(IntrusiveList, PushFrontAndClear) {
  Slab slab(2);
  IntrusiveList list;
  const Index a = slab.acquire(1);
  const Index b = slab.acquire(2);
  list.push_front(slab, a);
  list.push_front(slab, b);
  EXPECT_EQ(list.front(), b);
  EXPECT_EQ(list.back(), a);
  list.clear();
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.front(), kNil);
}

TEST(IntrusiveList, TwoListsShareOneSlab) {
  Slab slab(4);
  IntrusiveList one, two;
  const Index a = slab.acquire(1);
  const Index b = slab.acquire(2);
  one.push_back(slab, a);
  two.push_back(slab, b);
  // Moving a node between lists (the ARC/2Q pattern).
  one.erase(slab, a);
  two.push_back(slab, a);
  EXPECT_EQ(one.size(), 0u);
  EXPECT_EQ(two.size(), 2u);
  EXPECT_EQ(two.front(), b);
  EXPECT_EQ(two.back(), a);
}

// ----------------------------------------------------------- IndexedMinHeap

struct ValueLess {
  const std::vector<int>* values;
  bool operator()(Index a, Index b) const {
    return (*values)[a] < (*values)[b];
  }
};

TEST(IndexedMinHeap, PopsInRankOrder) {
  std::vector<int> values{50, 10, 40, 20, 30};
  IndexedMinHeap<ValueLess> heap(values.size(), ValueLess{&values});
  for (Index i = 0; i < values.size(); ++i) {
    heap.push(i);
  }
  std::vector<int> popped;
  while (!heap.empty()) {
    popped.push_back(values[heap.top()]);
    heap.pop();
  }
  EXPECT_EQ(popped, (std::vector<int>{10, 20, 30, 40, 50}));
}

TEST(IndexedMinHeap, ArbitraryRemovalAndUpdate) {
  std::vector<int> values{5, 1, 4, 2, 3};
  IndexedMinHeap<ValueLess> heap(values.size(), ValueLess{&values});
  for (Index i = 0; i < values.size(); ++i) {
    heap.push(i);
  }
  heap.remove(1);  // drop the minimum (value 1) from the middle of the API
  EXPECT_FALSE(heap.contains(1));
  EXPECT_EQ(values[heap.top()], 2);

  values[0] = 0;  // rank decrease
  heap.update(0);
  EXPECT_EQ(values[heap.top()], 0);

  values[0] = 99;  // rank increase
  heap.update(0);
  EXPECT_EQ(values[heap.top()], 2);

  EXPECT_THROW(heap.remove(1), util::CheckError);
  EXPECT_THROW(heap.push(0), util::CheckError);  // already queued
}

TEST(IndexedMinHeap, RandomizedAgainstSort) {
  util::Rng rng(7);
  std::vector<int> values(64, 0);
  IndexedMinHeap<ValueLess> heap(values.size(), ValueLess{&values});
  std::vector<Index> live;
  for (int op = 0; op < 5000; ++op) {
    const double roll = rng.uniform01();
    if (live.size() < values.size() && (live.empty() || roll < 0.5)) {
      Index n = 0;
      while (heap.contains(n)) {
        ++n;
      }
      values[n] = static_cast<int>(rng.uniform_int(0, 1 << 20));
      heap.push(n);
      live.push_back(n);
    } else if (roll < 0.75) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      heap.remove(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else {
      const Index expect =
          *std::min_element(live.begin(), live.end(), ValueLess{&values});
      ASSERT_EQ(values[heap.top()], values[expect]) << "op " << op;
    }
    ASSERT_EQ(heap.size(), live.size());
  }
}

TEST(IndexedMinHeap, ClearForgetsEverything) {
  std::vector<int> values{3, 1, 2};
  IndexedMinHeap<ValueLess> heap(values.size(), ValueLess{&values});
  for (Index i = 0; i < values.size(); ++i) {
    heap.push(i);
  }
  heap.clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.contains(0));
  heap.push(0);  // usable again after clear
  EXPECT_EQ(heap.top(), 0u);
}

}  // namespace
}  // namespace fbf::cache::core
