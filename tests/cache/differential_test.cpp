// Differential fuzzing of every optimized replacement policy against its
// O(n) golden model (src/cache/reference). Seeded randomized streams mix
// demand requests with installs across capacities (0, 1, small, large),
// priorities 1..3, and key ranges tuned from ghost-heavy reuse to pure
// scans; after every operation the two implementations must agree on
// hit/miss, size, and membership, and periodically on the exact resident
// set and cumulative stats. Any bookkeeping divergence — an ARC ghost-list
// slip, an FBF demotion bug — fails here instead of silently skewing the
// paper's hit-ratio and reconstruction-time curves.
#include <gtest/gtest.h>

#include <string>

#include "cache/policy.h"
#include "cache/reference/reference.h"
#include "util/rng.h"

namespace fbf::cache {
namespace {

struct Scenario {
  const char* label;
  std::size_t capacity;
  std::uint64_t key_range;
  int ops;
  double install_prob;
};

// 120k operations per policy across the scenario sweep.
constexpr Scenario kScenarios[] = {
    {"zero_capacity", 0, 8, 2000, 0.30},
    {"single_slot", 1, 6, 10000, 0.25},
    {"tiny_cache_scan", 2, 64, 8000, 0.25},
    {"ghost_heavy", 4, 12, 30000, 0.25},
    {"working_set_overflow", 16, 22, 30000, 0.15},
    {"miss_heavy_scan", 16, 400, 20000, 0.15},
    {"large_cache", 64, 80, 20000, 0.10},
};

void expect_same_resident_set(const CachePolicy& opt,
                              const reference::ReferencePolicy& ref,
                              const std::string& context) {
  ASSERT_EQ(opt.size(), ref.size()) << context;
  for (const Key k : ref.resident()) {
    ASSERT_TRUE(opt.contains(k)) << context << ": key " << k
                                 << " resident in the golden model only";
  }
}

void run_differential(PolicyId id, const Scenario& s, std::uint64_t seed) {
  const auto opt = make_policy(id, s.capacity);
  const auto ref = reference::make_reference_policy(id, s.capacity);
  util::Rng rng(seed);
  const std::string context = std::string(to_string(id)) + "/" + s.label +
                              " seed=" + std::to_string(seed);
  for (int i = 0; i < s.ops; ++i) {
    const Key key = static_cast<Key>(
        rng.uniform_int(0, static_cast<std::int64_t>(s.key_range) - 1));
    const int prio = static_cast<int>(rng.uniform_int(1, 3));
    const std::string at = context + " op=" + std::to_string(i);
    if (rng.bernoulli(s.install_prob)) {
      opt->install(key, prio);
      ref->install(key, prio);
    } else {
      const bool opt_hit = opt->request(key, prio);
      const bool ref_hit = ref->request(key, prio);
      ASSERT_EQ(opt_hit, ref_hit) << at << " key=" << key;
    }
    ASSERT_EQ(opt->size(), ref->size()) << at;
    const Key probe = static_cast<Key>(
        rng.uniform_int(0, static_cast<std::int64_t>(s.key_range) - 1));
    ASSERT_EQ(opt->contains(probe), ref->contains(probe))
        << at << " probe=" << probe;
    if (i % 1024 == 0) {
      expect_same_resident_set(*opt, *ref, at);
    }
  }
  expect_same_resident_set(*opt, *ref, context);
  EXPECT_EQ(opt->stats().hits, ref->stats().hits) << context;
  EXPECT_EQ(opt->stats().misses, ref->stats().misses) << context;
  EXPECT_EQ(opt->stats().evictions, ref->stats().evictions) << context;
}

class DifferentialFuzz : public ::testing::TestWithParam<PolicyId> {};

TEST_P(DifferentialFuzz, MatchesGoldenModelOnRandomizedStreams) {
  std::uint64_t seed = 0x0ddba11 + static_cast<std::uint64_t>(GetParam());
  for (const Scenario& s : kScenarios) {
    run_differential(GetParam(), s, seed);
    if (HasFatalFailure()) {
      return;
    }
    seed += 0x9e3779b97f4a7c15ull;
  }
}

TEST_P(DifferentialFuzz, InstallOnlyStreamsAgree) {
  // Pure install streams (reconstruction writes with no demand reads):
  // no hits or misses may be counted, and the resident sets must match.
  const auto opt = make_policy(GetParam(), 8);
  const auto ref = reference::make_reference_policy(GetParam(), 8);
  util::Rng rng(77);
  for (int i = 0; i < 4000; ++i) {
    const Key key = static_cast<Key>(rng.uniform_int(0, 30));
    const int prio = static_cast<int>(rng.uniform_int(1, 3));
    opt->install(key, prio);
    ref->install(key, prio);
    ASSERT_EQ(opt->size(), ref->size()) << "op " << i;
    ASSERT_EQ(opt->contains(key), ref->contains(key)) << "op " << i;
  }
  expect_same_resident_set(*opt, *ref, "install-only");
  EXPECT_EQ(opt->stats().accesses(), 0u);
  EXPECT_EQ(ref->stats().accesses(), 0u);
  EXPECT_EQ(opt->stats().evictions, ref->stats().evictions);
}

// ---------------------------------------------------------------------------
// Batched surface (policy.h touch_batch/install_batch). Two contracts:
// batch == the same elements pushed one by one through the scalar surface
// (what the DOR completion coalescing relies on), and batch-vs-golden
// via the reference model's loop-based twins. Streams interleave batches
// of varying lengths with scalar ops so batches land on every internal
// state a scalar stream can produce.
// ---------------------------------------------------------------------------

std::size_t popcount_words(const std::vector<std::uint64_t>& words) {
  std::size_t c = 0;
  for (const std::uint64_t w : words) {
    c += static_cast<std::size_t>(__builtin_popcountll(w));
  }
  return c;
}

TEST_P(DifferentialFuzz, BatchMatchesSequentialScalarReplay) {
  for (const Scenario& s : kScenarios) {
    const auto batched = make_policy(GetParam(), s.capacity);
    const auto scalar = make_policy(GetParam(), s.capacity);
    util::Rng rng(0xba7c4 + static_cast<std::uint64_t>(GetParam()));
    const std::string context =
        std::string(to_string(GetParam())) + "/" + s.label;
    std::vector<Key> keys;
    std::vector<std::uint8_t> pris;
    std::vector<std::uint64_t> hit_words;
    for (int op = 0; op < s.ops / 8; ++op) {
      const auto n =
          static_cast<std::size_t>(rng.uniform_int(0, 70));  // spans >1 word
      keys.resize(n);
      pris.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        keys[i] = static_cast<Key>(
            rng.uniform_int(0, static_cast<std::int64_t>(s.key_range) - 1));
        pris[i] = static_cast<std::uint8_t>(rng.uniform_int(1, 3));
      }
      hit_words.assign((n + 63) / 64, ~std::uint64_t{0});  // batch must zero
      const std::string at = context + " batch_op=" + std::to_string(op);
      if (rng.bernoulli(0.3)) {
        batched->install_batch(keys.data(), pris.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          scalar->install(keys[i], static_cast<int>(pris[i]));
        }
      } else {
        const std::size_t hits =
            batched->touch_batch(keys.data(), pris.data(), n, hit_words.data());
        std::size_t scalar_hits = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const bool hit = scalar->request(keys[i], static_cast<int>(pris[i]));
          ASSERT_EQ(((hit_words[i >> 6] >> (i & 63)) & 1) != 0, hit)
              << at << " element " << i;
          scalar_hits += hit ? 1u : 0u;
        }
        ASSERT_EQ(hits, scalar_hits) << at;
        ASSERT_EQ(popcount_words(hit_words), hits)
            << at << ": stray bits beyond the batch";
      }
      // A scalar op between batches so batches hit mid-stream states too.
      const Key probe = static_cast<Key>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.key_range) - 1));
      ASSERT_EQ(batched->request(probe, 2), scalar->request(probe, 2)) << at;
      ASSERT_EQ(batched->size(), scalar->size()) << at;
    }
    ASSERT_EQ(batched->stats().hits, scalar->stats().hits) << context;
    ASSERT_EQ(batched->stats().misses, scalar->stats().misses) << context;
    ASSERT_EQ(batched->stats().evictions, scalar->stats().evictions)
        << context;
    if (HasFatalFailure()) {
      return;
    }
  }
}

TEST_P(DifferentialFuzz, BatchedStreamsMatchGoldenModel) {
  const auto opt = make_policy(GetParam(), 8);
  const auto ref = reference::make_reference_policy(GetParam(), 8);
  util::Rng rng(0x601deull + static_cast<std::uint64_t>(GetParam()));
  std::vector<Key> keys;
  std::vector<std::uint8_t> pris;
  std::vector<std::uint64_t> opt_hits;
  std::vector<std::uint64_t> ref_hits;
  for (int op = 0; op < 3000; ++op) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 12));
    keys.resize(n);
    pris.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<Key>(rng.uniform_int(0, 20));
      pris[i] = static_cast<std::uint8_t>(rng.uniform_int(1, 3));
    }
    const std::string at = std::string(to_string(GetParam())) +
                           " golden_batch_op=" + std::to_string(op);
    if (rng.bernoulli(0.3)) {
      opt->install_batch(keys.data(), pris.data(), n);
      ref->install_batch(keys.data(), pris.data(), n);
    } else {
      opt_hits.assign((n + 63) / 64, 0);
      ref_hits.assign((n + 63) / 64, 0);
      opt->touch_batch(keys.data(), pris.data(), n, opt_hits.data());
      ref->touch_batch(keys.data(), pris.data(), n, ref_hits.data());
      ASSERT_EQ(opt_hits, ref_hits) << at;
    }
    ASSERT_EQ(opt->size(), ref->size()) << at;
  }
  expect_same_resident_set(*opt, *ref, "batched golden stream");
  EXPECT_EQ(opt->stats().hits, ref->stats().hits);
  EXPECT_EQ(opt->stats().misses, ref->stats().misses);
  EXPECT_EQ(opt->stats().evictions, ref->stats().evictions);
}

TEST_P(DifferentialFuzz, ZeroCapacityBatchSemantics) {
  // Capacity 0 admits nothing: a touch batch counts n misses and reports
  // no hits, an install batch is a no-op (mirrors the scalar surface).
  const auto opt = make_policy(GetParam(), 0);
  const Key keys[3] = {1, 2, 1};
  const std::uint8_t pris[3] = {1, 2, 3};
  std::uint64_t hits_word = ~std::uint64_t{0};
  ASSERT_EQ(opt->touch_batch(keys, pris, 3, &hits_word), 0u);
  EXPECT_EQ(hits_word, 0u);
  opt->install_batch(keys, pris, 3);
  EXPECT_EQ(opt->size(), 0u);
  EXPECT_EQ(opt->stats().misses, 3u);
  EXPECT_EQ(opt->stats().hits, 0u);
}

TEST_P(DifferentialFuzz, EmptyBatchIsANoOp) {
  const auto opt = make_policy(GetParam(), 4);
  opt->request(7, 1);
  const auto before = opt->stats();
  ASSERT_EQ(opt->touch_batch(nullptr, nullptr, 0, nullptr), 0u);
  opt->install_batch(nullptr, nullptr, 0);
  EXPECT_EQ(opt->stats().hits, before.hits);
  EXPECT_EQ(opt->stats().misses, before.misses);
  EXPECT_EQ(opt->size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, DifferentialFuzz,
    ::testing::Values(PolicyId::Fifo, PolicyId::Lru, PolicyId::Lfu,
                      PolicyId::Arc, PolicyId::Lru2, PolicyId::TwoQ,
                      PolicyId::Lrfu, PolicyId::Fbf, PolicyId::FbfNoDemote),
    [](const ::testing::TestParamInfo<PolicyId>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace fbf::cache
