// Differential fuzzing of every optimized replacement policy against its
// O(n) golden model (src/cache/reference). Seeded randomized streams mix
// demand requests with installs across capacities (0, 1, small, large),
// priorities 1..3, and key ranges tuned from ghost-heavy reuse to pure
// scans; after every operation the two implementations must agree on
// hit/miss, size, and membership, and periodically on the exact resident
// set and cumulative stats. Any bookkeeping divergence — an ARC ghost-list
// slip, an FBF demotion bug — fails here instead of silently skewing the
// paper's hit-ratio and reconstruction-time curves.
#include <gtest/gtest.h>

#include <string>

#include "cache/policy.h"
#include "cache/reference/reference.h"
#include "util/rng.h"

namespace fbf::cache {
namespace {

struct Scenario {
  const char* label;
  std::size_t capacity;
  std::uint64_t key_range;
  int ops;
  double install_prob;
};

// 120k operations per policy across the scenario sweep.
constexpr Scenario kScenarios[] = {
    {"zero_capacity", 0, 8, 2000, 0.30},
    {"single_slot", 1, 6, 10000, 0.25},
    {"tiny_cache_scan", 2, 64, 8000, 0.25},
    {"ghost_heavy", 4, 12, 30000, 0.25},
    {"working_set_overflow", 16, 22, 30000, 0.15},
    {"miss_heavy_scan", 16, 400, 20000, 0.15},
    {"large_cache", 64, 80, 20000, 0.10},
};

void expect_same_resident_set(const CachePolicy& opt,
                              const reference::ReferencePolicy& ref,
                              const std::string& context) {
  ASSERT_EQ(opt.size(), ref.size()) << context;
  for (const Key k : ref.resident()) {
    ASSERT_TRUE(opt.contains(k)) << context << ": key " << k
                                 << " resident in the golden model only";
  }
}

void run_differential(PolicyId id, const Scenario& s, std::uint64_t seed) {
  const auto opt = make_policy(id, s.capacity);
  const auto ref = reference::make_reference_policy(id, s.capacity);
  util::Rng rng(seed);
  const std::string context = std::string(to_string(id)) + "/" + s.label +
                              " seed=" + std::to_string(seed);
  for (int i = 0; i < s.ops; ++i) {
    const Key key = static_cast<Key>(
        rng.uniform_int(0, static_cast<std::int64_t>(s.key_range) - 1));
    const int prio = static_cast<int>(rng.uniform_int(1, 3));
    const std::string at = context + " op=" + std::to_string(i);
    if (rng.bernoulli(s.install_prob)) {
      opt->install(key, prio);
      ref->install(key, prio);
    } else {
      const bool opt_hit = opt->request(key, prio);
      const bool ref_hit = ref->request(key, prio);
      ASSERT_EQ(opt_hit, ref_hit) << at << " key=" << key;
    }
    ASSERT_EQ(opt->size(), ref->size()) << at;
    const Key probe = static_cast<Key>(
        rng.uniform_int(0, static_cast<std::int64_t>(s.key_range) - 1));
    ASSERT_EQ(opt->contains(probe), ref->contains(probe))
        << at << " probe=" << probe;
    if (i % 1024 == 0) {
      expect_same_resident_set(*opt, *ref, at);
    }
  }
  expect_same_resident_set(*opt, *ref, context);
  EXPECT_EQ(opt->stats().hits, ref->stats().hits) << context;
  EXPECT_EQ(opt->stats().misses, ref->stats().misses) << context;
  EXPECT_EQ(opt->stats().evictions, ref->stats().evictions) << context;
}

class DifferentialFuzz : public ::testing::TestWithParam<PolicyId> {};

TEST_P(DifferentialFuzz, MatchesGoldenModelOnRandomizedStreams) {
  std::uint64_t seed = 0x0ddba11 + static_cast<std::uint64_t>(GetParam());
  for (const Scenario& s : kScenarios) {
    run_differential(GetParam(), s, seed);
    if (HasFatalFailure()) {
      return;
    }
    seed += 0x9e3779b97f4a7c15ull;
  }
}

TEST_P(DifferentialFuzz, InstallOnlyStreamsAgree) {
  // Pure install streams (reconstruction writes with no demand reads):
  // no hits or misses may be counted, and the resident sets must match.
  const auto opt = make_policy(GetParam(), 8);
  const auto ref = reference::make_reference_policy(GetParam(), 8);
  util::Rng rng(77);
  for (int i = 0; i < 4000; ++i) {
    const Key key = static_cast<Key>(rng.uniform_int(0, 30));
    const int prio = static_cast<int>(rng.uniform_int(1, 3));
    opt->install(key, prio);
    ref->install(key, prio);
    ASSERT_EQ(opt->size(), ref->size()) << "op " << i;
    ASSERT_EQ(opt->contains(key), ref->contains(key)) << "op " << i;
  }
  expect_same_resident_set(*opt, *ref, "install-only");
  EXPECT_EQ(opt->stats().accesses(), 0u);
  EXPECT_EQ(ref->stats().accesses(), 0u);
  EXPECT_EQ(opt->stats().evictions, ref->stats().evictions);
}

// ---------------------------------------------------------------------------
// Batched surface (policy.h touch_batch/install_batch). Two contracts:
// batch == the same elements pushed one by one through the scalar surface
// (what the DOR completion coalescing relies on), and batch-vs-golden
// via the reference model's loop-based twins. Streams interleave batches
// of varying lengths with scalar ops so batches land on every internal
// state a scalar stream can produce.
// ---------------------------------------------------------------------------

std::size_t popcount_words(const std::vector<std::uint64_t>& words) {
  std::size_t c = 0;
  for (const std::uint64_t w : words) {
    c += static_cast<std::size_t>(__builtin_popcountll(w));
  }
  return c;
}

TEST_P(DifferentialFuzz, BatchMatchesSequentialScalarReplay) {
  for (const Scenario& s : kScenarios) {
    const auto batched = make_policy(GetParam(), s.capacity);
    const auto scalar = make_policy(GetParam(), s.capacity);
    util::Rng rng(0xba7c4 + static_cast<std::uint64_t>(GetParam()));
    const std::string context =
        std::string(to_string(GetParam())) + "/" + s.label;
    std::vector<Key> keys;
    std::vector<std::uint8_t> pris;
    std::vector<std::uint64_t> hit_words;
    for (int op = 0; op < s.ops / 8; ++op) {
      const auto n =
          static_cast<std::size_t>(rng.uniform_int(0, 70));  // spans >1 word
      keys.resize(n);
      pris.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        keys[i] = static_cast<Key>(
            rng.uniform_int(0, static_cast<std::int64_t>(s.key_range) - 1));
        pris[i] = static_cast<std::uint8_t>(rng.uniform_int(1, 3));
      }
      hit_words.assign((n + 63) / 64, ~std::uint64_t{0});  // batch must zero
      const std::string at = context + " batch_op=" + std::to_string(op);
      if (rng.bernoulli(0.3)) {
        batched->install_batch(keys.data(), pris.data(), n);
        for (std::size_t i = 0; i < n; ++i) {
          scalar->install(keys[i], static_cast<int>(pris[i]));
        }
      } else {
        const std::size_t hits =
            batched->touch_batch(keys.data(), pris.data(), n, hit_words.data());
        std::size_t scalar_hits = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const bool hit = scalar->request(keys[i], static_cast<int>(pris[i]));
          ASSERT_EQ(((hit_words[i >> 6] >> (i & 63)) & 1) != 0, hit)
              << at << " element " << i;
          scalar_hits += hit ? 1u : 0u;
        }
        ASSERT_EQ(hits, scalar_hits) << at;
        ASSERT_EQ(popcount_words(hit_words), hits)
            << at << ": stray bits beyond the batch";
      }
      // A scalar op between batches so batches hit mid-stream states too.
      const Key probe = static_cast<Key>(
          rng.uniform_int(0, static_cast<std::int64_t>(s.key_range) - 1));
      ASSERT_EQ(batched->request(probe, 2), scalar->request(probe, 2)) << at;
      ASSERT_EQ(batched->size(), scalar->size()) << at;
    }
    ASSERT_EQ(batched->stats().hits, scalar->stats().hits) << context;
    ASSERT_EQ(batched->stats().misses, scalar->stats().misses) << context;
    ASSERT_EQ(batched->stats().evictions, scalar->stats().evictions)
        << context;
    if (HasFatalFailure()) {
      return;
    }
  }
}

TEST_P(DifferentialFuzz, BatchedStreamsMatchGoldenModel) {
  const auto opt = make_policy(GetParam(), 8);
  const auto ref = reference::make_reference_policy(GetParam(), 8);
  util::Rng rng(0x601deull + static_cast<std::uint64_t>(GetParam()));
  std::vector<Key> keys;
  std::vector<std::uint8_t> pris;
  std::vector<std::uint64_t> opt_hits;
  std::vector<std::uint64_t> ref_hits;
  for (int op = 0; op < 3000; ++op) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 12));
    keys.resize(n);
    pris.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<Key>(rng.uniform_int(0, 20));
      pris[i] = static_cast<std::uint8_t>(rng.uniform_int(1, 3));
    }
    const std::string at = std::string(to_string(GetParam())) +
                           " golden_batch_op=" + std::to_string(op);
    if (rng.bernoulli(0.3)) {
      opt->install_batch(keys.data(), pris.data(), n);
      ref->install_batch(keys.data(), pris.data(), n);
    } else {
      opt_hits.assign((n + 63) / 64, 0);
      ref_hits.assign((n + 63) / 64, 0);
      opt->touch_batch(keys.data(), pris.data(), n, opt_hits.data());
      ref->touch_batch(keys.data(), pris.data(), n, ref_hits.data());
      ASSERT_EQ(opt_hits, ref_hits) << at;
    }
    ASSERT_EQ(opt->size(), ref->size()) << at;
  }
  expect_same_resident_set(*opt, *ref, "batched golden stream");
  EXPECT_EQ(opt->stats().hits, ref->stats().hits);
  EXPECT_EQ(opt->stats().misses, ref->stats().misses);
  EXPECT_EQ(opt->stats().evictions, ref->stats().evictions);
}

TEST_P(DifferentialFuzz, ZeroCapacityBatchSemantics) {
  // Capacity 0 admits nothing: a touch batch counts n misses and reports
  // no hits, an install batch is a no-op (mirrors the scalar surface).
  const auto opt = make_policy(GetParam(), 0);
  const Key keys[3] = {1, 2, 1};
  const std::uint8_t pris[3] = {1, 2, 3};
  std::uint64_t hits_word = ~std::uint64_t{0};
  ASSERT_EQ(opt->touch_batch(keys, pris, 3, &hits_word), 0u);
  EXPECT_EQ(hits_word, 0u);
  opt->install_batch(keys, pris, 3);
  EXPECT_EQ(opt->size(), 0u);
  EXPECT_EQ(opt->stats().misses, 3u);
  EXPECT_EQ(opt->stats().hits, 0u);
}

TEST_P(DifferentialFuzz, EmptyBatchIsANoOp) {
  const auto opt = make_policy(GetParam(), 4);
  opt->request(7, 1);
  const auto before = opt->stats();
  ASSERT_EQ(opt->touch_batch(nullptr, nullptr, 0, nullptr), 0u);
  opt->install_batch(nullptr, nullptr, 0);
  EXPECT_EQ(opt->stats().hits, before.hits);
  EXPECT_EQ(opt->stats().misses, before.misses);
  EXPECT_EQ(opt->size(), 1u);
}

// ---------------------------------------------------------------------------
// Write-back surface (policy.h write()/dirty layer). The op alphabet grows
// to the full foreground vocabulary — demand reads, dirty writes, installs,
// batched touches, periodic flushes with FBF-aware retention, evicted-dirty
// drains, and invalidations — and the optimized policy must track the
// golden model op for op: same hit/miss, same dirty set in mark order,
// same pending write-back queue, same write stats. >120k mixed ops per
// policy across the scenario sweep.
// ---------------------------------------------------------------------------

void expect_same_dirty_state(const CachePolicy& opt,
                             const reference::ReferencePolicy& ref,
                             const std::string& context) {
  ASSERT_EQ(opt.dirty_count(), ref.dirty_count()) << context;
  const std::vector<core::DirtyLine> opt_dirty = opt.dirty_lines();
  const std::vector<core::DirtyLine> ref_dirty = ref.dirty_lines();
  ASSERT_EQ(opt_dirty.size(), ref_dirty.size()) << context;
  for (std::size_t i = 0; i < opt_dirty.size(); ++i) {
    ASSERT_EQ(opt_dirty[i], ref_dirty[i])
        << context << ": dirty line " << i << " diverges (key "
        << opt_dirty[i].key << " p" << int{opt_dirty[i].priority} << " vs key "
        << ref_dirty[i].key << " p" << int{ref_dirty[i].priority} << ")";
  }
}

void run_write_differential(PolicyId id, const Scenario& s,
                            std::uint64_t seed) {
  const auto opt = make_policy(id, s.capacity);
  const auto ref = reference::make_reference_policy(id, s.capacity);
  util::Rng rng(seed);
  const std::string context = std::string(to_string(id)) + "/" + s.label +
                              " seed=" + std::to_string(seed);
  std::vector<Key> keys;
  std::vector<std::uint8_t> pris;
  std::vector<std::uint64_t> opt_words;
  std::vector<std::uint64_t> ref_words;
  std::vector<core::DirtyLine> opt_lines;
  std::vector<core::DirtyLine> ref_lines;
  for (int i = 0; i < s.ops; ++i) {
    const Key key = static_cast<Key>(
        rng.uniform_int(0, static_cast<std::int64_t>(s.key_range) - 1));
    const int prio = static_cast<int>(rng.uniform_int(1, 3));
    const std::string at = context + " op=" + std::to_string(i);
    const double dice = rng.uniform01();
    if (dice < 0.30) {
      ASSERT_EQ(opt->write(key, prio), ref->write(key, prio))
          << at << " write key=" << key;
    } else if (dice < 0.60) {
      ASSERT_EQ(opt->request(key, prio), ref->request(key, prio))
          << at << " key=" << key;
    } else if (dice < 0.72) {
      opt->install(key, prio);
      ref->install(key, prio);
    } else if (dice < 0.82) {
      const auto n = static_cast<std::size_t>(rng.uniform_int(1, 9));
      keys.resize(n);
      pris.resize(n);
      for (std::size_t j = 0; j < n; ++j) {
        keys[j] = static_cast<Key>(
            rng.uniform_int(0, static_cast<std::int64_t>(s.key_range) - 1));
        pris[j] = static_cast<std::uint8_t>(rng.uniform_int(1, 3));
      }
      opt_words.assign((n + 63) / 64, 0);
      ref_words.assign((n + 63) / 64, 0);
      opt->touch_batch(keys.data(), pris.data(), n, opt_words.data());
      ref->touch_batch(keys.data(), pris.data(), n, ref_words.data());
      ASSERT_EQ(opt_words, ref_words) << at << " touch batch";
    } else if (dice < 0.87) {
      // Pending write-backs must drain identically and in the same order.
      opt_lines.clear();
      ref_lines.clear();
      opt->take_evicted_dirty(opt_lines);
      ref->take_evicted_dirty(ref_lines);
      ASSERT_EQ(opt_lines, ref_lines) << at << " evicted-dirty queue";
    } else if (dice < 0.92) {
      // Flush with a random retention floor (0 = flush everything, 2..3 =
      // favorable blocks keep their dirty bit).
      const int retain = static_cast<int>(rng.uniform_int(0, 3));
      opt_lines.clear();
      ref_lines.clear();
      opt->flush_dirty(opt_lines, retain);
      ref->flush_dirty(ref_lines, retain);
      ASSERT_EQ(opt_lines, ref_lines) << at << " flush retain=" << retain;
    } else if (dice < 0.97) {
      ASSERT_EQ(opt->invalidate_dirty(key), ref->invalidate_dirty(key))
          << at << " invalidate key=" << key;
    } else {
      ASSERT_EQ(opt->is_dirty(key), ref->is_dirty(key))
          << at << " is_dirty key=" << key;
    }
    ASSERT_EQ(opt->size(), ref->size()) << at;
    ASSERT_EQ(opt->dirty_count(), ref->dirty_count()) << at;
    if (i % 1024 == 0) {
      expect_same_resident_set(*opt, *ref, at);
      expect_same_dirty_state(*opt, *ref, at);
    }
  }
  expect_same_resident_set(*opt, *ref, context);
  expect_same_dirty_state(*opt, *ref, context);
  // Drain the pending queues one last time so the cumulative stats below
  // cover every eviction either side produced.
  opt_lines.clear();
  ref_lines.clear();
  opt->take_evicted_dirty(opt_lines);
  ref->take_evicted_dirty(ref_lines);
  EXPECT_EQ(opt_lines, ref_lines) << context;
  EXPECT_EQ(opt->stats().hits, ref->stats().hits) << context;
  EXPECT_EQ(opt->stats().misses, ref->stats().misses) << context;
  EXPECT_EQ(opt->stats().evictions, ref->stats().evictions) << context;
  EXPECT_EQ(opt->write_stats().write_hits, ref->write_stats().write_hits)
      << context;
  EXPECT_EQ(opt->write_stats().write_misses, ref->write_stats().write_misses)
      << context;
  EXPECT_EQ(opt->write_stats().dirty_installed,
            ref->write_stats().dirty_installed)
      << context;
  EXPECT_EQ(opt->write_stats().evicted_dirty, ref->write_stats().evicted_dirty)
      << context;
}

TEST_P(DifferentialFuzz, MixedWriteStreamsMatchGoldenModel) {
  std::uint64_t seed = 0xd127e5 + static_cast<std::uint64_t>(GetParam());
  for (const Scenario& s : kScenarios) {
    run_write_differential(GetParam(), s, seed);
    if (HasFatalFailure()) {
      return;
    }
    seed += 0x9e3779b97f4a7c15ull;
  }
}

TEST_P(DifferentialFuzz, WriteOnlyStreamsCountNoReadTraffic) {
  // write() traffic must never leak into the read-side hit/miss stats the
  // paper's curves are built from.
  const auto opt = make_policy(GetParam(), 8);
  const auto ref = reference::make_reference_policy(GetParam(), 8);
  util::Rng rng(99);
  for (int i = 0; i < 4000; ++i) {
    const Key key = static_cast<Key>(rng.uniform_int(0, 30));
    const int prio = static_cast<int>(rng.uniform_int(1, 3));
    ASSERT_EQ(opt->write(key, prio), ref->write(key, prio)) << "op " << i;
    ASSERT_EQ(opt->dirty_count(), ref->dirty_count()) << "op " << i;
  }
  expect_same_resident_set(*opt, *ref, "write-only");
  expect_same_dirty_state(*opt, *ref, "write-only");
  EXPECT_EQ(opt->stats().accesses(), 0u);
  EXPECT_EQ(ref->stats().accesses(), 0u);
  EXPECT_EQ(opt->write_stats().writes(), 4000u);
  EXPECT_EQ(ref->write_stats().writes(), 4000u);
}

TEST_P(DifferentialFuzz, ZeroCapacityWriteSemantics) {
  // Capacity 0 admits nothing: writes count misses, nothing turns dirty,
  // and the flush/drain surfaces stay empty (mirrors the scalar reads).
  const auto opt = make_policy(GetParam(), 0);
  EXPECT_FALSE(opt->write(1, 3));
  EXPECT_FALSE(opt->write(1, 3));
  EXPECT_EQ(opt->dirty_count(), 0u);
  EXPECT_EQ(opt->write_stats().write_misses, 2u);
  EXPECT_EQ(opt->write_stats().dirty_installed, 0u);
  std::vector<core::DirtyLine> lines;
  opt->flush_dirty(lines, 0);
  opt->take_evicted_dirty(lines);
  EXPECT_TRUE(lines.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, DifferentialFuzz,
    ::testing::Values(PolicyId::Fifo, PolicyId::Lru, PolicyId::Lfu,
                      PolicyId::Arc, PolicyId::Lru2, PolicyId::TwoQ,
                      PolicyId::Lrfu, PolicyId::Fbf, PolicyId::FbfNoDemote),
    [](const ::testing::TestParamInfo<PolicyId>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace fbf::cache
