// Differential fuzzing of every optimized replacement policy against its
// O(n) golden model (src/cache/reference). Seeded randomized streams mix
// demand requests with installs across capacities (0, 1, small, large),
// priorities 1..3, and key ranges tuned from ghost-heavy reuse to pure
// scans; after every operation the two implementations must agree on
// hit/miss, size, and membership, and periodically on the exact resident
// set and cumulative stats. Any bookkeeping divergence — an ARC ghost-list
// slip, an FBF demotion bug — fails here instead of silently skewing the
// paper's hit-ratio and reconstruction-time curves.
#include <gtest/gtest.h>

#include <string>

#include "cache/policy.h"
#include "cache/reference/reference.h"
#include "util/rng.h"

namespace fbf::cache {
namespace {

struct Scenario {
  const char* label;
  std::size_t capacity;
  std::uint64_t key_range;
  int ops;
  double install_prob;
};

// 120k operations per policy across the scenario sweep.
constexpr Scenario kScenarios[] = {
    {"zero_capacity", 0, 8, 2000, 0.30},
    {"single_slot", 1, 6, 10000, 0.25},
    {"tiny_cache_scan", 2, 64, 8000, 0.25},
    {"ghost_heavy", 4, 12, 30000, 0.25},
    {"working_set_overflow", 16, 22, 30000, 0.15},
    {"miss_heavy_scan", 16, 400, 20000, 0.15},
    {"large_cache", 64, 80, 20000, 0.10},
};

void expect_same_resident_set(const CachePolicy& opt,
                              const reference::ReferencePolicy& ref,
                              const std::string& context) {
  ASSERT_EQ(opt.size(), ref.size()) << context;
  for (const Key k : ref.resident()) {
    ASSERT_TRUE(opt.contains(k)) << context << ": key " << k
                                 << " resident in the golden model only";
  }
}

void run_differential(PolicyId id, const Scenario& s, std::uint64_t seed) {
  const auto opt = make_policy(id, s.capacity);
  const auto ref = reference::make_reference_policy(id, s.capacity);
  util::Rng rng(seed);
  const std::string context = std::string(to_string(id)) + "/" + s.label +
                              " seed=" + std::to_string(seed);
  for (int i = 0; i < s.ops; ++i) {
    const Key key = static_cast<Key>(
        rng.uniform_int(0, static_cast<std::int64_t>(s.key_range) - 1));
    const int prio = static_cast<int>(rng.uniform_int(1, 3));
    const std::string at = context + " op=" + std::to_string(i);
    if (rng.bernoulli(s.install_prob)) {
      opt->install(key, prio);
      ref->install(key, prio);
    } else {
      const bool opt_hit = opt->request(key, prio);
      const bool ref_hit = ref->request(key, prio);
      ASSERT_EQ(opt_hit, ref_hit) << at << " key=" << key;
    }
    ASSERT_EQ(opt->size(), ref->size()) << at;
    const Key probe = static_cast<Key>(
        rng.uniform_int(0, static_cast<std::int64_t>(s.key_range) - 1));
    ASSERT_EQ(opt->contains(probe), ref->contains(probe))
        << at << " probe=" << probe;
    if (i % 1024 == 0) {
      expect_same_resident_set(*opt, *ref, at);
    }
  }
  expect_same_resident_set(*opt, *ref, context);
  EXPECT_EQ(opt->stats().hits, ref->stats().hits) << context;
  EXPECT_EQ(opt->stats().misses, ref->stats().misses) << context;
  EXPECT_EQ(opt->stats().evictions, ref->stats().evictions) << context;
}

class DifferentialFuzz : public ::testing::TestWithParam<PolicyId> {};

TEST_P(DifferentialFuzz, MatchesGoldenModelOnRandomizedStreams) {
  std::uint64_t seed = 0x0ddba11 + static_cast<std::uint64_t>(GetParam());
  for (const Scenario& s : kScenarios) {
    run_differential(GetParam(), s, seed);
    if (HasFatalFailure()) {
      return;
    }
    seed += 0x9e3779b97f4a7c15ull;
  }
}

TEST_P(DifferentialFuzz, InstallOnlyStreamsAgree) {
  // Pure install streams (reconstruction writes with no demand reads):
  // no hits or misses may be counted, and the resident sets must match.
  const auto opt = make_policy(GetParam(), 8);
  const auto ref = reference::make_reference_policy(GetParam(), 8);
  util::Rng rng(77);
  for (int i = 0; i < 4000; ++i) {
    const Key key = static_cast<Key>(rng.uniform_int(0, 30));
    const int prio = static_cast<int>(rng.uniform_int(1, 3));
    opt->install(key, prio);
    ref->install(key, prio);
    ASSERT_EQ(opt->size(), ref->size()) << "op " << i;
    ASSERT_EQ(opt->contains(key), ref->contains(key)) << "op " << i;
  }
  expect_same_resident_set(*opt, *ref, "install-only");
  EXPECT_EQ(opt->stats().accesses(), 0u);
  EXPECT_EQ(ref->stats().accesses(), 0u);
  EXPECT_EQ(opt->stats().evictions, ref->stats().evictions);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, DifferentialFuzz,
    ::testing::Values(PolicyId::Fifo, PolicyId::Lru, PolicyId::Lfu,
                      PolicyId::Arc, PolicyId::Lru2, PolicyId::TwoQ,
                      PolicyId::Lrfu, PolicyId::Fbf, PolicyId::FbfNoDemote),
    [](const ::testing::TestParamInfo<PolicyId>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace fbf::cache
