#include "cache/lruk.h"

#include <gtest/gtest.h>

namespace fbf::cache {
namespace {

TEST(Lruk, SingleAccessKeysEvictedBeforeDoubleAccess) {
  LrukCache c(3);
  c.request(1);
  c.request(1);  // 1 has two accesses
  c.request(2);
  c.request(3);
  c.request(4);  // must evict 2 or 3 (single access), never 1
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));  // 2 is the oldest single-access key
}

TEST(Lruk, AmongSingleAccessEvictsOldest) {
  LrukCache c(2);
  c.request(10);
  c.request(20);
  c.request(30);
  EXPECT_FALSE(c.contains(10));
  EXPECT_TRUE(c.contains(20));
  EXPECT_TRUE(c.contains(30));
}

TEST(Lruk, PenultimateTimeOrdersTwiceAccessedKeys) {
  LrukCache c(2);
  c.request(1);  // t1
  c.request(2);  // t2
  c.request(1);  // t3: 1.penult = t1
  c.request(2);  // t4: 2.penult = t2 -> 1 has older penult
  c.request(3);  // evicts 1 (penult t1 < t2)
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
}

TEST(Lruk, HitMissAccounting) {
  LrukCache c(4);
  EXPECT_FALSE(c.request(1));
  EXPECT_TRUE(c.request(1));
  EXPECT_TRUE(c.request(1));
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Lruk, CapacityInvariantUnderRandomTrace) {
  LrukCache c(6);
  std::uint64_t state = 3;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    c.request(state % 30);
    ASSERT_LE(c.size(), 6u);
  }
}

}  // namespace
}  // namespace fbf::cache
