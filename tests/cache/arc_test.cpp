#include "cache/arc.h"

#include <gtest/gtest.h>

namespace fbf::cache {
namespace {

TEST(Arc, BasicMissThenHit) {
  ArcCache c(4);
  EXPECT_FALSE(c.request(1));
  EXPECT_TRUE(c.request(1));
}

TEST(Arc, FirstHitPromotesToT2) {
  ArcCache c(4);
  c.request(1);
  EXPECT_EQ(c.t1_size(), 1u);
  EXPECT_EQ(c.t2_size(), 0u);
  c.request(1);
  EXPECT_EQ(c.t1_size(), 0u);
  EXPECT_EQ(c.t2_size(), 1u);
}

TEST(Arc, CapacityNeverExceeded) {
  ArcCache c(8);
  std::uint64_t state = 2;
  for (int i = 0; i < 20000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    c.request(state % 64);
    ASSERT_LE(c.size(), 8u);
    ASSERT_LE(c.b1_size() + c.b2_size(), 2 * 8u);  // ghosts bounded by 2c
  }
}

TEST(Arc, GhostHitInB1GrowsTarget) {
  // REPLACE only ghosts T1's LRU when T2 holds part of the cache; build
  // that state first (a plain T1 overflow discards without ghosting, per
  // the original Case IV-A).
  ArcCache c(2);
  c.request(1);
  c.request(2);  // T1 = {1, 2}
  c.request(1);  // promote 1 to T2: T1 = {2}, T2 = {1}
  c.request(3);  // REPLACE moves 2 (T1 LRU) into the B1 ghost
  EXPECT_EQ(c.b1_size(), 1u);
  const std::size_t p_before = c.target_p();
  c.request(2);  // B1 ghost hit: recency target must grow
  EXPECT_GT(c.target_p(), p_before);
  EXPECT_TRUE(c.contains(2));  // re-admitted (into T2)
}

TEST(Arc, GhostHitIsStillAMiss) {
  ArcCache c(2);
  c.request(1);
  c.request(2);
  c.request(3);
  const auto misses_before = c.stats().misses;
  c.request(1);  // ghost hit: data was evicted, so this is a disk read
  EXPECT_EQ(c.stats().misses, misses_before + 1);
}

TEST(Arc, ScanResistanceBeatsLru) {
  // A hot working set re-referenced between one-shot scan keys: ARC should
  // keep the hot keys resident where pure recency would flush them.
  ArcCache c(4);
  // Establish frequency for the hot pair.
  for (int i = 0; i < 4; ++i) {
    c.request(100);
    c.request(101);
  }
  // One-shot scan twice as large as the cache.
  for (Key k = 0; k < 8; ++k) {
    c.request(k);
  }
  EXPECT_TRUE(c.contains(100));
  EXPECT_TRUE(c.contains(101));
}

TEST(Arc, AllListsDrainCorrectlyOnMixedTrace) {
  ArcCache c(3);
  for (Key k = 0; k < 6; ++k) {
    c.request(k);
  }
  for (Key k = 0; k < 6; ++k) {
    c.request(k);
  }
  EXPECT_LE(c.size(), 3u);
  EXPECT_EQ(c.stats().accesses(), 12u);
}

TEST(Arc, InstallOnGhostDoesNotAdapt) {
  // Installs carry no reuse evidence: a ghosted key re-enters T1 with the
  // adaptation target untouched, where a demand miss on the same B1 entry
  // would grow p (Case II).
  ArcCache c(2);
  c.request(1);
  c.request(1);  // T2 = {1}
  c.request(2);  // T1 = {2}
  c.request(3);  // REPLACE: 2 -> B1, T1 = {3}
  ASSERT_EQ(c.b1_size(), 1u);
  ASSERT_EQ(c.target_p(), 0u);
  const auto evictions_before = c.stats().evictions;
  c.install(2);
  EXPECT_EQ(c.target_p(), 0u);  // no Case II adaptation
  EXPECT_TRUE(c.contains(2));
  EXPECT_EQ(c.t1_size(), 1u);   // re-admitted to T1, not T2
  EXPECT_EQ(c.b1_size(), 1u);   // 2 left the ghost; victim 3 entered it
  EXPECT_EQ(c.stats().evictions, evictions_before + 1);

  // Control: the demand access the install replaced would have adapted.
  ArcCache d(2);
  d.request(1);
  d.request(1);
  d.request(2);
  d.request(3);
  d.request(2);  // B1 ghost hit
  EXPECT_GT(d.target_p(), 0u);
}

TEST(Arc, InstallResidentLeavesListsAlone) {
  ArcCache c(4);
  c.request(1);  // T1 = {1}
  c.install(1);
  EXPECT_EQ(c.t1_size(), 1u);  // a request would have promoted to T2
  EXPECT_EQ(c.t2_size(), 0u);
  c.request(1);  // now genuinely reused -> T2
  c.install(1);
  EXPECT_EQ(c.t1_size(), 0u);
  EXPECT_EQ(c.t2_size(), 1u);
  EXPECT_EQ(c.stats().accesses(), 2u);  // installs count no hits/misses
}

TEST(Arc, CapacityOne) {
  ArcCache c(1);
  EXPECT_FALSE(c.request(1));
  EXPECT_TRUE(c.request(1));
  EXPECT_FALSE(c.request(2));
  EXPECT_LE(c.size(), 1u);
}

}  // namespace
}  // namespace fbf::cache
