#include "cache/lfu.h"

#include <gtest/gtest.h>

namespace fbf::cache {
namespace {

TEST(Lfu, EvictsLeastFrequent) {
  LfuCache c(2);
  c.request(1);
  c.request(1);  // freq(1) = 2
  c.request(2);  // freq(2) = 1
  c.request(3);  // evicts 2
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
}

TEST(Lfu, FrequencyAccumulates) {
  LfuCache c(4);
  for (int i = 0; i < 5; ++i) {
    c.request(7);
  }
  EXPECT_EQ(c.frequency(7), 5u);
  EXPECT_EQ(c.frequency(8), 0u);
}

TEST(Lfu, TieBrokenByLeastRecent) {
  LfuCache c(3);
  c.request(1);
  c.request(2);
  c.request(3);  // all freq 1; LRU order 1,2,3
  c.request(4);  // evicts 1
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
}

TEST(Lfu, HitRefreshesRecencyWithinFrequencyClass) {
  LfuCache c(3);
  c.request(1);
  c.request(2);
  c.request(1);  // 1 -> freq 2
  c.request(2);  // 2 -> freq 2; recency order within class: 1 then 2
  c.request(3);  // freq 1
  c.request(4);  // evicts 3 (lowest freq)
  EXPECT_FALSE(c.contains(3));
  c.request(5);  // evicts 4
  EXPECT_FALSE(c.contains(4));
  c.request(6);  // evicts 5 (freq 1) — never the freq-2 entries
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
}

TEST(Lfu, FrequencyStickinessPathology) {
  // LFU's classic weakness (and why FBF beats it in the paper by up to
  // 2.47x): after the first new insert claims a slot, items touched many
  // times long ago squat on the remaining capacity forever, and every new
  // key evicts the previous freq-1 newcomer.
  LfuCache c(2);
  for (int i = 0; i < 10; ++i) {
    c.request(1);
    c.request(2);
  }
  for (Key k = 10; k < 20; ++k) {
    c.request(k);
  }
  // Key 2 (freq 10) is never displaced by the freq-1 scan keys; only one
  // slot churns.
  EXPECT_TRUE(c.contains(2));
  EXPECT_TRUE(c.contains(19));
  for (Key k = 10; k < 19; ++k) {
    EXPECT_FALSE(c.contains(k));
  }
}

TEST(Lfu, CapacityNeverExceeded) {
  LfuCache c(5);
  std::uint64_t state = 1;
  for (int i = 0; i < 3000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    c.request(state % 40);
    ASSERT_LE(c.size(), 5u);
  }
}

TEST(Lfu, InstallSetsFrequencyOne) {
  LfuCache c(3);
  c.install(9);
  EXPECT_EQ(c.frequency(9), 1u);
  EXPECT_EQ(c.stats().accesses(), 0u);
}

}  // namespace
}  // namespace fbf::cache
