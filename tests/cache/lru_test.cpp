#include "cache/lru.h"

#include <gtest/gtest.h>

#include <vector>

namespace fbf::cache {
namespace {

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruCache c(2);
  c.request(1);
  c.request(2);
  c.request(1);  // 2 is now LRU
  c.request(3);  // evicts 2
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
}

TEST(Lru, HitRefreshesRecency) {
  LruCache c(3);
  c.request(1);
  c.request(2);
  c.request(3);
  EXPECT_EQ(c.lru_key(), 1u);
  c.request(1);
  EXPECT_EQ(c.lru_key(), 2u);
}

TEST(Lru, SequentialScanLargerThanCacheNeverHits) {
  // The paper's motivating pathology: cyclic reuse with distance > size.
  LruCache c(4);
  for (int round = 0; round < 3; ++round) {
    for (Key k = 0; k < 6; ++k) {
      c.request(k);
    }
  }
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().misses, 18u);
}

TEST(Lru, ReuseWithinCapacityAlwaysHits) {
  LruCache c(6);
  for (Key k = 0; k < 6; ++k) {
    c.request(k);
  }
  for (int round = 0; round < 3; ++round) {
    for (Key k = 0; k < 6; ++k) {
      EXPECT_TRUE(c.request(k));
    }
  }
}

TEST(Lru, MatchesReferenceModelOnRandomTrace) {
  // Brute-force reference: vector ordered by recency.
  LruCache c(8);
  std::vector<Key> model;  // front = LRU
  std::uint64_t state = 88172645463325252ull;
  auto next_key = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state % 24;
  };
  for (int i = 0; i < 5000; ++i) {
    const Key k = next_key();
    const auto it = std::find(model.begin(), model.end(), k);
    const bool model_hit = it != model.end();
    if (model_hit) {
      model.erase(it);
    } else if (model.size() == 8) {
      model.erase(model.begin());
    }
    model.push_back(k);
    ASSERT_EQ(c.request(k), model_hit) << "at access " << i;
    ASSERT_EQ(c.size(), model.size());
    ASSERT_EQ(c.lru_key(), model.front());
  }
}

TEST(Lru, CapacityOne) {
  LruCache c(1);
  EXPECT_FALSE(c.request(1));
  EXPECT_TRUE(c.request(1));
  EXPECT_FALSE(c.request(2));
  EXPECT_FALSE(c.contains(1));
}

TEST(Lru, EvictionCountMatches) {
  LruCache c(2);
  for (Key k = 0; k < 5; ++k) {
    c.request(k);
  }
  EXPECT_EQ(c.stats().evictions, 3u);
}

}  // namespace
}  // namespace fbf::cache
