#include "cache/belady.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace fbf::cache {
namespace {

TEST(Belady, EmptyStream) {
  const CacheStats s = belady_min({}, 4);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
}

TEST(Belady, ZeroCapacityMissesEverything) {
  const CacheStats s = belady_min({1, 1, 1}, 0);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 3u);
}

TEST(Belady, RepeatedKeyAlwaysHitsAfterFirst) {
  const CacheStats s = belady_min({5, 5, 5, 5}, 1);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 3u);
}

TEST(Belady, TextbookExampleWithBypass) {
  // Classic OPT reference string 2,3,2,1,5,2,4,5,3,2,5,2 with 3 frames.
  // With bypass (never caching 1 and 4, which are never reused) MIN takes
  // exactly 5 faults: the three compulsory ones plus 1 and 4.
  const std::vector<Key> refs{2, 3, 2, 1, 5, 2, 4, 5, 3, 2, 5, 2};
  const CacheStats s = belady_min(refs, 3);
  EXPECT_EQ(s.misses, 5u);
  EXPECT_EQ(s.hits, 7u);
}

TEST(Belady, CyclicScanWithLookahead) {
  // 0,1,2,3 repeated with capacity 3: LRU gets zero hits; MIN keeps a
  // stable subset and hits 2 of every 4 once warm.
  std::vector<Key> refs;
  for (int round = 0; round < 8; ++round) {
    for (Key k = 0; k < 4; ++k) {
      refs.push_back(k);
    }
  }
  const CacheStats opt = belady_min(refs, 3);
  const auto lru = make_policy(PolicyId::Lru, 3);
  for (Key k : refs) {
    lru->request(k);
  }
  EXPECT_EQ(lru->stats().hits, 0u);
  EXPECT_GT(opt.hits, refs.size() / 3);
}

TEST(Belady, NeverExceedsCapacityAndCountsAddUp) {
  util::Rng rng(7);
  std::vector<Key> refs;
  for (int i = 0; i < 5000; ++i) {
    refs.push_back(static_cast<Key>(rng.uniform_int(0, 40)));
  }
  const CacheStats s = belady_min(refs, 8);
  EXPECT_EQ(s.hits + s.misses, refs.size());
  EXPECT_GT(s.hits, 0u);
}

TEST(Belady, DominatesEveryOnlinePolicy) {
  // The defining property: MIN's hit count upper-bounds every policy in
  // the registry on the same stream, across capacities.
  util::Rng rng(99);
  std::vector<Key> refs;
  std::vector<int> prios;
  for (int i = 0; i < 4000; ++i) {
    refs.push_back(static_cast<Key>(rng.uniform_int(0, 60)));
    prios.push_back(static_cast<int>(rng.uniform_int(1, 3)));
  }
  for (std::size_t capacity : {2u, 5u, 13u, 40u}) {
    const CacheStats opt = belady_min(refs, capacity);
    for (PolicyId id : {PolicyId::Fifo, PolicyId::Lru, PolicyId::Lfu,
                        PolicyId::Arc, PolicyId::Lru2, PolicyId::TwoQ,
                        PolicyId::Lrfu, PolicyId::Fbf}) {
      const auto policy = make_policy(id, capacity);
      for (std::size_t i = 0; i < refs.size(); ++i) {
        policy->request(refs[i], prios[i]);
      }
      EXPECT_GE(opt.hits, policy->stats().hits)
          << to_string(id) << " capacity " << capacity;
    }
  }
}

TEST(Belady, BypassBeatsForcedInsertion) {
  // A one-shot scan through a hot pair: MIN must keep the pair resident
  // (bypassing scan keys) and hit on every revisit.
  std::vector<Key> refs;
  for (int round = 0; round < 10; ++round) {
    refs.push_back(100);
    refs.push_back(101);
    refs.push_back(1000 + static_cast<Key>(round));  // one-shot
  }
  const CacheStats s = belady_min(refs, 2);
  EXPECT_EQ(s.hits, 18u);  // all but the first touch of 100 and 101
}

}  // namespace
}  // namespace fbf::cache
