// Asserts the zero-allocation steady-state contract of the flat cache
// core: after construction and a warm-up phase, request()/install() on
// every ported policy must never touch the heap. Global operator new is
// replaced with a counting shim, so this test lives in its own binary —
// linking it into the shared cache_test would instrument every other test
// there too.
//
// The shim is malloc-backed, which keeps ASan's malloc interceptors in
// the loop when the binary is built with -DFBF_SANITIZE=ON.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>
#include <new>
#include <vector>

#include "cache/policy.h"
#include "util/rng.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(align, (size + align - 1) / align * align)) {
    return p;
  }
  throw std::bad_alloc{};
}

}  // namespace

// Every replaceable allocation form routes through the counter; the
// aligned and nothrow variants matter because the standard library is
// free to pick any of them.
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace fbf::cache {
namespace {

struct Op {
  Key key;
  int priority;
  bool is_install;
};

/// Mixed request/install trace over a key space ~4x capacity so the cache
/// churns through misses, evictions, and ghost-list traffic.
std::vector<Op> make_trace(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ops.push_back(Op{static_cast<Key>(rng.uniform_int(0, 1023)),
                     static_cast<int>(rng.uniform_int(1, 3)),
                     rng.bernoulli(0.25)});
  }
  return ops;
}

class SteadyStateAllocation : public ::testing::TestWithParam<PolicyId> {};

TEST_P(SteadyStateAllocation, RequestAndInstallNeverAllocate) {
  constexpr std::size_t kCapacity = 256;
  const std::vector<Op> warm = make_trace(10000, 42);
  const std::vector<Op> steady = make_trace(10000, 1337);

  const auto policy = make_policy(GetParam(), kCapacity);
  for (const Op& op : warm) {
    if (op.is_install) {
      policy->install(op.key, op.priority);
    } else {
      policy->request(op.key, op.priority);
    }
  }

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (const Op& op : steady) {
    if (op.is_install) {
      policy->install(op.key, op.priority);
    } else {
      policy->request(op.key, op.priority);
    }
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << to_string(GetParam()) << " allocated " << (after - before)
      << " times across " << steady.size() << " steady-state ops";
}

// Lrfu keeps its original std::map implementation and Belady needs the
// future trace, so the contract covers exactly the flat-core ports.
INSTANTIATE_TEST_SUITE_P(
    FlatCorePolicies, SteadyStateAllocation,
    ::testing::Values(PolicyId::Fifo, PolicyId::Lru, PolicyId::Lfu,
                      PolicyId::Arc, PolicyId::Lru2, PolicyId::TwoQ,
                      PolicyId::Fbf, PolicyId::FbfNoDemote),
    [](const ::testing::TestParamInfo<PolicyId>& info) {
      // Policy display names ("LRU-2", "2Q") are not valid identifiers.
      std::string name = "P_";
      for (const char* c = to_string(info.param); *c != '\0'; ++c) {
        name.push_back(std::isalnum(static_cast<unsigned char>(*c)) ? *c
                                                                    : '_');
      }
      return name;
    });

}  // namespace
}  // namespace fbf::cache
