// Replays *actual* recovery request sequences (from generated schemes)
// through the policies — the workload the whole paper is about — and pins
// the relationships its figures rely on.
#include <gtest/gtest.h>

#include "cache/belady.h"
#include "cache/policy.h"
#include "codes/builders.h"
#include "recovery/request_sequence.h"

namespace fbf::cache {
namespace {

struct Trace {
  std::vector<Key> keys;
  std::vector<int> priorities;
  int distinct = 0;
};

/// Concatenated read sequences of several same-format stripe recoveries,
/// with per-stripe key spaces (as the simulator's chunk keys are).
Trace recovery_trace(codes::CodeId code, int p, int chunks, int stripes) {
  const codes::Layout l = codes::make_layout(code, p);
  const auto scheme = recovery::generate_scheme(
      l, recovery::PartialStripeError{0, 0, chunks},
      recovery::SchemeKind::RoundRobin);
  const auto ops = recovery::build_request_sequence(l, scheme);
  Trace t;
  t.distinct = scheme.distinct_reads() * stripes;
  for (int s = 0; s < stripes; ++s) {
    const Key base = static_cast<Key>(s) * 10000;
    for (const recovery::ChunkOp& op : ops) {
      if (op.kind == recovery::OpKind::Read) {
        t.keys.push_back(base + static_cast<Key>(l.cell_index(op.cell)));
        t.priorities.push_back(op.priority);
      }
    }
  }
  return t;
}

std::uint64_t replay(PolicyId id, const Trace& t, std::size_t capacity) {
  const auto policy = make_policy(id, capacity);
  for (std::size_t i = 0; i < t.keys.size(); ++i) {
    policy->request(t.keys[i], t.priorities[i]);
  }
  return policy->stats().hits;
}

TEST(RecoveryTrace, AmpleCacheHitsEqualSharedReferences) {
  // With room for everything, hits = total references - distinct chunks,
  // identically for every policy (the paper's plateau).
  const Trace t = recovery_trace(codes::CodeId::TripleStar, 11, 8, 5);
  const auto shared =
      static_cast<std::uint64_t>(t.keys.size()) -
      static_cast<std::uint64_t>(t.distinct);
  for (PolicyId id : {PolicyId::Fifo, PolicyId::Lru, PolicyId::Lfu,
                      PolicyId::Arc, PolicyId::Fbf}) {
    EXPECT_EQ(replay(id, t, 100000), shared) << to_string(id);
  }
}

TEST(RecoveryTrace, FbfDominatesClassicsWhenScarce) {
  // A handful of buffers per in-flight stripe: the paper's headline
  // regime. FBF must beat each classic policy.
  const Trace t = recovery_trace(codes::CodeId::TripleStar, 11, 8, 20);
  const std::uint64_t fbf = replay(PolicyId::Fbf, t, 8);
  for (PolicyId id :
       {PolicyId::Fifo, PolicyId::Lru, PolicyId::Lfu, PolicyId::Arc}) {
    EXPECT_GT(fbf, replay(id, t, 8)) << to_string(id);
  }
}

TEST(RecoveryTrace, FbfWithinOptimalEnvelope) {
  const Trace t = recovery_trace(codes::CodeId::Star, 7, 6, 10);
  for (std::size_t capacity : {4u, 8u, 16u, 64u}) {
    const CacheStats opt = belady_min(t.keys, capacity);
    EXPECT_GE(opt.hits, replay(PolicyId::Fbf, t, capacity));
  }
  // And at a workable size FBF lands close to OPT (>= half of its hits).
  const CacheStats opt16 = belady_min(t.keys, 16);
  EXPECT_GE(replay(PolicyId::Fbf, t, 16) * 2, opt16.hits);
}

TEST(RecoveryTrace, StarTraceRewardsPriorityThree) {
  // STAR's adjuster chunks recur across nearly every diagonal chain; FBF
  // priority 3 pins them, beating LRU by a wide margin even at moderate
  // capacity.
  const Trace t = recovery_trace(codes::CodeId::Star, 11, 10, 10);
  const std::uint64_t fbf = replay(PolicyId::Fbf, t, 12);
  const std::uint64_t lru = replay(PolicyId::Lru, t, 12);
  EXPECT_GT(fbf, 2 * lru);
}

TEST(RecoveryTrace, SingleChunkErrorsGiveNoPolicyAnAdvantage) {
  // One lost chunk -> one chain -> no shared references: every policy
  // misses everything (the paper's "referenced once, always missed").
  const Trace t = recovery_trace(codes::CodeId::Tip, 11, 1, 10);
  for (PolicyId id : {PolicyId::Lru, PolicyId::Fbf}) {
    EXPECT_EQ(replay(id, t, 64), 0u) << to_string(id);
  }
}

TEST(RecoveryTrace, HitCountGrowsMonotonicallyWithCapacityForFbf) {
  const Trace t = recovery_trace(codes::CodeId::TripleStar, 11, 8, 10);
  std::uint64_t prev = 0;
  for (std::size_t capacity : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const std::uint64_t hits = replay(PolicyId::Fbf, t, capacity);
    EXPECT_GE(hits, prev) << "capacity " << capacity;
    prev = hits;
  }
}

}  // namespace
}  // namespace fbf::cache
