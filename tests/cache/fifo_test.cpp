#include "cache/fifo.h"

#include <gtest/gtest.h>

namespace fbf::cache {
namespace {

TEST(Fifo, MissThenHit) {
  FifoCache c(2);
  EXPECT_FALSE(c.request(1));
  EXPECT_TRUE(c.request(1));
  EXPECT_EQ(c.stats().hits, 1u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Fifo, EvictsInInsertionOrder) {
  FifoCache c(2);
  c.request(1);
  c.request(2);
  c.request(3);  // evicts 1
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
  EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Fifo, HitsDoNotRefreshPosition) {
  FifoCache c(2);
  c.request(1);
  c.request(2);
  c.request(1);  // hit; 1 must stay the oldest
  c.request(3);  // still evicts 1
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
}

TEST(Fifo, CapacityNeverExceeded) {
  FifoCache c(3);
  for (Key k = 0; k < 100; ++k) {
    c.request(k);
    EXPECT_LE(c.size(), 3u);
  }
  EXPECT_EQ(c.size(), 3u);
}

TEST(Fifo, ZeroCapacityAlwaysMisses) {
  FifoCache c(0);
  EXPECT_FALSE(c.request(1));
  EXPECT_FALSE(c.request(1));
  EXPECT_EQ(c.size(), 0u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Fifo, InstallDoesNotCountStats) {
  FifoCache c(2);
  c.install(5);
  EXPECT_TRUE(c.contains(5));
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().misses, 0u);
  EXPECT_TRUE(c.request(5));
}

TEST(Fifo, Name) {
  FifoCache c(1);
  EXPECT_STREQ(c.name(), "FIFO");
}

}  // namespace
}  // namespace fbf::cache
