// Directional properties the paper's evaluation rests on: FBF beats the
// classic policies when cache is scarce, hit ratio saturates with size,
// fewer misses mean faster recovery. These assert the *shape* of the
// results, not absolute numbers.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/sweep.h"

namespace fbf::core {
namespace {

ExperimentConfig shape_config() {
  ExperimentConfig c;
  c.code = codes::CodeId::TripleStar;
  c.p = 11;
  c.workers = 16;
  c.num_errors = 80;
  c.num_stripes = 100000;
  c.scheme = recovery::SchemeKind::RoundRobin;
  c.seed = 777;
  return c;
}

ExperimentResult run_with(cache::PolicyId policy, std::size_t cache_bytes,
                          ExperimentConfig cfg) {
  cfg.policy = policy;
  cfg.cache_bytes = cache_bytes;
  return run_experiment(cfg);
}

TEST(Directional, FbfBeatsClassicPoliciesAtSmallCache) {
  const auto cfg = shape_config();
  // 16 workers x a handful of chunks each: the scarce-cache regime where
  // the paper reports FBF's largest wins.
  const std::size_t small = 16 * 4 * cfg.chunk_bytes;
  const double fbf = run_with(cache::PolicyId::Fbf, small, cfg).hit_ratio;
  for (cache::PolicyId baseline :
       {cache::PolicyId::Fifo, cache::PolicyId::Lru, cache::PolicyId::Lfu,
        cache::PolicyId::Arc}) {
    const double base = run_with(baseline, small, cfg).hit_ratio;
    EXPECT_GT(fbf, base) << "vs " << cache::to_string(baseline);
  }
}

TEST(Directional, FbfReducesDiskReadsAtSmallCache) {
  const auto cfg = shape_config();
  const std::size_t small = 16 * 4 * cfg.chunk_bytes;
  const auto fbf = run_with(cache::PolicyId::Fbf, small, cfg);
  const auto lru = run_with(cache::PolicyId::Lru, small, cfg);
  EXPECT_LT(fbf.disk_reads, lru.disk_reads);
}

TEST(Directional, FbfShortensReconstructionAtSmallCache) {
  const auto cfg = shape_config();
  const std::size_t small = 16 * 4 * cfg.chunk_bytes;
  const auto fbf = run_with(cache::PolicyId::Fbf, small, cfg);
  const auto lru = run_with(cache::PolicyId::Lru, small, cfg);
  EXPECT_LT(fbf.reconstruction_ms, lru.reconstruction_ms);
  EXPECT_LT(fbf.avg_response_ms, lru.avg_response_ms);
}

TEST(Directional, HitRatioSaturatesWithCacheSize) {
  const auto cfg = shape_config();
  // Once every shared chunk fits, extra capacity cannot add hits: the
  // plateau the paper describes ("chunks referenced one time are always
  // missed").
  const auto big = run_with(cache::PolicyId::Fbf,
                            1024ull * 16 * cfg.chunk_bytes, cfg);
  const auto bigger = run_with(cache::PolicyId::Fbf,
                               4096ull * 16 * cfg.chunk_bytes, cfg);
  EXPECT_NEAR(big.hit_ratio, bigger.hit_ratio, 1e-9);
  EXPECT_GT(big.hit_ratio, 0.0);
  EXPECT_LT(big.hit_ratio, 1.0);  // priority-1 chunks always miss once
}

TEST(Directional, PoliciesConvergeWhenCacheIsAmple) {
  // With per-worker partitions far larger than any stripe's fetch set,
  // every policy holds everything: identical hit counts.
  const auto cfg = shape_config();
  const std::size_t ample = 4096ull * 16 * cfg.chunk_bytes;
  const auto fbf = run_with(cache::PolicyId::Fbf, ample, cfg);
  const auto lru = run_with(cache::PolicyId::Lru, ample, cfg);
  const auto fifo = run_with(cache::PolicyId::Fifo, ample, cfg);
  EXPECT_EQ(fbf.cache_hits, lru.cache_hits);
  EXPECT_EQ(fbf.cache_hits, fifo.cache_hits);
}

TEST(Directional, RoundRobinSchemeOutReadsHorizontalScheme) {
  // The multi-direction scheme shares chunks across chains; horizontal-only
  // recovery cannot, so with a large cache it needs more distinct reads.
  auto cfg = shape_config();
  cfg.cache_bytes = 1024ull * 16 * cfg.chunk_bytes;
  cfg.policy = cache::PolicyId::Fbf;
  cfg.scheme = recovery::SchemeKind::RoundRobin;
  const auto rr = run_experiment(cfg);
  cfg.scheme = recovery::SchemeKind::HorizontalFirst;
  const auto horizontal = run_experiment(cfg);
  EXPECT_LT(rr.disk_reads, horizontal.disk_reads);
}

TEST(Directional, GreedySchemeIsAtLeastAsGoodAsRoundRobin) {
  auto cfg = shape_config();
  cfg.cache_bytes = 1024ull * 16 * cfg.chunk_bytes;
  cfg.policy = cache::PolicyId::Fbf;
  cfg.scheme = recovery::SchemeKind::GreedyMinIO;
  const auto greedy = run_experiment(cfg);
  cfg.scheme = recovery::SchemeKind::RoundRobin;
  const auto rr = run_experiment(cfg);
  EXPECT_LE(greedy.disk_reads, rr.disk_reads);
}

TEST(Directional, StarHitRatioExceedsAdjusterFreeCodes) {
  // Paper §IV-B-1: STAR's adjuster chunks are referenced 3+ times and lift
  // its hit ratio above the other codes under FBF.
  auto cfg = shape_config();
  cfg.p = 7;
  cfg.policy = cache::PolicyId::Fbf;
  cfg.cache_bytes = 64ull * 16 * cfg.chunk_bytes;
  cfg.code = codes::CodeId::Star;
  const auto star = run_experiment(cfg);
  cfg.code = codes::CodeId::Tip;
  const auto tip = run_experiment(cfg);
  EXPECT_GT(star.hit_ratio, tip.hit_ratio);
}

TEST(Directional, MoreWorkersShrinkPerWorkerCacheAndHitRatio) {
  // SOR partitioning: same total cache split across more processes leaves
  // each with less, hurting (or at best matching) the hit ratio.
  auto cfg = shape_config();
  cfg.policy = cache::PolicyId::Lru;
  cfg.cache_bytes = 16ull * 8 * cfg.chunk_bytes;
  cfg.workers = 8;
  const auto few = run_experiment(cfg);
  cfg.workers = 64;
  const auto many = run_experiment(cfg);
  EXPECT_LE(many.hit_ratio, few.hit_ratio + 1e-9);
}

TEST(Directional, SchemeOverheadIsSmallFractionOfReconstruction) {
  // Table IV: overhead stays below a few percent of reconstruction time.
  auto cfg = shape_config();
  cfg.memoize_schemes = false;  // measure the un-amortized cost
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.scheme_gen_wall_ms, 0.0);
  EXPECT_LT(r.scheme_gen_wall_ms, 0.1 * r.reconstruction_ms);
}

}  // namespace
}  // namespace fbf::core
