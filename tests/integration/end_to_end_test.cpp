// Whole-system tests through the core facade: run_experiment wires codes,
// recovery, workload, cache and simulator together.
#include <gtest/gtest.h>

#include "util/check.h"

#include "core/experiment.h"
#include "core/sweep.h"

namespace fbf::core {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig c;
  c.code = codes::CodeId::Tip;
  c.p = 7;
  c.workers = 8;
  c.num_errors = 40;
  c.num_stripes = 50000;
  c.cache_bytes = 8ull << 20;
  c.seed = 2024;
  return c;
}

TEST(EndToEnd, RunsAndRecoversEverything) {
  const ExperimentResult r = run_experiment(small_config());
  EXPECT_EQ(r.stripes_recovered, 40u);
  EXPECT_GT(r.chunks_recovered, 40u);  // avg (p-1)/2 > 1 chunk per stripe
  EXPECT_GT(r.total_chunk_requests, r.chunks_recovered);
  EXPECT_EQ(r.cache_hits + r.cache_misses, r.total_chunk_requests);
  EXPECT_GT(r.reconstruction_ms, 0.0);
  EXPECT_GT(r.avg_response_ms, 0.0);
}

TEST(EndToEnd, VerifyDataModeAllCodes) {
  for (codes::CodeId id : codes::kAllCodes) {
    for (int p : {5, 7}) {
      auto cfg = small_config();
      cfg.code = id;
      cfg.p = p;
      cfg.num_errors = 15;
      cfg.verify_data = true;  // throws on any wrong reconstruction
      const ExperimentResult r = run_experiment(cfg);
      EXPECT_EQ(r.stripes_recovered, 15u)
          << codes::to_string(id) << " p=" << p;
    }
  }
}

TEST(EndToEnd, AllPoliciesRunAllSchemes) {
  for (cache::PolicyId policy : cache::kPaperPolicies) {
    for (recovery::SchemeKind scheme :
         {recovery::SchemeKind::HorizontalFirst,
          recovery::SchemeKind::RoundRobin,
          recovery::SchemeKind::GreedyMinIO}) {
      auto cfg = small_config();
      cfg.policy = policy;
      cfg.scheme = scheme;
      cfg.num_errors = 15;
      const ExperimentResult r = run_experiment(cfg);
      EXPECT_EQ(r.stripes_recovered, 15u);
      EXPECT_GE(r.hit_ratio, 0.0);
      EXPECT_LE(r.hit_ratio, 1.0);
    }
  }
}

TEST(EndToEnd, DeterministicResults) {
  const ExperimentResult a = run_experiment(small_config());
  const ExperimentResult b = run_experiment(small_config());
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.disk_reads, b.disk_reads);
  EXPECT_DOUBLE_EQ(a.reconstruction_ms, b.reconstruction_ms);
  EXPECT_DOUBLE_EQ(a.avg_response_ms, b.avg_response_ms);
}

TEST(EndToEnd, LabelDescribesConfig) {
  const std::string label = small_config().label();
  EXPECT_NE(label.find("TIP"), std::string::npos);
  EXPECT_NE(label.find("p=7"), std::string::npos);
  EXPECT_NE(label.find("8MB"), std::string::npos);
}

TEST(Sweep, GridIsCompleteAndOrdered) {
  auto cfg = small_config();
  cfg.num_errors = 10;
  const std::vector<std::size_t> sizes{1ull << 20, 4ull << 20};
  const std::vector<cache::PolicyId> policies{cache::PolicyId::Lru,
                                              cache::PolicyId::Fbf};
  const auto points = run_sweep(cfg, sizes, policies, 2);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[0].cache_bytes, sizes[0]);
  EXPECT_EQ(points[0].policy, cache::PolicyId::Lru);
  EXPECT_EQ(points[3].cache_bytes, sizes[1]);
  EXPECT_EQ(points[3].policy, cache::PolicyId::Fbf);
  for (const auto& p : points) {
    EXPECT_EQ(p.result.stripes_recovered, 10u);
  }
  EXPECT_EQ(&find_point(points, sizes[1], cache::PolicyId::Fbf), &points[3]);
  EXPECT_THROW(find_point(points, 123, cache::PolicyId::Lru),
               util::CheckError);
}

TEST(Sweep, ParallelMatchesSerial) {
  auto cfg = small_config();
  cfg.num_errors = 10;
  const std::vector<std::size_t> sizes{2ull << 20, 8ull << 20};
  const std::vector<cache::PolicyId> policies{cache::PolicyId::Lru,
                                              cache::PolicyId::Fbf};
  const auto serial = run_sweep(cfg, sizes, policies, 1);
  const auto parallel = run_sweep(cfg, sizes, policies, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result.cache_hits, parallel[i].result.cache_hits);
    EXPECT_DOUBLE_EQ(serial[i].result.reconstruction_ms,
                     parallel[i].result.reconstruction_ms);
  }
}

TEST(Sweep, DefaultCacheSizesSpanPaperAxis) {
  const auto sizes = default_cache_sizes();
  EXPECT_EQ(sizes.front(), 2ull << 20);
  EXPECT_EQ(sizes.back(), 2048ull << 20);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], sizes[i - 1] * 2);
  }
  EXPECT_GE(small_cache_sizes().size(), 4u);
}

TEST(Sweep, MaxImprovementArithmetic) {
  // Construct a synthetic grid to pin the formula.
  std::vector<SweepPoint> points;
  auto add = [&points](std::size_t size, cache::PolicyId pol, double hr,
                       double reads) {
    SweepPoint p;
    p.cache_bytes = size;
    p.policy = pol;
    p.result.hit_ratio = hr;
    p.result.disk_reads = static_cast<std::uint64_t>(reads);
    points.push_back(p);
  };
  add(1, cache::PolicyId::Lru, 0.10, 1000);
  add(1, cache::PolicyId::Fbf, 0.25, 800);
  add(2, cache::PolicyId::Lru, 0.40, 500);
  add(2, cache::PolicyId::Fbf, 0.44, 490);
  const double hr_gain = max_improvement(
      points, {1, 2}, cache::PolicyId::Lru,
      [](const ExperimentResult& r) { return r.hit_ratio; },
      /*higher_is_better=*/true);
  EXPECT_NEAR(hr_gain, 1.5, 1e-9);  // 0.25/0.10 - 1
  const double read_gain = max_improvement(
      points, {1, 2}, cache::PolicyId::Lru,
      [](const ExperimentResult& r) {
        return static_cast<double>(r.disk_reads);
      },
      /*higher_is_better=*/false);
  EXPECT_NEAR(read_gain, 0.2, 1e-9);  // 1 - 800/1000
}

TEST(Sweep, MaxImprovementMinBaseContract) {
  std::vector<SweepPoint> points;
  auto add = [&points](std::size_t size, cache::PolicyId pol, double hr) {
    SweepPoint p;
    p.cache_bytes = size;
    p.policy = pol;
    p.result.hit_ratio = hr;
    points.push_back(p);
  };
  // Size 1: near-zero baseline would inflate the ratio to 9x.
  add(1, cache::PolicyId::Lru, 0.001);
  add(1, cache::PolicyId::Fbf, 0.010);
  // Size 2: healthy baseline, modest 25% gain.
  add(2, cache::PolicyId::Lru, 0.40);
  add(2, cache::PolicyId::Fbf, 0.50);
  // Size 3: zero baseline must always be skipped, even at min_base = 0.
  add(3, cache::PolicyId::Lru, 0.0);
  add(3, cache::PolicyId::Fbf, 0.30);
  const auto hit_ratio = [](const ExperimentResult& r) { return r.hit_ratio; };

  // min_base filters the near-zero point, leaving only the honest gain.
  EXPECT_NEAR(max_improvement(points, {1, 2, 3}, cache::PolicyId::Lru,
                              hit_ratio, /*higher_is_better=*/true,
                              /*min_base=*/0.01),
              0.25, 1e-9);
  // The default min_base of 0 keeps the near-zero point (9x) but still
  // rejects the exactly-zero denominator at size 3.
  EXPECT_NEAR(max_improvement(points, {1, 2, 3}, cache::PolicyId::Lru,
                              hit_ratio, /*higher_is_better=*/true),
              9.0, 1e-9);
  // A negative min_base would re-admit zero denominators; it is rejected.
  EXPECT_THROW(max_improvement(points, {1, 2}, cache::PolicyId::Lru,
                               hit_ratio, /*higher_is_better=*/true,
                               /*min_base=*/-1.0),
               util::CheckError);
}

}  // namespace
}  // namespace fbf::core
