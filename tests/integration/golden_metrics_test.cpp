// End-to-end golden tests: one fixed-seed run per engine exports its
// deterministic metrics document — metrics_json(false), everything except
// the wall_clock block — and must match the committed golden file byte for
// byte. This pins the whole stack (trace generation, scheme planning,
// cache behavior, event ordering, metric export) across refactors AND
// across build configurations: ci/tier1.sh runs this binary in the SIMD,
// scalar, and sanitizer builds against the same files.
//
// Regenerating after an intended accounting change:
//   FBF_UPDATE_GOLDEN=1 ./build/tests/golden_test
// then commit the rewritten tests/golden/*.json with the change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.h"
#include "obs/observer.h"

namespace fbf::core {
namespace {

ExperimentConfig golden_config(EngineKind engine) {
  ExperimentConfig c;
  c.code = codes::CodeId::Tip;
  c.p = 7;
  c.engine = engine;
  c.workers = 8;
  c.num_errors = 40;
  c.num_stripes = 50000;
  c.cache_bytes = 8ull << 20;
  c.seed = 2024;
  return c;
}

std::string run_metrics(EngineKind engine) {
  obs::RunObserver observer;
  ExperimentConfig cfg = golden_config(engine);
  cfg.obs = &observer;
  run_experiment(cfg);
  return observer.metrics_json(/*include_wall=*/false);
}

void check_golden(const std::string& name, const std::string& got) {
  const std::string path = std::string(FBF_GOLDEN_DIR) + "/" + name;
  if (std::getenv("FBF_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path << " — commit it";
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << "; regenerate with FBF_UPDATE_GOLDEN=1 "
                            "and commit the result";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "deterministic metrics drifted from " << path
      << ". If the change is intended (new counters, accounting change), "
         "rerun with FBF_UPDATE_GOLDEN=1 and commit the diff; otherwise "
         "this is a determinism or accounting regression.";
}

TEST(GoldenMetrics, SorFixedSeed) {
  check_golden("sor_metrics.json", run_metrics(EngineKind::Sor));
}

TEST(GoldenMetrics, DorFixedSeed) {
  check_golden("dor_metrics.json", run_metrics(EngineKind::Dor));
}

TEST(GoldenMetrics, ExportIsDeterministicWithinProcess) {
  // The files catch cross-build and cross-commit drift; this catches
  // within-process drift (iteration-order or reused-state dependence).
  EXPECT_EQ(run_metrics(EngineKind::Sor), run_metrics(EngineKind::Sor));
  EXPECT_EQ(run_metrics(EngineKind::Dor), run_metrics(EngineKind::Dor));
}

}  // namespace
}  // namespace fbf::core
