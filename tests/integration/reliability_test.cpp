#include "core/reliability.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fbf::core {
namespace {

ReliabilityParams base_params() {
  ReliabilityParams p;
  p.disks = 14;
  p.fault_tolerance = 3;
  p.mttf_hours = 1.0e6;
  p.mttr_hours = 10.0;
  return p;
}

TEST(Reliability, ZeroToleranceMatchesClosedForm) {
  ReliabilityParams p = base_params();
  p.fault_tolerance = 0;
  // MTTDL of n disks with no redundancy: 1 / (n * lambda).
  EXPECT_NEAR(mttdl_hours(p), p.mttf_hours / p.disks, 1e-6);
}

TEST(Reliability, SingleToleranceMatchesClosedForm) {
  ReliabilityParams p = base_params();
  p.fault_tolerance = 1;
  const double lambda = 1.0 / p.mttf_hours;
  const double mu = 1.0 / p.mttr_hours;
  const auto n = static_cast<double>(p.disks);
  // Exact birth-death solution for t = 1 (serial repair):
  // E0 = ((2n-1)*lambda + mu) / (n*(n-1)*lambda^2).
  const double expected =
      ((2 * n - 1) * lambda + mu) / (n * (n - 1) * lambda * lambda);
  EXPECT_NEAR(mttdl_hours(p) / expected, 1.0, 1e-9);
}

TEST(Reliability, HigherToleranceIsMoreReliable) {
  ReliabilityParams p = base_params();
  double prev = 0.0;
  for (int t = 0; t <= 3; ++t) {
    p.fault_tolerance = t;
    const double mttdl = mttdl_hours(p);
    EXPECT_GT(mttdl, prev);
    prev = mttdl;
  }
  // 3DFT MTTDL with these numbers is astronomically larger than RAID-5.
  p.fault_tolerance = 3;
  const double triple = mttdl_hours(p);
  p.fault_tolerance = 1;
  EXPECT_GT(triple / mttdl_hours(p), 1e6);
}

TEST(Reliability, FasterRepairHelpsSuperLinearly) {
  // For a t-fault-tolerant array MTTDL ~ mu^t, so halving the repair time
  // buys roughly 2^3 = 8x at t = 3.
  const ReliabilityParams p = base_params();
  const double gain = mttdl_improvement(p, 10.0, 5.0);
  EXPECT_GT(gain, 7.0);
  EXPECT_LT(gain, 9.0);
}

TEST(Reliability, PaperScaleImprovement) {
  // FBF's ~10% reconstruction-time reduction should yield ~1.37x MTTDL
  // (1 / 0.9^3) for a triple-fault-tolerant array.
  const ReliabilityParams p = base_params();
  const double gain = mttdl_improvement(p, 10.0, 9.0);
  EXPECT_GT(gain, 1.3);
  EXPECT_LT(gain, 1.45);
}

TEST(Reliability, ParallelRepairBeatsSerial) {
  ReliabilityParams serial = base_params();
  ReliabilityParams parallel = base_params();
  parallel.parallel_repair = true;
  EXPECT_GT(mttdl_hours(parallel), mttdl_hours(serial));
}

TEST(Reliability, WovExposure) {
  const ReliabilityParams p = base_params();
  EXPECT_DOUBLE_EQ(wov_exposure(p, 0.0), 0.0);
  const double short_window = wov_exposure(p, 1.0);
  const double long_window = wov_exposure(p, 100.0);
  EXPECT_GT(short_window, 0.0);
  EXPECT_GT(long_window, short_window);
  EXPECT_LT(long_window, 1.0);
  // Small-x approximation: 1 - exp(-x) ~ x = (n-1) * lambda * W.
  EXPECT_NEAR(short_window, 13.0 / 1.0e6, 1e-8);
}

TEST(Reliability, RejectsBadParameters) {
  ReliabilityParams p = base_params();
  p.disks = 3;
  p.fault_tolerance = 3;
  EXPECT_THROW(mttdl_hours(p), util::CheckError);
  p = base_params();
  p.mttr_hours = 0;
  EXPECT_THROW(mttdl_hours(p), util::CheckError);
  p = base_params();
  EXPECT_THROW(wov_exposure(p, -1.0), util::CheckError);
}

}  // namespace
}  // namespace fbf::core
