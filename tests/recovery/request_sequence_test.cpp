#include "recovery/request_sequence.h"

#include <gtest/gtest.h>

#include <map>

#include "codes/builders.h"

namespace fbf::recovery {
namespace {

using codes::Cell;
using codes::CodeId;
using codes::Layout;

TEST(RequestSequence, ReadCountMatchesTotalReferences) {
  const Layout l = codes::make_layout(CodeId::TripleStar, 7);
  const RecoveryScheme s = generate_scheme(l, PartialStripeError{0, 0, 4},
                                           SchemeKind::RoundRobin);
  const auto ops = build_request_sequence(l, s);
  EXPECT_EQ(count_reads(ops), s.total_references);
}

TEST(RequestSequence, OneWritePerStepInOrder) {
  const Layout l = codes::make_layout(CodeId::Tip, 7);
  const RecoveryScheme s = generate_scheme(l, PartialStripeError{0, 1, 3},
                                           SchemeKind::RoundRobin);
  const auto ops = build_request_sequence(l, s);
  std::vector<Cell> writes;
  for (const ChunkOp& op : ops) {
    if (op.kind == OpKind::WriteSpare) {
      writes.push_back(op.cell);
    }
  }
  ASSERT_EQ(writes.size(), s.steps.size());
  for (std::size_t i = 0; i < writes.size(); ++i) {
    EXPECT_EQ(writes[i], s.steps[i].target);
  }
}

TEST(RequestSequence, StepReadsPrecedeStepWrite) {
  const Layout l = codes::make_layout(CodeId::Star, 5);
  const RecoveryScheme s = generate_scheme(l, PartialStripeError{0, 0, 3},
                                           SchemeKind::RoundRobin);
  const auto ops = build_request_sequence(l, s);
  int current_step = 0;
  bool wrote_current = false;
  for (const ChunkOp& op : ops) {
    if (op.step != current_step) {
      EXPECT_EQ(op.step, current_step + 1);
      EXPECT_TRUE(wrote_current);  // previous step finished with its write
      current_step = op.step;
      wrote_current = false;
    }
    if (op.kind == OpKind::WriteSpare) {
      EXPECT_FALSE(wrote_current);
      wrote_current = true;
    }
  }
  EXPECT_TRUE(wrote_current);
}

TEST(RequestSequence, ReadsCoverExactlyChainMembers) {
  const Layout l = codes::make_layout(CodeId::Hdd1, 7);
  const RecoveryScheme s = generate_scheme(l, PartialStripeError{0, 0, 2},
                                           SchemeKind::GreedyMinIO);
  const auto ops = build_request_sequence(l, s);
  std::map<int, std::vector<Cell>> reads_by_step;
  for (const ChunkOp& op : ops) {
    if (op.kind == OpKind::Read) {
      reads_by_step[op.step].push_back(op.cell);
    }
  }
  for (std::size_t i = 0; i < s.steps.size(); ++i) {
    const codes::Chain& ch = l.chain(s.steps[i].chain_id);
    auto& reads = reads_by_step[static_cast<int>(i)];
    std::sort(reads.begin(), reads.end());
    std::vector<Cell> expected;
    for (const Cell& c : ch.cells) {
      if (c != s.steps[i].target) {
        expected.push_back(c);
      }
    }
    EXPECT_EQ(reads, expected);
  }
}

TEST(RequestSequence, PrioritiesComeFromDictionary) {
  const Layout l = codes::make_layout(CodeId::TripleStar, 7);
  const RecoveryScheme s = generate_scheme(l, PartialStripeError{0, 0, 5},
                                           SchemeKind::RoundRobin);
  const auto ops = build_request_sequence(l, s);
  bool saw_high_priority = false;
  for (const ChunkOp& op : ops) {
    const auto idx = static_cast<std::size_t>(l.cell_index(op.cell));
    EXPECT_EQ(op.priority, std::max<std::uint8_t>(s.priority[idx], 1));
    saw_high_priority |= op.priority >= 2;
  }
  EXPECT_TRUE(saw_high_priority);
}

TEST(RequestSequence, EmptySchemeYieldsNoOps) {
  const Layout l = codes::make_layout(CodeId::Tip, 5);
  RecoveryScheme empty;
  empty.priority.assign(static_cast<std::size_t>(l.num_cells()), 0);
  const auto ops = build_request_sequence(l, empty);
  EXPECT_TRUE(ops.empty());
  EXPECT_EQ(count_reads(ops), 0);
}

}  // namespace
}  // namespace fbf::recovery
