#include "recovery/scheme.h"

#include <gtest/gtest.h>

#include <set>

#include "codes/builders.h"
#include "codes/codec.h"
#include "util/check.h"

namespace fbf::recovery {
namespace {

using codes::Cell;
using codes::CodeId;
using codes::Direction;
using codes::Layout;

Cell cell(int r, int c) {
  return Cell{static_cast<std::int16_t>(r), static_cast<std::int16_t>(c)};
}

TEST(SchemeKindNames, RoundTrip) {
  EXPECT_EQ(scheme_from_string("horizontal"), SchemeKind::HorizontalFirst);
  EXPECT_EQ(scheme_from_string("typical"), SchemeKind::HorizontalFirst);
  EXPECT_EQ(scheme_from_string("round-robin"), SchemeKind::RoundRobin);
  EXPECT_EQ(scheme_from_string("fbf"), SchemeKind::RoundRobin);
  EXPECT_EQ(scheme_from_string("greedy"), SchemeKind::GreedyMinIO);
  EXPECT_THROW(scheme_from_string("bogus"), util::CheckError);
}

TEST(PartialStripeErrorCells, ContiguousColumnRun) {
  const PartialStripeError e{2, 1, 3};
  const auto cells = e.cells();
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], cell(1, 2));
  EXPECT_EQ(cells[2], cell(3, 2));
}

TEST(Scheme, OneStepPerLostCell) {
  const Layout l = codes::make_layout(CodeId::Tip, 7);
  const PartialStripeError err{0, 0, 4};
  for (SchemeKind kind : {SchemeKind::HorizontalFirst, SchemeKind::RoundRobin,
                          SchemeKind::GreedyMinIO}) {
    const RecoveryScheme s = generate_scheme(l, err, kind);
    EXPECT_EQ(s.steps.size(), 4u);
    std::set<Cell> targets;
    for (const RecoveryStep& step : s.steps) {
      targets.insert(step.target);
      const codes::Chain& ch = l.chain(step.chain_id);
      EXPECT_TRUE(
          std::binary_search(ch.cells.begin(), ch.cells.end(), step.target));
    }
    EXPECT_EQ(targets.size(), 4u);
  }
}

TEST(Scheme, HorizontalFirstUsesHorizontalChainsOnDataColumn) {
  const Layout l = codes::make_layout(CodeId::TripleStar, 7);
  const RecoveryScheme s =
      generate_scheme(l, PartialStripeError{1, 0, 5},
                      SchemeKind::HorizontalFirst);
  for (const RecoveryStep& step : s.steps) {
    EXPECT_EQ(l.chain(step.chain_id).dir, Direction::Horizontal);
  }
}

TEST(Scheme, RoundRobinCyclesDirections) {
  // On a data column of an RTP layout each lost chunk has chains in all
  // three directions (except missing-diagonal cells), so the loop pattern
  // shows through: H, D, A, H, ...
  const Layout l = codes::make_layout(CodeId::TripleStar, 11);
  const RecoveryScheme s = generate_scheme(l, PartialStripeError{0, 0, 6},
                                           SchemeKind::RoundRobin);
  ASSERT_EQ(s.steps.size(), 6u);
  int matches = 0;
  for (std::size_t i = 0; i < s.steps.size(); ++i) {
    const Direction expected = static_cast<Direction>(i % 3);
    if (l.chain(s.steps[i].chain_id).dir == expected) {
      ++matches;
    }
  }
  // The missing diagonal may force a fallback on at most one step here.
  EXPECT_GE(matches, 5);
}

TEST(Scheme, PeelingOrderIsValid) {
  // Each step's chain must contain no lost cell that is recovered later.
  for (CodeId id : codes::kAllCodes) {
    const Layout l = codes::make_layout(id, 7);
    for (SchemeKind kind :
         {SchemeKind::HorizontalFirst, SchemeKind::RoundRobin,
          SchemeKind::GreedyMinIO}) {
      const PartialStripeError err{0, 0, l.rows()};
      const RecoveryScheme s = generate_scheme(l, err, kind);
      const std::vector<Cell> lost_cells = err.cells();
      std::set<Cell> not_yet(lost_cells.begin(), lost_cells.end());
      for (const RecoveryStep& step : s.steps) {
        for (const Cell& c : l.chain(step.chain_id).cells) {
          if (c != step.target) {
            EXPECT_EQ(not_yet.count(c), 0u)
                << l.name() << " " << to_string(kind);
          }
        }
        not_yet.erase(step.target);
      }
    }
  }
}

TEST(Scheme, SchemeRecoversActualData) {
  // Execute the scheme on real bytes: XOR each chain into its target and
  // compare with the original stripe.
  for (CodeId id : codes::kAllCodes) {
    const Layout l = codes::make_layout(id, 7);
    codes::StripeData pristine(l, 16);
    util::Rng rng(5);
    pristine.fill_random(rng);
    codes::encode(pristine);
    for (SchemeKind kind :
         {SchemeKind::HorizontalFirst, SchemeKind::RoundRobin,
          SchemeKind::GreedyMinIO}) {
      const PartialStripeError err{0, 1, 3};
      const RecoveryScheme s = generate_scheme(l, err, kind);
      codes::StripeData working = pristine;
      for (const Cell& c : err.cells()) {
        working.erase(c);
      }
      for (const RecoveryStep& step : s.steps) {
        auto out = working.chunk(step.target);
        std::fill(out.begin(), out.end(), std::byte{0});
        for (const Cell& c : l.chain(step.chain_id).cells) {
          if (c != step.target) {
            codes::xor_into(out, working.chunk(c));
          }
        }
      }
      for (const Cell& c : err.cells()) {
        const auto got = working.chunk(c);
        const auto want = pristine.chunk(c);
        EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
            << l.name() << " " << to_string(kind);
      }
    }
  }
}

TEST(Scheme, FetchCellsExcludeLostCells) {
  const Layout l = codes::make_layout(CodeId::Star, 5);
  const PartialStripeError err{0, 0, 4};
  const RecoveryScheme s = generate_scheme(l, err, SchemeKind::RoundRobin);
  const auto lost = err.cells();
  for (const Cell& c : s.fetch_cells) {
    EXPECT_EQ(std::find(lost.begin(), lost.end(), c), lost.end());
  }
}

TEST(Scheme, GreedyNeverFetchesMoreThanRoundRobin) {
  for (CodeId id : codes::kAllCodes) {
    const Layout l = codes::make_layout(id, 11);
    for (int len : {2, 5, 10}) {
      const PartialStripeError err{0, 0, len};
      const int greedy =
          generate_scheme(l, err, SchemeKind::GreedyMinIO).distinct_reads();
      const int rr =
          generate_scheme(l, err, SchemeKind::RoundRobin).distinct_reads();
      EXPECT_LE(greedy, rr) << l.name() << " len=" << len;
    }
  }
}

TEST(Scheme, ExhaustiveIsOptimalLowerBound) {
  // Branch-and-bound <= greedy <= (round-robin, horizontal) on distinct
  // reads, for every small error format on an adjuster-free layout.
  const Layout l = codes::make_layout(CodeId::TripleStar, 7);
  for (int col : {0, 3}) {
    for (int len = 1; len <= 5; ++len) {
      const PartialStripeError err{col, 0, len};
      const int exhaustive =
          generate_scheme(l, err, SchemeKind::ExhaustiveMinIO)
              .distinct_reads();
      const int greedy =
          generate_scheme(l, err, SchemeKind::GreedyMinIO).distinct_reads();
      const int rr =
          generate_scheme(l, err, SchemeKind::RoundRobin).distinct_reads();
      EXPECT_LE(exhaustive, greedy) << "col=" << col << " len=" << len;
      EXPECT_LE(exhaustive, rr);
    }
  }
}

TEST(Scheme, ExhaustiveProducesValidPeelingOrder) {
  const Layout l = codes::make_layout(CodeId::Tip, 7);
  const PartialStripeError err{0, 0, 5};
  const RecoveryScheme s =
      generate_scheme(l, err, SchemeKind::ExhaustiveMinIO);
  ASSERT_EQ(s.steps.size(), 5u);
  const std::vector<Cell> lost_cells = err.cells();
  std::set<Cell> not_yet(lost_cells.begin(), lost_cells.end());
  for (const RecoveryStep& step : s.steps) {
    for (const Cell& c : l.chain(step.chain_id).cells) {
      if (c != step.target) {
        EXPECT_EQ(not_yet.count(c), 0u);
      }
    }
    not_yet.erase(step.target);
  }
}

TEST(Scheme, ExhaustiveRecoversActualData) {
  const Layout l = codes::make_layout(CodeId::TripleStar, 5);
  codes::StripeData pristine(l, 16);
  util::Rng rng(8);
  pristine.fill_random(rng);
  codes::encode(pristine);
  const PartialStripeError err{0, 0, 4};
  const RecoveryScheme s =
      generate_scheme(l, err, SchemeKind::ExhaustiveMinIO);
  codes::StripeData working = pristine;
  for (const Cell& c : err.cells()) {
    working.erase(c);
  }
  for (const RecoveryStep& step : s.steps) {
    auto out = working.chunk(step.target);
    std::fill(out.begin(), out.end(), std::byte{0});
    for (const Cell& c : l.chain(step.chain_id).cells) {
      if (c != step.target) {
        codes::xor_into(out, working.chunk(c));
      }
    }
  }
  for (const Cell& c : err.cells()) {
    const auto got = working.chunk(c);
    const auto want = pristine.chunk(c);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
  }
}

TEST(Scheme, ExhaustiveRejectsOversizedSearch) {
  const Layout l = codes::make_layout(CodeId::Star, 13);
  EXPECT_THROW(generate_scheme(l, PartialStripeError{0, 0, 12},
                               SchemeKind::ExhaustiveMinIO),
               util::CheckError);
}

TEST(Scheme, ExhaustiveNameRoundTrip) {
  EXPECT_EQ(scheme_from_string("exhaustive"), SchemeKind::ExhaustiveMinIO);
  EXPECT_STREQ(to_string(SchemeKind::ExhaustiveMinIO), "exhaustive");
}

TEST(Scheme, RoundRobinSharesChunksOnMultiChunkErrors) {
  // The whole point of looping directions: fewer distinct reads than
  // total references once several chunks are lost.
  const Layout l = codes::make_layout(CodeId::TripleStar, 11);
  const PartialStripeError err{0, 0, 8};
  const RecoveryScheme s = generate_scheme(l, err, SchemeKind::RoundRobin);
  EXPECT_LT(s.distinct_reads(), s.total_references);
}

TEST(Scheme, ErrorOnParityColumnIsRecoverable) {
  for (CodeId id : codes::kAllCodes) {
    const Layout l = codes::make_layout(id, 5);
    for (int col = 0; col < l.cols(); ++col) {
      const PartialStripeError err{col, 0, 2};
      for (SchemeKind kind :
           {SchemeKind::HorizontalFirst, SchemeKind::RoundRobin,
            SchemeKind::GreedyMinIO}) {
        const RecoveryScheme s = generate_scheme(l, err, kind);
        EXPECT_EQ(s.steps.size(), 2u) << l.name() << " col=" << col;
      }
    }
  }
}

TEST(Scheme, RejectsInvalidErrors) {
  const Layout l = codes::make_layout(CodeId::Tip, 5);
  EXPECT_THROW(
      generate_scheme(l, PartialStripeError{0, 0, l.rows() + 1},
                      SchemeKind::RoundRobin),
      util::CheckError);
  EXPECT_THROW(generate_scheme(l, PartialStripeError{l.cols(), 0, 1},
                               SchemeKind::RoundRobin),
               util::CheckError);
  EXPECT_THROW(generate_scheme(l, PartialStripeError{0, 3, 2},
                               SchemeKind::RoundRobin),
               util::CheckError);
  EXPECT_THROW(generate_scheme(l, std::vector<Cell>{}, SchemeKind::RoundRobin),
               util::CheckError);
  EXPECT_THROW(generate_scheme(l, {cell(0, 0), cell(0, 0)},
                               SchemeKind::RoundRobin),
               util::CheckError);
}

TEST(Scheme, TotalReferencesMatchesChainSizes) {
  const Layout l = codes::make_layout(CodeId::Hdd1, 7);
  const RecoveryScheme s = generate_scheme(l, PartialStripeError{0, 0, 3},
                                           SchemeKind::RoundRobin);
  int expected = 0;
  for (const RecoveryStep& step : s.steps) {
    expected += static_cast<int>(l.chain(step.chain_id).cells.size()) - 1;
  }
  EXPECT_EQ(s.total_references, expected);
}

}  // namespace
}  // namespace fbf::recovery
