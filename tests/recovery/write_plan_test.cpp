// Property tests for the partial-stripe write planner (recovery/write_plan).
//
// Each randomized trial draws a code, a data-cell target, a cached set, and
// a decodable damaged set, then checks three properties:
//
//  1. Optimality — the chosen plan's I/O never exceeds the other feasible
//     candidate's, and ties go to RMW.
//  2. Byte replay — executing the plan's math using ONLY the sources it
//     listed (its reads plus the new target bytes) reproduces exactly the
//     parities of a full re-encode. This catches both wrong closures and
//     read sets that silently under-provision a strategy.
//  3. Degraded consistency — after applying the plan (damaged parities
//     skipped), erasing the damaged cells and running the GaussOnly oracle
//     decode reproduces the post-write truth bytes, i.e. skipping damaged
//     parities leaves the stripe recoverable and consistent.
#include "recovery/write_plan.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "codes/builders.h"
#include "codes/codec.h"
#include "util/rng.h"

namespace {

using namespace fbf;
using codes::Cell;
using recovery::WritePlan;
using recovery::WritePlanKind;

constexpr std::size_t kChunk = 96;  // odd stride: exercises the XOR tail loop

using Bytes = std::vector<std::byte>;

Bytes chunk_copy(const codes::StripeData& stripe, Cell c) {
  const auto s = stripe.chunk(c);
  return Bytes(s.begin(), s.end());
}

void xor_into(Bytes& acc, const Bytes& src) {
  for (std::size_t i = 0; i < acc.size(); ++i) {
    acc[i] ^= src[i];
  }
}

struct Trial {
  Cell target;
  std::vector<char> cached;   // by cell index
  std::vector<char> damaged;  // by cell index
  std::vector<Cell> damaged_cells;
};

// Draws a data-cell target, a ~30% cached set, and 0-3 damaged cells
// (never the target) forming a decodable erasure pattern.
Trial draw_trial(const codes::Layout& layout, util::Rng& rng) {
  Trial t;
  const int n = layout.num_cells();
  do {
    t.target = layout.cell_at(static_cast<int>(rng.uniform_int(0, n - 1)));
  } while (layout.kind(t.target) != codes::CellKind::Data);
  t.cached.assign(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    t.cached[static_cast<std::size_t>(i)] = rng.bernoulli(0.3) ? 1 : 0;
  }
  for (;;) {
    t.damaged.assign(static_cast<std::size_t>(n), 0);
    t.damaged_cells.clear();
    const int count = static_cast<int>(rng.uniform_int(0, 3));
    while (static_cast<int>(t.damaged_cells.size()) < count) {
      const int i = static_cast<int>(rng.uniform_int(0, n - 1));
      const Cell c = layout.cell_at(i);
      if (c == t.target || t.damaged[static_cast<std::size_t>(i)]) {
        continue;
      }
      t.damaged[static_cast<std::size_t>(i)] = 1;
      t.damaged_cells.push_back(c);
    }
    if (codes::erasure_decodable(layout, t.damaged_cells)) {
      return t;
    }
  }
}

// Replays `plan` against the pre-write stripe using only the plan's own
// read set. Returns the computed parity bytes by cell index (nullopt =
// value never became computable, legal only for damaged chains no later
// chain consumes). Fails the test if a non-damaged parity is uncomputable
// or a claimed read is not in the plan.
std::vector<std::optional<Bytes>> replay(const codes::Layout& layout,
                                         const WritePlan& plan,
                                         const codes::StripeData& before,
                                         const Bytes& new_target) {
  const std::size_t n = static_cast<std::size_t>(layout.num_cells());
  // Sources the plan paid for (cache reads are free but still listed).
  std::vector<std::optional<Bytes>> reads(n);
  for (const Cell& c : plan.disk_reads) {
    reads[static_cast<std::size_t>(layout.cell_index(c))] = chunk_copy(before, c);
  }
  for (const Cell& c : plan.cache_reads) {
    reads[static_cast<std::size_t>(layout.cell_index(c))] = chunk_copy(before, c);
  }
  std::vector<std::optional<Bytes>> out(n);
  if (plan.kind == WritePlanKind::Rmw) {
    // Delta propagation: every closure cell's delta is the XOR of its
    // chain's member deltas; unchanged members contribute zero.
    std::vector<std::optional<Bytes>> delta(n);
    const std::size_t ti = static_cast<std::size_t>(layout.cell_index(plan.target));
    if (plan.parity_writes() > 0) {
      EXPECT_TRUE(reads[ti].has_value())
          << "RMW with live parities must read the old target";
      if (!reads[ti].has_value()) {
        return out;
      }
      Bytes d = *reads[ti];
      xor_into(d, new_target);
      delta[ti] = std::move(d);
    }
    for (const recovery::ParityUpdate& u : plan.updates) {
      Bytes d(kChunk, std::byte{0});
      for (const Cell& m : layout.chain(u.chain_id).cells) {
        if (m == u.parity) {
          continue;
        }
        const auto& md = delta[static_cast<std::size_t>(layout.cell_index(m))];
        if (md.has_value()) {
          xor_into(d, *md);
        }
      }
      const std::size_t pi = static_cast<std::size_t>(layout.cell_index(u.parity));
      if (!u.damaged) {
        EXPECT_TRUE(reads[pi].has_value())
            << "RMW must read the old value of each live closure parity";
        if (reads[pi].has_value()) {
          Bytes v = *reads[pi];
          xor_into(v, d);
          out[pi] = std::move(v);
        }
      }
      delta[pi] = std::move(d);
    }
  } else if (plan.kind == WritePlanKind::Rcw) {
    // Value propagation: recompute each closure parity from member values;
    // a member is known if it is the target, a plan read, or an earlier
    // closure parity that was computable.
    std::vector<std::optional<Bytes>> known = reads;
    known[static_cast<std::size_t>(layout.cell_index(plan.target))] = new_target;
    for (const recovery::ParityUpdate& u : plan.updates) {
      Bytes v(kChunk, std::byte{0});
      bool complete = true;
      for (const Cell& m : layout.chain(u.chain_id).cells) {
        if (m == u.parity) {
          continue;
        }
        const auto& mv = known[static_cast<std::size_t>(layout.cell_index(m))];
        if (!mv.has_value()) {
          complete = false;
          break;
        }
        xor_into(v, *mv);
      }
      EXPECT_TRUE(complete || u.damaged)
          << "RCW read set must cover every live closure chain";
      const std::size_t pi = static_cast<std::size_t>(layout.cell_index(u.parity));
      if (complete) {
        known[pi] = v;
        if (!u.damaged) {
          out[pi] = std::move(v);
        }
      }
    }
  }
  return out;
}

class WritePlanProperty : public ::testing::TestWithParam<codes::CodeId> {};

TEST_P(WritePlanProperty, ChosenPlanIsMinimalAndBytesCorrect) {
  util::Rng rng(0xFB0F ^ static_cast<std::uint64_t>(GetParam()));
  for (const int p : {5, 7}) {
    const codes::Layout layout = codes::make_layout(GetParam(), p);
    codes::StripeData before(layout, kChunk);
    for (int trial = 0; trial < 40; ++trial) {
      before.fill_random(rng);
      codes::encode(before);
      const Trial t = draw_trial(layout, rng);
      const auto cached = [&](Cell c) {
        return t.cached[static_cast<std::size_t>(layout.cell_index(c))] != 0;
      };
      const auto damaged = [&](Cell c) {
        return t.damaged[static_cast<std::size_t>(layout.cell_index(c))] != 0;
      };

      const WritePlan rmw = recovery::plan_rmw(layout, t.target, cached, damaged);
      const WritePlan rcw = recovery::plan_rcw(layout, t.target, cached, damaged);
      const WritePlan chosen =
          recovery::plan_partial_stripe_write(layout, t.target, cached, damaged);

      // Both candidates agree on the closure (it is pure geometry + damage).
      ASSERT_EQ(rmw.updates.size(), rcw.updates.size());
      for (std::size_t i = 0; i < rmw.updates.size(); ++i) {
        EXPECT_EQ(rmw.updates[i].chain_id, rcw.updates[i].chain_id);
        EXPECT_EQ(rmw.updates[i].damaged, rcw.updates[i].damaged);
      }
      EXPECT_FALSE(rmw.updates.empty());  // every data cell sits in a chain

      // Property 1: minimal feasible choice, ties to RMW.
      if (rmw.feasible && rcw.feasible) {
        EXPECT_LE(chosen.io_count(), rmw.io_count());
        EXPECT_LE(chosen.io_count(), rcw.io_count());
        if (rmw.io_count() == rcw.io_count()) {
          EXPECT_EQ(chosen.kind, WritePlanKind::Rmw);
        }
      } else if (rmw.feasible) {
        EXPECT_EQ(chosen.kind, WritePlanKind::Rmw);
      } else if (rcw.feasible) {
        EXPECT_EQ(chosen.kind, WritePlanKind::Rcw);
      }
      if (!chosen.feasible) {
        continue;
      }

      // Truth: full re-encode with the new target bytes in place.
      Bytes new_target(kChunk);
      for (auto& b : new_target) {
        b = static_cast<std::byte>(rng.uniform_int(0, 255));
      }
      codes::StripeData truth = before;
      {
        const auto dst = truth.chunk(t.target);
        std::copy(new_target.begin(), new_target.end(), dst.begin());
      }
      codes::encode(truth);

      // Chains outside the closure must be untouched by the write.
      std::vector<char> in_closure(layout.chains().size(), 0);
      for (const recovery::ParityUpdate& u : chosen.updates) {
        in_closure[static_cast<std::size_t>(u.chain_id)] = 1;
      }
      for (const codes::Chain& chain : layout.chains()) {
        if (!in_closure[static_cast<std::size_t>(chain.id)]) {
          EXPECT_EQ(chunk_copy(truth, chain.parity_cell),
                    chunk_copy(before, chain.parity_cell))
              << "chain " << chain.id << " changed but is not in the closure";
        }
      }

      // Property 2: replay from the plan's own read set matches the truth.
      const auto computed = replay(layout, chosen, before, new_target);
      for (const recovery::ParityUpdate& u : chosen.updates) {
        const std::size_t pi =
            static_cast<std::size_t>(layout.cell_index(u.parity));
        if (u.damaged) {
          EXPECT_FALSE(computed[pi].has_value() &&
                       *computed[pi] != chunk_copy(truth, u.parity));
          continue;
        }
        ASSERT_TRUE(computed[pi].has_value());
        EXPECT_EQ(*computed[pi], chunk_copy(truth, u.parity))
            << to_string(chosen.kind) << " parity bytes diverge on chain "
            << u.chain_id;
      }

      // Property 3: apply the plan, erase the damage, oracle-decode — the
      // degraded stripe must come back as the post-write truth.
      codes::StripeData after = before;
      {
        const auto dst = after.chunk(t.target);
        std::copy(new_target.begin(), new_target.end(), dst.begin());
      }
      for (const recovery::ParityUpdate& u : chosen.updates) {
        if (u.damaged) {
          continue;
        }
        const std::size_t pi =
            static_cast<std::size_t>(layout.cell_index(u.parity));
        const auto dst = after.chunk(u.parity);
        std::copy(computed[pi]->begin(), computed[pi]->end(), dst.begin());
      }
      for (const Cell& c : t.damaged_cells) {
        after.erase(c);
      }
      const auto result = codes::decode_erasures(after, t.damaged_cells,
                                                 codes::DecodeMethod::GaussOnly);
      ASSERT_TRUE(result.ok);
      EXPECT_TRUE(codes::verify(after));
      for (int i = 0; i < layout.num_cells(); ++i) {
        const Cell c = layout.cell_at(i);
        EXPECT_EQ(chunk_copy(after, c), chunk_copy(truth, c))
            << "cell " << c.row << "," << c.col
            << " diverges after degraded write + decode";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodes, WritePlanProperty,
                         ::testing::ValuesIn(codes::kAllCodes),
                         [](const auto& info) {
                           return std::string(codes::to_string(info.param));
                         });

TEST(WritePlanTest, ParityTargetIsDirect) {
  const codes::Layout layout = codes::make_layout(codes::CodeId::Tip, 7);
  Cell parity{};
  for (int i = 0; i < layout.num_cells(); ++i) {
    if (layout.kind(layout.cell_at(i)) == codes::CellKind::Parity) {
      parity = layout.cell_at(i);
      break;
    }
  }
  const auto no = [](Cell) { return false; };
  const WritePlan plan =
      recovery::plan_partial_stripe_write(layout, parity, no, no);
  EXPECT_EQ(plan.kind, WritePlanKind::Direct);
  EXPECT_TRUE(plan.updates.empty());
  EXPECT_EQ(plan.io_count(), 0);
  EXPECT_TRUE(plan.feasible);
}

TEST(WritePlanTest, FullyCachedWriteCostsOnlyParityWrites) {
  const codes::Layout layout = codes::make_layout(codes::CodeId::Star, 5);
  const auto yes = [](Cell) { return true; };
  const auto no = [](Cell) { return false; };
  Cell data{};
  for (int i = 0; i < layout.num_cells(); ++i) {
    if (layout.kind(layout.cell_at(i)) == codes::CellKind::Data) {
      data = layout.cell_at(i);
      break;
    }
  }
  const WritePlan plan =
      recovery::plan_partial_stripe_write(layout, data, yes, no);
  EXPECT_TRUE(plan.feasible);
  EXPECT_TRUE(plan.disk_reads.empty());
  EXPECT_EQ(plan.io_count(), plan.parity_writes());
}

TEST(WritePlanTest, AllParitiesDamagedNeedsNoIo) {
  const codes::Layout layout = codes::make_layout(codes::CodeId::Star, 5);
  const auto no = [](Cell) { return false; };
  const auto parity_damaged = [&](Cell c) {
    return layout.kind(c) == codes::CellKind::Parity;
  };
  Cell data{};
  for (int i = 0; i < layout.num_cells(); ++i) {
    if (layout.kind(layout.cell_at(i)) == codes::CellKind::Data) {
      data = layout.cell_at(i);
      break;
    }
  }
  const WritePlan plan = recovery::plan_rmw(layout, data, no, parity_damaged);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.io_count(), 0);
  EXPECT_TRUE(plan.degraded());
  EXPECT_EQ(plan.parity_writes(), 0);
}

}  // namespace
