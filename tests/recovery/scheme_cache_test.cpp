#include "recovery/scheme_cache.h"

#include <gtest/gtest.h>

#include "codes/builders.h"

namespace fbf::recovery {
namespace {

using codes::CodeId;
using codes::Layout;

TEST(SchemeCache, FirstAccessMissesThenHits) {
  const Layout l = codes::make_layout(CodeId::Tip, 7);
  SchemeCache cache(l);
  const PartialStripeError err{0, 1, 3};
  const auto a = cache.get(err, SchemeKind::RoundRobin);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  const auto b = cache.get(err, SchemeKind::RoundRobin);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(a.get(), b.get());  // same shared scheme object
}

TEST(SchemeCache, DistinguishesErrorFormats) {
  const Layout l = codes::make_layout(CodeId::Tip, 7);
  SchemeCache cache(l);
  cache.get(PartialStripeError{0, 1, 3}, SchemeKind::RoundRobin);
  cache.get(PartialStripeError{0, 2, 3}, SchemeKind::RoundRobin);   // row
  cache.get(PartialStripeError{0, 1, 4}, SchemeKind::RoundRobin);   // len
  cache.get(PartialStripeError{1, 1, 3}, SchemeKind::RoundRobin);   // col
  cache.get(PartialStripeError{0, 1, 3}, SchemeKind::GreedyMinIO);  // kind
  EXPECT_EQ(cache.size(), 5u);
  EXPECT_EQ(cache.misses(), 5u);
}

TEST(SchemeCache, ReturnedSchemeMatchesDirectGeneration) {
  const Layout l = codes::make_layout(CodeId::Star, 7);
  SchemeCache cache(l);
  const PartialStripeError err{0, 0, 5};
  const auto cached = cache.get(err, SchemeKind::RoundRobin);
  const RecoveryScheme direct = generate_scheme(l, err, SchemeKind::RoundRobin);
  ASSERT_EQ(cached->steps.size(), direct.steps.size());
  for (std::size_t i = 0; i < direct.steps.size(); ++i) {
    EXPECT_EQ(cached->steps[i].target, direct.steps[i].target);
    EXPECT_EQ(cached->steps[i].chain_id, direct.steps[i].chain_id);
  }
  EXPECT_EQ(cached->priority, direct.priority);
}

TEST(SchemeCache, ManyStripesSameFormatAmortizeToOneGeneration) {
  // The paper's amortization argument: N stripes with the same error
  // format cost one generation.
  const Layout l = codes::make_layout(CodeId::TripleStar, 11);
  SchemeCache cache(l);
  for (int i = 0; i < 1000; ++i) {
    cache.get(PartialStripeError{0, 2, 4}, SchemeKind::RoundRobin);
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 999u);
}

}  // namespace
}  // namespace fbf::recovery
