#include "recovery/priority.h"

#include <gtest/gtest.h>

#include "codes/builders.h"
#include "util/check.h"

namespace fbf::recovery {
namespace {

using codes::CodeId;
using codes::Layout;

TEST(Priority, SummaryCountsMatchDictionary) {
  const Layout l = codes::make_layout(CodeId::TripleStar, 7);
  const RecoveryScheme s = generate_scheme(l, PartialStripeError{0, 0, 5},
                                           SchemeKind::RoundRobin);
  const PrioritySummary sum = summarize_priorities(s);
  int p1 = 0;
  int p2 = 0;
  int p3 = 0;
  for (std::uint8_t p : s.priority) {
    p1 += p == 1;
    p2 += p == 2;
    p3 += p == 3;
  }
  EXPECT_EQ(sum.priority1, p1);
  EXPECT_EQ(sum.priority2, p2);
  EXPECT_EQ(sum.priority3, p3);
  EXPECT_EQ(sum.total(), p1 + p2 + p3);
}

TEST(Priority, PriorityEqualsCappedReferenceCount) {
  // Recompute reference counts independently and compare (Table II).
  const Layout l = codes::make_layout(CodeId::Star, 7);
  const PartialStripeError err{0, 0, 6};
  const RecoveryScheme s = generate_scheme(l, err, SchemeKind::RoundRobin);
  std::vector<int> refs(static_cast<std::size_t>(l.num_cells()), 0);
  for (const RecoveryStep& step : s.steps) {
    for (const codes::Cell& c : l.chain(step.chain_id).cells) {
      if (c != step.target) {
        ++refs[static_cast<std::size_t>(l.cell_index(c))];
      }
    }
  }
  for (std::size_t i = 0; i < refs.size(); ++i) {
    if (refs[i] > 0) {
      EXPECT_EQ(s.priority[i], std::min(refs[i], 3));
    }
  }
}

TEST(Priority, MultiChunkRoundRobinProducesSharedChunks) {
  // The paper's Table III example has priority-2 and priority-3 chunks for
  // a 5-chunk error at P=7; our substitute layouts should likewise create
  // shared chunks under the round-robin scheme.
  const Layout l = codes::make_layout(CodeId::TripleStar, 7);
  const RecoveryScheme s = generate_scheme(l, PartialStripeError{0, 0, 5},
                                           SchemeKind::RoundRobin);
  const PrioritySummary sum = summarize_priorities(s);
  EXPECT_GT(sum.priority2 + sum.priority3, 0);
  EXPECT_GT(sum.priority1, 0);
}

TEST(Priority, SingleChunkErrorIsAllPriorityOne) {
  const Layout l = codes::make_layout(CodeId::Tip, 7);
  const RecoveryScheme s = generate_scheme(l, PartialStripeError{0, 2, 1},
                                           SchemeKind::RoundRobin);
  const PrioritySummary sum = summarize_priorities(s);
  EXPECT_EQ(sum.priority2, 0);
  EXPECT_EQ(sum.priority3, 0);
  EXPECT_GT(sum.priority1, 0);
}

TEST(Priority, StarAdjustersReachPriorityThree) {
  // STAR's adjuster cells sit on every diagonal chain; with >= 3 diagonal
  // steps selected they must reach the top priority (paper §IV-B-1).
  const Layout l = codes::make_layout(CodeId::Star, 11);
  const RecoveryScheme s = generate_scheme(l, PartialStripeError{0, 0, 10},
                                           SchemeKind::RoundRobin);
  const PrioritySummary sum = summarize_priorities(s);
  EXPECT_GT(sum.priority3, 0);
}

TEST(Priority, CellsAtPriorityPartitionTouchedCells) {
  const Layout l = codes::make_layout(CodeId::Hdd1, 7);
  const RecoveryScheme s = generate_scheme(l, PartialStripeError{0, 0, 4},
                                           SchemeKind::RoundRobin);
  std::size_t total = 0;
  for (int level = 1; level <= 3; ++level) {
    for (const codes::Cell& c : cells_at_priority(l, s, level)) {
      EXPECT_EQ(s.priority[static_cast<std::size_t>(l.cell_index(c))],
                level);
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(
                       summarize_priorities(s).total()));
  EXPECT_THROW(cells_at_priority(l, s, 0), util::CheckError);
  EXPECT_THROW(cells_at_priority(l, s, 4), util::CheckError);
}

TEST(Priority, TableRendersAllLevels) {
  const Layout l = codes::make_layout(CodeId::TripleStar, 7);
  const RecoveryScheme s = generate_scheme(l, PartialStripeError{0, 0, 5},
                                           SchemeKind::RoundRobin);
  const std::string table = priority_table(l, s);
  EXPECT_NE(table.find("priority 3"), std::string::npos);
  EXPECT_NE(table.find("priority 2"), std::string::npos);
  EXPECT_NE(table.find("priority 1"), std::string::npos);
  EXPECT_NE(table.find("C("), std::string::npos);
}

}  // namespace
}  // namespace fbf::recovery
