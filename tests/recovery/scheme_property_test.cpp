// Parameterized property sweep: every (code, p, strategy) generates valid,
// data-correct schemes for every single-column partial-stripe format.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "codes/builders.h"
#include "codes/codec.h"
#include "recovery/scheme.h"

namespace fbf::recovery {
namespace {

using codes::Cell;
using codes::CodeId;
using codes::Layout;

using Param = std::tuple<CodeId, int, SchemeKind>;

class SchemeProperty : public ::testing::TestWithParam<Param> {
 protected:
  CodeId code() const { return std::get<0>(GetParam()); }
  int p() const { return std::get<1>(GetParam()); }
  SchemeKind kind() const { return std::get<2>(GetParam()); }
};

TEST_P(SchemeProperty, EveryFormatProducesAValidPeelingOrder) {
  const Layout l = codes::make_layout(code(), p());
  for (int col = 0; col < l.cols(); ++col) {
    for (int len = 1; len <= l.rows(); ++len) {
      for (int start = 0; start + len <= l.rows(); start += 2) {
        const PartialStripeError err{col, start, len};
        const RecoveryScheme s = generate_scheme(l, err, kind());
        ASSERT_EQ(s.steps.size(), static_cast<std::size_t>(len));
        const std::vector<Cell> lost = err.cells();
        std::set<Cell> not_yet(lost.begin(), lost.end());
        for (const RecoveryStep& step : s.steps) {
          for (const Cell& c : l.chain(step.chain_id).cells) {
            if (c != step.target) {
              ASSERT_EQ(not_yet.count(c), 0u)
                  << l.name() << " col=" << col << " len=" << len;
            }
          }
          ASSERT_EQ(not_yet.erase(step.target), 1u);
        }
      }
    }
  }
}

TEST_P(SchemeProperty, SchemeXorReconstructsTheData) {
  const Layout l = codes::make_layout(code(), p());
  codes::StripeData pristine(l, 8);
  util::Rng rng(static_cast<std::uint64_t>(p()) * 1000 +
                static_cast<std::uint64_t>(code()));
  pristine.fill_random(rng);
  codes::encode(pristine);
  for (int col : {0, l.cols() / 2, l.cols() - 1}) {
    const PartialStripeError err{col, 0, l.rows()};
    const RecoveryScheme s = generate_scheme(l, err, kind());
    codes::StripeData working = pristine;
    for (const Cell& c : err.cells()) {
      working.erase(c);
    }
    for (const RecoveryStep& step : s.steps) {
      auto out = working.chunk(step.target);
      std::fill(out.begin(), out.end(), std::byte{0});
      for (const Cell& c : l.chain(step.chain_id).cells) {
        if (c != step.target) {
          codes::xor_into(out, working.chunk(c));
        }
      }
    }
    for (const Cell& c : err.cells()) {
      const auto got = working.chunk(c);
      const auto want = pristine.chunk(c);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin()))
          << l.name() << " col=" << col;
    }
  }
}

TEST_P(SchemeProperty, PrioritiesStayInTableTwoRange) {
  const Layout l = codes::make_layout(code(), p());
  const PartialStripeError err{0, 0, l.rows()};
  const RecoveryScheme s = generate_scheme(l, err, kind());
  for (std::uint8_t pr : s.priority) {
    ASSERT_LE(pr, 3);
  }
  // Every fetched cell has priority >= 1.
  for (const Cell& c : s.fetch_cells) {
    ASSERT_GE(s.priority[static_cast<std::size_t>(l.cell_index(c))], 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodesPrimesStrategies, SchemeProperty,
    ::testing::Combine(
        ::testing::Values(CodeId::Tip, CodeId::Hdd1, CodeId::TripleStar,
                          CodeId::Star),
        ::testing::Values(5, 7, 11),
        ::testing::Values(SchemeKind::HorizontalFirst, SchemeKind::RoundRobin,
                          SchemeKind::GreedyMinIO)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string kind;
      switch (std::get<2>(info.param)) {
        case SchemeKind::HorizontalFirst:
          kind = "horizontal";
          break;
        case SchemeKind::RoundRobin:
          kind = "roundrobin";
          break;
        case SchemeKind::GreedyMinIO:
          kind = "greedy";
          break;
        case SchemeKind::ExhaustiveMinIO:
          kind = "exhaustive";
          break;
      }
      return std::string(codes::to_string(std::get<0>(info.param))) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_" + kind;
    });

}  // namespace
}  // namespace fbf::recovery
