#include "util/rng.h"

#include <gtest/gtest.h>

#include "util/check.h"

#include <set>

namespace fbf::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 12);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 12);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(3, 2), CheckError);
}

TEST(Rng, Uniform01CoversUnitInterval) {
  Rng rng(11);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
  EXPECT_THROW(rng.bernoulli(1.5), CheckError);
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(5);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.bernoulli(0.5) ? 1 : 0;
  }
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.exponential(4.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.25);
}

TEST(Rng, ZipfUniformWhenSkewZero) {
  Rng rng(23);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::size_t v = rng.zipf(10, 0.0);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, ZipfSkewPrefersLowRanks) {
  Rng rng(29);
  int low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const std::size_t v = rng.zipf(1000, 0.99);
    EXPECT_LT(v, 1000u);
    if (v < 100) {
      ++low;
    }
  }
  // Under uniform sampling low ~ 10%; Zipf(0.99) concentrates far more.
  EXPECT_GT(low, n / 4);
}

TEST(Rng, FillBytesChangesBuffer) {
  Rng rng(31);
  std::vector<std::byte> buf(37, std::byte{0});
  rng.fill_bytes(buf);
  int nonzero = 0;
  for (std::byte b : buf) {
    if (b != std::byte{0}) {
      ++nonzero;
    }
  }
  EXPECT_GT(nonzero, 20);
}

TEST(Rng, FillBytesDeterministic) {
  Rng a(99);
  Rng b(99);
  std::vector<std::byte> ba(16);
  std::vector<std::byte> bb(16);
  a.fill_bytes(ba);
  b.fill_bytes(bb);
  EXPECT_EQ(ba, bb);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<std::size_t> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, IndexRejectsEmpty) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), CheckError);
}

}  // namespace
}  // namespace fbf::util
