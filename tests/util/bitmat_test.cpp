#include "util/bitmat.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fbf::util {
namespace {

TEST(BitMatrix, StartsZeroed) {
  BitMatrix m(3, 70);  // spans two words per row
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 70; ++c) {
      EXPECT_FALSE(m.get(r, c));
    }
  }
}

TEST(BitMatrix, SetGetFlip) {
  BitMatrix m(2, 130);
  m.set(1, 129, true);
  EXPECT_TRUE(m.get(1, 129));
  m.flip(1, 129);
  EXPECT_FALSE(m.get(1, 129));
  m.flip(0, 63);
  m.flip(0, 64);
  EXPECT_TRUE(m.get(0, 63));
  EXPECT_TRUE(m.get(0, 64));
}

TEST(BitMatrix, XorRows) {
  BitMatrix m(2, 8);
  m.set(0, 1, true);
  m.set(0, 3, true);
  m.set(1, 3, true);
  m.set(1, 5, true);
  m.xor_rows(0, 1);
  EXPECT_TRUE(m.get(0, 1));
  EXPECT_FALSE(m.get(0, 3));
  EXPECT_TRUE(m.get(0, 5));
  // Source row unchanged.
  EXPECT_TRUE(m.get(1, 3));
  EXPECT_TRUE(m.get(1, 5));
}

TEST(BitMatrix, IdentityHasFullRank) {
  BitMatrix m(5, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    m.set(i, i, true);
  }
  EXPECT_EQ(m.rank(), 5u);
  EXPECT_TRUE(m.full_column_rank());
}

TEST(BitMatrix, ZeroMatrixHasRankZero) {
  const BitMatrix m(4, 4);
  EXPECT_EQ(m.rank(), 0u);
}

TEST(BitMatrix, DuplicateRowsReduceRank) {
  BitMatrix m(3, 4);
  for (std::size_t c = 0; c < 4; ++c) {
    m.set(0, c, c % 2 == 0);
    m.set(1, c, c % 2 == 0);
  }
  m.set(2, 1, true);
  EXPECT_EQ(m.rank(), 2u);
  EXPECT_FALSE(m.full_column_rank());
}

TEST(BitMatrix, LinearlyDependentCombination) {
  // row2 = row0 xor row1 -> rank 2.
  BitMatrix m(3, 6);
  m.set(0, 0, true);
  m.set(0, 2, true);
  m.set(1, 2, true);
  m.set(1, 4, true);
  m.set(2, 0, true);
  m.set(2, 4, true);
  EXPECT_EQ(m.rank(), 2u);
}

TEST(BitMatrix, TallMatrixColumnRank) {
  // 6 equations, 3 unknowns, independent columns.
  BitMatrix m(6, 3);
  m.set(0, 0, true);
  m.set(1, 1, true);
  m.set(2, 2, true);
  m.set(3, 0, true);
  m.set(3, 1, true);
  m.set(4, 1, true);
  m.set(4, 2, true);
  m.set(5, 0, true);
  m.set(5, 2, true);
  EXPECT_TRUE(m.full_column_rank());
}

TEST(BitMatrix, RankIsCopySafe) {
  BitMatrix m(2, 2);
  m.set(0, 0, true);
  m.set(1, 1, true);
  EXPECT_EQ(m.rank(), 2u);
  // rank() must not mutate the matrix.
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_TRUE(m.get(1, 1));
  EXPECT_FALSE(m.get(0, 1));
  EXPECT_EQ(m.rank(), 2u);
}

TEST(BitMatrix, OutOfRangeThrows) {
  BitMatrix m(2, 2);
  EXPECT_THROW(m.get(2, 0), CheckError);
  EXPECT_THROW(m.set(0, 2, true), CheckError);
  EXPECT_THROW(m.xor_rows(0, 5), CheckError);
}

}  // namespace
}  // namespace fbf::util
