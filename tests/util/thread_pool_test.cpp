#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace fbf::util {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<int> hits(257, 0);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 257);
}

TEST(ThreadPool, ParallelForWritesDistinctSlots) {
  ThreadPool pool(4);
  std::vector<std::size_t> out(100, 0);
  parallel_for(pool, out.size(), [&out](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPool, ParallelForHandlesZeroAndOneIteration) {
  ThreadPool pool(4);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
  int calls = 0;
  parallel_for(pool, 1, [&calls](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForRunsEachIndexExactlyOnce) {
  // More iterations than threads, deliberately not a multiple of the chunk
  // size, each index counted atomically.
  ThreadPool pool(5);
  std::vector<std::atomic<int>> counts(1013);
  parallel_for(pool, counts.size(),
               [&counts](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ThrowingTaskSurfacesFromWaitIdle) {
  // Pre-fix, a throw escaped the worker thread and terminated the process;
  // it also skipped the in-flight decrement, deadlocking wait_idle.
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: the pool stays usable and the next wait is clean.
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, FirstOfManyExceptionsWins) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran] {
      ran.fetch_add(1);
      throw std::logic_error("boom");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  EXPECT_EQ(ran.load(), 16);  // later throws are dropped, not lost tasks
  pool.wait_idle();           // already consumed: no rethrow
}

}  // namespace
}  // namespace fbf::util
