#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

namespace fbf::util {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<int> hits(257, 0);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 257);
}

TEST(ThreadPool, ParallelForWritesDistinctSlots) {
  ThreadPool pool(4);
  std::vector<std::size_t> out(100, 0);
  parallel_for(pool, out.size(), [&out](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ThreadPool, ParallelForHandlesZeroAndOneIteration) {
  ThreadPool pool(4);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
  int calls = 0;
  parallel_for(pool, 1, [&calls](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForRunsEachIndexExactlyOnce) {
  // More iterations than threads, deliberately not a multiple of the chunk
  // size, each index counted atomically.
  ThreadPool pool(5);
  std::vector<std::atomic<int>> counts(1013);
  parallel_for(pool, counts.size(),
               [&counts](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ThrowingTaskSurfacesFromWaitIdle) {
  // Pre-fix, a throw escaped the worker thread and terminated the process;
  // it also skipped the in-flight decrement, deadlocking wait_idle.
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is consumed: the pool stays usable and the next wait is clean.
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(Task, SmallCallablesStayInline) {
  // The hot submitters must never box: parallel_for's chunk puller is four
  // words, and typical submit lambdas capture a pointer or two. Compile-
  // time pins so a capture added to the hot path fails here, not in perf.
  struct FourWords {
    void* a;
    void* b;
    std::size_t c;
    std::size_t d;
    void operator()() const {}
  };
  static_assert(Task::fits_inline<FourWords>());
  struct SixWords {
    void* p[6];
    void operator()() const {}
  };
  static_assert(Task::fits_inline<SixWords>());  // 48 bytes: the boundary
  struct SevenWords {
    void* p[7];
    void operator()() const {}
  };
  static_assert(!Task::fits_inline<SevenWords>());  // 56 bytes: boxed
}

TEST(Task, BoxedCallableRunsAndReleases) {
  // A capture bigger than the inline buffer takes the boxed path; it must
  // still run exactly once and free its box (ASan would flag a leak).
  ThreadPool pool(2);
  std::array<std::uint64_t, 16> payload{};  // 128 bytes: over the buffer
  static_assert(sizeof(payload) > Task::kInlineBytes);
  payload.fill(7);
  std::atomic<std::uint64_t> sum{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([payload, &sum] {
      std::uint64_t s = 0;
      for (std::uint64_t v : payload) {
        s += v;
      }
      sum.fetch_add(s);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 32u * 16u * 7u);
}

TEST(Task, MoveTransfersOwnershipOnce) {
  std::atomic<int> destroyed{0};
  struct CountsDestruction {
    std::atomic<int>* counter;
    bool owner = true;
    explicit CountsDestruction(std::atomic<int>* c) : counter(c) {}
    CountsDestruction(CountsDestruction&& o) noexcept
        : counter(o.counter), owner(o.owner) {
      o.owner = false;
    }
    CountsDestruction(const CountsDestruction&) = delete;
    ~CountsDestruction() {
      if (owner) {
        counter->fetch_add(1);
      }
    }
    void operator()() const {}
  };
  {
    Task a{CountsDestruction(&destroyed)};
    Task b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(static_cast<bool>(b));
    b();
  }
  EXPECT_EQ(destroyed.load(), 1);  // exactly one owning destruction
}

TEST(ThreadPool, BoxedThrowingTaskStillSurfacesAndFrees) {
  ThreadPool pool(2);
  std::array<char, 128> big{};
  pool.submit([big] {
    (void)big;
    throw std::runtime_error("boxed boom");
  });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
}

TEST(ThreadPool, FirstOfManyExceptionsWins) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran] {
      ran.fetch_add(1);
      throw std::logic_error("boom");
    });
  }
  EXPECT_THROW(pool.wait_idle(), std::logic_error);
  EXPECT_EQ(ran.load(), 16);  // later throws are dropped, not lost tasks
  pool.wait_idle();           // already consumed: no rethrow
}

}  // namespace
}  // namespace fbf::util
