#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/check.h"

namespace fbf::util {
namespace {

TEST(Format, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.0, 0), "3");
  EXPECT_EQ(fmt_double(-1.5, 1), "-1.5");
}

TEST(Format, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.1234), "12.34%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(Format, FmtBytes) {
  EXPECT_EQ(fmt_bytes(512), "512B");
  EXPECT_EQ(fmt_bytes(32 * 1024), "32KB");
  EXPECT_EQ(fmt_bytes(256ull << 20), "256MB");
  EXPECT_EQ(fmt_bytes(2048ull << 20), "2GB");
  EXPECT_EQ(fmt_bytes(1536), "1536B");  // non-multiple stays in bytes
}

TEST(Table, PrintsHeadersAndRows) {
  Table t("demo");
  t.headers({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"xxxx", "y", "zz"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("xxxx"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t;
  t.headers({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t;
  t.headers({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, NoHeadersStillPrints) {
  Table t;
  t.add_row({"p", "q"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("p"), std::string::npos);
}

}  // namespace
}  // namespace fbf::util
