#include "util/flags.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace fbf::util {
namespace {

Flags make(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  static std::vector<char*> argv;
  argv.clear();
  for (auto& s : storage) {
    argv.push_back(s.data());
  }
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsSyntax) {
  const Flags f = make({"--p=7", "--code=star"});
  EXPECT_EQ(f.get_int("p", 0), 7);
  EXPECT_EQ(f.get_string("code", ""), "star");
}

TEST(Flags, SpaceSyntax) {
  const Flags f = make({"--stripes", "128"});
  EXPECT_EQ(f.get_int("stripes", 0), 128);
}

TEST(Flags, BareBooleanFlag) {
  const Flags f = make({"--csv"});
  EXPECT_TRUE(f.get_bool("csv", false));
  EXPECT_TRUE(f.has("csv"));
  EXPECT_FALSE(f.has("other"));
}

TEST(Flags, Fallbacks) {
  const Flags f = make({});
  EXPECT_EQ(f.get_int("missing", 42), 42);
  EXPECT_EQ(f.get_string("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(f.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(f.get_bool("missing", false));
}

TEST(Flags, IntList) {
  const Flags f = make({"--p=5,7,11"});
  const auto v = f.get_int_list("p", {});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 5);
  EXPECT_EQ(v[2], 11);
}

TEST(Flags, StringList) {
  const Flags f = make({"--codes=tip,star"});
  const auto v = f.get_string_list("codes", {});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "tip");
  EXPECT_EQ(v[1], "star");
}

TEST(Flags, ListFallback) {
  const Flags f = make({});
  const auto v = f.get_int_list("p", {5, 7});
  ASSERT_EQ(v.size(), 2u);
}

TEST(Flags, Positional) {
  const Flags f = make({"pos1", "--k=v", "pos2"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "pos1");
  EXPECT_EQ(f.positional()[1], "pos2");
}

TEST(Flags, DoubleParsing) {
  const Flags f = make({"--ratio=0.25"});
  EXPECT_DOUBLE_EQ(f.get_double("ratio", 0.0), 0.25);
}

TEST(Flags, IntRejectsGarbage) {
  // Pre-fix, strtoll silently truncated "--errors=4oo" to 4.
  EXPECT_THROW(make({"--errors=4oo"}).get_int("errors", 0), CheckError);
  EXPECT_THROW(make({"--errors=12x"}).get_int("errors", 0), CheckError);
  EXPECT_THROW(make({"--errors="}).get_int("errors", 0), CheckError);
  EXPECT_THROW(make({"--errors=1.5"}).get_int("errors", 0), CheckError);
  EXPECT_THROW(make({"--errors=oo4"}).get_int("errors", 0), CheckError);
}

TEST(Flags, IntParsesNegatives) {
  EXPECT_EQ(make({"--error-col=-1"}).get_int("error-col", 0), -1);
}

TEST(Flags, DoubleRejectsGarbage) {
  EXPECT_THROW(make({"--ratio=0.2.5"}).get_double("ratio", 0.0), CheckError);
  EXPECT_THROW(make({"--ratio=abc"}).get_double("ratio", 0.0), CheckError);
  EXPECT_THROW(make({"--ratio="}).get_double("ratio", 0.0), CheckError);
}

TEST(Flags, DoubleAcceptsScientificAndNegative) {
  EXPECT_DOUBLE_EQ(make({"--x=1e3"}).get_double("x", 0.0), 1000.0);
  EXPECT_DOUBLE_EQ(make({"--x=-2.5"}).get_double("x", 0.0), -2.5);
}

TEST(Flags, BoolRejectsGarbage) {
  EXPECT_THROW(make({"--csv=maybe"}).get_bool("csv", false), CheckError);
  EXPECT_FALSE(make({"--csv=off"}).get_bool("csv", true));
  EXPECT_TRUE(make({"--csv=on"}).get_bool("csv", false));
}

TEST(Flags, IntListRejectsGarbageAndEmptyPieces) {
  EXPECT_THROW(make({"--p=5,7a,11"}).get_int_list("p", {}), CheckError);
  EXPECT_THROW(make({"--p=5,,11"}).get_int_list("p", {}), CheckError);
}

TEST(Flags, CheckKnownAcceptsDeclaredFlags) {
  const Flags f = make({"--errors=4", "--csv"});
  f.check_known({"errors", "csv", "seed"});
  SUCCEED();
}

TEST(Flags, CheckKnownRejectsTypos) {
  // Pre-fix, "--erorrs=800" was silently ignored and the run used the
  // default — the header even claimed otherwise.
  const Flags f = make({"--erorrs=800"});
  EXPECT_THROW(f.check_known({"errors", "csv", "seed"}), CheckError);
}

}  // namespace
}  // namespace fbf::util
