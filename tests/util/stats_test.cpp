#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace fbf::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator a;
  a.add(3.5);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);
  EXPECT_DOUBLE_EQ(a.min(), 3.5);
  EXPECT_DOUBLE_EQ(a.max(), 3.5);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    a.add(v);
  }
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 4.0, 1e-12);  // classic textbook data set
  EXPECT_NEAR(a.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accumulator, SumMatchesMeanTimesCount) {
  Accumulator a;
  double expected = 0.0;
  for (int i = 1; i <= 100; ++i) {
    a.add(static_cast<double>(i));
    expected += i;
  }
  EXPECT_NEAR(a.sum(), expected, 1e-9);
}

TEST(Accumulator, MergeEqualsSequential) {
  Accumulator left;
  Accumulator right;
  Accumulator all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0;
    (i % 2 == 0 ? left : right).add(v);
    all.add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a;
  a.add(1.0);
  a.add(2.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Accumulator, ThreeWayMergeGolden) {
  // Golden check with hand-computable moments: splits of {1..12} (one of
  // them empty) merged in sequence must equal the single-pass result.
  Accumulator first;   // 1..4
  Accumulator second;  // 5..12
  Accumulator empty;
  Accumulator all;
  for (int i = 1; i <= 12; ++i) {
    (i <= 4 ? first : second).add(static_cast<double>(i));
    all.add(static_cast<double>(i));
  }
  first.merge(empty);
  first.merge(second);
  EXPECT_EQ(first.count(), 12u);
  EXPECT_DOUBLE_EQ(first.mean(), 6.5);             // (1+..+12)/12
  EXPECT_NEAR(first.variance(), 143.0 / 12.0, 1e-12);
  EXPECT_DOUBLE_EQ(first.min(), 1.0);
  EXPECT_DOUBLE_EQ(first.max(), 12.0);
  EXPECT_NEAR(first.variance(), all.variance(), 1e-12);
  EXPECT_NEAR(first.sum(), all.sum(), 1e-9);
}

TEST(Reservoir, ExactWhenUnderCapacity) {
  Reservoir r(100);
  for (int i = 1; i <= 11; ++i) {
    r.add(static_cast<double>(i));
  }
  EXPECT_EQ(r.count(), 11u);
  EXPECT_DOUBLE_EQ(r.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile(0.5), 6.0);
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 11.0);
}

TEST(Reservoir, EmptyPercentileIsZero) {
  const Reservoir r(16);
  EXPECT_DOUBLE_EQ(r.percentile(0.5), 0.0);
}

TEST(Reservoir, InterpolatesBetweenSamples) {
  Reservoir r(16);
  r.add(0.0);
  r.add(10.0);
  EXPECT_DOUBLE_EQ(r.percentile(0.5), 5.0);
}

TEST(Reservoir, OverCapacityStaysBounded) {
  Reservoir r(64);
  for (int i = 0; i < 10000; ++i) {
    r.add(static_cast<double>(i % 100));
  }
  EXPECT_EQ(r.count(), 10000u);
  const double p50 = r.percentile(0.5);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 99.0);
}

TEST(Reservoir, RejectsBadQuantile) {
  Reservoir r(4);
  r.add(1.0);
  EXPECT_THROW(r.percentile(1.5), CheckError);
}

TEST(Reservoir, PercentileBoundaries) {
  // Regression anchor for the p99 export: linear interpolation over the
  // sorted samples, pos = q * (n - 1).
  Reservoir r(100);
  for (int i = 1; i <= 11; ++i) {
    r.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(r.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 11.0);
  EXPECT_DOUBLE_EQ(r.percentile(0.95), 10.5);  // pos 9.5 between 10 and 11
  EXPECT_DOUBLE_EQ(r.percentile(0.1), 2.0);
}

TEST(Reservoir, SameSeedSameSamples) {
  Reservoir a(8, 123);
  Reservoir b(8, 123);
  for (int i = 0; i < 1000; ++i) {
    a.add(static_cast<double>(i));
    b.add(static_cast<double>(i));
  }
  EXPECT_EQ(a.samples(), b.samples());
}

TEST(Reservoir, UniformRetentionAcrossStream) {
  // Algorithm R must retain every stream position with probability C/N.
  // The pre-fix scheme replaced slot ((seen * K) % seen) == 0 on every add,
  // so positions C..N-2 were never retained (and N-1 always was); this test
  // fails spectacularly on that scheme.
  constexpr std::size_t kCapacity = 16;
  constexpr int kStream = 256;
  constexpr int kTrials = 2000;
  std::vector<int> retained(kStream, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    Reservoir r(kCapacity, static_cast<std::uint64_t>(trial) + 1);
    for (int i = 0; i < kStream; ++i) {
      r.add(static_cast<double>(i));  // value encodes stream position
    }
    for (double v : r.samples()) {
      ++retained[static_cast<std::size_t>(v)];
    }
  }
  // Every trial keeps exactly kCapacity samples.
  int total = 0;
  for (int c : retained) {
    total += c;
  }
  EXPECT_EQ(total, kTrials * static_cast<int>(kCapacity));
  // Per-position retention is Binomial(kTrials, C/N): mean 125, sd ~10.8.
  // [60, 190] is ~6 sigma — astronomically unlikely to trip by chance,
  // certain to trip on the biased scheme (0 and 2000 both occur there).
  for (int i = 0; i < kStream; ++i) {
    EXPECT_GE(retained[static_cast<std::size_t>(i)], 60) << "position " << i;
    EXPECT_LE(retained[static_cast<std::size_t>(i)], 190) << "position " << i;
  }
}

}  // namespace
}  // namespace fbf::util
