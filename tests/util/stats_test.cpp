#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace fbf::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator a;
  a.add(3.5);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.5);
  EXPECT_DOUBLE_EQ(a.min(), 3.5);
  EXPECT_DOUBLE_EQ(a.max(), 3.5);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator a;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    a.add(v);
  }
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 4.0, 1e-12);  // classic textbook data set
  EXPECT_NEAR(a.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accumulator, SumMatchesMeanTimesCount) {
  Accumulator a;
  double expected = 0.0;
  for (int i = 1; i <= 100; ++i) {
    a.add(static_cast<double>(i));
    expected += i;
  }
  EXPECT_NEAR(a.sum(), expected, 1e-9);
}

TEST(Accumulator, MergeEqualsSequential) {
  Accumulator left;
  Accumulator right;
  Accumulator all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10.0;
    (i % 2 == 0 ? left : right).add(v);
    all.add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a;
  a.add(1.0);
  a.add(2.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Reservoir, ExactWhenUnderCapacity) {
  Reservoir r(100);
  for (int i = 1; i <= 11; ++i) {
    r.add(static_cast<double>(i));
  }
  EXPECT_EQ(r.count(), 11u);
  EXPECT_DOUBLE_EQ(r.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile(0.5), 6.0);
  EXPECT_DOUBLE_EQ(r.percentile(1.0), 11.0);
}

TEST(Reservoir, EmptyPercentileIsZero) {
  const Reservoir r(16);
  EXPECT_DOUBLE_EQ(r.percentile(0.5), 0.0);
}

TEST(Reservoir, InterpolatesBetweenSamples) {
  Reservoir r(16);
  r.add(0.0);
  r.add(10.0);
  EXPECT_DOUBLE_EQ(r.percentile(0.5), 5.0);
}

TEST(Reservoir, OverCapacityStaysBounded) {
  Reservoir r(64);
  for (int i = 0; i < 10000; ++i) {
    r.add(static_cast<double>(i % 100));
  }
  EXPECT_EQ(r.count(), 10000u);
  const double p50 = r.percentile(0.5);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 99.0);
}

TEST(Reservoir, RejectsBadQuantile) {
  Reservoir r(4);
  r.add(1.0);
  EXPECT_THROW(r.percentile(1.5), CheckError);
}

}  // namespace
}  // namespace fbf::util
