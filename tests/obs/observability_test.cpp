// Tests for the observability layer: JSON parse/format, histogram
// bucketing, registry exports, trace recording, and the end-to-end
// determinism contract (same seed -> byte-identical metrics JSON apart
// from the wall_clock block).
#include <gtest/gtest.h>

#include <sstream>

#include "codes/builders.h"
#include "core/experiment.h"
#include "obs/json.h"
#include "obs/observer.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/dor_engine.h"
#include "util/check.h"
#include "workload/errors.h"

namespace fbf::obs {
namespace {

// ---- JSON ----

TEST(Json, EscapeControlAndQuotes) {
  EXPECT_EQ(json::escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json::escape("tab\there"), "tab\\there");
  EXPECT_EQ(json::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, NumberIsShortestRoundTrip) {
  EXPECT_EQ(json::number(0.5), "0.5");
  EXPECT_EQ(json::number(3.0), "3");
  EXPECT_EQ(json::number(-1.25), "-1.25");
}

TEST(Json, ParsesScalarsAndContainers) {
  const json::Value v = json::parse(
      R"({"a": 1.5, "b": [true, null, "x\"y"], "c": {"nested": -2}})");
  ASSERT_TRUE(v.is_object());
  const auto& obj = v.as_object();
  EXPECT_DOUBLE_EQ(obj.at("a").as_number(), 1.5);
  const auto& arr = obj.at("b").as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_TRUE(arr[1].is_null());
  EXPECT_EQ(arr[2].as_string(), "x\"y");
  EXPECT_DOUBLE_EQ(obj.at("c").as_object().at("nested").as_number(), -2.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), util::CheckError);
  EXPECT_THROW(json::parse("[1,]"), util::CheckError);
  EXPECT_THROW(json::parse("{} trailing"), util::CheckError);
  EXPECT_THROW(json::parse("nul"), util::CheckError);
}

TEST(Json, EqualityIsOrderInsensitiveForObjects) {
  EXPECT_EQ(json::parse(R"({"a":1,"b":2})"), json::parse(R"({"b":2,"a":1})"));
  EXPECT_FALSE(json::parse("[1,2]") == json::parse("[2,1]"));
}

// ---- Histogram ----

TEST(Histogram, BucketBoundaries) {
  Histogram h;
  h.add(1.0);   // [1,2) -> exp 0
  h.add(1.5);   // exp 0
  h.add(0.75);  // [0.5,1) -> exp -1
  h.add(8.0);   // exp 3
  h.add(0.0);   // nonpositive
  h.add(-3.0);  // nonpositive
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.nonpositive(), 2u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(-1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(5), 0u);
  EXPECT_DOUBLE_EQ(h.min(), -3.0);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
}

TEST(Histogram, MergeAddsEverything) {
  Histogram a;
  a.add(1.0);
  a.add(0.25);
  Histogram b;
  b.add(4.0);
  b.add(-1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.nonpositive(), 1u);
  EXPECT_EQ(a.bucket(0), 1u);
  EXPECT_EQ(a.bucket(-2), 1u);
  EXPECT_EQ(a.bucket(2), 1u);
  EXPECT_DOUBLE_EQ(a.min(), -1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
}

TEST(Histogram, EmptyIsAllZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  int visited = 0;
  h.for_each_bucket([&](int, std::uint64_t) { ++visited; });
  EXPECT_EQ(visited, 0);
}

// ---- Registry ----

TEST(Registry, CountersGaugesHistograms) {
  Registry reg;
  reg.add_counter("x", 2);
  reg.add_counter("x", 3);
  reg.set_gauge("g", 1.5);
  reg.observe("h", 2.0);
  EXPECT_EQ(reg.counter("x"), 5u);
  EXPECT_EQ(reg.counter("absent"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("g"), 1.5);
  EXPECT_TRUE(reg.has_gauge("g"));
  EXPECT_FALSE(reg.has_gauge("absent"));
  EXPECT_EQ(reg.histogram("h").count(), 1u);
}

TEST(Registry, SnapshotsAreSorted) {
  Registry reg;
  reg.add_counter("zeta", 1);
  reg.add_counter("alpha", 1);
  const auto snap = reg.counters_snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap.begin()->first, "alpha");
}

// ---- RunObserver + engine integration ----

core::ExperimentConfig small_experiment() {
  core::ExperimentConfig cfg;
  cfg.code = codes::CodeId::Tip;
  cfg.p = 5;
  cfg.num_errors = 10;
  cfg.num_stripes = 10000;
  cfg.workers = 4;
  cfg.cache_bytes = 2ull << 20;
  return cfg;
}

TEST(RunObserver, MetricsJsonIsDeterministicAcrossRuns) {
  // The acceptance bar for the whole exporter: two same-seed runs must
  // produce byte-identical documents outside the wall_clock block.
  std::string docs[2];
  for (auto& doc : docs) {
    RunObserver obs;
    core::ExperimentConfig cfg = small_experiment();
    cfg.obs = &obs;
    core::run_experiment(cfg);
    doc = obs.metrics_json(/*include_wall=*/false);
  }
  EXPECT_EQ(docs[0], docs[1]);
}

TEST(RunObserver, RecordRunExportSatisfiesConservationLaws) {
  RunObserver obs;
  core::ExperimentConfig cfg = small_experiment();
  cfg.obs = &obs;
  core::run_experiment(cfg);

  const json::Value doc = json::parse(obs.metrics_json());
  const auto& root = doc.as_object();
  EXPECT_EQ(root.at("schema").as_string(), "fbf.metrics.v1");
  const auto& counters = root.at("counters").as_object();
  const auto counter = [&](const char* name) {
    return static_cast<std::uint64_t>(counters.at(name).as_number());
  };
  EXPECT_EQ(counter("run.count"), 1u);
  EXPECT_EQ(counter("run.cache_hits") + counter("run.cache_misses"),
            counter("run.total_chunk_requests"));
  EXPECT_EQ(counter("run.disk_reads"),
            counter("run.planned_disk_reads") + counter("run.cache_misses"));
  EXPECT_EQ(counter("run.disk_writes"), counter("run.chunks_recovered"));

  // The per-run label carries the response distribution and gauges.
  const std::string label = core::obs_run_label(cfg);
  EXPECT_TRUE(root.at("gauges").as_object().count(label + ".hit_ratio") > 0);
  const auto& hist =
      root.at("histograms").as_object().at(label + ".response_ms").as_object();
  const auto& buckets = hist.at("log2_buckets").as_object();
  std::uint64_t in_buckets = 0;
  for (const auto& [exp, c] : buckets) {
    in_buckets += static_cast<std::uint64_t>(c.as_number());
  }
  EXPECT_EQ(static_cast<std::uint64_t>(hist.at("count").as_number()),
            static_cast<std::uint64_t>(hist.at("nonpositive").as_number()) +
                in_buckets);
  EXPECT_EQ(static_cast<std::uint64_t>(hist.at("count").as_number()),
            counter("run.total_chunk_requests"));
}

TEST(RunObserver, TraceRecordsEngineSpans) {
  RunObserver obs(TraceLevel::Fine);
  core::ExperimentConfig cfg = small_experiment();
  cfg.obs = &obs;
  core::run_experiment(cfg);

  std::ostringstream os;
  obs.trace().write_json(os);
  const json::Value doc = json::parse(os.str());
  const auto& events = doc.as_object().at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  bool saw_stripe = false;
  bool saw_spare_write = false;
  bool saw_disk_read = false;
  for (const json::Value& ev : events) {
    const auto& e = ev.as_object();
    ASSERT_TRUE(e.count("name") && e.count("ph") && e.count("pid") &&
                e.count("tid"));
    if (e.at("ph").as_string() == "X") {
      ASSERT_TRUE(e.count("ts") && e.count("dur"));
    }
    const std::string& name = e.at("name").as_string();
    saw_stripe |= name == "stripe";
    saw_spare_write |= name == "spare_write";
    saw_disk_read |= name == "disk_read";
  }
  EXPECT_TRUE(saw_stripe);
  EXPECT_TRUE(saw_spare_write);
  EXPECT_TRUE(saw_disk_read);
}

TEST(RunObserver, PhasesLevelSkipsFineSpans) {
  RunObserver obs(TraceLevel::Phases);
  core::ExperimentConfig cfg = small_experiment();
  cfg.obs = &obs;
  core::run_experiment(cfg);
  std::ostringstream os;
  obs.trace().write_json(os);
  const json::Value doc = json::parse(os.str());
  const auto& events = doc.as_object().at("traceEvents").as_array();
  for (const json::Value& ev : events) {
    EXPECT_NE(ev.as_object().at("name").as_string(), "disk_read");
  }
}

TEST(RunObserver, PhaseTimerAccumulatesWallTime) {
  RunObserver obs(TraceLevel::Phases);
  {
    PhaseTimer t(&obs, "unit_test_phase");
  }
  {
    PhaseTimer t(&obs, "unit_test_phase");
  }
  EXPECT_GE(obs.wall("phase.unit_test_phase_ms"), 0.0);
  EXPECT_EQ(obs.trace().size(), 2u);
  // The wall block is present in the full document and absent otherwise.
  EXPECT_NE(obs.metrics_json(true).find("wall_clock"), std::string::npos);
  EXPECT_EQ(obs.metrics_json(false).find("wall_clock"), std::string::npos);
}

TEST(RunObserver, DorEngineExportsUnderItsLabel) {
  const codes::Layout l = codes::make_layout(codes::CodeId::Tip, 5);
  const sim::ArrayGeometry g(l, 10000, true, sim::SparePlacement::Distributed);
  workload::ErrorTraceConfig tc;
  tc.num_stripes = 10000;
  tc.num_errors = 8;
  tc.target_col = 0;
  tc.seed = 5;
  const auto errors = workload::generate_error_trace(l, tc);

  RunObserver obs(TraceLevel::Fine);
  sim::DorConfig cfg;
  cfg.cache_bytes = 64 * 32 * 1024;
  cfg.chunk_bytes = 32 * 1024;
  cfg.seed = 11;
  cfg.observer = &obs;
  sim::DorEngine engine(l, g, cfg);
  const sim::SimMetrics m = engine.run(errors);

  EXPECT_EQ(obs.registry().counter("run.count"), 1u);
  EXPECT_EQ(obs.registry().counter("run.disk_reads"), m.disk_reads);
  EXPECT_TRUE(obs.registry().has_gauge("run.dor.hit_ratio"));
  EXPECT_EQ(obs.registry().histogram("run.dor.response_ms").count(),
            m.disk_reads);  // one response sample per physical read
  EXPECT_GE(obs.wall("phase.dor_plan_ms"), 0.0);
  EXPECT_GT(obs.trace().size(), 0u);
}

TEST(RunObserver, TraceCapCountsDroppedEvents) {
  RunObserver obs(
      RunObserver::Options{"", "", TraceLevel::Phases, /*max_trace_events=*/2});
  for (int i = 0; i < 5; ++i) {
    obs.trace().duration(kPidSim, 0, "span", "test", i * 10.0, 5.0);
  }
  EXPECT_EQ(obs.trace().size(), 2u);
  EXPECT_EQ(obs.trace().dropped(), 3u);
  std::ostringstream os;
  obs.trace().write_json(os);
  EXPECT_NE(os.str().find("dropped"), std::string::npos);
}

}  // namespace
}  // namespace fbf::obs
