// Extension: the partial-stripe write path. Sweeps the write share of a
// fixed foreground workload on both engines and, per point, contrasts the
// legacy synchronous-RMW path against the planner + write-back cache
// (sim/foreground.h, recovery/write_plan.h). The sanity trend should be
// monotone down each engine block: plan counts, parity updates, and dirty
// installs all grow with the write fraction.
// Every point is a pure function of the flags, so two invocations print
// byte-identical tables (ci/tier1.sh write_smoke diffs same-seed runs).
//
// Extra flags on top of the common set (bench_common.h):
//   --write-fracs=a,b,c  write share axis of the app trace (see below)
//   --app-* / --write-*  traffic shape and cache knobs (core/app_flags.h);
//                        defaults here give 600 requests, 64 dirty lines,
//                        half the writes re-targeting recent writes
//
// Reference run committed as BENCH_write_sweep.csv (see EXPERIMENTS.md):
//   ./bench_ext_write_sweep --errors=120 --workers=16 --csv
#include "bench_common.h"
#include "core/app_flags.h"

int main(int argc, char** argv) {
  using namespace fbf;
  std::vector<std::string_view> extra{"write-fracs"};
  const auto& app_names = core::app_flag_names();
  extra.insert(extra.end(), app_names.begin(), app_names.end());
  const util::Flags flags(argc, argv);
  const bench::BenchOptions opt = bench::parse_options(argc, argv, {7}, extra);

  const core::AppFlagValues app = core::parse_app_flags(flags);
  const int app_requests = app.requests > 0 ? app.requests : 600;
  const double interarrival = flags.get_double("app-interarrival-ms", 5.0);
  const std::size_t cache_chunks =
      app.write_cache_chunks > 0 ? app.write_cache_chunks : 64;
  const double rewrite = flags.has("app-rewrite-fraction")
                             ? app.rewrite_fraction
                             : 0.5;
  const std::vector<double> write_fracs =
      flags.get_double_list("write-fracs", {0.1, 0.3, 0.5, 0.7, 0.9});

  std::cout << "=== Extension: partial-stripe write sweep (TIP, P="
            << opt.primes.front() << ", FBF, " << app_requests << " reqs @ "
            << util::fmt_double(interarrival, 1) << " ms, "
            << cache_chunks << " dirty lines) ===\n\n";
  util::Table table("legacy RMW vs planned write-back across write shares");
  table.headers({"engine", "write frac", "legacy app avg (ms)",
                 "planned app avg (ms)", "rmw/rcw", "parity updates",
                 "plan reads", "dirty installed", "write-backs",
                 "write hit ratio"});
  int point = 0;
  for (core::EngineKind engine :
       {core::EngineKind::Sor, core::EngineKind::Dor}) {
    for (double frac : write_fracs) {
      core::ExperimentConfig cfg =
          bench::base_config(opt, codes::CodeId::Tip, opt.primes.front());
      cfg.engine = engine;
      cfg.cache_bytes = 64ull << 20;
      cfg.policy = cache::PolicyId::Fbf;
      cfg.app_requests = app_requests;
      cfg.app_mean_interarrival_ms = interarrival;
      cfg.app_read_fraction = 1.0 - frac;
      cfg.app_rewrite_fraction = rewrite;
      // Grid points share (code, p, policy, cache); keep labels disjoint.
      cfg.obs_suffix = ".wlegacy" + std::to_string(point);
      const core::ExperimentResult legacy = core::run_experiment(cfg);

      cfg.write_cache_chunks = cache_chunks;
      cfg.write_flush_ms = app.write_flush_ms;
      cfg.write_retain_favorable = app.write_retain_favorable;
      cfg.obs_suffix = ".wplan" + std::to_string(point++);
      const core::ExperimentResult r = core::run_experiment(cfg);

      const std::uint64_t probes = r.write.write_hits + r.write.write_misses;
      table.add_row(
          {engine == core::EngineKind::Sor ? "sor" : "dor",
           util::fmt_double(frac, 1),
           util::fmt_double(legacy.app_avg_response_ms),
           util::fmt_double(r.app_avg_response_ms),
           std::to_string(r.write.rmw_plans) + "/" +
               std::to_string(r.write.rcw_plans),
           std::to_string(r.write.parity_updates),
           std::to_string(r.write.plan_disk_reads),
           std::to_string(r.write.dirty_installed),
           std::to_string(r.write.write_backs),
           probes == 0 ? "-"
                       : util::fmt_percent(
                             static_cast<double>(r.write.write_hits) /
                             static_cast<double>(probes))});
    }
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nReading down each engine block: a larger write share "
              "means more parity-update plans, so plan counts, parity "
              "updates, and dirty installs climb monotonically. The planned "
              "column wins big at write-heavy mixes (rewrites are absorbed "
              "as dirty-line restamps instead of repeating the RMW); at "
              "mid shares the deferred write-backs contend with recovery "
              "reads and the two paths trade within a stripe width.\n";
  return 0;
}
