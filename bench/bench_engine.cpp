// Engine-core macro benchmark: raw event-loop throughput of both
// simulator spines (SOR and DOR), measured as recovered stripes per
// wall-clock second and popped events per wall-clock second. This is the
// harness behind BENCH_engine.json — it deliberately bypasses the
// experiment layer and times ReconstructionEngine/DorEngine::run()
// directly, so queue sharding, scheme memoization, and batched XOR
// dispatch show up undiluted by trace generation or report printing.
//
// Flags:
//   --engine=sor,dor   engines to time (default both)
//   --p=a,b,c          primes / array sizes (default 7,11,17)
//   --errors=N         damaged stripes per run (default 100000)
//   --workers=N        SOR worker processes (default 128)
//   --cache-mb=N       buffer cache size in MB (default 64)
//   --reps=N           timed repetitions; best wall is reported (default 3)
//   --seed=N           workload seed (default 42)
//   --csv              CSV instead of aligned text
//   --json-out=F       write the measured series as JSON
#include <chrono>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "codes/builders.h"
#include "sim/array_geometry.h"
#include "sim/dor_engine.h"
#include "sim/reconstruction.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/errors.h"

namespace {

struct Row {
  std::string engine;
  int p = 0;
  int errors = 0;
  std::uint64_t stripes = 0;
  std::uint64_t events = 0;
  double wall_ms = 0.0;  ///< best of --reps
  double stripes_per_sec() const { return 1e3 * double(stripes) / wall_ms; }
  double events_per_sec() const { return 1e3 * double(events) / wall_ms; }
  /// Binaries predating SimMetrics::engine_events (the seed baseline this
  /// bench is diffed against) report 0 processed events. A real run always
  /// processes at least one event per stripe, so 0 means "counter absent",
  /// and the JSON emits null rather than a fake zero rate.
  bool events_known() const { return events != 0; }
};

template <typename RunFn>
Row time_engine(const std::string& name, int p, int errors, int reps,
                RunFn run) {
  Row row;
  row.engine = name;
  row.p = p;
  row.errors = errors;
  row.wall_ms = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    const fbf::sim::SimMetrics m = run();
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    FBF_CHECK(m.stripes_recovered == std::uint64_t(errors),
              "engine dropped stripes");
    row.stripes = m.stripes_recovered;
    row.events = m.engine_events;
    row.wall_ms = std::min(row.wall_ms, ms);
  }
  return row;
}

void write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  FBF_CHECK(out.good(), "cannot open --json-out file " + path);
  out << "{\n  \"description\": \"wall_ms is the best of the requested reps; "
         "stripes_per_sec = stripes/wall. events counts processed simulator "
         "events (engine_events); null means the binary under test predates "
         "the counter, not an event-free run\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"engine\": \"" << r.engine << "\", \"p\": " << r.p
        << ", \"errors\": " << r.errors << ", \"stripes\": " << r.stripes
        << ", \"events\": ";
    if (r.events_known()) {
      out << r.events;
    } else {
      out << "null";
    }
    out << ", \"wall_ms\": " << fbf::util::fmt_double(r.wall_ms, 3)
        << ", \"stripes_per_sec\": "
        << fbf::util::fmt_double(r.stripes_per_sec(), 1)
        << ", \"events_per_sec\": ";
    if (r.events_known()) {
      out << fbf::util::fmt_double(r.events_per_sec(), 1);
    } else {
      out << "null";
    }
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fbf;
  const util::Flags flags(argc, argv);
  flags.check_known({"engine", "p", "errors", "workers", "cache-mb", "reps",
                     "seed", "csv", "json-out"});

  const std::vector<std::string> engines =
      flags.get_string_list("engine", {"sor", "dor"});
  const int errors = static_cast<int>(flags.get_int("errors", 100000));
  const int workers = static_cast<int>(flags.get_int("workers", 128));
  const std::size_t cache_bytes =
      static_cast<std::size_t>(flags.get_int("cache-mb", 64)) << 20;
  const int reps = static_cast<int>(flags.get_int("reps", 3));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const bool csv = flags.get_bool("csv", false);
  const std::string json_out = flags.get_string("json-out", "");
  FBF_CHECK(reps >= 1, "--reps must be >= 1");

  std::vector<Row> rows;
  for (std::int64_t p64 : flags.get_int_list("p", {7, 11, 17})) {
    const int p = static_cast<int>(p64);
    const codes::Layout l = codes::make_layout(codes::CodeId::Tip, p);
    const std::uint64_t num_stripes =
        std::max<std::uint64_t>(1u << 20, 4ull * std::uint64_t(errors));
    const sim::ArrayGeometry g(l, num_stripes, true,
                               sim::SparePlacement::Distributed);
    workload::ErrorTraceConfig tc;
    tc.num_stripes = num_stripes;
    tc.num_errors = errors;
    tc.target_col = 0;
    tc.seed = seed;
    const auto trace = workload::generate_error_trace(l, tc);

    for (const std::string& engine : engines) {
      if (engine == "sor") {
        sim::ReconstructionConfig cfg;
        cfg.workers = workers;
        cfg.cache_bytes = cache_bytes;
        cfg.seed = seed;
        rows.push_back(time_engine("sor", p, errors, reps, [&] {
          sim::ReconstructionEngine e(l, g, cfg);
          return e.run(trace);
        }));
      } else if (engine == "dor") {
        sim::DorConfig cfg;
        cfg.cache_bytes = cache_bytes;
        cfg.seed = seed;
        rows.push_back(time_engine("dor", p, errors, reps, [&] {
          sim::DorEngine e(l, g, cfg);
          return e.run(trace);
        }));
      } else {
        FBF_CHECK(false, "--engine must list sor and/or dor, got " + engine);
      }
    }
  }

  util::Table table("Engine-core throughput (best of " +
                    std::to_string(reps) + " reps)");
  table.headers({"engine", "p", "errors", "events", "wall_ms", "stripes/s",
                 "events/s"});
  for (const Row& r : rows) {
    table.add_row({r.engine, std::to_string(r.p), std::to_string(r.errors),
                   r.events_known() ? std::to_string(r.events) : "-",
                   util::fmt_double(r.wall_ms, 1),
                   util::fmt_double(r.stripes_per_sec(), 0),
                   r.events_known() ? util::fmt_double(r.events_per_sec(), 0)
                                    : "-"});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (!json_out.empty()) {
    write_json(json_out, rows);
  }
  return 0;
}
