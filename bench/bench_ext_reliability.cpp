// Extension: what the cache policy buys in reliability. Feeds each
// policy's measured reconstruction time (TIP, paper defaults) into the
// birth-death MTTDL model — the paper's §I motivation ("partial stripe
// errors ... contribute to the excessive MTTDL"; faster recovery "narrows
// the window of vulnerability") made quantitative.
#include "bench_common.h"
#include "core/reliability.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const bench::BenchOptions opt =
      bench::parse_options(argc, argv, {13}, {"scale-tb"});
  const util::Flags flags(argc, argv);
  const double scale_tb = flags.get_double("scale-tb", 1.0);

  const int p = opt.primes.front();
  std::cout << "=== Extension: reconstruction time -> MTTDL (TIP, P=" << p
            << ") ===\n\n";

  // Measure reconstruction time per policy at a mid-size cache, then
  // scale the simulated sample (opt.errors stripes) to a full failed
  // capacity of `scale_tb` TB as the paper's 1 TB scenario does.
  core::ExperimentConfig cfg =
      bench::base_config(opt, codes::CodeId::Tip, p);
  cfg.cache_bytes = 64ull << 20;

  core::ReliabilityParams rel;
  rel.disks = codes::code_disks(codes::CodeId::Tip, p);
  rel.fault_tolerance = 3;
  rel.mttf_hours = 1.0e6;

  // Chunks repaired in the sample -> hours per TB of damaged data.
  double lru_hours = 0.0;
  util::Table table("policy -> repair window -> reliability");
  table.headers({"policy", "recon (ms, sample)", "repair window (h/TB)",
                 "WOV exposure", "MTTDL vs LRU"});
  struct Row {
    cache::PolicyId policy;
    double window_hours;
    double recon_ms;
  };
  std::vector<Row> rows;
  for (cache::PolicyId policy : bench::paper_policies()) {
    cfg.policy = policy;
    const core::ExperimentResult r = core::run_experiment(cfg);
    const double bytes_repaired =
        static_cast<double>(r.chunks_recovered) *
        static_cast<double>(cfg.chunk_bytes);
    const double hours_per_tb = r.reconstruction_ms / 3.6e6 *
                                (scale_tb * 1.0995116e12 / bytes_repaired);
    rows.push_back(Row{policy, hours_per_tb, r.reconstruction_ms});
    if (policy == cache::PolicyId::Lru) {
      lru_hours = hours_per_tb;
    }
  }
  for (const Row& row : rows) {
    rel.mttr_hours = row.window_hours;
    table.add_row({cache::to_string(row.policy),
                   util::fmt_double(row.recon_ms, 1),
                   util::fmt_double(row.window_hours, 2),
                   util::fmt_percent(
                       core::wov_exposure(rel, row.window_hours), 4),
                   util::fmt_double(
                       core::mttdl_improvement(rel, lru_hours,
                                               row.window_hours),
                       3) +
                       "x"});
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nMTTDL scales with ~(1/repair-window)^3 for a 3DFT, so "
               "FBF's reconstruction speedup compounds into a super-linear "
               "reliability gain.\n";
  return 0;
}
