// Shared plumbing for the figure/table harnesses: standard flags, the
// paper's parameter axes, and series printing.
//
// Common flags for every bench (unknown flags abort with a CheckError):
//   --errors=N        damaged stripes per run (default 400)
//   --workers=N       SOR worker processes (default 128, as in the paper)
//   --sizes-mb=a,b,c  cache-size axis in MB (default 2..2048 powers of 4)
//   --p=a,b,c         primes (figure-specific default)
//   --seed=N          workload seed
//   --csv             CSV instead of aligned text
//   --threads=N       sweep parallelism (0 = hardware)
//   --metrics-out=F   write run-level counters/gauges/histograms as JSON
//   --trace-out=F     write Chrome trace-event JSON (load in Perfetto)
//   --trace-detail=L  "phases" (default) or "fine" (per-read disk spans)
//   --layout=S        disk mapping: naive|rotate|tdesign|d3 (rotate)
//   --pool-size=N     physical disk pool, 0 = stripe width (0)
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"
#include "core/sweep.h"
#include "obs/observer.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/table.h"

namespace fbf::bench {

struct BenchOptions {
  int errors = 400;
  int workers = 128;  // the paper's parallel-reconstruction thread count
  std::vector<std::size_t> cache_sizes;
  std::vector<int> primes;
  std::uint64_t seed = 42;
  bool csv = false;
  std::size_t threads = 0;  // sweep parallelism (0 = hardware)
  sim::LayoutStrategy layout = sim::LayoutStrategy::Rotate;
  int pool_size = 0;  // 0 = exactly the stripe width

  std::string metrics_out;
  std::string trace_out;
  /// Shared by every run the bench executes; flushes its JSON outputs when
  /// the options object leaves main's scope. Null when neither --metrics-out
  /// nor --trace-out was given, which keeps the engines on the no-op path.
  std::shared_ptr<obs::RunObserver> observer;
};

inline BenchOptions parse_options(
    int argc, char** argv, std::vector<int> default_primes,
    const std::vector<std::string_view>& extra_known = {}) {
  const util::Flags flags(argc, argv);
  std::vector<std::string_view> known{
      "errors", "workers", "sizes-mb",    "p",         "seed",
      "csv",    "threads", "metrics-out", "trace-out", "trace-detail",
      "layout", "pool-size"};
  known.insert(known.end(), extra_known.begin(), extra_known.end());
  flags.check_known(known);

  BenchOptions opt;
  opt.errors = static_cast<int>(flags.get_int("errors", 400));
  opt.workers = static_cast<int>(flags.get_int("workers", 128));
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  opt.csv = flags.get_bool("csv", false);
  opt.threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  for (std::int64_t mb : flags.get_int_list(
           "sizes-mb", {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048})) {
    opt.cache_sizes.push_back(static_cast<std::size_t>(mb) << 20);
  }
  std::vector<std::int64_t> fallback(default_primes.begin(),
                                     default_primes.end());
  for (std::int64_t p : flags.get_int_list("p", fallback)) {
    opt.primes.push_back(static_cast<int>(p));
  }

  const std::string layout_name =
      flags.get_string("layout", sim::to_string(opt.layout));
  FBF_CHECK(sim::layout_strategy_from_string(layout_name, opt.layout),
            "--layout must be naive|rotate|tdesign|d3, got \"" + layout_name +
                "\"");
  opt.pool_size = static_cast<int>(flags.get_int("pool-size", 0));

  opt.metrics_out = flags.get_string("metrics-out", "");
  opt.trace_out = flags.get_string("trace-out", "");
  const std::string detail = flags.get_string("trace-detail", "phases");
  FBF_CHECK(detail == "phases" || detail == "fine",
            "--trace-detail must be \"phases\" or \"fine\", got \"" + detail +
                "\"");
  if (!opt.metrics_out.empty() || !opt.trace_out.empty()) {
    obs::RunObserver::Options oo;
    oo.metrics_path = opt.metrics_out;
    oo.trace_path = opt.trace_out;
    oo.trace_level = opt.trace_out.empty() ? obs::TraceLevel::Off
                     : detail == "fine"    ? obs::TraceLevel::Fine
                                           : obs::TraceLevel::Phases;
    opt.observer = std::make_shared<obs::RunObserver>(std::move(oo));
  }
  return opt;
}

inline core::ExperimentConfig base_config(const BenchOptions& opt,
                                          codes::CodeId code, int p) {
  core::ExperimentConfig cfg;
  cfg.code = code;
  cfg.p = p;
  cfg.num_errors = opt.errors;
  cfg.workers = opt.workers;
  cfg.seed = opt.seed;
  cfg.scheme = recovery::SchemeKind::RoundRobin;
  cfg.layout_strategy = opt.layout;
  cfg.pool_disks = opt.pool_size;
  cfg.obs = opt.observer.get();
  return cfg;
}

inline const std::vector<cache::PolicyId>& paper_policies() {
  static const std::vector<cache::PolicyId> policies{
      cache::PolicyId::Fifo, cache::PolicyId::Lru, cache::PolicyId::Lfu,
      cache::PolicyId::Arc, cache::PolicyId::Fbf};
  return policies;
}

/// Prints one figure panel: rows = cache sizes, columns = policies.
template <typename MetricFn>
void print_panel(const std::string& title,
                 const std::vector<core::SweepPoint>& points,
                 const BenchOptions& opt, MetricFn metric) {
  util::Table table(title);
  std::vector<std::string> header{"cache"};
  for (cache::PolicyId policy : paper_policies()) {
    header.push_back(cache::to_string(policy));
  }
  table.headers(std::move(header));
  for (std::size_t size : opt.cache_sizes) {
    std::vector<std::string> row{util::fmt_bytes(size)};
    for (cache::PolicyId policy : paper_policies()) {
      row.push_back(metric(core::find_point(points, size, policy).result));
    }
    table.add_row(std::move(row));
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\n";
}

}  // namespace fbf::bench
