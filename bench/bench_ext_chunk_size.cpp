// Extension: chunk-size sensitivity. The paper fixes 32 KB ("stripe unit
// size ... typically more than 256KB per stripe"); this sweep shows how
// the choice interacts with a fixed cache budget — smaller chunks mean
// more cacheable units per byte but more requests per recovery.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const bench::BenchOptions opt = bench::parse_options(argc, argv, {11});

  std::cout << "=== Extension: chunk-size sensitivity (TIP, P="
            << opt.primes.front() << ", cache 64MB) ===\n\n";
  util::Table table("metrics by chunk size");
  table.headers({"chunk", "policy", "hit ratio", "disk reads",
                 "recon (ms)"});
  for (std::size_t chunk_kb : {8u, 16u, 32u, 64u, 128u}) {
    for (cache::PolicyId policy :
         {cache::PolicyId::Lru, cache::PolicyId::Fbf}) {
      core::ExperimentConfig cfg =
          bench::base_config(opt, codes::CodeId::Tip, opt.primes.front());
      cfg.cache_bytes = 64ull << 20;
      cfg.chunk_bytes = chunk_kb << 10;
      cfg.policy = policy;
      const core::ExperimentResult r = core::run_experiment(cfg);
      table.add_row({util::fmt_bytes(cfg.chunk_bytes),
                     cache::to_string(policy), util::fmt_percent(r.hit_ratio),
                     std::to_string(r.disk_reads),
                     util::fmt_double(r.reconstruction_ms, 1)});
    }
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nLarger chunks shrink the per-worker chunk budget "
               "(64MB / 128 workers / chunk), pushing every policy toward "
               "the thrash regime — FBF degrades latest.\n";
  return 0;
}
