// Figure 9: number of disk read operations during partial stripe
// reconstruction, TIP-code, P in {5, 7, 11, 13}.
//
// Expected shape: reads fall as cache grows and stabilize once the cache
// holds every shared chunk; the stable point moves right as P grows; FBF
// needs the fewest reads, most visibly at small sizes (paper: up to 22.52%
// fewer than LFU).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const bench::BenchOptions opt =
      bench::parse_options(argc, argv, {5, 7, 11, 13});

  std::cout << "=== Figure 9: disk reads during reconstruction "
               "(TIP-code) ===\n\n";
  for (int p : opt.primes) {
    const auto points = core::run_sweep(
        bench::base_config(opt, codes::CodeId::Tip, p), opt.cache_sizes,
        bench::paper_policies(), opt.threads);
    bench::print_panel("TIP (P=" + std::to_string(p) + ") — disk reads",
                       points, opt, [](const core::ExperimentResult& r) {
                         return std::to_string(r.disk_reads);
                       });
  }
  return 0;
}
