// Extension (paper footnote 3 + related work): FBF beyond XOR array
// codes. Compares partial-stripe recovery I/O across three code families
// and replays LRC recovery request streams through the cache policies.
//
//  - 3DFT chain recovery (TIP): one chain per lost chunk, chunks shared
//    across chains (the paper's subject).
//  - Reed-Solomon: any k survivors rebuild everything; all reads are
//    shared across lost chunks (maximal sharing, maximal fetch floor).
//  - LRC: local chains for lone failures, global chains otherwise; the
//    global/local chain relationship is what FBF's priorities exploit.
#include "bench_common.h"
#include "cache/policy.h"
#include "codes/lrc.h"
#include "codes/reed_solomon.h"
#include "recovery/scheme.h"

namespace {

using namespace fbf;

/// Replays `rounds` LRC stripe recoveries through a policy, one cache
/// partition per worker as in the main simulator.
double lrc_hit_ratio(const codes::LrcCode& code, cache::PolicyId policy,
                     std::size_t capacity, int rounds, int erasures) {
  util::Rng rng(4242);
  const auto cache = cache::make_policy(policy, capacity);
  for (int round = 0; round < rounds; ++round) {
    std::vector<int> erased;
    while (static_cast<int>(erased.size()) < erasures) {
      const int e = static_cast<int>(rng.uniform_int(0, code.n() - 1));
      if (std::find(erased.begin(), erased.end(), e) == erased.end()) {
        erased.push_back(e);
      }
    }
    std::sort(erased.begin(), erased.end());
    const auto plan = code.plan_recovery(erased);
    const auto base = static_cast<cache::Key>(round) * 1000;
    for (const auto& reads : plan.reads_per_erasure) {
      for (int idx : reads) {
        const int refs = plan.reference_count[static_cast<std::size_t>(idx)];
        cache->request(base + static_cast<cache::Key>(idx),
                       std::min(refs, 3));
      }
    }
  }
  return cache->stats().hit_ratio();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opt = bench::parse_options(argc, argv, {11});

  std::cout << "=== Extension: recovery I/O across code families ===\n\n";
  {
    util::Table table("distinct reads to recover an x-chunk partial stripe");
    table.headers({"lost chunks", "TIP chains (p=11)", "RS(10,3)",
                   "LRC(12,2,2)"});
    const codes::Layout tip = codes::make_layout(codes::CodeId::Tip, 11);
    const codes::ReedSolomon rs(10, 3);
    const codes::LrcCode lrc(12, 2, 2);
    for (int lost = 1; lost <= 3; ++lost) {
      const auto scheme = recovery::generate_scheme(
          tip, recovery::PartialStripeError{0, 0, lost},
          recovery::SchemeKind::RoundRobin);
      std::vector<int> lrc_erased;
      for (int i = 0; i < lost; ++i) {
        lrc_erased.push_back(i);
      }
      const auto plan = lrc.plan_recovery(lrc_erased);
      table.add_row({std::to_string(lost),
                     std::to_string(scheme.distinct_reads()),
                     std::to_string(rs.k()),  // always k survivors
                     std::to_string(plan.distinct_reads)});
    }
    table.print(std::cout);
    std::cout << "\nRS always fetches k chunks (fully shared); chain codes "
                 "fetch less for small errors — the regime partial stripe "
                 "errors live in.\n\n";
  }

  {
    util::Table table(
        "LRC(12,2,2) recovery hit ratio by policy (2 erasures/stripe)");
    table.headers({"cache chunks", "LRU", "ARC", "FBF"});
    for (std::size_t capacity : {2u, 4u, 8u, 16u}) {
      std::vector<std::string> row{std::to_string(capacity)};
      for (cache::PolicyId policy :
           {cache::PolicyId::Lru, cache::PolicyId::Arc, cache::PolicyId::Fbf}) {
        row.push_back(util::fmt_percent(lrc_hit_ratio(
            codes::LrcCode(12, 2, 2), policy, capacity, opt.errors, 2)));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nFBF's priority queues generalize: chunks on both global "
                 "chains get priority >= 2 and survive the one-shot reads.\n";
  }
  return 0;
}
