// Ablation: parallel reconstruction style (paper §III-B). SOR workers own
// stripes and demand-read chain by chain through private cache partitions;
// DOR streams planned reads per disk in LBA order through one shared
// buffer. Same schemes, same priority dictionaries, different access
// pattern — FBF helps both, but the pressure point differs.
#include "bench_common.h"
#include "sim/dor_engine.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const bench::BenchOptions opt = bench::parse_options(argc, argv, {11});

  const codes::Layout layout =
      codes::make_layout(codes::CodeId::TripleStar, opt.primes.front());
  const sim::ArrayGeometry geometry(layout, 1 << 20, true,
                                    sim::SparePlacement::Distributed);
  workload::ErrorTraceConfig trace_cfg;
  trace_cfg.num_stripes = 1 << 20;
  trace_cfg.num_errors = opt.errors;
  trace_cfg.seed = opt.seed;
  const auto errors = workload::generate_error_trace(layout, trace_cfg);

  std::cout << "=== Ablation: DOR vs SOR reconstruction (TripleStar, P="
            << opt.primes.front() << ") ===\n\n";
  util::Table table("reconstruction style comparison");
  table.headers({"cache", "policy", "SOR recon (ms)", "SOR reads",
                 "DOR recon (ms)", "DOR reads", "DOR hit ratio"});
  for (std::size_t size : opt.cache_sizes) {
    for (cache::PolicyId policy :
         {cache::PolicyId::Lru, cache::PolicyId::Fbf}) {
      sim::ReconstructionConfig sor_cfg;
      sor_cfg.cache_bytes = size;
      sor_cfg.policy = policy;
      sor_cfg.workers = opt.workers;
      sor_cfg.seed = opt.seed;
      sim::ReconstructionEngine sor(layout, geometry, sor_cfg);
      const sim::SimMetrics sm = sor.run(errors);

      sim::DorConfig dor_cfg;
      dor_cfg.cache_bytes = size;
      dor_cfg.policy = policy;
      dor_cfg.seed = opt.seed;
      sim::DorEngine dor(layout, geometry, dor_cfg);
      const sim::SimMetrics dm = dor.run(errors);

      table.add_row({util::fmt_bytes(size), cache::to_string(policy),
                     util::fmt_double(sm.reconstruction_ms, 1),
                     std::to_string(sm.disk_reads),
                     util::fmt_double(dm.reconstruction_ms, 1),
                     std::to_string(dm.disk_reads),
                     util::fmt_percent(dm.cache.hit_ratio())});
    }
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nDOR fetches each distinct chunk once when the shared "
               "buffer suffices (reads = the schemes' distinct-read floor "
               "regardless of policy); under pressure, evictions before "
               "consumption force re-reads and the policy choice returns.\n";
  return 0;
}
