// Table V: maximum improvement of FBF over FIFO/LRU/LFU/ARC across the
// cache-size axis, on all four metrics. Computed from the same sweeps as
// Figures 8-11 (TIP-code panels).
//
// Paper's numbers for reference: hit ratio +134.06/142.70/247.67/63.74%,
// disk reads -14.13/17.14/22.52/12.37%, response time
// -24.51/24.46/31.39/18.02%, reconstruction time -11.77/14.90/13.42/12.04%.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const bench::BenchOptions opt = bench::parse_options(argc, argv, {13});

  std::cout << "=== Table V: maximum improvement of FBF over classic "
               "policies ===\n(TIP-code, P="
            << opt.primes.front() << ", max across cache sizes)\n\n";

  const auto points = core::run_sweep(
      bench::base_config(opt, codes::CodeId::Tip, opt.primes.front()),
      opt.cache_sizes, bench::paper_policies(), opt.threads);

  struct Metric {
    const char* name;
    std::function<double(const core::ExperimentResult&)> get;
    bool higher_is_better;
    double min_base;  // skip grid points with a near-zero baseline
  };
  const std::vector<Metric> metrics{
      // Hit-ratio improvements are only meaningful where the baseline has
      // a measurable ratio (>= 1%), else the ratio blows up on noise.
      {"Hit ratio", [](const auto& r) { return r.hit_ratio; }, true, 0.01},
      {"Number of reads in disks",
       [](const auto& r) { return static_cast<double>(r.disk_reads); },
       false, 0.0},
      {"Response time", [](const auto& r) { return r.avg_response_ms; },
       false, 0.0},
      {"Reconstruction time",
       [](const auto& r) { return r.reconstruction_ms; }, false, 0.0},
  };
  const std::vector<cache::PolicyId> baselines{
      cache::PolicyId::Fifo, cache::PolicyId::Lru, cache::PolicyId::Lfu,
      cache::PolicyId::Arc};

  util::Table table("max improvement of FBF");
  table.headers({"metric", "vs FIFO", "vs LRU", "vs LFU", "vs ARC"});
  for (const Metric& m : metrics) {
    std::vector<std::string> row{m.name};
    for (cache::PolicyId baseline : baselines) {
      row.push_back(util::fmt_percent(
          core::max_improvement(points, opt.cache_sizes, baseline, m.get,
                                m.higher_is_better, m.min_base)));
    }
    table.add_row(std::move(row));
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
