// Extension: online recovery. The paper's conclusion claims FBF "is
// considered to be effective for parallel and online recovery as well";
// this bench mixes foreground application I/O with reconstruction and
// reports both reconstruction progress and application latency.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const bench::BenchOptions opt =
      bench::parse_options(argc, argv, {11}, {"app-requests"});
  const util::Flags flags(argc, argv);
  const int app_requests =
      static_cast<int>(flags.get_int("app-requests", 3000));

  std::cout << "=== Extension: online recovery under foreground I/O "
               "(TripleStar, P=" << opt.primes.front() << ") ===\n\n";
  util::Table table("reconstruction vs application latency");
  table.headers({"cache", "policy", "recon (ms)", "recon reads",
                 "app avg resp (ms)", "degraded reads", "hit ratio"});
  for (std::size_t size : opt.cache_sizes) {
    for (cache::PolicyId policy : {cache::PolicyId::Lru, cache::PolicyId::Arc,
                                   cache::PolicyId::Fbf}) {
      core::ExperimentConfig cfg = bench::base_config(
          opt, codes::CodeId::TripleStar, opt.primes.front());
      cfg.cache_bytes = size;
      cfg.policy = policy;
      cfg.app_requests = app_requests;
      cfg.app_mean_interarrival_ms = 1.0;
      const core::ExperimentResult r = core::run_experiment(cfg);
      table.add_row({util::fmt_bytes(size), cache::to_string(policy),
                     util::fmt_double(r.reconstruction_ms, 1),
                     std::to_string(r.disk_reads),
                     util::fmt_double(r.app_avg_response_ms),
                     std::to_string(r.app_degraded_reads),
                     util::fmt_percent(r.hit_ratio)});
    }
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
