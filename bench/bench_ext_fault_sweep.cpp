// Extension: degraded recovery under deterministic fault injection. Sweeps
// the URE rate x straggler-factor grid for each cache policy and reports
// how the fault load inflates disk reads and reconstruction time, plus the
// injector's own counters (sim/faults). Every grid point is a pure function
// of (--seed, --fault-seed, the grid coordinates): two invocations with the
// same flags print byte-identical tables, which ci/tier1.sh exploits as a
// determinism smoke test.
//
// Extra flags on top of the common set (bench_common.h):
//   --engine=sor|dor       reconstruction engine            (sor)
//   --ure-rates=a,b,c      URE-rate axis                    (0,1e-4,1e-3)
//   --straggler-factors=a  straggler-multiplier axis        (1,4)
//   --stragglers=N         straggler disk count             (2)
//   --fault-*              base fault load applied to every grid point
//                          (core/fault_flags.h; e.g. a transient rate or a
//                          mid-recovery disk failure)
//   --app-*                foreground traffic riding every grid point
//                          (core/app_flags.h); --app-requests=N > 0 adds
//                          the app response / degraded columns, and UREs
//                          and stragglers hit those reads too
#include "bench_common.h"
#include "core/app_flags.h"
#include "core/fault_flags.h"
#include "sim/faults/faults.h"

int main(int argc, char** argv) {
  using namespace fbf;
  std::vector<std::string_view> extra{"engine", "ure-rates",
                                      "straggler-factors", "stragglers"};
  const auto& fault_names = core::fault_flag_names();
  extra.insert(extra.end(), fault_names.begin(), fault_names.end());
  const auto& app_names = core::app_flag_names();
  extra.insert(extra.end(), app_names.begin(), app_names.end());
  const util::Flags flags(argc, argv);
  const bench::BenchOptions opt = bench::parse_options(argc, argv, {7}, extra);

  const std::string engine = flags.get_string("engine", "sor");
  FBF_CHECK(engine == "sor" || engine == "dor",
            "--engine must be \"sor\" or \"dor\", got \"" + engine + "\"");
  const sim::FaultConfig base_faults = core::parse_fault_flags(flags);
  const core::AppFlagValues app = core::parse_app_flags(flags);
  const std::vector<double> ure_rates =
      flags.get_double_list("ure-rates", {0.0, 1e-4, 1e-3});
  const std::vector<double> straggler_factors =
      flags.get_double_list("straggler-factors", {1.0, 4.0});
  const int stragglers = static_cast<int>(flags.get_int("stragglers", 2));

  std::cout << "=== Extension: fault-injected recovery sweep (TIP, P="
            << opt.primes.front() << ", engine=" << engine
            << ", cache 64MB) ===\n\n";
  util::Table table("degraded recovery under faults");
  std::vector<std::string> headers{"ure rate", "straggler x", "policy",
                                   "hit ratio", "disk reads", "retries",
                                   "replans", "extra lost", "recon (ms)"};
  if (app.requests > 0) {
    headers.insert(headers.end(), {"app avg (ms)", "app p99 (ms)",
                                   "app degraded r/w"});
  }
  table.headers(headers);
  int point = 0;
  for (double ure : ure_rates) {
    for (double factor : straggler_factors) {
      for (cache::PolicyId policy :
           {cache::PolicyId::Lru, cache::PolicyId::Fbf}) {
        core::ExperimentConfig cfg =
            bench::base_config(opt, codes::CodeId::Tip, opt.primes.front());
        cfg.engine = engine == "dor" ? core::EngineKind::Dor
                                     : core::EngineKind::Sor;
        cfg.cache_bytes = 64ull << 20;
        cfg.policy = policy;
        cfg.faults = base_faults;
        cfg.faults.ure_rate = ure;
        cfg.faults.straggler_factor = factor;
        cfg.faults.stragglers = factor != 1.0 ? stragglers : 0;
        // Disjoint registry labels per grid point: several points share
        // (code, p, policy, cache) and differ only in the fault axes.
        cfg.obs_suffix = ".f" + std::to_string(point++);
        cfg.app_requests = app.requests;
        cfg.app_mean_interarrival_ms = app.interarrival_ms;
        cfg.app_read_fraction = app.read_fraction;
        cfg.app_deadline_ms = app.deadline_ms;
        cfg.recovery_throttle = app.throttle;
        const core::ExperimentResult r = core::run_experiment(cfg);
        std::vector<std::string> row{
            util::fmt_double(ure, 6), util::fmt_double(factor, 1),
            std::string(cache::to_string(policy)),
            util::fmt_percent(r.hit_ratio), std::to_string(r.disk_reads),
            std::to_string(r.fault.retries), std::to_string(r.fault.replans),
            std::to_string(r.fault.extra_lost_chunks),
            util::fmt_double(r.reconstruction_ms, 1)};
        if (app.requests > 0) {
          row.push_back(util::fmt_double(r.app_avg_response_ms));
          row.push_back(util::fmt_double(r.app_p99_response_ms));
          row.push_back(std::to_string(r.app_degraded_reads) + "/" +
                        std::to_string(r.app_degraded_writes));
        }
        table.add_row(row);
      }
    }
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nUREs turn surviving chain members into fresh losses: each "
               "one costs a replan (peeling first, Gauss only when peeling "
               "stalls) and extra reads, so the read floor rises with the "
               "rate while FBF's hit-ratio edge persists. Stragglers stretch "
               "the makespan without changing any count — the fault stream "
               "is a pure function of the seed, never of timing.\n";
  return 0;
}
