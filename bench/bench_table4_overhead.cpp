// Table IV: temporal overhead of FBF (recovery-scheme + priority
// dictionary generation) per stripe, and as a percentage of the total
// reconstruction time, for all four codes x P in {5, 7, 11, 13}.
//
// Measured with memoization disabled (every stripe pays the generation
// cost, matching the paper's per-recovery measurement); the memoized
// amortized cost is also reported. Expected shape: sub-millisecond per
// stripe, growing with P, a low single-digit percentage of reconstruction.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fbf;
  bench::BenchOptions opt = bench::parse_options(argc, argv, {5, 7, 11, 13});

  std::cout << "=== Table IV: FBF temporal overhead ===\n\n";
  util::Table table("scheme-generation overhead (FBF, cache 128MB)");
  table.headers({"P", "code", "per-stripe (ms)", "% of reconstruction",
                 "memoized per-stripe (ms)"});
  for (int p : opt.primes) {
    for (codes::CodeId code : codes::kAllCodes) {
      core::ExperimentConfig cfg = bench::base_config(opt, code, p);
      cfg.cache_bytes = 128ull << 20;
      cfg.policy = cache::PolicyId::Fbf;
      cfg.memoize_schemes = false;
      const core::ExperimentResult raw = core::run_experiment(cfg);
      cfg.memoize_schemes = true;
      const core::ExperimentResult memo = core::run_experiment(cfg);
      const double per_stripe =
          raw.scheme_gen_wall_ms /
          static_cast<double>(raw.stripes_recovered);
      const double pct = raw.scheme_gen_wall_ms / raw.reconstruction_ms;
      const double memo_per_stripe =
          memo.scheme_gen_wall_ms /
          static_cast<double>(memo.stripes_recovered);
      table.add_row({std::to_string(p), codes::to_string(code),
                     util::fmt_double(per_stripe, 4), util::fmt_percent(pct),
                     util::fmt_double(memo_per_stripe, 4)});
    }
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nSpatial overhead: 2 bits per cached chunk (priority tag); "
               "for 32KB chunks this is <0.001% — negligible, as the paper "
               "argues.\n";
  return 0;
}
