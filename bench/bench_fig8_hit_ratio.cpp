// Figure 8: cache hit ratio during partial stripe reconstruction, for all
// four codes x P in {7, 11, 13} x {FIFO, LRU, LFU, ARC, FBF} across the
// cache-size axis.
//
// Expected shape (paper §IV-B-1): hit ratio rises with cache size and
// plateaus; FBF dominates at small sizes and plateaus earliest; STAR shows
// the highest ratios (adjuster chunks are referenced 3+ times).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const bench::BenchOptions opt = bench::parse_options(argc, argv, {7, 11, 13});

  std::cout << "=== Figure 8: hit ratio during partial stripe "
               "reconstruction ===\n\n";
  for (codes::CodeId code : codes::kAllCodes) {
    for (int p : opt.primes) {
      const auto points =
          core::run_sweep(bench::base_config(opt, code, p), opt.cache_sizes,
                          bench::paper_policies(), opt.threads);
      bench::print_panel(
          std::string(codes::to_string(code)) + " (P=" + std::to_string(p) +
              ") — hit ratio",
          points, opt, [](const core::ExperimentResult& r) {
            return util::fmt_percent(r.hit_ratio);
          });
    }
  }
  return 0;
}
