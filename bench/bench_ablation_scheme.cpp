// Ablation: recovery-scheme generator choice. Separates how much of FBF's
// win comes from *chain selection* (horizontal-only vs round-robin vs
// greedy min-I/O) versus the cache policy, which DESIGN.md calls out as a
// starred design decision.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const bench::BenchOptions opt = bench::parse_options(argc, argv, {11});

  std::cout << "=== Ablation: scheme generator x cache policy "
               "(TripleStar, P=" << opt.primes.front() << ") ===\n\n";
  // Exhaustive (branch-and-bound optimal) is tractable here because
  // adjuster-free layouts give each lost chunk at most 3 candidate chains.
  const std::vector<recovery::SchemeKind> schemes{
      recovery::SchemeKind::HorizontalFirst, recovery::SchemeKind::RoundRobin,
      recovery::SchemeKind::GreedyMinIO, recovery::SchemeKind::ExhaustiveMinIO};
  for (std::size_t size : opt.cache_sizes) {
    util::Table table("cache " + util::fmt_bytes(size));
    table.headers({"scheme", "policy", "hit ratio", "disk reads",
                   "reconstruction (ms)"});
    for (recovery::SchemeKind scheme : schemes) {
      for (cache::PolicyId policy :
           {cache::PolicyId::Lru, cache::PolicyId::Fbf}) {
        core::ExperimentConfig cfg = bench::base_config(
            opt, codes::CodeId::TripleStar, opt.primes.front());
        cfg.cache_bytes = size;
        cfg.scheme = scheme;
        cfg.policy = policy;
        const core::ExperimentResult r = core::run_experiment(cfg);
        table.add_row({recovery::to_string(scheme), cache::to_string(policy),
                       util::fmt_percent(r.hit_ratio),
                       std::to_string(r.disk_reads),
                       util::fmt_double(r.reconstruction_ms, 1)});
      }
    }
    if (opt.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    std::cout << "\n";
  }
  std::cout << "Takeaways to look for: horizontal-only has ~zero shareable "
               "chunks (cache policy barely matters); round-robin creates "
               "sharing that FBF retains but LRU thrashes; greedy lowers "
               "the read floor further.\n";
  return 0;
}
