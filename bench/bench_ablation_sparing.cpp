// Ablation: array-level placement knobs behind DESIGN.md §5 — column
// rotation and spare placement. Shows why the default configuration
// (rotation + distributed sparing) is the one where cache policy choices
// are visible in reconstruction time: with same-disk sparing the failed
// disk's write queue gates the makespan for every policy.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const bench::BenchOptions opt = bench::parse_options(argc, argv, {11});

  std::cout << "=== Ablation: rotation x spare placement "
               "(TripleStar, P=" << opt.primes.front() << ", cache 32MB) ===\n\n";
  util::Table table("reconstruction under placement variants");
  table.headers({"rotation", "sparing", "policy", "recon (ms)",
                 "avg resp (ms)", "hit ratio"});
  for (bool rotate : {false, true}) {
    for (sim::SparePlacement sparing :
         {sim::SparePlacement::SameDisk, sim::SparePlacement::Distributed}) {
      for (cache::PolicyId policy :
           {cache::PolicyId::Lru, cache::PolicyId::Fbf}) {
        core::ExperimentConfig cfg = bench::base_config(
            opt, codes::CodeId::TripleStar, opt.primes.front());
        cfg.cache_bytes = 32ull << 20;
        cfg.layout_strategy = rotate ? sim::LayoutStrategy::Rotate
                                     : sim::LayoutStrategy::Naive;
        cfg.pool_disks = 0;  // placement ablation runs at stripe width
        cfg.spare_placement = sparing;
        cfg.policy = policy;
        const core::ExperimentResult r = core::run_experiment(cfg);
        table.add_row(
            {rotate ? "on" : "off",
             sparing == sim::SparePlacement::SameDisk ? "same-disk"
                                                      : "distributed",
             cache::to_string(policy), util::fmt_double(r.reconstruction_ms, 1),
             util::fmt_double(r.avg_response_ms),
             util::fmt_percent(r.hit_ratio)});
      }
    }
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nHit ratios are placement-independent (the cache sees the "
               "same logical request stream); reconstruction time is not — "
               "same-disk sparing serializes recovery writes on the failed "
               "disk and masks the policy's read savings.\n";
  return 0;
}
