// Figure 11: total partial stripe reconstruction time, TIP-code,
// P in {5, 7, 11, 13}.
//
// Expected shape: reconstruction time falls with cache size; FBF is
// fastest (paper: up to 14.90% over LRU, 12.04% over ARC), with a smaller
// relative gap than response time because XOR and spare-write costs are
// policy-independent.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const bench::BenchOptions opt =
      bench::parse_options(argc, argv, {5, 7, 11, 13});

  std::cout << "=== Figure 11: reconstruction time (ms, TIP-code) ===\n\n";
  for (int p : opt.primes) {
    const auto points = core::run_sweep(
        bench::base_config(opt, codes::CodeId::Tip, p), opt.cache_sizes,
        bench::paper_policies(), opt.threads);
    bench::print_panel(
        "TIP (P=" + std::to_string(p) + ") — reconstruction time (ms)",
        points, opt, [](const core::ExperimentResult& r) {
          return util::fmt_double(r.reconstruction_ms, 1);
        });
  }
  return 0;
}
