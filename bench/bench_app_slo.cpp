// Extension: the online-recovery SLO trade-off. Fixed open-loop foreground
// arrival rate with a per-request deadline, swept across recovery-throttle
// settings on both engines: tightening the throttle stretches the rebuild
// makespan and in exchange shrinks the application's tail latency and
// deadline-miss rate. Every point is a pure function of the flags, so two
// invocations print byte-identical tables (ci/tier1.sh app_smoke diffs
// them across same-seed runs).
//
// Extra flags on top of the common set (bench_common.h):
//   --throttles=a,b,c    rebuild reads/s axis, 0 = unthrottled (see below)
//   --app-*              foreground traffic shape (core/app_flags.h);
//                        defaults here give 40 req/s with a 30 ms deadline
//
// Reference run committed as BENCH_app_slo.csv (see EXPERIMENTS.md):
//   ./bench_app_slo --errors=120 --workers=16 --csv
#include "bench_common.h"
#include "core/app_flags.h"

int main(int argc, char** argv) {
  using namespace fbf;
  std::vector<std::string_view> extra{"throttles"};
  const auto& app_names = core::app_flag_names();
  extra.insert(extra.end(), app_names.begin(), app_names.end());
  const util::Flags flags(argc, argv);
  const bench::BenchOptions opt = bench::parse_options(argc, argv, {7}, extra);

  const core::AppFlagValues app = core::parse_app_flags(flags);
  const int app_requests = app.requests > 0 ? app.requests : 400;
  const double interarrival =
      flags.get_double("app-interarrival-ms", 25.0);
  const double deadline =
      app.deadline_ms > 0.0 ? app.deadline_ms : 30.0;
  // 0 first (the unthrottled baseline), then tightening.
  const std::vector<double> throttles =
      flags.get_double_list("throttles", {0.0, 200.0, 50.0});

  std::cout << "=== Extension: app SLO vs recovery throttle (TIP, P="
            << opt.primes.front() << ", FBF, " << app_requests
            << " reqs @ " << util::fmt_double(interarrival, 1)
            << " ms, deadline " << util::fmt_double(deadline, 0)
            << " ms) ===\n\n";
  util::Table table("foreground SLO vs rebuild throttle");
  table.headers({"engine", "throttle (r/s)", "recon (ms)", "app avg (ms)",
                 "app p99 (ms)", "app p999 (ms)", "miss rate",
                 "degraded r/w"});
  int point = 0;
  for (core::EngineKind engine :
       {core::EngineKind::Sor, core::EngineKind::Dor}) {
    for (double rate : throttles) {
      core::ExperimentConfig cfg =
          bench::base_config(opt, codes::CodeId::Tip, opt.primes.front());
      cfg.engine = engine;
      cfg.cache_bytes = 64ull << 20;
      cfg.policy = cache::PolicyId::Fbf;
      cfg.app_requests = app_requests;
      cfg.app_mean_interarrival_ms = interarrival;
      cfg.app_read_fraction = app.read_fraction;
      cfg.app_deadline_ms = deadline;
      cfg.recovery_throttle.rebuild_reads_per_sec = rate;
      cfg.recovery_throttle.burst = app.throttle.burst;
      // Grid points share (code, p, policy, cache); keep labels disjoint.
      cfg.obs_suffix = ".slo" + std::to_string(point++);
      const core::ExperimentResult r = core::run_experiment(cfg);
      const double miss_rate =
          static_cast<double>(r.app_deadline_miss) /
          static_cast<double>(app_requests);
      table.add_row({engine == core::EngineKind::Sor ? "sor" : "dor",
                     util::fmt_double(rate, 0),
                     util::fmt_double(r.reconstruction_ms, 1),
                     util::fmt_double(r.app_avg_response_ms),
                     util::fmt_double(r.app_p99_response_ms),
                     util::fmt_double(r.app_p999_response_ms),
                     util::fmt_percent(miss_rate),
                     std::to_string(r.app_degraded_reads) + "/" +
                         std::to_string(r.app_degraded_writes)});
    }
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nReading down each engine block: a tighter throttle "
               "stretches recon (ms) and pushes the app percentile and "
               "deadline-miss columns down — the knob trades rebuild speed "
               "for foreground SLO. Parked (degraded) requests always ride "
               "out their stripe's recovery; the throttle helps the healthy "
               "majority.\n";
  return 0;
}
