// Figure 10: average response time of the disk array during partial
// stripe reconstruction, all four codes x P in {7, 11, 13}.
//
// Expected shape: response time falls with cache size; FBF is fastest
// (paper: up to 31.39% below LFU at P=13); the advantage fades once the
// cache stops being the bottleneck.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const bench::BenchOptions opt = bench::parse_options(argc, argv, {7, 11, 13});

  std::cout << "=== Figure 10: average response time (ms) ===\n\n";
  for (codes::CodeId code : codes::kAllCodes) {
    for (int p : opt.primes) {
      const auto points =
          core::run_sweep(bench::base_config(opt, code, p), opt.cache_sizes,
                          bench::paper_policies(), opt.threads);
      bench::print_panel(
          std::string(codes::to_string(code)) + " (P=" + std::to_string(p) +
              ") — avg response (ms)",
          points, opt, [](const core::ExperimentResult& r) {
            return util::fmt_double(r.avg_response_ms);
          });
    }
  }
  return 0;
}
