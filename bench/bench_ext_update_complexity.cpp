// Extension: update complexity across the four layouts — the property the
// TIP paper optimizes and the reason partial stripe writes cost so
// differently per code. Reports the structural metric (parity updates per
// data-cell write) and the simulated small-write latency under foreground
// write traffic during reconstruction.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const bench::BenchOptions opt = bench::parse_options(argc, argv, {5, 7, 11, 13});

  std::cout << "=== Extension: update complexity and small-write cost ===\n\n";
  {
    util::Table table("parity updates per data-cell write (structural)");
    table.headers({"P", "TIP", "HDD1", "TripleStar", "STAR"});
    for (int p : opt.primes) {
      std::vector<std::string> row{std::to_string(p)};
      for (codes::CodeId code : {codes::CodeId::Tip, codes::CodeId::Hdd1,
                                 codes::CodeId::TripleStar,
                                 codes::CodeId::Star}) {
        const codes::Layout l = codes::make_layout(code, p);
        int max_uc = 0;
        for (int i = 0; i < l.num_cells(); ++i) {
          const codes::Cell c = l.cell_at(i);
          if (l.kind(c) == codes::CellKind::Data) {
            max_uc = std::max(max_uc, l.update_complexity(c));
          }
        }
        row.push_back(util::fmt_double(l.average_update_complexity(), 2) +
                      " (max " + std::to_string(max_uc) + ")");
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nAdjuster-free layouts (TIP/TripleStar substitutes) stay "
                 "at the 3DFT optimum of ~3; adjuster layouts (HDD1/STAR) "
                 "pay p+1 on adjuster-diagonal cells.\n\n";
  }

  {
    util::Table table(
        "simulated small-write latency under write-heavy foreground I/O");
    table.headers({"P", "code", "app avg resp (ms)", "recon (ms)"});
    for (int p : {opt.primes.front()}) {
      for (codes::CodeId code : codes::kAllCodes) {
        core::ExperimentConfig cfg = bench::base_config(opt, code, p);
        cfg.cache_bytes = 64ull << 20;
        // Light enough that disks don't saturate: latency then reflects
        // per-write fan-out rather than unbounded queueing.
        cfg.app_requests = 2000;
        cfg.app_mean_interarrival_ms = 25.0;
        const core::ExperimentResult r = core::run_experiment(cfg);
        table.add_row({std::to_string(p), codes::to_string(code),
                       util::fmt_double(r.app_avg_response_ms),
                       util::fmt_double(r.reconstruction_ms, 1)});
      }
    }
    table.print(std::cout);
    std::cout << "\n(App trace is 70% reads; write latency differences are "
               "driven by each code's parity-update fan-out.)\n";
  }
  return 0;
}
