// Ablation: how close is FBF to the clairvoyant optimum? Recovery
// request streams are fully deterministic, so Belady's MIN is computable
// exactly. Replays each SOR worker's stream (its stripes' request
// sequences, concatenated) through every policy and through MIN, at each
// per-worker capacity.
//
// This isolates replacement-policy quality: no disks, no installs — the
// identical read stream for everyone.
#include "bench_common.h"
#include "cache/belady.h"
#include "recovery/request_sequence.h"
#include "recovery/scheme_cache.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const bench::BenchOptions opt = bench::parse_options(argc, argv, {11});

  const codes::Layout layout =
      codes::make_layout(codes::CodeId::TripleStar, opt.primes.front());
  workload::ErrorTraceConfig trace_cfg;
  trace_cfg.num_stripes = 1 << 20;
  trace_cfg.num_errors = opt.errors;
  trace_cfg.seed = opt.seed;
  const auto errors = workload::generate_error_trace(layout, trace_cfg);
  const sim::ArrayGeometry geometry(layout, trace_cfg.num_stripes);

  // Per-worker read streams, SOR round-robin assignment.
  const int workers = 16;
  std::vector<std::vector<cache::Key>> streams(
      static_cast<std::size_t>(workers));
  std::vector<std::vector<int>> priorities(static_cast<std::size_t>(workers));
  recovery::SchemeCache schemes(layout);
  for (std::size_t e = 0; e < errors.size(); ++e) {
    const auto scheme =
        schemes.get(errors[e].error, recovery::SchemeKind::RoundRobin);
    const auto w = e % static_cast<std::size_t>(workers);
    for (const recovery::ChunkOp& op :
         recovery::build_request_sequence(layout, *scheme)) {
      if (op.kind == recovery::OpKind::Read) {
        streams[w].push_back(geometry.chunk_key(errors[e].stripe, op.cell));
        priorities[w].push_back(op.priority);
      }
    }
  }

  std::cout << "=== Ablation: policies vs Belady-optimal (TripleStar, P="
            << opt.primes.front() << ", " << workers
            << " worker streams) ===\n\n";
  util::Table table("hit ratio by per-worker cache capacity");
  table.headers({"chunks/worker", "LRU", "ARC", "FBF", "OPT (MIN)",
                 "FBF % of OPT"});
  for (std::size_t capacity : {2u, 4u, 8u, 16u, 32u, 64u}) {
    std::uint64_t opt_hits = 0;
    std::uint64_t total = 0;
    for (const auto& stream : streams) {
      const cache::CacheStats s = cache::belady_min(stream, capacity);
      opt_hits += s.hits;
      total += s.accesses();
    }
    auto run_policy = [&](cache::PolicyId id) {
      std::uint64_t hits = 0;
      for (std::size_t w = 0; w < streams.size(); ++w) {
        const auto policy = cache::make_policy(id, capacity);
        for (std::size_t i = 0; i < streams[w].size(); ++i) {
          hits += policy->request(streams[w][i], priorities[w][i]) ? 1 : 0;
        }
      }
      return hits;
    };
    const std::uint64_t lru = run_policy(cache::PolicyId::Lru);
    const std::uint64_t arc = run_policy(cache::PolicyId::Arc);
    const std::uint64_t fbf = run_policy(cache::PolicyId::Fbf);
    auto ratio = [total](std::uint64_t hits) {
      return util::fmt_percent(static_cast<double>(hits) /
                               static_cast<double>(total));
    };
    table.add_row(
        {std::to_string(capacity), ratio(lru), ratio(arc), ratio(fbf),
         ratio(opt_hits),
         opt_hits == 0 ? "-"
                       : util::fmt_percent(static_cast<double>(fbf) /
                                           static_cast<double>(opt_hits))});
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nMIN knows the future; FBF's priority dictionary is a "
               "static approximation of exactly that future (how many "
               "chains still reference a chunk), which is why it tracks "
               "OPT far more closely than recency-based policies.\n";
  return 0;
}
