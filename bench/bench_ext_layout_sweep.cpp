// Extension: declustered layouts over a disk pool wider than a stripe
// (DESIGN.md §15). Sweeps pool size x layout strategy x cache policy and
// reports how far the recovery load spreads over the pool: active disks,
// the busiest disk's op count against the pool mean, and the resulting
// reconstruction time. The headline effect: with rotate/tdesign/d3 the
// per-disk spread widens monotonically with --pool-sizes while naive
// (pinned to the stripe width) defines the baseline. Every grid point is a
// pure function of the flags; two invocations print byte-identical tables.
//
// Extra flags on top of the common set (bench_common.h):
//   --pool-sizes=a,b,c  disk-pool axis (default: width, +4, +8, +16)
//   --engine=sor|dor    reconstruction engine                 (sor)
// The common --layout/--pool-size single-point flags are superseded by the
// grid axes here and ignored.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const util::Flags flags(argc, argv);
  const bench::BenchOptions opt =
      bench::parse_options(argc, argv, {7}, {"pool-sizes", "engine"});

  const std::string engine = flags.get_string("engine", "sor");
  FBF_CHECK(engine == "sor" || engine == "dor",
            "--engine must be \"sor\" or \"dor\", got \"" + engine + "\"");
  const codes::CodeId code = codes::CodeId::Tip;
  const int p = opt.primes.front();
  const int width = codes::make_layout(code, p).cols();
  std::vector<int> pools;
  for (std::int64_t n : flags.get_int_list(
           "pool-sizes",
           {width, width + 4, width + 8, width + 16})) {
    FBF_CHECK(n >= width, "--pool-sizes entries must be >= the stripe width (" +
                              std::to_string(width) + ")");
    pools.push_back(static_cast<int>(n));
  }

  std::cout << "=== Extension: pool-size x layout x policy sweep (TIP, P="
            << p << ", width " << width << ", engine=" << engine
            << ", cache 16MB) ===\n\n";
  util::Table table("recovery spread over the disk pool");
  table.headers({"layout", "pool", "policy", "hit ratio", "disk reads",
                 "disks active", "max ops", "mean ops", "max/mean",
                 "recon (ms)"});
  int point = 0;
  for (sim::LayoutStrategy layout :
       {sim::LayoutStrategy::Naive, sim::LayoutStrategy::Rotate,
        sim::LayoutStrategy::TDesignDecluster, sim::LayoutStrategy::D3}) {
    for (int pool : pools) {
      // Naive is the identity map: it only exists at the stripe width and
      // anchors the pre-declustering baseline row.
      if (layout == sim::LayoutStrategy::Naive && pool != width) continue;
      for (cache::PolicyId policy :
           {cache::PolicyId::Lru, cache::PolicyId::Fbf}) {
        core::ExperimentConfig cfg = bench::base_config(opt, code, p);
        cfg.engine = engine == "dor" ? core::EngineKind::Dor
                                     : core::EngineKind::Sor;
        cfg.cache_bytes = 16ull << 20;
        cfg.policy = policy;
        cfg.layout_strategy = layout;
        cfg.pool_disks = pool;
        // Disjoint registry labels per grid point: the layout axes are not
        // part of obs_run_label's (code, p, policy, cache) key.
        cfg.obs_suffix = ".l" + std::to_string(point++);
        const core::ExperimentResult r = core::run_experiment(cfg);
        const double ratio =
            r.disk_ops_mean > 0.0
                ? static_cast<double>(r.disk_ops_max) / r.disk_ops_mean
                : 0.0;
        table.add_row({std::string(sim::to_string(layout)),
                       std::to_string(pool),
                       std::string(cache::to_string(policy)),
                       util::fmt_percent(r.hit_ratio),
                       std::to_string(r.disk_reads),
                       std::to_string(r.disks_active) + "/" +
                           std::to_string(r.disks_total),
                       std::to_string(r.disk_ops_max),
                       util::fmt_double(r.disk_ops_mean, 1),
                       util::fmt_double(ratio, 2),
                       util::fmt_double(r.reconstruction_ms, 1)});
      }
    }
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nWider pools recruit more spindles per rebuild: the same "
               "logical request stream (hit ratios never move) fans out over "
               "more disks, the busiest disk sheds load toward the pool mean, "
               "and reconstruction time drops. The declustered strategies "
               "(tdesign, d3) keep the spread uniform by construction; "
               "rotate merely shifts the hot columns around the pool.\n";
  return 0;
}
