// Ablation: FBF policy internals. Compares full FBF against (a) FBF
// without hit-demotion (chunks keep their queue level) and (b) the
// extension policies LRU-2 and 2Q, isolating the value of the demotion
// rule in Algorithm 1.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const bench::BenchOptions opt = bench::parse_options(argc, argv, {11});

  std::cout << "=== Ablation: FBF internals and extension policies "
               "(TIP, P=" << opt.primes.front() << ") ===\n\n";
  const std::vector<cache::PolicyId> policies{
      cache::PolicyId::Lru,  cache::PolicyId::Lru2, cache::PolicyId::TwoQ,
      cache::PolicyId::FbfNoDemote, cache::PolicyId::Fbf};

  util::Table table("hit ratio by cache size");
  std::vector<std::string> header{"cache"};
  for (cache::PolicyId p : policies) {
    header.push_back(cache::to_string(p));
  }
  table.headers(std::move(header));
  for (std::size_t size : opt.cache_sizes) {
    std::vector<std::string> row{util::fmt_bytes(size)};
    for (cache::PolicyId policy : policies) {
      core::ExperimentConfig cfg =
          bench::base_config(opt, codes::CodeId::Tip, opt.primes.front());
      cfg.cache_bytes = size;
      cfg.policy = policy;
      row.push_back(util::fmt_percent(core::run_experiment(cfg).hit_ratio));
    }
    table.add_row(std::move(row));
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nDemotion matters when queues are tight: without it, "
               "spent chunks squat in Queue2/Queue3 and push out chunks "
               "that still have references coming.\n";
  return 0;
}
