// GiB/s of every dispatched XOR kernel variant, per chunk size (4 KiB to
// 1 MiB), plus the chain-fold comparison: one xor_fold pass over N sources
// vs the N sequential xor_into passes the codec used before the kernel
// layer. Variants are registered at runtime from supported_xor_kernels(),
// so the same binary reports whatever the host CPU offers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "codes/xor_kernels.h"
#include "util/aligned.h"
#include "util/rng.h"

namespace {

using fbf::codes::set_xor_kernel;
using fbf::codes::supported_xor_kernels;
using fbf::codes::XorKernel;

using Buffer = std::vector<std::byte, fbf::util::AlignedAllocator<std::byte, 64>>;

Buffer random_buffer(std::size_t size, std::uint64_t seed) {
  Buffer b(size);
  fbf::util::Rng rng(seed);
  rng.fill_bytes(b);
  return b;
}

void bm_xor_into(benchmark::State& state, XorKernel kernel,
                 std::size_t size) {
  set_xor_kernel(kernel);
  Buffer dst = random_buffer(size, 1);
  const Buffer src = random_buffer(size, 2);
  for (auto _ : state) {
    fbf::codes::xor_into(dst, src);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}

void bm_xor_fold(benchmark::State& state, XorKernel kernel, std::size_t size,
                 std::size_t nsrcs) {
  set_xor_kernel(kernel);
  Buffer dst = random_buffer(size, 1);
  std::vector<Buffer> sources;
  std::vector<std::span<const std::byte>> srcs;
  for (std::size_t s = 0; s < nsrcs; ++s) {
    sources.push_back(random_buffer(size, 100 + s));
  }
  for (const Buffer& b : sources) {
    srcs.push_back(b);
  }
  for (auto _ : state) {
    fbf::codes::xor_fold(dst, srcs);
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size * nsrcs));
}

// The pre-kernel-layer codec pattern: zero the destination, then one
// dst-rewriting xor_into pass per chain member.
void bm_xor_sequential(benchmark::State& state, XorKernel kernel,
                       std::size_t size, std::size_t nsrcs) {
  set_xor_kernel(kernel);
  Buffer dst = random_buffer(size, 1);
  std::vector<Buffer> sources;
  for (std::size_t s = 0; s < nsrcs; ++s) {
    sources.push_back(random_buffer(size, 100 + s));
  }
  for (auto _ : state) {
    std::fill(dst.begin(), dst.end(), std::byte{0});
    for (const Buffer& b : sources) {
      fbf::codes::xor_into(dst, b);
    }
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size * nsrcs));
}

std::string size_label(std::size_t size) {
  if (size >= (1u << 20)) {
    return std::to_string(size >> 20) + "MiB";
  }
  return std::to_string(size >> 10) + "KiB";
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::size_t> sizes{4u << 10,  16u << 10, 32u << 10,
                                       64u << 10, 256u << 10, 1u << 20};
  const std::vector<std::size_t> chain_sizes{4, 8};
  for (XorKernel k : supported_xor_kernels()) {
    const std::string kname(fbf::codes::to_string(k));
    for (std::size_t size : sizes) {
      benchmark::RegisterBenchmark(
          ("xor_into/" + kname + "/" + size_label(size)).c_str(),
          [k, size](benchmark::State& s) { bm_xor_into(s, k, size); });
    }
    for (std::size_t nsrcs : chain_sizes) {
      for (std::size_t size : {32u << 10, 256u << 10}) {
        benchmark::RegisterBenchmark(
            ("xor_fold/" + kname + "/" + size_label(size) + "/srcs:" +
             std::to_string(nsrcs))
                .c_str(),
            [k, size, nsrcs](benchmark::State& s) {
              bm_xor_fold(s, k, size, nsrcs);
            });
        benchmark::RegisterBenchmark(
            ("xor_sequential/" + kname + "/" + size_label(size) + "/srcs:" +
             std::to_string(nsrcs))
                .c_str(),
            [k, size, nsrcs](benchmark::State& s) {
              bm_xor_sequential(s, k, size, nsrcs);
            });
      }
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
