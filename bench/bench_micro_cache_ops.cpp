// Microbenchmarks (google-benchmark): per-operation cost of each cache
// policy and of recovery-scheme generation — the raw numbers behind the
// Table IV overhead story.
//
// BaselineLru/BaselineFbf replicate the pre-flat-core implementations
// (std::list + std::unordered_map, one heap node per entry) so the
// BM_CacheRequest vs BM_CacheRequestBaseline ratio measures exactly what
// the slab/intrusive-list/open-addressing port bought. BM_RunSweep is the
// end-to-end check that the per-op win survives inside a full simulation.
#include <benchmark/benchmark.h>

#include <list>
#include <unordered_map>

#include "cache/policy.h"
#include "codes/builders.h"
#include "core/sweep.h"
#include "recovery/scheme.h"
#include "util/check.h"
#include "util/rng.h"

namespace {

using namespace fbf;

// ---- Pre-port policy replicas (node-per-entry, hashed index). ----

class BaselineLru final : public cache::CachePolicy {
 public:
  explicit BaselineLru(std::size_t capacity) : CachePolicy(capacity) {}

  bool contains(cache::Key key) const override { return index_.count(key) > 0; }
  std::size_t size() const override { return index_.size(); }
  const char* name() const override { return "baseline-LRU"; }

 protected:
  bool handle(cache::Key key, int /*priority*/) override {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      order_.splice(order_.end(), order_, it->second);
      return true;
    }
    if (index_.size() >= capacity()) {
      const cache::Key victim = order_.front();
      index_.erase(victim);
      order_.pop_front();
      note_eviction(victim);
    }
    order_.push_back(key);
    index_.emplace(key, std::prev(order_.end()));
    return false;
  }

 private:
  std::list<cache::Key> order_;  // front = LRU, back = MRU
  std::unordered_map<cache::Key, std::list<cache::Key>::iterator> index_;
};

class BaselineFbf final : public cache::CachePolicy {
 public:
  explicit BaselineFbf(std::size_t capacity) : CachePolicy(capacity) {}

  bool contains(cache::Key key) const override { return index_.count(key) > 0; }
  std::size_t size() const override { return index_.size(); }
  const char* name() const override { return "baseline-FBF"; }

 protected:
  bool handle(cache::Key key, int priority) override {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      const Entry e = it->second;
      queue(e.level).erase(e.pos);
      attach(key, e.level > 1 ? e.level - 1 : 1);
      return true;
    }
    if (index_.size() >= capacity()) {
      for (int level = 1; level <= 3; ++level) {
        auto& q = queue(level);
        if (!q.empty()) {
          const cache::Key victim = q.front();
          q.pop_front();
          index_.erase(victim);
          note_eviction(victim);
          break;
        }
      }
    }
    attach(key, priority);
    return false;
  }

 private:
  struct Entry {
    int level = 1;
    std::list<cache::Key>::iterator pos;
  };

  std::list<cache::Key>& queue(int level) { return queues_[level - 1]; }

  void attach(cache::Key key, int level) {
    auto& q = queue(level);
    q.push_back(key);
    index_[key] = Entry{level, std::prev(q.end())};
  }

  std::list<cache::Key> queues_[3];
  std::unordered_map<cache::Key, Entry> index_;
};

void BM_CacheRequest(benchmark::State& state) {
  const auto policy = static_cast<cache::PolicyId>(state.range(0));
  const auto cache = cache::make_policy(policy, 1024);
  util::Rng rng(7);
  std::vector<cache::Key> keys(1 << 14);
  std::vector<int> prios(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<cache::Key>(rng.uniform_int(0, 4095));
    prios[i] = static_cast<int>(rng.uniform_int(1, 3));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache->request(keys[i], prios[i]));
    i = (i + 1) & (keys.size() - 1);
  }
  state.SetLabel(cache->name());
}
BENCHMARK(BM_CacheRequest)
    ->Arg(static_cast<int>(cache::PolicyId::Fifo))
    ->Arg(static_cast<int>(cache::PolicyId::Lru))
    ->Arg(static_cast<int>(cache::PolicyId::Lfu))
    ->Arg(static_cast<int>(cache::PolicyId::Arc))
    ->Arg(static_cast<int>(cache::PolicyId::Lru2))
    ->Arg(static_cast<int>(cache::PolicyId::TwoQ))
    ->Arg(static_cast<int>(cache::PolicyId::Fbf));

// Same trace and capacity as BM_CacheRequest so the two series divide
// directly into a speedup.
template <typename Policy>
void BM_CacheRequestBaseline(benchmark::State& state) {
  Policy cache(1024);
  util::Rng rng(7);
  std::vector<cache::Key> keys(1 << 14);
  std::vector<int> prios(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<cache::Key>(rng.uniform_int(0, 4095));
    prios[i] = static_cast<int>(rng.uniform_int(1, 3));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.request(keys[i], prios[i]));
    i = (i + 1) & (keys.size() - 1);
  }
  state.SetLabel(cache.name());
}
BENCHMARK(BM_CacheRequestBaseline<BaselineLru>);
BENCHMARK(BM_CacheRequestBaseline<BaselineFbf>);

// End-to-end: a small but complete sweep (scheme generation, SOR engine,
// cache, disk model), the wall clock the flat core and the simulator
// churn elimination actually move.
void BM_RunSweep(benchmark::State& state) {
  core::ExperimentConfig cfg;
  cfg.code = codes::CodeId::Tip;
  cfg.p = 5;
  cfg.num_errors = 16;
  cfg.workers = 8;
  const std::vector<std::size_t> sizes{2ull << 20, 8ull << 20};
  const std::vector<cache::PolicyId> policies{cache::PolicyId::Lru,
                                              cache::PolicyId::Fbf};
  for (auto _ : state) {
    const auto points = core::run_sweep(cfg, sizes, policies, 1);
    benchmark::DoNotOptimize(points.data());
  }
  state.SetLabel("TIP p=5, 16 errors, 2x2 grid");
}
BENCHMARK(BM_RunSweep)->Unit(benchmark::kMillisecond);

void BM_SchemeGeneration(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const codes::Layout layout = codes::make_layout(codes::CodeId::Tip, p);
  const recovery::PartialStripeError err{0, 0, (p - 1) / 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recovery::generate_scheme(layout, err, recovery::SchemeKind::RoundRobin));
  }
  state.SetLabel("TIP p=" + std::to_string(p));
}
BENCHMARK(BM_SchemeGeneration)->Arg(5)->Arg(7)->Arg(11)->Arg(13);

void BM_SchemeGenerationStar(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const codes::Layout layout = codes::make_layout(codes::CodeId::Star, p);
  const recovery::PartialStripeError err{0, 0, p - 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recovery::generate_scheme(layout, err, recovery::SchemeKind::RoundRobin));
  }
  state.SetLabel("STAR p=" + std::to_string(p));
}
BENCHMARK(BM_SchemeGenerationStar)->Arg(5)->Arg(7)->Arg(11)->Arg(13);

void BM_LayoutConstruction(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codes::make_layout(codes::CodeId::Star, p));
  }
}
BENCHMARK(BM_LayoutConstruction)->Arg(5)->Arg(13);

}  // namespace
