// Microbenchmarks (google-benchmark): per-operation cost of each cache
// policy and of recovery-scheme generation — the raw numbers behind the
// Table IV overhead story.
#include <benchmark/benchmark.h>

#include "cache/policy.h"
#include "codes/builders.h"
#include "recovery/scheme.h"
#include "util/rng.h"

namespace {

using namespace fbf;

void BM_CacheRequest(benchmark::State& state) {
  const auto policy = static_cast<cache::PolicyId>(state.range(0));
  const auto cache = cache::make_policy(policy, 1024);
  util::Rng rng(7);
  std::vector<cache::Key> keys(1 << 14);
  std::vector<int> prios(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<cache::Key>(rng.uniform_int(0, 4095));
    prios[i] = static_cast<int>(rng.uniform_int(1, 3));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache->request(keys[i], prios[i]));
    i = (i + 1) & (keys.size() - 1);
  }
  state.SetLabel(cache->name());
}
BENCHMARK(BM_CacheRequest)
    ->Arg(static_cast<int>(cache::PolicyId::Fifo))
    ->Arg(static_cast<int>(cache::PolicyId::Lru))
    ->Arg(static_cast<int>(cache::PolicyId::Lfu))
    ->Arg(static_cast<int>(cache::PolicyId::Arc))
    ->Arg(static_cast<int>(cache::PolicyId::Lru2))
    ->Arg(static_cast<int>(cache::PolicyId::TwoQ))
    ->Arg(static_cast<int>(cache::PolicyId::Fbf));

void BM_SchemeGeneration(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const codes::Layout layout = codes::make_layout(codes::CodeId::Tip, p);
  const recovery::PartialStripeError err{0, 0, (p - 1) / 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recovery::generate_scheme(layout, err, recovery::SchemeKind::RoundRobin));
  }
  state.SetLabel("TIP p=" + std::to_string(p));
}
BENCHMARK(BM_SchemeGeneration)->Arg(5)->Arg(7)->Arg(11)->Arg(13);

void BM_SchemeGenerationStar(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const codes::Layout layout = codes::make_layout(codes::CodeId::Star, p);
  const recovery::PartialStripeError err{0, 0, p - 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        recovery::generate_scheme(layout, err, recovery::SchemeKind::RoundRobin));
  }
  state.SetLabel("STAR p=" + std::to_string(p));
}
BENCHMARK(BM_SchemeGenerationStar)->Arg(5)->Arg(7)->Arg(11)->Arg(13);

void BM_LayoutConstruction(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codes::make_layout(codes::CodeId::Star, p));
  }
}
BENCHMARK(BM_LayoutConstruction)->Arg(5)->Arg(13);

}  // namespace
