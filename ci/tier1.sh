#!/usr/bin/env bash
# Tier-1 verification, three times: the default build (SIMD kernels ON,
# runtime dispatch picks the widest variant the host supports), a
# scalar-only build (-DFBF_ENABLE_SIMD=OFF) so the fallback path every
# non-x86/ARM or flag-less toolchain would take stays covered, and an
# ASan+UBSan build (-DFBF_SANITIZE=ON) so memory errors and UB in any
# tested path fail CI instead of lurking. FBF_VALIDATE=1 turns on the
# cross-engine conservation-law checks (src/sim/validate.h) in every run.
#
# After each config's tests, a bench smoke run exercises the harness
# binaries the tests don't link: the cache-ops microbench (one iteration
# per benchmark — this catches flag/registration breakage, not perf) and
# a tiny Table-V sweep that drives the full figure pipeline end to end.
# An obs smoke run then re-drives that sweep with --metrics-out/--trace-out
# and feeds the artifacts to tools/obs_schema_check, which enforces the
# metrics schema, the counter conservation laws, trace-event well-formedness,
# and byte-level determinism of the metrics across two same-seed runs.
# Finally a fault smoke runs a tiny URE x straggler matrix through
# bench_ext_fault_sweep twice per engine and diffs the CSVs: the fault
# stream is a pure function of the seed, so any byte of divergence is a
# determinism regression in the injection layer. An app smoke does the
# same for the online-recovery path (foreground traffic, deadlines, and
# the recovery throttle on both engines, via bench_app_slo), and a write
# smoke for the partial-stripe write path (parity-update planner plus the
# dirty write-back cache, via bench_ext_write_sweep).
#
# The engine smoke then drives the event-core macro bench (bench_engine,
# one rep — wiring coverage, not perf) and re-runs the fault matrix with
# FBF_GLOBAL_EVENT_HEAP=1, which collapses the sharded event queues to a
# single global heap. Sharded and single-heap runs must produce
# byte-identical CSVs and identical deterministic metrics documents: the
# (ts, seq) total order leaves only one correct pop sequence, so any
# divergence is an ordering bug in the shard/merge-frontier layer. The
# same matrix then re-runs with FBF_DOR_LEGACY_LOOP=1 and is diffed
# against the default (coalesced) DOR run: the service-cursor fast path
# must reproduce the seed loop's bytes exactly (DESIGN §14).
set -euo pipefail
cd "$(dirname "$0")/.."
export FBF_VALIDATE=1

bench_smoke() {
  local build_dir="$1"
  "${build_dir}/bench/bench_micro_cache_ops" \
    --benchmark_min_time=0 --benchmark_repetitions=1 >/dev/null
  "${build_dir}/bench/bench_table5_summary" \
    --errors=8 --workers=4 --sizes-mb=2,8 --p=5 >/dev/null
}

obs_smoke() {
  local build_dir="$1"
  local out="${build_dir}/obs-smoke"
  rm -rf "$out"
  mkdir -p "$out"
  "${build_dir}/bench/bench_table5_summary" \
    --errors=6 --workers=4 --sizes-mb=2,8 --p=5 \
    --metrics-out="${out}/metrics1.json" --trace-out="${out}/trace1.json" \
    >/dev/null
  "${build_dir}/bench/bench_table5_summary" \
    --errors=6 --workers=4 --sizes-mb=2,8 --p=5 \
    --metrics-out="${out}/metrics2.json" >/dev/null
  "${build_dir}/tools/obs_schema_check" "${out}/metrics1.json" \
    --trace="${out}/trace1.json" --compare="${out}/metrics2.json"
}

fault_smoke() {
  local build_dir="$1"
  local out="${build_dir}/fault-smoke"
  rm -rf "$out"
  mkdir -p "$out"
  local engine
  for engine in sor dor; do
    local run
    for run in 1 2; do
      "${build_dir}/bench/bench_ext_fault_sweep" \
        --engine="$engine" --errors=8 --workers=4 --csv \
        --ure-rates=0,0.001 --straggler-factors=1,4 \
        >"${out}/${engine}${run}.csv"
    done
    cmp "${out}/${engine}1.csv" "${out}/${engine}2.csv" || {
      echo "fault sweep (${engine}) is not deterministic" >&2
      exit 1
    }
  done
}

# Online-recovery smoke: bench_app_slo drives foreground traffic plus the
# recovery throttle through both engines twice with the same seed. The
# CSVs must be byte-identical (the app path shares the engines'
# determinism contract) and the exported metrics must pass the schema
# check — including the app.* conservation laws — and match across the
# two runs modulo wall_clock.
app_smoke() {
  local build_dir="$1"
  local out="${build_dir}/app-smoke"
  rm -rf "$out"
  mkdir -p "$out"
  local run
  for run in 1 2; do
    "${build_dir}/bench/bench_app_slo" \
      --errors=8 --workers=4 --csv \
      --app-requests=120 --app-interarrival-ms=3 --app-read-fraction=0.7 \
      --app-deadline-ms=25 --throttles=0,300 \
      --metrics-out="${out}/slo${run}.json" \
      >"${out}/slo${run}.csv"
  done
  cmp "${out}/slo1.csv" "${out}/slo2.csv" || {
    echo "app SLO sweep is not deterministic" >&2
    exit 1
  }
  "${build_dir}/tools/obs_schema_check" "${out}/slo1.json" \
    --compare="${out}/slo2.json"
}

# Write-path smoke: bench_ext_write_sweep drives the parity-update planner
# and the dirty write-back cache through both engines (legacy RMW and
# planned columns per grid point) twice with the same seed. The CSVs must
# be byte-identical, and the exported metrics must pass the schema check —
# including the run.write.* conservation laws (dirty_installed == flushed +
# lost_dirty; disk_writes == spare writes + write-backs + parity updates) —
# and match across the two runs modulo wall_clock.
write_smoke() {
  local build_dir="$1"
  local out="${build_dir}/write-smoke"
  rm -rf "$out"
  mkdir -p "$out"
  local run
  for run in 1 2; do
    "${build_dir}/bench/bench_ext_write_sweep" \
      --errors=8 --workers=4 --csv \
      --write-fracs=0.3,0.7 --app-requests=150 --app-interarrival-ms=2 \
      --write-cache-chunks=16 --write-flush-ms=20 \
      --metrics-out="${out}/write${run}.json" \
      >"${out}/write${run}.csv"
  done
  cmp "${out}/write1.csv" "${out}/write2.csv" || {
    echo "write sweep is not deterministic" >&2
    exit 1
  }
  "${build_dir}/tools/obs_schema_check" "${out}/write1.json" \
    --compare="${out}/write2.json"
}

# Layout smoke: every disk-mapping strategy is driven end to end through
# fbfsim twice with the same seed; the CSVs must be byte-identical (the
# geometry is a pure function of (stripe, cell)) and the declustered
# strategies additionally run over a pool wider than the stripe. The
# metrics export from one strategy run feeds obs_schema_check so the
# conservation laws hold under a wide pool too.
layout_smoke() {
  local build_dir="$1"
  local out="${build_dir}/layout-smoke"
  rm -rf "$out"
  mkdir -p "$out"
  local layout
  for layout in naive rotate tdesign d3; do
    local pool=0
    if [ "$layout" = "tdesign" ] || [ "$layout" = "d3" ]; then
      pool=12
    fi
    local run
    for run in 1 2; do
      # The scheme-gen row is genuine wall time; everything else in the
      # table is deterministic per seed.
      "${build_dir}/examples/fbfsim" \
        --code=tip --p=7 --errors=16 --workers=4 --cache-mb=8 --csv \
        --layout="$layout" --pool-size="$pool" \
        --metrics-out="${out}/${layout}${run}.json" \
        | grep -v "scheme gen wall" >"${out}/${layout}${run}.csv"
    done
    cmp "${out}/${layout}1.csv" "${out}/${layout}2.csv" || {
      echo "layout ${layout} is not deterministic" >&2
      exit 1
    }
    "${build_dir}/tools/obs_schema_check" "${out}/${layout}1.json" \
      --compare="${out}/${layout}2.json"
  done
}

engine_smoke() {
  local build_dir="$1"
  local out="${build_dir}/engine-smoke"
  rm -rf "$out"
  mkdir -p "$out"
  "${build_dir}/bench/bench_engine" \
    --engine=sor,dor --p=5 --errors=64 --workers=8 --reps=1 --csv >/dev/null
  local engine
  for engine in sor dor; do
    "${build_dir}/bench/bench_ext_fault_sweep" \
      --engine="$engine" --errors=8 --workers=4 --csv \
      --ure-rates=0,0.001 --straggler-factors=1,4 \
      --metrics-out="${out}/${engine}_shard.json" \
      >"${out}/${engine}_shard.csv"
    FBF_GLOBAL_EVENT_HEAP=1 "${build_dir}/bench/bench_ext_fault_sweep" \
      --engine="$engine" --errors=8 --workers=4 --csv \
      --ure-rates=0,0.001 --straggler-factors=1,4 \
      --metrics-out="${out}/${engine}_global.json" \
      >"${out}/${engine}_global.csv"
    cmp "${out}/${engine}_shard.csv" "${out}/${engine}_global.csv" || {
      echo "sharded vs global event heap diverge (${engine})" >&2
      exit 1
    }
    "${build_dir}/tools/obs_schema_check" "${out}/${engine}_shard.json" \
      --compare="${out}/${engine}_global.json"
  done
  # The DOR coalesced loop (service cursors + batched cache admission) is
  # byte-identical to the seed's one-event-per-read loop by contract;
  # FBF_DOR_LEGACY_LOOP=1 selects the legacy loop so the contract stays
  # checkable end to end (CSV bytes and exported metrics).
  FBF_DOR_LEGACY_LOOP=1 "${build_dir}/bench/bench_ext_fault_sweep" \
    --engine=dor --errors=8 --workers=4 --csv \
    --ure-rates=0,0.001 --straggler-factors=1,4 \
    --metrics-out="${out}/dor_legacy.json" \
    >"${out}/dor_legacy.csv"
  cmp "${out}/dor_shard.csv" "${out}/dor_legacy.csv" || {
    echo "coalesced vs legacy DOR loop diverge" >&2
    exit 1
  }
  "${build_dir}/tools/obs_schema_check" "${out}/dor_shard.json" \
    --compare="${out}/dor_legacy.json"
}

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j
bench_smoke build
obs_smoke build
fault_smoke build
app_smoke build
write_smoke build
layout_smoke build
engine_smoke build

cmake -B build-scalar -S . -DFBF_ENABLE_SIMD=OFF
cmake --build build-scalar -j
ctest --test-dir build-scalar --output-on-failure -j
bench_smoke build-scalar
obs_smoke build-scalar
fault_smoke build-scalar
app_smoke build-scalar
write_smoke build-scalar
layout_smoke build-scalar
engine_smoke build-scalar

cmake -B build-asan -S . -DFBF_SANITIZE=ON
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j
bench_smoke build-asan
obs_smoke build-asan
fault_smoke build-asan
app_smoke build-asan
write_smoke build-asan
layout_smoke build-asan
engine_smoke build-asan
