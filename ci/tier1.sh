#!/usr/bin/env bash
# Tier-1 verification, twice: the default build (SIMD kernels ON, runtime
# dispatch picks the widest variant the host supports) and a scalar-only
# build (-DFBF_ENABLE_SIMD=OFF), so the fallback path every non-x86/ARM or
# flag-less toolchain would take stays covered by the full test suite.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

cmake -B build-scalar -S . -DFBF_ENABLE_SIMD=OFF
cmake --build build-scalar -j
ctest --test-dir build-scalar --output-on-failure -j
