#!/usr/bin/env bash
# Tier-1 verification, three times: the default build (SIMD kernels ON,
# runtime dispatch picks the widest variant the host supports), a
# scalar-only build (-DFBF_ENABLE_SIMD=OFF) so the fallback path every
# non-x86/ARM or flag-less toolchain would take stays covered, and an
# ASan+UBSan build (-DFBF_SANITIZE=ON) so memory errors and UB in any
# tested path fail CI instead of lurking. FBF_VALIDATE=1 turns on the
# cross-engine conservation-law checks (src/sim/validate.h) in every run.
set -euo pipefail
cd "$(dirname "$0")/.."
export FBF_VALIDATE=1

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

cmake -B build-scalar -S . -DFBF_ENABLE_SIMD=OFF
cmake --build build-scalar -j
ctest --test-dir build-scalar --output-on-failure -j

cmake -B build-asan -S . -DFBF_SANITIZE=ON
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j
