// Runs one reconstruction workload across every cache policy (the paper's
// five plus the extensions) and prints the four metrics side by side.
//
//   ./cache_shootout --code=tip --p=11 --cache-mb=8 --errors=100
#include <iostream>

#include "core/experiment.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const util::Flags flags(argc, argv);
  flags.check_known(
      {"code", "p", "cache-mb", "errors", "workers", "seed", "csv"});

  core::ExperimentConfig cfg;
  cfg.code = codes::code_from_string(flags.get_string("code", "tip"));
  cfg.p = static_cast<int>(flags.get_int("p", 11));
  cfg.cache_bytes =
      static_cast<std::size_t>(flags.get_int("cache-mb", 8)) << 20;
  cfg.num_errors = static_cast<int>(flags.get_int("errors", 100));
  cfg.workers = static_cast<int>(flags.get_int("workers", 16));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  util::Table table("cache policy shootout — " + cfg.label());
  table.headers({"policy", "hit ratio", "disk reads", "avg resp (ms)",
                 "p99 resp (ms)", "reconstruction (ms)"});
  for (cache::PolicyId policy :
       {cache::PolicyId::Fifo, cache::PolicyId::Lru, cache::PolicyId::Lfu,
        cache::PolicyId::Arc, cache::PolicyId::Lru2, cache::PolicyId::TwoQ,
        cache::PolicyId::Fbf}) {
    cfg.policy = policy;
    const core::ExperimentResult r = core::run_experiment(cfg);
    table.add_row({cache::to_string(policy), util::fmt_percent(r.hit_ratio),
                   std::to_string(r.disk_reads),
                   util::fmt_double(r.avg_response_ms),
                   util::fmt_double(r.p99_response_ms),
                   util::fmt_double(r.reconstruction_ms, 1)});
  }
  if (flags.get_bool("csv", false)) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  return 0;
}
