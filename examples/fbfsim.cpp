// fbfsim — general-purpose driver exposing the whole experiment surface
// from the command line. One run, full metric dump.
//
//   ./fbfsim --code=star --p=13 --policy=fbf --scheme=round-robin
//            --cache-mb=64 --workers=128 --errors=400 --verify
//
// Flags (defaults in parentheses):
//   --code        tip | hdd1 | triplestar | star        (tip)
//   --p           prime parameter                        (11)
//   --policy      fifo|lru|lfu|arc|lru-2|2q|lrfu|fbf|fbf-nodemote (fbf)
//   --scheme      horizontal | round-robin | greedy | exhaustive (round-robin)
//   --cache-mb    total buffer cache                     (64)
//   --chunk-kb    chunk size                             (32)
//   --workers     SOR worker processes                   (128)
//   --errors      damaged stripes                        (400)
//   --error-col   column with errors, -1 = random        (0)
//   --disk-ms     disk access time                       (10)
//   --cache-ms    buffer cache access time               (0.5)
//   --detailed-disk  seek/rotate/transfer model          (off)
//   --no-rotate   disable column rotation
//   --same-disk-sparing  spare writes to the failed disk
//   --app-requests foreground I/O count                  (0)
//   --verify      carry real bytes, verify every recovered chunk
//   --seed        workload seed                          (42)
//   --csv         machine-readable output
//   --metrics-out write run-level metrics JSON to this file
//   --trace-out   write Chrome trace-event JSON (load in Perfetto)
//   --trace-detail "phases" (default) or "fine" (per-read disk spans)
#include <iostream>
#include <memory>

#include "core/experiment.h"
#include "obs/observer.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const util::Flags flags(argc, argv);
  flags.check_known({"code", "p", "policy", "scheme", "cache-mb", "chunk-kb",
                     "workers", "errors", "error-col", "disk-ms", "cache-ms",
                     "detailed-disk", "no-rotate", "same-disk-sparing",
                     "app-requests", "verify", "seed", "csv", "metrics-out",
                     "trace-out", "trace-detail"});

  core::ExperimentConfig cfg;
  cfg.code = codes::code_from_string(flags.get_string("code", "tip"));
  cfg.p = static_cast<int>(flags.get_int("p", 11));
  cfg.policy = cache::policy_from_string(flags.get_string("policy", "fbf"));
  cfg.scheme =
      recovery::scheme_from_string(flags.get_string("scheme", "round-robin"));
  cfg.cache_bytes =
      static_cast<std::size_t>(flags.get_int("cache-mb", 64)) << 20;
  cfg.chunk_bytes =
      static_cast<std::size_t>(flags.get_int("chunk-kb", 32)) << 10;
  cfg.workers = static_cast<int>(flags.get_int("workers", 128));
  cfg.num_errors = static_cast<int>(flags.get_int("errors", 400));
  cfg.error_col = static_cast<int>(flags.get_int("error-col", 0));
  cfg.disk_access_ms = flags.get_double("disk-ms", 10.0);
  cfg.cache_access_ms = flags.get_double("cache-ms", 0.5);
  if (flags.get_bool("detailed-disk", false)) {
    cfg.disk_model = sim::DiskModelKind::Detailed;
  }
  cfg.rotate_columns = !flags.get_bool("no-rotate", false);
  if (flags.get_bool("same-disk-sparing", false)) {
    cfg.spare_placement = sim::SparePlacement::SameDisk;
  }
  cfg.app_requests = static_cast<int>(flags.get_int("app-requests", 0));
  cfg.verify_data = flags.get_bool("verify", false);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));

  std::unique_ptr<obs::RunObserver> observer;
  const std::string metrics_out = flags.get_string("metrics-out", "");
  const std::string trace_out = flags.get_string("trace-out", "");
  const std::string detail = flags.get_string("trace-detail", "phases");
  FBF_CHECK(detail == "phases" || detail == "fine",
            "--trace-detail must be \"phases\" or \"fine\", got \"" + detail +
                "\"");
  if (!metrics_out.empty() || !trace_out.empty()) {
    obs::RunObserver::Options oo;
    oo.metrics_path = metrics_out;
    oo.trace_path = trace_out;
    oo.trace_level = trace_out.empty() ? obs::TraceLevel::Off
                     : detail == "fine" ? obs::TraceLevel::Fine
                                        : obs::TraceLevel::Phases;
    observer = std::make_unique<obs::RunObserver>(std::move(oo));
    cfg.obs = observer.get();
  }

  const core::ExperimentResult r = core::run_experiment(cfg);

  util::Table table(cfg.label());
  table.headers({"metric", "value"});
  table.add_row({"hit ratio", util::fmt_percent(r.hit_ratio)});
  table.add_row({"cache hits", std::to_string(r.cache_hits)});
  table.add_row({"cache misses", std::to_string(r.cache_misses)});
  table.add_row({"disk reads", std::to_string(r.disk_reads)});
  table.add_row({"disk writes", std::to_string(r.disk_writes)});
  table.add_row({"avg response (ms)", util::fmt_double(r.avg_response_ms)});
  table.add_row({"p99 response (ms)", util::fmt_double(r.p99_response_ms)});
  table.add_row(
      {"reconstruction (ms)", util::fmt_double(r.reconstruction_ms, 1)});
  table.add_row({"stripes recovered", std::to_string(r.stripes_recovered)});
  table.add_row({"chunks recovered", std::to_string(r.chunks_recovered)});
  table.add_row({"chunk requests", std::to_string(r.total_chunk_requests)});
  table.add_row({"schemes generated", std::to_string(r.schemes_generated)});
  table.add_row(
      {"scheme gen wall (ms)", util::fmt_double(r.scheme_gen_wall_ms, 3)});
  if (cfg.app_requests > 0) {
    table.add_row(
        {"app avg response (ms)", util::fmt_double(r.app_avg_response_ms)});
  }
  if (cfg.verify_data) {
    table.add_row({"data verification", "PASSED (all recovered chunks)"});
  }
  if (flags.get_bool("csv", false)) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (observer != nullptr) {
    // Explicit flush so write errors surface as a CheckError, not a
    // destructor-time stderr note.
    observer->write_outputs();
  }
  return 0;
}
