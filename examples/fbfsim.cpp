// fbfsim — general-purpose driver exposing the whole experiment surface
// from the command line. One run, full metric dump.
//
//   ./fbfsim --code=star --p=13 --policy=fbf --scheme=round-robin
//            --cache-mb=64 --workers=128 --errors=400 --verify
//
// Flags (defaults in parentheses):
//   --code        tip | hdd1 | triplestar | star        (tip)
//   --p           prime parameter                        (11)
//   --policy      fifo|lru|lfu|arc|lru-2|2q|lrfu|fbf|fbf-nodemote (fbf)
//   --scheme      horizontal | round-robin | greedy | exhaustive (round-robin)
//   --cache-mb    total buffer cache                     (64)
//   --chunk-kb    chunk size                             (32)
//   --workers     SOR worker processes                   (128)
//   --errors      damaged stripes                        (400)
//   --error-col   column with errors, -1 = random        (0)
//   --disk-ms     disk access time                       (10)
//   --cache-ms    buffer cache access time               (0.5)
//   --detailed-disk  seek/rotate/transfer model          (off)
//   --layout      naive | rotate | tdesign | d3          (rotate)
//   --pool-size   physical disk pool, 0 = stripe width   (0)
//   --no-rotate   shorthand for --layout=naive
//   --same-disk-sparing  spare writes to the failed disk
//   --app-*       foreground traffic knobs; see core/app_flags.h
//                 (count, interarrival, read mix, deadline, rewrite — off)
//   --recovery-throttle[-burst]  rebuild token bucket; core/app_flags.h
//   --write-*     partial-stripe write path; see core/app_flags.h
//                 (write-back cache chunks, flush period, FBF retention)
//   --verify      carry real bytes, verify every recovered chunk
//   --engine      sor | dor reconstruction engine        (sor)
//   --seed        workload seed                          (42)
//   --csv         machine-readable output
//   --metrics-out write run-level metrics JSON to this file
//   --trace-out   write Chrome trace-event JSON (load in Perfetto)
//   --trace-detail "phases" (default) or "fine" (per-read disk spans)
//   --fault-*     deterministic fault injection; see core/fault_flags.h
//                 (all off by default). A fault load beyond the 3DFT
//                 erasure budget exits 2 with the escalation diagnostic.
#include <iostream>
#include <memory>

#include "core/app_flags.h"
#include "core/experiment.h"
#include "core/fault_flags.h"
#include "obs/observer.h"
#include "sim/faults/faults.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const util::Flags flags(argc, argv);
  std::vector<std::string_view> known{
      "code",         "p",       "policy",       "scheme",
      "cache-mb",     "chunk-kb", "workers",     "errors",
      "error-col",    "disk-ms", "cache-ms",     "detailed-disk",
      "layout",       "pool-size",
      "no-rotate",    "same-disk-sparing",
      "verify",       "engine",  "seed",         "csv",
      "metrics-out",  "trace-out",               "trace-detail"};
  const auto& fault_names = core::fault_flag_names();
  known.insert(known.end(), fault_names.begin(), fault_names.end());
  const auto& app_names = core::app_flag_names();
  known.insert(known.end(), app_names.begin(), app_names.end());
  flags.check_known(known);

  core::ExperimentConfig cfg;
  cfg.code = codes::code_from_string(flags.get_string("code", "tip"));
  cfg.p = static_cast<int>(flags.get_int("p", 11));
  cfg.policy = cache::policy_from_string(flags.get_string("policy", "fbf"));
  cfg.scheme =
      recovery::scheme_from_string(flags.get_string("scheme", "round-robin"));
  cfg.cache_bytes =
      static_cast<std::size_t>(flags.get_int("cache-mb", 64)) << 20;
  cfg.chunk_bytes =
      static_cast<std::size_t>(flags.get_int("chunk-kb", 32)) << 10;
  cfg.workers = static_cast<int>(flags.get_int("workers", 128));
  cfg.num_errors = static_cast<int>(flags.get_int("errors", 400));
  cfg.error_col = static_cast<int>(flags.get_int("error-col", 0));
  cfg.disk_access_ms = flags.get_double("disk-ms", 10.0);
  cfg.cache_access_ms = flags.get_double("cache-ms", 0.5);
  if (flags.get_bool("detailed-disk", false)) {
    cfg.disk_model = sim::DiskModelKind::Detailed;
  }
  if (flags.get_bool("no-rotate", false)) {
    cfg.layout_strategy = sim::LayoutStrategy::Naive;
  }
  const std::string layout_name =
      flags.get_string("layout", sim::to_string(cfg.layout_strategy));
  FBF_CHECK(sim::layout_strategy_from_string(layout_name, cfg.layout_strategy),
            "--layout must be naive|rotate|tdesign|d3, got \"" + layout_name +
                "\"");
  cfg.pool_disks = static_cast<int>(flags.get_int("pool-size", 0));
  if (flags.get_bool("same-disk-sparing", false)) {
    cfg.spare_placement = sim::SparePlacement::SameDisk;
  }
  const core::AppFlagValues app = core::parse_app_flags(flags);
  core::apply_app_flags(app, cfg);
  cfg.verify_data = flags.get_bool("verify", false);
  const std::string engine = flags.get_string("engine", "sor");
  FBF_CHECK(engine == "sor" || engine == "dor",
            "--engine must be \"sor\" or \"dor\", got \"" + engine + "\"");
  cfg.engine = engine == "dor" ? core::EngineKind::Dor : core::EngineKind::Sor;
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  cfg.faults = core::parse_fault_flags(flags);

  std::unique_ptr<obs::RunObserver> observer;
  const std::string metrics_out = flags.get_string("metrics-out", "");
  const std::string trace_out = flags.get_string("trace-out", "");
  const std::string detail = flags.get_string("trace-detail", "phases");
  FBF_CHECK(detail == "phases" || detail == "fine",
            "--trace-detail must be \"phases\" or \"fine\", got \"" + detail +
                "\"");
  if (!metrics_out.empty() || !trace_out.empty()) {
    obs::RunObserver::Options oo;
    oo.metrics_path = metrics_out;
    oo.trace_path = trace_out;
    oo.trace_level = trace_out.empty() ? obs::TraceLevel::Off
                     : detail == "fine" ? obs::TraceLevel::Fine
                                        : obs::TraceLevel::Phases;
    observer = std::make_unique<obs::RunObserver>(std::move(oo));
    cfg.obs = observer.get();
  }

  core::ExperimentResult r;
  try {
    r = core::run_experiment(cfg);
  } catch (const sim::EscalationError& e) {
    std::cerr << "escalation beyond the 3DFT budget: stripe " << e.stripe()
              << " has " << e.lost_cells().size()
              << " outstanding lost chunks with failed disks {";
    for (std::size_t i = 0; i < e.failed_disks().size(); ++i) {
      std::cerr << (i ? ", " : "") << e.failed_disks()[i];
    }
    std::cerr << "} — not decodable.\n" << e.what() << "\n";
    return 2;
  }

  util::Table table(cfg.label());
  table.headers({"metric", "value"});
  table.add_row({"hit ratio", util::fmt_percent(r.hit_ratio)});
  table.add_row({"cache hits", std::to_string(r.cache_hits)});
  table.add_row({"cache misses", std::to_string(r.cache_misses)});
  table.add_row({"disk reads", std::to_string(r.disk_reads)});
  table.add_row({"disk writes", std::to_string(r.disk_writes)});
  table.add_row({"avg response (ms)", util::fmt_double(r.avg_response_ms)});
  table.add_row({"p99 response (ms)", util::fmt_double(r.p99_response_ms)});
  table.add_row(
      {"reconstruction (ms)", util::fmt_double(r.reconstruction_ms, 1)});
  table.add_row({"stripes recovered", std::to_string(r.stripes_recovered)});
  table.add_row({"chunks recovered", std::to_string(r.chunks_recovered)});
  table.add_row({"chunk requests", std::to_string(r.total_chunk_requests)});
  table.add_row({"schemes generated", std::to_string(r.schemes_generated)});
  table.add_row(
      {"scheme gen wall (ms)", util::fmt_double(r.scheme_gen_wall_ms, 3)});
  // App rows only appear when foreground traffic is on, so recovery-only
  // output stays byte-identical to builds that predate the SLO engine.
  if (cfg.app_requests > 0) {
    table.add_row(
        {"app avg response (ms)", util::fmt_double(r.app_avg_response_ms)});
    table.add_row(
        {"app p99 response (ms)", util::fmt_double(r.app_p99_response_ms)});
    table.add_row(
        {"app p999 response (ms)", util::fmt_double(r.app_p999_response_ms)});
    table.add_row({"app served", std::to_string(r.app_served)});
    table.add_row(
        {"app degraded reads", std::to_string(r.app_degraded_reads)});
    table.add_row(
        {"app degraded writes", std::to_string(r.app_degraded_writes)});
    if (cfg.app_deadline_ms > 0.0) {
      table.add_row(
          {"app deadline misses", std::to_string(r.app_deadline_miss)});
    }
  }
  // Write-path rows only appear when the write-back cache is on, so
  // legacy-RMW output stays byte-identical to pre-write-path builds.
  if (r.write.enabled) {
    table.add_row({"write rmw plans", std::to_string(r.write.rmw_plans)});
    table.add_row({"write rcw plans", std::to_string(r.write.rcw_plans)});
    table.add_row(
        {"write degraded plans", std::to_string(r.write.degraded_plans)});
    table.add_row(
        {"write plan disk reads", std::to_string(r.write.plan_disk_reads)});
    table.add_row(
        {"write parity updates", std::to_string(r.write.parity_updates)});
    table.add_row({"write cache hits", std::to_string(r.write.write_hits)});
    table.add_row(
        {"write dirty installed", std::to_string(r.write.dirty_installed)});
    table.add_row({"write write-backs", std::to_string(r.write.write_backs)});
    table.add_row(
        {"write retained dirty", std::to_string(r.write.retained_dirty)});
    table.add_row({"write lost dirty", std::to_string(r.write.lost_dirty)});
  }
  if (cfg.verify_data) {
    table.add_row({"data verification", "PASSED (all recovered chunks)"});
  }
  // Fault rows only appear when injection is on, so fault-free output stays
  // byte-identical to builds that predate the fault layer.
  if (cfg.faults.enabled()) {
    table.add_row({"fault sector errors", std::to_string(r.fault.sector_errors)});
    table.add_row(
        {"fault transient fails", std::to_string(r.fault.transient_failures)});
    table.add_row({"fault retries", std::to_string(r.fault.retries)});
    table.add_row(
        {"fault dead-disk reads", std::to_string(r.fault.dead_disk_reads)});
    table.add_row({"fault replans", std::to_string(r.fault.replans)});
    table.add_row(
        {"fault gauss fallbacks", std::to_string(r.fault.gauss_fallbacks)});
    table.add_row({"fault disk failures", std::to_string(r.fault.disk_failures)});
    table.add_row(
        {"fault escalated stripes", std::to_string(r.fault.escalated_stripes)});
    table.add_row(
        {"fault extra lost chunks", std::to_string(r.fault.extra_lost_chunks)});
    table.add_row({"fault respared", std::to_string(r.fault.respared)});
    table.add_row(
        {"fault straggler disks", std::to_string(r.fault.straggler_disks)});
  }
  if (flags.get_bool("csv", false)) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (observer != nullptr) {
    // Explicit flush so write errors surface as a CheckError, not a
    // destructor-time stderr note.
    observer->write_outputs();
  }
  return 0;
}
