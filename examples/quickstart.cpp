// Quickstart: encode a stripe, damage it, generate an FBF recovery scheme,
// replay it through the FBF cache, and verify the recovered bytes.
//
//   ./quickstart [--code=tip|hdd1|triplestar|star] [--p=7] [--chunks=3]
#include <iostream>

#include "cache/fbf_policy.h"
#include "codes/builders.h"
#include "codes/codec.h"
#include "recovery/priority.h"
#include "recovery/request_sequence.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const util::Flags flags(argc, argv);
  flags.check_known({"code", "p", "chunks"});
  const auto code = codes::code_from_string(
      flags.get_string("code", "tip"));
  const int p = static_cast<int>(flags.get_int("p", 7));
  const int chunks = static_cast<int>(flags.get_int("chunks", 3));

  // 1. Build the layout and an encoded stripe of random data.
  const codes::Layout layout = codes::make_layout(code, p);
  std::cout << "Layout: " << layout.name() << " — " << layout.rows() << "x"
            << layout.cols() << " chunks, " << layout.chains().size()
            << " parity chains\n";
  codes::StripeData stripe(layout, 4096);
  util::Rng rng(1);
  stripe.fill_random(rng);
  codes::encode(stripe);
  const codes::StripeData original = stripe;

  // 2. Inject a partial stripe error: `chunks` contiguous bad chunks on
  //    disk 0 (the paper's error model).
  const recovery::PartialStripeError error{0, 0, chunks};
  for (const codes::Cell& c : error.cells()) {
    stripe.erase(c);
    std::cout << "damaged " << codes::to_string(c) << "\n";
  }

  // 3. Generate the FBF recovery scheme (round-robin over the three parity
  //    chain directions) and its priority dictionary.
  const recovery::RecoveryScheme scheme = recovery::generate_scheme(
      layout, error, recovery::SchemeKind::RoundRobin);
  std::cout << "\nRecovery scheme: " << scheme.steps.size() << " steps, "
            << scheme.distinct_reads() << " distinct reads for "
            << scheme.total_references << " chunk references\n";
  std::cout << recovery::priority_table(layout, scheme);

  // 4. Replay the request sequence through an FBF cache and execute the
  //    XORs on the real bytes.
  cache::FbfCache cache(8);
  for (const recovery::ChunkOp& op :
       recovery::build_request_sequence(layout, scheme)) {
    if (op.kind == recovery::OpKind::Read) {
      cache.request(static_cast<cache::Key>(layout.cell_index(op.cell)),
                    op.priority);
    } else {
      const auto& step = scheme.steps[static_cast<std::size_t>(op.step)];
      auto out = stripe.chunk(step.target);
      std::fill(out.begin(), out.end(), std::byte{0});
      for (const codes::Cell& c : layout.chain(step.chain_id).cells) {
        if (c != step.target) {
          codes::xor_into(out, stripe.chunk(c));
        }
      }
      cache.install(static_cast<cache::Key>(layout.cell_index(op.cell)),
                    op.priority);
    }
  }

  // 5. Verify every recovered chunk against the original stripe.
  bool ok = true;
  for (const codes::Cell& c : error.cells()) {
    const auto got = stripe.chunk(c);
    const auto want = original.chunk(c);
    ok &= std::equal(got.begin(), got.end(), want.begin());
  }
  std::cout << "\nrecovered " << chunks << " chunks: "
            << (ok ? "VERIFIED" : "MISMATCH") << "\n";
  std::cout << "cache during recovery: " << cache.stats().hits << " hits / "
            << cache.stats().misses << " misses\n";
  return ok ? 0 : 1;
}
