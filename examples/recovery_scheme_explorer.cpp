// Renders a stripe layout and a recovery scheme as ASCII art — the
// reproduction of the paper's Figures 1-3: which chains the scheme picks,
// which chunks they share, and the resulting priority dictionary.
//
//   ./recovery_scheme_explorer --code=triplestar --p=7 --col=0
//       --start=0 --chunks=5 --scheme=round-robin
#include <algorithm>
#include <iostream>

#include "codes/builders.h"
#include "recovery/priority.h"
#include "recovery/scheme.h"
#include "util/flags.h"

namespace {

using namespace fbf;

char direction_glyph(codes::Direction d) {
  switch (d) {
    case codes::Direction::Horizontal:
      return 'H';
    case codes::Direction::Diagonal:
      return 'D';
    case codes::Direction::AntiDiagonal:
      return 'A';
  }
  return '?';
}

void print_grid(const codes::Layout& layout,
                const recovery::RecoveryScheme& scheme,
                const std::vector<codes::Cell>& lost) {
  auto is_lost = [&lost](codes::Cell c) {
    return std::find(lost.begin(), lost.end(), c) != lost.end();
  };
  std::cout << "     ";
  for (int col = 0; col < layout.cols(); ++col) {
    std::cout << "D" << col << (col < 10 ? "  " : " ");
  }
  std::cout << "\n";
  for (int row = 0; row < layout.rows(); ++row) {
    std::cout << "r" << row << (row < 10 ? "   " : "  ");
    for (int col = 0; col < layout.cols(); ++col) {
      const codes::Cell c{static_cast<std::int16_t>(row),
                          static_cast<std::int16_t>(col)};
      const auto prio =
          scheme.priority[static_cast<std::size_t>(layout.cell_index(c))];
      char glyph = '.';
      if (is_lost(c)) {
        glyph = 'X';  // damaged chunk
      } else if (prio == 3) {
        glyph = '3';
      } else if (prio == 2) {
        glyph = '2';
      } else if (prio == 1) {
        glyph = '1';
      } else if (layout.kind(c) == codes::CellKind::Parity) {
        glyph = 'p';  // parity cell not used by this scheme
      }
      std::cout << glyph << "   ";
    }
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  flags.check_known({"code", "p", "col", "start", "chunks", "scheme"});
  const auto code = codes::code_from_string(
      flags.get_string("code", "triplestar"));
  const int p = static_cast<int>(flags.get_int("p", 7));
  const recovery::PartialStripeError error{
      static_cast<int>(flags.get_int("col", 0)),
      static_cast<int>(flags.get_int("start", 0)),
      static_cast<int>(flags.get_int("chunks", 5))};
  const auto kind = recovery::scheme_from_string(
      flags.get_string("scheme", "round-robin"));

  const codes::Layout layout = codes::make_layout(code, p);
  const recovery::RecoveryScheme scheme =
      recovery::generate_scheme(layout, error, kind);

  std::cout << layout.name() << ", scheme=" << recovery::to_string(kind)
            << ", error: col=" << error.col << " rows [" << error.first_row
            << ", " << error.first_row + error.num_chunks - 1 << "]\n\n";
  std::cout << "Legend: X damaged, 1/2/3 fetched chunk priority, "
               "p unused parity, . untouched\n\n";
  print_grid(layout, scheme, error.cells());

  std::cout << "\nChain selection (in peeling order):\n";
  for (const recovery::RecoveryStep& step : scheme.steps) {
    const codes::Chain& ch = layout.chain(step.chain_id);
    std::cout << "  " << codes::to_string(step.target) << " <- "
              << direction_glyph(ch.dir) << "-chain via "
              << codes::to_string(ch.parity_cell) << " ("
              << ch.cells.size() - 1 << " sources)\n";
  }

  std::cout << "\nPriority dictionary (paper Table III format):\n"
            << recovery::priority_table(layout, scheme);
  std::cout << "total references: " << scheme.total_references
            << ", distinct reads: " << scheme.distinct_reads()
            << " (saved " << scheme.total_references - scheme.distinct_reads()
            << " I/Os vs refetching everything)\n";
  return 0;
}
