// Online recovery: reconstruction racing foreground application I/O on the
// same disks (the scenario the paper's conclusion flags as future-proof).
// Shows how FBF's lower read count frees disk time for the application.
//
//   ./online_recovery_demo --code=triplestar --p=7 --app-requests=2000
//       --app-deadline-ms=25 --recovery-throttle=800 --engine=dor
//
// --app-*/--recovery-throttle spell the full online-recovery vocabulary
// (core/app_flags.h): mixed read/write traffic, per-request deadlines, and
// a rebuild token bucket that trades reconstruction time for tail latency.
#include <iostream>
#include <memory>

#include "core/app_flags.h"
#include "core/experiment.h"
#include "obs/observer.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const util::Flags flags(argc, argv);
  std::vector<std::string_view> known{"code",    "p",           "cache-mb",
                                      "errors",  "workers",     "engine",
                                      "metrics-out", "trace-out"};
  const auto& app_names = core::app_flag_names();
  known.insert(known.end(), app_names.begin(), app_names.end());
  flags.check_known(known);

  core::ExperimentConfig cfg;
  cfg.code = codes::code_from_string(flags.get_string("code", "triplestar"));
  cfg.p = static_cast<int>(flags.get_int("p", 7));
  cfg.cache_bytes =
      static_cast<std::size_t>(flags.get_int("cache-mb", 8)) << 20;
  cfg.num_errors = static_cast<int>(flags.get_int("errors", 80));
  cfg.workers = static_cast<int>(flags.get_int("workers", 16));
  const std::string engine = flags.get_string("engine", "sor");
  FBF_CHECK(engine == "sor" || engine == "dor",
            "--engine must be \"sor\" or \"dor\", got \"" + engine + "\"");
  cfg.engine = engine == "dor" ? core::EngineKind::Dor : core::EngineKind::Sor;
  const core::AppFlagValues app = core::parse_app_flags(flags);
  // The demo is about foreground traffic, so default it on.
  cfg.app_requests = app.requests > 0 ? app.requests : 2000;
  cfg.app_mean_interarrival_ms = flags.get_double("app-interarrival-ms", 1.0);
  cfg.app_read_fraction = app.read_fraction;
  cfg.app_deadline_ms = app.deadline_ms;
  cfg.recovery_throttle = app.throttle;

  std::unique_ptr<obs::RunObserver> observer;
  const std::string metrics_out = flags.get_string("metrics-out", "");
  const std::string trace_out = flags.get_string("trace-out", "");
  if (!metrics_out.empty() || !trace_out.empty()) {
    obs::RunObserver::Options oo;
    oo.metrics_path = metrics_out;
    oo.trace_path = trace_out;
    oo.trace_level =
        trace_out.empty() ? obs::TraceLevel::Off : obs::TraceLevel::Phases;
    observer = std::make_unique<obs::RunObserver>(std::move(oo));
    cfg.obs = observer.get();
  }

  util::Table table("online recovery — reconstruction vs foreground I/O");
  std::vector<std::string> headers{"policy", "recon (ms)", "recon reads",
                                   "app avg resp (ms)", "app p99 (ms)",
                                   "degraded r/w", "hit ratio"};
  if (cfg.app_deadline_ms > 0.0) {
    headers.push_back("deadline misses");
  }
  table.headers(headers);
  for (cache::PolicyId policy : {cache::PolicyId::Lru, cache::PolicyId::Arc,
                                 cache::PolicyId::Fbf}) {
    cfg.policy = policy;
    const core::ExperimentResult r = core::run_experiment(cfg);
    std::vector<std::string> row{
        std::string(cache::to_string(policy)),
        util::fmt_double(r.reconstruction_ms, 1),
        std::to_string(r.disk_reads),
        util::fmt_double(r.app_avg_response_ms),
        util::fmt_double(r.app_p99_response_ms),
        std::to_string(r.app_degraded_reads) + "/" +
            std::to_string(r.app_degraded_writes),
        util::fmt_percent(r.hit_ratio)};
    if (cfg.app_deadline_ms > 0.0) {
      row.push_back(std::to_string(r.app_deadline_miss));
    }
    table.add_row(row);
  }
  table.print(std::cout);
  std::cout << "\nFewer reconstruction reads leave more disk time for the "
               "application;\ncompare the app response column across "
               "policies.\n";
  if (observer != nullptr) {
    observer->write_outputs();
  }
  return 0;
}
