// Online recovery: reconstruction racing foreground application I/O on the
// same disks (the scenario the paper's conclusion flags as future-proof).
// Shows how FBF's lower read count frees disk time for the application.
//
//   ./online_recovery_demo --code=triplestar --p=7 --app-requests=2000
#include <iostream>
#include <memory>

#include "core/experiment.h"
#include "obs/observer.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const util::Flags flags(argc, argv);
  flags.check_known({"code", "p", "cache-mb", "errors", "workers",
                     "app-requests", "app-interarrival-ms", "metrics-out",
                     "trace-out"});

  core::ExperimentConfig cfg;
  cfg.code = codes::code_from_string(flags.get_string("code", "triplestar"));
  cfg.p = static_cast<int>(flags.get_int("p", 7));
  cfg.cache_bytes =
      static_cast<std::size_t>(flags.get_int("cache-mb", 8)) << 20;
  cfg.num_errors = static_cast<int>(flags.get_int("errors", 80));
  cfg.workers = static_cast<int>(flags.get_int("workers", 16));
  cfg.app_requests = static_cast<int>(flags.get_int("app-requests", 2000));
  cfg.app_mean_interarrival_ms = flags.get_double("app-interarrival-ms", 1.0);

  std::unique_ptr<obs::RunObserver> observer;
  const std::string metrics_out = flags.get_string("metrics-out", "");
  const std::string trace_out = flags.get_string("trace-out", "");
  if (!metrics_out.empty() || !trace_out.empty()) {
    obs::RunObserver::Options oo;
    oo.metrics_path = metrics_out;
    oo.trace_path = trace_out;
    oo.trace_level =
        trace_out.empty() ? obs::TraceLevel::Off : obs::TraceLevel::Phases;
    observer = std::make_unique<obs::RunObserver>(std::move(oo));
    cfg.obs = observer.get();
  }

  util::Table table("online recovery — reconstruction vs foreground I/O");
  table.headers({"policy", "recon (ms)", "recon reads", "app avg resp (ms)",
                 "hit ratio"});
  for (cache::PolicyId policy : {cache::PolicyId::Lru, cache::PolicyId::Arc,
                                 cache::PolicyId::Fbf}) {
    cfg.policy = policy;
    const core::ExperimentResult r = core::run_experiment(cfg);
    table.add_row({cache::to_string(policy),
                   util::fmt_double(r.reconstruction_ms, 1),
                   std::to_string(r.disk_reads),
                   util::fmt_double(r.app_avg_response_ms),
                   util::fmt_percent(r.hit_ratio)});
  }
  table.print(std::cout);
  std::cout << "\nFewer reconstruction reads leave more disk time for the "
               "application;\ncompare the app response column across "
               "policies.\n";
  if (observer != nullptr) {
    observer->write_outputs();
  }
  return 0;
}
