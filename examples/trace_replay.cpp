// Trace round trip: generate a partial-stripe-error trace, save it to
// CSV, load it back, and replay it through the simulator — the workflow
// for experimenting with externally collected error traces.
//
//   ./trace_replay --code=tip --p=11 --errors=200 --file=/tmp/errors.csv
#include <iostream>

#include "core/experiment.h"
#include "sim/reconstruction.h"
#include "util/flags.h"
#include "util/table.h"
#include "workload/trace_io.h"

int main(int argc, char** argv) {
  using namespace fbf;
  const util::Flags flags(argc, argv);
  flags.check_known(
      {"code", "p", "errors", "file", "seed", "cache-mb", "workers"});
  const auto code = codes::code_from_string(flags.get_string("code", "tip"));
  const int p = static_cast<int>(flags.get_int("p", 11));
  const int n_errors = static_cast<int>(flags.get_int("errors", 200));
  const std::string path =
      flags.get_string("file", "/tmp/fbf_error_trace.csv");

  const codes::Layout layout = codes::make_layout(code, p);

  // 1. Generate and persist a synthetic trace.
  workload::ErrorTraceConfig trace_cfg;
  trace_cfg.num_stripes = 1 << 20;
  trace_cfg.num_errors = n_errors;
  trace_cfg.mean_interarrival_ms = 5.0;  // errors detected over time
  trace_cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto trace = workload::generate_error_trace(layout, trace_cfg);
  workload::save_error_trace(path, trace);
  std::cout << "wrote " << trace.size() << " errors to " << path << "\n";

  // 2. Load it back (any CSV with the same header works here — e.g. a
  //    trace distilled from real latent-sector-error logs).
  const auto loaded = workload::load_error_trace(path, layout);
  std::cout << "loaded " << loaded.size() << " errors\n\n";

  // 3. Replay through the simulator under each policy.
  const sim::ArrayGeometry geometry(layout, trace_cfg.num_stripes, true,
                                    sim::SparePlacement::Distributed);
  util::Table table("replay of " + path + " on " + layout.name());
  table.headers({"policy", "hit ratio", "disk reads", "reconstruction (ms)"});
  for (cache::PolicyId policy : {cache::PolicyId::Lru, cache::PolicyId::Arc,
                                 cache::PolicyId::Fbf}) {
    sim::ReconstructionConfig rc;
    rc.policy = policy;
    rc.cache_bytes = static_cast<std::size_t>(
                         flags.get_int("cache-mb", 32)) << 20;
    rc.workers = static_cast<int>(flags.get_int("workers", 32));
    sim::ReconstructionEngine engine(layout, geometry, rc);
    const sim::SimMetrics m = engine.run(loaded);
    table.add_row({cache::to_string(policy),
                   util::fmt_percent(m.hit_ratio()),
                   std::to_string(m.disk_reads),
                   util::fmt_double(m.reconstruction_ms, 1)});
  }
  table.print(std::cout);
  return 0;
}
