// Validates the observability exporters' output files:
//
//   obs_schema_check <metrics.json> [--trace=<trace.json>]
//                    [--compare=<other_metrics.json>]
//
// Checks the metrics document against the fbf.metrics.v1 schema, re-checks
// the sim/validate.h conservation laws on the exported counters, verifies
// every histogram's internal consistency, and optionally (a) validates a
// Chrome trace-event file's required fields and (b) compares two metrics
// files for byte-level determinism modulo the wall_clock block. Exits
// nonzero with a message on the first violation — ci/tier1.sh runs this on
// every build config.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "util/check.h"
#include "util/flags.h"

namespace {

using fbf::obs::json::Value;

Value load(const std::string& path) {
  std::ifstream ifs(path);
  FBF_CHECK(ifs.good(), "cannot open " + path);
  std::ostringstream buf;
  buf << ifs.rdbuf();
  return fbf::obs::json::parse(buf.str());
}

const Value& field(const Value::Object& obj, const std::string& key,
                   const std::string& where) {
  const auto it = obj.find(key);
  FBF_CHECK(it != obj.end(), where + " is missing required key \"" + key +
                                 "\"");
  return it->second;
}

std::uint64_t counter(const Value::Object& counters, const std::string& key) {
  const Value& v = field(counters, key, "counters");
  FBF_CHECK(v.is_number(), "counter " + key + " is not a number");
  return static_cast<std::uint64_t>(v.as_number());
}

// Fault counters are only exported by runs that enabled injection, so a
// missing run.fault.* key reads as zero (the laws then reduce to their
// fault-free shape).
std::uint64_t counter_or_zero(const Value::Object& counters,
                              const std::string& key) {
  const auto it = counters.find(key);
  if (it == counters.end()) return 0;
  FBF_CHECK(it->second.is_number(), "counter " + key + " is not a number");
  return static_cast<std::uint64_t>(it->second.as_number());
}

void check_metrics(const Value& doc) {
  FBF_CHECK(doc.is_object(), "metrics document is not a JSON object");
  const Value::Object& root = doc.as_object();
  const Value& schema = field(root, "schema", "metrics document");
  FBF_CHECK(schema.is_string() && schema.as_string() == "fbf.metrics.v1",
            "unexpected schema marker");
  for (const char* key : {"counters", "gauges", "histograms", "wall_clock"}) {
    FBF_CHECK(field(root, key, "metrics document").is_object(),
              std::string(key) + " is not an object");
  }

  const Value::Object& counters =
      field(root, "counters", "metrics document").as_object();
  FBF_CHECK(counter(counters, "run.count") > 0,
            "run.count must be positive — no runs were recorded");

  // The sim/validate.h conservation laws must survive the export: summing
  // per-run integers is lossless, so any drift here is an exporter bug.
  const std::uint64_t hits = counter(counters, "run.cache_hits");
  const std::uint64_t misses = counter(counters, "run.cache_misses");
  FBF_CHECK(hits + misses == counter(counters, "run.total_chunk_requests"),
            "cache hits + misses != total chunk requests");
  FBF_CHECK(counter(counters, "run.disk_reads") ==
                counter(counters, "run.planned_disk_reads") + misses +
                    counter_or_zero(counters, "run.fault.retries"),
            "disk reads != planned reads + cache misses + fault retries");
  // Write-path laws. Every run — write path on or off — satisfies
  // spare_writes == chunks_recovered, so the aggregate disk-write budget
  // is checkable unconditionally through chunks_recovered. The exported
  // run.write.spare_writes counter, however, only sums runs that enabled
  // the write-back cache, so its strict equality is checkable only when
  // every aggregated run did (run.write.runs == run.count); documents
  // mixing legacy and write-path runs (the write-sweep benches) skip it.
  const std::uint64_t disk_writes = counter(counters, "run.disk_writes");
  const std::uint64_t chunks_recovered =
      counter(counters, "run.chunks_recovered");
  const std::uint64_t write_backs =
      counter_or_zero(counters, "run.write.write_backs");
  const std::uint64_t parity_updates =
      counter_or_zero(counters, "run.write.parity_updates");
  FBF_CHECK(disk_writes == chunks_recovered + write_backs + parity_updates,
            "disk writes != spare writes + write-backs + parity updates");
  if (counter_or_zero(counters, "run.write.runs") ==
      counter(counters, "run.count")) {
    FBF_CHECK(counter_or_zero(counters, "run.write.spare_writes") ==
                  chunks_recovered,
              "spare writes != chunks recovered");
  }
  FBF_CHECK(counter_or_zero(counters, "run.write.dirty_installed") ==
                counter_or_zero(counters, "run.write.flushed") +
                    counter_or_zero(counters, "run.write.lost_dirty"),
            "write dirty_installed != flushed + lost_dirty");
  FBF_CHECK(counter_or_zero(counters, "run.write.flushed") == write_backs,
            "write flushed != write-backs");
  FBF_CHECK(counter_or_zero(counters, "run.fault.respared") <=
                counter_or_zero(counters, "run.fault.extra_lost_chunks"),
            "fault respared exceeds extra lost chunks");

  // Online-recovery laws. The run.app.* family is only exported by runs
  // that carried app traffic, so the missing-reads-as-zero rule makes
  // recovery-only documents reduce to 0 == 0 here.
  FBF_CHECK(counter(counters, "run.app_requests") ==
                counter_or_zero(counters, "run.app.served") +
                    counter_or_zero(counters, "run.app.parked_drained"),
            "app requests != served + parked_drained");
  FBF_CHECK(counter_or_zero(counters, "run.app.parked_drained") ==
                counter(counters, "run.app_degraded_reads") +
                    counter_or_zero(counters, "run.app.degraded_writes"),
            "app parked_drained != degraded reads + degraded writes");

  const Value::Object& histograms =
      field(root, "histograms", "metrics document").as_object();
  for (const auto& [name, h] : histograms) {
    FBF_CHECK(h.is_object(), "histogram " + name + " is not an object");
    const Value::Object& hobj = h.as_object();
    const auto count =
        static_cast<std::uint64_t>(field(hobj, "count", name).as_number());
    const auto nonpositive = static_cast<std::uint64_t>(
        field(hobj, "nonpositive", name).as_number());
    const Value::Object& buckets =
        field(hobj, "log2_buckets", name).as_object();
    std::uint64_t in_buckets = 0;
    for (const auto& [exp, c] : buckets) {
      in_buckets += static_cast<std::uint64_t>(c.as_number());
    }
    FBF_CHECK(count == nonpositive + in_buckets,
              "histogram " + name + " count does not match its buckets");
  }
}

void check_trace(const Value& doc) {
  FBF_CHECK(doc.is_object(), "trace document is not a JSON object");
  const Value& events = field(doc.as_object(), "traceEvents", "trace");
  FBF_CHECK(events.is_array() && !events.as_array().empty(),
            "traceEvents must be a non-empty array");
  for (const Value& ev : events.as_array()) {
    FBF_CHECK(ev.is_object(), "trace event is not an object");
    const Value::Object& e = ev.as_object();
    for (const char* key : {"name", "ph", "pid", "tid"}) {
      field(e, key, "trace event");
    }
    if (field(e, "ph", "trace event").as_string() == "X") {
      field(e, "ts", "duration event");
      field(e, "dur", "duration event");
    }
  }
}

void check_compare(const Value& a, const Value& b) {
  // Determinism contract: everything except the explicitly nondeterministic
  // wall_clock block must match across same-seed runs.
  Value::Object lhs = a.as_object();
  Value::Object rhs = b.as_object();
  lhs.erase("wall_clock");
  rhs.erase("wall_clock");
  FBF_CHECK(Value(lhs) == Value(rhs),
            "metrics differ outside the wall_clock block — determinism "
            "contract violated");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const fbf::util::Flags flags(argc, argv);
    flags.check_known({"trace", "compare"});
    FBF_CHECK(flags.positional().size() == 1,
              "usage: obs_schema_check <metrics.json> [--trace=<t.json>] "
              "[--compare=<other.json>]");

    const Value metrics = load(flags.positional()[0]);
    check_metrics(metrics);
    const std::string trace_path = flags.get_string("trace", "");
    if (!trace_path.empty()) {
      check_trace(load(trace_path));
    }
    const std::string compare_path = flags.get_string("compare", "");
    if (!compare_path.empty()) {
      check_compare(metrics, load(compare_path));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "schema check FAILED: %s\n", e.what());
    return 1;
  }
  std::printf("schema check OK\n");
  return 0;
}
