// Reliability analysis: MTTDL and window-of-vulnerability arithmetic.
//
// The paper motivates FBF through reliability: partial stripe errors
// "contribute to the excessive mean time to data loss", and faster
// reconstruction "narrows the Window Of Vulnerability". This module turns
// measured reconstruction times into those quantities with a standard
// birth-death Markov model: states are the number of concurrently failed
// units, failures arrive at (n - i) * lambda, repairs complete at mu =
// 1 / MTTR, and data loss is absorption at t + 1 failures for a
// t-fault-tolerant array.
#pragma once

#include <vector>

namespace fbf::core {

struct ReliabilityParams {
  int disks = 14;            ///< array width n
  int fault_tolerance = 3;   ///< t (3 for 3DFTs)
  double mttf_hours = 1.0e6; ///< per-disk mean time to failure (1/lambda)
  double mttr_hours = 10.0;  ///< mean time to repair (the WOV)
  /// Repairs proceed one at a time (dedicated rebuild path) when false;
  /// when true, i concurrent failures repair at rate i * mu.
  bool parallel_repair = false;
};

/// Mean time to data loss in hours for the birth-death chain above.
/// Solved exactly via the expected-absorption-time linear system.
double mttdl_hours(const ReliabilityParams& params);

/// MTTDL ratio between two repair times, all else equal — how much a
/// reconstruction-time improvement (e.g. FBF vs LRU) buys in reliability.
double mttdl_improvement(const ReliabilityParams& params,
                         double baseline_mttr_hours,
                         double improved_mttr_hours);

/// Probability that at least one additional disk fails during one repair
/// window (the window-of-vulnerability exposure): 1 - exp(-(n-1)*lambda*W).
double wov_exposure(const ReliabilityParams& params, double window_hours);

}  // namespace fbf::core
