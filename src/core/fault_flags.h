// Shared --fault-* flag vocabulary for the experiment drivers (fbfsim and
// the fault benches), so every binary spells the fault grid the same way:
//
//   --fault-ure-rate=R           latent sector error probability    (0)
//   --fault-transient-rate=R     per-attempt transient failure prob (0)
//   --fault-retries=N            extra attempts after a transient   (3)
//   --fault-backoff-ms=T         delay before each retry            (1)
//   --fault-stragglers=N         straggler disk count               (0)
//   --fault-straggler-factor=F   straggler service multiplier       (4)
//   --fault-disk-fail-at-ms=a,b  whole-disk failure times
//   --fault-disk-fail-ids=a,b    disk ids for those failures (ids beyond
//                                the list are drawn from the plan key)
//   --fault-seed=N               fault plan seed (0 = derive from --seed)
//
// All default to "off": a driver that accepts these flags but is invoked
// without them produces byte-identical output to one that predates them.
#pragma once

#include <string_view>
#include <vector>

#include "sim/faults/faults.h"
#include "util/flags.h"

namespace fbf::core {

/// The flag names above, for appending to a driver's check_known() list.
inline const std::vector<std::string_view>& fault_flag_names() {
  static const std::vector<std::string_view> names{
      "fault-ure-rate",     "fault-transient-rate",   "fault-retries",
      "fault-backoff-ms",   "fault-stragglers",       "fault-straggler-factor",
      "fault-disk-fail-at-ms", "fault-disk-fail-ids", "fault-seed"};
  return names;
}

inline sim::FaultConfig parse_fault_flags(const util::Flags& flags) {
  sim::FaultConfig fc;
  fc.ure_rate = flags.get_double("fault-ure-rate", 0.0);
  fc.transient_rate = flags.get_double("fault-transient-rate", 0.0);
  fc.max_retries = static_cast<int>(flags.get_int("fault-retries", 3));
  fc.retry_backoff_ms = flags.get_double("fault-backoff-ms", 1.0);
  fc.stragglers = static_cast<int>(flags.get_int("fault-stragglers", 0));
  fc.straggler_factor = flags.get_double("fault-straggler-factor", 4.0);
  fc.disk_failure_times_ms = flags.get_double_list("fault-disk-fail-at-ms", {});
  for (std::int64_t id : flags.get_int_list("fault-disk-fail-ids", {})) {
    fc.disk_failure_disks.push_back(static_cast<int>(id));
  }
  fc.seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 0));
  return fc;
}

}  // namespace fbf::core
