#include "core/sweep.h"

#include <algorithm>

#include "obs/observer.h"
#include "util/check.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace fbf::core {

std::vector<SweepPoint> run_sweep(const ExperimentConfig& base,
                                  const std::vector<std::size_t>& cache_sizes,
                                  const std::vector<cache::PolicyId>& policies,
                                  std::size_t threads) {
  std::vector<SweepPoint> points;
  points.reserve(cache_sizes.size() * policies.size());
  for (std::size_t size : cache_sizes) {
    for (cache::PolicyId policy : policies) {
      SweepPoint p;
      p.cache_bytes = size;
      p.policy = policy;
      points.push_back(p);
    }
  }
  util::ThreadPool pool(threads);
  util::parallel_for(pool, points.size(), [&](std::size_t i) {
    ExperimentConfig cfg = base;
    cfg.cache_bytes = points[i].cache_bytes;
    cfg.policy = points[i].policy;
    const bool tr = obs::tracing(base.obs, obs::TraceLevel::Phases);
    const double ts = tr ? base.obs->trace().wall_now_us() : 0.0;
    points[i].result = run_experiment(cfg);
    if (tr) {
      base.obs->trace().duration(
          obs::kPidWall, static_cast<std::uint32_t>(i),
          "sweep " + std::string(cache::to_string(cfg.policy)) + " " +
              util::fmt_bytes(cfg.cache_bytes),
          "sweep", ts, base.obs->trace().wall_now_us() - ts);
    }
  });
  return points;
}

std::vector<std::size_t> default_cache_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t mb = 2; mb <= 2048; mb *= 2) {
    sizes.push_back(mb << 20);
  }
  return sizes;
}

std::vector<std::size_t> small_cache_sizes() {
  return {2ull << 20, 8ull << 20, 32ull << 20, 128ull << 20, 512ull << 20,
          2048ull << 20};
}

namespace {

std::uint64_t point_key(std::size_t cache_bytes, cache::PolicyId policy) {
  // Cache sizes are whole bytes well below 2^56; the policy id rides in the
  // low byte.
  return (static_cast<std::uint64_t>(cache_bytes) << 8) |
         static_cast<std::uint64_t>(policy);
}

}  // namespace

const SweepPoint& find_point(const std::vector<SweepPoint>& points,
                             std::size_t cache_bytes,
                             cache::PolicyId policy) {
  // run_sweep emits size-major groups with the caller's (ascending) size
  // axis, so a partition search lands on the one group to scan. The fallback
  // keeps caller-assembled vectors in any order working.
  const auto group = std::lower_bound(
      points.begin(), points.end(), cache_bytes,
      [](const SweepPoint& p, std::size_t bytes) {
        return p.cache_bytes < bytes;
      });
  for (auto it = group; it != points.end() && it->cache_bytes == cache_bytes;
       ++it) {
    if (it->policy == policy) {
      return *it;
    }
  }
  const auto it = std::find_if(
      points.begin(), points.end(), [&](const SweepPoint& p) {
        return p.cache_bytes == cache_bytes && p.policy == policy;
      });
  FBF_CHECK(it != points.end(), "sweep point not found");
  return *it;
}

SweepIndex::SweepIndex(const std::vector<SweepPoint>& points)
    : points_(&points) {
  by_key_.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    by_key_.emplace(point_key(points[i].cache_bytes, points[i].policy), i);
  }
}

const SweepPoint& SweepIndex::at(std::size_t cache_bytes,
                                 cache::PolicyId policy) const {
  const auto it = by_key_.find(point_key(cache_bytes, policy));
  FBF_CHECK(it != by_key_.end(), "sweep point not found");
  return (*points_)[it->second];
}

double max_improvement(const std::vector<SweepPoint>& points,
                       const std::vector<std::size_t>& cache_sizes,
                       cache::PolicyId baseline,
                       const std::function<double(const ExperimentResult&)>&
                           metric,
                       bool higher_is_better, double min_base) {
  FBF_CHECK(min_base >= 0.0, "max_improvement min_base must be non-negative");
  const SweepIndex index(points);
  double best = 0.0;
  for (std::size_t size : cache_sizes) {
    const double fbf = metric(index.at(size, cache::PolicyId::Fbf).result);
    const double base = metric(index.at(size, baseline).result);
    // min_base >= 0 is checked above, so this single test also rejects
    // zero and negative baselines.
    if (base <= min_base) {
      continue;
    }
    const double improvement =
        higher_is_better ? fbf / base - 1.0 : 1.0 - fbf / base;
    best = std::max(best, improvement);
  }
  return best;
}

}  // namespace fbf::core
