#include "core/sweep.h"

#include <algorithm>

#include "util/check.h"
#include "util/thread_pool.h"

namespace fbf::core {

std::vector<SweepPoint> run_sweep(const ExperimentConfig& base,
                                  const std::vector<std::size_t>& cache_sizes,
                                  const std::vector<cache::PolicyId>& policies,
                                  std::size_t threads) {
  std::vector<SweepPoint> points;
  points.reserve(cache_sizes.size() * policies.size());
  for (std::size_t size : cache_sizes) {
    for (cache::PolicyId policy : policies) {
      SweepPoint p;
      p.cache_bytes = size;
      p.policy = policy;
      points.push_back(p);
    }
  }
  util::ThreadPool pool(threads);
  util::parallel_for(pool, points.size(), [&](std::size_t i) {
    ExperimentConfig cfg = base;
    cfg.cache_bytes = points[i].cache_bytes;
    cfg.policy = points[i].policy;
    points[i].result = run_experiment(cfg);
  });
  return points;
}

std::vector<std::size_t> default_cache_sizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t mb = 2; mb <= 2048; mb *= 2) {
    sizes.push_back(mb << 20);
  }
  return sizes;
}

std::vector<std::size_t> small_cache_sizes() {
  return {2ull << 20, 8ull << 20, 32ull << 20, 128ull << 20, 512ull << 20,
          2048ull << 20};
}

const SweepPoint& find_point(const std::vector<SweepPoint>& points,
                             std::size_t cache_bytes,
                             cache::PolicyId policy) {
  const auto it = std::find_if(
      points.begin(), points.end(), [&](const SweepPoint& p) {
        return p.cache_bytes == cache_bytes && p.policy == policy;
      });
  FBF_CHECK(it != points.end(), "sweep point not found");
  return *it;
}

double max_improvement(const std::vector<SweepPoint>& points,
                       const std::vector<std::size_t>& cache_sizes,
                       cache::PolicyId baseline,
                       const std::function<double(const ExperimentResult&)>&
                           metric,
                       bool higher_is_better, double min_base) {
  double best = 0.0;
  for (std::size_t size : cache_sizes) {
    const double fbf =
        metric(find_point(points, size, cache::PolicyId::Fbf).result);
    const double base = metric(find_point(points, size, baseline).result);
    if (base <= 0.0 || base <= min_base) {
      continue;
    }
    const double improvement =
        higher_is_better ? fbf / base - 1.0 : 1.0 - fbf / base;
    best = std::max(best, improvement);
  }
  return best;
}

}  // namespace fbf::core
