// FbfSystem facade: one call from (code, p, policy, cache size, workload)
// to the paper's four metrics. Everything benches and examples need.
#pragma once

#include <string>

#include "cache/policy.h"
#include "codes/builders.h"
#include "recovery/scheme.h"
#include "sim/reconstruction.h"
#include "workload/app_trace.h"
#include "workload/errors.h"

namespace fbf::obs {
class RunObserver;
}  // namespace fbf::obs

namespace fbf::core {

/// Which reconstruction engine drives the run. DOR streams planned reads
/// per disk through one shared buffer and ignores the SOR-only knobs
/// (workers, verify_data, memoization, spare-write mode); both engines
/// serve foreground app traffic through the shared online-recovery layer.
enum class EngineKind { Sor, Dor };

struct ExperimentConfig {
  codes::CodeId code = codes::CodeId::Tip;
  int p = 7;

  EngineKind engine = EngineKind::Sor;

  cache::PolicyId policy = cache::PolicyId::Fbf;
  recovery::SchemeKind scheme = recovery::SchemeKind::RoundRobin;

  std::size_t cache_bytes = 256ull << 20;
  std::size_t chunk_bytes = 32 * 1024;
  int workers = 128;

  int num_errors = 512;            ///< damaged stripes
  std::uint64_t num_stripes = 1 << 20;
  int error_col = 0;               ///< -1 = random column per error
  double spatial_locality = 0.6;

  /// Disk-mapping strategy. Rotate (RAID-5-style column rotation) by
  /// default so the parity-heavy logical columns (read by every chain in
  /// RTP-style layouts) do not pin one physical disk and hide cache
  /// effects behind a fixed bottleneck. TDesignDecluster/D3 spread each
  /// stripe over a subset of a wider pool (see pool_disks).
  sim::LayoutStrategy layout_strategy = sim::LayoutStrategy::Rotate;

  /// Physical disk pool size; 0 means "exactly the stripe width"
  /// (layout.cols()), the pre-declustering geometry. Values above the
  /// stripe width spread recovery traffic over more spindles.
  int pool_disks = 0;

  /// Distributed (declustered) sparing by default: recovery writes spread
  /// over the array instead of serializing on the failed disk. Ablated in
  /// bench_ablation_sparing.
  sim::SparePlacement spare_placement = sim::SparePlacement::Distributed;

  sim::DiskModelKind disk_model = sim::DiskModelKind::FixedLatency;
  double disk_access_ms = 10.0;    ///< paper's disk access time
  double cache_access_ms = 0.5;    ///< paper's buffer-cache access time
  double xor_ms_per_chunk = 0.05;

  bool memoize_schemes = true;
  bool verify_data = false;

  // Online-recovery extension: foreground traffic intensity (0 = none),
  // mix, per-request response SLO, and how hard the rebuild yields to it.
  int app_requests = 0;
  double app_mean_interarrival_ms = 2.0;
  double app_read_fraction = 0.7;
  double app_deadline_ms = 0.0;  ///< 0 = no deadlines
  /// Fraction of app writes that re-target a recently written chunk
  /// (workload/app_trace.h). 0 keeps traces byte-identical to pre-write
  /// builds.
  double app_rewrite_fraction = 0.0;
  sim::ThrottleConfig recovery_throttle;

  // Partial-stripe write path (sim/foreground.h): a write-back cache of
  // this many chunk-sized lines in front of the parity-update planner.
  // 0 (the default) keeps the legacy synchronous-RMW path and
  // byte-identical output.
  std::size_t write_cache_chunks = 0;
  double write_flush_ms = 50.0;       ///< periodic flush; <= 0 disables
  bool write_retain_favorable = true; ///< FBF-aware dirty retention

  std::uint64_t seed = 42;

  /// Fault injection forwarded to the engine (sim/faults). Disabled by
  /// default, which keeps every experiment byte-identical to its pre-fault
  /// output.
  sim::FaultConfig faults;

  /// Optional run-level observability sink (not owned). Shared across a
  /// sweep: each grid point exports under its own obs_run_label().
  obs::RunObserver* obs = nullptr;

  /// Appended verbatim to obs_run_label() so sweep points that share
  /// (code, p, policy, cache size) — e.g. a fault grid — export under
  /// disjoint registry keys.
  std::string obs_suffix;

  std::string label() const;
};

struct ExperimentResult {
  double hit_ratio = 0.0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t disk_reads = 0;
  std::uint64_t disk_writes = 0;
  double avg_response_ms = 0.0;
  double p99_response_ms = 0.0;
  double reconstruction_ms = 0.0;
  double scheme_gen_wall_ms = 0.0;
  std::uint64_t schemes_generated = 0;
  std::uint64_t stripes_recovered = 0;
  std::uint64_t chunks_recovered = 0;
  std::uint64_t total_chunk_requests = 0;
  double app_avg_response_ms = 0.0;
  double app_p99_response_ms = 0.0;   ///< bucket-resolution quantile
  double app_p999_response_ms = 0.0;  ///< bucket-resolution quantile
  std::uint64_t app_degraded_reads = 0;
  std::uint64_t app_degraded_writes = 0;
  std::uint64_t app_served = 0;
  std::uint64_t app_parked_drained = 0;
  std::uint64_t app_deadline_miss = 0;

  /// Per-disk recovery load spread, from the engines' per-disk op counts:
  /// how many pool disks served at least one op, the busiest disk's op
  /// count, and the mean over the whole pool. Declustered layouts widen
  /// disks_active and flatten disk_ops_max toward disk_ops_mean.
  int disks_total = 0;
  int disks_active = 0;
  std::uint64_t disk_ops_max = 0;
  double disk_ops_mean = 0.0;

  /// Fault-injection counters; all-zero when config.faults was disabled.
  sim::FaultStats fault;

  /// Write-path counters (sim/metrics.h). write.enabled is false — and
  /// every planner/dirty counter zero — when write_cache_chunks was 0;
  /// write.spare_writes is live either way (it is the legacy meaning of
  /// disk_writes).
  sim::WritePathStats write;
};

/// Runs one full reconstruction simulation. Deterministic per config.
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Registry label prefix for one grid point, e.g. "run.TIP.p5.LRU.c2097152".
/// Unique per (code, p, policy, cache size) so concurrent sweep runs write
/// disjoint gauge/histogram keys.
std::string obs_run_label(const ExperimentConfig& config);

}  // namespace fbf::core
