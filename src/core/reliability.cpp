#include "core/reliability.h"

#include <cmath>

#include "util/check.h"

namespace fbf::core {

double mttdl_hours(const ReliabilityParams& params) {
  FBF_CHECK(params.disks > params.fault_tolerance,
            "array must have more disks than its fault tolerance");
  FBF_CHECK(params.fault_tolerance >= 0, "fault tolerance must be >= 0");
  FBF_CHECK(params.mttf_hours > 0 && params.mttr_hours > 0,
            "MTTF and MTTR must be positive");

  const double lambda = 1.0 / params.mttf_hours;
  const double mu = 1.0 / params.mttr_hours;
  const int t = params.fault_tolerance;

  // E_i = expected time to absorption from state i (i failed disks).
  // E_i = 1/r_i + (f_i/r_i) * E_{i+1} + (m_i/r_i) * E_{i-1}, with
  // f_i = (n-i) lambda, m_i = repair rate, r_i = f_i + m_i, E_{t+1} = 0.
  // Solve by backward elimination: express E_i = a_i + b_i * E_{i-1}.
  std::vector<double> a(static_cast<std::size_t>(t) + 1, 0.0);
  std::vector<double> b(static_cast<std::size_t>(t) + 1, 0.0);
  for (int i = t; i >= 0; --i) {
    const double f = static_cast<double>(params.disks - i) * lambda;
    const double m =
        i == 0 ? 0.0 : (params.parallel_repair ? i * mu : mu);
    const double r = f + m;
    // E_i = 1/r + (f/r) E_{i+1} + (m/r) E_{i-1}
    //     = 1/r + (f/r)(a_{i+1} + b_{i+1} E_i) + (m/r) E_{i-1}
    double denom = 1.0;
    double constant = 1.0 / r;
    if (i < t) {
      denom -= (f / r) * b[static_cast<std::size_t>(i) + 1];
      constant += (f / r) * a[static_cast<std::size_t>(i) + 1];
    }
    FBF_CHECK(denom > 0, "Markov chain elimination degenerate");
    a[static_cast<std::size_t>(i)] = constant / denom;
    b[static_cast<std::size_t>(i)] = (m / r) / denom;
  }
  // From state 0 there is no E_{-1} term.
  FBF_CHECK(b[0] == 0.0, "state 0 must have no repair transition");
  return a[0];
}

double mttdl_improvement(const ReliabilityParams& params,
                         double baseline_mttr_hours,
                         double improved_mttr_hours) {
  ReliabilityParams base = params;
  base.mttr_hours = baseline_mttr_hours;
  ReliabilityParams better = params;
  better.mttr_hours = improved_mttr_hours;
  return mttdl_hours(better) / mttdl_hours(base);
}

double wov_exposure(const ReliabilityParams& params, double window_hours) {
  FBF_CHECK(window_hours >= 0, "window must be non-negative");
  const double lambda = 1.0 / params.mttf_hours;
  return 1.0 - std::exp(-static_cast<double>(params.disks - 1) * lambda *
                        window_hours);
}

}  // namespace fbf::core
