#include "core/experiment.h"

#include <algorithm>

#include "sim/dor_engine.h"
#include "util/check.h"
#include "util/table.h"

namespace fbf::core {

std::string ExperimentConfig::label() const {
  std::string out = codes::to_string(code);
  out += "(p=" + std::to_string(p) + ")";
  out += " " + std::string(cache::to_string(policy));
  out += " cache=" + util::fmt_bytes(cache_bytes);
  out += " scheme=" + std::string(recovery::to_string(scheme));
  return out;
}

std::string obs_run_label(const ExperimentConfig& config) {
  std::string out = "run.";
  out += codes::to_string(config.code);
  out += ".p" + std::to_string(config.p);
  out += ".";
  out += cache::to_string(config.policy);
  out += ".c" + std::to_string(config.cache_bytes);
  out += config.obs_suffix;
  return out;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  const codes::Layout layout = codes::make_layout(config.code, config.p);
  const sim::ArrayGeometry geometry(layout, config.num_stripes,
                                    config.layout_strategy, config.pool_disks,
                                    config.spare_placement);

  workload::ErrorTraceConfig trace_cfg;
  trace_cfg.num_stripes = config.num_stripes;
  trace_cfg.num_errors = config.num_errors;
  trace_cfg.target_col = config.error_col;
  trace_cfg.spatial_locality = config.spatial_locality;
  trace_cfg.seed = config.seed;
  const auto errors = workload::generate_error_trace(layout, trace_cfg);

  std::vector<workload::AppRequest> app_trace;
  if (config.app_requests > 0) {
    workload::AppTraceConfig app_cfg;
    app_cfg.num_stripes = config.num_stripes;
    app_cfg.num_requests = config.app_requests;
    app_cfg.mean_interarrival_ms = config.app_mean_interarrival_ms;
    app_cfg.read_fraction = config.app_read_fraction;
    app_cfg.deadline_ms = config.app_deadline_ms;
    app_cfg.rewrite_fraction = config.app_rewrite_fraction;
    app_cfg.seed = config.seed ^ 0xa99ull;
    app_trace = workload::generate_app_trace(layout, app_cfg);
  }

  sim::WritePathConfig write_cfg;
  write_cfg.cache_chunks = config.write_cache_chunks;
  write_cfg.flush_interval_ms = config.write_flush_ms;
  write_cfg.retain_favorable = config.write_retain_favorable;
  write_cfg.policy = config.policy;  // write cache mirrors the read policy
  write_cfg.cache_access_ms = config.cache_access_ms;

  sim::SimMetrics m;
  if (config.engine == EngineKind::Dor) {
    FBF_CHECK(!config.verify_data,
              "the DOR engine does not support data verification");
    sim::DorConfig dc;
    dc.scheme = config.scheme;
    dc.policy = config.policy;
    dc.cache_bytes = config.cache_bytes;
    dc.chunk_bytes = config.chunk_bytes;
    dc.cache_access_ms = config.cache_access_ms;
    dc.xor_ms_per_chunk = config.xor_ms_per_chunk;
    dc.disk.kind = config.disk_model;
    dc.disk.read_ms = config.disk_access_ms;
    dc.disk.write_ms = config.disk_access_ms;
    dc.seed = config.seed;
    dc.faults = config.faults;
    dc.throttle = config.recovery_throttle;
    dc.write = write_cfg;
    if (config.obs != nullptr) {
      dc.observer = config.obs;
      dc.obs_label = obs_run_label(config);
    }
    sim::DorEngine engine(layout, geometry, dc);
    m = engine.run(errors, app_trace);
  } else {
    sim::ReconstructionConfig rc;
    rc.scheme = config.scheme;
    rc.policy = config.policy;
    rc.cache_bytes = config.cache_bytes;
    rc.chunk_bytes = config.chunk_bytes;
    rc.workers = config.workers;
    rc.cache_access_ms = config.cache_access_ms;
    rc.xor_ms_per_chunk = config.xor_ms_per_chunk;
    rc.disk.kind = config.disk_model;
    rc.disk.read_ms = config.disk_access_ms;
    rc.disk.write_ms = config.disk_access_ms;
    rc.memoize_schemes = config.memoize_schemes;
    rc.verify_data = config.verify_data;
    rc.seed = config.seed;
    rc.faults = config.faults;
    rc.throttle = config.recovery_throttle;
    rc.write = write_cfg;
    if (config.obs != nullptr) {
      rc.observer = config.obs;
      rc.obs_label = obs_run_label(config);
    }
    sim::ReconstructionEngine engine(layout, geometry, rc);
    m = engine.run(errors, app_trace);
  }

  ExperimentResult r;
  r.hit_ratio = m.hit_ratio();
  r.cache_hits = m.cache.hits;
  r.cache_misses = m.cache.misses;
  r.disk_reads = m.disk_reads;
  r.disk_writes = m.disk_writes;
  r.avg_response_ms = m.response_ms.mean();
  r.p99_response_ms = m.response_reservoir.percentile(0.99);
  r.reconstruction_ms = m.reconstruction_ms;
  r.scheme_gen_wall_ms = m.scheme_gen_wall_ms;
  r.schemes_generated = m.schemes_generated;
  r.stripes_recovered = m.stripes_recovered;
  r.chunks_recovered = m.chunks_recovered;
  r.total_chunk_requests = m.total_chunk_requests;
  r.app_avg_response_ms = m.app_response_ms.mean();
  r.app_p99_response_ms = m.app_response_hist.percentile(0.99);
  r.app_p999_response_ms = m.app_response_hist.percentile(0.999);
  r.app_degraded_reads = m.app_degraded_reads;
  r.app_degraded_writes = m.app_degraded_writes;
  r.app_served = m.app_served;
  r.app_parked_drained = m.app_parked_drained;
  r.app_deadline_miss = m.app_deadline_miss;
  r.disks_total = static_cast<int>(m.disk_ops.size());
  std::uint64_t total_ops = 0;
  for (const std::uint64_t ops : m.disk_ops) {
    total_ops += ops;
    r.disk_ops_max = std::max(r.disk_ops_max, ops);
    if (ops > 0) {
      ++r.disks_active;
    }
  }
  r.disk_ops_mean = m.disk_ops.empty()
                        ? 0.0
                        : static_cast<double>(total_ops) /
                              static_cast<double>(m.disk_ops.size());
  r.fault = m.fault;
  r.write = m.write;
  return r;
}

}  // namespace fbf::core
