// Parameter sweeps over cache size x policy (the paper's figure axes),
// parallelized across a thread pool, plus the improvement arithmetic used
// by Table V.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/experiment.h"

namespace fbf::core {

/// One (cache size, policy) grid point of a figure.
struct SweepPoint {
  std::size_t cache_bytes = 0;
  cache::PolicyId policy = cache::PolicyId::Lru;
  ExperimentResult result;
};

/// Runs `base` at every cache size x policy combination. Deterministic:
/// results are ordered by (cache size, policy) regardless of scheduling.
std::vector<SweepPoint> run_sweep(const ExperimentConfig& base,
                                  const std::vector<std::size_t>& cache_sizes,
                                  const std::vector<cache::PolicyId>& policies,
                                  std::size_t threads = 0);

/// Default cache-size axis: powers of two from 2 MB to 2048 MB (the
/// paper's x-axis range).
std::vector<std::size_t> default_cache_sizes();

/// Coarser axis for quick runs.
std::vector<std::size_t> small_cache_sizes();

/// Selects the grid point for (cache size, policy); aborts if absent.
/// run_sweep's size-major output is searched by partition point + a scan of
/// the single matching size group (O(log points + policies)); arbitrary
/// orderings fall back to a full scan.
const SweepPoint& find_point(const std::vector<SweepPoint>& points,
                             std::size_t cache_bytes,
                             cache::PolicyId policy);

/// Hash index over a sweep's grid for repeated (size, policy) lookups —
/// O(1) per query after one O(points) build. The indexed vector must
/// outlive the index and not reallocate.
class SweepIndex {
 public:
  explicit SweepIndex(const std::vector<SweepPoint>& points);

  /// Aborts if the grid point is absent.
  const SweepPoint& at(std::size_t cache_bytes, cache::PolicyId policy) const;

 private:
  const std::vector<SweepPoint>* points_;
  std::unordered_map<std::uint64_t, std::size_t> by_key_;
};

/// Maximum relative improvement of FBF over `baseline` across cache sizes:
/// for "higher is better" metrics (hit ratio) returns max(fbf/base - 1);
/// for "lower is better" metrics (reads, times) returns max(1 - fbf/base).
/// Grid points whose baseline value is <= `min_base` are skipped so a
/// near-zero denominator cannot inflate the ratio. `min_base` must be
/// non-negative (checked); because metrics are non-negative, the single
/// `base <= min_base` test then also rejects zero baselines, and the
/// default of 0.0 skips exactly the degenerate zero-denominator points.
double max_improvement(const std::vector<SweepPoint>& points,
                       const std::vector<std::size_t>& cache_sizes,
                       cache::PolicyId baseline,
                       const std::function<double(const ExperimentResult&)>&
                           metric,
                       bool higher_is_better, double min_base = 0.0);

}  // namespace fbf::core
