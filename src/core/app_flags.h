// Shared --app-*/--recovery-throttle flag vocabulary for the experiment
// drivers (fbfsim, the demos, and the SLO benches), so every binary spells
// the online-recovery knobs the same way:
//
//   --app-requests=N             foreground request count            (0)
//   --app-interarrival-ms=T      mean Poisson interarrival, ms       (2)
//   --app-read-fraction=F        read share of the app trace         (0.7)
//   --app-deadline-ms=T          per-request response SLO, 0 = none  (0)
//   --recovery-throttle=R        rebuild reads/sec, 0 = unthrottled  (0)
//   --recovery-throttle-burst=N  throttle token-bucket depth         (16)
//
// All default to "off": a driver that accepts these flags but is invoked
// without them produces byte-identical output to one that predates them.
#pragma once

#include <string_view>
#include <vector>

#include "sim/foreground.h"
#include "util/flags.h"

namespace fbf::core {

/// The flag names above, for appending to a driver's check_known() list.
inline const std::vector<std::string_view>& app_flag_names() {
  static const std::vector<std::string_view> names{
      "app-requests",      "app-interarrival-ms",    "app-read-fraction",
      "app-deadline-ms",   "recovery-throttle",      "recovery-throttle-burst"};
  return names;
}

/// Parsed --app-*/--recovery-throttle values, mirroring the
/// ExperimentConfig fields they populate.
struct AppFlagValues {
  int requests = 0;
  double interarrival_ms = 2.0;
  double read_fraction = 0.7;
  double deadline_ms = 0.0;
  sim::ThrottleConfig throttle;
};

inline AppFlagValues parse_app_flags(const util::Flags& flags) {
  AppFlagValues v;
  v.requests = static_cast<int>(flags.get_int("app-requests", 0));
  v.interarrival_ms = flags.get_double("app-interarrival-ms", 2.0);
  v.read_fraction = flags.get_double("app-read-fraction", 0.7);
  v.deadline_ms = flags.get_double("app-deadline-ms", 0.0);
  v.throttle.rebuild_reads_per_sec = flags.get_double("recovery-throttle", 0.0);
  v.throttle.burst =
      static_cast<int>(flags.get_int("recovery-throttle-burst", 16));
  return v;
}

}  // namespace fbf::core
