// Shared --app-*/--recovery-throttle flag vocabulary for the experiment
// drivers (fbfsim, the demos, and the SLO benches), so every binary spells
// the online-recovery knobs the same way:
//
//   --app-requests=N             foreground request count            (0)
//   --app-interarrival-ms=T      mean Poisson interarrival, ms       (2)
//   --app-read-fraction=F        read share of the app trace         (0.7)
//   --app-deadline-ms=T          per-request response SLO, 0 = none  (0)
//   --app-rewrite-fraction=F     writes re-targeting recent writes   (0)
//   --recovery-throttle=R        rebuild reads/sec, 0 = unthrottled  (0)
//   --recovery-throttle-burst=N  throttle token-bucket depth         (16)
//   --write-cache-chunks=N       write-back cache lines, 0 = RMW     (0)
//   --write-flush-ms=T           periodic dirty flush, <= 0 = off    (50)
//   --write-retain-favorable=B   FBF-aware dirty retention           (1)
//
// All default to "off": a driver that accepts these flags but is invoked
// without them produces byte-identical output to one that predates them.
#pragma once

#include <string_view>
#include <vector>

#include "sim/foreground.h"
#include "util/flags.h"

namespace fbf::core {

/// The flag names above, for appending to a driver's check_known() list.
inline const std::vector<std::string_view>& app_flag_names() {
  static const std::vector<std::string_view> names{
      "app-requests",      "app-interarrival-ms",    "app-read-fraction",
      "app-deadline-ms",   "app-rewrite-fraction",   "recovery-throttle",
      "recovery-throttle-burst",                     "write-cache-chunks",
      "write-flush-ms",    "write-retain-favorable"};
  return names;
}

/// Parsed --app-*/--recovery-throttle/--write-* values, mirroring the
/// ExperimentConfig fields they populate.
struct AppFlagValues {
  int requests = 0;
  double interarrival_ms = 2.0;
  double read_fraction = 0.7;
  double deadline_ms = 0.0;
  double rewrite_fraction = 0.0;
  sim::ThrottleConfig throttle;
  std::size_t write_cache_chunks = 0;
  double write_flush_ms = 50.0;
  bool write_retain_favorable = true;
};

inline AppFlagValues parse_app_flags(const util::Flags& flags) {
  AppFlagValues v;
  v.requests = static_cast<int>(flags.get_int("app-requests", 0));
  v.interarrival_ms = flags.get_double("app-interarrival-ms", 2.0);
  v.read_fraction = flags.get_double("app-read-fraction", 0.7);
  v.deadline_ms = flags.get_double("app-deadline-ms", 0.0);
  v.rewrite_fraction = flags.get_double("app-rewrite-fraction", 0.0);
  v.throttle.rebuild_reads_per_sec = flags.get_double("recovery-throttle", 0.0);
  v.throttle.burst =
      static_cast<int>(flags.get_int("recovery-throttle-burst", 16));
  v.write_cache_chunks =
      static_cast<std::size_t>(flags.get_int("write-cache-chunks", 0));
  v.write_flush_ms = flags.get_double("write-flush-ms", 50.0);
  v.write_retain_favorable = flags.get_bool("write-retain-favorable", true);
  return v;
}

/// Copies the parsed values into the ExperimentConfig-shaped fields a
/// driver exposes (kept as a template so this header needs no dependency
/// on core/experiment.h).
template <typename Config>
inline void apply_app_flags(const AppFlagValues& v, Config& cfg) {
  cfg.app_requests = v.requests;
  cfg.app_mean_interarrival_ms = v.interarrival_ms;
  cfg.app_read_fraction = v.read_fraction;
  cfg.app_deadline_ms = v.deadline_ms;
  cfg.app_rewrite_fraction = v.rewrite_fraction;
  cfg.recovery_throttle = v.throttle;
  cfg.write_cache_chunks = v.write_cache_chunks;
  cfg.write_flush_ms = v.write_flush_ms;
  cfg.write_retain_favorable = v.write_retain_favorable;
}

}  // namespace fbf::core
