#include "sim/event_queue.h"

#include <cstdlib>
#include <string>

namespace fbf::sim {

bool forced_global_event_heap() {
  static const bool forced = [] {
    const char* v = std::getenv("FBF_GLOBAL_EVENT_HEAP");
    return v != nullptr && std::string(v) != "0";
  }();
  return forced;
}

}  // namespace fbf::sim
