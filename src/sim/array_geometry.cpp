#include "sim/array_geometry.h"

#include "util/check.h"

namespace fbf::sim {

ArrayGeometry::ArrayGeometry(const codes::Layout& layout,
                             std::uint64_t num_stripes, bool rotate_columns,
                             SparePlacement spare)
    : layout_(&layout),
      num_stripes_(num_stripes),
      rotate_columns_(rotate_columns),
      spare_(spare) {
  FBF_CHECK(num_stripes_ > 0, "array needs at least one stripe");
}

int ArrayGeometry::spare_disk_of(std::uint64_t stripe, codes::Cell c) const {
  const int home = disk_of(stripe, c);
  if (spare_ == SparePlacement::SameDisk) {
    return home;
  }
  // Declustered sparing: rotate the spare target over the other disks so
  // recovery writes spread across the array.
  const auto n = static_cast<std::uint64_t>(layout_->cols());
  const std::uint64_t offset = 1 + (stripe + static_cast<std::uint64_t>(
                                                 c.row)) % (n - 1);
  return static_cast<int>(
      (static_cast<std::uint64_t>(home) + offset) % n);
}

}  // namespace fbf::sim
