#include "sim/array_geometry.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace fbf::sim {

const char* to_string(LayoutStrategy s) {
  switch (s) {
    case LayoutStrategy::Naive:
      return "naive";
    case LayoutStrategy::Rotate:
      return "rotate";
    case LayoutStrategy::TDesignDecluster:
      return "tdesign";
    case LayoutStrategy::D3:
      return "d3";
  }
  return "naive";
}

bool layout_strategy_from_string(const std::string& name,
                                 LayoutStrategy& out) {
  if (name == "naive") {
    out = LayoutStrategy::Naive;
  } else if (name == "rotate") {
    out = LayoutStrategy::Rotate;
  } else if (name == "tdesign") {
    out = LayoutStrategy::TDesignDecluster;
  } else if (name == "d3") {
    out = LayoutStrategy::D3;
  } else {
    return false;
  }
  return true;
}

ArrayGeometry::ArrayGeometry(const codes::Layout& layout,
                             std::uint64_t num_stripes,
                             LayoutStrategy strategy, int pool_disks,
                             SparePlacement spare)
    : layout_(&layout),
      num_stripes_(num_stripes),
      strategy_(strategy),
      pool_disks_(pool_disks == 0 ? layout.cols() : pool_disks),
      spare_(spare) {
  FBF_CHECK(num_stripes_ > 0, "array needs at least one stripe");
  FBF_CHECK(pool_disks_ >= layout_->cols(),
            "disk pool narrower than a stripe");
  if (strategy_ == LayoutStrategy::Naive) {
    FBF_CHECK(pool_disks_ == layout_->cols(),
              "naive layout cannot use a pool wider than the stripe");
  }
  if (strategy_ == LayoutStrategy::TDesignDecluster) {
    // The colex rank of a k-subset of an n-set must fit in a u64; n <= 64
    // guarantees it (C(64, 32) ~ 1.83e18 < 2^64).
    FBF_CHECK(pool_disks_ <= 64, "t-design pools are limited to 64 disks");
    const int n = pool_disks_;
    const int k = layout_->cols();
    binom_.assign(static_cast<std::size_t>(n + 1) *
                      static_cast<std::size_t>(k + 1),
                  0);
    for (int i = 0; i <= n; ++i) {
      for (int j = 0; j <= std::min(i, k); ++j) {
        if (j == 0 || j == i) {
          binom_[static_cast<std::size_t>(i) *
                     static_cast<std::size_t>(k + 1) +
                 static_cast<std::size_t>(j)] = 1;
        } else {
          binom_[static_cast<std::size_t>(i) *
                     static_cast<std::size_t>(k + 1) +
                 static_cast<std::size_t>(j)] =
              binom(i - 1, j - 1) + binom(i - 1, j);
        }
      }
    }
    tdesign_blocks_ = binom(n, k);
  }
  if (strategy_ == LayoutStrategy::D3) {
    const auto n = static_cast<std::uint64_t>(pool_disks_);
    for (std::uint64_t m = 1; m < n; ++m) {
      if (std::gcd(m, n) == 1) {
        d3_units_.push_back(m);
      }
    }
    if (d3_units_.empty()) {
      d3_units_.push_back(1);  // pool of one disk: identity only
    }
  }
}

int ArrayGeometry::tdesign_disk_of(std::uint64_t stripe, int col) const {
  // Colex-unrank the block (k-subset of the pool) for this stripe, then
  // rotate the stripe's columns through the block so each member disk
  // serves each column role equally often across the design sweep.
  const int n = pool_disks_;
  const int k = layout_->cols();
  std::uint64_t rank = stripe % tdesign_blocks_;
  // Walk candidate members from the top: the largest member m of the
  // rank-r block in colex order satisfies binom(m, j) <= r for the
  // current position j, consuming binom(m, j) from the rank.
  const int want =
      static_cast<int>((static_cast<std::uint64_t>(col) + stripe) %
                       static_cast<std::uint64_t>(k));
  int j = k;
  for (int v = n - 1; j > 0; --v) {
    FBF_CHECK(v >= 0, "t-design unrank ran out of candidates");
    if (binom(v, j) <= rank) {
      rank -= binom(v, j);
      --j;
      if (j == want) {
        return v;  // block members are found largest-first: index j
      }
    }
  }
  FBF_CHECK(false, "t-design unrank failed");
  return 0;
}

int ArrayGeometry::spare_disk_of(std::uint64_t stripe, codes::Cell c) const {
  const int home = disk_of(stripe, c);
  if (spare_ == SparePlacement::SameDisk) {
    return home;
  }
  // Declustered sparing: rotate the spare target over the other pool
  // disks so recovery writes spread across the array.
  const auto n = static_cast<std::uint64_t>(pool_disks_);
  const std::uint64_t offset = 1 + (stripe + static_cast<std::uint64_t>(
                                                 c.row)) % (n - 1);
  return static_cast<int>(
      (static_cast<std::uint64_t>(home) + offset) % n);
}

}  // namespace fbf::sim
