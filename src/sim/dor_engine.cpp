#include "sim/dor_engine.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "codes/codec.h"
#include "obs/observer.h"
#include "obs/registry.h"
#include "recovery/scheme.h"
#include "sim/event_queue.h"
#include "sim/validate.h"
#include "util/check.h"

namespace fbf::sim {

namespace {

/// A chain member reference with its (immutable) dictionary priority
/// cached, so the consumption loop never re-resolves it through the info
/// map.
struct Member {
  cache::Key key = 0;
  std::uint8_t priority = 1;
};

struct ChainTask {
  std::uint64_t stripe = 0;
  codes::Cell target;
  int chain_id = -1;
  std::uint8_t target_priority = 1;
  int n_members = 0;
  std::vector<Member> unconsumed;
  /// Member keys whose (re-)delivery this task is currently waiting on.
  /// Every insert site fills an empty list with distinct keys, so a flat
  /// vector with find + swap-pop removal behaves like the set it replaced.
  std::vector<cache::Key> awaiting;
  /// Fault path: a Gauss-fallback task recovers all of these targets in
  /// one solve (`target` is then unused and `chain_id` is -1).
  std::vector<codes::Cell> gauss_targets;
  bool done = false;
};

constexpr std::uint32_t kNoWaiter = 0xffffffffu;

/// Arena node of a chunk's waiter list (tasks to wake on delivery),
/// threaded through ChunkInfo::waiters_head/tail in append order.
struct WaiterLink {
  std::uint32_t task = 0;
  std::uint32_t next = kNoWaiter;
};

struct ChunkInfo {
  std::uint64_t stripe = 0;
  codes::Cell cell;
  std::uint8_t priority = 1;
  bool lost = false;       ///< damaged chunk: only readable once recovered
  bool recovered = false;  ///< spare copy exists
  /// Fault path: a spare write for this chunk is in flight (submitted,
  /// SpareWriteDone pending) — replans must not re-target it.
  bool write_pending = false;
  /// Fault path: disk the live spare copy landed on (injector redirects
  /// around dead disks); -1 means the geometry's default choice.
  int spare_disk = -1;
  /// Intrusive waiter list (indices into the WaiterLink arena).
  std::uint32_t waiters_head = kNoWaiter;
  std::uint32_t waiters_tail = kNoWaiter;
};

struct PlannedRead {
  cache::Key key = 0;
  std::uint64_t lba = 0;
  bool spare = false;  ///< read targets the spare copy, not the original
};

struct Reader {
  /// FIFO as a flat vector plus a consume cursor; entries before `head`
  /// are spent (a run's queue is bounded, so nothing is reclaimed).
  std::vector<PlannedRead> queue;
  std::size_t head = 0;
  bool busy = false;
  /// Throttled runs: time the deferred head read was requested (its
  /// ThrottledSubmit event is in flight); feeds the response metrics.
  double requested_at = 0.0;

  bool idle_empty() const { return head >= queue.size(); }
};

}  // namespace

DorEngine::DorEngine(const codes::Layout& layout,
                     const ArrayGeometry& geometry, const DorConfig& config)
    : layout_(&layout), geometry_(&geometry), config_(config) {
  FBF_CHECK(config_.chunk_bytes > 0, "chunk size must be positive");
  // A zero-chunk buffer livelocks DOR: every chain consumption misses and
  // re-enqueues its reads forever, so the event loop never drains.
  FBF_CHECK(config_.cache_capacity_chunks() >= 1,
            "DOR needs a buffer of at least one chunk (cache_bytes >= "
            "chunk_bytes)");
}

SimMetrics DorEngine::run(const std::vector<workload::StripeError>& errors,
                          const std::vector<workload::AppRequest>& app_trace) {
  SimMetrics metrics;
  obs::Histogram response_hist;
  obs::Histogram* response_hist_ptr =
      config_.observer != nullptr ? &response_hist : nullptr;

  std::optional<FaultPlan> fault_plan;
  std::optional<FaultInjector> injector;
  if (config_.faults.enabled()) {
    fault_plan.emplace(config_.faults, config_.seed, config_.obs_label,
                       geometry_->num_disks());
    injector.emplace(*fault_plan, metrics.fault);
  }

  DiskParams dp = config_.disk;
  dp.chunk_bytes = config_.chunk_bytes;
  dp.capacity_chunks = geometry_->disk_capacity_chunks();
  std::vector<Disk> disks;
  disks.reserve(static_cast<std::size_t>(geometry_->num_disks()));
  for (int d = 0; d < geometry_->num_disks(); ++d) {
    DiskParams per_disk = dp;
    if (fault_plan.has_value()) {
      per_disk.service_multiplier = fault_plan->service_multiplier(d);
    }
    disks.emplace_back(d, per_disk,
                       config_.seed * 0x9e3779b97f4a7c15ull +
                           static_cast<std::uint64_t>(d));
  }
  const auto cache =
      cache::make_policy(config_.policy, config_.cache_capacity_chunks());

  // ---- Plan: schemes, chain tasks, per-disk read queues. ----
  recovery::SchemeCache scheme_cache(*layout_);
  std::vector<ChainTask> tasks;
  std::unordered_map<cache::Key, ChunkInfo> info;
  std::vector<WaiterLink> waiter_links;
  std::vector<Reader> readers(disks.size());
  std::optional<obs::PhaseTimer> plan_timer;
  if (config_.observer != nullptr) {
    plan_timer.emplace(config_.observer, "dor_plan");
  }

  // Pre-pass: resolve every stripe's scheme (observing the exact hit/miss
  // sequence the planning pass used to count) and total the steps and
  // member references, so every planning container is reserved to its
  // exact final size before the fill loop touches it.
  std::vector<std::shared_ptr<const recovery::RecoveryScheme>> schemes;
  schemes.reserve(errors.size());
  std::size_t total_steps = 0;
  std::size_t total_refs = 0;
  for (const workload::StripeError& err : errors) {
    const auto before = scheme_cache.misses();
    schemes.push_back(scheme_cache.get(err.error, config_.scheme));
    if (scheme_cache.misses() > before) {
      ++metrics.schemes_generated;
    } else {
      ++metrics.scheme_cache_hits;
    }
    total_steps += schemes.back()->steps.size();
    for (const recovery::RecoveryStep& step : schemes.back()->steps) {
      total_refs += layout_->chain(step.chain_id).cells.size() - 1;
    }
  }
  tasks.reserve(total_steps);
  info.reserve(total_refs + total_steps);
  waiter_links.reserve(total_refs);

  /// Appends task `t` to `ci`'s waiter list, preserving append order.
  auto add_waiter = [&waiter_links](ChunkInfo& ci, std::size_t t) {
    const auto link = static_cast<std::uint32_t>(waiter_links.size());
    waiter_links.push_back(WaiterLink{static_cast<std::uint32_t>(t),
                                      kNoWaiter});
    if (ci.waiters_head == kNoWaiter) {
      ci.waiters_head = link;
    } else {
      waiter_links[ci.waiters_tail].next = link;
    }
    ci.waiters_tail = link;
  };

  for (std::size_t e = 0; e < errors.size(); ++e) {
    const workload::StripeError& err = errors[e];
    const recovery::RecoveryScheme& scheme = *schemes[e];
    std::vector<bool> lost(static_cast<std::size_t>(layout_->num_cells()),
                           false);
    for (const codes::Cell& c : err.error.cells()) {
      lost[static_cast<std::size_t>(layout_->cell_index(c))] = true;
    }
    for (const recovery::RecoveryStep& step : scheme.steps) {
      ChainTask task;
      task.stripe = err.stripe;
      task.target = step.target;
      task.chain_id = step.chain_id;
      const auto tidx =
          static_cast<std::size_t>(layout_->cell_index(step.target));
      task.target_priority =
          std::max<std::uint8_t>(scheme.priority[tidx], 1);
      for (const codes::Cell& c : layout_->chain(step.chain_id).cells) {
        if (c == step.target) {
          continue;
        }
        const cache::Key key = geometry_->chunk_key(err.stripe, c);
        const auto cidx = static_cast<std::size_t>(layout_->cell_index(c));
        auto [it, fresh] = info.try_emplace(key);
        if (fresh) {
          it->second.stripe = err.stripe;
          it->second.cell = c;
          it->second.priority =
              std::max<std::uint8_t>(scheme.priority[cidx], 1);
          it->second.lost = lost[cidx];
          if (!it->second.lost) {
            // Planned read from the chunk's home disk.
            readers[static_cast<std::size_t>(geometry_->disk_of(err.stripe, c))]
                .queue.push_back(
                    PlannedRead{key, geometry_->lba_of(err.stripe, c)});
          }
        }
        task.unconsumed.push_back(Member{key, it->second.priority});
        task.awaiting.push_back(key);
        ++task.n_members;
        add_waiter(it->second, tasks.size());
      }
      // Register the recovered target so dependent chains can await it.
      const cache::Key tkey = geometry_->chunk_key(err.stripe, step.target);
      auto [it, fresh] = info.try_emplace(tkey);
      if (fresh) {
        it->second.stripe = err.stripe;
        it->second.cell = step.target;
        it->second.priority = task.target_priority;
        it->second.lost = true;
      }
      tasks.push_back(std::move(task));
    }
  }
  for (Reader& r : readers) {  // LBA order: sequential streaming per disk
    std::sort(r.queue.begin(), r.queue.end(),
              [](const PlannedRead& a, const PlannedRead& b) {
                return a.lba < b.lba;
              });
    metrics.planned_disk_reads += r.queue.size();
  }
  plan_timer.reset();  // planning phase ends here

  // ---- Foreground traffic (shared server, foreground.h). ----
  // App requests are served synchronously against the analytic disks; the
  // event loop only schedules arrivals. The app fault stream is a separate
  // injector over the same plan (own nonce stream, own stats) so app
  // retries never perturb the rebuild accounting laws. The spare override
  // reads ChunkInfo::spare_disk, so drained requests land on the disk the
  // spare write actually hit (injector redirects around dead disks).
  std::optional<FaultInjector> app_injector;
  if (fault_plan.has_value() && !app_trace.empty()) {
    app_injector.emplace(*fault_plan, metrics.app_fault);
  }
  ForegroundServer foreground(
      *layout_, *geometry_, disks, errors, app_trace, metrics,
      app_injector.has_value() ? &*app_injector : nullptr,
      [&info](std::uint64_t key) {
        const auto it = info.find(key);
        return it != info.end() ? it->second.spare_disk : -1;
      });
  std::optional<RebuildThrottle> throttle;
  if (config_.throttle.enabled()) {
    throttle.emplace(config_.throttle);
  }
  // DOR has no per-stripe pass structure, so "stripe repaired" (the drain
  // trigger for parked requests) is counted explicitly: a stripe is done
  // when the last of its *traced* losses has a persisted spare copy.
  // Escalation-synthesized losses are deliberately excluded — the traced
  // damage is what parked the request, and its spare copies are live once
  // the count hits zero (re-lost spares re-recover under the same key,
  // deduplicated via recovered_once).
  std::unordered_map<std::uint64_t, std::size_t> stripe_outstanding;
  std::unordered_set<cache::Key> recovered_once;
  if (!app_trace.empty()) {
    for (const workload::StripeError& e : errors) {
      stripe_outstanding[e.stripe] += e.error.cells().size();
    }
    recovered_once.reserve(foreground.damaged_keys().size());
  }

  // ---- Event loop. ----
  // Two event kinds suffice, so events are a flat POD instead of a
  // std::function whose captures would hit the heap on every push: a
  // planned/re-read completing on a disk, and a recovered chunk's spare
  // write persisting.
  struct Event {
    double t;
    std::uint64_t seq;
    enum class Kind : std::uint8_t {
      ReadDone,
      SpareWriteDone,
      ReadFailed,  ///< fault path: attempt budget exhausted / URE / dead disk
      DiskFail,    ///< fault path: whole-disk failure at t (disk = victim)
      AppArrival,  ///< foreground request arrival (key = trace index)
      ThrottledSubmit,  ///< throttle grant due: submit the reader's head read
    } kind;
    std::uint32_t disk;  ///< ReadDone/ReadFailed reader; SpareWriteDone target
    cache::Key key;
    bool operator>(const Event& o) const {
      return t > o.t || (t == o.t && seq > o.seq);
    }
  };
  // Readers fold onto 16 shards (the busy flag caps each disk at a
  // single in-flight read, so a shard holds at most ceil(disks/16)
  // events) plus a bulk shard for spare writes, disk failures, and app
  // arrivals; the
  // partition is order-irrelevant (event_queue.h), so the shard count is
  // purely a tournament-depth dial, sized so the shard map is a single
  // AND. Faultless runs issue exactly one spare write per planned task,
  // so the bulk reserve is exact; with faults active, replans mint extra
  // write events, bounded by the escalation arithmetic plus a slab for
  // URE/transient re-recoveries. The regrowth counter (asserted zero by
  // the fault tests) pins these bounds.
  constexpr std::size_t kReaderShardMask = 15;  // 16 shards
  constexpr std::size_t kBulkShard = kReaderShardMask + 1;
  ShardedEventQueue<Event> queue(kBulkShard + 1);
  const std::size_t bulk_shard = kBulkShard;
  for (std::size_t d = 0; d < readers.size(); ++d) {
    queue.reserve(d & kReaderShardMask, 1);
  }
  {
    std::size_t bulk_bound = tasks.size() + app_trace.size();
    if (fault_plan.has_value()) {
      const std::size_t failures = fault_plan->disk_failures().size();
      bulk_bound += failures;  // the DiskFail events themselves
      // Escalation: each failure re-targets at most one column of every
      // traced stripe.
      bulk_bound += failures * errors.size() *
                    static_cast<std::size_t>(layout_->rows());
      if (config_.faults.ure_rate > 0.0 ||
          config_.faults.transient_rate > 0.0) {
        bulk_bound += 1024;  // replan slab: re-recovered chunks
      }
    }
    queue.reserve(bulk_shard, bulk_bound);
  }
  std::uint64_t seq = 0;
  double makespan = 0.0;
  std::size_t tasks_done = 0;
  std::vector<Member> missing_scratch;  // reused per completion attempt

  // Second half of kick_reader: consumes the reader's head read and
  // submits it at `submit_t` (the request time, or a later throttle
  // grant). Response time counts from `requested`, so the throttle wait is
  // visible in the rebuild latency metrics.
  auto submit_planned = [&](std::size_t d, double requested,
                            double submit_t) {
    Reader& r = readers[d];
    const PlannedRead read = r.queue[r.head++];
    double done;
    bool ok = true;
    if (injector.has_value()) {
      const FaultInjector::ReadOutcome rr = injector->read(
          disks[d], submit_t, read.lba, read.key, !read.spare);
      done = rr.done_ms;
      ok = rr.ok;
      metrics.disk_reads += static_cast<std::uint64_t>(rr.attempts);
    } else {
      done = disks[d].submit_read(submit_t, read.lba);
      ++metrics.disk_reads;
    }
    metrics.response_ms.add(done - requested + config_.cache_access_ms);
    metrics.response_reservoir.add(done - requested +
                                   config_.cache_access_ms);
    if (response_hist_ptr != nullptr) {
      response_hist_ptr->add(done - requested + config_.cache_access_ms);
    }
    if (obs::tracing(config_.observer, obs::TraceLevel::Fine)) {
      // Simulated ms rendered as trace us; stripe looked up only when the
      // span is actually emitted (the hash lookup is not free).
      obs::trace_span(config_.observer, obs::TraceLevel::Fine, obs::kPidDisks,
                      static_cast<std::uint32_t>(d), "disk_read", "disk",
                      submit_t * 1000.0, (done - submit_t) * 1000.0, "stripe",
                      info.at(read.key).stripe);
    }
    queue.push(d & kReaderShardMask,
               Event{done, seq++,
                     ok ? Event::Kind::ReadDone : Event::Kind::ReadFailed,
                     static_cast<std::uint32_t>(d), read.key});
  };

  auto kick_reader = [&](std::size_t d, double now) {
    Reader& r = readers[d];
    if (r.busy || r.idle_empty()) {
      return;
    }
    r.busy = true;
    if (throttle.has_value()) {
      // kick_reader is only ever invoked at the current event time, which
      // is non-decreasing as acquire() requires. A grant in the future
      // defers the actual submission to a ThrottledSubmit event rather
      // than future-dating it, which would reserve the FCFS disk ahead of
      // foreground requests arriving in the interim. A reader has at most
      // one in-flight event (ThrottledSubmit or ReadDone/ReadFailed), so
      // the shard reserve bounds are unchanged.
      const double grant = throttle->acquire(now);
      if (grant > now) {
        r.requested_at = now;
        queue.push(d & kReaderShardMask,
                   Event{grant, seq++, Event::Kind::ThrottledSubmit,
                         static_cast<std::uint32_t>(d), 0});
        return;
      }
    }
    submit_planned(d, now, now);
  };

  auto enqueue_reread = [&](cache::Key key, double now) {
    const ChunkInfo& ci = info.at(key);
    const bool spare = ci.lost;  // recovered chunks live in the spare area
    const auto d = static_cast<std::size_t>(
        spare ? (ci.spare_disk >= 0
                     ? ci.spare_disk
                     : geometry_->spare_disk_of(ci.stripe, ci.cell))
              : geometry_->disk_of(ci.stripe, ci.cell));
    const std::uint64_t lba = spare
                                  ? geometry_->spare_lba_of(ci.stripe, ci.cell)
                                  : geometry_->lba_of(ci.stripe, ci.cell);
    readers[d].queue.push_back(PlannedRead{key, lba, spare});
    kick_reader(d, now);
  };

  auto attempt_completion = [&](std::size_t t, double now, cache::Key fresh) {
    ChainTask& task = tasks[t];
    if (task.done) {
      return;
    }
    // Consume the freshly delivered member first: it is resident this
    // instant, so every completion wake-up folds at least one member into
    // the XOR accumulator. Without this ordering the loop can livelock —
    // with a buffer smaller than the chain, or an insertion-averse policy
    // (LFU keeps high-frequency keys over fresh freq-1 arrivals), each
    // miss below re-inserts its key and can evict the fresh member before
    // its turn, so a round consumes nothing and re-reads the same set
    // forever.
    const auto fresh_it = std::find_if(
        task.unconsumed.begin(), task.unconsumed.end(),
        [fresh](const Member& m) { return m.key == fresh; });
    if (fresh_it != task.unconsumed.end()) {
      std::rotate(task.unconsumed.begin(), fresh_it, fresh_it + 1);
    }
    // Consume members still buffered; re-read the evicted ones.
    missing_scratch.clear();
    for (const Member& m : task.unconsumed) {
      if (cache->request(m.key, m.priority)) {
        continue;  // consumed (folded into the XOR accumulator)
      }
      missing_scratch.push_back(m);
    }
    metrics.total_chunk_requests += task.unconsumed.size();
    task.unconsumed.assign(missing_scratch.begin(), missing_scratch.end());
    if (!task.unconsumed.empty()) {
      for (const Member& m : task.unconsumed) {
        task.awaiting.push_back(m.key);
      }
      for (const Member& m : task.unconsumed) {
        enqueue_reread(m.key, now);
      }
      return;
    }
    task.done = true;
    ++tasks_done;
    const double xor_done =
        now + config_.xor_ms_per_chunk * static_cast<double>(task.n_members);
    obs::trace_span(config_.observer, obs::TraceLevel::Fine, obs::kPidSim, 0,
                    "chain_fold", "xor", now * 1000.0, (xor_done - now) * 1000.0,
                    "stripe", task.stripe);
    // One write per recovered target (a Gauss task solves several in one
    // fold). The injector redirects spare writes around dead disks.
    auto write_target = [&](codes::Cell target) {
      const auto d = static_cast<std::size_t>(
          injector.has_value()
              ? injector->spare_disk(*geometry_, task.stripe, target, xor_done)
              : geometry_->spare_disk_of(task.stripe, target));
      const double write_done = disks[d].submit_write(
          xor_done, geometry_->spare_lba_of(task.stripe, target));
      ++metrics.disk_writes;
      ++metrics.chunks_recovered;
      obs::trace_span(config_.observer, obs::TraceLevel::Phases,
                      obs::kPidDisks, static_cast<std::uint32_t>(d),
                      "spare_write", "disk", xor_done * 1000.0,
                      (write_done - xor_done) * 1000.0, "stripe", task.stripe);
      makespan = std::max(makespan, write_done);
      const cache::Key tkey = geometry_->chunk_key(task.stripe, target);
      info.at(tkey).write_pending = true;
      queue.push(bulk_shard,
                 Event{write_done, seq++, Event::Kind::SpareWriteDone,
                       static_cast<std::uint32_t>(d), tkey});
    };
    if (task.gauss_targets.empty()) {
      write_target(task.target);
    } else {
      for (const codes::Cell& target : task.gauss_targets) {
        write_target(target);
      }
    }
  };

  // Delivery of a chunk (from its home disk, the spare area, or a chain
  // completion): buffer it and wake exactly the tasks awaiting this key.
  auto deliver = [&](cache::Key key, double now) {
    ChunkInfo& ci = info.at(key);
    cache->install(key, ci.priority);
    for (std::uint32_t l = ci.waiters_head; l != kNoWaiter;) {
      // Copy the link before waking the task: a completion may append
      // waiter links (growing the arena) for a later key.
      const std::uint32_t t = waiter_links[l].task;
      l = waiter_links[l].next;
      ChainTask& task = tasks[t];
      if (task.done) {
        continue;
      }
      const auto it =
          std::find(task.awaiting.begin(), task.awaiting.end(), key);
      if (it == task.awaiting.end()) {
        continue;
      }
      *it = task.awaiting.back();
      task.awaiting.pop_back();
      if (task.awaiting.empty()) {
        attempt_completion(t, now, key);
      }
    }
  };

  // ---- Fault path: re-planning around mid-recovery losses. ----
  auto failed_disks_at = [&](double now) {
    std::vector<int> failed;
    if (fault_plan.has_value()) {
      for (const DiskFailure& f : fault_plan->disk_failures()) {
        if (f.at_ms <= now) {
          failed.push_back(f.disk);
        }
      }
    }
    return failed;
  };

  // Re-plans one stripe: abandons its unfinished chains and covers every
  // still-outstanding loss with a fresh peeling plan plus Gauss fallback.
  // Throws EscalationError when the lost set exceeds the erasure budget.
  auto replan_stripe = [&](std::uint64_t stripe, double now) {
    for (ChainTask& task : tasks) {
      if (task.stripe == stripe && !task.done) {
        task.done = true;  // superseded by the new plan
        ++tasks_done;
      }
    }
    std::vector<codes::Cell> outstanding;
    for (const auto& [key, ci] : info) {
      if (ci.stripe == stripe && ci.lost && !ci.recovered &&
          !ci.write_pending) {
        outstanding.push_back(ci.cell);
      }
    }
    std::sort(outstanding.begin(), outstanding.end());
    if (outstanding.empty()) {
      return;  // every loss has (or is about to have) a live spare copy
    }
    if (!codes::erasure_decodable(*layout_, outstanding)) {
      throw EscalationError(stripe, std::move(outstanding),
                            failed_disks_at(now));
    }
    const recovery::FaultScheme fs =
        recovery::generate_fault_scheme(*layout_, outstanding);
    ++metrics.schemes_generated;
    if (!fs.gauss_cells.empty()) {
      ++metrics.fault.gauss_fallbacks;
    }
    const std::size_t first_new = tasks.size();
    // Adds one task over `members`: losses still pending recovery are
    // awaited (their SpareWriteDone wakes us), buffered chunks are left
    // for consumption time, everything else is fetched — a late planned
    // read for the accounting laws.
    auto add_task = [&](ChainTask task,
                        const std::vector<codes::Cell>& members) {
      const std::size_t tindex = tasks.size();
      for (const codes::Cell& c : members) {
        const cache::Key key = geometry_->chunk_key(stripe, c);
        const auto cidx = static_cast<std::size_t>(layout_->cell_index(c));
        auto [it, fresh] = info.try_emplace(key);
        if (fresh) {
          it->second.stripe = stripe;
          it->second.cell = c;
          it->second.priority =
              std::max<std::uint8_t>(fs.scheme.priority[cidx], 1);
        }
        task.unconsumed.push_back(Member{key, it->second.priority});
        ++task.n_members;
        add_waiter(it->second, tindex);
        const ChunkInfo& ci = it->second;
        if (ci.lost && !ci.recovered) {
          task.awaiting.push_back(key);
        } else if (!cache->contains(key)) {
          task.awaiting.push_back(key);
          const bool spare = ci.lost;
          const auto d = static_cast<std::size_t>(
              spare ? (ci.spare_disk >= 0
                           ? ci.spare_disk
                           : geometry_->spare_disk_of(stripe, c))
                    : geometry_->disk_of(stripe, c));
          const std::uint64_t lba = spare
                                        ? geometry_->spare_lba_of(stripe, c)
                                        : geometry_->lba_of(stripe, c);
          readers[d].queue.push_back(PlannedRead{key, lba, spare});
          ++metrics.planned_disk_reads;
          kick_reader(d, now);
        }
      }
      auto register_target = [&](codes::Cell target) {
        const cache::Key tkey = geometry_->chunk_key(stripe, target);
        const auto tidx =
            static_cast<std::size_t>(layout_->cell_index(target));
        auto [it, fresh] = info.try_emplace(tkey);
        if (fresh) {
          it->second.stripe = stripe;
          it->second.cell = target;
          it->second.priority =
              std::max<std::uint8_t>(fs.scheme.priority[tidx], 1);
        }
        it->second.lost = true;
      };
      if (task.gauss_targets.empty()) {
        register_target(task.target);
      } else {
        for (const codes::Cell& t : task.gauss_targets) {
          register_target(t);
        }
      }
      tasks.push_back(std::move(task));
    };
    for (const recovery::RecoveryStep& step : fs.scheme.steps) {
      ChainTask task;
      task.stripe = stripe;
      task.target = step.target;
      task.chain_id = step.chain_id;
      const auto tidx =
          static_cast<std::size_t>(layout_->cell_index(step.target));
      task.target_priority =
          std::max<std::uint8_t>(fs.scheme.priority[tidx], 1);
      std::vector<codes::Cell> members;
      for (const codes::Cell& c : layout_->chain(step.chain_id).cells) {
        if (!(c == step.target)) {
          members.push_back(c);
        }
      }
      add_task(std::move(task), members);
    }
    if (!fs.gauss_cells.empty()) {
      // One multi-target task: the Gauss solve folds the distinct known
      // members of every involved chain and recovers all its cells.
      ChainTask task;
      task.stripe = stripe;
      task.gauss_targets = fs.gauss_cells;
      std::vector<bool> is_gauss(
          static_cast<std::size_t>(layout_->num_cells()), false);
      for (const codes::Cell& c : fs.gauss_cells) {
        is_gauss[static_cast<std::size_t>(layout_->cell_index(c))] = true;
      }
      std::vector<bool> seen(static_cast<std::size_t>(layout_->num_cells()),
                             false);
      std::vector<codes::Cell> members;
      for (int chain_id : fs.gauss_chains) {
        for (const codes::Cell& c : layout_->chain(chain_id).cells) {
          const auto idx = static_cast<std::size_t>(layout_->cell_index(c));
          if (is_gauss[idx] || seen[idx]) {
            continue;
          }
          seen[idx] = true;
          members.push_back(c);
        }
      }
      add_task(std::move(task), members);
    }
    for (std::size_t t = first_new; t < tasks.size(); ++t) {
      if (tasks[t].awaiting.empty() && !tasks[t].done) {
        attempt_completion(t, now,
                           tasks[t].unconsumed.empty()
                               ? 0
                               : tasks[t].unconsumed.front().key);
      }
    }
  };

  // A read hard-failed: the chunk (survivor or spare copy) is unreadable
  // and its stripe must be re-planned around the loss.
  auto hard_read_failure = [&](cache::Key key, double now) {
    ChunkInfo& ci = info.at(key);
    if (ci.lost && !ci.recovered) {
      return;  // already pending recovery: a stale queued read drained
    }
    ++metrics.fault.replans;
    ++metrics.fault.extra_lost_chunks;
    if (ci.lost) {
      ci.recovered = false;  // spare copy unreadable: recover again
      ci.spare_disk = -1;
    } else {
      ci.lost = true;  // surviving chunk unreadable: joins the lost set
    }
    replan_stripe(ci.stripe, now);
  };

  for (std::size_t d = 0; d < readers.size(); ++d) {
    kick_reader(d, 0.0);
  }
  if (fault_plan.has_value()) {
    for (const DiskFailure& f : fault_plan->disk_failures()) {
      queue.push(bulk_shard, Event{f.at_ms, seq++, Event::Kind::DiskFail,
                                   static_cast<std::uint32_t>(f.disk), 0});
    }
  }
  for (std::size_t i = 0; i < app_trace.size(); ++i) {
    queue.push(bulk_shard,
               Event{app_trace[i].arrival_ms, seq++, Event::Kind::AppArrival,
                     0, static_cast<cache::Key>(i)});
  }
  while (!queue.empty()) {
    const Event ev = queue.pop();
    ++metrics.engine_events;
    if (ev.kind != Event::Kind::DiskFail &&
        ev.kind != Event::Kind::AppArrival) {
      // A failure or an app arrival alone does not extend reconstruction;
      // only the rebuild work it triggers does.
      makespan = std::max(makespan, ev.t);
    }
    switch (ev.kind) {
      case Event::Kind::ReadDone:
        deliver(ev.key, ev.t);
        readers[ev.disk].busy = false;
        kick_reader(ev.disk, ev.t);
        break;
      case Event::Kind::SpareWriteDone: {
        // The recovered chunk becomes available: buffer it and wake
        // chains that were waiting on the lost cell.
        ChunkInfo& ci = info.at(ev.key);
        ci.recovered = true;
        ci.write_pending = false;
        ci.spare_disk = static_cast<int>(ev.disk);
        // Copy the stripe before deliver(): a woken completion can replan
        // and grow `info`, invalidating `ci`.
        const std::uint64_t stripe = ci.stripe;
        deliver(ev.key, ev.t);
        if (!app_trace.empty() &&
            foreground.damaged_keys().count(ev.key) > 0 &&
            recovered_once.insert(ev.key).second) {
          const auto out = stripe_outstanding.find(stripe);
          if (out != stripe_outstanding.end() && --out->second == 0) {
            foreground.on_stripe_recovered(stripe, ev.t);
          }
        }
        break;
      }
      case Event::Kind::ReadFailed:
        // Free the reader first: the replan may enqueue onto this disk.
        readers[ev.disk].busy = false;
        kick_reader(ev.disk, ev.t);
        hard_read_failure(ev.key, ev.t);
        break;
      case Event::Kind::DiskFail: {
        ++metrics.fault.disk_failures;
        const int failed = static_cast<int>(ev.disk);
        // Escalation: every traced stripe with a column on the failed
        // disk gains that column as fresh losses (minus live spares) and
        // is re-planned while the erasure budget permits.
        for (const workload::StripeError& traced : errors) {
          int col = -1;
          for (int c = 0; c < layout_->cols(); ++c) {
            if (geometry_->disk_of(traced.stripe,
                                   codes::Cell{0, static_cast<std::int16_t>(
                                                      c)}) == failed) {
              col = c;
              break;
            }
          }
          if (col < 0) {
            continue;  // the failed disk holds no column of this stripe
          }
          ++metrics.fault.escalated_stripes;
          for (int r = 0; r < layout_->rows(); ++r) {
            const codes::Cell cell{static_cast<std::int16_t>(r),
                                   static_cast<std::int16_t>(col)};
            const cache::Key key = geometry_->chunk_key(traced.stripe, cell);
            auto [it, fresh] = info.try_emplace(key);
            ChunkInfo& ci = it->second;
            if (fresh) {
              ci.stripe = traced.stripe;
              ci.cell = cell;
              ci.priority = 1;
            }
            if (!ci.lost) {
              ci.lost = true;  // original copy was homed on the dead disk
              ++metrics.fault.extra_lost_chunks;
            } else if (ci.recovered &&
                       (ci.spare_disk >= 0
                            ? ci.spare_disk
                            : geometry_->spare_disk_of(traced.stripe,
                                                       cell)) == failed) {
              ci.recovered = false;  // spare copy died with the disk
              ci.spare_disk = -1;
              ++metrics.fault.extra_lost_chunks;
            }
          }
          replan_stripe(traced.stripe, ev.t);
        }
        break;
      }
      case Event::Kind::AppArrival:
        foreground.on_arrival(static_cast<std::size_t>(ev.key), ev.t);
        break;
      case Event::Kind::ThrottledSubmit:
        submit_planned(ev.disk, readers[ev.disk].requested_at, ev.t);
        break;
    }
  }
  FBF_CHECK(tasks_done == tasks.size(),
            "DOR finished with incomplete chains — dependency deadlock");
  metrics.event_queue_regrowths = queue.regrowths();
  foreground.assert_drained();

  metrics.reconstruction_ms = makespan;
  // Escalation passes count like SOR's synthetic stripe entries so the
  // validation law stripes == errors + escalations holds in both engines.
  metrics.stripes_recovered =
      errors.size() + metrics.fault.escalated_stripes;
  metrics.cache = cache->stats();
  for (const Disk& d : disks) {
    metrics.disk_busy_ms.push_back(d.stats().busy_ms);
    metrics.disk_ops.push_back(d.stats().reads + d.stats().writes);
  }
  if (validation_enabled()) {
    validate_run(metrics, errors);
  }
  record_run(config_.observer, config_.obs_label, metrics, response_hist_ptr);
  return metrics;
}

}  // namespace fbf::sim
