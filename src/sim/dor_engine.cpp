#include "sim/dor_engine.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "codes/codec.h"
#include "codes/xor_kernels.h"
#include "obs/observer.h"
#include "obs/registry.h"
#include "recovery/scheme.h"
#include "sim/event_queue.h"
#include "sim/validate.h"
#include "util/check.h"
#include "util/hugepage.h"
#include "util/rng.h"

namespace fbf::sim {

bool forced_dor_legacy_loop() {
  static const bool forced = [] {
    const char* v = std::getenv("FBF_DOR_LEGACY_LOOP");
    return v != nullptr && std::string(v) != "0";
  }();
  return forced;
}

namespace {

/// A chain member reference with its (immutable) dictionary priority
/// cached, so the consumption loop never re-resolves it through the info
/// map.
struct Member {
  cache::Key key = 0;
  std::uint8_t priority = 1;
};

struct ChainTask {
  std::uint64_t stripe = 0;
  codes::Cell target;
  int chain_id = -1;
  std::uint8_t target_priority = 1;
  int n_members = 0;
  std::vector<Member> unconsumed;
  /// Member keys whose (re-)delivery this task is currently waiting on.
  /// Every insert site fills an empty list with distinct keys, so a flat
  /// vector with find + swap-pop removal behaves like the set it replaced.
  std::vector<cache::Key> awaiting;
  /// Fault path: a Gauss-fallback task recovers all of these targets in
  /// one solve (`target` is then unused and `chain_id` is -1).
  std::vector<codes::Cell> gauss_targets;
  bool done = false;
};

constexpr std::uint32_t kNoWaiter = 0xffffffffu;

/// Arena node of a chunk's waiter list (tasks to wake on delivery),
/// threaded through ChunkInfo::waiters_head/tail in append order.
struct WaiterLink {
  std::uint32_t task = 0;
  std::uint32_t next = kNoWaiter;
};

struct ChunkInfo {
  std::uint64_t stripe = 0;
  codes::Cell cell;
  std::uint8_t priority = 1;
  bool lost = false;       ///< damaged chunk: only readable once recovered
  bool recovered = false;  ///< spare copy exists
  /// Fault path: a spare write for this chunk is in flight (submitted,
  /// SpareWriteDone pending) — replans must not re-target it.
  bool write_pending = false;
  /// Fault path: disk the live spare copy landed on (injector redirects
  /// around dead disks); -1 means the geometry's default choice.
  int spare_disk = -1;
  /// Intrusive waiter list (indices into the WaiterLink arena).
  std::uint32_t waiters_head = kNoWaiter;
  std::uint32_t waiters_tail = kNoWaiter;
};

struct PlannedRead {
  cache::Key key = 0;
  std::uint64_t lba = 0;
  bool spare = false;  ///< read targets the spare copy, not the original
};

struct Reader {
  /// FIFO as a flat vector plus a consume cursor; entries before `head`
  /// are spent (a run's queue is bounded, so nothing is reclaimed).
  std::vector<PlannedRead> queue;
  std::size_t head = 0;
  bool busy = false;
  /// Throttled runs: time the deferred head read was requested (its
  /// ThrottledSubmit event is in flight); feeds the response metrics.
  double requested_at = 0.0;

  bool idle_empty() const { return head >= queue.size(); }
};

}  // namespace

DorEngine::DorEngine(const codes::Layout& layout,
                     const ArrayGeometry& geometry, const DorConfig& config)
    : layout_(&layout), geometry_(&geometry), config_(config) {
  FBF_CHECK(config_.chunk_bytes > 0, "chunk size must be positive");
  // A zero-chunk buffer livelocks DOR: every chain consumption misses and
  // re-enqueues its reads forever, so the event loop never drains.
  FBF_CHECK(config_.cache_capacity_chunks() >= 1,
            "DOR needs a buffer of at least one chunk (cache_bytes >= "
            "chunk_bytes)");
}

SimMetrics DorEngine::run(const std::vector<workload::StripeError>& errors,
                          const std::vector<workload::AppRequest>& app_trace) {
  FBF_CHECK(!(config_.verify_data && config_.legacy_loop),
            "verify_data needs the coalesced loop (legacy_loop predates it)");
  return config_.legacy_loop ? run_legacy(errors, app_trace)
                             : run_fast(errors, app_trace);
}

SimMetrics DorEngine::run_legacy(
    const std::vector<workload::StripeError>& errors,
    const std::vector<workload::AppRequest>& app_trace) {
  SimMetrics metrics;
  obs::Histogram response_hist;
  obs::Histogram* response_hist_ptr =
      config_.observer != nullptr ? &response_hist : nullptr;

  std::optional<FaultPlan> fault_plan;
  std::optional<FaultInjector> injector;
  if (config_.faults.enabled()) {
    fault_plan.emplace(config_.faults, config_.seed, config_.obs_label,
                       geometry_->num_disks());
    injector.emplace(*fault_plan, metrics.fault);
  }

  DiskParams dp = config_.disk;
  dp.chunk_bytes = config_.chunk_bytes;
  dp.capacity_chunks = geometry_->disk_capacity_chunks();
  std::vector<Disk> disks;
  disks.reserve(static_cast<std::size_t>(geometry_->num_disks()));
  for (int d = 0; d < geometry_->num_disks(); ++d) {
    DiskParams per_disk = dp;
    if (fault_plan.has_value()) {
      per_disk.service_multiplier = fault_plan->service_multiplier(d);
    }
    disks.emplace_back(d, per_disk,
                       config_.seed * 0x9e3779b97f4a7c15ull +
                           static_cast<std::uint64_t>(d));
  }
  const auto cache =
      cache::make_policy(config_.policy, config_.cache_capacity_chunks());

  // ---- Plan: schemes, chain tasks, per-disk read queues. ----
  recovery::SchemeCache scheme_cache(*layout_);
  std::vector<ChainTask> tasks;
  std::unordered_map<cache::Key, ChunkInfo> info;
  std::vector<WaiterLink> waiter_links;
  std::vector<Reader> readers(disks.size());
  std::optional<obs::PhaseTimer> plan_timer;
  if (config_.observer != nullptr) {
    plan_timer.emplace(config_.observer, "dor_plan");
  }

  // Pre-pass: resolve every stripe's scheme (observing the exact hit/miss
  // sequence the planning pass used to count) and total the steps and
  // member references, so every planning container is reserved to its
  // exact final size before the fill loop touches it.
  std::vector<std::shared_ptr<const recovery::RecoveryScheme>> schemes;
  schemes.reserve(errors.size());
  std::size_t total_steps = 0;
  std::size_t total_refs = 0;
  for (const workload::StripeError& err : errors) {
    const auto before = scheme_cache.misses();
    schemes.push_back(scheme_cache.get(err.error, config_.scheme));
    if (scheme_cache.misses() > before) {
      ++metrics.schemes_generated;
    } else {
      ++metrics.scheme_cache_hits;
    }
    total_steps += schemes.back()->steps.size();
    for (const recovery::RecoveryStep& step : schemes.back()->steps) {
      total_refs += layout_->chain(step.chain_id).cells.size() - 1;
    }
  }
  tasks.reserve(total_steps);
  info.reserve(total_refs + total_steps);
  waiter_links.reserve(total_refs);

  /// Appends task `t` to `ci`'s waiter list, preserving append order.
  auto add_waiter = [&waiter_links](ChunkInfo& ci, std::size_t t) {
    const auto link = static_cast<std::uint32_t>(waiter_links.size());
    waiter_links.push_back(WaiterLink{static_cast<std::uint32_t>(t),
                                      kNoWaiter});
    if (ci.waiters_head == kNoWaiter) {
      ci.waiters_head = link;
    } else {
      waiter_links[ci.waiters_tail].next = link;
    }
    ci.waiters_tail = link;
  };

  for (std::size_t e = 0; e < errors.size(); ++e) {
    const workload::StripeError& err = errors[e];
    const recovery::RecoveryScheme& scheme = *schemes[e];
    std::vector<bool> lost(static_cast<std::size_t>(layout_->num_cells()),
                           false);
    for (const codes::Cell& c : err.error.cells()) {
      lost[static_cast<std::size_t>(layout_->cell_index(c))] = true;
    }
    for (const recovery::RecoveryStep& step : scheme.steps) {
      ChainTask task;
      task.stripe = err.stripe;
      task.target = step.target;
      task.chain_id = step.chain_id;
      const auto tidx =
          static_cast<std::size_t>(layout_->cell_index(step.target));
      task.target_priority =
          std::max<std::uint8_t>(scheme.priority[tidx], 1);
      for (const codes::Cell& c : layout_->chain(step.chain_id).cells) {
        if (c == step.target) {
          continue;
        }
        const cache::Key key = geometry_->chunk_key(err.stripe, c);
        const auto cidx = static_cast<std::size_t>(layout_->cell_index(c));
        auto [it, fresh] = info.try_emplace(key);
        if (fresh) {
          it->second.stripe = err.stripe;
          it->second.cell = c;
          it->second.priority =
              std::max<std::uint8_t>(scheme.priority[cidx], 1);
          it->second.lost = lost[cidx];
          if (!it->second.lost) {
            // Planned read from the chunk's home disk.
            readers[static_cast<std::size_t>(geometry_->disk_of(err.stripe, c))]
                .queue.push_back(
                    PlannedRead{key, geometry_->lba_of(err.stripe, c)});
          }
        }
        task.unconsumed.push_back(Member{key, it->second.priority});
        task.awaiting.push_back(key);
        ++task.n_members;
        add_waiter(it->second, tasks.size());
      }
      // Register the recovered target so dependent chains can await it.
      const cache::Key tkey = geometry_->chunk_key(err.stripe, step.target);
      auto [it, fresh] = info.try_emplace(tkey);
      if (fresh) {
        it->second.stripe = err.stripe;
        it->second.cell = step.target;
        it->second.priority = task.target_priority;
        it->second.lost = true;
      }
      tasks.push_back(std::move(task));
    }
  }
  for (Reader& r : readers) {  // LBA order: sequential streaming per disk
    std::sort(r.queue.begin(), r.queue.end(),
              [](const PlannedRead& a, const PlannedRead& b) {
                return a.lba < b.lba;
              });
    metrics.planned_disk_reads += r.queue.size();
  }
  plan_timer.reset();  // planning phase ends here

  // ---- Foreground traffic (shared server, foreground.h). ----
  // App requests are served synchronously against the analytic disks; the
  // event loop only schedules arrivals. The app fault stream is a separate
  // injector over the same plan (own nonce stream, own stats) so app
  // retries never perturb the rebuild accounting laws. The spare override
  // reads ChunkInfo::spare_disk, so drained requests land on the disk the
  // spare write actually hit (injector redirects around dead disks).
  std::optional<FaultInjector> app_injector;
  if (fault_plan.has_value() && !app_trace.empty()) {
    app_injector.emplace(*fault_plan, metrics.app_fault);
  }
  ForegroundServer foreground(
      *layout_, *geometry_, disks, errors, app_trace, metrics,
      app_injector.has_value() ? &*app_injector : nullptr,
      [&info](std::uint64_t key) {
        const auto it = info.find(key);
        return it != info.end() ? it->second.spare_disk : -1;
      },
      config_.write);
  std::optional<RebuildThrottle> throttle;
  if (config_.throttle.enabled()) {
    throttle.emplace(config_.throttle);
  }
  // DOR has no per-stripe pass structure, so "stripe repaired" (the drain
  // trigger for parked requests) is counted explicitly: a stripe is done
  // when the last of its *traced* losses has a persisted spare copy.
  // Escalation-synthesized losses are deliberately excluded — the traced
  // damage is what parked the request, and its spare copies are live once
  // the count hits zero (re-lost spares re-recover under the same key,
  // deduplicated via recovered_once).
  std::unordered_map<std::uint64_t, std::size_t> stripe_outstanding;
  std::unordered_set<cache::Key> recovered_once;
  if (!app_trace.empty()) {
    for (const workload::StripeError& e : errors) {
      stripe_outstanding[e.stripe] += e.error.cells().size();
    }
    recovered_once.reserve(foreground.damaged_keys().size());
  }

  // ---- Event loop. ----
  // Two event kinds suffice, so events are a flat POD instead of a
  // std::function whose captures would hit the heap on every push: a
  // planned/re-read completing on a disk, and a recovered chunk's spare
  // write persisting.
  struct Event {
    double t;
    std::uint64_t seq;
    enum class Kind : std::uint8_t {
      ReadDone,
      SpareWriteDone,
      ReadFailed,  ///< fault path: attempt budget exhausted / URE / dead disk
      DiskFail,    ///< fault path: whole-disk failure at t (disk = victim)
      AppArrival,  ///< foreground request arrival (key = trace index)
      ThrottledSubmit,  ///< throttle grant due: submit the reader's head read
      FlushTick,   ///< write path: periodic dirty write-back flush
    } kind;
    std::uint32_t disk;  ///< ReadDone/ReadFailed reader; SpareWriteDone target
    cache::Key key;
    bool operator>(const Event& o) const {
      return t > o.t || (t == o.t && seq > o.seq);
    }
  };
  // Readers fold onto 16 shards (the busy flag caps each disk at a
  // single in-flight read, so a shard holds at most ceil(disks/16)
  // events) plus a bulk shard for spare writes, disk failures, and app
  // arrivals; the
  // partition is order-irrelevant (event_queue.h), so the shard count is
  // purely a tournament-depth dial, sized so the shard map is a single
  // AND. Faultless runs issue exactly one spare write per planned task,
  // so the bulk reserve is exact; with faults active, replans mint extra
  // write events, bounded by the escalation arithmetic plus a slab for
  // URE/transient re-recoveries. The regrowth counter (asserted zero by
  // the fault tests) pins these bounds.
  constexpr std::size_t kReaderShardMask = 15;  // 16 shards
  constexpr std::size_t kBulkShard = kReaderShardMask + 1;
  ShardedEventQueue<Event> queue(kBulkShard + 1);
  const std::size_t bulk_shard = kBulkShard;
  for (std::size_t d = 0; d < readers.size(); ++d) {
    queue.reserve(d & kReaderShardMask, 1);
  }
  const bool flush_ticks_on =
      foreground.write_path_active() && config_.write.flush_interval_ms > 0.0;
  {
    std::size_t bulk_bound = tasks.size() + app_trace.size();
    if (fault_plan.has_value()) {
      const std::size_t failures = fault_plan->disk_failures().size();
      bulk_bound += failures;  // the DiskFail events themselves
      // Escalation: each failure re-targets at most one column of every
      // traced stripe.
      bulk_bound += failures * errors.size() *
                    static_cast<std::size_t>(layout_->rows());
      if (config_.faults.ure_rate > 0.0 ||
          config_.faults.transient_rate > 0.0) {
        bulk_bound += 1024;  // replan slab: re-recovered chunks
      }
    }
    if (flush_ticks_on) {
      bulk_bound += 1;  // at most one flush tick in flight
    }
    queue.reserve(bulk_shard, bulk_bound);
  }
  std::uint64_t seq = 0;
  double makespan = 0.0;
  std::size_t tasks_done = 0;
  std::vector<Member> missing_scratch;  // reused per completion attempt

  // Second half of kick_reader: consumes the reader's head read and
  // submits it at `submit_t` (the request time, or a later throttle
  // grant). Response time counts from `requested`, so the throttle wait is
  // visible in the rebuild latency metrics.
  auto submit_planned = [&](std::size_t d, double requested,
                            double submit_t) {
    Reader& r = readers[d];
    const PlannedRead read = r.queue[r.head++];
    double done;
    bool ok = true;
    if (injector.has_value()) {
      const FaultInjector::ReadOutcome rr = injector->read(
          disks[d], submit_t, read.lba, read.key, !read.spare);
      done = rr.done_ms;
      ok = rr.ok;
      metrics.disk_reads += static_cast<std::uint64_t>(rr.attempts);
    } else {
      done = disks[d].submit_read(submit_t, read.lba);
      ++metrics.disk_reads;
    }
    metrics.response_ms.add(done - requested + config_.cache_access_ms);
    metrics.response_reservoir.add(done - requested +
                                   config_.cache_access_ms);
    if (response_hist_ptr != nullptr) {
      response_hist_ptr->add(done - requested + config_.cache_access_ms);
    }
    if (obs::tracing(config_.observer, obs::TraceLevel::Fine)) {
      // Simulated ms rendered as trace us; stripe looked up only when the
      // span is actually emitted (the hash lookup is not free).
      obs::trace_span(config_.observer, obs::TraceLevel::Fine, obs::kPidDisks,
                      static_cast<std::uint32_t>(d), "disk_read", "disk",
                      submit_t * 1000.0, (done - submit_t) * 1000.0, "stripe",
                      info.at(read.key).stripe);
    }
    queue.push(d & kReaderShardMask,
               Event{done, seq++,
                     ok ? Event::Kind::ReadDone : Event::Kind::ReadFailed,
                     static_cast<std::uint32_t>(d), read.key});
  };

  auto kick_reader = [&](std::size_t d, double now) {
    Reader& r = readers[d];
    if (r.busy || r.idle_empty()) {
      return;
    }
    r.busy = true;
    if (throttle.has_value()) {
      // kick_reader is only ever invoked at the current event time, which
      // is non-decreasing as acquire() requires. A grant in the future
      // defers the actual submission to a ThrottledSubmit event rather
      // than future-dating it, which would reserve the FCFS disk ahead of
      // foreground requests arriving in the interim. A reader has at most
      // one in-flight event (ThrottledSubmit or ReadDone/ReadFailed), so
      // the shard reserve bounds are unchanged.
      const double grant = throttle->acquire(now);
      if (grant > now) {
        r.requested_at = now;
        queue.push(d & kReaderShardMask,
                   Event{grant, seq++, Event::Kind::ThrottledSubmit,
                         static_cast<std::uint32_t>(d), 0});
        return;
      }
    }
    submit_planned(d, now, now);
  };

  auto enqueue_reread = [&](cache::Key key, double now) {
    const ChunkInfo& ci = info.at(key);
    const bool spare = ci.lost;  // recovered chunks live in the spare area
    const auto d = static_cast<std::size_t>(
        spare ? (ci.spare_disk >= 0
                     ? ci.spare_disk
                     : geometry_->spare_disk_of(ci.stripe, ci.cell))
              : geometry_->disk_of(ci.stripe, ci.cell));
    const std::uint64_t lba = spare
                                  ? geometry_->spare_lba_of(ci.stripe, ci.cell)
                                  : geometry_->lba_of(ci.stripe, ci.cell);
    readers[d].queue.push_back(PlannedRead{key, lba, spare});
    kick_reader(d, now);
  };

  auto attempt_completion = [&](std::size_t t, double now, cache::Key fresh) {
    ChainTask& task = tasks[t];
    if (task.done) {
      return;
    }
    // Consume the freshly delivered member first: it is resident this
    // instant, so every completion wake-up folds at least one member into
    // the XOR accumulator. Without this ordering the loop can livelock —
    // with a buffer smaller than the chain, or an insertion-averse policy
    // (LFU keeps high-frequency keys over fresh freq-1 arrivals), each
    // miss below re-inserts its key and can evict the fresh member before
    // its turn, so a round consumes nothing and re-reads the same set
    // forever.
    const auto fresh_it = std::find_if(
        task.unconsumed.begin(), task.unconsumed.end(),
        [fresh](const Member& m) { return m.key == fresh; });
    if (fresh_it != task.unconsumed.end()) {
      std::rotate(task.unconsumed.begin(), fresh_it, fresh_it + 1);
    }
    // Consume members still buffered; re-read the evicted ones.
    missing_scratch.clear();
    for (const Member& m : task.unconsumed) {
      if (cache->request(m.key, m.priority)) {
        continue;  // consumed (folded into the XOR accumulator)
      }
      missing_scratch.push_back(m);
    }
    metrics.total_chunk_requests += task.unconsumed.size();
    task.unconsumed.assign(missing_scratch.begin(), missing_scratch.end());
    if (!task.unconsumed.empty()) {
      for (const Member& m : task.unconsumed) {
        task.awaiting.push_back(m.key);
      }
      for (const Member& m : task.unconsumed) {
        enqueue_reread(m.key, now);
      }
      return;
    }
    task.done = true;
    ++tasks_done;
    const double xor_done =
        now + config_.xor_ms_per_chunk * static_cast<double>(task.n_members);
    obs::trace_span(config_.observer, obs::TraceLevel::Fine, obs::kPidSim, 0,
                    "chain_fold", "xor", now * 1000.0, (xor_done - now) * 1000.0,
                    "stripe", task.stripe);
    // One write per recovered target (a Gauss task solves several in one
    // fold). The injector redirects spare writes around dead disks.
    auto write_target = [&](codes::Cell target) {
      const auto d = static_cast<std::size_t>(
          injector.has_value()
              ? injector->spare_disk(*geometry_, task.stripe, target, xor_done)
              : geometry_->spare_disk_of(task.stripe, target));
      if (injector.has_value() && validation_enabled()) {
        // spare_disk_of is deliberately fault-agnostic; the injector's
        // rerouting must keep recovery writes off dead disks.
        FBF_CHECK(!fault_plan->disk_failed(static_cast<int>(d), xor_done),
                  "spare write routed to a dead disk");
      }
      const double write_done = disks[d].submit_write(
          xor_done, geometry_->spare_lba_of(task.stripe, target));
      ++metrics.disk_writes;
      ++metrics.write.spare_writes;
      ++metrics.chunks_recovered;
      obs::trace_span(config_.observer, obs::TraceLevel::Phases,
                      obs::kPidDisks, static_cast<std::uint32_t>(d),
                      "spare_write", "disk", xor_done * 1000.0,
                      (write_done - xor_done) * 1000.0, "stripe", task.stripe);
      makespan = std::max(makespan, write_done);
      const cache::Key tkey = geometry_->chunk_key(task.stripe, target);
      info.at(tkey).write_pending = true;
      queue.push(bulk_shard,
                 Event{write_done, seq++, Event::Kind::SpareWriteDone,
                       static_cast<std::uint32_t>(d), tkey});
    };
    if (task.gauss_targets.empty()) {
      write_target(task.target);
    } else {
      for (const codes::Cell& target : task.gauss_targets) {
        write_target(target);
      }
    }
  };

  // Delivery of a chunk (from its home disk, the spare area, or a chain
  // completion): buffer it and wake exactly the tasks awaiting this key.
  auto deliver = [&](cache::Key key, double now) {
    ChunkInfo& ci = info.at(key);
    cache->install(key, ci.priority);
    for (std::uint32_t l = ci.waiters_head; l != kNoWaiter;) {
      // Copy the link before waking the task: a completion may append
      // waiter links (growing the arena) for a later key.
      const std::uint32_t t = waiter_links[l].task;
      l = waiter_links[l].next;
      ChainTask& task = tasks[t];
      if (task.done) {
        continue;
      }
      const auto it =
          std::find(task.awaiting.begin(), task.awaiting.end(), key);
      if (it == task.awaiting.end()) {
        continue;
      }
      *it = task.awaiting.back();
      task.awaiting.pop_back();
      if (task.awaiting.empty()) {
        attempt_completion(t, now, key);
      }
    }
  };

  // ---- Fault path: re-planning around mid-recovery losses. ----
  auto failed_disks_at = [&](double now) {
    std::vector<int> failed;
    if (fault_plan.has_value()) {
      for (const DiskFailure& f : fault_plan->disk_failures()) {
        if (f.at_ms <= now) {
          failed.push_back(f.disk);
        }
      }
    }
    return failed;
  };

  // Re-plans one stripe: abandons its unfinished chains and covers every
  // still-outstanding loss with a fresh peeling plan plus Gauss fallback.
  // Throws EscalationError when the lost set exceeds the erasure budget.
  auto replan_stripe = [&](std::uint64_t stripe, double now) {
    for (ChainTask& task : tasks) {
      if (task.stripe == stripe && !task.done) {
        task.done = true;  // superseded by the new plan
        ++tasks_done;
      }
    }
    std::vector<codes::Cell> outstanding;
    for (const auto& [key, ci] : info) {
      if (ci.stripe == stripe && ci.lost && !ci.recovered &&
          !ci.write_pending) {
        outstanding.push_back(ci.cell);
      }
    }
    std::sort(outstanding.begin(), outstanding.end());
    if (outstanding.empty()) {
      return;  // every loss has (or is about to have) a live spare copy
    }
    if (!codes::erasure_decodable(*layout_, outstanding)) {
      throw EscalationError(stripe, std::move(outstanding),
                            failed_disks_at(now));
    }
    const recovery::FaultScheme fs =
        recovery::generate_fault_scheme(*layout_, outstanding);
    ++metrics.schemes_generated;
    if (!fs.gauss_cells.empty()) {
      ++metrics.fault.gauss_fallbacks;
    }
    const std::size_t first_new = tasks.size();
    // Adds one task over `members`: losses still pending recovery are
    // awaited (their SpareWriteDone wakes us), buffered chunks are left
    // for consumption time, everything else is fetched — a late planned
    // read for the accounting laws.
    auto add_task = [&](ChainTask task,
                        const std::vector<codes::Cell>& members) {
      const std::size_t tindex = tasks.size();
      for (const codes::Cell& c : members) {
        const cache::Key key = geometry_->chunk_key(stripe, c);
        const auto cidx = static_cast<std::size_t>(layout_->cell_index(c));
        auto [it, fresh] = info.try_emplace(key);
        if (fresh) {
          it->second.stripe = stripe;
          it->second.cell = c;
          it->second.priority =
              std::max<std::uint8_t>(fs.scheme.priority[cidx], 1);
        }
        task.unconsumed.push_back(Member{key, it->second.priority});
        ++task.n_members;
        add_waiter(it->second, tindex);
        const ChunkInfo& ci = it->second;
        if (ci.lost && !ci.recovered) {
          task.awaiting.push_back(key);
        } else if (!cache->contains(key)) {
          task.awaiting.push_back(key);
          const bool spare = ci.lost;
          const auto d = static_cast<std::size_t>(
              spare ? (ci.spare_disk >= 0
                           ? ci.spare_disk
                           : geometry_->spare_disk_of(stripe, c))
                    : geometry_->disk_of(stripe, c));
          const std::uint64_t lba = spare
                                        ? geometry_->spare_lba_of(stripe, c)
                                        : geometry_->lba_of(stripe, c);
          readers[d].queue.push_back(PlannedRead{key, lba, spare});
          ++metrics.planned_disk_reads;
          kick_reader(d, now);
        }
      }
      auto register_target = [&](codes::Cell target) {
        const cache::Key tkey = geometry_->chunk_key(stripe, target);
        const auto tidx =
            static_cast<std::size_t>(layout_->cell_index(target));
        auto [it, fresh] = info.try_emplace(tkey);
        if (fresh) {
          it->second.stripe = stripe;
          it->second.cell = target;
          it->second.priority =
              std::max<std::uint8_t>(fs.scheme.priority[tidx], 1);
        }
        it->second.lost = true;
      };
      if (task.gauss_targets.empty()) {
        register_target(task.target);
      } else {
        for (const codes::Cell& t : task.gauss_targets) {
          register_target(t);
        }
      }
      tasks.push_back(std::move(task));
    };
    for (const recovery::RecoveryStep& step : fs.scheme.steps) {
      ChainTask task;
      task.stripe = stripe;
      task.target = step.target;
      task.chain_id = step.chain_id;
      const auto tidx =
          static_cast<std::size_t>(layout_->cell_index(step.target));
      task.target_priority =
          std::max<std::uint8_t>(fs.scheme.priority[tidx], 1);
      std::vector<codes::Cell> members;
      for (const codes::Cell& c : layout_->chain(step.chain_id).cells) {
        if (!(c == step.target)) {
          members.push_back(c);
        }
      }
      add_task(std::move(task), members);
    }
    if (!fs.gauss_cells.empty()) {
      // One multi-target task: the Gauss solve folds the distinct known
      // members of every involved chain and recovers all its cells.
      ChainTask task;
      task.stripe = stripe;
      task.gauss_targets = fs.gauss_cells;
      std::vector<bool> is_gauss(
          static_cast<std::size_t>(layout_->num_cells()), false);
      for (const codes::Cell& c : fs.gauss_cells) {
        is_gauss[static_cast<std::size_t>(layout_->cell_index(c))] = true;
      }
      std::vector<bool> seen(static_cast<std::size_t>(layout_->num_cells()),
                             false);
      std::vector<codes::Cell> members;
      for (int chain_id : fs.gauss_chains) {
        for (const codes::Cell& c : layout_->chain(chain_id).cells) {
          const auto idx = static_cast<std::size_t>(layout_->cell_index(c));
          if (is_gauss[idx] || seen[idx]) {
            continue;
          }
          seen[idx] = true;
          members.push_back(c);
        }
      }
      add_task(std::move(task), members);
    }
    for (std::size_t t = first_new; t < tasks.size(); ++t) {
      if (tasks[t].awaiting.empty() && !tasks[t].done) {
        attempt_completion(t, now,
                           tasks[t].unconsumed.empty()
                               ? 0
                               : tasks[t].unconsumed.front().key);
      }
    }
  };

  // A read hard-failed: the chunk (survivor or spare copy) is unreadable
  // and its stripe must be re-planned around the loss.
  auto hard_read_failure = [&](cache::Key key, double now) {
    ChunkInfo& ci = info.at(key);
    if (ci.lost && !ci.recovered) {
      return;  // already pending recovery: a stale queued read drained
    }
    ++metrics.fault.replans;
    ++metrics.fault.extra_lost_chunks;
    if (ci.lost) {
      ci.recovered = false;  // spare copy unreadable: recover again
      ci.spare_disk = -1;
    } else {
      ci.lost = true;  // surviving chunk unreadable: joins the lost set
    }
    replan_stripe(ci.stripe, now);
  };

  for (std::size_t d = 0; d < readers.size(); ++d) {
    kick_reader(d, 0.0);
  }
  if (fault_plan.has_value()) {
    for (const DiskFailure& f : fault_plan->disk_failures()) {
      queue.push(bulk_shard, Event{f.at_ms, seq++, Event::Kind::DiskFail,
                                   static_cast<std::uint32_t>(f.disk), 0});
    }
  }
  for (std::size_t i = 0; i < app_trace.size(); ++i) {
    queue.push(bulk_shard,
               Event{app_trace[i].arrival_ms, seq++, Event::Kind::AppArrival,
                     0, static_cast<cache::Key>(i)});
  }
  if (flush_ticks_on) {
    queue.push(bulk_shard, Event{config_.write.flush_interval_ms, seq++,
                                 Event::Kind::FlushTick, 0, 0});
  }
  double last_event_ms = 0.0;
  while (!queue.empty()) {
    const Event ev = queue.pop();
    ++metrics.engine_events;
    last_event_ms = std::max(last_event_ms, ev.t);
    if (ev.kind != Event::Kind::DiskFail &&
        ev.kind != Event::Kind::AppArrival &&
        ev.kind != Event::Kind::FlushTick) {
      // A failure, an app arrival, or a flush tick alone does not extend
      // reconstruction; only the rebuild work it triggers does.
      makespan = std::max(makespan, ev.t);
    }
    switch (ev.kind) {
      case Event::Kind::ReadDone:
        deliver(ev.key, ev.t);
        readers[ev.disk].busy = false;
        kick_reader(ev.disk, ev.t);
        break;
      case Event::Kind::SpareWriteDone: {
        // The recovered chunk becomes available: buffer it and wake
        // chains that were waiting on the lost cell.
        ChunkInfo& ci = info.at(ev.key);
        ci.write_pending = false;
        if (fault_plan.has_value() &&
            fault_plan->disk_failed(static_cast<int>(ev.disk), ev.t)) {
          // The write was in flight when its target disk died: the copy
          // never became durable. Recover the chunk again; waiters are
          // superseded by the replan, so nothing is delivered.
          ++metrics.fault.respared;
          ++metrics.fault.extra_lost_chunks;
          ci.recovered = false;
          ci.spare_disk = -1;
          const std::uint64_t stripe = ci.stripe;  // replan may grow info
          replan_stripe(stripe, ev.t);
          break;
        }
        ci.recovered = true;
        ci.spare_disk = static_cast<int>(ev.disk);
        // Copy the stripe before deliver(): a woken completion can replan
        // and grow `info`, invalidating `ci`.
        const std::uint64_t stripe = ci.stripe;
        deliver(ev.key, ev.t);
        if (!app_trace.empty() &&
            foreground.damaged_keys().count(ev.key) > 0 &&
            recovered_once.insert(ev.key).second) {
          const auto out = stripe_outstanding.find(stripe);
          if (out != stripe_outstanding.end() && --out->second == 0) {
            foreground.on_stripe_recovered(stripe, ev.t);
          }
        }
        break;
      }
      case Event::Kind::ReadFailed:
        // Free the reader first: the replan may enqueue onto this disk.
        readers[ev.disk].busy = false;
        kick_reader(ev.disk, ev.t);
        hard_read_failure(ev.key, ev.t);
        break;
      case Event::Kind::DiskFail: {
        ++metrics.fault.disk_failures;
        const int failed = static_cast<int>(ev.disk);
        foreground.on_disk_failed(failed, ev.t);
        // Deterministic spare invalidation (DESIGN.md §11's former gap):
        // every spare copy on the failed disk dies with it — whatever
        // column its home was — not just the failed column's cells.
        // Counter sums commute, so the map's iteration order does not
        // leak into the metrics; replans run in trace order below.
        std::unordered_set<std::uint64_t> respare_stripes;
        for (auto& [key, ci] : info) {
          if (!ci.recovered ||
              (ci.spare_disk >= 0
                   ? ci.spare_disk
                   : geometry_->spare_disk_of(ci.stripe, ci.cell)) !=
                  failed) {
            continue;
          }
          ci.recovered = false;  // spare copy died with the disk
          ci.spare_disk = -1;
          ++metrics.fault.respared;
          ++metrics.fault.extra_lost_chunks;
          respare_stripes.insert(ci.stripe);
        }
        // Escalation: every traced stripe with a column on the failed
        // disk gains that column as fresh losses (minus live spares) and
        // is re-planned while the erasure budget permits. Stripes touched
        // only through dead spare copies (no data column on the failed
        // disk — possible once the pool is wider than a stripe) replan as
        // an escalation pass too.
        for (const workload::StripeError& traced : errors) {
          int col = -1;
          for (int c = 0; c < layout_->cols(); ++c) {
            if (geometry_->disk_of(traced.stripe,
                                   codes::Cell{0, static_cast<std::int16_t>(
                                                      c)}) == failed) {
              col = c;
              break;
            }
          }
          if (col < 0 && respare_stripes.count(traced.stripe) == 0) {
            continue;  // the failed disk holds nothing of this stripe
          }
          ++metrics.fault.escalated_stripes;
          for (int r = 0; col >= 0 && r < layout_->rows(); ++r) {
            const codes::Cell cell{static_cast<std::int16_t>(r),
                                   static_cast<std::int16_t>(col)};
            const cache::Key key = geometry_->chunk_key(traced.stripe, cell);
            auto [it, fresh] = info.try_emplace(key);
            ChunkInfo& ci = it->second;
            if (fresh) {
              ci.stripe = traced.stripe;
              ci.cell = cell;
              ci.priority = 1;
            }
            if (!ci.lost) {
              ci.lost = true;  // original copy was homed on the dead disk
              ++metrics.fault.extra_lost_chunks;
            }
          }
          replan_stripe(traced.stripe, ev.t);
        }
        break;
      }
      case Event::Kind::AppArrival:
        foreground.on_arrival(static_cast<std::size_t>(ev.key), ev.t);
        break;
      case Event::Kind::ThrottledSubmit:
        submit_planned(ev.disk, readers[ev.disk].requested_at, ev.t);
        break;
      case Event::Kind::FlushTick:
        foreground.on_flush_tick(ev.t);
        // Re-arm while other events remain; a tick never keeps itself
        // alive.
        if (!queue.empty()) {
          queue.push(bulk_shard,
                     Event{ev.t + config_.write.flush_interval_ms, seq++,
                           Event::Kind::FlushTick, 0, 0});
        }
        break;
    }
  }
  FBF_CHECK(tasks_done == tasks.size(),
            "DOR finished with incomplete chains — dependency deadlock");
  metrics.event_queue_regrowths = queue.regrowths();
  foreground.finalize(last_event_ms);
  foreground.assert_drained();

  metrics.reconstruction_ms = makespan;
  // Escalation passes count like SOR's synthetic stripe entries so the
  // validation law stripes == errors + escalations holds in both engines.
  metrics.stripes_recovered =
      errors.size() + metrics.fault.escalated_stripes;
  metrics.cache = cache->stats();
  for (const Disk& d : disks) {
    metrics.disk_busy_ms.push_back(d.stats().busy_ms);
    metrics.disk_ops.push_back(d.stats().reads + d.stats().writes);
  }
  if (validation_enabled()) {
    validate_run(metrics, errors);
  }
  record_run(config_.observer, config_.obs_label, metrics, response_hist_ptr);
  return metrics;
}

// ---------------------------------------------------------------------------
// Coalesced fast path (DESIGN §14). Byte-identical to run_legacy by
// construction: it performs the same disk submissions, cache operations,
// and metric updates in the same order, and only elides heap traffic for
// events that are provably the next to pop. ci/tier1.sh and the
// DorCoalescing tests diff the two paths' CSVs and metrics.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint32_t kNoId = 0xffffffffu;

/// Growable open-addressing chunk-key → dense-id map. Insert-only (DOR
/// never forgets a chunk), so probing needs no tombstones; `kNoId` in the
/// id field marks an empty slot, which keeps key 0 usable (chunk keys
/// start at 0). Key and id share one 16-byte slot so a probe against the
/// table — always a cold miss at storm-scale id spaces — costs one cache
/// line, not two. Same splitmix64 finalizer as cache::core::KeyIndexTable
/// — that table is fixed-capacity by design and fault replans mint chunks
/// unboundedly, hence the local growable twin.
class KeyIdMap {
 public:
  explicit KeyIdMap(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < expected * 2) {
      cap <<= 1;
    }
    // Advise before assign: the fill below is the first touch, so the
    // whole slot array faults in as huge pages (tens of MB probed
    // randomly — 4 KiB paging would make every probe a TLB walk too).
    slots_.reserve(cap);
    util::advise_hugepages(slots_.data(), cap * sizeof(Slot));
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
  }

  std::uint32_t find(cache::Key key) const {
    for (std::size_t s = slot(key);; s = (s + 1) & mask_) {
      if (slots_[s].id == kNoId) {
        return kNoId;
      }
      if (slots_[s].key == key) {
        return slots_[s].id;
      }
    }
  }

  /// Prefetch hint for an imminent find/find_or_insert of `key`: the
  /// table spans tens of megabytes at sweep scale, so every probe is a
  /// DRAM miss unless issued ahead of use.
  void prefetch(cache::Key key) const {
    __builtin_prefetch(slots_.data() + slot(key));
  }

  /// Existing id for `key`, or inserts `id` and reports fresh.
  std::pair<std::uint32_t, bool> find_or_insert(cache::Key key,
                                                std::uint32_t id) {
    for (std::size_t s = slot(key);; s = (s + 1) & mask_) {
      if (slots_[s].id == kNoId) {
        slots_[s].key = key;
        slots_[s].id = id;
        if (++size_ * 2 >= slots_.size()) {
          grow();
        }
        return {id, true};
      }
      if (slots_[s].key == key) {
        return {slots_[s].id, false};
      }
    }
  }

 private:
  struct Slot {
    cache::Key key = 0;
    std::uint32_t id = kNoId;
  };

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }
  std::size_t slot(cache::Key key) const {
    return static_cast<std::size_t>(mix(key)) & mask_;
  }
  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.reserve(old.size() * 2);
    util::advise_hugepages(slots_.data(), old.size() * 2 * sizeof(Slot));
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    for (const Slot& o : old) {
      if (o.id == kNoId) {
        continue;
      }
      std::size_t d = slot(o.key);
      while (slots_[d].id != kNoId) {
        d = (d + 1) & mask_;
      }
      slots_[d] = o;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Chain member in the shared arena: key + dense chunk id + the member's
/// fixed position inside its task (the awaiting-bitset bit it owns).
struct FMember {
  cache::Key key = 0;
  std::uint32_t id = 0;
  std::uint16_t pos = 0;
  std::uint8_t priority = 1;
};

/// ChainTask, flattened: members live in a shared arena (the unconsumed
/// set shrinks in place, so a [mem_off, mem_off+mem_len) window replaces
/// the per-task vector) and the awaiting set is packed-u64 words in a
/// shared arena (the SOR Worker::recovered idiom), indexed by member
/// position, with a live count so "awaiting empty" is one compare. The
/// whole record fits one cache line and is aligned to it, so a delivery
/// wake-up — a random probe into a multi-hundred-MB task array — costs
/// exactly one memory access.
struct alignas(64) FTask {
  std::uint64_t stripe = 0;
  /// Awaiting bitset for tasks of <= 64 members — every non-Gauss chain
  /// at practical p. Keeping the word inside the task means a delivery
  /// wake-up clears its bit with no second dependent cache miss into
  /// await_arena; multi-word (Gauss) tasks fall back to the arena.
  std::uint64_t await0 = 0;
  std::uint32_t mem_off = 0;
  std::uint32_t mem_len = 0;
  std::uint32_t await_off = 0;
  std::uint32_t await_words = 0;
  std::uint32_t awaiting_count = 0;
  codes::Cell target;
  /// Dense chunk id of `target`, recorded at registration so the spare
  /// write never probes the key map (left unbuilt on fault-free runs).
  /// Gauss tasks (fault path only) keep per-target ids via the map.
  std::uint32_t target_id = kNoId;
  std::int16_t chain_id = -1;
  std::uint16_t n_members = 0;
  std::uint8_t target_priority = 1;
  bool done = false;
  /// Gauss targets as a [gauss_off, gauss_off+gauss_len) window into a
  /// shared arena (fault path only; empty for normal chains). A vector
  /// here would push the task past one cache line for a field the hot
  /// loop never reads.
  std::uint32_t gauss_off = 0;
  std::uint32_t gauss_len = 0;
};
static_assert(sizeof(FTask) == 64, "FTask must stay one cache line");

/// Waiter link, extended with the waiting member's position so delivery
/// clears the awaiting bit in O(1) instead of scanning a key list.
struct FWaiterLink {
  std::uint32_t task = 0;
  std::uint32_t next = kNoWaiter;
  std::uint16_t member_pos = 0;
};

// Aligned so the per-event probe (again a random access into an array
// far larger than LLC) never straddles two lines.
struct alignas(64) FChunkInfo {
  cache::Key key = 0;  ///< events and waiters carry ids; the key lives here
  std::uint64_t stripe = 0;
  /// First waiter, stored inline: most chunks serve exactly one chain, so
  /// the common delivery never touches the waiter_links arena at all —
  /// the wake-up reads this line (already loaded for `key`) and jumps
  /// straight to the task. Registration order is preserved: the inline
  /// slot is strictly the first waiter, links hold the rest in order.
  std::uint32_t w0_task = kNoWaiter;
  std::uint16_t w0_pos = 0;
  std::uint32_t waiters_head = kNoWaiter;
  std::uint32_t waiters_tail = kNoWaiter;
  /// Home placement, cached at registration: re-reads resolve disk and
  /// LBA from this line instead of re-deriving both from (stripe, cell)
  /// on every storm round.
  std::uint64_t lba = 0;
  std::int32_t home_disk = -1;
  codes::Cell cell;
  int spare_disk = -1;
  std::uint8_t priority = 1;
  bool lost = false;
  bool recovered = false;
  bool write_pending = false;
  /// Replaces run_legacy's recovered_once set (app path): first spare
  /// persistence decrements the stripe's outstanding-loss count.
  bool recovered_once = false;
};
static_assert(sizeof(FChunkInfo) == 64, "FChunkInfo must stay one cache line");

struct FPlannedRead {
  cache::Key key = 0;
  std::uint64_t lba = 0;
  std::uint32_t id = 0;
  bool spare = false;
};

struct FReader {
  std::vector<FPlannedRead> queue;
  std::size_t head = 0;
  bool busy = false;
  double requested_at = 0.0;

  bool idle_empty() const { return head >= queue.size(); }

  /// Pops the head read, reclaiming the consumed prefix: the legacy
  /// reader never did, so a re-read storm (working set ≫ buffer) grew
  /// every queue by ~16 B per re-read for the whole run — gigabytes of
  /// dead prefix at p=17. Amortized O(1): a full drain resets for free,
  /// and the sliding compaction only runs once the live tail is smaller
  /// than the spent prefix.
  FPlannedRead take() {
    const FPlannedRead read = queue[head++];
    if (head >= queue.size()) {
      queue.clear();
      head = 0;
    } else if (head >= 1024 && head * 2 >= queue.size()) {
      queue.erase(queue.begin(),
                  queue.begin() + static_cast<std::ptrdiff_t>(head));
      head = 0;
    }
    return read;
  }
};

/// verify_data mode: ground truth and in-progress bytes for one stripe
/// (mirrors SOR's Worker::truth/working, same per-stripe seed).
struct FVerifyState {
  std::unique_ptr<codes::StripeData> truth;
  std::unique_ptr<codes::StripeData> working;
};

}  // namespace

SimMetrics DorEngine::run_fast(
    const std::vector<workload::StripeError>& errors,
    const std::vector<workload::AppRequest>& app_trace) {
  SimMetrics metrics;
  obs::Histogram response_hist;
  obs::Histogram* response_hist_ptr =
      config_.observer != nullptr ? &response_hist : nullptr;

  std::optional<FaultPlan> fault_plan;
  std::optional<FaultInjector> injector;
  if (config_.faults.enabled()) {
    fault_plan.emplace(config_.faults, config_.seed, config_.obs_label,
                       geometry_->num_disks());
    injector.emplace(*fault_plan, metrics.fault);
  }

  DiskParams dp = config_.disk;
  dp.chunk_bytes = config_.chunk_bytes;
  dp.capacity_chunks = geometry_->disk_capacity_chunks();
  std::vector<Disk> disks;
  disks.reserve(static_cast<std::size_t>(geometry_->num_disks()));
  for (int d = 0; d < geometry_->num_disks(); ++d) {
    DiskParams per_disk = dp;
    if (fault_plan.has_value()) {
      per_disk.service_multiplier = fault_plan->service_multiplier(d);
    }
    disks.emplace_back(d, per_disk,
                       config_.seed * 0x9e3779b97f4a7c15ull +
                           static_cast<std::uint64_t>(d));
  }
  const auto cache =
      cache::make_policy(config_.policy, config_.cache_capacity_chunks());

  // ---- Plan: schemes, chain tasks, per-disk read queues. ----
  // Same pre-pass and fill order as run_legacy; the containers differ.
  // Chunks get dense u32 ids on first sight (KeyIdMap resolves keys), so
  // the hot loop indexes a flat vector instead of hashing into an
  // unordered_map on every event, waiter wake, and re-read.
  recovery::SchemeCache scheme_cache(*layout_);
  std::optional<obs::PhaseTimer> plan_timer;
  if (config_.observer != nullptr) {
    plan_timer.emplace(config_.observer, "dor_plan");
  }

  std::vector<std::shared_ptr<const recovery::RecoveryScheme>> schemes;
  schemes.reserve(errors.size());
  std::size_t total_steps = 0;
  std::size_t total_refs = 0;
  for (const workload::StripeError& err : errors) {
    const auto before = scheme_cache.misses();
    schemes.push_back(scheme_cache.get(err.error, config_.scheme));
    if (scheme_cache.misses() > before) {
      ++metrics.schemes_generated;
    } else {
      ++metrics.scheme_cache_hits;
    }
    total_steps += schemes.back()->steps.size();
    for (const recovery::RecoveryStep& step : schemes.back()->steps) {
      total_refs += layout_->chain(step.chain_id).cells.size() - 1;
    }
  }

  std::vector<FTask> tasks;
  std::vector<FChunkInfo> chunks;
  std::vector<FMember> member_arena;
  std::vector<std::uint64_t> await_arena;
  std::vector<codes::Cell> gauss_arena;
  std::vector<FWaiterLink> waiter_links;
  std::vector<FReader> readers(disks.size());
  tasks.reserve(total_steps);
  chunks.reserve(total_refs + total_steps);
  member_arena.reserve(total_refs);
  await_arena.reserve(total_steps * 2);
  waiter_links.reserve(total_refs);
  // Every event indexes these arenas at a random offset; at sweep scale
  // they span far more 4 KiB pages than the TLB holds, so advise huge
  // pages now, before planning faults them in.
  util::advise_hugepages(tasks.data(), tasks.capacity() * sizeof(FTask));
  util::advise_hugepages(chunks.data(),
                         chunks.capacity() * sizeof(FChunkInfo));
  util::advise_hugepages(member_arena.data(),
                         member_arena.capacity() * sizeof(FMember));
  util::advise_hugepages(waiter_links.data(),
                         waiter_links.capacity() * sizeof(FWaiterLink));

  // Spare-region LBA from the cached (home_disk, lba) pair:
  // spare_lba_of(s, c) == spare_lba(info-of(s, c)). FChunkInfo caches both
  // inputs, so no (stripe, cell) -> address recomputation in the hot loop.
  auto spare_lba = [this](const FChunkInfo& ci) {
    return geometry_->spare_lba_from(ci.home_disk, ci.lba);
  };

  // Global key -> dense id map, built LAZILY. Planning dedups chunks with
  // a per-stripe cell table (chains only ever share cells inside their
  // own stripe), and fault-free runs carry every id they need on the task
  // and chunk records — so the common path never pays for a table that
  // spans tens of megabytes and eats one random DRAM write per chunk.
  // The fault and foreground paths, which genuinely resolve arbitrary
  // keys mid-run, build it once from the chunk arena on first use.
  KeyIdMap key_map(0);
  bool key_map_built = false;
  auto ensure_key_map = [&] {
    if (key_map_built) {
      return;
    }
    key_map_built = true;
    key_map = KeyIdMap(chunks.size() + 1);
    for (std::size_t id = 0; id < chunks.size(); ++id) {
      key_map.find_or_insert(chunks[id].key, static_cast<std::uint32_t>(id));
    }
  };

  /// Dense id for `key`, registering a blank FChunkInfo on first sight.
  /// (stripe, cell) are recovered from the key (chunk_key is a dense
  /// packing) and the home placement is cached on the chunk line, so the
  /// per-round re-read path never re-derives disk or LBA. Fault paths
  /// only — callers must run ensure_key_map() first.
  auto chunk_id_or_new = [&](cache::Key key) -> std::pair<std::uint32_t, bool> {
    const auto [id, fresh] =
        key_map.find_or_insert(key, static_cast<std::uint32_t>(chunks.size()));
    if (fresh) {
      chunks.emplace_back();
      FChunkInfo& ci = chunks.back();
      ci.key = key;
      const auto cells = static_cast<std::uint64_t>(layout_->num_cells());
      ci.stripe = key / cells;
      ci.cell = layout_->cell_at(static_cast<int>(key % cells));
      ci.lba = geometry_->lba_of(ci.stripe, ci.cell);
      ci.home_disk = geometry_->disk_of(ci.stripe, ci.cell);
    }
    return {id, fresh};
  };

  // Planning-time chunk registration: a dense cell -> id table for the
  // stripe in hand (reset on stripe change, L1-resident) replaces the
  // global hash probe. Revisited stripes — legal in a caller-supplied
  // trace — replay their previously minted id ranges into the table, so
  // ids stay identical to what the global map would have returned.
  std::vector<std::uint32_t> stripe_ids(
      static_cast<std::size_t>(layout_->num_cells()), kNoId);
  std::uint64_t ids_stripe = ~std::uint64_t{0};
  std::unordered_map<std::uint64_t,
                     std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      stripe_ranges;
  auto plan_stripe_begin = [&](std::uint64_t stripe) {
    if (stripe == ids_stripe) {
      return;  // adjacent repeat: table already describes this stripe
    }
    std::fill(stripe_ids.begin(), stripe_ids.end(), kNoId);
    ids_stripe = stripe;
    const auto it = stripe_ranges.find(stripe);
    if (it != stripe_ranges.end()) {
      for (const auto& [s, e] : it->second) {
        for (std::uint32_t id = s; id < e; ++id) {
          stripe_ids[static_cast<std::size_t>(
              layout_->cell_index(chunks[id].cell))] = id;
        }
      }
    }
  };
  auto plan_chunk = [&](std::uint64_t stripe, codes::Cell c,
                        std::size_t cidx) -> std::pair<std::uint32_t, bool> {
    std::uint32_t id = stripe_ids[cidx];
    if (id != kNoId) {
      return {id, false};
    }
    id = static_cast<std::uint32_t>(chunks.size());
    stripe_ids[cidx] = id;
    chunks.emplace_back();
    FChunkInfo& ci = chunks.back();
    ci.key = geometry_->chunk_key(stripe, c);
    ci.stripe = stripe;
    ci.cell = c;
    ci.lba = geometry_->lba_of(stripe, c);
    ci.home_disk = geometry_->disk_of(stripe, c);
    return {id, true};
  };

  auto add_waiter = [&waiter_links](FChunkInfo& ci, std::size_t t,
                                    std::uint16_t pos) {
    if (ci.w0_task == kNoWaiter && ci.waiters_head == kNoWaiter) {
      ci.w0_task = static_cast<std::uint32_t>(t);
      ci.w0_pos = pos;
      return;
    }
    const auto link = static_cast<std::uint32_t>(waiter_links.size());
    waiter_links.push_back(
        FWaiterLink{static_cast<std::uint32_t>(t), kNoWaiter, pos});
    if (ci.waiters_head == kNoWaiter) {
      ci.waiters_head = link;
    } else {
      waiter_links[ci.waiters_tail].next = link;
    }
    ci.waiters_tail = link;
  };

  /// The awaiting-bitset word owning member position `pos` (see
  /// FTask::await0 — single-word tasks keep it inline).
  auto await_word = [&await_arena](FTask& task,
                                   std::uint32_t pos) -> std::uint64_t& {
    return task.await_words <= 1 ? task.await0
                                 : await_arena[task.await_off + (pos >> 6)];
  };

  // verify_data: per-stripe truth/working bytes (seeded exactly like
  // SOR's verify mode so the two engines verify the same stripe images).
  const bool verify_on = config_.verify_data;
  std::unordered_map<std::uint64_t, FVerifyState> verify_states;
  codes::FoldBatch verify_batch;
  struct PendingVerify {
    std::uint64_t stripe;
    codes::Cell cell;
  };
  std::vector<PendingVerify> pending_verifies;
  if (verify_on) {
    verify_states.reserve(errors.size());
  }

  std::vector<bool> lost;  // hoisted: reused across stripes, one allocation
  for (std::size_t e = 0; e < errors.size(); ++e) {
    const workload::StripeError& err = errors[e];
    const recovery::RecoveryScheme& scheme = *schemes[e];
    plan_stripe_begin(err.stripe);
    const auto range_start = static_cast<std::uint32_t>(chunks.size());
    lost.assign(static_cast<std::size_t>(layout_->num_cells()), false);
    for (const codes::Cell& c : err.error.cells()) {
      lost[static_cast<std::size_t>(layout_->cell_index(c))] = true;
    }
    if (verify_on) {
      auto [vit, vfresh] = verify_states.try_emplace(err.stripe);
      if (vfresh) {
        util::Rng rng(0x5eedull ^ err.stripe);
        vit->second.truth = std::make_unique<codes::StripeData>(
            *layout_, config_.verify_chunk_bytes);
        vit->second.truth->fill_random(rng);
        codes::encode(*vit->second.truth);
        vit->second.working =
            std::make_unique<codes::StripeData>(*vit->second.truth);
      }
      for (const codes::Cell& c : err.error.cells()) {
        vit->second.working->erase(c);
      }
    }
    for (const recovery::RecoveryStep& step : scheme.steps) {
      FTask task;
      task.stripe = err.stripe;
      task.target = step.target;
      task.chain_id = static_cast<std::int16_t>(step.chain_id);
      const auto tidx =
          static_cast<std::size_t>(layout_->cell_index(step.target));
      task.target_priority =
          std::max<std::uint8_t>(scheme.priority[tidx], 1);
      const auto& cells = layout_->chain(step.chain_id).cells;
      task.mem_off = static_cast<std::uint32_t>(member_arena.size());
      task.await_words =
          static_cast<std::uint32_t>((cells.size() - 1 + 63) / 64);
      if (task.await_words > 1) {
        task.await_off = static_cast<std::uint32_t>(await_arena.size());
        await_arena.insert(await_arena.end(), task.await_words, 0);
      }
      std::uint16_t pos = 0;
      for (const codes::Cell& c : cells) {
        if (c == step.target) {
          continue;
        }
        const cache::Key key = geometry_->chunk_key(err.stripe, c);
        const auto cidx = static_cast<std::size_t>(layout_->cell_index(c));
        const auto [id, fresh] = plan_chunk(err.stripe, c, cidx);
        FChunkInfo& ci = chunks[id];
        if (fresh) {  // stripe/cell/placement cached by plan_chunk
          ci.priority = std::max<std::uint8_t>(scheme.priority[cidx], 1);
          ci.lost = lost[cidx];
          if (!ci.lost) {
            readers[static_cast<std::size_t>(ci.home_disk)].queue.push_back(
                FPlannedRead{key, ci.lba, id, false});
          }
        }
        member_arena.push_back(FMember{key, id, pos, ci.priority});
        await_word(task, pos) |= std::uint64_t{1} << (pos & 63);
        add_waiter(ci, tasks.size(), pos);
        ++pos;
      }
      task.mem_len = pos;
      task.n_members = pos;
      task.awaiting_count = pos;
      const auto [tid, tfresh] = plan_chunk(err.stripe, step.target, tidx);
      task.target_id = tid;
      if (tfresh) {
        FChunkInfo& ci = chunks[tid];
        ci.priority = task.target_priority;
        ci.lost = true;
      }
      tasks.push_back(std::move(task));
    }
    if (chunks.size() > range_start) {
      stripe_ranges[err.stripe].push_back(
          {range_start, static_cast<std::uint32_t>(chunks.size())});
    }
  }
  for (FReader& r : readers) {  // LBA order: sequential streaming per disk
    std::sort(r.queue.begin(), r.queue.end(),
              [](const FPlannedRead& a, const FPlannedRead& b) {
                return a.lba < b.lba;
              });
    metrics.planned_disk_reads += r.queue.size();
  }
  plan_timer.reset();  // planning phase ends here

  // ---- Foreground traffic (same wiring as run_legacy). ----
  std::optional<FaultInjector> app_injector;
  if (fault_plan.has_value() && !app_trace.empty()) {
    app_injector.emplace(*fault_plan, metrics.app_fault);
  }
  if (!app_trace.empty()) {
    // Foreground reads probe arbitrary keys, so they need the global map;
    // pure-recovery runs (the common benchmark shape) never build it.
    ensure_key_map();
  }
  ForegroundServer foreground(
      *layout_, *geometry_, disks, errors, app_trace, metrics,
      app_injector.has_value() ? &*app_injector : nullptr,
      [&key_map, &chunks](std::uint64_t key) {
        const std::uint32_t id = key_map.find(key);
        return id != kNoId ? chunks[id].spare_disk : -1;
      },
      config_.write);
  std::optional<RebuildThrottle> throttle;
  if (config_.throttle.enabled()) {
    throttle.emplace(config_.throttle);
  }
  std::unordered_map<std::uint64_t, std::size_t> stripe_outstanding;
  if (!app_trace.empty()) {
    for (const workload::StripeError& e : errors) {
      stripe_outstanding[e.stripe] += e.error.cells().size();
    }
  }

  // ---- Event loop. ----
  // Same kinds and shard layout as run_legacy; events carry the dense
  // chunk id instead of the key (AppArrival reuses the id lane for its
  // trace index). The service-cursor state below is what elides heap
  // traffic: while a disk's just-submitted read is provably the globally
  // next event, the loop carries it straight into the next iteration.
  struct Event {
    double t;
    std::uint64_t seq;
    enum class Kind : std::uint8_t {
      ReadDone,
      SpareWriteDone,
      ReadFailed,
      DiskFail,
      AppArrival,
      ThrottledSubmit,
      FlushTick,
    } kind;
    std::uint32_t disk;
    std::uint32_t id;
    bool operator>(const Event& o) const {
      return t > o.t || (t == o.t && seq > o.seq);
    }
  };
  constexpr std::size_t kReaderShardMask = 15;  // 16 shards
  constexpr std::size_t kBulkShard = kReaderShardMask + 1;
  ShardedEventQueue<Event> queue(kBulkShard + 1);
  const std::size_t bulk_shard = kBulkShard;
  // Reader shards carry in-flight reads: at most one per disk. The bulk
  // shard holds spare-write completions (one per task when fault-free;
  // replans mint extras, bounded by the escalation arithmetic plus a slab
  // for URE/transient re-recoveries), DiskFail, and AppArrival events.
  // The regrowth counter (asserted zero by the fault tests) pins these
  // bounds.
  for (std::size_t d = 0; d < readers.size(); ++d) {
    queue.reserve(d & kReaderShardMask, 1);
  }
  const bool flush_ticks_on =
      foreground.write_path_active() && config_.write.flush_interval_ms > 0.0;
  {
    std::size_t bulk_bound = tasks.size() + app_trace.size();
    if (fault_plan.has_value()) {
      const std::size_t failures = fault_plan->disk_failures().size();
      bulk_bound += failures;  // the DiskFail events themselves
      // Escalation: each failure re-targets at most one column of every
      // traced stripe.
      bulk_bound += failures * errors.size() *
                    static_cast<std::size_t>(layout_->rows());
      if (config_.faults.ure_rate > 0.0 ||
          config_.faults.transient_rate > 0.0) {
        bulk_bound += 1024;  // replan slab: re-recovered chunks
      }
    }
    if (flush_ticks_on) {
      bulk_bound += 1;  // at most one FlushTick is pending at a time
    }
    queue.reserve(bulk_shard, bulk_bound);
  }
  std::uint64_t seq = 0;
  double makespan = 0.0;
  std::size_t tasks_done = 0;

  // Service-cursor state. inline_disk is the disk whose ReadDone (or
  // ThrottledSubmit) the loop is currently processing: the one submission
  // that disk makes before control returns to the loop is captured here
  // instead of pushed, and the loop tail either carries it into the next
  // iteration (when nothing queued is due sooner — strictly: an equal
  // timestamp in the queue holds an earlier seq and must pop first) or
  // pushes it with the seq it would have been assigned anyway. Elided
  // events never consume a seq; pushed events keep their relative seq
  // order, so the pop sequence — and every downstream byte — matches the
  // legacy loop.
  std::int64_t inline_disk = -1;
  bool have_inline = false;
  Event inline_ev{};

  // Batched cache admission. Deliveries append here; the batch flushes
  // through install_batch (≡ sequential installs) immediately before the
  // next cache read — a completion's touch_batch, a replan's contains()
  // probe, or the final stats export — so the cache passes through the
  // exact same state sequence at every observation point.
  std::vector<cache::Key> pend_install_keys;
  std::vector<std::uint8_t> pend_install_pris;
  auto flush_installs = [&] {
    if (!pend_install_keys.empty()) {
      cache->install_batch(pend_install_keys.data(), pend_install_pris.data(),
                           pend_install_keys.size());
      pend_install_keys.clear();
      pend_install_pris.clear();
    }
  };

  // touch_batch scratch (completion attempts).
  std::vector<cache::Key> touch_keys;
  std::vector<std::uint8_t> touch_pris;
  std::vector<std::uint64_t> touch_hits;

  // verify_data scratch.
  std::vector<std::span<const std::byte>> fold_srcs;
  auto flush_verifies = [&] {
    if (pending_verifies.empty()) {
      return;
    }
    verify_batch.flush();
    for (const PendingVerify& pv : pending_verifies) {
      const FVerifyState& vs = verify_states.at(pv.stripe);
      const auto out = vs.working->chunk(pv.cell);
      const auto expected = vs.truth->chunk(pv.cell);
      FBF_CHECK(std::equal(out.begin(), out.end(), expected.begin()),
                "recovered chunk " + codes::to_string(pv.cell) +
                    " does not match the original in stripe " +
                    std::to_string(pv.stripe));
    }
    pending_verifies.clear();
  };
  /// Queues the XOR fold that rebuilds `task.target` from its chain; the
  /// batch's dependency barriers keep cross-chain order, so one service
  /// run's completions dispatch as a single xor_fold_batch call.
  auto queue_chain_fold = [&](const FTask& task) {
    FVerifyState& vs = verify_states.at(task.stripe);
    const codes::Chain& chain = layout_->chain(task.chain_id);
    fold_srcs.clear();
    for (const codes::Cell& c : chain.cells) {
      if (!(c == task.target)) {
        fold_srcs.push_back(vs.working->chunk(c));
      }
    }
    verify_batch.add(vs.working->chunk(task.target), fold_srcs);
    pending_verifies.push_back(PendingVerify{task.stripe, task.target});
  };
  /// Gauss tasks bypass the fold batch: the solve reads the whole stripe,
  /// so pending folds flush first, then the targets are checked directly.
  auto verify_gauss_task = [&](const FTask& task) {
    flush_verifies();
    FVerifyState& vs = verify_states.at(task.stripe);
    const std::vector<codes::Cell> targets(
        gauss_arena.begin() + task.gauss_off,
        gauss_arena.begin() + task.gauss_off + task.gauss_len);
    const codes::DecodeResult res = codes::decode_erasures(
        *vs.working, targets, codes::DecodeMethod::GaussOnly);
    FBF_CHECK(res.ok, "Gauss fallback could not solve stripe " +
                          std::to_string(task.stripe));
    for (const codes::Cell& c : targets) {
      const auto out = vs.working->chunk(c);
      const auto expected = vs.truth->chunk(c);
      FBF_CHECK(std::equal(out.begin(), out.end(), expected.begin()),
                "Gauss-recovered chunk " + codes::to_string(c) +
                    " does not match the original in stripe " +
                    std::to_string(task.stripe));
    }
  };
  /// Fault path: `cell` of `stripe` is (re-)lost — run queued folds that
  /// still source its bytes, then erase it so its recovery is honest.
  auto verify_mark_lost = [&](std::uint64_t stripe, codes::Cell cell) {
    flush_verifies();
    verify_states.at(stripe).working->erase(cell);
  };

  auto submit_planned = [&](std::size_t d, double requested,
                            double submit_t) {
    FReader& r = readers[d];
    const FPlannedRead read = r.take();
    double done;
    bool ok = true;
    if (injector.has_value()) {
      const FaultInjector::ReadOutcome rr = injector->read(
          disks[d], submit_t, read.lba, read.key, !read.spare);
      done = rr.done_ms;
      ok = rr.ok;
      metrics.disk_reads += static_cast<std::uint64_t>(rr.attempts);
    } else {
      done = disks[d].submit_read(submit_t, read.lba);
      ++metrics.disk_reads;
    }
    metrics.response_ms.add(done - requested + config_.cache_access_ms);
    metrics.response_reservoir.add(done - requested +
                                   config_.cache_access_ms);
    if (response_hist_ptr != nullptr) {
      response_hist_ptr->add(done - requested + config_.cache_access_ms);
    }
    if (obs::tracing(config_.observer, obs::TraceLevel::Fine)) {
      obs::trace_span(config_.observer, obs::TraceLevel::Fine, obs::kPidDisks,
                      static_cast<std::uint32_t>(d), "disk_read", "disk",
                      submit_t * 1000.0, (done - submit_t) * 1000.0, "stripe",
                      chunks[read.id].stripe);
    }
    if (!ok) {
      queue.push(d & kReaderShardMask,
                 Event{done, seq++, Event::Kind::ReadFailed,
                       static_cast<std::uint32_t>(d), read.id});
      return;
    }
    if (static_cast<std::int64_t>(d) == inline_disk && !have_inline) {
      inline_ev = Event{done, 0, Event::Kind::ReadDone,
                        static_cast<std::uint32_t>(d), read.id};
      have_inline = true;
    } else {
      queue.push(d & kReaderShardMask,
                 Event{done, seq++, Event::Kind::ReadDone,
                       static_cast<std::uint32_t>(d), read.id});
    }
  };

  auto kick_reader = [&](std::size_t d, double now) {
    FReader& r = readers[d];
    if (r.busy || r.idle_empty()) {
      return;
    }
    r.busy = true;
    if (throttle.has_value()) {
      const double grant = throttle->acquire(now);
      if (grant > now) {
        r.requested_at = now;
        if (static_cast<std::int64_t>(d) == inline_disk && !have_inline) {
          inline_ev = Event{grant, 0, Event::Kind::ThrottledSubmit,
                            static_cast<std::uint32_t>(d), 0};
          have_inline = true;
        } else {
          queue.push(d & kReaderShardMask,
                     Event{grant, seq++, Event::Kind::ThrottledSubmit,
                           static_cast<std::uint32_t>(d), 0});
        }
        return;
      }
    }
    submit_planned(d, now, now);
  };

  auto enqueue_reread = [&](std::uint32_t id, double now) {
    const FChunkInfo& ci = chunks[id];
    const bool spare = ci.lost;  // recovered chunks live in the spare area
    const auto d = static_cast<std::size_t>(
        spare ? (ci.spare_disk >= 0
                     ? ci.spare_disk
                     : geometry_->spare_disk_of(ci.stripe, ci.cell))
              : ci.home_disk);
    const std::uint64_t lba = spare ? spare_lba(ci) : ci.lba;
    readers[d].queue.push_back(FPlannedRead{ci.key, lba, id, spare});
    kick_reader(d, now);
  };

  auto attempt_completion = [&](std::size_t t, double now, cache::Key fresh) {
    FTask& task = tasks[t];
    if (task.done) {
      return;
    }
    FMember* mem = member_arena.data() + task.mem_off;
    const std::size_t n = task.mem_len;
    // Fresh-member-first, as in run_legacy (the anti-livelock rotate).
    for (std::size_t i = 0; i < n; ++i) {
      if (mem[i].key == fresh) {
        std::rotate(mem, mem + i, mem + i + 1);
        break;
      }
    }
    // One batched touch replaces n virtual request() calls; identical
    // per-element semantics in the same member order (policy.h contract).
    flush_installs();
    touch_keys.resize(n);
    touch_pris.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      touch_keys[i] = mem[i].key;
      touch_pris[i] = mem[i].priority;
      // Any member the touch below misses is immediately re-read, and
      // enqueue_reread chases its FChunkInfo — a cold line at storm
      // scale. Fetch them all now, hidden behind the batch touch.
      __builtin_prefetch(chunks.data() + mem[i].id);
    }
    touch_hits.resize((n + 63) / 64);
    cache->touch_batch(touch_keys.data(), touch_pris.data(), n,
                       touch_hits.data());
    metrics.total_chunk_requests += n;
    // Keep the misses, stably, in place (run_legacy's scratch-copy +
    // assign round-trip collapsed to one compaction pass).
    std::size_t out = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (((touch_hits[i >> 6] >> (i & 63)) & 1) == 0) {
        mem[out] = mem[i];
        await_word(task, mem[out].pos) |= std::uint64_t{1}
                                          << (mem[out].pos & 63);
        ++out;
      }
    }
    task.mem_len = static_cast<std::uint32_t>(out);
    if (out != 0) {
      // All awaiting bits (and the count) are armed before the first
      // re-read submission so a waiter wake can never observe a torn set.
      task.awaiting_count = static_cast<std::uint32_t>(out);
      for (std::size_t i = 0; i < out; ++i) {
        enqueue_reread(mem[i].id, now);
      }
      return;
    }
    task.done = true;
    ++tasks_done;
    const double xor_done =
        now + config_.xor_ms_per_chunk * static_cast<double>(task.n_members);
    obs::trace_span(config_.observer, obs::TraceLevel::Fine, obs::kPidSim, 0,
                    "chain_fold", "xor", now * 1000.0, (xor_done - now) * 1000.0,
                    "stripe", task.stripe);
    if (verify_on) {
      if (task.gauss_len == 0) {
        queue_chain_fold(task);
      } else {
        verify_gauss_task(task);
      }
    }
    auto write_target = [&](codes::Cell target, std::uint32_t tid) {
      FBF_CHECK(tid != kNoId, "spare write for an unregistered chunk");
      const auto d = static_cast<std::size_t>(
          injector.has_value()
              ? injector->spare_disk(*geometry_, task.stripe, target, xor_done)
              : geometry_->spare_disk_of(task.stripe, target));
      if (injector.has_value() && validation_enabled()) {
        // spare_disk_of is deliberately fault-agnostic; the injector's
        // rerouting must keep recovery writes off dead disks.
        FBF_CHECK(!fault_plan->disk_failed(static_cast<int>(d), xor_done),
                  "spare write routed to a dead disk");
      }
      const double write_done = disks[d].submit_write(
          xor_done, geometry_->spare_lba_of(task.stripe, target));
      ++metrics.disk_writes;
      ++metrics.write.spare_writes;
      ++metrics.chunks_recovered;
      obs::trace_span(config_.observer, obs::TraceLevel::Phases,
                      obs::kPidDisks, static_cast<std::uint32_t>(d),
                      "spare_write", "disk", xor_done * 1000.0,
                      (write_done - xor_done) * 1000.0, "stripe", task.stripe);
      makespan = std::max(makespan, write_done);
      chunks[tid].write_pending = true;
      queue.push(bulk_shard,
                 Event{write_done, seq++, Event::Kind::SpareWriteDone,
                       static_cast<std::uint32_t>(d), tid});
    };
    if (task.gauss_len == 0) {
      write_target(task.target, task.target_id);
    } else {
      // Gauss tasks only come from the replan path, which builds the key
      // map before registering them — find() is safe here.
      for (std::uint32_t g = 0; g < task.gauss_len; ++g) {
        const codes::Cell c = gauss_arena[task.gauss_off + g];
        write_target(c, key_map.find(geometry_->chunk_key(task.stripe, c)));
      }
    }
  };

  // Delivery: pend the install (batched; flushed before the next cache
  // read) and wake the waiters — one bit clear per waiter instead of a
  // key-list scan.
  auto deliver = [&](std::uint32_t id, double now) {
    // Copy everything needed out of the chunk (and out of each link)
    // before waking tasks: a completion may register new chunks or
    // waiter links, growing either arena.
    const cache::Key key = chunks[id].key;
    const std::uint32_t w0_task = chunks[id].w0_task;
    const std::uint16_t w0_pos = chunks[id].w0_pos;
    const std::uint32_t links_head = chunks[id].waiters_head;
    pend_install_keys.push_back(key);
    pend_install_pris.push_back(chunks[id].priority);
    auto wake = [&](std::uint32_t t, std::uint16_t pos) {
      FTask& task = tasks[t];
      if (task.done) {
        return;
      }
      if (task.awaiting_count == 1) {
        // This wake completes the chain: attempt_completion's first act is
        // a scan of the member slice, so start that line now.
        __builtin_prefetch(member_arena.data() + task.mem_off);
      }
      std::uint64_t& word = await_word(task, pos);
      const std::uint64_t bit = std::uint64_t{1} << (pos & 63);
      if ((word & bit) == 0) {
        return;  // not awaiting this chunk right now
      }
      word &= ~bit;
      if (--task.awaiting_count == 0) {
        attempt_completion(t, now, key);
      }
    };
    if (w0_task != kNoWaiter) {
      wake(w0_task, w0_pos);
    }
    for (std::uint32_t l = links_head; l != kNoWaiter;) {
      const std::uint32_t t = waiter_links[l].task;
      const std::uint16_t pos = waiter_links[l].member_pos;
      l = waiter_links[l].next;
      wake(t, pos);
    }
  };

  // ---- Fault path: re-planning around mid-recovery losses. ----
  auto failed_disks_at = [&](double now) {
    std::vector<int> failed;
    if (fault_plan.has_value()) {
      for (const DiskFailure& f : fault_plan->disk_failures()) {
        if (f.at_ms <= now) {
          failed.push_back(f.disk);
        }
      }
    }
    return failed;
  };

  auto replan_stripe = [&](std::uint64_t stripe, double now) {
    ensure_key_map();  // replan registers chunks through the global map
    flush_installs();  // the contains() probes below read cache state
    for (FTask& task : tasks) {
      if (task.stripe == stripe && !task.done) {
        task.done = true;  // superseded by the new plan
        ++tasks_done;
      }
    }
    std::vector<codes::Cell> outstanding;
    for (const FChunkInfo& ci : chunks) {
      if (ci.stripe == stripe && ci.lost && !ci.recovered &&
          !ci.write_pending) {
        outstanding.push_back(ci.cell);
      }
    }
    std::sort(outstanding.begin(), outstanding.end());
    if (outstanding.empty()) {
      return;  // every loss has (or is about to have) a live spare copy
    }
    if (!codes::erasure_decodable(*layout_, outstanding)) {
      throw EscalationError(stripe, std::move(outstanding),
                            failed_disks_at(now));
    }
    const recovery::FaultScheme fs =
        recovery::generate_fault_scheme(*layout_, outstanding);
    ++metrics.schemes_generated;
    if (!fs.gauss_cells.empty()) {
      ++metrics.fault.gauss_fallbacks;
    }
    const std::size_t first_new = tasks.size();
    auto add_task = [&](FTask task, const std::vector<codes::Cell>& members) {
      const std::size_t tindex = tasks.size();
      task.mem_off = static_cast<std::uint32_t>(member_arena.size());
      task.await_words =
          static_cast<std::uint32_t>((members.size() + 63) / 64);
      if (task.await_words > 1) {
        task.await_off = static_cast<std::uint32_t>(await_arena.size());
        await_arena.insert(await_arena.end(), task.await_words, 0);
      }
      for (std::size_t i = 0; i < members.size(); ++i) {
        const codes::Cell& c = members[i];
        const cache::Key key = geometry_->chunk_key(stripe, c);
        const auto cidx = static_cast<std::size_t>(layout_->cell_index(c));
        const auto [id, fresh] = chunk_id_or_new(key);
        {
          FChunkInfo& ci = chunks[id];
          if (fresh) {
            ci.priority =
                std::max<std::uint8_t>(fs.scheme.priority[cidx], 1);
          }
          member_arena.push_back(
              FMember{key, id, static_cast<std::uint16_t>(i), ci.priority});
          ++task.n_members;
          add_waiter(ci, tindex, static_cast<std::uint16_t>(i));
        }
        const FChunkInfo& ci = chunks[id];
        if (ci.lost && !ci.recovered) {
          await_word(task, static_cast<std::uint32_t>(i)) |=
              std::uint64_t{1} << (i & 63);
          ++task.awaiting_count;
        } else if (!cache->contains(key)) {
          await_word(task, static_cast<std::uint32_t>(i)) |=
              std::uint64_t{1} << (i & 63);
          ++task.awaiting_count;
          const bool spare = ci.lost;
          const auto d = static_cast<std::size_t>(
              spare ? (ci.spare_disk >= 0
                           ? ci.spare_disk
                           : geometry_->spare_disk_of(stripe, c))
                    : ci.home_disk);
          const std::uint64_t lba = spare ? spare_lba(ci) : ci.lba;
          readers[d].queue.push_back(FPlannedRead{key, lba, id, spare});
          ++metrics.planned_disk_reads;
          kick_reader(d, now);
        }
      }
      task.mem_len = static_cast<std::uint32_t>(members.size());
      auto register_target = [&](codes::Cell target) -> std::uint32_t {
        const cache::Key tkey = geometry_->chunk_key(stripe, target);
        const auto tidx =
            static_cast<std::size_t>(layout_->cell_index(target));
        const auto [id, fresh] = chunk_id_or_new(tkey);
        FChunkInfo& ci = chunks[id];
        if (fresh) {
          ci.priority = std::max<std::uint8_t>(fs.scheme.priority[tidx], 1);
        }
        ci.lost = true;
        return id;
      };
      if (task.gauss_len == 0) {
        task.target_id = register_target(task.target);
      } else {
        for (std::uint32_t g = 0; g < task.gauss_len; ++g) {
          register_target(gauss_arena[task.gauss_off + g]);
        }
      }
      tasks.push_back(std::move(task));
    };
    for (const recovery::RecoveryStep& step : fs.scheme.steps) {
      FTask task;
      task.stripe = stripe;
      task.target = step.target;
      task.chain_id = static_cast<std::int16_t>(step.chain_id);
      const auto tidx =
          static_cast<std::size_t>(layout_->cell_index(step.target));
      task.target_priority =
          std::max<std::uint8_t>(fs.scheme.priority[tidx], 1);
      std::vector<codes::Cell> members;
      for (const codes::Cell& c : layout_->chain(step.chain_id).cells) {
        if (!(c == step.target)) {
          members.push_back(c);
        }
      }
      add_task(std::move(task), members);
    }
    if (!fs.gauss_cells.empty()) {
      FTask task;
      task.stripe = stripe;
      task.gauss_off = static_cast<std::uint32_t>(gauss_arena.size());
      task.gauss_len = static_cast<std::uint32_t>(fs.gauss_cells.size());
      gauss_arena.insert(gauss_arena.end(), fs.gauss_cells.begin(),
                         fs.gauss_cells.end());
      std::vector<bool> is_gauss(
          static_cast<std::size_t>(layout_->num_cells()), false);
      for (const codes::Cell& c : fs.gauss_cells) {
        is_gauss[static_cast<std::size_t>(layout_->cell_index(c))] = true;
      }
      std::vector<bool> seen(static_cast<std::size_t>(layout_->num_cells()),
                             false);
      std::vector<codes::Cell> members;
      for (int chain_id : fs.gauss_chains) {
        for (const codes::Cell& c : layout_->chain(chain_id).cells) {
          const auto idx = static_cast<std::size_t>(layout_->cell_index(c));
          if (is_gauss[idx] || seen[idx]) {
            continue;
          }
          seen[idx] = true;
          members.push_back(c);
        }
      }
      add_task(std::move(task), members);
    }
    for (std::size_t t = first_new; t < tasks.size(); ++t) {
      if (tasks[t].awaiting_count == 0 && !tasks[t].done) {
        attempt_completion(t, now,
                           tasks[t].mem_len == 0
                               ? 0
                               : member_arena[tasks[t].mem_off].key);
      }
    }
  };

  auto hard_read_failure = [&](std::uint32_t id, double now) {
    FChunkInfo& ci = chunks[id];
    if (ci.lost && !ci.recovered) {
      return;  // already pending recovery: a stale queued read drained
    }
    ++metrics.fault.replans;
    ++metrics.fault.extra_lost_chunks;
    if (verify_on) {
      verify_mark_lost(ci.stripe, ci.cell);
    }
    if (ci.lost) {
      ci.recovered = false;  // spare copy unreadable: recover again
      ci.spare_disk = -1;
    } else {
      ci.lost = true;  // surviving chunk unreadable: joins the lost set
    }
    const std::uint64_t stripe = ci.stripe;  // replan may grow `chunks`
    replan_stripe(stripe, now);
  };

  for (std::size_t d = 0; d < readers.size(); ++d) {
    kick_reader(d, 0.0);
  }
  if (fault_plan.has_value()) {
    for (const DiskFailure& f : fault_plan->disk_failures()) {
      queue.push(bulk_shard, Event{f.at_ms, seq++, Event::Kind::DiskFail,
                                   static_cast<std::uint32_t>(f.disk), 0});
    }
  }
  for (std::size_t i = 0; i < app_trace.size(); ++i) {
    queue.push(bulk_shard,
               Event{app_trace[i].arrival_ms, seq++, Event::Kind::AppArrival,
                     0, static_cast<std::uint32_t>(i)});
  }
  if (flush_ticks_on) {
    queue.push(bulk_shard, Event{config_.write.flush_interval_ms, seq++,
                                 Event::Kind::FlushTick, 0, 0});
  }
  double last_event_ms = 0.0;
  Event ev{};
  bool carried = false;  // ev holds an elided event from the previous round
  while (carried || !queue.empty()) {
    if (!carried) {
      ev = queue.pop();
    }
    carried = false;
    // The upcoming event's chunk is a guaranteed cold miss against a
    // multi-gigabyte id space; fetching it while this event is processed
    // hides that latency. peek() is O(1) (the tournament winner's cached
    // head), so the hint costs two loads.
    if (!queue.empty()) {
      const Event& nx = queue.peek();
      if (nx.kind == Event::Kind::ReadDone ||
          nx.kind == Event::Kind::SpareWriteDone ||
          nx.kind == Event::Kind::ReadFailed) {
        __builtin_prefetch(chunks.data() + nx.id);
      }
    }
    ++metrics.engine_events;  // elided events count: same processing stream
    last_event_ms = std::max(last_event_ms, ev.t);
    if (ev.kind != Event::Kind::DiskFail &&
        ev.kind != Event::Kind::AppArrival &&
        ev.kind != Event::Kind::FlushTick) {
      // A failure, an app arrival, or a flush tick alone does not extend
      // reconstruction; only the rebuild work it triggers does.
      makespan = std::max(makespan, ev.t);
    }
    switch (ev.kind) {
      case Event::Kind::ReadDone:
        deliver(ev.id, ev.t);
        readers[ev.disk].busy = false;
        inline_disk = ev.disk;  // this disk's next submission may elide
        kick_reader(ev.disk, ev.t);
        inline_disk = -1;
        break;
      case Event::Kind::SpareWriteDone: {
        {
          FChunkInfo& ci = chunks[ev.id];
          ci.write_pending = false;
          if (fault_plan.has_value() &&
              fault_plan->disk_failed(static_cast<int>(ev.disk), ev.t)) {
            // The write was in flight when its target disk died: the copy
            // never became durable. Recover the chunk again; waiters are
            // superseded by the replan, so nothing is delivered.
            ++metrics.fault.respared;
            ++metrics.fault.extra_lost_chunks;
            if (verify_on) {
              verify_mark_lost(ci.stripe, ci.cell);
            }
            ci.recovered = false;
            ci.spare_disk = -1;
            const std::uint64_t stripe = ci.stripe;  // replan grows chunks
            replan_stripe(stripe, ev.t);
            break;
          }
          ci.recovered = true;
          ci.spare_disk = static_cast<int>(ev.disk);
        }
        deliver(ev.id, ev.t);
        if (!app_trace.empty()) {
          FChunkInfo& ci = chunks[ev.id];  // re-indexed: deliver may move
          if (foreground.damaged_keys().count(ci.key) > 0 &&
              !ci.recovered_once) {
            ci.recovered_once = true;
            const auto out = stripe_outstanding.find(ci.stripe);
            if (out != stripe_outstanding.end() && --out->second == 0) {
              foreground.on_stripe_recovered(ci.stripe, ev.t);
            }
          }
        }
        break;
      }
      case Event::Kind::ReadFailed:
        // Free the reader first: the replan may enqueue onto this disk.
        readers[ev.disk].busy = false;
        kick_reader(ev.disk, ev.t);
        hard_read_failure(ev.id, ev.t);
        break;
      case Event::Kind::DiskFail: {
        ++metrics.fault.disk_failures;
        const int failed = static_cast<int>(ev.disk);
        foreground.on_disk_failed(failed, ev.t);
        // Deterministic spare invalidation (DESIGN.md §11's former gap):
        // every spare copy on the failed disk dies with it — whatever
        // column its home was — not just the failed column's cells. The
        // chunk arena scan is index-ordered, hence deterministic.
        std::unordered_set<std::uint64_t> respare_stripes;
        for (FChunkInfo& ci : chunks) {
          if (!ci.recovered ||
              (ci.spare_disk >= 0
                   ? ci.spare_disk
                   : geometry_->spare_disk_of(ci.stripe, ci.cell)) !=
                  failed) {
            continue;
          }
          ci.recovered = false;  // spare copy died with the disk
          ci.spare_disk = -1;
          ++metrics.fault.respared;
          ++metrics.fault.extra_lost_chunks;
          if (verify_on) {
            verify_mark_lost(ci.stripe, ci.cell);
          }
          respare_stripes.insert(ci.stripe);
        }
        // Stripes touched only through dead spare copies (no data column
        // on the failed disk — possible once the pool is wider than a
        // stripe) replan as an escalation pass too.
        for (const workload::StripeError& traced : errors) {
          int col = -1;
          for (int c = 0; c < layout_->cols(); ++c) {
            if (geometry_->disk_of(traced.stripe,
                                   codes::Cell{0, static_cast<std::int16_t>(
                                                      c)}) == failed) {
              col = c;
              break;
            }
          }
          if (col < 0 && respare_stripes.count(traced.stripe) == 0) {
            continue;  // the failed disk holds nothing of this stripe
          }
          ++metrics.fault.escalated_stripes;
          for (int r = 0; col >= 0 && r < layout_->rows(); ++r) {
            const codes::Cell cell{static_cast<std::int16_t>(r),
                                   static_cast<std::int16_t>(col)};
            const cache::Key key = geometry_->chunk_key(traced.stripe, cell);
            ensure_key_map();  // chunk registration goes through the map
            const auto [id, fresh] = chunk_id_or_new(key);
            FChunkInfo& ci = chunks[id];
            if (fresh) {
              ci.priority = 1;
            }
            if (!ci.lost) {
              ci.lost = true;  // original copy was homed on the dead disk
              ++metrics.fault.extra_lost_chunks;
              if (verify_on) {
                verify_mark_lost(traced.stripe, cell);
              }
            }
          }
          replan_stripe(traced.stripe, ev.t);
        }
        break;
      }
      case Event::Kind::AppArrival:
        foreground.on_arrival(static_cast<std::size_t>(ev.id), ev.t);
        break;
      case Event::Kind::ThrottledSubmit:
        inline_disk = ev.disk;
        submit_planned(ev.disk, readers[ev.disk].requested_at, ev.t);
        inline_disk = -1;
        break;
      case Event::Kind::FlushTick:
        // Any elided read has been pushed back before a tick can pop (a
        // carried event is always processed first), so the queue.empty()
        // re-arm check sees the same state as the legacy loop.
        foreground.on_flush_tick(ev.t);
        if (!queue.empty()) {
          queue.push(bulk_shard,
                     Event{ev.t + config_.write.flush_interval_ms, seq++,
                           Event::Kind::FlushTick, 0, 0});
        }
        break;
    }
    if (have_inline) {
      have_inline = false;
      if (queue.empty() || queue.peek().t > inline_ev.t) {
        ev = inline_ev;  // provably next: carry it, skip push + pop
        carried = true;
      } else {
        inline_ev.seq = seq++;
        queue.push(inline_ev.disk & kReaderShardMask, inline_ev);
      }
    }
    // Second prefetch stage: the next event's chunk line was requested at
    // the top of this iteration and has landed by now, so its inline
    // waiter is a cheap read — chase one level deeper and fetch the task
    // line (64-byte aligned, exactly one line) the delivery will wake.
    {
      const Event* nx = carried ? &ev : (queue.empty() ? nullptr
                                                       : &queue.peek());
      if (nx != nullptr && (nx->kind == Event::Kind::ReadDone ||
                            nx->kind == Event::Kind::SpareWriteDone ||
                            nx->kind == Event::Kind::ReadFailed)) {
        const std::uint32_t w0 = chunks[nx->id].w0_task;
        if (w0 != kNoWaiter) {
          __builtin_prefetch(tasks.data() + w0);
        }
        const std::uint32_t link = chunks[nx->id].waiters_head;
        if (link != kNoWaiter) {
          // Multi-chain chunk: the delivery will also walk the overflow
          // waiter list, another random arena access.
          __builtin_prefetch(waiter_links.data() + link);
        }
      }
    }
  }
  FBF_CHECK(tasks_done == tasks.size(),
            "DOR finished with incomplete chains — dependency deadlock");
  metrics.event_queue_regrowths = queue.regrowths();
  foreground.finalize(last_event_ms);
  foreground.assert_drained();
  flush_installs();  // trailing deliveries reach the cache before export
  if (verify_on) {
    flush_verifies();
  }

  metrics.reconstruction_ms = makespan;
  metrics.stripes_recovered =
      errors.size() + metrics.fault.escalated_stripes;
  metrics.cache = cache->stats();
  for (const Disk& d : disks) {
    metrics.disk_busy_ms.push_back(d.stats().busy_ms);
    metrics.disk_ops.push_back(d.stats().reads + d.stats().writes);
  }
  if (validation_enabled()) {
    validate_run(metrics, errors);
  }
  record_run(config_.observer, config_.obs_label, metrics, response_hist_ptr);
  return metrics;
}

}  // namespace fbf::sim
