#include "sim/validate.h"

#include <cstdlib>
#include <numeric>
#include <string>

#include "util/check.h"

namespace fbf::sim {

namespace {

std::string law(const char* text, std::uint64_t lhs, std::uint64_t rhs) {
  return std::string(text) + " (" + std::to_string(lhs) +
         " vs " + std::to_string(rhs) + ")";
}

}  // namespace

void validate_metrics(const SimMetrics& m) {
  FBF_CHECK(m.cache.hits + m.cache.misses == m.total_chunk_requests,
            law("every chain consumption must be a hit or a miss: "
                "hits + misses != total_chunk_requests",
                m.cache.hits + m.cache.misses, m.total_chunk_requests));
  // Fault terms are zero when injection is disabled, so the laws reduce to
  // their fault-free shape on the baseline path.
  FBF_CHECK(m.disk_reads ==
                m.planned_disk_reads + m.cache.misses + m.fault.retries,
            law("every recovery read must be planned, a miss, or a retry: "
                "disk_reads != planned_disk_reads + misses + fault.retries",
                m.disk_reads,
                m.planned_disk_reads + m.cache.misses + m.fault.retries));
  // spare_writes is counted unconditionally (it is the legacy meaning of
  // disk_writes), so both laws bind whether or not the write path is on:
  // they reduce to disk_writes == chunks_recovered when it is off.
  FBF_CHECK(m.write.spare_writes == m.chunks_recovered,
            law("every recovered chunk is spare-written exactly once: "
                "write.spare_writes != chunks_recovered",
                m.write.spare_writes, m.chunks_recovered));
  FBF_CHECK(m.disk_writes == m.write.spare_writes + m.write.write_backs +
                                 m.write.parity_updates,
            law("every disk write is a spare write, a dirty write-back, or "
                "a parity update: disk_writes != write.spare_writes + "
                "write.write_backs + write.parity_updates",
                m.disk_writes,
                m.write.spare_writes + m.write.write_backs +
                    m.write.parity_updates));
  FBF_CHECK(m.write.dirty_installed == m.write.flushed + m.write.lost_dirty,
            law("every dirty line is eventually flushed or lost to a disk "
                "failure: write.dirty_installed != write.flushed + "
                "write.lost_dirty",
                m.write.dirty_installed,
                m.write.flushed + m.write.lost_dirty));
  FBF_CHECK(m.write.flushed == m.write.write_backs,
            law("every flushed dirty line pays exactly one write-back: "
                "write.flushed != write.write_backs",
                m.write.flushed, m.write.write_backs));
  FBF_CHECK(m.fault.respared <= m.fault.extra_lost_chunks,
            law("every respared spare copy is an extra lost chunk: "
                "fault.respared > fault.extra_lost_chunks",
                m.fault.respared, m.fault.extra_lost_chunks));
  FBF_CHECK(m.app_requests == m.app_served + m.app_parked_drained,
            law("every app request is served at arrival or parked and "
                "drained: app_requests != app_served + app_parked_drained",
                m.app_requests, m.app_served + m.app_parked_drained));
  FBF_CHECK(m.app_parked_drained ==
                m.app_degraded_reads + m.app_degraded_writes,
            law("every parked app request is a degraded read or a degraded "
                "write (incl. damaged-parity writes): app_parked_drained != "
                "app_degraded_reads + app_degraded_writes",
                m.app_parked_drained,
                m.app_degraded_reads + m.app_degraded_writes));
  // Foreground app traffic shares the disks but is metered separately
  // (app ops land in per-disk stats, not in disk_reads/disk_writes, and
  // may drain past the reconstruction makespan), so the per-disk checks
  // only bind on recovery-only runs.
  if (m.app_requests == 0) {
    for (std::size_t d = 0; d < m.disk_busy_ms.size(); ++d) {
      FBF_CHECK(m.disk_busy_ms[d] <= m.reconstruction_ms + 1e-9,
                "disk " + std::to_string(d) +
                    " busy past the reconstruction makespan (" +
                    std::to_string(m.disk_busy_ms[d]) + " ms vs " +
                    std::to_string(m.reconstruction_ms) + " ms)");
    }
    const std::uint64_t total_ops = std::accumulate(
        m.disk_ops.begin(), m.disk_ops.end(), std::uint64_t{0});
    FBF_CHECK(total_ops == m.disk_reads + m.disk_writes,
              law("per-disk op counts must add up to the totals",
                  total_ops, m.disk_reads + m.disk_writes));
  }
}

void validate_run(const SimMetrics& m,
                  const std::vector<workload::StripeError>& errors) {
  validate_metrics(m);
  FBF_CHECK(m.stripes_recovered ==
                errors.size() + m.fault.escalated_stripes,
            law("every damaged stripe must be recovered (escalations count "
                "as extra passes): stripes_recovered != trace errors + "
                "fault.escalated_stripes",
                m.stripes_recovered,
                errors.size() + m.fault.escalated_stripes));
  std::uint64_t lost_chunks = 0;
  for (const workload::StripeError& e : errors) {
    lost_chunks += e.error.cells().size();
  }
  FBF_CHECK(m.chunks_recovered == lost_chunks + m.fault.extra_lost_chunks,
            law("every lost chunk must be rebuilt exactly once: "
                "chunks_recovered != trace lost chunks + "
                "fault.extra_lost_chunks",
                m.chunks_recovered, lost_chunks + m.fault.extra_lost_chunks));
}

bool validation_enabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("FBF_VALIDATE");
    return v != nullptr && std::string(v) != "0";
  }();
  return enabled;
}

}  // namespace fbf::sim
