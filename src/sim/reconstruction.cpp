#include "sim/reconstruction.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "codes/xor_kernels.h"
#include "obs/observer.h"
#include "obs/registry.h"
#include "sim/event_queue.h"
#include "sim/validate.h"
#include "util/check.h"

namespace fbf::sim {

using recovery::ChunkOp;
using recovery::OpKind;

std::size_t ReconstructionConfig::per_worker_capacity() const {
  if (cache_bytes == 0) {
    return 0;
  }
  const std::size_t total_chunks = cache_bytes / chunk_bytes;
  return std::max<std::size_t>(
      1, total_chunks / static_cast<std::size_t>(workers));
}

struct ReconstructionEngine::Worker {
  int id = 0;
  std::vector<const workload::StripeError*> assigned;
  std::size_t error_idx = 0;
  std::unique_ptr<cache::CachePolicy> cache;

  bool active = false;  ///< currently mid-stripe
  /// Stripe whose completion actions (metrics, degraded-read release) are
  /// due at this worker's next event time, keeping disk submissions in
  /// simulated-time order.
  bool completion_pending = false;
  /// True while an event for this worker sits in the run() heap — lets a
  /// disk-failure escalation wake a retired worker exactly once.
  bool event_pending = false;
  /// Fault path: the current pass is an escalation entry (its outstanding
  /// losses count as extra_lost_chunks, not trace losses).
  bool escalation = false;
  /// Fault path: the Gauss solve of the current plan has been verified
  /// (verify_data mode charges it once, at the first Gauss-step write).
  bool gauss_verified = false;
  std::uint64_t stripe = 0;
  std::shared_ptr<const recovery::RecoveryScheme> scheme;
  /// Fault path: owns the fault plan when the current pass was re-planned
  /// (scheme then aliases fault_scheme->scheme); null on the baseline path.
  std::shared_ptr<const recovery::FaultScheme> fault_scheme;
  /// Reused across stripes: build_request_sequence refills in place
  /// (fault replans and the unmemoized path).
  std::vector<ChunkOp> ops;
  /// Memoized sequence shared by every stripe with the same scheme; null
  /// while the owned `ops` is active.
  std::shared_ptr<const std::vector<ChunkOp>> ops_shared;
  /// The sequence the worker is executing: &ops or ops_shared.get().
  const std::vector<ChunkOp>* ops_view = &ops;
  std::size_t op_idx = 0;
  int reads_in_step = 0;
  /// Recovered-cell bitmap for the current stripe, packed 64 cells per
  /// word and reused across stripes (cleared, never reallocated).
  std::vector<std::uint64_t> recovered;

  bool is_recovered(std::size_t cell_idx) const {
    return (recovered[cell_idx >> 6] >> (cell_idx & 63)) & 1u;
  }
  void mark_recovered(std::size_t cell_idx) {
    recovered[cell_idx >> 6] |= std::uint64_t{1} << (cell_idx & 63);
  }

  // verify_data mode: ground-truth and in-progress stripe contents, plus
  // the chain folds queued for batched dispatch and the targets awaiting
  // comparison against truth at the next flush.
  std::unique_ptr<codes::StripeData> truth;
  std::unique_ptr<codes::StripeData> working;
  codes::FoldBatch verify_batch;
  std::vector<codes::Cell> pending_verifies;

  /// Simulated time the current stripe's first operation ran; feeds the
  /// per-stripe trace span.
  double stripe_start_ms = 0.0;

  double finish_ms = 0.0;

  /// Throttle deferral: a read miss whose token grant lies in the future
  /// parks here (location resolved at request time); the worker's next
  /// event performs the actual disk submission. Deferring the submission —
  /// rather than future-dating it — keeps the FCFS disks honest: foreground
  /// requests arriving before the grant are served first.
  struct PendingRead {
    codes::Cell cell;
    std::uint64_t lba = 0;
    int disk = -1;
    bool from_spare = false;
    double requested_at = 0.0;
  };
  std::optional<PendingRead> pending_read;
};

ReconstructionEngine::ReconstructionEngine(const codes::Layout& layout,
                                           const ArrayGeometry& geometry,
                                           const ReconstructionConfig& config)
    : layout_(&layout), geometry_(&geometry), config_(config) {
  FBF_CHECK(config_.workers > 0, "need at least one worker");
  FBF_CHECK(config_.chunk_bytes > 0, "chunk size must be positive");
  if (config_.faults.enabled()) {
    fault_plan_.emplace(config_.faults, config_.seed, config_.obs_label,
                        geometry.num_disks());
  }
  DiskParams dp = config_.disk;
  dp.chunk_bytes = config_.chunk_bytes;
  dp.capacity_chunks = geometry.disk_capacity_chunks();
  disks_.reserve(static_cast<std::size_t>(geometry.num_disks()));
  for (int d = 0; d < geometry.num_disks(); ++d) {
    DiskParams per_disk = dp;
    if (fault_plan_.has_value()) {
      per_disk.service_multiplier = fault_plan_->service_multiplier(d);
    }
    disks_.emplace_back(d, per_disk,
                        config_.seed * 0x100000001b3ull +
                            static_cast<std::uint64_t>(d));
  }
  scheme_cache_ = std::make_unique<recovery::SchemeCache>(layout);
}

__attribute__((hot)) void ReconstructionEngine::start_next_stripe(Worker& w, SimMetrics& metrics,
                                             double now) {
  const workload::StripeError& err = *w.assigned[w.error_idx];
  w.stripe = err.stripe;

  if (injector_ != nullptr) {
    w.escalation = escalation_errors_.count(&err) > 0;
    // Cells with a live spare copy (recovered by an earlier pass over this
    // stripe) are already safe; only the rest are outstanding.
    std::vector<codes::Cell> outstanding;
    for (const codes::Cell& c : err.error.cells()) {
      if (!spared_live(geometry_->chunk_key(err.stripe, c), now)) {
        outstanding.push_back(c);
      }
    }
    if (w.escalation) {
      // Dead spare copies queued for this stripe ride along with the
      // escalated column; a cell re-spared by an interim replan is live
      // again and drops out here.
      const auto pend = respare_pending_.find(err.stripe);
      if (pend != respare_pending_.end()) {
        for (const codes::Cell& c : pend->second) {
          if (!spared_live(geometry_->chunk_key(err.stripe, c), now)) {
            outstanding.push_back(c);
          }
        }
        respare_pending_.erase(pend);
        std::sort(outstanding.begin(), outstanding.end());
        outstanding.erase(
            std::unique(outstanding.begin(), outstanding.end()),
            outstanding.end());
      }
      metrics.fault.extra_lost_chunks +=
          static_cast<std::uint64_t>(outstanding.size());
    }
    const std::size_t fault_words =
        (static_cast<std::size_t>(layout_->num_cells()) + 63) / 64;
    w.recovered.assign(fault_words, 0);
    w.op_idx = 0;
    w.reads_in_step = 0;
    w.active = true;
    if (outstanding.empty()) {
      w.ops.clear();  // trivial pass: everything already has a live spare
      w.ops_shared.reset();
      w.ops_view = &w.ops;
      w.scheme.reset();
      w.fault_scheme.reset();
      return;
    }
    if (config_.verify_data) {
      util::Rng rng(0x5eedull ^ w.stripe);
      w.truth = std::make_unique<codes::StripeData>(
          *layout_, config_.verify_chunk_bytes);
      w.truth->fill_random(rng);
      codes::encode(*w.truth);
      w.working = std::make_unique<codes::StripeData>(*w.truth);
      for (const codes::Cell& c : outstanding) {
        w.working->erase(c);
      }
    }
    // A fresh, untouched trace error keeps the configured scheme so a run
    // whose faults never fire stays comparable to the baseline; anything
    // else (escalations, partially recovered stripes) is re-planned.
    const bool fresh_trace =
        !w.escalation && outstanding.size() == err.error.cells().size();
    plan_fault_stripe(w, std::move(outstanding), metrics,
                      /*replan=*/!fresh_trace, now);
    return;
  }

  const bool trace_gen = obs::tracing(config_.observer, obs::TraceLevel::Fine);
  const double gen_start_us =
      trace_gen ? config_.observer->trace().wall_now_us() : 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  if (config_.memoize_schemes) {
    const auto before_misses = scheme_cache_->misses();
    w.scheme = scheme_cache_->get(err.error, config_.scheme);
    if (scheme_cache_->misses() > before_misses) {
      ++metrics.schemes_generated;
    } else {
      ++metrics.scheme_cache_hits;
    }
  } else {
    w.scheme = std::make_shared<const recovery::RecoveryScheme>(
        recovery::generate_scheme(*layout_, err.error, config_.scheme));
    ++metrics.schemes_generated;
  }
  assign_request_sequence(w);
  const auto t1 = std::chrono::steady_clock::now();
  metrics.scheme_gen_wall_ms +=
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (trace_gen) {
    obs::trace_span(config_.observer, obs::TraceLevel::Fine, obs::kPidWall,
                    static_cast<std::uint32_t>(w.id), "scheme_gen", "scheme",
                    gen_start_us,
                    config_.observer->trace().wall_now_us() - gen_start_us,
                    "stripe", w.stripe);
  }

  w.op_idx = 0;
  w.reads_in_step = 0;
  const std::size_t words =
      (static_cast<std::size_t>(layout_->num_cells()) + 63) / 64;
  w.recovered.assign(words, 0);  // same size every stripe: no reallocation
  w.active = true;

  if (config_.verify_data) {
    util::Rng rng(0x5eedull ^ w.stripe);
    w.truth = std::make_unique<codes::StripeData>(*layout_,
                                                  config_.verify_chunk_bytes);
    w.truth->fill_random(rng);
    codes::encode(*w.truth);
    w.working = std::make_unique<codes::StripeData>(*w.truth);
    for (const codes::Cell& c : err.error.cells()) {
      w.working->erase(c);
    }
  }
}

void ReconstructionEngine::queue_chunk_verify(
    Worker& w, const recovery::RecoveryStep& step) {
  const codes::Chain& chain = layout_->chain(step.chain_id);
  std::vector<std::span<const std::byte>> srcs;
  srcs.reserve(chain.cells.size());
  for (const codes::Cell& c : chain.cells) {
    if (c != step.target) {
      srcs.push_back(w.working->chunk(c));
    }
  }
  // The batch's dependency barriers reproduce peel order: a chain that
  // consumes an earlier step's target flushes the wave before folding.
  w.verify_batch.add(w.working->chunk(step.target), srcs);
  w.pending_verifies.push_back(step.target);
}

void ReconstructionEngine::flush_chunk_verifies(Worker& w) {
  if (w.pending_verifies.empty()) {
    return;
  }
  w.verify_batch.flush();
  for (const codes::Cell& target : w.pending_verifies) {
    const auto out = w.working->chunk(target);
    const auto expected = w.truth->chunk(target);
    FBF_CHECK(std::equal(out.begin(), out.end(), expected.begin()),
              "recovered chunk " + codes::to_string(target) +
                  " does not match the original in stripe " +
                  std::to_string(w.stripe));
  }
  w.pending_verifies.clear();
}

void ReconstructionEngine::assign_request_sequence(Worker& w) {
  if (!config_.memoize_schemes) {
    recovery::build_request_sequence(*layout_, *w.scheme, w.ops);
    w.ops_shared.reset();
    w.ops_view = &w.ops;
    return;
  }
  auto [it, fresh] = ops_cache_.try_emplace(w.scheme.get());
  if (fresh) {
    auto ops = std::make_shared<std::vector<ChunkOp>>();
    recovery::build_request_sequence(*layout_, *w.scheme, *ops);
    it->second.scheme = w.scheme;
    it->second.ops = std::move(ops);
  }
  w.ops_shared = it->second.ops;
  w.ops_view = w.ops_shared.get();
}

bool ReconstructionEngine::spared_live(std::uint64_t key, double now) const {
  const auto it = spared_on_.find(key);
  return it != spared_on_.end() && !fault_plan_->disk_failed(it->second, now);
}

std::vector<int> ReconstructionEngine::failed_disks_at(double now) const {
  std::vector<int> failed;
  if (fault_plan_.has_value()) {
    for (const DiskFailure& f : fault_plan_->disk_failures()) {
      if (f.at_ms <= now) {
        failed.push_back(f.disk);
      }
    }
  }
  return failed;
}

void ReconstructionEngine::plan_fault_stripe(
    Worker& w, std::vector<codes::Cell> outstanding, SimMetrics& metrics,
    bool replan, double now) {
  std::sort(outstanding.begin(), outstanding.end());
  outstanding.erase(std::unique(outstanding.begin(), outstanding.end()),
                    outstanding.end());
  if (!codes::erasure_decodable(*layout_, outstanding)) {
    throw EscalationError(w.stripe, std::move(outstanding),
                          failed_disks_at(now));
  }
  w.gauss_verified = false;
  const auto t0 = std::chrono::steady_clock::now();
  if (!replan) {
    // Fresh trace error: the configured scheme, memoized like the
    // baseline path.
    const workload::StripeError& err = *w.assigned[w.error_idx];
    w.fault_scheme.reset();
    if (config_.memoize_schemes) {
      const auto before_misses = scheme_cache_->misses();
      w.scheme = scheme_cache_->get(err.error, config_.scheme);
      if (scheme_cache_->misses() > before_misses) {
        ++metrics.schemes_generated;
      } else {
        ++metrics.scheme_cache_hits;
      }
    } else {
      w.scheme = std::make_shared<const recovery::RecoveryScheme>(
          recovery::generate_scheme(*layout_, err.error, config_.scheme));
      ++metrics.schemes_generated;
    }
    assign_request_sequence(w);
  } else {
    auto fs = std::make_shared<recovery::FaultScheme>(
        recovery::generate_fault_scheme(*layout_, outstanding));
    ++metrics.schemes_generated;
    if (!fs->gauss_cells.empty()) {
      ++metrics.fault.gauss_fallbacks;
    }
    // w.scheme aliases the peelable part so the shared WriteSpare path can
    // index steps without knowing a fault plan is active.
    w.scheme = std::shared_ptr<const recovery::RecoveryScheme>(fs, &fs->scheme);
    recovery::build_request_sequence(*layout_, fs->scheme, w.ops);
    recovery::append_gauss_ops(*layout_, *fs, w.ops);
    w.ops_shared.reset();  // replans are stripe-specific, never memoized
    w.ops_view = &w.ops;
    w.fault_scheme = std::move(fs);
  }
  const auto t1 = std::chrono::steady_clock::now();
  metrics.scheme_gen_wall_ms +=
      std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double ReconstructionEngine::handle_read_failure(Worker& w, codes::Cell cell,
                                                 double t,
                                                 SimMetrics& metrics) {
  ++metrics.fault.replans;
  // Whether the cell was a pristine survivor or a previously recovered
  // chunk whose spare copy died, one more recovery write is now due.
  ++metrics.fault.extra_lost_chunks;
  spared_on_.erase(geometry_->chunk_key(w.stripe, cell));
  const auto cidx = static_cast<std::size_t>(layout_->cell_index(cell));
  w.recovered[cidx >> 6] &= ~(std::uint64_t{1} << (cidx & 63));

  // Outstanding = every not-yet-recovered target of the current plan plus
  // the cell that just became unreadable.
  std::vector<codes::Cell> outstanding;
  for (const recovery::RecoveryStep& step : w.scheme->steps) {
    if (!w.is_recovered(
            static_cast<std::size_t>(layout_->cell_index(step.target)))) {
      outstanding.push_back(step.target);
    }
  }
  if (w.fault_scheme != nullptr) {
    for (const codes::Cell& c : w.fault_scheme->gauss_cells) {
      if (!w.is_recovered(
              static_cast<std::size_t>(layout_->cell_index(c)))) {
        outstanding.push_back(c);
      }
    }
  }
  outstanding.push_back(cell);
  if (config_.verify_data) {
    // Queued verify folds read working-stripe bytes in place; run them
    // before the erase rewrites the chunk they source from.
    flush_chunk_verifies(w);
    w.working->erase(cell);
  }
  w.reads_in_step = 0;
  w.op_idx = 0;
  plan_fault_stripe(w, std::move(outstanding), metrics, /*replan=*/true, t);
  return t;
}

void ReconstructionEngine::verify_gauss_cells(Worker& w) {
  FBF_CHECK(w.fault_scheme != nullptr,
            "Gauss-step write without a fault scheme");
  const codes::DecodeResult res =
      codes::decode_erasures(*w.working, w.fault_scheme->gauss_cells,
                             codes::DecodeMethod::GaussOnly);
  FBF_CHECK(res.ok, "Gauss fallback could not solve stripe " +
                        std::to_string(w.stripe));
  for (const codes::Cell& c : w.fault_scheme->gauss_cells) {
    const auto out = w.working->chunk(c);
    const auto expected = w.truth->chunk(c);
    FBF_CHECK(std::equal(out.begin(), out.end(), expected.begin()),
              "Gauss-recovered chunk " + codes::to_string(c) +
                  " does not match the original in stripe " +
                  std::to_string(w.stripe));
  }
  w.gauss_verified = true;
}

__attribute__((hot)) double ReconstructionEngine::finish_rebuild_read(
    Worker& w, codes::Cell cell, std::uint64_t lba, int disk_id,
    bool from_spare, double requested, double submit_t, SimMetrics& metrics) {
  Disk& disk = disks_[static_cast<std::size_t>(disk_id)];
  double next;
  if (injector_ != nullptr) {
    // Every attempt is a real disk submission so the per-disk laws stay
    // exact.
    const std::uint64_t key = geometry_->chunk_key(w.stripe, cell);
    const FaultInjector::ReadOutcome rr =
        injector_->read(disk, submit_t, lba, key, !from_spare);
    metrics.disk_reads += static_cast<std::uint64_t>(rr.attempts);
    obs::trace_span(config_.observer, obs::TraceLevel::Fine, obs::kPidDisks,
                    static_cast<std::uint32_t>(disk_id), "disk_read", "disk",
                    submit_t * 1000.0, (rr.done_ms - submit_t) * 1000.0,
                    "stripe", w.stripe);
    next = rr.done_ms + config_.cache_access_ms;
    if (!rr.ok) {
      metrics.response_ms.add(next - requested);
      metrics.response_reservoir.add(next - requested);
      if (response_hist_ != nullptr) {
        response_hist_->add(next - requested);
      }
      // The chunk is unreadable: it joins the lost set and the stripe is
      // re-planned around it from time `next` on.
      return handle_read_failure(w, cell, next, metrics);
    }
  } else {
    const double done = disk.submit_read(submit_t, lba);
    ++metrics.disk_reads;
    obs::trace_span(config_.observer, obs::TraceLevel::Fine, obs::kPidDisks,
                    static_cast<std::uint32_t>(disk_id), "disk_read", "disk",
                    submit_t * 1000.0, (done - submit_t) * 1000.0, "stripe",
                    w.stripe);
    next = done + config_.cache_access_ms;
  }
  metrics.response_ms.add(next - requested);
  metrics.response_reservoir.add(next - requested);
  if (response_hist_ != nullptr) {
    response_hist_->add(next - requested);
  }
  if (w.op_idx >= w.ops_view->size()) {
    // The stripe's last operation finishes at `next`; completion actions
    // run when the worker's next event fires at that time.
    w.active = false;
    w.completion_pending = true;
    ++w.error_idx;
    if (config_.verify_data) {
      flush_chunk_verifies(w);
    }
    w.truth.reset();
    w.working.reset();
  }
  return next;
}

std::optional<double> ReconstructionEngine::advance(Worker& w, double now,
                                                    SimMetrics& metrics) {
  if (w.pending_read.has_value()) {
    // A throttled miss whose token grant just came due: submit it now.
    const Worker::PendingRead pr = *w.pending_read;
    w.pending_read.reset();
    return finish_rebuild_read(w, pr.cell, pr.lba, pr.disk, pr.from_spare,
                               pr.requested_at, now, metrics);
  }
  if (w.completion_pending) {
    w.completion_pending = false;
    ++metrics.stripes_recovered;
    // Simulated-time spans use milliseconds-as-microseconds: 1 simulated ms
    // renders as 1 us in the viewer, keeping magnitudes readable.
    obs::trace_span(config_.observer, obs::TraceLevel::Phases, obs::kPidSim,
                    static_cast<std::uint32_t>(w.id), "stripe", "recovery",
                    w.stripe_start_ms * 1000.0,
                    (now - w.stripe_start_ms) * 1000.0, "stripe", w.stripe);
    if (on_stripe_recovered_) {
      on_stripe_recovered_(w.stripe, now);
    }
  }
  if (!w.active) {
    if (w.error_idx >= w.assigned.size()) {
      return std::nullopt;
    }
    const double detect = w.assigned[w.error_idx]->detect_time_ms;
    if (now < detect) {
      return detect;  // error not yet discovered; sleep until then
    }
    start_next_stripe(w, metrics, now);
    w.stripe_start_ms = now;
    if (w.ops_view->empty()) {
      // Fault path: nothing outstanding (all cells already have live
      // spares); complete the pass at the next event.
      w.active = false;
      w.completion_pending = true;
      ++w.error_idx;
      return now;
    }
  }

  FBF_CHECK(w.op_idx < w.ops_view->size(),
            "worker advanced past its op list");
  const ChunkOp op = (*w.ops_view)[w.op_idx++];
  double next = now;

  if (op.kind == OpKind::Read) {
    ++metrics.total_chunk_requests;
    ++w.reads_in_step;
    const std::uint64_t key = geometry_->chunk_key(w.stripe, op.cell);
    const bool hit = w.cache->request(key, op.priority);
    if (!hit) {
      // Miss: resolve the chunk's live location at request time. On the
      // fault path, previously recovered chunks live wherever their spare
      // write landed (spared_on_ spans passes and replans); otherwise a
      // recovered chunk no longer exists at its original address and is
      // re-read from where the spare write placed it.
      bool from_spare;
      std::uint64_t lba;
      int disk_id;
      if (injector_ != nullptr) {
        const auto spare_it = spared_on_.find(key);
        from_spare = spare_it != spared_on_.end();
        lba = from_spare ? geometry_->spare_lba_of(w.stripe, op.cell)
                         : geometry_->lba_of(w.stripe, op.cell);
        disk_id = from_spare ? spare_it->second
                             : geometry_->disk_of(w.stripe, op.cell);
      } else {
        const auto cell_idx =
            static_cast<std::size_t>(layout_->cell_index(op.cell));
        from_spare = w.is_recovered(cell_idx);
        lba = from_spare ? geometry_->spare_lba_of(w.stripe, op.cell)
                         : geometry_->lba_of(w.stripe, op.cell);
        disk_id = from_spare ? geometry_->spare_disk_of(w.stripe, op.cell)
                             : geometry_->disk_of(w.stripe, op.cell);
      }
      if (throttle_ != nullptr) {
        // Rebuild misses yield to foreground traffic: a token grant in the
        // future parks the submission until then (Worker::PendingRead)
        // rather than future-dating it, which would reserve the FCFS disk
        // ahead of app requests arriving in the interim. Hits and spare
        // writes are never throttled; response time counts from `now`.
        const double grant = throttle_->acquire(now);
        if (grant > now) {
          w.pending_read =
              Worker::PendingRead{op.cell, lba, disk_id, from_spare, now};
          return grant;
        }
      }
      return finish_rebuild_read(w, op.cell, lba, disk_id, from_spare, now,
                                 now, metrics);
    }
    next = now + config_.cache_access_ms;
    metrics.response_ms.add(next - now);
    metrics.response_reservoir.add(next - now);
    if (response_hist_ != nullptr) {
      response_hist_->add(next - now);
    }
  } else {  // WriteSpare: XOR the step's sources, then async spare write
    // Gauss-step writes charge the whole solve's sources at the first
    // write (reads_in_step accumulated them); later ones cost nothing.
    const double xor_done =
        now + config_.xor_ms_per_chunk * static_cast<double>(w.reads_in_step);
    w.reads_in_step = 0;
    if (config_.verify_data) {
      if (op.step == recovery::kGaussStep) {
        if (!w.gauss_verified) {
          // The Gauss solve reads peel targets in place; drain the queued
          // folds so it sees fully rebuilt chunks.
          flush_chunk_verifies(w);
          verify_gauss_cells(w);
        }
      } else {
        queue_chunk_verify(
            w, w.scheme->steps[static_cast<std::size_t>(op.step)]);
      }
    }
    obs::trace_span(config_.observer, obs::TraceLevel::Fine, obs::kPidSim,
                    static_cast<std::uint32_t>(w.id), "xor_fold", "xor",
                    now * 1000.0, (xor_done - now) * 1000.0, "stripe",
                    w.stripe);
    // With disk failures in play the geometry's spare target may be dead;
    // the injector redirects to the next live disk.
    const int spare_disk =
        injector_ != nullptr
            ? injector_->spare_disk(*geometry_, w.stripe, op.cell, xor_done)
            : geometry_->spare_disk_of(w.stripe, op.cell);
    if (injector_ != nullptr && validation_enabled()) {
      // spare_disk_of is deliberately fault-agnostic; the injector's
      // rerouting is the only thing standing between a recovery write and
      // a dead disk, so pin that here.
      FBF_CHECK(!fault_plan_->disk_failed(spare_disk, xor_done),
                "spare write routed to a dead disk");
    }
    Disk& disk = disks_[static_cast<std::size_t>(spare_disk)];
    const double write_done = disk.submit_write(
        xor_done, geometry_->spare_lba_of(w.stripe, op.cell));
    ++metrics.disk_writes;
    ++metrics.write.spare_writes;
    ++metrics.chunks_recovered;
    obs::trace_span(config_.observer, obs::TraceLevel::Phases, obs::kPidDisks,
                    static_cast<std::uint32_t>(spare_disk), "spare_write",
                    "disk", xor_done * 1000.0, (write_done - xor_done) * 1000.0,
                    "stripe", w.stripe);
    // Reconstruction ends when the last spare write persists; track it
    // here so foreground app traffic cannot inflate the makespan.
    metrics.reconstruction_ms =
        std::max(metrics.reconstruction_ms, write_done);
    w.mark_recovered(static_cast<std::size_t>(layout_->cell_index(op.cell)));
    if (injector_ != nullptr) {
      spared_on_[geometry_->chunk_key(w.stripe, op.cell)] = spare_disk;
    }
    // The recovered chunk sits in the buffer; later chains may reuse it.
    w.cache->install(geometry_->chunk_key(w.stripe, op.cell), op.priority);
    next = config_.synchronous_spare_writes ? write_done : xor_done;
  }

  if (w.op_idx >= w.ops_view->size()) {
    // The stripe's last operation finishes at `next`; completion actions
    // run when the worker's next event fires at that time.
    w.active = false;
    w.completion_pending = true;
    ++w.error_idx;
    if (config_.verify_data) {
      flush_chunk_verifies(w);
    }
    w.truth.reset();
    w.working.reset();
  }
  return next;
}

__attribute__((hot)) SimMetrics ReconstructionEngine::run(
    const std::vector<workload::StripeError>& errors,
    const std::vector<workload::AppRequest>& app_trace) {
  SimMetrics metrics;
  obs::Histogram response_hist;
  response_hist_ = config_.observer != nullptr ? &response_hist : nullptr;

  // Run-scoped fault state. The guard also covers the EscalationError
  // unwind path: the injector references run-local FaultStats and must not
  // outlive this frame.
  struct RunStateGuard {
    ReconstructionEngine* engine;
    ~RunStateGuard() {
      engine->injector_.reset();
      engine->response_hist_ = nullptr;
      engine->throttle_ = nullptr;
    }
  } run_guard{this};
  spared_on_.clear();
  respare_pending_.clear();
  escalation_storage_.clear();
  escalation_errors_.clear();
  if (fault_plan_.has_value()) {
    injector_ = std::make_unique<FaultInjector>(*fault_plan_, metrics.fault);
  }
  const bool has_disk_failures =
      fault_plan_.has_value() && !fault_plan_->disk_failures().empty();

  // SOR assignment: stripes dealt round-robin across worker processes. A
  // whole-disk failure escalates a traced stripe by appending a synthetic
  // error to the *owning* worker, keeping per-stripe passes sequential.
  std::vector<Worker> workers(static_cast<std::size_t>(config_.workers));
  const std::size_t capacity = config_.per_worker_capacity();
  for (std::size_t i = 0; i < workers.size(); ++i) {
    workers[i].id = static_cast<int>(i);
    workers[i].cache = cache::make_policy(config_.policy, capacity);
  }
  std::unordered_map<std::uint64_t, std::size_t> stripe_owner;
  for (std::size_t e = 0; e < errors.size(); ++e) {
    workers[e % workers.size()].assigned.push_back(&errors[e]);
    if (has_disk_failures) {
      stripe_owner.emplace(errors[e].stripe, e % workers.size());
    }
  }

  // Foreground path: the shared online-recovery server (foreground.h)
  // owns parking, remap, RMW, deadline accounting, and app-side fault
  // injection. The app injector is a separate instance over the same
  // plan, so app retries never perturb the rebuild fault stream or the
  // rebuild conservation laws.
  std::optional<FaultInjector> app_injector;
  if (fault_plan_.has_value() && !app_trace.empty()) {
    app_injector.emplace(*fault_plan_, metrics.app_fault);
  }
  ForegroundServer foreground(
      *layout_, *geometry_, disks_, errors, app_trace, metrics,
      app_injector.has_value() ? &*app_injector : nullptr,
      fault_plan_.has_value()
          ? std::function<int(std::uint64_t)>([this](std::uint64_t key) {
              const auto it = spared_on_.find(key);
              return it == spared_on_.end() ? -1 : it->second;
            })
          : nullptr,
      config_.write);
  on_stripe_recovered_ = [&](std::uint64_t stripe, double now) {
    foreground.on_stripe_recovered(stripe, now);
  };
  std::optional<RebuildThrottle> run_throttle;
  if (config_.throttle.enabled()) {
    run_throttle.emplace(config_.throttle);
    throttle_ = &*run_throttle;
  }

  // Event core over worker ready-times and app-request arrivals.
  struct Event {
    double t;
    int worker;       // >= 0: worker id; < 0: app request ~(worker)
    std::uint64_t seq;  // tie-break for determinism
    bool operator>(const Event& other) const {
      return t > other.t || (t == other.t && seq > other.seq);
    }
  };
  // Disk-failure events use ids at the bottom of the int range, below the
  // ~i encoding of any realistic app trace; the periodic flush tick takes
  // the next id above them.
  constexpr int kFailBase = std::numeric_limits<int>::min();
  int num_disk_failures = 0;
  if (has_disk_failures) {
    num_disk_failures = static_cast<int>(fault_plan_->disk_failures().size());
  }
  const bool flush_ticks_on =
      foreground.write_path_active() && config_.write.flush_interval_ms > 0.0;
  const int kFlushId = kFailBase + num_disk_failures;
  FBF_CHECK(app_trace.size() <=
                static_cast<std::size_t>(std::numeric_limits<int>::max()) -
                    static_cast<std::size_t>(num_disk_failures) - 1,
            "app trace too large to coexist with disk-failure events");
  // Workers fold onto 16 shards (event_pending caps each worker at a
  // single entry, so a shard holds at most ceil(workers/16) events) plus
  // a bulk shard for app arrivals and disk failures. Sixteen keeps the
  // tournament shallow and the shard mask a single AND while the
  // per-shard heaps stay small enough that a future-dated push rarely
  // displaces a head — the shard partition is order-irrelevant
  // (event_queue.h), so this is purely a constant-factor dial. The
  // reserves are exact upper bounds, so a regrowth count of zero is an
  // invariant the tests pin, not a tuning accident.
  constexpr std::size_t kWorkerShardMask = 15;  // 16 shards: a mask, not a div
  constexpr std::size_t kBulkShard = kWorkerShardMask + 1;
  ShardedEventQueue<Event> queue(kBulkShard + 1);
  for (std::size_t s = 0; s < workers.size(); ++s) {
    queue.reserve(s & kWorkerShardMask, 1);
  }
  // One extra bulk slot for the flush tick: at most one is in flight (each
  // tick pops before arming the next).
  queue.reserve(kBulkShard, app_trace.size() +
                                static_cast<std::size_t>(num_disk_failures) +
                                (flush_ticks_on ? 1 : 0));
  const auto push_event = [&queue](Event ev) {
    queue.push(ev.worker >= 0
                   ? static_cast<std::size_t>(ev.worker) & kWorkerShardMask
                   : kBulkShard,
               ev);
  };
  std::uint64_t seq = 0;
  for (Worker& w : workers) {
    if (!w.assigned.empty()) {
      push_event(Event{0.0, w.id, seq++});
      w.event_pending = true;
    }
  }
  for (std::size_t i = 0; i < app_trace.size(); ++i) {
    push_event(Event{app_trace[i].arrival_ms, ~static_cast<int>(i), seq++});
  }
  if (has_disk_failures) {
    for (int k = 0; k < num_disk_failures; ++k) {
      push_event(
          Event{fault_plan_->disk_failures()[static_cast<std::size_t>(k)].at_ms,
                kFailBase + k, seq++});
    }
  }
  if (flush_ticks_on) {
    push_event(Event{config_.write.flush_interval_ms, kFlushId, seq++});
  }

  double makespan = 0.0;
  double last_event_ms = 0.0;
  while (!queue.empty()) {
    const Event ev = queue.pop();
    ++metrics.engine_events;
    last_event_ms = std::max(last_event_ms, ev.t);
    if (ev.worker == kFlushId && flush_ticks_on) {
      foreground.on_flush_tick(ev.t);
      // Re-arm while other events remain; a tick never keeps itself alive.
      if (!queue.empty()) {
        push_event(
            Event{ev.t + config_.write.flush_interval_ms, kFlushId, seq++});
      }
      continue;
    }
    if (ev.worker < kFailBase + num_disk_failures) {
      // Whole-disk failure: every traced stripe gains the failed disk's
      // column as fresh losses, processed as a synthetic error by the
      // stripe's owning worker after its earlier passes.
      const DiskFailure& failure = fault_plan_->disk_failures()
          [static_cast<std::size_t>(ev.worker - kFailBase)];
      ++metrics.fault.disk_failures;
      foreground.on_disk_failed(failure.disk, ev.t);
      // Spare copies living on the failed disk die with it. Queue each for
      // deterministic re-recovery by its stripe's escalation pass instead
      // of waiting for a later read to trip on the dead disk (DESIGN.md
      // §11's former gap). The entries stay in spared_on_ so in-flight
      // reads keep routing to the honest dead-disk timeout path.
      const auto cells_per_stripe =
          static_cast<std::uint64_t>(layout_->num_cells());
      for (const auto& [key, spare_disk] : spared_on_) {
        if (spare_disk != failure.disk) {
          continue;
        }
        respare_pending_[key / cells_per_stripe].push_back(
            layout_->cell_at(static_cast<int>(key % cells_per_stripe)));
        ++metrics.fault.respared;
      }
      for (const workload::StripeError& traced : errors) {
        int col = -1;
        for (int c = 0; c < layout_->cols(); ++c) {
          if (geometry_->disk_of(traced.stripe,
                                 codes::Cell{0, static_cast<std::int16_t>(
                                                    c)}) == failure.disk) {
            col = c;
            break;
          }
        }
        const bool pending = respare_pending_.count(traced.stripe) > 0;
        if (col < 0 && !pending) {
          continue;  // the failed disk holds nothing of this stripe
        }
        // Stripes touched only through dead spare copies (no data column
        // on the failed disk — possible once the pool is wider than a
        // stripe) get an empty synthetic error: the escalation pass then
        // recovers exactly the queued cells.
        escalation_storage_.push_back(workload::StripeError{
            traced.stripe,
            col >= 0 ? recovery::PartialStripeError{col, 0, layout_->rows()}
                     : recovery::PartialStripeError{0, 0, 0},
            ev.t});
        const workload::StripeError* esc = &escalation_storage_.back();
        escalation_errors_.insert(esc);
        Worker& owner =
            workers[stripe_owner.at(traced.stripe)];
        owner.assigned.push_back(esc);
        ++metrics.fault.escalated_stripes;
        if (!owner.event_pending) {
          push_event(Event{ev.t, owner.id, seq++});
          owner.event_pending = true;
        }
      }
      continue;
    }
    if (ev.worker < 0) {
      foreground.on_arrival(static_cast<std::size_t>(~ev.worker), ev.t);
      continue;
    }
    Worker& w = workers[static_cast<std::size_t>(ev.worker)];
    const auto next = advance(w, ev.t, metrics);
    if (next.has_value()) {
      push_event(Event{*next, w.id, seq++});
    } else {
      w.event_pending = false;
      w.finish_ms = ev.t;
      makespan = std::max(makespan, ev.t);
    }
  }
  metrics.event_queue_regrowths = queue.regrowths();
  // Terminal flush: remaining dirty lines reach disk at the time of the
  // last event (app write-backs drain like app traffic — they do not
  // extend the reconstruction makespan).
  foreground.finalize(last_event_ms);
  foreground.assert_drained();

  // Spare-area writes may still be draining after the last worker
  // retires; reconstruction_ms already tracks their completions, so the
  // makespan is the later of the last worker event and the last spare
  // write (app traffic drains independently and is not reconstruction).
  for (const Disk& d : disks_) {
    metrics.disk_busy_ms.push_back(d.stats().busy_ms);
    metrics.disk_ops.push_back(d.stats().reads + d.stats().writes);
  }
  metrics.reconstruction_ms = std::max(metrics.reconstruction_ms, makespan);

  for (const Worker& w : workers) {
    metrics.cache.hits += w.cache->stats().hits;
    metrics.cache.misses += w.cache->stats().misses;
    metrics.cache.evictions += w.cache->stats().evictions;
  }
  FBF_CHECK(metrics.cache.misses + metrics.fault.retries ==
                metrics.disk_reads,
            "every cache miss must hit a disk exactly once, plus retries");
  if (validation_enabled()) {
    validate_run(metrics, errors);
  }
  record_run(config_.observer, config_.obs_label, metrics, response_hist_);
  return metrics;
}

}  // namespace fbf::sim
