#include "sim/reconstruction.h"

#include <algorithm>
#include <chrono>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "obs/observer.h"
#include "obs/registry.h"
#include "sim/validate.h"
#include "util/check.h"

namespace fbf::sim {

using recovery::ChunkOp;
using recovery::OpKind;

std::size_t ReconstructionConfig::per_worker_capacity() const {
  if (cache_bytes == 0) {
    return 0;
  }
  const std::size_t total_chunks = cache_bytes / chunk_bytes;
  return std::max<std::size_t>(
      1, total_chunks / static_cast<std::size_t>(workers));
}

struct ReconstructionEngine::Worker {
  int id = 0;
  std::vector<const workload::StripeError*> assigned;
  std::size_t error_idx = 0;
  std::unique_ptr<cache::CachePolicy> cache;

  bool active = false;  ///< currently mid-stripe
  /// Stripe whose completion actions (metrics, degraded-read release) are
  /// due at this worker's next event time, keeping disk submissions in
  /// simulated-time order.
  bool completion_pending = false;
  std::uint64_t stripe = 0;
  std::shared_ptr<const recovery::RecoveryScheme> scheme;
  /// Reused across stripes: build_request_sequence refills in place.
  std::vector<ChunkOp> ops;
  std::size_t op_idx = 0;
  int reads_in_step = 0;
  /// Recovered-cell bitmap for the current stripe, packed 64 cells per
  /// word and reused across stripes (cleared, never reallocated).
  std::vector<std::uint64_t> recovered;

  bool is_recovered(std::size_t cell_idx) const {
    return (recovered[cell_idx >> 6] >> (cell_idx & 63)) & 1u;
  }
  void mark_recovered(std::size_t cell_idx) {
    recovered[cell_idx >> 6] |= std::uint64_t{1} << (cell_idx & 63);
  }

  // verify_data mode: ground-truth and in-progress stripe contents.
  std::unique_ptr<codes::StripeData> truth;
  std::unique_ptr<codes::StripeData> working;

  /// Simulated time the current stripe's first operation ran; feeds the
  /// per-stripe trace span.
  double stripe_start_ms = 0.0;

  double finish_ms = 0.0;
};

ReconstructionEngine::ReconstructionEngine(const codes::Layout& layout,
                                           const ArrayGeometry& geometry,
                                           const ReconstructionConfig& config)
    : layout_(&layout), geometry_(&geometry), config_(config) {
  FBF_CHECK(config_.workers > 0, "need at least one worker");
  FBF_CHECK(config_.chunk_bytes > 0, "chunk size must be positive");
  DiskParams dp = config_.disk;
  dp.chunk_bytes = config_.chunk_bytes;
  dp.capacity_chunks = geometry.disk_capacity_chunks();
  disks_.reserve(static_cast<std::size_t>(geometry.num_disks()));
  for (int d = 0; d < geometry.num_disks(); ++d) {
    disks_.emplace_back(d, dp,
                        config_.seed * 0x100000001b3ull +
                            static_cast<std::uint64_t>(d));
  }
  scheme_cache_ = std::make_unique<recovery::SchemeCache>(layout);
}

void ReconstructionEngine::start_next_stripe(Worker& w, SimMetrics& metrics) {
  const workload::StripeError& err = *w.assigned[w.error_idx];
  w.stripe = err.stripe;

  const bool trace_gen = obs::tracing(config_.observer, obs::TraceLevel::Fine);
  const double gen_start_us =
      trace_gen ? config_.observer->trace().wall_now_us() : 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  if (config_.memoize_schemes) {
    const auto before_misses = scheme_cache_->misses();
    w.scheme = scheme_cache_->get(err.error, config_.scheme);
    if (scheme_cache_->misses() > before_misses) {
      ++metrics.schemes_generated;
    } else {
      ++metrics.scheme_cache_hits;
    }
  } else {
    w.scheme = std::make_shared<const recovery::RecoveryScheme>(
        recovery::generate_scheme(*layout_, err.error, config_.scheme));
    ++metrics.schemes_generated;
  }
  recovery::build_request_sequence(*layout_, *w.scheme, w.ops);
  const auto t1 = std::chrono::steady_clock::now();
  metrics.scheme_gen_wall_ms +=
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (trace_gen) {
    obs::trace_span(config_.observer, obs::TraceLevel::Fine, obs::kPidWall,
                    static_cast<std::uint32_t>(w.id), "scheme_gen", "scheme",
                    gen_start_us,
                    config_.observer->trace().wall_now_us() - gen_start_us,
                    "stripe", w.stripe);
  }

  w.op_idx = 0;
  w.reads_in_step = 0;
  const std::size_t words =
      (static_cast<std::size_t>(layout_->num_cells()) + 63) / 64;
  w.recovered.assign(words, 0);  // same size every stripe: no reallocation
  w.active = true;

  if (config_.verify_data) {
    util::Rng rng(0x5eedull ^ w.stripe);
    w.truth = std::make_unique<codes::StripeData>(*layout_,
                                                  config_.verify_chunk_bytes);
    w.truth->fill_random(rng);
    codes::encode(*w.truth);
    w.working = std::make_unique<codes::StripeData>(*w.truth);
    for (const codes::Cell& c : err.error.cells()) {
      w.working->erase(c);
    }
  }
}

void ReconstructionEngine::verify_recovered_chunk(
    Worker& w, const recovery::RecoveryStep& step) {
  const codes::Chain& chain = layout_->chain(step.chain_id);
  auto out = w.working->chunk(step.target);
  std::vector<std::span<const std::byte>> srcs;
  srcs.reserve(chain.cells.size());
  for (const codes::Cell& c : chain.cells) {
    if (c != step.target) {
      srcs.push_back(w.working->chunk(c));
    }
  }
  codes::xor_fold(out, srcs);
  const auto expected = w.truth->chunk(step.target);
  FBF_CHECK(std::equal(out.begin(), out.end(), expected.begin()),
            "recovered chunk " + codes::to_string(step.target) +
                " does not match the original in stripe " +
                std::to_string(w.stripe));
}

std::optional<double> ReconstructionEngine::advance(Worker& w, double now,
                                                    SimMetrics& metrics) {
  if (w.completion_pending) {
    w.completion_pending = false;
    ++metrics.stripes_recovered;
    // Simulated-time spans use milliseconds-as-microseconds: 1 simulated ms
    // renders as 1 us in the viewer, keeping magnitudes readable.
    obs::trace_span(config_.observer, obs::TraceLevel::Phases, obs::kPidSim,
                    static_cast<std::uint32_t>(w.id), "stripe", "recovery",
                    w.stripe_start_ms * 1000.0,
                    (now - w.stripe_start_ms) * 1000.0, "stripe", w.stripe);
    if (on_stripe_recovered_) {
      on_stripe_recovered_(w.stripe, now);
    }
  }
  if (!w.active) {
    if (w.error_idx >= w.assigned.size()) {
      return std::nullopt;
    }
    const double detect = w.assigned[w.error_idx]->detect_time_ms;
    if (now < detect) {
      return detect;  // error not yet discovered; sleep until then
    }
    start_next_stripe(w, metrics);
    w.stripe_start_ms = now;
  }

  FBF_CHECK(w.op_idx < w.ops.size(), "worker advanced past its op list");
  const ChunkOp op = w.ops[w.op_idx++];
  double next = now;

  if (op.kind == OpKind::Read) {
    ++metrics.total_chunk_requests;
    ++w.reads_in_step;
    const std::uint64_t key = geometry_->chunk_key(w.stripe, op.cell);
    const bool hit = w.cache->request(key, op.priority);
    if (hit) {
      next = now + config_.cache_access_ms;
    } else {
      const auto cell_idx =
          static_cast<std::size_t>(layout_->cell_index(op.cell));
      // Recovered chunks no longer exist at their original address; a miss
      // re-reads them from wherever the spare write placed them.
      const bool from_spare = w.is_recovered(cell_idx);
      const std::uint64_t lba = from_spare
                                    ? geometry_->spare_lba_of(w.stripe, op.cell)
                                    : geometry_->lba_of(w.stripe, op.cell);
      const int disk_id = from_spare
                              ? geometry_->spare_disk_of(w.stripe, op.cell)
                              : geometry_->disk_of(w.stripe, op.cell);
      Disk& disk = disks_[static_cast<std::size_t>(disk_id)];
      const double done = disk.submit_read(now, lba);
      ++metrics.disk_reads;
      obs::trace_span(config_.observer, obs::TraceLevel::Fine, obs::kPidDisks,
                      static_cast<std::uint32_t>(disk_id), "disk_read", "disk",
                      now * 1000.0, (done - now) * 1000.0, "stripe", w.stripe);
      next = done + config_.cache_access_ms;
    }
    metrics.response_ms.add(next - now);
    metrics.response_reservoir.add(next - now);
    if (response_hist_ != nullptr) {
      response_hist_->add(next - now);
    }
  } else {  // WriteSpare: XOR the step's sources, then async spare write
    const double xor_done =
        now + config_.xor_ms_per_chunk * static_cast<double>(w.reads_in_step);
    w.reads_in_step = 0;
    const recovery::RecoveryStep& step =
        w.scheme->steps[static_cast<std::size_t>(op.step)];
    if (config_.verify_data) {
      verify_recovered_chunk(w, step);
    }
    obs::trace_span(config_.observer, obs::TraceLevel::Fine, obs::kPidSim,
                    static_cast<std::uint32_t>(w.id), "xor_fold", "xor",
                    now * 1000.0, (xor_done - now) * 1000.0, "stripe",
                    w.stripe);
    const int spare_disk = geometry_->spare_disk_of(w.stripe, op.cell);
    Disk& disk = disks_[static_cast<std::size_t>(spare_disk)];
    const double write_done = disk.submit_write(
        xor_done, geometry_->spare_lba_of(w.stripe, op.cell));
    ++metrics.disk_writes;
    ++metrics.chunks_recovered;
    obs::trace_span(config_.observer, obs::TraceLevel::Phases, obs::kPidDisks,
                    static_cast<std::uint32_t>(spare_disk), "spare_write",
                    "disk", xor_done * 1000.0, (write_done - xor_done) * 1000.0,
                    "stripe", w.stripe);
    // Reconstruction ends when the last spare write persists; track it
    // here so foreground app traffic cannot inflate the makespan.
    metrics.reconstruction_ms =
        std::max(metrics.reconstruction_ms, write_done);
    w.mark_recovered(static_cast<std::size_t>(layout_->cell_index(op.cell)));
    // The recovered chunk sits in the buffer; later chains may reuse it.
    w.cache->install(geometry_->chunk_key(w.stripe, op.cell), op.priority);
    next = config_.synchronous_spare_writes ? write_done : xor_done;
  }

  if (w.op_idx >= w.ops.size()) {
    // The stripe's last operation finishes at `next`; completion actions
    // run when the worker's next event fires at that time.
    w.active = false;
    w.completion_pending = true;
    ++w.error_idx;
    w.truth.reset();
    w.working.reset();
  }
  return next;
}

SimMetrics ReconstructionEngine::run(
    const std::vector<workload::StripeError>& errors,
    const std::vector<workload::AppRequest>& app_trace) {
  SimMetrics metrics;
  obs::Histogram response_hist;
  response_hist_ = config_.observer != nullptr ? &response_hist : nullptr;

  // SOR assignment: stripes dealt round-robin across worker processes.
  std::vector<Worker> workers(static_cast<std::size_t>(config_.workers));
  const std::size_t capacity = config_.per_worker_capacity();
  for (std::size_t i = 0; i < workers.size(); ++i) {
    workers[i].id = static_cast<int>(i);
    workers[i].cache = cache::make_policy(config_.policy, capacity);
  }
  for (std::size_t e = 0; e < errors.size(); ++e) {
    workers[e % workers.size()].assigned.push_back(&errors[e]);
  }

  // Degraded-read bookkeeping: app reads touching a damaged chunk park
  // until the stripe is repaired.
  std::unordered_set<std::uint64_t> damaged_keys;
  std::unordered_set<std::uint64_t> repaired_stripes;
  struct ParkedRequest {
    std::size_t app_index;
    double arrival_ms;
  };
  std::unordered_map<std::uint64_t, std::vector<ParkedRequest>> parked_by_stripe;
  for (const workload::StripeError& e : errors) {
    for (const codes::Cell& c : e.error.cells()) {
      damaged_keys.insert(geometry_->chunk_key(e.stripe, c));
    }
  }
  auto serve_app_read = [&](const workload::AppRequest& req, double start,
                            double arrival) {
    // Repaired chunks live in the spare area (the original sector is bad).
    const bool remapped =
        damaged_keys.count(geometry_->chunk_key(req.stripe, req.cell)) > 0;
    Disk& disk = disks_[static_cast<std::size_t>(
        remapped ? geometry_->spare_disk_of(req.stripe, req.cell)
                 : geometry_->disk_of(req.stripe, req.cell))];
    const double done = disk.submit_read(
        start, remapped ? geometry_->spare_lba_of(req.stripe, req.cell)
                        : geometry_->lba_of(req.stripe, req.cell));
    metrics.app_response_ms.add(done - arrival);
  };
  on_stripe_recovered_ = [&](std::uint64_t stripe, double now) {
    repaired_stripes.insert(stripe);  // later reads are no longer degraded
    const auto it = parked_by_stripe.find(stripe);
    if (it == parked_by_stripe.end()) {
      return;
    }
    for (const ParkedRequest& pr : it->second) {
      serve_app_read(app_trace[pr.app_index], now, pr.arrival_ms);
    }
    parked_by_stripe.erase(it);
  };

  // Event heap over worker ready-times and app-request arrivals.
  struct Event {
    double t;
    int worker;       // >= 0: worker id; < 0: app request ~(worker)
    std::uint64_t seq;  // tie-break for determinism
    bool operator>(const Event& other) const {
      return t > other.t || (t == other.t && seq > other.seq);
    }
  };
  // At most one pending event per worker plus the app arrivals pushed up
  // front bound the heap: reserving once removes every mid-run regrowth.
  std::vector<Event> heap_storage;
  heap_storage.reserve(workers.size() + app_trace.size());
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap(
      std::greater<Event>{}, std::move(heap_storage));
  std::uint64_t seq = 0;
  for (const Worker& w : workers) {
    if (!w.assigned.empty()) {
      heap.push(Event{0.0, w.id, seq++});
    }
  }
  for (std::size_t i = 0; i < app_trace.size(); ++i) {
    heap.push(Event{app_trace[i].arrival_ms, ~static_cast<int>(i), seq++});
  }

  double makespan = 0.0;
  while (!heap.empty()) {
    const Event ev = heap.top();
    heap.pop();
    if (ev.worker < 0) {
      const auto app_index = static_cast<std::size_t>(~ev.worker);
      const workload::AppRequest& req = app_trace[app_index];
      ++metrics.app_requests;
      const std::uint64_t key = geometry_->chunk_key(req.stripe, req.cell);
      if (req.is_read && damaged_keys.count(key) > 0 &&
          repaired_stripes.count(req.stripe) == 0) {
        // Degraded read: the data is gone until reconstruction rebuilds
        // it; park until the stripe's recovery completes.
        ++metrics.app_degraded_reads;
        parked_by_stripe[req.stripe].push_back(
            ParkedRequest{app_index, ev.t});
        continue;
      }
      if (req.is_read) {
        serve_app_read(req, ev.t, ev.t);
      } else {
        // Small write: read-modify-write. The new data plus every parity
        // on a chain through this cell must be re-read and rewritten —
        // the code's update complexity, paid in disk time (TIP-style
        // layouts: <= 3 parities; STAR adjuster cells: p + 1).
        auto submit = [&](codes::Cell cell, bool is_write,
                          double start) {
          Disk& disk = disks_[static_cast<std::size_t>(
              geometry_->disk_of(req.stripe, cell))];
          const std::uint64_t lba = geometry_->lba_of(req.stripe, cell);
          return is_write ? disk.submit_write(start, lba)
                          : disk.submit_read(start, lba);
        };
        double reads_done = submit(req.cell, false, ev.t);
        if (layout_->kind(req.cell) == codes::CellKind::Data) {
          for (int chain_id : layout_->chains_containing(req.cell)) {
            reads_done = std::max(
                reads_done,
                submit(layout_->chain(chain_id).parity_cell, false, ev.t));
          }
        }
        double done = submit(req.cell, true, reads_done);
        if (layout_->kind(req.cell) == codes::CellKind::Data) {
          for (int chain_id : layout_->chains_containing(req.cell)) {
            done = std::max(done,
                            submit(layout_->chain(chain_id).parity_cell,
                                   true, reads_done));
          }
        }
        metrics.app_response_ms.add(done - ev.t);
      }
      continue;
    }
    Worker& w = workers[static_cast<std::size_t>(ev.worker)];
    const auto next = advance(w, ev.t, metrics);
    if (next.has_value()) {
      heap.push(Event{*next, w.id, seq++});
    } else {
      w.finish_ms = ev.t;
      makespan = std::max(makespan, ev.t);
    }
  }

  // Spare-area writes may still be draining after the last worker
  // retires; reconstruction_ms already tracks their completions, so the
  // makespan is the later of the last worker event and the last spare
  // write (app traffic drains independently and is not reconstruction).
  for (const Disk& d : disks_) {
    metrics.disk_busy_ms.push_back(d.stats().busy_ms);
    metrics.disk_ops.push_back(d.stats().reads + d.stats().writes);
  }
  metrics.reconstruction_ms = std::max(metrics.reconstruction_ms, makespan);

  for (const Worker& w : workers) {
    metrics.cache.hits += w.cache->stats().hits;
    metrics.cache.misses += w.cache->stats().misses;
    metrics.cache.evictions += w.cache->stats().evictions;
  }
  FBF_CHECK(metrics.cache.misses == metrics.disk_reads,
            "every cache miss must hit a disk exactly once");
  if (validation_enabled()) {
    validate_run(metrics, errors);
  }
  record_run(config_.observer, config_.obs_label, metrics, response_hist_);
  response_hist_ = nullptr;
  return metrics;
}

}  // namespace fbf::sim
