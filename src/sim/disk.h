// Disk service model — the piece of DiskSim this reproduction needs.
//
// Two models:
//  - FixedLatency: the paper's own constants (10 ms per disk access,
//    0.5 ms buffer-cache access) with FCFS queueing per disk.
//  - Detailed: distance-dependent seek + expected rotational latency +
//    transfer time, for sensitivity studies beyond the paper.
//
// A Disk is an analytic FCFS server: submissions must arrive in
// non-decreasing simulated time (the event loop guarantees this), and each
// submission returns its completion time.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/rng.h"

namespace fbf::sim {

enum class DiskModelKind : std::uint8_t { FixedLatency, Detailed };

struct DiskParams {
  DiskModelKind kind = DiskModelKind::FixedLatency;

  // FixedLatency model (paper defaults).
  double read_ms = 10.0;
  double write_ms = 10.0;

  // Detailed model.
  double seek_min_ms = 0.5;    ///< track-to-track
  double seek_max_ms = 8.0;    ///< full-stroke
  double rpm = 7200.0;         ///< rotational latency ~ half a revolution
  /// Sustained media transfer rate in MiB/s (mebibytes, 1048576 bytes,
  /// per second — not megabits): 150 MiB/s is a 7200 rpm SATA drive.
  double transfer_MiBps = 150.0;
  std::uint64_t capacity_chunks = 1ull << 25;  ///< 1 TB of 32 KB chunks
  std::size_t chunk_bytes = 32 * 1024;

  /// Straggler knob (sim/faults): every service time is scaled by this
  /// factor. 1.0 — the default — is a healthy disk.
  double service_multiplier = 1.0;
};

/// Time to move one chunk at the sustained media rate:
/// chunk_bytes / (transfer_MiBps MiB/s) converted to milliseconds.
double transfer_time_ms(const DiskParams& params);

struct DiskStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double busy_ms = 0.0;
  double last_completion_ms = 0.0;
};

class Disk {
 public:
  Disk(int id, const DiskParams& params, std::uint64_t seed);

  // submit_read/submit_write are defined inline with the FixedLatency
  // service computation: the simulators call them once per planned read,
  // re-read, and spare write, and under the default model the whole body
  // is a handful of flops — an opaque cross-TU call would dominate it.
  // The Detailed model (seek curve + rotation) stays out of line.

  /// Enqueues a chunk read arriving at `now_ms`; returns completion time.
  double submit_read(double now_ms, std::uint64_t lba_chunk) {
    ++stats_.reads;
    return enqueue(now_ms, service_ms(lba_chunk, /*is_write=*/false));
  }

  /// Enqueues a chunk write arriving at `now_ms`; returns completion time.
  double submit_write(double now_ms, std::uint64_t lba_chunk) {
    ++stats_.writes;
    return enqueue(now_ms, service_ms(lba_chunk, /*is_write=*/true));
  }

  int id() const { return id_; }
  const DiskStats& stats() const { return stats_; }
  double free_at_ms() const { return free_at_ms_; }

  /// Utilisation over [0, horizon].
  double utilization(double horizon_ms) const;

 private:
  double service_ms(std::uint64_t lba_chunk, bool is_write) {
    if (params_.kind == DiskModelKind::FixedLatency) {
      return (is_write ? params_.write_ms : params_.read_ms) *
             params_.service_multiplier;
    }
    return detailed_service_ms(lba_chunk, is_write);
  }
  double detailed_service_ms(std::uint64_t lba_chunk, bool is_write);
  double enqueue(double now_ms, double service) {
    const double start = std::max(now_ms, free_at_ms_);
    free_at_ms_ = start + service;
    stats_.busy_ms += service;
    stats_.last_completion_ms = free_at_ms_;
    return free_at_ms_;
  }

  int id_;
  DiskParams params_;
  util::Rng rng_;
  double free_at_ms_ = 0.0;
  std::uint64_t head_lba_ = 0;
  DiskStats stats_;
};

}  // namespace fbf::sim
