#include "sim/disk.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fbf::sim {

double transfer_time_ms(const DiskParams& params) {
  // MiB/s -> bytes per millisecond: * 1048576 bytes/MiB / 1000 ms/s.
  const double bytes_per_ms = params.transfer_MiBps * 1048576.0 / 1000.0;
  return static_cast<double>(params.chunk_bytes) / bytes_per_ms;
}

Disk::Disk(int id, const DiskParams& params, std::uint64_t seed)
    : id_(id), params_(params), rng_(seed) {
  FBF_CHECK(params_.read_ms > 0 && params_.write_ms > 0,
            "disk latencies must be positive");
  FBF_CHECK(params_.capacity_chunks > 0, "disk capacity must be positive");
  FBF_CHECK(params_.service_multiplier > 0.0,
            "disk service multiplier must be positive");
}

double Disk::detailed_service_ms(std::uint64_t lba_chunk,
                                 bool /*is_write*/) {
  // Detailed model: seek grows with the square root of the head travel
  // distance (classic seek-curve approximation), plus expected rotational
  // latency (half a revolution, jittered) and chunk transfer time.
  const auto distance = static_cast<double>(
      lba_chunk > head_lba_ ? lba_chunk - head_lba_ : head_lba_ - lba_chunk);
  const double frac = std::sqrt(
      distance / static_cast<double>(params_.capacity_chunks));
  const double seek =
      distance == 0
          ? 0.0
          : params_.seek_min_ms + (params_.seek_max_ms - params_.seek_min_ms) *
                                      std::min(1.0, frac);
  const double full_rotation_ms = 60000.0 / params_.rpm;
  const double rotation = rng_.uniform_real(0.0, full_rotation_ms);
  const double transfer = transfer_time_ms(params_);
  head_lba_ = lba_chunk;
  return (seek + rotation + transfer) * params_.service_multiplier;
}

double Disk::utilization(double horizon_ms) const {
  return horizon_ms <= 0.0 ? 0.0 : stats_.busy_ms / horizon_ms;
}

}  // namespace fbf::sim
