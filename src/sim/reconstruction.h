// SOR parallel reconstruction engine (paper §III-B, §IV).
//
// Stripe-Oriented Reconstruction: K simulated worker processes each own a
// disjoint share of the damaged stripes and a private partition of the
// buffer cache (cache_bytes / K), exactly as the paper allocates it. Each
// worker walks its stripes' recovery schemes: for every step it requests
// the chain's surviving members through its cache partition (0.5 ms on a
// hit; FCFS disk service on a miss), pays the XOR cost, writes the
// recovered chunk to the spare area asynchronously, and inserts it into
// the cache with its dictionary priority.
//
// The engine is a discrete-event simulation: a min-heap of worker
// ready-times drives execution, and disks are analytic FCFS servers. Runs
// are bit-deterministic for a given configuration and trace; the only
// wall-clock measurement is the scheme-generation overhead reported
// separately for Table IV.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/policy.h"
#include "codes/codec.h"
#include "recovery/request_sequence.h"
#include "recovery/scheme_cache.h"
#include "sim/array_geometry.h"
#include "sim/disk.h"
#include "sim/faults/faults.h"
#include "sim/foreground.h"
#include "sim/metrics.h"
#include "workload/app_trace.h"
#include "workload/errors.h"

namespace fbf::obs {
class Histogram;
class RunObserver;
}  // namespace fbf::obs

namespace fbf::sim {

struct ReconstructionConfig {
  recovery::SchemeKind scheme = recovery::SchemeKind::RoundRobin;
  cache::PolicyId policy = cache::PolicyId::Fbf;

  std::size_t cache_bytes = 256ull << 20;
  std::size_t chunk_bytes = 32 * 1024;
  int workers = 128;

  double cache_access_ms = 0.5;   ///< paper's buffer-cache access time
  double xor_ms_per_chunk = 0.05; ///< XOR cost per source chunk folded in

  DiskParams disk;

  /// Memoize schemes per error format (paper §III-A). Disable to measure
  /// the un-amortized overhead for Table IV.
  bool memoize_schemes = true;

  /// Write-through sparing: the worker waits for each spare write to
  /// persist before moving on (a chunk is only "repaired" once durable).
  /// With `false` writes are fire-and-forget and reconstruction ends when
  /// the last queued write drains.
  bool synchronous_spare_writes = true;

  /// Carry real chunk bytes through the recovery and verify each
  /// reconstructed chunk against the original (integration-test mode;
  /// slows the run, uses small verification chunks).
  bool verify_data = false;
  std::size_t verify_chunk_bytes = 64;

  std::uint64_t seed = 1;

  /// Fault injection (sim/faults). Disabled by default; when
  /// faults.enabled() is false the engine takes the exact pre-fault code
  /// path and produces byte-identical metrics.
  FaultConfig faults;

  /// Recovery throttling (sim/foreground.h): rebuild read misses draw
  /// from a token bucket so foreground traffic sees shorter disk queues.
  /// Disabled by default (byte-identical to the unthrottled engine).
  ThrottleConfig throttle;

  /// Foreground write path (sim/foreground.h): parity-update planner +
  /// dirty write-back cache. Disabled by default (byte-identical to the
  /// legacy synchronous-RMW engine).
  WritePathConfig write;

  /// Optional run-level observability sink (not owned). When set, the run
  /// exports counters/gauges/histograms under `obs_label` and emits trace
  /// spans for stripes, disk service, XOR folds, and spare writes at the
  /// observer's trace level. Null keeps the engine on the zero-cost path.
  obs::RunObserver* observer = nullptr;
  std::string obs_label = "run.sor";

  /// Per-worker cache capacity in chunks (>= 1 whenever cache_bytes > 0,
  /// mirroring a controller that always grants a worker one buffer).
  std::size_t per_worker_capacity() const;
};

class ReconstructionEngine {
 public:
  ReconstructionEngine(const codes::Layout& layout,
                       const ArrayGeometry& geometry,
                       const ReconstructionConfig& config);

  /// Simulates recovery of all damaged stripes (plus optional foreground
  /// application traffic) and returns the collected metrics.
  ///
  /// The foreground path is the shared ForegroundServer (foreground.h):
  /// requests touching damaged, not-yet-recovered chunks — reads of the
  /// target, or writes whose RMW sources include one — park until the
  /// owning stripe's recovery completes, then pay one normal access from
  /// the live (spare) locations. Healthy-chunk requests go straight to
  /// the disks.
  SimMetrics run(const std::vector<workload::StripeError>& errors,
                 const std::vector<workload::AppRequest>& app_trace = {});

 private:
  struct Worker;

  /// Advances one worker at simulated time `now`; returns the time of its
  /// next event, or nullopt when the worker has finished all stripes.
  std::optional<double> advance(Worker& w, double now, SimMetrics& metrics);

  void start_next_stripe(Worker& w, SimMetrics& metrics, double now);

  /// Invoked when a worker finishes a stripe (releases parked degraded
  /// application reads). Installed by run().
  std::function<void(std::uint64_t stripe, double now)> on_stripe_recovered_;
  /// verify_data mode: queues the chain fold that rebuilds `step.target`
  /// into the worker's verify batch (dependency barriers keep peel order).
  void queue_chunk_verify(Worker& w, const recovery::RecoveryStep& step);
  /// Dispatches the worker's pending verify folds as one batch and checks
  /// every rebuilt chunk against the ground-truth stripe.
  void flush_chunk_verifies(Worker& w);
  /// Points the worker at the (possibly memoized) request sequence for its
  /// current scheme. Memoization piggybacks on the scheme cache: the ops
  /// list is a pure function of (layout, scheme), so SchemeCache hits skip
  /// the per-stripe rebuild entirely.
  void assign_request_sequence(Worker& w);

  // ---- Fault path (active only when config_.faults.enabled()). ----
  /// Does a live spare copy of the chunk exist?
  bool spared_live(std::uint64_t key, double now) const;
  /// Plans (or re-plans) a stripe around an arbitrary outstanding lost
  /// set: configured scheme for fresh trace errors, peeling + Gauss
  /// fallback otherwise. Throws EscalationError when not decodable.
  void plan_fault_stripe(Worker& w, std::vector<codes::Cell> outstanding,
                         SimMetrics& metrics, bool replan, double now);
  /// A read hard-failed at time `t`: mark the cell lost and re-plan the
  /// stripe. Returns the worker's next event time.
  double handle_read_failure(Worker& w, codes::Cell cell, double t,
                             SimMetrics& metrics);
  /// Submits a rebuild read miss to its disk at `submit_t` (the request
  /// time, or a later throttle grant — see Worker::PendingRead) and returns
  /// the worker's next event time; hard failures escalate through
  /// handle_read_failure. Response time counts from `requested`.
  double finish_rebuild_read(Worker& w, codes::Cell cell, std::uint64_t lba,
                             int disk_id, bool from_spare, double requested,
                             double submit_t, SimMetrics& metrics);
  void verify_gauss_cells(Worker& w);
  std::vector<int> failed_disks_at(double now) const;

  const codes::Layout* layout_;
  const ArrayGeometry* geometry_;
  ReconstructionConfig config_;
  std::vector<Disk> disks_;
  std::unique_ptr<recovery::SchemeCache> scheme_cache_;
  /// Memoized request sequences keyed by scheme identity. The entry pins
  /// the scheme so the pointer key can never be reused by a new scheme.
  struct OpsEntry {
    std::shared_ptr<const recovery::RecoveryScheme> scheme;
    std::shared_ptr<const std::vector<recovery::ChunkOp>> ops;
  };
  std::unordered_map<const recovery::RecoveryScheme*, OpsEntry> ops_cache_;
  /// Points at a run()-local histogram while a run is in flight (null
  /// otherwise and whenever config_.observer is null).
  obs::Histogram* response_hist_ = nullptr;
  /// Points at a run()-local token bucket while a throttled run is in
  /// flight (null otherwise); advance() defers rebuild read misses
  /// through it.
  RebuildThrottle* throttle_ = nullptr;

  /// Set iff config_.faults.enabled(); pure function of (seed, label).
  std::optional<FaultPlan> fault_plan_;
  /// Run-scoped fault state, reset by run(). `spared_on_` maps chunk key
  /// -> disk holding its spare copy (presence == recovered at least once);
  /// the deque gives escalation-synthesized errors stable addresses.
  std::unique_ptr<FaultInjector> injector_;
  std::unordered_map<std::uint64_t, int> spared_on_;
  /// Spare copies killed by a later disk failure, queued per stripe for
  /// deterministic re-recovery by that stripe's next escalation pass.
  /// Entries are filtered through spared_live() at pass start, so a cell
  /// re-spared by an interim replan is not recovered twice.
  std::unordered_map<std::uint64_t, std::vector<codes::Cell>>
      respare_pending_;
  std::deque<workload::StripeError> escalation_storage_;
  std::unordered_set<const workload::StripeError*> escalation_errors_;
};

}  // namespace fbf::sim
