// Run-invariant validation shared by the SOR and DOR engines.
//
// Both reconstruction engines must obey the same conservation laws no
// matter which policy, scheme, disk model, or placement they simulate:
//
//  - every chain consumption is either a cache hit or a miss:
//      cache.hits + cache.misses == total_chunk_requests
//  - every recovery disk read is either planned up front (DOR's streaming
//    plan), a demand/re-read miss, or a fault-injected retry:
//      disk_reads == planned_disk_reads + cache.misses + fault.retries
//  - every recovered chunk is persisted exactly once:
//      disk_writes == chunks_recovered
//  - every foreground app request is either served at arrival or parked
//    and drained when its stripe's recovery completes, and every parked
//    request is a degraded read or a degraded write (writes park when the
//    target *or a parity cell of a chain through it* is damaged and
//    unrepaired — the damaged-parity rule):
//      app_requests == app_served + app_parked_drained
//      app_parked_drained == app_degraded_reads + app_degraded_writes
//
// With fault injection (sim/faults) the trace-conservation laws gain the
// injector's extra work — chunks_recovered covers fault.extra_lost_chunks
// and stripes_recovered covers fault.escalated_stripes — and all fault
// terms are zero when injection is disabled, so the laws reduce to their
// fault-free shape on the baseline path.
//  - no disk is busy past the reconstruction makespan, and the per-disk op
//    counts add up to the totals (recovery-only runs; foreground app
//    traffic shares the disks but is metered separately).
//
// Tests assert these after every engine run via validate_run(). The
// experiment drivers (benches/examples) get the same checks on demand:
// setting the FBF_VALIDATE environment variable to anything but "0" makes
// both engines validate each run() before returning, so any full-scale
// sweep can be replayed as a self-checking one.
#pragma once

#include <vector>

#include "sim/metrics.h"
#include "workload/errors.h"

namespace fbf::sim {

/// Internal-consistency laws on one run's metrics; throws CheckError with
/// the violated law on failure.
void validate_metrics(const SimMetrics& m);

/// validate_metrics plus conservation against the driving error trace
/// (every damaged stripe recovered, every lost chunk rebuilt and spared).
void validate_run(const SimMetrics& m,
                  const std::vector<workload::StripeError>& errors);

/// True when the FBF_VALIDATE environment variable enables per-run
/// validation inside the engines (cached on first call).
bool validation_enabled();

}  // namespace fbf::sim
