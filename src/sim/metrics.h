// Metric collection matching the paper's four evaluation metrics plus the
// FBF overhead measurement (Table IV).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/policy.h"
#include "util/stats.h"

namespace fbf::obs {
class Histogram;
class RunObserver;
}  // namespace fbf::obs

namespace fbf::sim {

struct SimMetrics {
  // Metric 1: cache hit ratio during reconstruction.
  cache::CacheStats cache;

  // Metric 2: total disk reads during recovery (== cache misses plus
  // re-reads of recovered chunks from the spare area).
  std::uint64_t disk_reads = 0;
  std::uint64_t disk_writes = 0;
  /// Reads scheduled up front by the DOR streaming plan (each distinct
  /// surviving chunk once, LBA order). Zero under SOR, whose reads are
  /// all demand misses; validate.h checks
  /// disk_reads == planned_disk_reads + cache.misses on both engines.
  std::uint64_t planned_disk_reads = 0;

  // Metric 3: per-request response time (cache lookup -> data ready).
  util::Accumulator response_ms;
  util::Reservoir response_reservoir{4096};

  // Metric 4: total reconstruction time (makespan incl. spare writes).
  double reconstruction_ms = 0.0;

  // Table IV: wall-clock cost of recovery-scheme + priority generation,
  // reported separately from simulated time so runs stay deterministic.
  double scheme_gen_wall_ms = 0.0;
  std::uint64_t schemes_generated = 0;
  std::uint64_t scheme_cache_hits = 0;

  std::uint64_t stripes_recovered = 0;
  std::uint64_t chunks_recovered = 0;
  std::uint64_t total_chunk_requests = 0;

  // Online-recovery extension: foreground application traffic.
  util::Accumulator app_response_ms;
  std::uint64_t app_requests = 0;
  /// Reads that landed on a damaged, not-yet-recovered chunk and had to
  /// wait for reconstruction — the user-visible window-of-vulnerability
  /// cost.
  std::uint64_t app_degraded_reads = 0;

  // Per-disk load: busy milliseconds and op counts, index = disk id. The
  // failed column's disk carries all spare writes and is usually the
  // bottleneck.
  std::vector<double> disk_busy_ms;
  std::vector<std::uint64_t> disk_ops;

  double hit_ratio() const { return cache.hit_ratio(); }

  std::string summary_line() const;
};

/// Exports a finished run's metrics into the observer's registry: integer
/// totals as `run.*` counters (summed across runs), derived ratios/latencies
/// as `label`-prefixed gauges, and the response-time distribution as a
/// merged histogram. `label` must be unique per grid point (see
/// core::obs_run_label) so concurrent sweep runs never race on the same
/// floating-point key — that is what keeps the export byte-deterministic.
/// No-op when `obs` is null; `response_hist` may be null.
void record_run(obs::RunObserver* obs, const std::string& label,
                const SimMetrics& m, const obs::Histogram* response_hist);

}  // namespace fbf::sim
