// Metric collection matching the paper's four evaluation metrics plus the
// FBF overhead measurement (Table IV).
#pragma once

#include <cstdint>
#include <vector>

#include "cache/policy.h"
#include "obs/registry.h"
#include "util/stats.h"

namespace fbf::obs {
class RunObserver;
}  // namespace fbf::obs

namespace fbf::sim {

/// Counters from the fault-injection layer (sim/faults/faults.h). All zero
/// — and `enabled` false — on the default no-fault path, where the export
/// and the conservation laws reduce to their pre-fault forms.
struct FaultStats {
  /// True when the run executed with a non-empty fault plan. Gates the
  /// `run.fault.*` export so fault-free metrics JSON is byte-identical to
  /// builds that predate the fault layer.
  bool enabled = false;

  std::uint64_t sector_errors = 0;      ///< latent-sector-error read failures
  std::uint64_t transient_failures = 0; ///< failed read attempts (pre-retry)
  std::uint64_t retries = 0;            ///< extra read attempts beyond the first
  std::uint64_t dead_disk_reads = 0;    ///< attempts that timed out on a failed disk
  std::uint64_t replans = 0;            ///< stripes re-planned around a new loss
  std::uint64_t gauss_fallbacks = 0;    ///< replans that needed the Gauss solver
  std::uint64_t disk_failures = 0;      ///< whole-disk failures injected
  std::uint64_t escalated_stripes = 0;  ///< stripes added by disk-failure escalation
  /// Chunk-loss events beyond the error trace: a surviving chunk lost to a
  /// URE or disk failure, or a spare copy lost with its disk. Each such
  /// chunk is recovered (again), so
  /// chunks_recovered == trace losses + extra_lost_chunks.
  std::uint64_t extra_lost_chunks = 0;
  /// Spare copies invalidated because a later disk failure killed the disk
  /// holding them. Each is also counted in extra_lost_chunks (the chunk is
  /// recovered again), so respared <= extra_lost_chunks.
  std::uint64_t respared = 0;
  std::uint64_t straggler_disks = 0;    ///< disks running with a service multiplier
};

/// Counters from the foreground write path (sim/foreground.h): the parity
/// -update planner, the dirty write-back cache, and the flush machinery.
/// All zero — and `enabled` false — when the write path is off, where the
/// export and the conservation laws reduce to their legacy forms.
struct WritePathStats {
  /// True when the run executed with a write-back cache configured. Gates
  /// the `run.write.*` export so write-free metrics JSON is byte-identical
  /// to builds that predate the write path.
  bool enabled = false;

  /// Recovery spare-area writes. Counted on every engine regardless of
  /// `enabled` (it is the legacy meaning of disk_writes) so the law
  /// disk_writes == spare_writes + write_backs + parity_updates holds on
  /// both the legacy and the write-back path, and
  /// spare_writes == chunks_recovered always.
  std::uint64_t spare_writes = 0;

  std::uint64_t rmw_plans = 0;      ///< writes served read-modify-write
  std::uint64_t rcw_plans = 0;      ///< writes served reconstruct-write
  std::uint64_t direct_plans = 0;   ///< parity-cell overwrites (no chains)
  /// Plans that skipped at least one damaged parity chain (degraded
  /// writes served inline instead of parking).
  std::uint64_t degraded_plans = 0;
  std::uint64_t plan_disk_reads = 0;   ///< planner source reads from disk
  std::uint64_t plan_cache_reads = 0;  ///< planner sources served by cache
  std::uint64_t app_read_hits = 0;     ///< app reads served from the cache
  std::uint64_t parity_updates = 0;    ///< parity chunks rewritten on disk

  // Dirty-line life cycle. Conservation laws (validate.h):
  //   dirty_installed == flushed + lost_dirty   (end of run)
  //   flushed == write_backs
  std::uint64_t dirty_installed = 0;  ///< clean->dirty transitions
  std::uint64_t flushed = 0;          ///< dirty lines drained for write-back
  std::uint64_t write_backs = 0;      ///< deferred target writes hitting disk
  std::uint64_t lost_dirty = 0;       ///< dirty lines lost with a dead disk
  std::uint64_t evicted_dirty = 0;    ///< dirty lines evicted (write-back)
  std::uint64_t retained_dirty = 0;   ///< favorable lines kept at a flush
  std::uint64_t flush_ticks = 0;      ///< periodic flush events fired
  std::uint64_t write_hits = 0;       ///< write() found the line resident
  std::uint64_t write_misses = 0;     ///< write() allocated the line
};

struct SimMetrics {
  // Metric 1: cache hit ratio during reconstruction.
  cache::CacheStats cache;

  // Metric 2: total disk reads during recovery (== cache misses plus
  // re-reads of recovered chunks from the spare area).
  std::uint64_t disk_reads = 0;
  std::uint64_t disk_writes = 0;
  /// Reads scheduled up front by the DOR streaming plan (each distinct
  /// surviving chunk once, LBA order). Zero under SOR, whose reads are
  /// all demand misses; validate.h checks
  /// disk_reads == planned_disk_reads + cache.misses on both engines.
  std::uint64_t planned_disk_reads = 0;

  // Metric 3: per-request response time (cache lookup -> data ready).
  util::Accumulator response_ms;
  util::Reservoir response_reservoir{4096};

  // Metric 4: total reconstruction time (makespan incl. spare writes).
  double reconstruction_ms = 0.0;

  // Table IV: wall-clock cost of recovery-scheme + priority generation,
  // reported separately from simulated time so runs stay deterministic.
  double scheme_gen_wall_ms = 0.0;
  std::uint64_t schemes_generated = 0;
  std::uint64_t scheme_cache_hits = 0;

  std::uint64_t stripes_recovered = 0;
  std::uint64_t chunks_recovered = 0;
  std::uint64_t total_chunk_requests = 0;

  // Online-recovery extension: foreground application traffic.
  util::Accumulator app_response_ms;
  std::uint64_t app_requests = 0;
  /// Reads that landed on a damaged, not-yet-recovered chunk and had to
  /// wait for reconstruction — the user-visible window-of-vulnerability
  /// cost.
  std::uint64_t app_degraded_reads = 0;
  /// Writes whose target — or a parity cell on a chain through it — was
  /// damaged and not yet recovered: the read-modify-write cannot read its
  /// sources, so the write parks like a degraded read.
  std::uint64_t app_degraded_writes = 0;
  /// Requests served directly at arrival (no parking). Conservation law:
  /// app_requests == app_served + app_parked_drained, and
  /// app_parked_drained == app_degraded_reads + app_degraded_writes.
  std::uint64_t app_served = 0;
  /// Parked requests released when their stripe's recovery completed.
  std::uint64_t app_parked_drained = 0;
  /// Requests that completed after arrival + deadline_ms (deadline > 0).
  std::uint64_t app_deadline_miss = 0;
  /// Fault path: app reads whose target was unreadable (URE / dead disk /
  /// retries exhausted) and was rebuilt on the fly from one chain.
  std::uint64_t app_reconstructed_reads = 0;
  /// Full response-time distribution for app requests; the p99/p999 SLO
  /// gauges are derived from its log2 buckets at export time.
  obs::Histogram app_response_hist;
  /// Fault counters for the foreground path. App reads run through their
  /// own FaultInjector (same plan, separate nonce stream and stats), so
  /// rebuild-side conservation laws — and the rebuild fault stream itself
  /// — are untouched by app traffic.
  FaultStats app_fault;

  // Fault-injection accounting (zeroed/disabled unless the run carried a
  // fault plan); see sim/faults/faults.h.
  FaultStats fault;

  // Foreground write path (planner + dirty write-back cache); spare_writes
  // is live on every run, the rest only when the write path is enabled.
  WritePathStats write;

  // Engine-core instrumentation. Deliberately NOT exported by record_run:
  // the metrics JSON must stay byte-identical across event-queue
  // implementations. bench_engine reads these directly, and the fault
  // tests assert event_queue_regrowths == 0 to pin the reservation bounds.
  std::uint64_t engine_events = 0;          ///< events popped by the run loop
  std::uint64_t event_queue_regrowths = 0;  ///< pushes past a shard's reserve

  // Per-disk load: busy milliseconds and op counts, index = disk id. The
  // failed column's disk carries all spare writes and is usually the
  // bottleneck.
  std::vector<double> disk_busy_ms;
  std::vector<std::uint64_t> disk_ops;

  double hit_ratio() const { return cache.hit_ratio(); }

  std::string summary_line() const;
};

/// Exports a finished run's metrics into the observer's registry: integer
/// totals as `run.*` counters (summed across runs), derived ratios/latencies
/// as `label`-prefixed gauges, and the response-time distribution as a
/// merged histogram. `label` must be unique per grid point (see
/// core::obs_run_label) so concurrent sweep runs never race on the same
/// floating-point key — that is what keeps the export byte-deterministic.
/// No-op when `obs` is null; `response_hist` may be null.
void record_run(obs::RunObserver* obs, const std::string& label,
                const SimMetrics& m, const obs::Histogram* response_hist);

}  // namespace fbf::sim
