// Online-recovery foreground layer shared by the SOR and DOR engines:
// open-loop application requests contend with reconstruction for the same
// analytic disks while recovery optionally yields under a token-bucket
// throttle (DESIGN.md §13).
//
// Serving rules (the honest degraded-mode model this layer pins down):
//
//  - A read whose target chunk is damaged and not yet recovered *parks*
//    until the owning stripe's recovery completes, then pays one normal
//    access from the spare area (app_degraded_reads).
//  - A write is a read-modify-write: the target plus every parity cell on
//    a chain through it is re-read and rewritten. If the target or any of
//    those parity cells is damaged and unrepaired, the RMW has no valid
//    sources, so the write parks alongside degraded reads
//    (app_degraded_writes) and drains on stripe recovery.
//  - With the write path enabled (WritePathConfig::cache_chunks > 0) the
//    legacy RMW is replaced end to end: each write runs through the
//    parity-update planner (recovery/write_plan.h), which picks RMW or RCW
//    by minimum disk I/O given what the write-back cache already holds,
//    pays the planned source reads and parity updates synchronously, and
//    defers the target's own data write as a dirty cache line. Dirty lines
//    reach disk on eviction, on periodic flush ticks (the engines schedule
//    them), and at the terminal flush; favorable lines — blocks of stripes
//    under repair, dictionary priority 3 — are retained across periodic
//    flushes when retain_favorable is set, so recovery reads keep hitting
//    them. Chains whose parity is damaged are skipped (the rebuild
//    regenerates the parity), which turns the legacy "park on damaged
//    parity" rule into a served degraded write; only a damaged target, or
//    a plan whose sources are damaged and uncached, still parks.
//  - Once a damaged chunk is repaired, *all* its I/O — reads, RMW data
//    and parity accesses — is remapped to the spare location; the original
//    sector is dead and never touched again.
//  - With fault injection active, app reads run through their own
//    FaultInjector (same plan, separate nonce stream and FaultStats):
//    UREs and dead disks apply to foreground reads too, and a hard read
//    failure falls back to a one-level on-the-fly chain reconstruction
//    (or parks, if the stripe is still under repair). Stragglers slow app
//    I/O implicitly via the per-disk service multiplier.
//
// All serving is synchronous against the analytic disk model (submit
// returns the completion time), so the engines only schedule arrival
// events; parked requests are re-served from the stripe-recovery hook.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <memory>

#include "cache/policy.h"
#include "codes/layout.h"
#include "sim/array_geometry.h"
#include "sim/disk.h"
#include "sim/faults/faults.h"
#include "sim/metrics.h"
#include "workload/app_trace.h"
#include "workload/errors.h"

namespace fbf::sim {

/// Recovery-throttling policy: rebuild reads yield to user reads by
/// drawing from a token bucket refilled at `rebuild_reads_per_sec`.
/// Disabled (rate 0) by default, which keeps recovery-only runs
/// byte-identical to builds that predate the throttle.
struct ThrottleConfig {
  double rebuild_reads_per_sec = 0.0;  ///< 0 = unthrottled
  int burst = 16;                      ///< bucket depth (allowed burst)

  bool enabled() const { return rebuild_reads_per_sec > 0.0; }
};

/// Foreground write-back cache configuration. Disabled by default
/// (cache_chunks == 0), which keeps every run byte-identical to builds
/// that predate the write path: writes take the legacy synchronous RMW,
/// no flush events are scheduled, and no write metrics are exported.
struct WritePathConfig {
  std::size_t cache_chunks = 0;     ///< write-back cache capacity; 0 = off
  double flush_interval_ms = 50.0;  ///< periodic dirty flush; <= 0 disables
  /// Retain favorable dirty lines (dictionary priority >= 2: their stripe
  /// was under repair at write time) across periodic flushes — the FBF
  /// write-back policy. The terminal flush always drains everything.
  bool retain_favorable = true;
  cache::PolicyId policy = cache::PolicyId::Fbf;
  double cache_access_ms = 0.5;     ///< same controller-RAM cost as reads

  bool enabled() const { return cache_chunks > 0; }
};

/// Deterministic token bucket over simulated time. acquire() must be
/// called with non-decreasing `now` (the event loops pop in time order);
/// it returns the earliest time >= now the next rebuild read may be
/// submitted. When the grant lies in the future the engines *defer* the
/// disk submission to the grant time (SOR: Worker::PendingRead, DOR: a
/// ThrottledSubmit event) instead of future-dating it — a future-dated
/// FCFS reservation would jump ahead of app requests that arrive earlier
/// in simulated time, inverting the priority the throttle exists to give.
class RebuildThrottle {
 public:
  explicit RebuildThrottle(const ThrottleConfig& config);

  double acquire(double now_ms);

 private:
  double interval_ms_;
  double burst_;
  double tokens_;
  double last_ms_ = 0.0;
};

/// Per-run foreground server. Owns the parking state and all app-side
/// metrics; the engines forward arrival events and stripe-recovery
/// completions and otherwise never touch the app path.
class ForegroundServer {
 public:
  /// `spare_disk_override(key)` maps a chunk key to the disk its live
  /// spare copy actually landed on under faults (SOR: spared_on_, DOR:
  /// ChunkInfo::spare_disk); return -1 for the geometry's default choice.
  /// Pass nullptr when no fault path is active. `app_injector` may be
  /// null (fault-free); it must be a *separate* injector instance from the
  /// rebuild one so app retries never enter the rebuild conservation laws.
  /// `write_config` enables the planner + write-back path when
  /// write_config.enabled() and the trace is non-empty; otherwise writes
  /// take the legacy synchronous RMW and the server carries no cache.
  ForegroundServer(const codes::Layout& layout, const ArrayGeometry& geometry,
                   std::vector<Disk>& disks,
                   const std::vector<workload::StripeError>& errors,
                   const std::vector<workload::AppRequest>& trace,
                   SimMetrics& metrics, FaultInjector* app_injector,
                   std::function<int(std::uint64_t key)> spare_disk_override,
                   const WritePathConfig& write_config = {});

  /// Handles the arrival of trace[index] at simulated time `now`.
  void on_arrival(std::size_t index, double now);

  /// True when the write-back cache is live for this run (write path
  /// configured AND the trace is non-empty). Engines gate flush-tick
  /// scheduling on this.
  bool write_path_active() const { return write_cache_ != nullptr; }

  /// Periodic flush: drains dirty lines (favorable ones retained when
  /// configured) and submits their write-backs at `now`.
  void on_flush_tick(double now);

  /// A whole-disk failure at `now`: dirty lines whose write-back target
  /// sat on the dead disk are dropped (lost_dirty) — the rebuild will
  /// regenerate those chunks from parity. The cache itself is controller
  /// RAM and survives; only lines with nowhere left to land are lost.
  void on_disk_failed(int disk, double now);

  /// Terminal flush at end of run: every remaining dirty line (favorable
  /// included) is written back at `now`, and the cache-side write counters
  /// are folded into the run metrics. Call before assert_drained().
  void finalize(double now);

  /// Releases requests parked on `stripe`; call when its recovery (the
  /// traced losses) completes. Idempotent per stripe.
  void on_stripe_recovered(std::uint64_t stripe, double now);

  /// Chunk keys of every traced loss (shared with the engines' own
  /// damaged-chunk bookkeeping).
  const std::unordered_set<std::uint64_t>& damaged_keys() const {
    return damaged_keys_;
  }

  /// End-of-run sanity: every parked request must have drained.
  void assert_drained() const;

 private:
  struct Location {
    int disk = 0;
    std::uint64_t lba = 0;
  };
  struct Parked {
    std::size_t index = 0;
    double arrival_ms = 0.0;
  };

  /// Physical home of (stripe, cell): the spare copy for damaged chunks
  /// (the original sector is dead), the original location otherwise.
  Location locate(std::uint64_t stripe, codes::Cell cell) const;
  bool damaged_unrepaired(std::uint64_t stripe, codes::Cell cell) const;
  bool stripe_under_repair(std::uint64_t stripe) const;
  bool must_park(const workload::AppRequest& req) const;
  void park(std::size_t index, double arrival, bool is_read);
  /// Serves a read starting at `start`; false means the target hard-failed
  /// while its stripe is still under repair (caller parks the request).
  bool serve_read(const workload::AppRequest& req, double start,
                  double arrival);
  /// Serves a write starting at `start`; false means the planner found no
  /// feasible source set (damaged + uncached), so the caller parks. The
  /// legacy path always serves.
  bool serve_write(const workload::AppRequest& req, double start,
                   double arrival);
  /// Planner-driven write (write path active): synchronous source reads
  /// and parity updates, target deferred as a dirty line.
  bool serve_write_planned(const workload::AppRequest& req, double start,
                           double arrival);
  void serve_write_legacy(const workload::AppRequest& req, double start,
                          double arrival);
  /// Submits the deferred data write of one dirty line at `now`.
  void write_back(cache::Key key, double now);
  /// Write-backs for lines the cache evicted since the last drain.
  void drain_evicted(double now);
  /// Dictionary priority for a chunk of `stripe`: favorable (3) while the
  /// stripe is under repair — its blocks feed recovery — else 1.
  int write_priority(std::uint64_t stripe) const {
    return stripe_under_repair(stripe) ? 3 : 1;
  }
  /// Fault fallback: rebuilds the unreadable target from the survivors of
  /// one chain through it (plain reads — a single-level reconstruction).
  double reconstruct_read(const workload::AppRequest& req, double start);
  void finish(double done, double arrival, double deadline_ms);

  const codes::Layout* layout_;
  const ArrayGeometry* geometry_;
  std::vector<Disk>* disks_;
  const std::vector<workload::AppRequest>* trace_;
  SimMetrics* metrics_;
  FaultInjector* injector_;
  std::function<int(std::uint64_t)> spare_disk_override_;

  WritePathConfig write_config_;
  /// Write-back cache; null unless the write path is active. Lives here —
  /// not in the engines — so both engines share one implementation and the
  /// recovery caches stay read-only.
  std::unique_ptr<cache::CachePolicy> write_cache_;
  std::vector<cache::core::DirtyLine> dirty_scratch_;

  std::unordered_set<std::uint64_t> damaged_keys_;
  std::unordered_set<std::uint64_t> damaged_stripes_;
  std::unordered_set<std::uint64_t> repaired_stripes_;
  std::unordered_map<std::uint64_t, std::vector<Parked>> parked_by_stripe_;
  std::size_t parked_count_ = 0;
};

}  // namespace fbf::sim
