// Address mapping from stripe-local cells to disks and chunk LBAs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "codes/layout.h"

namespace fbf::sim {

/// Where recovered chunks are rewritten.
enum class SparePlacement : std::uint8_t {
  /// Sector remapping: the spare region of the disk that held the chunk.
  /// All recovery writes then land on the failed disk, which becomes the
  /// reconstruction bottleneck regardless of cache policy.
  SameDisk,
  /// Distributed (declustered) sparing: spare space is spread over the
  /// whole array and each recovered chunk goes to a rotating peer disk —
  /// standard practice in modern arrays (GPFS declustered RAID, DDP).
  Distributed,
};

/// How a stripe's columns are placed onto the physical disk pool.
enum class LayoutStrategy : std::uint8_t {
  /// Identity: column c of every stripe lives on disk c. Requires
  /// pool == layout.cols(); reproduces the pre-strategy mapping exactly.
  Naive,
  /// RAID-5 style rotation: disk = (col + stripe) % pool. With
  /// pool == layout.cols() this is the historical `rotate_columns` path.
  Rotate,
  /// Parity declustering via a t-design: stripe s picks the k-subset of
  /// the pool with colexicographic rank s % C(n, k) (the full design),
  /// then rotates its columns within that block. Over one design sweep
  /// every disk carries exactly C(n-1, k-1) blocks and every disk pair
  /// co-occurs in exactly C(n-2, k-2) blocks — uniform rebuild overlap.
  TDesignDecluster,
  /// D3 deterministic distribution: stripes advance an offset through the
  /// pool and each round applies an orthogonal permutation (multiplier
  /// coprime to n), disk = (offset + col * unit) % pool. Perfectly
  /// balanced on every full n-stripe round.
  D3,
};

/// Short lowercase name ("naive", "rotate", "tdesign", "d3").
const char* to_string(LayoutStrategy s);

/// Parses a strategy name as printed by to_string. Returns false (and
/// leaves `out` untouched) on an unknown name.
bool layout_strategy_from_string(const std::string& name,
                                 LayoutStrategy& out);

/// Maps (stripe, cell) to (disk, LBA) and to the global chunk key used by
/// the buffer cache. The disk pool may be wider than a stripe
/// (pool_disks >= layout.cols()); the LayoutStrategy decides which pool
/// disks a stripe's columns occupy.
class ArrayGeometry {
 public:
  /// `pool_disks == 0` means "exactly layout.cols()" (no declustering).
  ArrayGeometry(const codes::Layout& layout, std::uint64_t num_stripes,
                LayoutStrategy strategy, int pool_disks,
                SparePlacement spare = SparePlacement::SameDisk);

  /// Legacy two-state constructor kept for existing call sites:
  /// rotate_columns=false is Naive, true is Rotate, pool == layout.cols().
  ArrayGeometry(const codes::Layout& layout, std::uint64_t num_stripes,
                bool rotate_columns = false,
                SparePlacement spare = SparePlacement::SameDisk)
      : ArrayGeometry(layout, num_stripes,
                      rotate_columns ? LayoutStrategy::Rotate
                                     : LayoutStrategy::Naive,
                      /*pool_disks=*/0, spare) {}

  const codes::Layout& layout() const { return *layout_; }
  std::uint64_t num_stripes() const { return num_stripes_; }
  int num_disks() const { return pool_disks_; }
  LayoutStrategy strategy() const { return strategy_; }
  SparePlacement spare_placement() const { return spare_; }

  // The mapping accessors are defined inline: the simulators call them
  // once per planned read, re-read, and spare write, where an opaque
  // cross-TU call costs as much as the address arithmetic itself. The
  // t-design unranking is the exception (an O(pool) loop) and stays out
  // of line.

  int disk_of(std::uint64_t stripe, codes::Cell c) const {
    FBF_CHECK(layout_->in_bounds(c), "cell out of bounds");
    switch (strategy_) {
      case LayoutStrategy::Naive:
        return c.col;
      case LayoutStrategy::Rotate:
        return static_cast<int>(
            (static_cast<std::uint64_t>(c.col) + stripe) %
            static_cast<std::uint64_t>(pool_disks_));
      case LayoutStrategy::D3: {
        const auto n = static_cast<std::uint64_t>(pool_disks_);
        const std::uint64_t round = stripe / n;
        const std::uint64_t offset = stripe % n;
        const std::uint64_t unit =
            d3_units_[static_cast<std::size_t>(round % d3_units_.size())];
        return static_cast<int>(
            (offset + static_cast<std::uint64_t>(c.col) * unit) % n);
      }
      case LayoutStrategy::TDesignDecluster:
        return tdesign_disk_of(stripe, c.col);
    }
    return c.col;  // unreachable
  }

  /// Disk holding the spare copy of a recovered chunk (== disk_of under
  /// SameDisk placement). Deliberately fault-agnostic: live routing
  /// around failed disks is the FaultInjector's job, and the engines
  /// assert (under FBF_VALIDATE) that no spare write reaches a dead disk.
  int spare_disk_of(std::uint64_t stripe, codes::Cell c) const;

  /// Chunk LBA of a cell inside the data region of its disk.
  std::uint64_t lba_of(std::uint64_t stripe, codes::Cell c) const {
    FBF_CHECK(stripe < num_stripes_, "stripe out of range");
    return stripe * static_cast<std::uint64_t>(layout_->rows()) +
           static_cast<std::uint64_t>(c.row);
  }

  /// LBA in the spare region (beyond the data region) where a recovered
  /// chunk is rewritten. Under SameDisk this is sector remapping on the
  /// home disk. Under Distributed sparing the spare disk reserves one
  /// region per *home* disk: chunks rerouted from different homes can
  /// share a spare disk, and keying the region by home disk keeps their
  /// (disk, LBA) pairs collision-free — a single shared region would
  /// alias chunks that agree on (stripe, row) but not on home.
  std::uint64_t spare_lba_of(std::uint64_t stripe, codes::Cell c) const {
    return spare_lba_from(disk_of(stripe, c), lba_of(stripe, c));
  }

  /// spare_lba_of for callers that already cached the home disk and data
  /// LBA (the DOR fast path keeps both in its 64-byte chunk records).
  std::uint64_t spare_lba_from(int home_disk, std::uint64_t lba) const {
    if (spare_ == SparePlacement::SameDisk) {
      return disk_capacity_chunks() + lba;
    }
    return disk_capacity_chunks() *
               (1 + static_cast<std::uint64_t>(home_disk)) +
           lba;
  }

  /// Global cache key of a chunk.
  std::uint64_t chunk_key(std::uint64_t stripe, codes::Cell c) const {
    return stripe * static_cast<std::uint64_t>(layout_->num_cells()) +
           static_cast<std::uint64_t>(layout_->cell_index(c));
  }

  /// Chunks a disk's data region holds (for detailed-model seek bounds).
  std::uint64_t disk_capacity_chunks() const {
    return num_stripes_ * static_cast<std::uint64_t>(layout_->rows());
  }

 private:
  int tdesign_disk_of(std::uint64_t stripe, int col) const;
  std::uint64_t binom(int n, int k) const {
    return binom_[static_cast<std::size_t>(n) *
                      static_cast<std::size_t>(layout_->cols() + 1) +
                  static_cast<std::size_t>(k)];
  }

  const codes::Layout* layout_;
  std::uint64_t num_stripes_;
  LayoutStrategy strategy_;
  int pool_disks_;
  SparePlacement spare_;
  /// Pascal table binom_[n * (k_max+1) + k] = C(n, k), n <= pool,
  /// k <= layout.cols(). Only filled for TDesignDecluster.
  std::vector<std::uint64_t> binom_;
  std::uint64_t tdesign_blocks_ = 0;  ///< C(pool, cols)
  /// Multipliers coprime to the pool size, cycled per D3 round. Only
  /// filled for D3.
  std::vector<std::uint64_t> d3_units_;
};

}  // namespace fbf::sim
