// Address mapping from stripe-local cells to disks and chunk LBAs.
#pragma once

#include <cstdint>

#include "codes/layout.h"

namespace fbf::sim {

/// Where recovered chunks are rewritten.
enum class SparePlacement : std::uint8_t {
  /// Sector remapping: the spare region of the disk that held the chunk.
  /// All recovery writes then land on the failed disk, which becomes the
  /// reconstruction bottleneck regardless of cache policy.
  SameDisk,
  /// Distributed (declustered) sparing: spare space is spread over the
  /// whole array and each recovered chunk goes to a rotating peer disk —
  /// standard practice in modern arrays (GPFS declustered RAID, DDP).
  Distributed,
};

/// Maps (stripe, cell) to (disk, LBA) and to the global chunk key used by
/// the buffer cache. Optionally rotates columns across stripes (RAID-5
/// style rotation) so that parity-heavy logical columns do not pin one
/// physical disk.
class ArrayGeometry {
 public:
  ArrayGeometry(const codes::Layout& layout, std::uint64_t num_stripes,
                bool rotate_columns = false,
                SparePlacement spare = SparePlacement::SameDisk);

  const codes::Layout& layout() const { return *layout_; }
  std::uint64_t num_stripes() const { return num_stripes_; }
  int num_disks() const { return layout_->cols(); }

  // The mapping accessors are defined inline: the simulators call them
  // once per planned read, re-read, and spare write, where an opaque
  // cross-TU call costs as much as the address arithmetic itself.

  int disk_of(std::uint64_t stripe, codes::Cell c) const {
    FBF_CHECK(layout_->in_bounds(c), "cell out of bounds");
    if (!rotate_columns_) {
      return c.col;
    }
    return static_cast<int>(
        (static_cast<std::uint64_t>(c.col) + stripe) %
        static_cast<std::uint64_t>(layout_->cols()));
  }

  /// Disk holding the spare copy of a recovered chunk (== disk_of under
  /// SameDisk placement).
  int spare_disk_of(std::uint64_t stripe, codes::Cell c) const;

  /// Chunk LBA of a cell inside the data region of its disk.
  std::uint64_t lba_of(std::uint64_t stripe, codes::Cell c) const {
    FBF_CHECK(stripe < num_stripes_, "stripe out of range");
    return stripe * static_cast<std::uint64_t>(layout_->rows()) +
           static_cast<std::uint64_t>(c.row);
  }

  /// LBA in the spare region (beyond the data region) where a recovered
  /// chunk is rewritten — sector remapping for partial errors.
  std::uint64_t spare_lba_of(std::uint64_t stripe, codes::Cell c) const {
    return disk_capacity_chunks() + lba_of(stripe, c);
  }

  /// Global cache key of a chunk.
  std::uint64_t chunk_key(std::uint64_t stripe, codes::Cell c) const {
    return stripe * static_cast<std::uint64_t>(layout_->num_cells()) +
           static_cast<std::uint64_t>(layout_->cell_index(c));
  }

  /// Chunks a disk's data region holds (for detailed-model seek bounds).
  std::uint64_t disk_capacity_chunks() const {
    return num_stripes_ * static_cast<std::uint64_t>(layout_->rows());
  }

 private:
  const codes::Layout* layout_;
  std::uint64_t num_stripes_;
  bool rotate_columns_;
  SparePlacement spare_;
};

}  // namespace fbf::sim
