// Sharded discrete-event queue: per-shard binary min-heaps merged by an
// N-way tournament tree over the shard heads.
//
// Both engines key events by a (time, seq) pair whose comparator is a
// strict total order (seq is unique), so *any* correct min-queue pops the
// exact same global event sequence. Sharding exploits the engines'
// structure: SOR holds at most one pending event per worker and DOR at
// most one in-flight read per disk, so most shards are one-element heaps
// whose push/pop is O(1) and the only log factor is the tournament replay
// over shard heads — empty shards cost nothing. A bulk shard absorbs the
// event classes without a per-entity invariant (app arrivals, spare
// writes, disk failures).
//
// Setting FBF_GLOBAL_EVENT_HEAP=1 collapses every shard onto shard 0,
// which is exactly the single global binary heap the engines used before
// sharding; CI diffs sharded vs. forced-global outputs byte for byte to
// prove the merge preserves the total order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "util/check.h"

namespace fbf::sim {

/// True when FBF_GLOBAL_EVENT_HEAP is set (and not "0"): every
/// ShardedEventQueue then runs with a single shard, i.e. one global
/// binary heap. Read once and cached, like FBF_VALIDATE.
bool forced_global_event_heap();

/// Min-queue over `Event`s with `operator>` defining a strict total order
/// (ties broken by a unique sequence number). Not thread-safe.
template <typename Event>
class ShardedEventQueue {
 public:
  explicit ShardedEventQueue(std::size_t shards)
      : single_(forced_global_event_heap()) {
    FBF_CHECK(shards >= 1, "event queue needs at least one shard");
    if (single_) {
      shards = 1;
    }
    heaps_.resize(shards);
    reserved_.assign(shards, 0);
    leaves_ = 1;
    while (leaves_ < shards) {
      leaves_ <<= 1;
    }
    tree_.assign(2 * leaves_, kEmpty);
    heads_.resize(leaves_);
  }

  std::size_t num_shards() const { return heaps_.size(); }

  /// Grows shard `shard`'s reservation by `n` events. Additive so callers
  /// can account independent event classes separately; under
  /// FBF_GLOBAL_EVENT_HEAP all reservations land on shard 0, reproducing
  /// the global bound.
  void reserve(std::size_t shard, std::size_t n) {
    const std::size_t s = map(shard);
    reserved_[s] += n;
    heaps_[s].reserve(reserved_[s]);
  }

  void push(std::size_t shard, const Event& ev) {
    const std::size_t s = map(shard);
    auto& h = heaps_[s];
    if (h.size() == h.capacity()) {
      ++regrowths_;  // reservation breached: vector growth (amortized)
    }
    // The tournament only sees shard heads: a push that does not displace
    // the head leaves every tree node valid, so the replay is skipped.
    const bool displaces_head = h.empty() || h.front() > ev;
    h.push_back(ev);
    std::push_heap(h.begin(), h.end(), std::greater<Event>{});
    ++size_;
    if (displaces_head) {
      replay(s);
    }
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// Pops the globally earliest event (the tournament winner's head).
  Event pop() {
    FBF_CHECK(size_ > 0, "pop from empty event queue");
    const std::uint32_t s = tree_[1];
    auto& h = heaps_[s];
    std::pop_heap(h.begin(), h.end(), std::greater<Event>{});
    Event ev = std::move(h.back());
    h.pop_back();
    --size_;
    replay(s);
    return ev;
  }

  /// The globally earliest event without removing it: the tournament
  /// winner's cached head, so O(1) with no heap traffic. The DOR service
  /// cursors lean on this — an engine that just computed an event's
  /// timestamp can peek to learn whether anything else is due first and,
  /// if not, process the event inline without ever pushing it.
  const Event& peek() const {
    FBF_CHECK(size_ > 0, "peek at empty event queue");
    return heads_[tree_[1]];
  }

  /// Pushes past a shard's reservation observed so far (each one a vector
  /// regrowth). Zero on runs whose per-shard bounds are exact.
  std::uint64_t regrowths() const { return regrowths_; }

 private:
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  std::size_t map(std::size_t shard) const {
    if (single_) {
      return 0;
    }
    FBF_CHECK(shard < heaps_.size(), "event shard out of range");
    return shard;
  }

  /// a precedes b in the total order (exactly one of a>b / b>a holds for
  /// distinct events, and two shard heads are always distinct). Compares
  /// the contiguous head cache, not the scattered heap vectors: with one
  /// pending event per worker/reader shard the heaps are all single
  /// elements and the replay compares dominate, so keeping the heads in
  /// one array is what makes the tournament cache-resident.
  bool earlier(std::uint32_t a, std::uint32_t b) const {
    return heads_[b] > heads_[a];
  }

  /// Re-seeds shard `s`'s leaf (refreshing its cached head) and replays
  /// its root path: O(log shards) head comparisons.
  void replay(std::size_t s) {
    std::size_t node = leaves_ + s;
    if (heaps_[s].empty()) {
      tree_[node] = kEmpty;
    } else {
      tree_[node] = static_cast<std::uint32_t>(s);
      heads_[s] = heaps_[s].front();
    }
    while (node > 1) {
      node >>= 1;
      const std::uint32_t l = tree_[2 * node];
      const std::uint32_t r = tree_[2 * node + 1];
      if (l == kEmpty) {
        tree_[node] = r;
      } else if (r == kEmpty) {
        tree_[node] = l;
      } else {
        tree_[node] = earlier(l, r) ? l : r;
      }
    }
  }

  bool single_ = false;
  std::vector<std::vector<Event>> heaps_;
  /// heads_[s] mirrors heaps_[s].front() whenever shard s is non-empty
  /// (leaf == kEmpty otherwise); contiguous so tournament compares never
  /// chase heap-vector pointers.
  std::vector<Event> heads_;
  std::vector<std::size_t> reserved_;
  /// Winner tree: leaves_ is the shard count rounded up to a power of two;
  /// leaf i sits at index leaves_+i, the overall winner at index 1 (index
  /// 0 unused). Nodes hold winning shard ids, kEmpty for empty subtrees.
  std::size_t leaves_ = 1;
  std::vector<std::uint32_t> tree_;
  std::size_t size_ = 0;
  std::uint64_t regrowths_ = 0;
};

}  // namespace fbf::sim
