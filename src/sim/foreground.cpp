#include "sim/foreground.h"

#include <algorithm>

#include "util/check.h"

namespace fbf::sim {

RebuildThrottle::RebuildThrottle(const ThrottleConfig& config)
    : interval_ms_(1000.0 / config.rebuild_reads_per_sec),
      burst_(static_cast<double>(config.burst)),
      tokens_(static_cast<double>(config.burst)) {
  FBF_CHECK(config.rebuild_reads_per_sec > 0.0,
            "throttle rate must be positive (0 disables the throttle)");
  FBF_CHECK(config.burst >= 1, "throttle burst must be at least 1");
}

double RebuildThrottle::acquire(double now_ms) {
  // last_ms_ may sit in the future after a deferred grant; only elapsed
  // time refills the bucket.
  if (now_ms > last_ms_) {
    tokens_ = std::min(burst_, tokens_ + (now_ms - last_ms_) / interval_ms_);
    last_ms_ = now_ms;
  }
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return now_ms;
  }
  // The next token is minted (and immediately spent) at `grant`.
  const double grant = last_ms_ + (1.0 - tokens_) * interval_ms_;
  tokens_ = 0.0;
  last_ms_ = grant;
  return grant;
}

ForegroundServer::ForegroundServer(
    const codes::Layout& layout, const ArrayGeometry& geometry,
    std::vector<Disk>& disks, const std::vector<workload::StripeError>& errors,
    const std::vector<workload::AppRequest>& trace, SimMetrics& metrics,
    FaultInjector* app_injector,
    std::function<int(std::uint64_t)> spare_disk_override)
    : layout_(&layout),
      geometry_(&geometry),
      disks_(&disks),
      trace_(&trace),
      metrics_(&metrics),
      injector_(app_injector),
      spare_disk_override_(std::move(spare_disk_override)) {
  // The damage indexes exist to classify app I/O; with no trace nothing
  // ever consults them, and building them costs two hash-set inserts per
  // lost chunk — measurable against a recovery-only macro bench.
  if (trace.empty()) {
    return;
  }
  for (const workload::StripeError& e : errors) {
    damaged_stripes_.insert(e.stripe);
    for (const codes::Cell& c : e.error.cells()) {
      damaged_keys_.insert(geometry_->chunk_key(e.stripe, c));
    }
  }
}

ForegroundServer::Location ForegroundServer::locate(std::uint64_t stripe,
                                                    codes::Cell cell) const {
  const std::uint64_t key = geometry_->chunk_key(stripe, cell);
  if (damaged_keys_.count(key) == 0) {
    return Location{geometry_->disk_of(stripe, cell),
                    geometry_->lba_of(stripe, cell)};
  }
  // Damaged chunks live in the spare area; the original sector is dead.
  int disk = spare_disk_override_ ? spare_disk_override_(key) : -1;
  if (disk < 0) {
    disk = geometry_->spare_disk_of(stripe, cell);
  }
  return Location{disk, geometry_->spare_lba_of(stripe, cell)};
}

bool ForegroundServer::damaged_unrepaired(std::uint64_t stripe,
                                          codes::Cell cell) const {
  return damaged_keys_.count(geometry_->chunk_key(stripe, cell)) > 0 &&
         repaired_stripes_.count(stripe) == 0;
}

bool ForegroundServer::stripe_under_repair(std::uint64_t stripe) const {
  return damaged_stripes_.count(stripe) > 0 &&
         repaired_stripes_.count(stripe) == 0;
}

bool ForegroundServer::must_park(const workload::AppRequest& req) const {
  if (damaged_unrepaired(req.stripe, req.cell)) {
    return true;  // reads: data gone; writes: RMW cannot read its target
  }
  if (!req.is_read && layout_->kind(req.cell) == codes::CellKind::Data) {
    // Damaged-parity rule: the RMW must read every parity on a chain
    // through the cell; an unreadable parity parks the write too.
    for (int chain_id : layout_->chains_containing(req.cell)) {
      if (damaged_unrepaired(req.stripe,
                             layout_->chain(chain_id).parity_cell)) {
        return true;
      }
    }
  }
  return false;
}

void ForegroundServer::park(std::size_t index, double arrival, bool is_read) {
  if (is_read) {
    ++metrics_->app_degraded_reads;
  } else {
    ++metrics_->app_degraded_writes;
  }
  parked_by_stripe_[(*trace_)[index].stripe].push_back(
      Parked{index, arrival});
  ++parked_count_;
}

void ForegroundServer::finish(double done, double arrival,
                              double deadline_ms) {
  metrics_->app_response_ms.add(done - arrival);
  metrics_->app_response_hist.add(done - arrival);
  if (deadline_ms > 0.0 && done > arrival + deadline_ms) {
    ++metrics_->app_deadline_miss;
  }
}

double ForegroundServer::reconstruct_read(const workload::AppRequest& req,
                                          double start) {
  ++metrics_->app_reconstructed_reads;
  const auto chains = layout_->chains_containing(req.cell);
  FBF_CHECK(!chains.empty(), "unreadable cell belongs to no chain");
  const codes::Chain& chain = layout_->chain(chains.front());
  double done = start;
  for (const codes::Cell& c : chain.cells) {
    if (c == req.cell) {
      continue;
    }
    const Location loc = locate(req.stripe, c);
    done = std::max(
        done, (*disks_)[static_cast<std::size_t>(loc.disk)].submit_read(
                  start, loc.lba));
  }
  return done;
}

bool ForegroundServer::serve_read(const workload::AppRequest& req,
                                  double start, double arrival) {
  const std::uint64_t key = geometry_->chunk_key(req.stripe, req.cell);
  const Location loc = locate(req.stripe, req.cell);
  Disk& disk = (*disks_)[static_cast<std::size_t>(loc.disk)];
  double done;
  if (injector_ != nullptr) {
    // Spare copies are never URE-hit (original_location gates the
    // predicate), matching the rebuild path's remap semantics.
    const FaultInjector::ReadOutcome rr = injector_->read(
        disk, start, loc.lba, key, damaged_keys_.count(key) == 0);
    done = rr.done_ms;
    if (!rr.ok) {
      if (stripe_under_repair(req.stripe)) {
        // The stripe is mid-recovery: defer to the post-repair drain,
        // where every survivor is readable from a live location.
        return false;
      }
      done = reconstruct_read(req, rr.done_ms);
    }
  } else {
    done = disk.submit_read(start, loc.lba);
  }
  finish(done, arrival, req.deadline_ms);
  return true;
}

void ForegroundServer::serve_write(const workload::AppRequest& req,
                                   double start, double arrival) {
  // Read-modify-write: the target plus every parity on a chain through
  // this cell is re-read and rewritten — the code's update complexity,
  // paid in disk time (TIP-style layouts: <= 3 parities; STAR adjuster
  // cells: p + 1). All I/O goes through locate(), so repaired chunks are
  // updated at their spare location, never at the dead original sector.
  auto submit = [&](codes::Cell cell, bool is_write, double t) {
    const Location loc = locate(req.stripe, cell);
    Disk& disk = (*disks_)[static_cast<std::size_t>(loc.disk)];
    return is_write ? disk.submit_write(t, loc.lba)
                    : disk.submit_read(t, loc.lba);
  };
  const bool is_data = layout_->kind(req.cell) == codes::CellKind::Data;
  double reads_done = submit(req.cell, false, start);
  if (is_data) {
    for (int chain_id : layout_->chains_containing(req.cell)) {
      reads_done = std::max(
          reads_done,
          submit(layout_->chain(chain_id).parity_cell, false, start));
    }
  }
  double done = submit(req.cell, true, reads_done);
  if (is_data) {
    for (int chain_id : layout_->chains_containing(req.cell)) {
      done = std::max(done, submit(layout_->chain(chain_id).parity_cell,
                                   true, reads_done));
    }
  }
  finish(done, arrival, req.deadline_ms);
}

void ForegroundServer::on_arrival(std::size_t index, double now) {
  const workload::AppRequest& req = (*trace_)[index];
  ++metrics_->app_requests;
  if (must_park(req)) {
    park(index, now, req.is_read);
    return;
  }
  if (req.is_read) {
    if (!serve_read(req, now, now)) {
      park(index, now, /*is_read=*/true);  // URE mid-repair: degraded read
      return;
    }
  } else {
    serve_write(req, now, now);
  }
  ++metrics_->app_served;
}

void ForegroundServer::on_stripe_recovered(std::uint64_t stripe, double now) {
  if (trace_->empty()) {
    return;  // repaired_stripes_ only gates app I/O; nothing to drain
  }
  repaired_stripes_.insert(stripe);
  const auto it = parked_by_stripe_.find(stripe);
  if (it == parked_by_stripe_.end()) {
    return;
  }
  for (const Parked& p : it->second) {
    const workload::AppRequest& req = (*trace_)[p.index];
    ++metrics_->app_parked_drained;
    if (req.is_read) {
      const bool served = serve_read(req, now, p.arrival_ms);
      FBF_CHECK(served, "drained degraded read parked again");
    } else {
      serve_write(req, now, p.arrival_ms);
    }
  }
  parked_count_ -= it->second.size();
  parked_by_stripe_.erase(it);
}

void ForegroundServer::assert_drained() const {
  FBF_CHECK(parked_count_ == 0,
            "app requests left parked after recovery completed (" +
                std::to_string(parked_count_) + ")");
}

}  // namespace fbf::sim
