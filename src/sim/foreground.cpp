#include "sim/foreground.h"

#include <algorithm>

#include "recovery/write_plan.h"
#include "util/check.h"

namespace fbf::sim {

RebuildThrottle::RebuildThrottle(const ThrottleConfig& config)
    : interval_ms_(1000.0 / config.rebuild_reads_per_sec),
      burst_(static_cast<double>(config.burst)),
      tokens_(static_cast<double>(config.burst)) {
  FBF_CHECK(config.rebuild_reads_per_sec > 0.0,
            "throttle rate must be positive (0 disables the throttle)");
  FBF_CHECK(config.burst >= 1, "throttle burst must be at least 1");
}

double RebuildThrottle::acquire(double now_ms) {
  // last_ms_ may sit in the future after a deferred grant; only elapsed
  // time refills the bucket.
  if (now_ms > last_ms_) {
    tokens_ = std::min(burst_, tokens_ + (now_ms - last_ms_) / interval_ms_);
    last_ms_ = now_ms;
  }
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return now_ms;
  }
  // The next token is minted (and immediately spent) at `grant`.
  const double grant = last_ms_ + (1.0 - tokens_) * interval_ms_;
  tokens_ = 0.0;
  last_ms_ = grant;
  return grant;
}

ForegroundServer::ForegroundServer(
    const codes::Layout& layout, const ArrayGeometry& geometry,
    std::vector<Disk>& disks, const std::vector<workload::StripeError>& errors,
    const std::vector<workload::AppRequest>& trace, SimMetrics& metrics,
    FaultInjector* app_injector,
    std::function<int(std::uint64_t)> spare_disk_override,
    const WritePathConfig& write_config)
    : layout_(&layout),
      geometry_(&geometry),
      disks_(&disks),
      trace_(&trace),
      metrics_(&metrics),
      injector_(app_injector),
      spare_disk_override_(std::move(spare_disk_override)),
      write_config_(write_config) {
  // The damage indexes exist to classify app I/O; with no trace nothing
  // ever consults them, and building them costs two hash-set inserts per
  // lost chunk — measurable against a recovery-only macro bench.
  if (trace.empty()) {
    return;
  }
  if (write_config_.enabled()) {
    write_cache_ =
        cache::make_policy(write_config_.policy, write_config_.cache_chunks);
    metrics_->write.enabled = true;
  }
  for (const workload::StripeError& e : errors) {
    damaged_stripes_.insert(e.stripe);
    for (const codes::Cell& c : e.error.cells()) {
      damaged_keys_.insert(geometry_->chunk_key(e.stripe, c));
    }
  }
}

ForegroundServer::Location ForegroundServer::locate(std::uint64_t stripe,
                                                    codes::Cell cell) const {
  const std::uint64_t key = geometry_->chunk_key(stripe, cell);
  if (damaged_keys_.count(key) == 0) {
    return Location{geometry_->disk_of(stripe, cell),
                    geometry_->lba_of(stripe, cell)};
  }
  // Damaged chunks live in the spare area; the original sector is dead.
  int disk = spare_disk_override_ ? spare_disk_override_(key) : -1;
  if (disk < 0) {
    disk = geometry_->spare_disk_of(stripe, cell);
  }
  return Location{disk, geometry_->spare_lba_of(stripe, cell)};
}

bool ForegroundServer::damaged_unrepaired(std::uint64_t stripe,
                                          codes::Cell cell) const {
  return damaged_keys_.count(geometry_->chunk_key(stripe, cell)) > 0 &&
         repaired_stripes_.count(stripe) == 0;
}

bool ForegroundServer::stripe_under_repair(std::uint64_t stripe) const {
  return damaged_stripes_.count(stripe) > 0 &&
         repaired_stripes_.count(stripe) == 0;
}

bool ForegroundServer::must_park(const workload::AppRequest& req) const {
  if (damaged_unrepaired(req.stripe, req.cell)) {
    return true;  // reads: data gone; writes: nowhere to land the data
  }
  if (!req.is_read && !write_path_active() &&
      layout_->kind(req.cell) == codes::CellKind::Data) {
    // Legacy damaged-parity rule: the RMW must read every parity on a
    // chain through the cell; an unreadable parity parks the write too.
    // The planner path replaces this with a degraded plan that skips the
    // damaged chain (serve_write_planned parks only infeasible plans).
    for (int chain_id : layout_->chains_containing(req.cell)) {
      if (damaged_unrepaired(req.stripe,
                             layout_->chain(chain_id).parity_cell)) {
        return true;
      }
    }
  }
  return false;
}

void ForegroundServer::park(std::size_t index, double arrival, bool is_read) {
  if (is_read) {
    ++metrics_->app_degraded_reads;
  } else {
    ++metrics_->app_degraded_writes;
  }
  parked_by_stripe_[(*trace_)[index].stripe].push_back(
      Parked{index, arrival});
  ++parked_count_;
}

void ForegroundServer::finish(double done, double arrival,
                              double deadline_ms) {
  metrics_->app_response_ms.add(done - arrival);
  metrics_->app_response_hist.add(done - arrival);
  if (deadline_ms > 0.0 && done > arrival + deadline_ms) {
    ++metrics_->app_deadline_miss;
  }
}

double ForegroundServer::reconstruct_read(const workload::AppRequest& req,
                                          double start) {
  ++metrics_->app_reconstructed_reads;
  const auto chains = layout_->chains_containing(req.cell);
  FBF_CHECK(!chains.empty(), "unreadable cell belongs to no chain");
  const codes::Chain& chain = layout_->chain(chains.front());
  double done = start;
  for (const codes::Cell& c : chain.cells) {
    if (c == req.cell) {
      continue;
    }
    const Location loc = locate(req.stripe, c);
    done = std::max(
        done, (*disks_)[static_cast<std::size_t>(loc.disk)].submit_read(
                  start, loc.lba));
  }
  return done;
}

bool ForegroundServer::serve_read(const workload::AppRequest& req,
                                  double start, double arrival) {
  const std::uint64_t key = geometry_->chunk_key(req.stripe, req.cell);
  if (write_path_active() && write_cache_->contains(key)) {
    // Write-allocate only: reads never populate the cache, but a resident
    // line (dirty or clean) serves them at RAM cost. request() is called
    // only on the contains() hit, so the miss path never admits the key.
    write_cache_->request(key, write_priority(req.stripe));
    ++metrics_->write.app_read_hits;
    drain_evicted(start);
    finish(start + write_config_.cache_access_ms, arrival, req.deadline_ms);
    return true;
  }
  const Location loc = locate(req.stripe, req.cell);
  Disk& disk = (*disks_)[static_cast<std::size_t>(loc.disk)];
  double done;
  if (injector_ != nullptr) {
    // Spare copies are never URE-hit (original_location gates the
    // predicate), matching the rebuild path's remap semantics.
    const FaultInjector::ReadOutcome rr = injector_->read(
        disk, start, loc.lba, key, damaged_keys_.count(key) == 0);
    done = rr.done_ms;
    if (!rr.ok) {
      if (stripe_under_repair(req.stripe)) {
        // The stripe is mid-recovery: defer to the post-repair drain,
        // where every survivor is readable from a live location.
        return false;
      }
      done = reconstruct_read(req, rr.done_ms);
    }
  } else {
    done = disk.submit_read(start, loc.lba);
  }
  finish(done, arrival, req.deadline_ms);
  return true;
}

bool ForegroundServer::serve_write(const workload::AppRequest& req,
                                   double start, double arrival) {
  if (write_path_active()) {
    return serve_write_planned(req, start, arrival);
  }
  serve_write_legacy(req, start, arrival);
  return true;
}

void ForegroundServer::serve_write_legacy(const workload::AppRequest& req,
                                          double start, double arrival) {
  // Read-modify-write: the target plus every parity on a chain through
  // this cell is re-read and rewritten — the code's update complexity,
  // paid in disk time (TIP-style layouts: <= 3 parities; STAR adjuster
  // cells: p + 1). All I/O goes through locate(), so repaired chunks are
  // updated at their spare location, never at the dead original sector.
  auto submit = [&](codes::Cell cell, bool is_write, double t) {
    const Location loc = locate(req.stripe, cell);
    Disk& disk = (*disks_)[static_cast<std::size_t>(loc.disk)];
    return is_write ? disk.submit_write(t, loc.lba)
                    : disk.submit_read(t, loc.lba);
  };
  const bool is_data = layout_->kind(req.cell) == codes::CellKind::Data;
  double reads_done = submit(req.cell, false, start);
  if (is_data) {
    for (int chain_id : layout_->chains_containing(req.cell)) {
      reads_done = std::max(
          reads_done,
          submit(layout_->chain(chain_id).parity_cell, false, start));
    }
  }
  double done = submit(req.cell, true, reads_done);
  if (is_data) {
    for (int chain_id : layout_->chains_containing(req.cell)) {
      done = std::max(done, submit(layout_->chain(chain_id).parity_cell,
                                   true, reads_done));
    }
  }
  finish(done, arrival, req.deadline_ms);
}

bool ForegroundServer::serve_write_planned(const workload::AppRequest& req,
                                           double start, double arrival) {
  WritePathStats& ws = metrics_->write;
  const auto cached = [this, &req](codes::Cell c) {
    return write_cache_->contains(geometry_->chunk_key(req.stripe, c));
  };
  const auto damaged = [this, &req](codes::Cell c) {
    return damaged_unrepaired(req.stripe, c);
  };
  const recovery::WritePlan plan =
      recovery::plan_partial_stripe_write(*layout_, req.cell, cached, damaged);
  if (!plan.feasible) {
    return false;  // a needed source is damaged and uncached: caller parks
  }
  switch (plan.kind) {
    case recovery::WritePlanKind::Rmw:
      ++ws.rmw_plans;
      break;
    case recovery::WritePlanKind::Rcw:
      ++ws.rcw_plans;
      break;
    case recovery::WritePlanKind::Direct:
      ++ws.direct_plans;
      break;
  }
  if (plan.degraded()) {
    ++ws.degraded_plans;  // served inline; legacy would have parked
  }
  const int priority = write_priority(req.stripe);
  // Source reads run in parallel: cached sources at RAM cost (touched so
  // hot sources stay resident), the rest from disk via locate().
  double reads_done = start;
  if (!plan.cache_reads.empty()) {
    reads_done = start + write_config_.cache_access_ms;
    for (const codes::Cell& c : plan.cache_reads) {
      write_cache_->request(geometry_->chunk_key(req.stripe, c), priority);
      ++ws.plan_cache_reads;
    }
  }
  for (const codes::Cell& c : plan.disk_reads) {
    const Location loc = locate(req.stripe, c);
    reads_done = std::max(
        reads_done, (*disks_)[static_cast<std::size_t>(loc.disk)].submit_read(
                        start, loc.lba));
    ++ws.plan_disk_reads;
  }
  // Parity updates are synchronous (the stripe must be consistent before
  // the write completes); damaged chains are skipped — recovery will
  // regenerate their parity from the members' current values.
  double done = reads_done;
  for (const recovery::ParityUpdate& u : plan.updates) {
    if (u.damaged) {
      continue;
    }
    const Location loc = locate(req.stripe, u.parity);
    done = std::max(done,
                    (*disks_)[static_cast<std::size_t>(loc.disk)].submit_write(
                        reads_done, loc.lba));
    ++ws.parity_updates;
    ++metrics_->disk_writes;
  }
  // The target's own data write is deferred: write-allocate a dirty line
  // (favorable priority while the stripe is under repair) and let the
  // flush machinery pay the disk write later.
  write_cache_->write(geometry_->chunk_key(req.stripe, req.cell), priority);
  done = std::max(done, reads_done + write_config_.cache_access_ms);
  drain_evicted(start);  // eviction-triggered write-backs, fire-and-forget
  finish(done, arrival, req.deadline_ms);
  return true;
}

void ForegroundServer::write_back(cache::Key key, double now) {
  const auto cells = static_cast<std::uint64_t>(layout_->num_cells());
  const std::uint64_t stripe = key / cells;
  const codes::Cell cell = layout_->cell_at(static_cast<int>(key % cells));
  const Location loc = locate(stripe, cell);
  (*disks_)[static_cast<std::size_t>(loc.disk)].submit_write(now, loc.lba);
  ++metrics_->write.write_backs;
  ++metrics_->disk_writes;
}

void ForegroundServer::drain_evicted(double now) {
  dirty_scratch_.clear();
  write_cache_->take_evicted_dirty(dirty_scratch_);
  for (const cache::core::DirtyLine& line : dirty_scratch_) {
    ++metrics_->write.flushed;
    write_back(line.key, now);
  }
}

void ForegroundServer::on_flush_tick(double now) {
  if (!write_path_active()) {
    return;
  }
  ++metrics_->write.flush_ticks;
  drain_evicted(now);
  const std::size_t resident_dirty = write_cache_->dirty_count();
  dirty_scratch_.clear();
  write_cache_->flush_dirty(dirty_scratch_,
                            write_config_.retain_favorable ? 2 : 0);
  metrics_->write.retained_dirty +=
      resident_dirty - dirty_scratch_.size();  // favorable lines kept
  for (const cache::core::DirtyLine& line : dirty_scratch_) {
    ++metrics_->write.flushed;
    write_back(line.key, now);
  }
}

void ForegroundServer::on_disk_failed(int disk, double now) {
  if (!write_path_active()) {
    return;
  }
  // Pending evicted lines left the cache before the failure; their
  // write-backs were already owed. Flush them first (take-before-
  // invalidate, per the CachePolicy contract), then drop resident dirty
  // lines whose write-back target died with the disk.
  drain_evicted(now);
  const auto cells = static_cast<std::uint64_t>(layout_->num_cells());
  for (const cache::core::DirtyLine& line : write_cache_->dirty_lines()) {
    const std::uint64_t stripe = line.key / cells;
    const codes::Cell cell =
        layout_->cell_at(static_cast<int>(line.key % cells));
    if (locate(stripe, cell).disk != disk) {
      continue;
    }
    const bool was_dirty = write_cache_->invalidate_dirty(line.key);
    FBF_CHECK(was_dirty, "dirty snapshot listed a clean line");
    ++metrics_->write.lost_dirty;
  }
}

void ForegroundServer::finalize(double now) {
  if (!write_path_active()) {
    return;
  }
  // Terminal flush: favorable retention does not apply — every dirty line
  // must reach disk before the run's books close.
  drain_evicted(now);
  dirty_scratch_.clear();
  write_cache_->flush_dirty(dirty_scratch_, 0);
  for (const cache::core::DirtyLine& line : dirty_scratch_) {
    ++metrics_->write.flushed;
    write_back(line.key, now);
  }
  FBF_CHECK(write_cache_->dirty_count() == 0,
            "dirty lines survived the terminal flush");
  const cache::WriteStats& cs = write_cache_->write_stats();
  WritePathStats& ws = metrics_->write;
  ws.write_hits = cs.write_hits;
  ws.write_misses = cs.write_misses;
  ws.dirty_installed = cs.dirty_installed;
  ws.evicted_dirty = cs.evicted_dirty;
}

void ForegroundServer::on_arrival(std::size_t index, double now) {
  const workload::AppRequest& req = (*trace_)[index];
  ++metrics_->app_requests;
  if (must_park(req)) {
    park(index, now, req.is_read);
    return;
  }
  if (req.is_read) {
    if (!serve_read(req, now, now)) {
      park(index, now, /*is_read=*/true);  // URE mid-repair: degraded read
      return;
    }
  } else {
    if (!serve_write(req, now, now)) {
      // Planner found no feasible source set (damaged + uncached): a
      // degraded write that even the degraded plan cannot serve.
      park(index, now, /*is_read=*/false);
      return;
    }
  }
  ++metrics_->app_served;
}

void ForegroundServer::on_stripe_recovered(std::uint64_t stripe, double now) {
  if (trace_->empty()) {
    return;  // repaired_stripes_ only gates app I/O; nothing to drain
  }
  repaired_stripes_.insert(stripe);
  const auto it = parked_by_stripe_.find(stripe);
  if (it == parked_by_stripe_.end()) {
    return;
  }
  for (const Parked& p : it->second) {
    const workload::AppRequest& req = (*trace_)[p.index];
    ++metrics_->app_parked_drained;
    if (req.is_read) {
      const bool served = serve_read(req, now, p.arrival_ms);
      FBF_CHECK(served, "drained degraded read parked again");
    } else {
      // Post-repair every cell of this stripe is live, so a fresh plan is
      // always feasible.
      const bool served = serve_write(req, now, p.arrival_ms);
      FBF_CHECK(served, "drained degraded write parked again");
    }
  }
  parked_count_ -= it->second.size();
  parked_by_stripe_.erase(it);
}

void ForegroundServer::assert_drained() const {
  FBF_CHECK(parked_count_ == 0,
            "app requests left parked after recovery completed (" +
                std::to_string(parked_count_) + ")");
}

}  // namespace fbf::sim
