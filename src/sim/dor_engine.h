// Disk-Oriented Reconstruction (paper §III-B): one reader process per
// disk streams the planned recovery reads in LBA order, a writer path
// persists recovered chunks, and a single shared buffer cache holds
// chunks until every chain that needs them has consumed them.
//
// Contrast with the SOR engine (reconstruction.h): there, workers own
// stripes and issue demand reads chain by chain; here, reads are
// *planned* per disk up front (each distinct chunk fetched once), and
// cache pressure shows up as chunks evicted before all their chains have
// consumed them, forcing re-reads. The same FBF priority dictionary
// governs which chunks survive. A chain consumes its freshly delivered
// member before re-checking the rest, so every wake-up makes progress
// even when the buffer is smaller than the chain (see attempt_completion
// in dor_engine.cpp); the buffer must hold at least one chunk.
//
// Accounting: disk_reads = planned reads + re-reads; cache hits/misses
// count chain *consumptions* (a consumption hit = the chunk was still
// buffered when its chain completed; a miss = it had been evicted and
// must be fetched again). The paper's hit-ratio metric carries over with
// this consumption semantics.
#pragma once

#include <vector>

#include "cache/policy.h"
#include "recovery/scheme_cache.h"
#include "sim/array_geometry.h"
#include "sim/disk.h"
#include "sim/faults/faults.h"
#include "sim/foreground.h"
#include "sim/metrics.h"
#include "workload/app_trace.h"
#include "workload/errors.h"

namespace fbf::obs {
class RunObserver;
}  // namespace fbf::obs

namespace fbf::sim {

/// True when FBF_DOR_LEGACY_LOOP is set (and not "0"): DorConfig then
/// defaults to the pre-coalescing one-event-per-read loop. Read once and
/// cached, like FBF_GLOBAL_EVENT_HEAP.
bool forced_dor_legacy_loop();

struct DorConfig {
  recovery::SchemeKind scheme = recovery::SchemeKind::RoundRobin;
  cache::PolicyId policy = cache::PolicyId::Fbf;

  std::size_t cache_bytes = 256ull << 20;
  std::size_t chunk_bytes = 32 * 1024;

  double cache_access_ms = 0.5;
  double xor_ms_per_chunk = 0.05;
  DiskParams disk;
  std::uint64_t seed = 1;

  /// Fault injection (sim/faults). Disabled by default; when
  /// faults.enabled() is false the engine takes the exact pre-fault code
  /// path and produces byte-identical metrics.
  FaultConfig faults;

  /// Recovery throttling (sim/foreground.h): planned/re-read submissions
  /// draw from a token bucket so foreground traffic sees shorter disk
  /// queues. Disabled by default (byte-identical to the unthrottled
  /// engine).
  ThrottleConfig throttle;

  /// Foreground write path (sim/foreground.h): parity-update planner +
  /// dirty write-back cache. Disabled by default (byte-identical to the
  /// legacy synchronous-RMW engine). Both loops wire it identically, so
  /// the legacy/fast byte-identity contract covers the write path too.
  WritePathConfig write;

  /// Escape hatch: run the pre-coalescing one-event-per-read loop instead
  /// of the service-cursor fast path. The two paths are byte-identical by
  /// contract (CI diffs their CSVs and metrics); this exists so the
  /// contract stays checkable. Defaults from FBF_DOR_LEGACY_LOOP so whole
  /// binaries can be flipped without recompiling; tests toggle it
  /// per-config to compare both paths in process.
  bool legacy_loop = forced_dor_legacy_loop();

  /// Carry real chunk bytes through the recovery and byte-verify every
  /// recovered chunk against ground truth (mirrors
  /// ReconstructionConfig::verify_data). Chains completed by one service
  /// run fold through a single xor_fold_batch dispatch; Gauss tasks solve
  /// via decode_erasures. Fast-path only — the legacy loop predates data
  /// verification and rejects the combination.
  bool verify_data = false;
  std::size_t verify_chunk_bytes = 64;

  /// Optional run-level observability sink (not owned); see
  /// ReconstructionConfig::observer.
  obs::RunObserver* observer = nullptr;
  std::string obs_label = "run.dor";

  std::size_t cache_capacity_chunks() const {
    return cache_bytes / chunk_bytes;
  }
};

class DorEngine {
 public:
  DorEngine(const codes::Layout& layout, const ArrayGeometry& geometry,
            const DorConfig& config);

  /// Simulates recovery of all damaged stripes, plus optional foreground
  /// application traffic mirroring SOR's: arrivals ride the bulk shard of
  /// the event queue and are served by the shared ForegroundServer
  /// (foreground.h — parking, spare remap, RMW, deadlines). App requests
  /// bypass the recovery buffer (it holds chain members mid-fold, not user
  /// data), so the consumption-accounting laws are untouched. A stripe
  /// counts as repaired — releasing its parked requests — when the last of
  /// its traced losses has a persisted spare copy.
  SimMetrics run(const std::vector<workload::StripeError>& errors,
                 const std::vector<workload::AppRequest>& app_trace = {});

 private:
  /// The seed's event loop, kept verbatim: one heap pop per chunk read,
  /// unordered_map chunk lookups, per-chunk cache calls. Reference
  /// implementation for the byte-identity contract.
  SimMetrics run_legacy(const std::vector<workload::StripeError>& errors,
                        const std::vector<workload::AppRequest>& app_trace);
  /// The coalesced path (DESIGN §14): per-disk service cursors elide heap
  /// traffic for reads that are provably next, dense chunk ids replace the
  /// hash map, completions touch the cache in one batch, installs batch
  /// between cache reads.
  SimMetrics run_fast(const std::vector<workload::StripeError>& errors,
                      const std::vector<workload::AppRequest>& app_trace);

  const codes::Layout* layout_;
  const ArrayGeometry* geometry_;
  DorConfig config_;
};

}  // namespace fbf::sim
