// Deterministic fault injection for degraded recovery.
//
// A FaultPlan is a pure function of (fault seed, run label): every fault
// decision — which chunks carry latent sector errors, which read attempts
// fail transiently, which disks straggle, which disks die and when — is a
// hash of the plan key and the query, never of simulation state or wall
// clock. Two runs with the same seed, label, and configuration therefore
// inject byte-identical fault streams, which keeps the observability
// determinism contract (DESIGN.md §10) intact under faults.
//
// The FaultInjector is the runtime face the engines use: it owns the one
// piece of sequencing state (the transient-failure nonce, advanced once per
// read attempt in simulated-event order) and the retry/backoff loop, and it
// writes the FaultStats counters the conservation laws read. Fault kinds:
//
//  - Latent sector errors (UREs): a per-chunk predicate on the chunk's
//    *original* location. One attempt, permanent failure; the chunk joins
//    the stripe's lost set and is recovered like any other erasure. Spare
//    copies are never URE-hit, so recovery always terminates.
//  - Transient read failures: per-attempt predicate; the injector retries
//    with a fixed backoff up to max_retries extra attempts, then reports a
//    hard failure (the engines treat it like a URE).
//  - Stragglers: a service-time multiplier on a deterministic subset of
//    disks, applied inside Disk::service_ms.
//  - Whole-disk failures: (time, disk) pairs. From the failure time on,
//    every access to the disk's data region times out (one full service
//    slot, counted as a disk read) and the engines escalate: each traced
//    stripe gains the failed disk's column as new losses, re-planned
//    through peeling with a Gauss fallback while the erasure budget
//    permits, or aborted with a structured EscalationError beyond it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "codes/layout.h"
#include "sim/array_geometry.h"
#include "sim/disk.h"
#include "sim/metrics.h"
#include "util/check.h"

namespace fbf::sim {

/// An injected whole-disk failure: `disk` stops serving at `at_ms`.
struct DiskFailure {
  double at_ms = 0.0;
  int disk = 0;
};

struct FaultConfig {
  /// Probability a surviving chunk's original location carries a latent
  /// sector error (evaluated once per chunk, not per attempt).
  double ure_rate = 0.0;
  /// Per-attempt probability a read fails transiently.
  double transient_rate = 0.0;
  /// Extra read attempts after a transient failure before giving up.
  int max_retries = 3;
  /// Delay between a failed attempt and its retry submission.
  double retry_backoff_ms = 1.0;

  /// Number of straggler disks (chosen deterministically from the plan key)
  /// and the service-time multiplier they run with.
  int stragglers = 0;
  double straggler_factor = 4.0;

  /// Whole-disk failure times. `disk_failure_disks` pins the disk ids;
  /// when shorter than the time list (or empty) the remaining ids are
  /// drawn deterministically from the plan key, all distinct.
  std::vector<double> disk_failure_times_ms;
  std::vector<int> disk_failure_disks;

  /// Fault-plan seed; 0 derives it from the run seed so `--seed` alone
  /// still pins the whole simulation.
  std::uint64_t seed = 0;

  /// True when any fault kind is active. The engines bypass the fault path
  /// entirely — bit-identical to a build without the fault layer — when
  /// this is false.
  bool enabled() const {
    return ure_rate > 0.0 || transient_rate > 0.0 ||
           (stragglers > 0 && straggler_factor != 1.0) ||
           !disk_failure_times_ms.empty();
  }
};

/// Structured diagnostic for an escalation beyond the 3DFT budget: the
/// outstanding lost set of `stripe` is not decodable under the layout.
class EscalationError : public util::CheckError {
 public:
  EscalationError(std::uint64_t stripe, std::vector<codes::Cell> lost,
                  std::vector<int> failed_disks);

  std::uint64_t stripe() const { return stripe_; }
  const std::vector<codes::Cell>& lost_cells() const { return lost_; }
  const std::vector<int>& failed_disks() const { return failed_disks_; }

 private:
  std::uint64_t stripe_;
  std::vector<codes::Cell> lost_;
  std::vector<int> failed_disks_;
};

/// The immutable, replayable fault plan. All predicates are pure.
class FaultPlan {
 public:
  FaultPlan(const FaultConfig& config, std::uint64_t run_seed,
            std::string_view run_label, int num_disks);

  const FaultConfig& config() const { return config_; }
  int num_disks() const { return num_disks_; }

  /// Latent sector error at the chunk's original location?
  bool sector_error(std::uint64_t chunk_key) const;

  /// Does read attempt number `nonce` (a global, monotonically assigned
  /// attempt ordinal) fail transiently?
  bool transient(std::uint64_t nonce) const;

  /// Service-time multiplier for a disk (1.0 for non-stragglers).
  double service_multiplier(int disk) const;
  std::uint64_t straggler_count() const;

  /// Injected whole-disk failures, sorted by time. Disk ids resolved.
  const std::vector<DiskFailure>& disk_failures() const {
    return disk_failures_;
  }

  /// Has `disk` failed at simulated time `now`?
  bool disk_failed(int disk, double now) const;

 private:
  FaultConfig config_;
  int num_disks_;
  std::uint64_t key_;  ///< mixed (seed, label) plan key
  std::uint64_t ure_threshold_ = 0;
  std::uint64_t transient_threshold_ = 0;
  std::vector<double> multipliers_;
  std::vector<DiskFailure> disk_failures_;
};

/// Per-run injector: wraps the plan's predicates with the retry/backoff
/// loop, assigns transient nonces in event order, and maintains the fault
/// counters. One instance per engine run.
class FaultInjector {
 public:
  FaultInjector(const FaultPlan& plan, FaultStats& stats)
      : plan_(&plan), stats_(&stats) {
    stats_->enabled = true;
    stats_->straggler_disks = plan.straggler_count();
  }

  const FaultPlan& plan() const { return *plan_; }

  bool disk_failed(int disk, double now) const {
    return plan_->disk_failed(disk, now);
  }

  struct ReadOutcome {
    bool ok = false;
    double done_ms = 0.0;  ///< completion of the final attempt
    int attempts = 0;      ///< disk submissions made (>= 1)
  };

  /// Submits a logical chunk read through the fault model. Every attempt
  /// is a real Disk submission (so per-disk stats and the busy <= makespan
  /// law stay exact); the caller adds `attempts` to metrics.disk_reads.
  /// `original_location` gates the URE predicate: spare-area copies are
  /// never URE-hit. A read on a failed disk costs one timeout slot and
  /// hard-fails; a URE hard-fails after one attempt; transient failures
  /// retry with backoff until the budget runs out.
  ReadOutcome read(Disk& disk, double now, std::uint64_t lba,
                   std::uint64_t chunk_key, bool original_location);

  /// Spare disk for (stripe, cell) skipping failed disks: walks forward
  /// from the geometry's choice until a live disk is found. Deterministic;
  /// at most 3 disks can be dead (a 4th loss aborts earlier), so a live
  /// target always exists for the supported array widths.
  int spare_disk(const ArrayGeometry& geometry, std::uint64_t stripe,
                 codes::Cell cell, double now) const;

 private:
  const FaultPlan* plan_;
  FaultStats* stats_;
  std::uint64_t transient_nonce_ = 0;
};

}  // namespace fbf::sim
