#include "sim/faults/faults.h"

#include <algorithm>
#include <numeric>

namespace fbf::sim {

namespace {

/// splitmix64 finalizer: full-avalanche mix so structured inputs (chunk
/// keys, small disk ids) spread over the whole 64-bit space.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_label(std::string_view label) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  for (char c : label) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Probability -> threshold over the uniform 64-bit hash space.
std::uint64_t rate_threshold(double rate) {
  if (rate <= 0.0) {
    return 0;
  }
  if (rate >= 1.0) {
    return ~std::uint64_t{0};
  }
  return static_cast<std::uint64_t>(rate * 18446744073709551616.0);
}

std::string cells_to_string(const std::vector<codes::Cell>& cells) {
  std::string out;
  for (const codes::Cell& c : cells) {
    if (!out.empty()) {
      out += ", ";
    }
    out += codes::to_string(c);
  }
  return out;
}

}  // namespace

EscalationError::EscalationError(std::uint64_t stripe,
                                 std::vector<codes::Cell> lost,
                                 std::vector<int> failed_disks)
    : CheckError([&] {
        std::string msg = "escalation beyond the 3DFT erasure budget: stripe " +
                          std::to_string(stripe) + " lost cells {" +
                          cells_to_string(lost) + "} are not decodable";
        if (!failed_disks.empty()) {
          msg += " (failed disks:";
          for (int d : failed_disks) {
            msg += " " + std::to_string(d);
          }
          msg += ")";
        }
        return msg;
      }()),
      stripe_(stripe),
      lost_(std::move(lost)),
      failed_disks_(std::move(failed_disks)) {}

FaultPlan::FaultPlan(const FaultConfig& config, std::uint64_t run_seed,
                     std::string_view run_label, int num_disks)
    : config_(config), num_disks_(num_disks) {
  FBF_CHECK(num_disks > 0, "fault plan needs at least one disk");
  FBF_CHECK(config.ure_rate >= 0.0 && config.ure_rate <= 1.0,
            "ure_rate must be a probability");
  FBF_CHECK(config.transient_rate >= 0.0 && config.transient_rate <= 1.0,
            "transient_rate must be a probability");
  FBF_CHECK(config.max_retries >= 0, "max_retries must be non-negative");
  FBF_CHECK(config.retry_backoff_ms >= 0.0,
            "retry_backoff_ms must be non-negative");
  FBF_CHECK(config.stragglers >= 0 && config.stragglers <= num_disks,
            "straggler count out of range");
  FBF_CHECK(config.straggler_factor > 0.0,
            "straggler_factor must be positive");

  const std::uint64_t seed = config.seed != 0 ? config.seed : run_seed;
  key_ = mix64(mix64(seed) ^ hash_label(run_label));
  ure_threshold_ = rate_threshold(config.ure_rate);
  transient_threshold_ = rate_threshold(config.transient_rate);

  // Stragglers: the `stragglers` disks with the smallest per-disk hash.
  multipliers_.assign(static_cast<std::size_t>(num_disks), 1.0);
  if (config.stragglers > 0) {
    std::vector<int> order(static_cast<std::size_t>(num_disks));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const auto ha = mix64(key_ ^ 0x5752a6c1u ^ static_cast<std::uint64_t>(a));
      const auto hb = mix64(key_ ^ 0x5752a6c1u ^ static_cast<std::uint64_t>(b));
      return ha < hb || (ha == hb && a < b);
    });
    for (int i = 0; i < config.stragglers; ++i) {
      multipliers_[static_cast<std::size_t>(order[static_cast<std::size_t>(
          i)])] = config.straggler_factor;
    }
  }

  // Whole-disk failures: explicit ids first, then deterministic distinct
  // draws for the remainder; never repeating an already-failed disk.
  if (!config.disk_failure_times_ms.empty()) {
    FBF_CHECK(config.disk_failure_disks.size() <=
                  config.disk_failure_times_ms.size(),
              "more disk_failure_disks than failure times");
    std::vector<bool> used(static_cast<std::size_t>(num_disks), false);
    for (int d : config.disk_failure_disks) {
      FBF_CHECK(d >= 0 && d < num_disks, "disk_failure_disks id out of range");
      FBF_CHECK(!used[static_cast<std::size_t>(d)],
                "duplicate disk_failure_disks id");
      used[static_cast<std::size_t>(d)] = true;
    }
    std::vector<int> order(static_cast<std::size_t>(num_disks));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const auto ha = mix64(key_ ^ 0xd15cfa11u ^ static_cast<std::uint64_t>(a));
      const auto hb = mix64(key_ ^ 0xd15cfa11u ^ static_cast<std::uint64_t>(b));
      return ha < hb || (ha == hb && a < b);
    });
    std::size_t next_draw = 0;
    for (std::size_t i = 0; i < config.disk_failure_times_ms.size(); ++i) {
      FBF_CHECK(config.disk_failure_times_ms[i] >= 0.0,
                "disk failure times must be non-negative");
      int d;
      if (i < config.disk_failure_disks.size()) {
        d = config.disk_failure_disks[i];
      } else {
        while (next_draw < order.size() &&
               used[static_cast<std::size_t>(order[next_draw])]) {
          ++next_draw;
        }
        FBF_CHECK(next_draw < order.size(),
                  "more disk failures than disks in the array");
        d = order[next_draw];
        used[static_cast<std::size_t>(d)] = true;
      }
      disk_failures_.push_back(
          DiskFailure{config.disk_failure_times_ms[i], d});
    }
    std::sort(disk_failures_.begin(), disk_failures_.end(),
              [](const DiskFailure& a, const DiskFailure& b) {
                return a.at_ms < b.at_ms ||
                       (a.at_ms == b.at_ms && a.disk < b.disk);
              });
  }
}

bool FaultPlan::sector_error(std::uint64_t chunk_key) const {
  if (ure_threshold_ == 0) {
    return false;
  }
  return mix64(key_ ^ (chunk_key * 0x9e3779b97f4a7c15ull) ^ 0x55e1u) <
         ure_threshold_;
}

bool FaultPlan::transient(std::uint64_t nonce) const {
  if (transient_threshold_ == 0) {
    return false;
  }
  return mix64(key_ ^ (nonce * 0xbf58476d1ce4e5b9ull) ^ 0x7247u) <
         transient_threshold_;
}

double FaultPlan::service_multiplier(int disk) const {
  return multipliers_[static_cast<std::size_t>(disk)];
}

std::uint64_t FaultPlan::straggler_count() const {
  return static_cast<std::uint64_t>(std::count_if(
      multipliers_.begin(), multipliers_.end(),
      [](double m) { return m != 1.0; }));
}

bool FaultPlan::disk_failed(int disk, double now) const {
  for (const DiskFailure& f : disk_failures_) {
    if (f.at_ms > now) {
      return false;  // sorted by time: later entries cannot match either
    }
    if (f.disk == disk) {
      return true;
    }
  }
  return false;
}

FaultInjector::ReadOutcome FaultInjector::read(Disk& disk, double now,
                                               std::uint64_t lba,
                                               std::uint64_t chunk_key,
                                               bool original_location) {
  ReadOutcome out;
  // A failed disk times out after one full service slot; the attempt still
  // occupies the controller path, so it is a real submission.
  if (plan_->disk_failed(disk.id(), now)) {
    out.done_ms = disk.submit_read(now, lba);
    out.attempts = 1;
    ++stats_->dead_disk_reads;
    return out;
  }
  // A latent sector error is permanent: one attempt, no retries.
  if (original_location && plan_->sector_error(chunk_key)) {
    out.done_ms = disk.submit_read(now, lba);
    out.attempts = 1;
    ++stats_->sector_errors;
    return out;
  }
  double submit_at = now;
  for (;;) {
    // The disk may die between the backoff and the retry submission.
    if (out.attempts > 0 && plan_->disk_failed(disk.id(), submit_at)) {
      out.done_ms = disk.submit_read(submit_at, lba);
      ++out.attempts;
      ++stats_->dead_disk_reads;
      return out;
    }
    out.done_ms = disk.submit_read(submit_at, lba);
    ++out.attempts;
    if (!plan_->transient(transient_nonce_++)) {
      out.ok = true;
      return out;
    }
    ++stats_->transient_failures;
    if (out.attempts > plan_->config().max_retries) {
      return out;  // retry budget exhausted: hard failure
    }
    ++stats_->retries;
    submit_at = out.done_ms + plan_->config().retry_backoff_ms;
  }
}

int FaultInjector::spare_disk(const ArrayGeometry& geometry,
                              std::uint64_t stripe, codes::Cell cell,
                              double now) const {
  int d = geometry.spare_disk_of(stripe, cell);
  for (int hops = 0; plan_->disk_failed(d, now); ++hops) {
    FBF_CHECK(hops < geometry.num_disks(), "no live disk for spare write");
    d = (d + 1) % geometry.num_disks();
  }
  return d;
}

}  // namespace fbf::sim
