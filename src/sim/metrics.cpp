#include "sim/metrics.h"

#include "util/table.h"

namespace fbf::sim {

std::string SimMetrics::summary_line() const {
  std::string out;
  out += "hit_ratio=" + util::fmt_percent(hit_ratio());
  out += " disk_reads=" + std::to_string(disk_reads);
  out += " avg_response_ms=" + util::fmt_double(response_ms.mean());
  out += " reconstruction_ms=" + util::fmt_double(reconstruction_ms, 1);
  out += " stripes=" + std::to_string(stripes_recovered);
  return out;
}

}  // namespace fbf::sim
