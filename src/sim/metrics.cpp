#include "sim/metrics.h"

#include "obs/observer.h"
#include "obs/registry.h"
#include "util/table.h"

namespace fbf::sim {

std::string SimMetrics::summary_line() const {
  std::string out;
  out += "hit_ratio=" + util::fmt_percent(hit_ratio());
  out += " disk_reads=" + std::to_string(disk_reads);
  out += " avg_response_ms=" + util::fmt_double(response_ms.mean());
  out += " reconstruction_ms=" + util::fmt_double(reconstruction_ms, 1);
  out += " stripes=" + std::to_string(stripes_recovered);
  return out;
}

void record_run(obs::RunObserver* obs, const std::string& label,
                const SimMetrics& m, const obs::Histogram* response_hist) {
#if !FBF_OBS_ENABLED
  (void)label;
  (void)m;
  (void)response_hist;
  obs = nullptr;
#endif
  if (obs == nullptr) {
    return;
  }
  auto& reg = obs->registry();
  reg.add_counter("run.count", 1);
  reg.add_counter("run.cache_hits", m.cache.hits);
  reg.add_counter("run.cache_misses", m.cache.misses);
  reg.add_counter("run.cache_evictions", m.cache.evictions);
  reg.add_counter("run.total_chunk_requests", m.total_chunk_requests);
  reg.add_counter("run.disk_reads", m.disk_reads);
  reg.add_counter("run.planned_disk_reads", m.planned_disk_reads);
  reg.add_counter("run.disk_writes", m.disk_writes);
  reg.add_counter("run.chunks_recovered", m.chunks_recovered);
  reg.add_counter("run.stripes_recovered", m.stripes_recovered);
  reg.add_counter("run.schemes_generated", m.schemes_generated);
  reg.add_counter("run.scheme_cache_hits", m.scheme_cache_hits);
  reg.add_counter("run.app_requests", m.app_requests);
  reg.add_counter("run.app_degraded_reads", m.app_degraded_reads);
  if (m.app_requests > 0) {
    // Only runs that carried foreground traffic export these: recovery-only
    // metrics documents stay byte-identical to builds that predate the
    // online-recovery layer.
    reg.add_counter("run.app.served", m.app_served);
    reg.add_counter("run.app.parked_drained", m.app_parked_drained);
    reg.add_counter("run.app.degraded_writes", m.app_degraded_writes);
    reg.add_counter("run.app.deadline_miss", m.app_deadline_miss);
    if (m.app_fault.enabled) {
      reg.add_counter("run.app.fault.sector_errors", m.app_fault.sector_errors);
      reg.add_counter("run.app.fault.transient_failures",
                      m.app_fault.transient_failures);
      reg.add_counter("run.app.fault.retries", m.app_fault.retries);
      reg.add_counter("run.app.fault.dead_disk_reads",
                      m.app_fault.dead_disk_reads);
      reg.add_counter("run.app.fault.reconstructed_reads",
                      m.app_reconstructed_reads);
    }
  }
  if (m.write.enabled) {
    // Only runs with the write-back cache configured export these (incl.
    // run.write.spare_writes, though the counter itself is live on every
    // run): write-free metrics documents stay byte-identical to builds
    // that predate the write path.
    reg.add_counter("run.write.runs", 1);
    reg.add_counter("run.write.spare_writes", m.write.spare_writes);
    reg.add_counter("run.write.rmw_plans", m.write.rmw_plans);
    reg.add_counter("run.write.rcw_plans", m.write.rcw_plans);
    reg.add_counter("run.write.direct_plans", m.write.direct_plans);
    reg.add_counter("run.write.degraded_plans", m.write.degraded_plans);
    reg.add_counter("run.write.plan_disk_reads", m.write.plan_disk_reads);
    reg.add_counter("run.write.plan_cache_reads", m.write.plan_cache_reads);
    reg.add_counter("run.write.app_read_hits", m.write.app_read_hits);
    reg.add_counter("run.write.parity_updates", m.write.parity_updates);
    reg.add_counter("run.write.dirty_installed", m.write.dirty_installed);
    reg.add_counter("run.write.flushed", m.write.flushed);
    reg.add_counter("run.write.write_backs", m.write.write_backs);
    reg.add_counter("run.write.lost_dirty", m.write.lost_dirty);
    reg.add_counter("run.write.evicted_dirty", m.write.evicted_dirty);
    reg.add_counter("run.write.retained_dirty", m.write.retained_dirty);
    reg.add_counter("run.write.flush_ticks", m.write.flush_ticks);
    reg.add_counter("run.write.write_hits", m.write.write_hits);
    reg.add_counter("run.write.write_misses", m.write.write_misses);
  }
  if (m.fault.enabled) {
    // Only fault-injected runs export these: the no-fault metrics document
    // must stay byte-identical to builds that predate the fault layer.
    reg.add_counter("run.fault.runs", 1);
    reg.add_counter("run.fault.sector_errors", m.fault.sector_errors);
    reg.add_counter("run.fault.transient_failures", m.fault.transient_failures);
    reg.add_counter("run.fault.retries", m.fault.retries);
    reg.add_counter("run.fault.dead_disk_reads", m.fault.dead_disk_reads);
    reg.add_counter("run.fault.replans", m.fault.replans);
    reg.add_counter("run.fault.gauss_fallbacks", m.fault.gauss_fallbacks);
    reg.add_counter("run.fault.disk_failures", m.fault.disk_failures);
    reg.add_counter("run.fault.escalated_stripes", m.fault.escalated_stripes);
    reg.add_counter("run.fault.extra_lost_chunks", m.fault.extra_lost_chunks);
    reg.add_counter("run.fault.respared", m.fault.respared);
    reg.add_counter("run.fault.straggler_disks", m.fault.straggler_disks);
  }

  reg.set_gauge(label + ".hit_ratio", m.hit_ratio());
  reg.set_gauge(label + ".avg_response_ms", m.response_ms.mean());
  reg.set_gauge(label + ".p99_response_ms",
                m.response_reservoir.percentile(0.99));
  reg.set_gauge(label + ".reconstruction_ms", m.reconstruction_ms);
  if (m.app_requests > 0) {
    reg.set_gauge(label + ".app_avg_response_ms", m.app_response_ms.mean());
    reg.set_gauge(label + ".app_p99_response_ms",
                  m.app_response_hist.percentile(0.99));
    reg.set_gauge(label + ".app_p999_response_ms",
                  m.app_response_hist.percentile(0.999));
    reg.merge_histogram(label + ".app_response_ms", m.app_response_hist);
  }
  if (response_hist != nullptr) {
    reg.merge_histogram(label + ".response_ms", *response_hist);
  }
  obs->add_wall(label + ".scheme_gen_wall_ms", m.scheme_gen_wall_ms);
}

}  // namespace fbf::sim
