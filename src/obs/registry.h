// Run-level metric registry: named counters, gauges, and log-bucketed
// histograms.
//
// Design rules that keep the export deterministic under a multi-threaded
// sweep (same seed -> byte-identical JSON):
//
//  - counters are integer sums, so concurrent contributions commute;
//  - gauges and histograms are written under run-unique keys (one grid
//    point = one label), so no value depends on scheduling order;
//  - floating-point accumulation happens engine-locally (single-threaded)
//    in a Histogram that is merged into the registry once per run.
//
// All registry methods lock one mutex — they sit on cold paths (end of a
// run, export). The hot-loop instrumentation lives in obs/observer.h and
// touches the registry never.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>

namespace fbf::obs {

/// Power-of-two-bucketed histogram: a positive sample v lands in the
/// bucket of its binary exponent e = floor(log2 v), i.e. v in [2^e,
/// 2^(e+1)), with e clamped to [-64, 63]. Zero/negative/NaN samples are
/// counted separately — response times are non-negative, so that bucket
/// doubles as a sanity signal. Fixed-size storage keeps add() cheap enough
/// to sit behind a per-request observer check.
class Histogram {
 public:
  static constexpr int kMinExp = -64;
  static constexpr int kMaxExp = 63;

  void add(double v);
  void merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t nonpositive() const { return nonpositive_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Count in the bucket for binary exponent `exp` in [kMinExp, kMaxExp].
  std::uint64_t bucket(int exp) const;

  /// Bucket-resolution quantile: the upper edge 2^(e+1) of the bucket
  /// holding the rank-ceil(q * count) sample (nearest-rank over the
  /// log2 buckets), clamped to the observed max so a lone sample reports
  /// itself exactly. Nonpositive samples rank below every bucket and
  /// report 0. Accurate to a factor of two — the histogram's resolution —
  /// which is what the SLO gauges (p99/p999) need without retaining
  /// samples.
  double percentile(double q) const;

  /// Calls fn(exp, count) for every non-empty bucket, ascending exponent.
  template <typename Fn>
  void for_each_bucket(Fn&& fn) const {
    for (int e = kMinExp; e <= kMaxExp; ++e) {
      const std::uint64_t c = buckets_[static_cast<std::size_t>(e - kMinExp)];
      if (c != 0) {
        fn(e, c);
      }
    }
  }

 private:
  std::array<std::uint64_t, 128> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t nonpositive_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Thread-safe name -> instrument store. Sorted maps make every snapshot
/// (and therefore every export) key-ordered with no extra work.
class Registry {
 public:
  void add_counter(const std::string& name, std::uint64_t delta);
  void set_gauge(const std::string& name, double value);
  /// Adds one sample to the named histogram (creates it on first use).
  void observe(const std::string& name, double value);
  /// Folds an externally-built histogram in (creates it on first use).
  void merge_histogram(const std::string& name, const Histogram& h);

  /// Reads return 0 / empty for absent names (no insertion).
  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  bool has_gauge(const std::string& name) const;
  Histogram histogram(const std::string& name) const;

  std::map<std::string, std::uint64_t> counters_snapshot() const;
  std::map<std::string, double> gauges_snapshot() const;
  std::map<std::string, Histogram> histograms_snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace fbf::obs
