#include "obs/registry.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace fbf::obs {

void Histogram::add(double v) {
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  if (!(v > 0.0)) {  // zero, negative, or NaN
    ++nonpositive_;
    return;
  }
  const int e = std::clamp(std::ilogb(v), kMinExp, kMaxExp);
  ++buckets_[static_cast<std::size_t>(e - kMinExp)];
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  nonpositive_ += other.nonpositive_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t Histogram::bucket(int exp) const {
  FBF_CHECK(exp >= kMinExp && exp <= kMaxExp, "histogram exponent out of range");
  return buckets_[static_cast<std::size_t>(exp - kMinExp)];
}

double Histogram::percentile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  const double clamped_q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(clamped_q * static_cast<double>(count_))),
      1, count_);
  std::uint64_t cumulative = nonpositive_;
  if (rank <= cumulative) {
    return 0.0;  // the quantile falls among the nonpositive samples
  }
  for (int e = kMinExp; e <= kMaxExp; ++e) {
    cumulative += buckets_[static_cast<std::size_t>(e - kMinExp)];
    if (rank <= cumulative) {
      return std::min(max_, std::ldexp(1.0, e + 1));
    }
  }
  return max_;
}

void Registry::add_counter(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void Registry::set_gauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void Registry::observe(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].add(value);
}

void Registry::merge_histogram(const std::string& name, const Histogram& h) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[name].merge(h);
}

std::uint64_t Registry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

bool Registry::has_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_.count(name) > 0;
}

Histogram Registry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? Histogram{} : it->second;
}

std::map<std::string, std::uint64_t> Registry::counters_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, double> Registry::gauges_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_;
}

std::map<std::string, Histogram> Registry::histograms_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_;
}

}  // namespace fbf::obs
