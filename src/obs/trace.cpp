#include "obs/trace.h"

#include <ostream>

#include "obs/json.h"

namespace fbf::obs {

TraceRecorder::TraceRecorder(TraceLevel level, std::size_t max_events)
    : level_(level),
      max_events_(max_events),
      t0_(std::chrono::steady_clock::now()) {}

void TraceRecorder::set_process_name(int pid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  process_names_[pid] = std::move(name);
}

void TraceRecorder::duration(int pid, std::uint32_t tid, std::string_view name,
                             std::string_view cat, double ts_us, double dur_us,
                             std::string_view arg_name, std::uint64_t arg) {
  if (!on(TraceLevel::Phases)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  Event ev;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.pid = static_cast<std::uint32_t>(pid);
  ev.tid = tid;
  ev.name = std::string(name);
  ev.cat = std::string(cat);
  ev.arg_name = std::string(arg_name);
  ev.arg = arg;
  events_.push_back(std::move(ev));
}

double TraceRecorder::wall_now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceRecorder::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "\n";
  };
  for (const auto& [pid, name] : process_names_) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
       << json::escape(name) << "\"}}";
  }
  for (const Event& ev : events_) {
    sep();
    os << "{\"ph\":\"X\",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid
       << ",\"ts\":" << json::number(ev.ts_us)
       << ",\"dur\":" << json::number(ev.dur_us) << ",\"name\":\""
       << json::escape(ev.name) << "\",\"cat\":\""
       << json::escape(ev.cat.empty() ? "fbf" : ev.cat) << "\"";
    if (!ev.arg_name.empty()) {
      os << ",\"args\":{\"" << json::escape(ev.arg_name) << "\":" << ev.arg
         << "}";
    }
    os << "}";
  }
  if (dropped_ > 0) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"fbf_dropped_events\","
          "\"args\":{\"count\":"
       << dropped_ << "}}";
  }
  os << "\n]}\n";
}

}  // namespace fbf::obs
