#include "obs/observer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.h"
#include "util/check.h"

namespace fbf::obs {

RunObserver::RunObserver(TraceLevel trace_level)
    : RunObserver(Options{"", "", trace_level, 1u << 20}) {}

RunObserver::RunObserver(Options opts)
    : opts_(std::move(opts)),
      trace_(opts_.trace_level, opts_.max_trace_events) {
  trace_.set_process_name(kPidSim, "workers/chains (simulated time)");
  trace_.set_process_name(kPidDisks, "disks (simulated time)");
  trace_.set_process_name(kPidWall, "wall clock");
}

RunObserver::~RunObserver() {
  try {
    write_outputs();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fbf-obs: flush failed: %s\n", e.what());
  }
}

void RunObserver::set_wall(const std::string& name, double ms) {
  std::lock_guard<std::mutex> lock(wall_mu_);
  wall_[name] = ms;
}

void RunObserver::add_wall(const std::string& name, double ms) {
  std::lock_guard<std::mutex> lock(wall_mu_);
  wall_[name] += ms;
}

double RunObserver::wall(const std::string& name) const {
  std::lock_guard<std::mutex> lock(wall_mu_);
  const auto it = wall_.find(name);
  return it == wall_.end() ? 0.0 : it->second;
}

std::string RunObserver::metrics_json(bool include_wall) const {
  const auto counters = registry_.counters_snapshot();
  const auto gauges = registry_.gauges_snapshot();
  const auto histograms = registry_.histograms_snapshot();

  std::ostringstream os;
  os << "{\n  \"schema\": \"fbf.metrics.v1\",\n";

  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n" : ",\n") << "    \"" << json::escape(name)
       << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "\n" : ",\n") << "    \"" << json::escape(name)
       << "\": " << json::number(value);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";

  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "\n" : ",\n") << "    \"" << json::escape(name) << "\": {\n"
       << "      \"count\": " << h.count() << ",\n"
       << "      \"sum\": " << json::number(h.sum()) << ",\n"
       << "      \"min\": " << json::number(h.min()) << ",\n"
       << "      \"max\": " << json::number(h.max()) << ",\n"
       << "      \"nonpositive\": " << h.nonpositive() << ",\n"
       << "      \"log2_buckets\": {";
    bool bfirst = true;
    h.for_each_bucket([&](int exp, std::uint64_t c) {
      os << (bfirst ? "" : ", ") << "\"" << exp << "\": " << c;
      bfirst = false;
    });
    os << "}\n    }";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}";

  if (include_wall) {
    std::lock_guard<std::mutex> lock(wall_mu_);
    os << ",\n  \"wall_clock\": {\n"
          "    \"note\": \"nondeterministic wall-clock timings in ms; "
          "excluded from determinism checks\"";
    for (const auto& [name, value] : wall_) {
      os << ",\n    \"" << json::escape(name)
         << "\": " << json::number(value);
    }
    os << "\n  }";
  }
  os << "\n}\n";
  return os.str();
}

void RunObserver::write_outputs() {
  if (written_) {
    return;
  }
  written_ = true;
  if (!opts_.metrics_path.empty()) {
    std::ofstream ofs(opts_.metrics_path);
    ofs << metrics_json(/*include_wall=*/true);
    FBF_CHECK(ofs.good(), "cannot write metrics JSON to " + opts_.metrics_path);
  }
  if (!opts_.trace_path.empty()) {
    std::ofstream ofs(opts_.trace_path);
    trace_.write_json(ofs);
    FBF_CHECK(ofs.good(), "cannot write trace JSON to " + opts_.trace_path);
  }
}

PhaseTimer::PhaseTimer(RunObserver* obs, std::string name, std::uint32_t tid,
                       TraceLevel level)
    : obs_(obs), name_(std::move(name)), tid_(tid), level_(level) {
#if FBF_OBS_ENABLED
  if (obs_ != nullptr) {
    start_us_ = obs_->trace().wall_now_us();
  }
#else
  obs_ = nullptr;
#endif
}

PhaseTimer::~PhaseTimer() {
  if (obs_ == nullptr) {
    return;
  }
  const double end_us = obs_->trace().wall_now_us();
  const double dur_us = end_us - start_us_;
  obs_->add_wall("phase." + name_ + "_ms", dur_us / 1000.0);
  if (obs_->trace().on(level_)) {
    obs_->trace().duration(kPidWall, tid_, name_, "phase", start_us_, dur_us);
  }
}

}  // namespace fbf::obs
