// Span recorder emitting Chrome trace-event JSON, loadable by
// chrome://tracing and Perfetto (ui.perfetto.dev).
//
// Three fixed lanes keep simulated and wall timelines apart without
// confusing the viewer (both start near zero):
//
//   pid kPidSim   - simulated time; tid = SOR worker id (DOR uses tid 0).
//                   Stripe recoveries and XOR chain folds live here.
//   pid kPidDisks - simulated time; tid = disk id. Disk service spans
//                   (reads incl. queueing) and spare writes.
//   pid kPidWall  - wall-clock time since recorder creation; scheme
//                   generation, sweep grid points, RAII phase timers.
//
// Timestamps are microseconds (the trace-event unit); the engines'
// simulated milliseconds are scaled by 1000 at the call site. The event
// buffer is capped: past `max_events` new spans are counted as dropped
// (reported as a metadata event) instead of growing without bound when
// someone traces a full-scale sweep at fine detail.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fbf::obs {

enum class TraceLevel : std::uint8_t {
  Off = 0,
  Phases = 1,  ///< stripe recoveries, spare writes, scheme gen, sweep points
  Fine = 2,    ///< plus per-request disk service and per-chain XOR folds
};

inline constexpr int kPidSim = 1;
inline constexpr int kPidDisks = 2;
inline constexpr int kPidWall = 3;

class TraceRecorder {
 public:
  explicit TraceRecorder(TraceLevel level, std::size_t max_events = 1u << 20);

  /// True when spans of the given detail level are being recorded.
  bool on(TraceLevel need) const {
    return level_ >= need && need != TraceLevel::Off;
  }
  TraceLevel level() const { return level_; }

  /// Labels a pid lane ("process_name" metadata event on export).
  void set_process_name(int pid, std::string name);

  /// Records one complete span ("ph":"X"). `arg_name` non-empty attaches a
  /// single integer argument (e.g. the stripe id). Thread-safe.
  void duration(int pid, std::uint32_t tid, std::string_view name,
                std::string_view cat, double ts_us, double dur_us,
                std::string_view arg_name = {}, std::uint64_t arg = 0);

  /// Microseconds of wall clock since recorder construction.
  double wall_now_us() const;

  std::size_t size() const;
  std::uint64_t dropped() const;

  /// Writes the {"traceEvents":[...]} document.
  void write_json(std::ostream& os) const;

 private:
  struct Event {
    double ts_us = 0.0;
    double dur_us = 0.0;
    std::uint64_t arg = 0;
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    std::string name;
    std::string cat;
    std::string arg_name;  ///< empty = no args object
  };

  mutable std::mutex mu_;
  TraceLevel level_;
  std::size_t max_events_;
  std::chrono::steady_clock::time_point t0_;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
  std::map<int, std::string> process_names_;
};

}  // namespace fbf::obs
