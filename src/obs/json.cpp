#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace fbf::obs::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string number(double v) {
  FBF_CHECK(std::isfinite(v), "JSON cannot represent a non-finite number");
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  FBF_CHECK(res.ec == std::errc(), "double formatting failed");
  return std::string(buf, res.ptr);
}

bool Value::as_bool() const {
  FBF_CHECK(is_bool(), "JSON value is not a bool");
  return std::get<bool>(v_);
}

double Value::as_number() const {
  FBF_CHECK(is_number(), "JSON value is not a number");
  return std::get<double>(v_);
}

const std::string& Value::as_string() const {
  FBF_CHECK(is_string(), "JSON value is not a string");
  return std::get<std::string>(v_);
}

const Value::Array& Value::as_array() const {
  FBF_CHECK(is_array(), "JSON value is not an array");
  return std::get<Array>(v_);
}

const Value::Object& Value::as_object() const {
  FBF_CHECK(is_object(), "JSON value is not an object");
  return std::get<Object>(v_);
}

Value::Object& Value::as_object() {
  FBF_CHECK(is_object(), "JSON value is not an object");
  return std::get<Object>(v_);
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    check(pos_ == text_.size(), "trailing garbage after JSON document");
    return v;
  }

 private:
  void check(bool cond, const char* msg) const {
    FBF_CHECK(cond, std::string(msg) + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    check(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    check(peek() == c, "unexpected character in JSON");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value(parse_string());
      case 't':
        check(consume_literal("true"), "bad literal");
        return Value(true);
      case 'f':
        check(consume_literal("false"), "bad literal");
        return Value(false);
      case 'n':
        check(consume_literal("null"), "bad literal");
        return Value(nullptr);
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    expect('[');
    Value::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value(std::move(arr));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      check(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      check(pos_ < text_.size(), "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          check(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              check(false, "bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported:
          // the exporters only escape ASCII control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          check(false, "unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double out = 0.0;
    const char* b = text_.data() + start;
    const char* e = text_.data() + pos_;
    const auto res = std::from_chars(b, e, out);
    check(res.ec == std::errc() && res.ptr == e && b != e, "bad number");
    return Value(out);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace fbf::obs::json
