// Minimal JSON support for the observability exporters.
//
// The writer side is just two deterministic formatting helpers (escape +
// number); the exporters assemble their documents by hand so key order and
// layout are fully under their control (the metrics export must be
// byte-identical across same-seed runs). The reader side is a small
// recursive-descent parser used by tests and tools/obs_schema_check to
// validate what the exporters wrote — no third-party JSON dependency.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace fbf::obs::json {

/// Escapes a string's content for embedding between JSON quotes
/// (backslash, quote, and control characters; no surrounding quotes).
std::string escape(std::string_view s);

/// Shortest round-trip decimal for a double via std::to_chars: locale
/// independent and deterministic for identical values. Non-finite values
/// (not representable in JSON) are emitted as quoted strings by callers,
/// so this asserts finiteness.
std::string number(double v);

/// Parsed JSON value. Numbers are doubles (the exporters never emit
/// integers above 2^53); objects are sorted maps so equality comparisons
/// are order-insensitive, matching the exporters' sorted-key output.
class Value {
 public:
  using Array = std::vector<Value>;
  using Object = std::map<std::string, Value>;
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  Value() : v_(nullptr) {}
  Value(Storage v) : v_(std::move(v)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  /// Typed accessors; each FBF_CHECKs the stored kind.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Object& as_object();

  bool operator==(const Value& other) const { return v_ == other.v_; }

 private:
  Storage v_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). Throws util::CheckError with position info on malformed
/// input.
Value parse(std::string_view text);

}  // namespace fbf::obs::json
