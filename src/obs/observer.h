// Run-level observability facade: one RunObserver owns the metric
// Registry, the TraceRecorder, and the wall-clock block, and writes the
// two export files (--metrics-out / --trace-out).
//
// Cost model: every instrumentation site in the engines goes through the
// inline hooks at the bottom of this header. With no observer configured
// (the default for every test and bench that doesn't ask for one) a hook
// is a single null-pointer test that the compiler inlines at the call
// site; building with -DFBF_OBS_ENABLED=0 removes even that, compiling
// the hooks to empty bodies. Either way the per-request cache path is
// untouched — instrumentation hangs off the simulator loops, not the
// policies.
//
// Determinism contract: metrics_json(false) — everything except the
// "wall_clock" block — is byte-identical across same-seed runs. Counters
// are commutative integer sums; gauges and histograms are written under
// run-unique labels; doubles are formatted by std::to_chars. The wall
// block and the trace file carry real timings and are exempt.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/registry.h"
#include "obs/trace.h"

// Compile-time kill switch for the inline hooks (see header comment).
#ifndef FBF_OBS_ENABLED
#define FBF_OBS_ENABLED 1
#endif

namespace fbf::obs {

class RunObserver {
 public:
  struct Options {
    std::string metrics_path;  ///< empty = keep metrics in memory only
    std::string trace_path;    ///< empty = no trace file
    TraceLevel trace_level = TraceLevel::Phases;
    std::size_t max_trace_events = 1u << 20;
  };

  /// In-memory observer (tests): no files, tracing at the given level.
  explicit RunObserver(TraceLevel trace_level = TraceLevel::Off);
  explicit RunObserver(Options opts);
  /// Flushes unwritten outputs, swallowing I/O errors (logged to stderr) —
  /// prefer an explicit write_outputs() where failure should propagate.
  ~RunObserver();

  RunObserver(const RunObserver&) = delete;
  RunObserver& operator=(const RunObserver&) = delete;

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  TraceRecorder& trace() { return trace_; }
  const TraceRecorder& trace() const { return trace_; }

  /// Wall-clock block: named millisecond timings, explicitly exempt from
  /// the determinism contract. add_wall accumulates (repeated phases sum).
  void set_wall(const std::string& name, double ms);
  void add_wall(const std::string& name, double ms);
  double wall(const std::string& name) const;

  /// Deterministic metrics document; include_wall appends the
  /// nondeterministic "wall_clock" block (file exports always include it).
  std::string metrics_json(bool include_wall = true) const;

  /// Writes metrics/trace files for any configured paths. Idempotent;
  /// throws util::CheckError when a file cannot be written.
  void write_outputs();

 private:
  Options opts_;
  Registry registry_;
  TraceRecorder trace_;
  mutable std::mutex wall_mu_;
  std::map<std::string, double> wall_;
  bool written_ = false;
};

// ---- Inline hooks (the only API the engine hot loops touch). ----

/// True when `obs` records spans at the given detail level.
inline bool tracing(const RunObserver* obs, TraceLevel need) {
#if FBF_OBS_ENABLED
  return obs != nullptr && obs->trace().on(need);
#else
  (void)obs;
  (void)need;
  return false;
#endif
}

/// Records one span when the observer is present and the level matches;
/// otherwise a null test. Simulated-time callers pass ms * 1000.
inline void trace_span(RunObserver* obs, TraceLevel need, int pid,
                       std::uint32_t tid, std::string_view name,
                       std::string_view cat, double ts_us, double dur_us,
                       std::string_view arg_name = {}, std::uint64_t arg = 0) {
#if FBF_OBS_ENABLED
  if (obs == nullptr || !obs->trace().on(need)) {
    return;
  }
  obs->trace().duration(pid, tid, name, cat, ts_us, dur_us, arg_name, arg);
#else
  (void)obs;
  (void)need;
  (void)pid;
  (void)tid;
  (void)name;
  (void)cat;
  (void)ts_us;
  (void)dur_us;
  (void)arg_name;
  (void)arg;
#endif
}

/// RAII wall-clock phase timer: on destruction adds the elapsed
/// milliseconds to the wall block as "phase.<name>_ms" and emits a span on
/// the wall lane at the given level. Null observer = no-op.
class PhaseTimer {
 public:
  PhaseTimer(RunObserver* obs, std::string name, std::uint32_t tid = 0,
             TraceLevel level = TraceLevel::Phases);
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  RunObserver* obs_;
  std::string name_;
  std::uint32_t tid_;
  TraceLevel level_;
  double start_us_ = 0.0;
};

}  // namespace fbf::obs
