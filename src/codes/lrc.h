// Local Reconstruction Codes (Huang et al., Windows Azure Storage) — the
// extension the paper's footnote 3 sketches: "RS based codes like Local
// Reconstruction Codes can be applied with FBF as well, by investigating
// relationships among global/local parity chains."
//
// LRC(k, l, g): k data chunks in l equal groups, one XOR local parity per
// group, g global Cauchy-RS parities over all data. Chunk order within a
// stripe: data[0..k), locals[k..k+l), globals[k+l..k+l+g).
//
// The chain structure FBF reasons about: l local chains (group + its
// local parity) and g global chains (all data + one global parity).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codes/gf256.h"

namespace fbf::codes {

class LrcCode {
 public:
  /// Requires k % l == 0, g >= 1.
  LrcCode(int k, int l, int g);

  int k() const { return k_; }
  int l() const { return l_; }
  int g() const { return g_; }
  int n() const { return k_ + l_ + g_; }
  int group_size() const { return k_ / l_; }

  /// Group index of a data chunk.
  int group_of(int data_index) const;

  /// Chunk indices of one local chain: the group's data + local parity.
  std::vector<int> local_chain(int group) const;

  /// Chunk indices of one global chain: all data + global parity r.
  std::vector<int> global_chain(int r) const;

  /// Computes all l + g parity chunks from the data chunks.
  void encode(std::span<const std::span<std::uint8_t>> chunks) const;

  /// True iff every chain checks out (all-zero syndrome).
  bool verify(std::span<const std::span<const std::uint8_t>> chunks) const;

  /// Recovers erased chunk indices in-place via GF(256) elimination over
  /// the local + global chain equations. Returns false when the pattern
  /// is information-theoretically unrecoverable.
  bool decode(std::span<const std::span<std::uint8_t>> chunks,
              const std::vector<int>& erased) const;

  /// Recovery plan for FBF: for each erased chunk, the cheapest usable
  /// chain (local if the group has a single erasure, else global), the
  /// distinct fetch set, and per-chunk reference counts (priorities).
  struct Plan {
    std::vector<std::vector<int>> reads_per_erasure;  // in erased order
    std::vector<int> reference_count;                 // index: chunk id
    int total_references = 0;
    int distinct_reads = 0;
  };
  Plan plan_recovery(const std::vector<int>& erased) const;

  /// Coefficient of data chunk c in global parity r (Cauchy).
  Gf256::Elem global_coefficient(int r, int c) const;

 private:
  int k_;
  int l_;
  int g_;
  std::vector<Gf256::Elem> coeff_;  // g x k Cauchy rows
};

}  // namespace fbf::codes
