// Constructors for the four 3DFT layouts the paper evaluates.
//
// STAR (p+3 disks) follows Huang & Xu 2008: extended EVENODD with a
// diagonal and an anti-diagonal parity column, each folding in an adjuster
// diagonal. The other three layouts are documented substitutions (see
// DESIGN.md §4): Triple-Star -> RTP-style p+2 layout (adjuster-free,
// diagonals span data + row parity), TIP -> that layout shortened by one
// data column (p+1 disks, three independent parity directions), HDD1 ->
// STAR shortened by two data columns (p+1 disks, adjuster-style chains).
// All are verified 3-erasure-decodable exhaustively in tests.
#pragma once

#include <string>
#include <vector>

#include "codes/layout.h"

namespace fbf::codes {

/// Code identifiers used across benches/examples. Order matches the paper's
/// presentation (p+1, p+1, p+2, p+3).
enum class CodeId { Tip, Hdd1, TripleStar, Star };

inline constexpr CodeId kAllCodes[] = {CodeId::Tip, CodeId::Hdd1,
                                       CodeId::TripleStar, CodeId::Star};

const char* to_string(CodeId id);

/// Parses "tip" / "hdd1" / "triplestar" / "star" (case-insensitive).
CodeId code_from_string(const std::string& name);

/// True iff p is prime (layouts require a prime p >= 3).
bool is_prime(int p);

/// STAR layout on p+3-shorten disks; `shorten` removes the last data
/// columns (treated as all-zero), preserving 3-erasure tolerance.
Layout make_star(int p, int shorten = 0);

/// RTP-style layout on p+2-shorten disks: row parity column, diagonal and
/// anti-diagonal parity columns whose chains span data + row parity.
Layout make_rtp(int p, int shorten = 0);

/// Builds the layout for a named code at prime p.
Layout make_layout(CodeId id, int p);

/// Number of disks the code uses at prime p.
int code_disks(CodeId id, int p);

}  // namespace fbf::codes
