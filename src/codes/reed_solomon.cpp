#include "codes/reed_solomon.h"

#include <algorithm>

#include "util/check.h"

namespace fbf::codes {

ReedSolomon::ReedSolomon(int k, int m) : k_(k), m_(m) {
  FBF_CHECK(k >= 1 && m >= 1, "RS needs k >= 1, m >= 1");
  FBF_CHECK(k + m <= 255, "RS over GF(256) needs k + m <= 255");
  // Cauchy matrix: rows indexed by x_r = r, columns by y_c = m + c; all
  // points distinct, so every square submatrix of [I; C] is nonsingular.
  cauchy_.resize(static_cast<std::size_t>(m) * static_cast<std::size_t>(k));
  for (int r = 0; r < m; ++r) {
    for (int c = 0; c < k; ++c) {
      const auto x = static_cast<Gf256::Elem>(r);
      const auto y = static_cast<Gf256::Elem>(m + c);
      cauchy_[static_cast<std::size_t>(r * k + c)] =
          Gf256::inv(Gf256::add(x, y));
    }
  }
}

Gf256::Elem ReedSolomon::coefficient(int r, int c) const {
  FBF_CHECK(r >= 0 && r < m_ && c >= 0 && c < k_,
            "RS coefficient out of range");
  return cauchy_[static_cast<std::size_t>(r * k_ + c)];
}

void ReedSolomon::encode(
    std::span<const std::span<const std::uint8_t>> data,
    std::span<const std::span<std::uint8_t>> parity) const {
  FBF_CHECK(static_cast<int>(data.size()) == k_, "RS encode: need k chunks");
  FBF_CHECK(static_cast<int>(parity.size()) == m_,
            "RS encode: need m parity chunks");
  for (int r = 0; r < m_; ++r) {
    auto out = parity[static_cast<std::size_t>(r)];
    std::fill(out.begin(), out.end(), std::uint8_t{0});
    for (int c = 0; c < k_; ++c) {
      const auto in = data[static_cast<std::size_t>(c)];
      FBF_CHECK(in.size() == out.size(), "RS encode: chunk size mismatch");
      Gf256::mul_add(out, in, coefficient(r, c));
    }
  }
}

bool ReedSolomon::decode(std::span<const std::span<std::uint8_t>> chunks,
                         const std::vector<int>& erased) const {
  FBF_CHECK(static_cast<int>(chunks.size()) == n(),
            "RS decode: need all n chunk slots");
  if (erased.empty()) {
    return true;
  }
  if (static_cast<int>(erased.size()) > m_) {
    return false;
  }
  std::vector<bool> is_erased(static_cast<std::size_t>(n()), false);
  for (int e : erased) {
    FBF_CHECK(e >= 0 && e < n(), "RS decode: erased index out of range");
    is_erased[static_cast<std::size_t>(e)] = true;
  }

  // Pick k surviving rows of the full generator [I_k; C].
  std::vector<int> rows;
  for (int i = 0; i < n() && static_cast<int>(rows.size()) < k_; ++i) {
    if (!is_erased[static_cast<std::size_t>(i)]) {
      rows.push_back(i);
    }
  }
  if (static_cast<int>(rows.size()) < k_) {
    return false;
  }

  // A[i][j]: coefficient of data j in surviving row i. Invert via
  // Gauss-Jordan on [A | I].
  const auto kk = static_cast<std::size_t>(k_);
  std::vector<Gf256::Elem> a(kk * kk, 0);
  std::vector<Gf256::Elem> ainv(kk * kk, 0);
  for (std::size_t i = 0; i < kk; ++i) {
    const int row = rows[i];
    for (std::size_t j = 0; j < kk; ++j) {
      a[i * kk + j] = row < k_ ? static_cast<Gf256::Elem>(
                                     row == static_cast<int>(j) ? 1 : 0)
                               : coefficient(row - k_, static_cast<int>(j));
    }
    ainv[i * kk + i] = 1;
  }
  for (std::size_t col = 0; col < kk; ++col) {
    std::size_t pivot = col;
    while (pivot < kk && a[pivot * kk + col] == 0) {
      ++pivot;
    }
    if (pivot == kk) {
      return false;  // singular: not decodable (cannot happen for Cauchy)
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < kk; ++j) {
        std::swap(a[pivot * kk + j], a[col * kk + j]);
        std::swap(ainv[pivot * kk + j], ainv[col * kk + j]);
      }
    }
    const Gf256::Elem inv_p = Gf256::inv(a[col * kk + col]);
    for (std::size_t j = 0; j < kk; ++j) {
      a[col * kk + j] = Gf256::mul(a[col * kk + j], inv_p);
      ainv[col * kk + j] = Gf256::mul(ainv[col * kk + j], inv_p);
    }
    for (std::size_t r = 0; r < kk; ++r) {
      if (r == col || a[r * kk + col] == 0) {
        continue;
      }
      const Gf256::Elem f = a[r * kk + col];
      for (std::size_t j = 0; j < kk; ++j) {
        a[r * kk + j] ^= Gf256::mul(f, a[col * kk + j]);
        ainv[r * kk + j] ^= Gf256::mul(f, ainv[col * kk + j]);
      }
    }
  }

  // Recover erased data rows: data_j = sum_i ainv[j][i] * chunk[rows[i]].
  for (int e : erased) {
    if (e >= k_) {
      continue;  // parity handled below
    }
    auto out = chunks[static_cast<std::size_t>(e)];
    std::fill(out.begin(), out.end(), std::uint8_t{0});
    for (std::size_t i = 0; i < kk; ++i) {
      Gf256::mul_add(out, chunks[static_cast<std::size_t>(rows[i])],
                     ainv[static_cast<std::size_t>(e) * kk + i]);
    }
  }
  // Recompute erased parity rows from the (now complete) data.
  for (int e : erased) {
    if (e < k_) {
      continue;
    }
    auto out = chunks[static_cast<std::size_t>(e)];
    std::fill(out.begin(), out.end(), std::uint8_t{0});
    for (int c = 0; c < k_; ++c) {
      Gf256::mul_add(out, chunks[static_cast<std::size_t>(c)],
                     coefficient(e - k_, c));
    }
  }
  return true;
}

}  // namespace fbf::codes
