// Chunk-level encode / verify / erasure-decode for any Layout.
//
// Encoding walks Layout::encode_order() and folds each chain into its parity
// cell with the dispatched XOR kernels (codes/xor_kernels.h). Decoding is
// two-phase: peeling (repeatedly solve chains with a single erased member —
// the path real recovery schemes use), then a generic GF(2) Gaussian pass
// over the remaining unknowns. mds3_check is the symbolic oracle used by
// tests to prove triple-erasure tolerance.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "codes/layout.h"
#include "codes/xor_kernels.h"
#include "util/aligned.h"
#include "util/rng.h"

namespace fbf::codes {

/// Owns the chunk buffers of one stripe.
///
/// Alignment contract: every chunk starts on a kAlignment (64-byte)
/// boundary — the buffer is over-aligned and the per-chunk stride is padded
/// up to kAlignment — so the vector XOR kernels start aligned and only the
/// final sub-vector tail of odd chunk sizes takes the byte loop.
class StripeData {
 public:
  static constexpr std::size_t kAlignment = 64;

  StripeData(const Layout& layout, std::size_t chunk_size);

  std::size_t chunk_size() const { return chunk_size_; }
  std::span<std::byte> chunk(Cell c);
  std::span<const std::byte> chunk(Cell c) const;

  /// Fills every data cell with random bytes (parity cells untouched).
  void fill_random(util::Rng& rng);

  /// Zeroes one chunk (models losing it).
  void erase(Cell c);

  const Layout& layout() const { return *layout_; }

 private:
  const Layout* layout_;
  std::size_t chunk_size_;
  std::size_t stride_;  ///< chunk_size_ rounded up to kAlignment
  std::vector<std::byte, util::AlignedAllocator<std::byte, kAlignment>>
      bytes_;
};

/// Computes every parity cell. Requires data cells to be populated.
void encode(StripeData& stripe);

/// True iff every chain XORs to zero.
bool verify(const StripeData& stripe);

struct DecodeResult {
  bool ok = false;
  int peeled = 0;             ///< erasures recovered by peeling
  int gaussian_solved = 0;    ///< erasures needing the Gaussian fallback
};

/// Symbolic peeling plan for an erasure pattern: the (target, chain) steps
/// a peeling pass executes in order, plus the erased cells peeling cannot
/// reach (they need the Gaussian fallback). Pure function of the layout and
/// the pattern — the recovery planner uses it to re-plan chains around
/// mid-recovery losses without touching chunk data.
struct PeelPlan {
  struct Step {
    Cell target;
    int chain_id = -1;
  };
  std::vector<Step> steps;
  /// Unreachable erased cells, in layout cell-index order.
  std::vector<Cell> gauss_cells;
};

PeelPlan plan_peeling(const Layout& layout, const std::vector<Cell>& erased);

enum class DecodeMethod : std::uint8_t {
  PeelThenGauss,  ///< peel what a chain pass can, Gauss for the rest
  GaussOnly,      ///< generic GF(2) solve of the whole pattern (oracle path)
};

/// Recovers the given erased cells in-place. The caller must have zeroed or
/// otherwise invalidated them; their prior contents are ignored.
DecodeResult decode_erasures(StripeData& stripe,
                             const std::vector<Cell>& erased,
                             DecodeMethod method = DecodeMethod::PeelThenGauss);

/// Symbolic decodability of an erasure pattern: the chain-incidence matrix
/// restricted to the erased cells has full column rank.
bool erasure_decodable(const Layout& layout, const std::vector<Cell>& erased);

/// Exhaustive check that every erasure of up to three full columns is
/// decodable.
bool mds3_check(const Layout& layout);

}  // namespace fbf::codes
