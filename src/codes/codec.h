// Chunk-level encode / verify / erasure-decode for any Layout.
//
// Encoding walks Layout::encode_order() and XORs each chain into its parity
// cell. Decoding is two-phase: peeling (repeatedly solve chains with a
// single erased member — the path real recovery schemes use), then a
// generic GF(2) Gaussian pass over the remaining unknowns. mds3_check is
// the symbolic oracle used by tests to prove triple-erasure tolerance.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "codes/layout.h"
#include "util/rng.h"

namespace fbf::codes {

/// dst ^= src, element-wise. Sizes must match.
void xor_into(std::span<std::byte> dst, std::span<const std::byte> src);

/// Owns the chunk buffers of one stripe.
class StripeData {
 public:
  StripeData(const Layout& layout, std::size_t chunk_size);

  std::size_t chunk_size() const { return chunk_size_; }
  std::span<std::byte> chunk(Cell c);
  std::span<const std::byte> chunk(Cell c) const;

  /// Fills every data cell with random bytes (parity cells untouched).
  void fill_random(util::Rng& rng);

  /// Zeroes one chunk (models losing it).
  void erase(Cell c);

  const Layout& layout() const { return *layout_; }

 private:
  const Layout* layout_;
  std::size_t chunk_size_;
  std::vector<std::byte> bytes_;
};

/// Computes every parity cell. Requires data cells to be populated.
void encode(StripeData& stripe);

/// True iff every chain XORs to zero.
bool verify(const StripeData& stripe);

struct DecodeResult {
  bool ok = false;
  int peeled = 0;             ///< erasures recovered by peeling
  int gaussian_solved = 0;    ///< erasures needing the Gaussian fallback
};

/// Recovers the given erased cells in-place. The caller must have zeroed or
/// otherwise invalidated them; their prior contents are ignored.
DecodeResult decode_erasures(StripeData& stripe,
                             const std::vector<Cell>& erased);

/// Symbolic decodability of an erasure pattern: the chain-incidence matrix
/// restricted to the erased cells has full column rank.
bool erasure_decodable(const Layout& layout, const std::vector<Cell>& erased);

/// Exhaustive check that every erasure of up to three full columns is
/// decodable.
bool mds3_check(const Layout& layout);

}  // namespace fbf::codes
