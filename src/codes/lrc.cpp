#include "codes/lrc.h"

#include <algorithm>

#include "util/check.h"

namespace fbf::codes {

namespace {

/// One GF(256) equation: sum_i coeff[i] * chunk[idx[i]] == 0.
struct Equation {
  std::vector<int> idx;
  std::vector<Gf256::Elem> coeff;
};

}  // namespace

LrcCode::LrcCode(int k, int l, int g) : k_(k), l_(l), g_(g) {
  FBF_CHECK(k >= 1 && l >= 1 && g >= 1, "LRC needs k, l, g >= 1");
  FBF_CHECK(k % l == 0, "LRC group size must divide k");
  FBF_CHECK(k + g <= 255, "LRC over GF(256) needs k + g <= 255");
  coeff_.resize(static_cast<std::size_t>(g) * static_cast<std::size_t>(k));
  for (int r = 0; r < g; ++r) {
    for (int c = 0; c < k; ++c) {
      coeff_[static_cast<std::size_t>(r * k + c)] = Gf256::inv(
          Gf256::add(static_cast<Gf256::Elem>(r),
                     static_cast<Gf256::Elem>(g + c)));
    }
  }
}

int LrcCode::group_of(int data_index) const {
  FBF_CHECK(data_index >= 0 && data_index < k_, "data index out of range");
  return data_index / group_size();
}

std::vector<int> LrcCode::local_chain(int group) const {
  FBF_CHECK(group >= 0 && group < l_, "group out of range");
  std::vector<int> out;
  for (int j = group * group_size(); j < (group + 1) * group_size(); ++j) {
    out.push_back(j);
  }
  out.push_back(k_ + group);
  return out;
}

std::vector<int> LrcCode::global_chain(int r) const {
  FBF_CHECK(r >= 0 && r < g_, "global parity index out of range");
  std::vector<int> out;
  for (int j = 0; j < k_; ++j) {
    out.push_back(j);
  }
  out.push_back(k_ + l_ + r);
  return out;
}

Gf256::Elem LrcCode::global_coefficient(int r, int c) const {
  FBF_CHECK(r >= 0 && r < g_ && c >= 0 && c < k_,
            "global coefficient out of range");
  return coeff_[static_cast<std::size_t>(r * k_ + c)];
}

void LrcCode::encode(std::span<const std::span<std::uint8_t>> chunks) const {
  FBF_CHECK(static_cast<int>(chunks.size()) == n(),
            "LRC encode: need all n chunk slots");
  for (int grp = 0; grp < l_; ++grp) {
    auto out = chunks[static_cast<std::size_t>(k_ + grp)];
    std::fill(out.begin(), out.end(), std::uint8_t{0});
    for (int j = grp * group_size(); j < (grp + 1) * group_size(); ++j) {
      Gf256::mul_add(out, chunks[static_cast<std::size_t>(j)], 1);
    }
  }
  for (int r = 0; r < g_; ++r) {
    auto out = chunks[static_cast<std::size_t>(k_ + l_ + r)];
    std::fill(out.begin(), out.end(), std::uint8_t{0});
    for (int c = 0; c < k_; ++c) {
      Gf256::mul_add(out, chunks[static_cast<std::size_t>(c)],
                     global_coefficient(r, c));
    }
  }
}

bool LrcCode::verify(
    std::span<const std::span<const std::uint8_t>> chunks) const {
  FBF_CHECK(static_cast<int>(chunks.size()) == n(),
            "LRC verify: need all n chunk slots");
  const std::size_t len = chunks[0].size();
  std::vector<std::uint8_t> acc(len);
  auto check_zero = [&acc] {
    return std::all_of(acc.begin(), acc.end(),
                       [](std::uint8_t b) { return b == 0; });
  };
  for (int grp = 0; grp < l_; ++grp) {
    std::fill(acc.begin(), acc.end(), std::uint8_t{0});
    for (int idx : local_chain(grp)) {
      Gf256::mul_add(acc, chunks[static_cast<std::size_t>(idx)], 1);
    }
    if (!check_zero()) {
      return false;
    }
  }
  for (int r = 0; r < g_; ++r) {
    std::fill(acc.begin(), acc.end(), std::uint8_t{0});
    for (int c = 0; c < k_; ++c) {
      Gf256::mul_add(acc, chunks[static_cast<std::size_t>(c)],
                     global_coefficient(r, c));
    }
    Gf256::mul_add(acc, chunks[static_cast<std::size_t>(k_ + l_ + r)], 1);
    if (!check_zero()) {
      return false;
    }
  }
  return true;
}

bool LrcCode::decode(std::span<const std::span<std::uint8_t>> chunks,
                     const std::vector<int>& erased) const {
  FBF_CHECK(static_cast<int>(chunks.size()) == n(),
            "LRC decode: need all n chunk slots");
  if (erased.empty()) {
    return true;
  }
  std::vector<int> unknown_of(static_cast<std::size_t>(n()), -1);
  for (std::size_t i = 0; i < erased.size(); ++i) {
    FBF_CHECK(erased[i] >= 0 && erased[i] < n(),
              "erased index out of range");
    unknown_of[static_cast<std::size_t>(erased[i])] = static_cast<int>(i);
  }
  const std::size_t len = chunks[0].size();

  // Build equations with unknown terms separated from the known-RHS.
  struct Row {
    std::vector<Gf256::Elem> u;        // coefficient per unknown
    std::vector<std::uint8_t> rhs;     // xor/mul-add of known chunks
  };
  std::vector<Row> rows;
  auto add_equation = [&](const std::vector<int>& idx,
                          const std::vector<Gf256::Elem>& coeff) {
    Row row;
    row.u.assign(erased.size(), 0);
    row.rhs.assign(len, 0);
    bool touches_unknown = false;
    for (std::size_t i = 0; i < idx.size(); ++i) {
      const int u = unknown_of[static_cast<std::size_t>(idx[i])];
      if (u >= 0) {
        row.u[static_cast<std::size_t>(u)] ^= coeff[i];
        touches_unknown = true;
      } else {
        Gf256::mul_add(row.rhs, chunks[static_cast<std::size_t>(idx[i])],
                       coeff[i]);
      }
    }
    if (touches_unknown) {
      rows.push_back(std::move(row));
    }
  };
  for (int grp = 0; grp < l_; ++grp) {
    const auto chain = local_chain(grp);
    add_equation(chain, std::vector<Gf256::Elem>(chain.size(), 1));
  }
  for (int r = 0; r < g_; ++r) {
    std::vector<int> idx;
    std::vector<Gf256::Elem> coeff;
    for (int c = 0; c < k_; ++c) {
      idx.push_back(c);
      coeff.push_back(global_coefficient(r, c));
    }
    idx.push_back(k_ + l_ + r);
    coeff.push_back(1);
    add_equation(idx, coeff);
  }

  // Gauss-Jordan over the unknown columns, applying the same row ops to
  // the chunk-sized RHS buffers.
  const std::size_t nu = erased.size();
  std::size_t rank = 0;
  for (std::size_t col = 0; col < nu && rank < rows.size(); ++col) {
    std::size_t pivot = rank;
    while (pivot < rows.size() && rows[pivot].u[col] == 0) {
      ++pivot;
    }
    if (pivot == rows.size()) {
      continue;
    }
    std::swap(rows[pivot], rows[rank]);
    const Gf256::Elem inv_p = Gf256::inv(rows[rank].u[col]);
    for (auto& c : rows[rank].u) {
      c = Gf256::mul(c, inv_p);
    }
    std::vector<std::uint8_t> scaled(len, 0);
    Gf256::mul_add(scaled, rows[rank].rhs, inv_p);
    rows[rank].rhs = std::move(scaled);
    for (std::size_t r2 = 0; r2 < rows.size(); ++r2) {
      if (r2 == rank || rows[r2].u[col] == 0) {
        continue;
      }
      const Gf256::Elem f = rows[r2].u[col];
      for (std::size_t j = 0; j < nu; ++j) {
        rows[r2].u[j] ^= Gf256::mul(f, rows[rank].u[j]);
      }
      Gf256::mul_add(rows[r2].rhs, rows[rank].rhs, f);
    }
    ++rank;
  }
  if (rank < nu) {
    return false;
  }
  // Each pivot row now reads "unknown_j == rhs".
  for (std::size_t r = 0; r < rank; ++r) {
    std::size_t col = 0;
    while (col < nu && rows[r].u[col] == 0) {
      ++col;
    }
    if (col == nu) {
      continue;
    }
    auto out = chunks[static_cast<std::size_t>(
        erased[col])];
    std::copy(rows[r].rhs.begin(), rows[r].rhs.end(), out.begin());
  }
  return true;
}

LrcCode::Plan LrcCode::plan_recovery(const std::vector<int>& erased) const {
  Plan plan;
  plan.reference_count.assign(static_cast<std::size_t>(n()), 0);
  std::vector<bool> is_erased(static_cast<std::size_t>(n()), false);
  for (int e : erased) {
    is_erased[static_cast<std::size_t>(e)] = true;
  }
  int next_global = 0;
  for (int e : erased) {
    // Local chain usable when the erasure is alone in its group chain.
    std::vector<int> chain;
    if (e < k_ + l_) {
      const int grp = e < k_ ? group_of(e) : e - k_;
      const auto local = local_chain(grp);
      const int erased_in_group = static_cast<int>(std::count_if(
          local.begin(), local.end(),
          [&is_erased](int idx) { return is_erased[static_cast<std::size_t>(idx)]; }));
      if (erased_in_group == 1) {
        chain = local;
      }
    }
    if (chain.empty()) {
      if (e >= k_ + l_) {
        // An erased global parity is recomputed from its own chain.
        chain = global_chain(e - k_ - l_);
      } else {
        // Fall back to a global chain, cycling across the g parities the
        // way FBF loops chain directions. Multi-erasure global recovery
        // needs the full decode; the plan charges the reads of one global
        // chain per erasure, which shares all data fetches.
        chain = global_chain(next_global % g_);
        ++next_global;
      }
    }
    std::vector<int> reads;
    for (int idx : chain) {
      if (idx != e && !is_erased[static_cast<std::size_t>(idx)]) {
        reads.push_back(idx);
        ++plan.reference_count[static_cast<std::size_t>(idx)];
        ++plan.total_references;
      }
    }
    plan.reads_per_erasure.push_back(std::move(reads));
  }
  plan.distinct_reads = static_cast<int>(std::count_if(
      plan.reference_count.begin(), plan.reference_count.end(),
      [](int c) { return c > 0; }));
  return plan;
}

}  // namespace fbf::codes
