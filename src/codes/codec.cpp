#include "codes/codec.h"

#include <algorithm>
#include <cstring>

#include "util/bitmat.h"
#include "util/check.h"

namespace fbf::codes {

namespace {

using SrcList = std::vector<std::span<const std::byte>>;

/// Collects the chunks of `ch`'s members except `skip` into `srcs`.
void collect_chain(const StripeData& stripe, const Chain& ch, Cell skip,
                   SrcList& srcs) {
  srcs.clear();
  for (const Cell& c : ch.cells) {
    if (c != skip) {
      srcs.push_back(stripe.chunk(c));
    }
  }
}

}  // namespace

StripeData::StripeData(const Layout& layout, std::size_t chunk_size)
    : layout_(&layout),
      chunk_size_(chunk_size),
      stride_((chunk_size + kAlignment - 1) & ~(kAlignment - 1)),
      bytes_(static_cast<std::size_t>(layout.num_cells()) * stride_,
             std::byte{0}) {
  FBF_CHECK(chunk_size_ > 0, "chunk size must be positive");
}

std::span<std::byte> StripeData::chunk(Cell c) {
  const auto idx = static_cast<std::size_t>(layout_->cell_index(c));
  return {bytes_.data() + idx * stride_, chunk_size_};
}

std::span<const std::byte> StripeData::chunk(Cell c) const {
  const auto idx = static_cast<std::size_t>(layout_->cell_index(c));
  return {bytes_.data() + idx * stride_, chunk_size_};
}

void StripeData::fill_random(util::Rng& rng) {
  for (int i = 0; i < layout_->num_cells(); ++i) {
    const Cell c = layout_->cell_at(i);
    if (layout_->kind(c) == CellKind::Data) {
      rng.fill_bytes(chunk(c));
    }
  }
}

void StripeData::erase(Cell c) {
  auto span = chunk(c);
  std::fill(span.begin(), span.end(), std::byte{0});
}

void encode(StripeData& stripe) {
  const Layout& layout = stripe.layout();
  SrcList srcs;
  // encode_order is a dependency order (adjuster parities feed later
  // chains); FoldBatch turns every maximal run of independent chains into
  // one xor_fold_batch dispatch and barriers exactly where a parity is
  // consumed downstream.
  FoldBatch batch;
  for (int id : layout.encode_order()) {
    const Chain& ch = layout.chain(id);
    collect_chain(stripe, ch, ch.parity_cell, srcs);
    batch.add(stripe.chunk(ch.parity_cell), srcs);
  }
  batch.flush();
}

bool verify(const StripeData& stripe) {
  const Layout& layout = stripe.layout();
  std::vector<std::byte> acc(stripe.chunk_size());
  SrcList srcs;
  for (const Chain& ch : layout.chains()) {
    srcs.clear();
    for (const Cell& c : ch.cells) {
      srcs.push_back(stripe.chunk(c));
    }
    xor_fold(acc, srcs);
    if (std::any_of(acc.begin(), acc.end(),
                    [](std::byte b) { return b != std::byte{0}; })) {
      return false;
    }
  }
  return true;
}

namespace {

/// One GF(2) equation over the remaining unknowns: xor(unknowns) == rhs.
struct Equation {
  std::vector<int> unknowns;       // indices into the erased-cell list
  std::vector<std::byte> rhs;
};

}  // namespace

PeelPlan plan_peeling(const Layout& layout, const std::vector<Cell>& erased) {
  PeelPlan plan;
  std::vector<bool> is_erased(static_cast<std::size_t>(layout.num_cells()),
                              false);
  for (const Cell& c : erased) {
    is_erased[static_cast<std::size_t>(layout.cell_index(c))] = true;
  }
  int remaining = static_cast<int>(erased.size());

  // Track per-chain erased-member counts and keep a worklist of chains
  // with exactly one erased member.
  const auto& chains = layout.chains();
  std::vector<int> erased_in_chain(chains.size(), 0);
  for (const Chain& ch : chains) {
    for (const Cell& c : ch.cells) {
      if (is_erased[static_cast<std::size_t>(layout.cell_index(c))]) {
        ++erased_in_chain[static_cast<std::size_t>(ch.id)];
      }
    }
  }
  std::vector<int> worklist;
  for (const Chain& ch : chains) {
    if (erased_in_chain[static_cast<std::size_t>(ch.id)] == 1) {
      worklist.push_back(ch.id);
    }
  }
  while (!worklist.empty() && remaining > 0) {
    const int id = worklist.back();
    worklist.pop_back();
    if (erased_in_chain[static_cast<std::size_t>(id)] != 1) {
      continue;  // stale entry
    }
    const Chain& ch = chains[static_cast<std::size_t>(id)];
    Cell target{};
    bool found = false;
    for (const Cell& c : ch.cells) {
      if (is_erased[static_cast<std::size_t>(layout.cell_index(c))]) {
        target = c;
        found = true;
        break;
      }
    }
    FBF_CHECK(found, "chain bookkeeping inconsistent during peeling");
    plan.steps.push_back(PeelPlan::Step{target, id});
    is_erased[static_cast<std::size_t>(layout.cell_index(target))] = false;
    --remaining;
    for (int other : layout.chains_containing(target)) {
      if (--erased_in_chain[static_cast<std::size_t>(other)] == 1) {
        worklist.push_back(other);
      }
    }
  }
  for (int i = 0; i < layout.num_cells(); ++i) {
    if (is_erased[static_cast<std::size_t>(i)]) {
      plan.gauss_cells.push_back(layout.cell_at(i));
    }
  }
  return plan;
}

DecodeResult decode_erasures(StripeData& stripe,
                             const std::vector<Cell>& erased,
                             DecodeMethod method) {
  const Layout& layout = stripe.layout();
  DecodeResult result;
  SrcList srcs;

  // Phase 1: peeling (skipped by GaussOnly, the oracle path tests compare
  // against). The symbolic plan decides targets/chains; this executes it.
  std::vector<Cell> unknown_cells;
  if (method == DecodeMethod::PeelThenGauss) {
    const PeelPlan plan = plan_peeling(layout, erased);
    // Peeling steps form waves: a step depends on an earlier one only when
    // its chain consumes that step's target, which is exactly where the
    // batch barriers.
    FoldBatch batch;
    for (const PeelPlan::Step& step : plan.steps) {
      const Chain& ch = layout.chain(step.chain_id);
      collect_chain(stripe, ch, step.target, srcs);
      batch.add(stripe.chunk(step.target), srcs);
      ++result.peeled;
    }
    batch.flush();
    unknown_cells = plan.gauss_cells;
  } else {
    unknown_cells = erased;
    std::sort(unknown_cells.begin(), unknown_cells.end(),
              [&](const Cell& a, const Cell& b) {
                return layout.cell_index(a) < layout.cell_index(b);
              });
  }

  if (unknown_cells.empty()) {
    result.ok = true;
    return result;
  }

  // Phase 2: Gaussian elimination over the leftover unknowns.
  std::vector<int> unknown_of_cell(
      static_cast<std::size_t>(layout.num_cells()), -1);
  for (std::size_t i = 0; i < unknown_cells.size(); ++i) {
    unknown_of_cell[static_cast<std::size_t>(
        layout.cell_index(unknown_cells[i]))] = static_cast<int>(i);
  }

  // Every equation's rhs folds known stripe chunks into its own buffer —
  // mutually independent, so the whole set is one batched dispatch (the
  // moved-from rhs buffers stay pinned while the batch is pending).
  std::vector<Equation> eqs;
  FoldBatch rhs_batch;
  for (const Chain& ch : layout.chains()) {
    const bool involved = std::any_of(
        ch.cells.begin(), ch.cells.end(), [&](const Cell& c) {
          return unknown_of_cell[static_cast<std::size_t>(
                     layout.cell_index(c))] >= 0;
        });
    if (!involved) {
      continue;
    }
    Equation eq;
    eq.rhs.resize(stripe.chunk_size());
    srcs.clear();
    for (const Cell& c : ch.cells) {
      const int u =
          unknown_of_cell[static_cast<std::size_t>(layout.cell_index(c))];
      if (u >= 0) {
        eq.unknowns.push_back(u);
      } else {
        srcs.push_back(stripe.chunk(c));
      }
    }
    std::sort(eq.unknowns.begin(), eq.unknowns.end());
    eqs.push_back(std::move(eq));
    rhs_batch.add(eqs.back().rhs, srcs);
  }
  rhs_batch.flush();

  // Forward elimination with partial "pivot by unknown id".
  const int n_unknowns = static_cast<int>(unknown_cells.size());
  std::vector<int> pivot_eq(static_cast<std::size_t>(n_unknowns), -1);
  auto fold_equation = [](Equation& dst, const Equation& src) {
    std::vector<int> merged;
    merged.reserve(dst.unknowns.size() + src.unknowns.size());
    std::set_symmetric_difference(dst.unknowns.begin(), dst.unknowns.end(),
                                  src.unknowns.begin(), src.unknowns.end(),
                                  std::back_inserter(merged));
    dst.unknowns = std::move(merged);
    xor_into(dst.rhs, src.rhs);
  };
  for (std::size_t e = 0; e < eqs.size(); ++e) {
    // Reduce against existing pivots until the equation leads with a free
    // unknown or vanishes.
    for (;;) {
      if (eqs[e].unknowns.empty()) {
        break;
      }
      const int lead = eqs[e].unknowns.front();
      const int pe = pivot_eq[static_cast<std::size_t>(lead)];
      if (pe < 0) {
        pivot_eq[static_cast<std::size_t>(lead)] = static_cast<int>(e);
        break;
      }
      fold_equation(eqs[e], eqs[static_cast<std::size_t>(pe)]);
    }
  }
  for (int u = 0; u < n_unknowns; ++u) {
    if (pivot_eq[static_cast<std::size_t>(u)] < 0) {
      result.ok = false;  // rank deficient: pattern not decodable
      return result;
    }
  }
  // Back substitution, highest unknown first.
  for (int u = n_unknowns - 1; u >= 0; --u) {
    Equation& eq = eqs[static_cast<std::size_t>(
        pivot_eq[static_cast<std::size_t>(u)])];
    // Every unknown after the lead has already been solved; fold it in.
    std::vector<std::byte> value = eq.rhs;
    srcs.clear();
    for (std::size_t i = 1; i < eq.unknowns.size(); ++i) {
      const Cell solved = unknown_cells[static_cast<std::size_t>(
          eq.unknowns[i])];
      srcs.push_back(stripe.chunk(solved));
    }
    xor_fold_into(value, srcs);
    auto out = stripe.chunk(unknown_cells[static_cast<std::size_t>(u)]);
    std::copy(value.begin(), value.end(), out.begin());
    ++result.gaussian_solved;
  }
  result.ok = true;
  return result;
}

bool erasure_decodable(const Layout& layout,
                       const std::vector<Cell>& erased) {
  std::vector<int> unknown_of_cell(
      static_cast<std::size_t>(layout.num_cells()), -1);
  for (std::size_t i = 0; i < erased.size(); ++i) {
    unknown_of_cell[static_cast<std::size_t>(layout.cell_index(erased[i]))] =
        static_cast<int>(i);
  }
  util::BitMatrix m(layout.chains().size(), erased.size());
  for (const Chain& ch : layout.chains()) {
    for (const Cell& c : ch.cells) {
      const int u =
          unknown_of_cell[static_cast<std::size_t>(layout.cell_index(c))];
      if (u >= 0) {
        m.flip(static_cast<std::size_t>(ch.id), static_cast<std::size_t>(u));
      }
    }
  }
  return m.full_column_rank();
}

bool mds3_check(const Layout& layout) {
  const int n = layout.cols();
  for (int a = 0; a < n; ++a) {
    for (int b = a; b < n; ++b) {
      for (int c = b; c < n; ++c) {
        std::vector<Cell> erased;
        std::vector<int> cols{a};
        if (b != a) {
          cols.push_back(b);
        }
        if (c != b && c != a) {
          cols.push_back(c);
        }
        for (int col : cols) {
          const auto cells = layout.column_cells(col);
          erased.insert(erased.end(), cells.begin(), cells.end());
        }
        if (!erasure_decodable(layout, erased)) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace fbf::codes
