#include "codes/gf256.h"

#include "util/check.h"

namespace fbf::codes {

const Gf256::Tables& Gf256::tables() {
  static const Tables t = [] {
    Tables tables{};
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      tables.exp[static_cast<std::size_t>(i)] = static_cast<Elem>(x);
      tables.log[static_cast<std::size_t>(x)] =
          static_cast<std::uint16_t>(i);
      // Multiply by the generator 0x03 = x + 1: x*3 = (x << 1) ^ x.
      x = static_cast<std::uint16_t>((x << 1) ^ x);
      if (x & 0x100) {
        x ^= 0x11b;
      }
    }
    tables.exp[255] = tables.exp[0];
    tables.log[0] = 0;  // undefined; guarded by callers
    return tables;
  }();
  return t;
}

Gf256::Elem Gf256::mul(Elem a, Elem b) {
  if (a == 0 || b == 0) {
    return 0;
  }
  const auto& t = tables();
  const unsigned s = t.log[a] + t.log[b];
  return t.exp[s % 255];
}

Gf256::Elem Gf256::div(Elem a, Elem b) {
  FBF_CHECK(b != 0, "GF(256) division by zero");
  if (a == 0) {
    return 0;
  }
  const auto& t = tables();
  const unsigned s = 255u + t.log[a] - t.log[b];
  return t.exp[s % 255];
}

Gf256::Elem Gf256::inv(Elem a) {
  FBF_CHECK(a != 0, "GF(256) inverse of zero");
  const auto& t = tables();
  return t.exp[(255u - t.log[a]) % 255];
}

Gf256::Elem Gf256::pow(Elem a, unsigned e) {
  if (a == 0) {
    return e == 0 ? 1 : 0;
  }
  const auto& t = tables();
  return t.exp[(static_cast<unsigned>(t.log[a]) * e) % 255];
}

void Gf256::mul_add(std::span<Elem> dst, std::span<const Elem> src, Elem c) {
  FBF_CHECK(dst.size() == src.size(), "mul_add size mismatch");
  if (c == 0) {
    return;
  }
  if (c == 1) {
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i] ^= src[i];
    }
    return;
  }
  const auto& t = tables();
  const unsigned log_c = t.log[c];
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const Elem s = src[i];
    if (s != 0) {
      dst[i] ^= t.exp[(log_c + t.log[s]) % 255];
    }
  }
}

}  // namespace fbf::codes
