// GF(2^8) arithmetic for Reed-Solomon style codes.
//
// The paper's related work covers RS and Cauchy-RS codes [11][12] and
// footnote 3 notes FBF applies to RS-based codes such as LRC; this module
// supplies the field arithmetic those substrates need. Polynomial basis,
// AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11b), log/antilog tables.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace fbf::codes {

class Gf256 {
 public:
  using Elem = std::uint8_t;

  static Elem add(Elem a, Elem b) { return a ^ b; }
  static Elem sub(Elem a, Elem b) { return a ^ b; }
  static Elem mul(Elem a, Elem b);
  static Elem div(Elem a, Elem b);  ///< b must be non-zero
  static Elem inv(Elem a);          ///< a must be non-zero
  static Elem pow(Elem a, unsigned e);

  /// dst[i] ^= c * src[i] — the row operation of RS encode/decode.
  static void mul_add(std::span<Elem> dst, std::span<const Elem> src,
                      Elem c);

  /// The generator element (0x03 generates the multiplicative group for
  /// the AES polynomial).
  static constexpr Elem kGenerator = 0x03;

 private:
  struct Tables {
    std::array<Elem, 256> exp;
    std::array<std::uint16_t, 256> log;
  };
  static const Tables& tables();
};

}  // namespace fbf::codes
