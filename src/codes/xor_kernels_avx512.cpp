// AVX-512 fold variant. This translation unit is compiled with -mavx512f
// (see src/codes/CMakeLists.txt); nothing here may be called unless runtime
// CPU detection in xor_kernels.cpp confirmed AVX-512F support.
#include <immintrin.h>

#include <cstddef>

#include "codes/xor_kernels_internal.h"

namespace fbf::codes::detail {

void xor_fold_avx512(std::byte* dst, const std::byte* const* srcs,
                     std::size_t nsrcs, std::size_t size, bool accumulate) {
  std::size_t i = 0;
  // 128 bytes (two zmm registers) per iteration.
  for (; i + 128 <= size; i += 128) {
    __m512i v0;
    __m512i v1;
    if (accumulate) {
      v0 = _mm512_loadu_si512(dst + i);
      v1 = _mm512_loadu_si512(dst + i + 64);
    } else {
      v0 = _mm512_setzero_si512();
      v1 = _mm512_setzero_si512();
    }
    for (std::size_t s = 0; s < nsrcs; ++s) {
      const std::byte* src = srcs[s] + i;
      v0 = _mm512_xor_si512(v0, _mm512_loadu_si512(src));
      v1 = _mm512_xor_si512(v1, _mm512_loadu_si512(src + 64));
    }
    _mm512_storeu_si512(dst + i, v0);
    _mm512_storeu_si512(dst + i + 64, v1);
  }
  for (; i + 64 <= size; i += 64) {
    __m512i v = accumulate ? _mm512_loadu_si512(dst + i)
                           : _mm512_setzero_si512();
    for (std::size_t s = 0; s < nsrcs; ++s) {
      v = _mm512_xor_si512(v, _mm512_loadu_si512(srcs[s] + i));
    }
    _mm512_storeu_si512(dst + i, v);
  }
  xor_fold_tail(dst, srcs, nsrcs, i, size, accumulate);
}

}  // namespace fbf::codes::detail
