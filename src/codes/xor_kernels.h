// XOR kernel layer: runtime-dispatched SIMD implementations of the two
// primitives every encode/verify/decode path bottoms out in.
//
// One binary carries every variant the compiler could build (scalar always;
// AVX2/AVX-512 on x86-64, NEON on aarch64 when FBF_ENABLE_SIMD is ON) and
// picks the widest one the host CPU supports at startup. All variants are
// bit-identical — XOR is exact — so experiment results do not depend on the
// dispatch decision; the differential tests enforce this.
//
// `xor_fold` is the chain primitive: it folds N source chunks into the
// destination in a single position-major pass (each destination vector is
// loaded/stored once while the sources stream), instead of N separate
// dst-rewriting `xor_into` passes.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace fbf::codes {

enum class XorKernel { Scalar, Avx2, Avx512, Neon };

std::string_view to_string(XorKernel k);

/// Kernels usable on this host with this build. Always contains Scalar;
/// ordered narrowest to widest.
const std::vector<XorKernel>& supported_xor_kernels();

/// The kernel the free functions below currently dispatch to. Defaults to
/// the widest supported variant.
XorKernel active_xor_kernel();

/// Redirects dispatch (for benches and differential tests). Returns false
/// and leaves dispatch unchanged when `k` is not supported on this host.
/// Not synchronized against concurrent XOR calls.
bool set_xor_kernel(XorKernel k);

/// dst ^= src, element-wise. Sizes must match.
void xor_into(std::span<std::byte> dst, std::span<const std::byte> src);

/// dst = srcs[0] ^ srcs[1] ^ ... (dst is overwritten; zero when srcs is
/// empty). Every source must have dst's size. Sources may not alias dst.
void xor_fold(std::span<std::byte> dst,
              std::span<const std::span<const std::byte>> srcs);

/// dst ^= srcs[0] ^ srcs[1] ^ ... Every source must have dst's size.
/// Sources may not alias dst.
void xor_fold_into(std::span<std::byte> dst,
                   std::span<const std::span<const std::byte>> srcs);

namespace detail {

/// Portable unrolled-u64 reference fold; ground truth for the differential
/// tests. `accumulate` keeps dst's prior contents in the XOR.
void xor_fold_scalar(std::byte* dst, const std::byte* const* srcs,
                     std::size_t nsrcs, std::size_t size, bool accumulate);

}  // namespace detail

}  // namespace fbf::codes
