// XOR kernel layer: runtime-dispatched SIMD implementations of the two
// primitives every encode/verify/decode path bottoms out in.
//
// One binary carries every variant the compiler could build (scalar always;
// AVX2/AVX-512 on x86-64, NEON on aarch64 when FBF_ENABLE_SIMD is ON) and
// picks the widest one the host CPU supports at startup. All variants are
// bit-identical — XOR is exact — so experiment results do not depend on the
// dispatch decision; the differential tests enforce this.
//
// `xor_fold` is the chain primitive: it folds N source chunks into the
// destination in a single position-major pass (each destination vector is
// loaded/stored once while the sources stream), instead of N separate
// dst-rewriting `xor_into` passes.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace fbf::util {
class ThreadPool;
}  // namespace fbf::util

namespace fbf::codes {

enum class XorKernel { Scalar, Avx2, Avx512, Neon };

std::string_view to_string(XorKernel k);

/// Kernels usable on this host with this build. Always contains Scalar;
/// ordered narrowest to widest.
const std::vector<XorKernel>& supported_xor_kernels();

/// The kernel the free functions below currently dispatch to. Defaults to
/// the widest supported variant.
XorKernel active_xor_kernel();

/// Redirects dispatch (for benches and differential tests). Returns false
/// and leaves dispatch unchanged when `k` is not supported on this host.
/// Not synchronized against concurrent XOR calls.
bool set_xor_kernel(XorKernel k);

/// dst ^= src, element-wise. Sizes must match.
void xor_into(std::span<std::byte> dst, std::span<const std::byte> src);

/// dst = srcs[0] ^ srcs[1] ^ ... (dst is overwritten; zero when srcs is
/// empty). Every source must have dst's size. Sources may not alias dst.
void xor_fold(std::span<std::byte> dst,
              std::span<const std::span<const std::byte>> srcs);

/// dst ^= srcs[0] ^ srcs[1] ^ ... Every source must have dst's size.
/// Sources may not alias dst.
void xor_fold_into(std::span<std::byte> dst,
                   std::span<const std::span<const std::byte>> srcs);

/// One fold of a batch: dst = (accumulate ? dst : 0) ^ srcs[0] ^ ... over
/// `size` bytes. The source pointer array must stay valid through the
/// xor_fold_batch call.
struct FoldJob {
  std::byte* dst = nullptr;
  const std::byte* const* srcs = nullptr;
  std::size_t nsrcs = 0;
  std::size_t size = 0;
  bool accumulate = false;
};

/// Folds every job with one kernel-dispatch decision instead of one per
/// chain. Jobs must be mutually independent (no job's sources or
/// destination overlap another's destination); given that, the result is
/// bit-identical to folding them one at a time with xor_fold in any order
/// — which is what lets large batches split across `pool` via
/// parallel_for. Small batches run serially even with a pool.
void xor_fold_batch(std::span<const FoldJob> jobs,
                    util::ThreadPool* pool = nullptr);

/// Accumulates fold jobs and dispatches them in dependency waves: adding a
/// job whose destination or sources overlap a pending job's destination
/// (or whose destination overlaps a pending job's sources) first flushes
/// the pending wave. Callers stream chains in program order — codec
/// encode/peel order, the SOR engine's verify order — and every maximal
/// run of independent chains goes through xor_fold_batch as one call.
class FoldBatch {
 public:
  explicit FoldBatch(util::ThreadPool* pool = nullptr) : pool_(pool) {}
  FoldBatch(const FoldBatch&) = delete;
  FoldBatch& operator=(const FoldBatch&) = delete;
  ~FoldBatch() { flush(); }

  /// Queues dst = fold(srcs) (or dst ^= fold(srcs) when `accumulate`).
  /// Every source must have dst's size. May flush pending jobs first to
  /// preserve dependency order.
  void add(std::span<std::byte> dst,
           std::span<const std::span<const std::byte>> srcs,
           bool accumulate = false);

  /// Dispatches all pending jobs through xor_fold_batch.
  void flush();

  std::size_t pending() const { return jobs_.size(); }

 private:
  struct Pending {
    std::byte* dst;
    std::size_t size;
    std::size_t src_begin;  ///< index into src_pool_
    std::size_t nsrcs;
    bool accumulate;
  };
  bool conflicts(const std::byte* dst, std::size_t size,
                 std::span<const std::span<const std::byte>> srcs) const;

  util::ThreadPool* pool_;
  std::vector<Pending> jobs_;
  std::vector<const std::byte*> src_pool_;
  std::vector<FoldJob> dispatch_scratch_;
};

namespace detail {

/// Portable unrolled-u64 reference fold; ground truth for the differential
/// tests. `accumulate` keeps dst's prior contents in the XOR.
void xor_fold_scalar(std::byte* dst, const std::byte* const* srcs,
                     std::size_t nsrcs, std::size_t size, bool accumulate);

}  // namespace detail

}  // namespace fbf::codes
