// NEON fold variant for aarch64, where Advanced SIMD is architecturally
// baseline — no extra compile flags or runtime detection needed beyond the
// configure-time architecture check in src/codes/CMakeLists.txt.
#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>
#include <cstdint>

#include "codes/xor_kernels_internal.h"

namespace fbf::codes::detail {

void xor_fold_neon(std::byte* dst, const std::byte* const* srcs,
                   std::size_t nsrcs, std::size_t size, bool accumulate) {
  std::size_t i = 0;
  // 64 bytes (four q registers) per iteration.
  for (; i + 64 <= size; i += 64) {
    auto* d = reinterpret_cast<std::uint8_t*>(dst + i);
    uint8x16_t v0;
    uint8x16_t v1;
    uint8x16_t v2;
    uint8x16_t v3;
    if (accumulate) {
      v0 = vld1q_u8(d);
      v1 = vld1q_u8(d + 16);
      v2 = vld1q_u8(d + 32);
      v3 = vld1q_u8(d + 48);
    } else {
      v0 = vdupq_n_u8(0);
      v1 = vdupq_n_u8(0);
      v2 = vdupq_n_u8(0);
      v3 = vdupq_n_u8(0);
    }
    for (std::size_t s = 0; s < nsrcs; ++s) {
      const auto* src = reinterpret_cast<const std::uint8_t*>(srcs[s] + i);
      v0 = veorq_u8(v0, vld1q_u8(src));
      v1 = veorq_u8(v1, vld1q_u8(src + 16));
      v2 = veorq_u8(v2, vld1q_u8(src + 32));
      v3 = veorq_u8(v3, vld1q_u8(src + 48));
    }
    vst1q_u8(d, v0);
    vst1q_u8(d + 16, v1);
    vst1q_u8(d + 32, v2);
    vst1q_u8(d + 48, v3);
  }
  for (; i + 16 <= size; i += 16) {
    auto* d = reinterpret_cast<std::uint8_t*>(dst + i);
    uint8x16_t v = accumulate ? vld1q_u8(d) : vdupq_n_u8(0);
    for (std::size_t s = 0; s < nsrcs; ++s) {
      v = veorq_u8(
          v, vld1q_u8(reinterpret_cast<const std::uint8_t*>(srcs[s] + i)));
    }
    vst1q_u8(d, v);
  }
  xor_fold_tail(dst, srcs, nsrcs, i, size, accumulate);
}

}  // namespace fbf::codes::detail

#endif  // __aarch64__
