// Private contract between the dispatcher and the per-ISA translation
// units. Each variant TU defines one fold function with this signature;
// which ones exist is decided at configure time (FBF_XOR_HAVE_* macros set
// by src/codes/CMakeLists.txt), and whether they are callable is decided at
// runtime by CPU detection in xor_kernels.cpp.
#pragma once

#include <cstddef>

namespace fbf::codes::detail {

using FoldFn = void (*)(std::byte* dst, const std::byte* const* srcs,
                        std::size_t nsrcs, std::size_t size, bool accumulate);

void xor_fold_scalar(std::byte* dst, const std::byte* const* srcs,
                     std::size_t nsrcs, std::size_t size, bool accumulate);
#if defined(FBF_XOR_HAVE_AVX2)
void xor_fold_avx2(std::byte* dst, const std::byte* const* srcs,
                   std::size_t nsrcs, std::size_t size, bool accumulate);
#endif
#if defined(FBF_XOR_HAVE_AVX512)
void xor_fold_avx512(std::byte* dst, const std::byte* const* srcs,
                     std::size_t nsrcs, std::size_t size, bool accumulate);
#endif
#if defined(FBF_XOR_HAVE_NEON)
void xor_fold_neon(std::byte* dst, const std::byte* const* srcs,
                   std::size_t nsrcs, std::size_t size, bool accumulate);
#endif

/// Byte-at-a-time fold of positions [from, size) — the sub-vector tail
/// shared by every wide variant.
inline void xor_fold_tail(std::byte* dst, const std::byte* const* srcs,
                          std::size_t nsrcs, std::size_t from,
                          std::size_t size, bool accumulate) {
  for (std::size_t i = from; i < size; ++i) {
    std::byte v = accumulate ? dst[i] : std::byte{0};
    for (std::size_t s = 0; s < nsrcs; ++s) {
      v ^= srcs[s][i];
    }
    dst[i] = v;
  }
}

}  // namespace fbf::codes::detail
