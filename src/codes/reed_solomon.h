// Systematic Reed-Solomon erasure code over GF(2^8) with a Cauchy
// generator matrix — the classic MDS baseline the paper's related work
// cites (RS [11], Cauchy-RS [12]).
//
// Unlike the XOR array codes, RS has no chain geometry: any k surviving
// chunks of a stripe reconstruct everything. bench_ext_rs_comparison uses
// this to contrast RS partial-stripe recovery I/O with chain-based 3DFT
// recovery.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codes/gf256.h"

namespace fbf::codes {

class ReedSolomon {
 public:
  /// k data chunks, m parity chunks per stripe (n = k + m disks).
  /// Requires k + m <= 255 for distinct Cauchy points.
  ReedSolomon(int k, int m);

  int k() const { return k_; }
  int m() const { return m_; }
  int n() const { return k_ + m_; }

  /// Computes the m parity chunks from the k data chunks. All spans must
  /// have equal size; parity spans are overwritten.
  void encode(std::span<const std::span<const std::uint8_t>> data,
              std::span<const std::span<std::uint8_t>> parity) const;

  /// Recovers the chunks at `erased` (indices in [0, n)) in-place in
  /// `chunks` (data chunks first, then parity). At most m erasures.
  /// Returns false if the pattern exceeds the code's distance.
  bool decode(std::span<const std::span<std::uint8_t>> chunks,
              const std::vector<int>& erased) const;

  /// Generator coefficient: parity row r, data column c.
  Gf256::Elem coefficient(int r, int c) const;

 private:
  int k_;
  int m_;
  std::vector<Gf256::Elem> cauchy_;  // m x k
};

}  // namespace fbf::codes
