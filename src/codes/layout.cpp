#include "codes/layout.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace fbf::codes {

std::string to_string(const Cell& c) {
  return "C(" + std::to_string(c.row) + "," + std::to_string(c.col) + ")";
}

const char* to_string(Direction d) {
  switch (d) {
    case Direction::Horizontal:
      return "horizontal";
    case Direction::Diagonal:
      return "diagonal";
    case Direction::AntiDiagonal:
      return "anti-diagonal";
  }
  return "?";
}

Layout::Layout(std::string name, int p, int rows, int cols,
               std::vector<Chain> chains)
    : name_(std::move(name)),
      p_(p),
      rows_(rows),
      cols_(cols),
      chains_(std::move(chains)),
      kind_(static_cast<std::size_t>(rows * cols), CellKind::Data),
      by_direction_(kNumDirections),
      containing_(static_cast<std::size_t>(rows * cols)) {
  FBF_CHECK(rows_ > 0 && cols_ > 0, "layout dimensions must be positive");

  std::set<Cell> parity_cells;
  for (std::size_t i = 0; i < chains_.size(); ++i) {
    Chain& ch = chains_[i];
    ch.id = static_cast<int>(i);
    FBF_CHECK(!ch.cells.empty(), "empty chain in layout " + name_);
    std::sort(ch.cells.begin(), ch.cells.end());
    FBF_CHECK(std::adjacent_find(ch.cells.begin(), ch.cells.end()) ==
                  ch.cells.end(),
              "duplicate cell in chain of layout " + name_);
    for (const Cell& c : ch.cells) {
      FBF_CHECK(in_bounds(c), "chain cell out of bounds in " + name_);
    }
    FBF_CHECK(std::binary_search(ch.cells.begin(), ch.cells.end(),
                                 ch.parity_cell),
              "chain must contain its parity cell in " + name_);
    FBF_CHECK(parity_cells.insert(ch.parity_cell).second,
              "parity cell produced by two chains in " + name_);
    kind_[static_cast<std::size_t>(cell_index(ch.parity_cell))] =
        CellKind::Parity;
    by_direction_[static_cast<std::size_t>(ch.dir)].push_back(ch.id);
    for (const Cell& c : ch.cells) {
      containing_[static_cast<std::size_t>(cell_index(c))].push_back(ch.id);
    }
  }

  // Encode order: peel chains whose members other than the parity cell are
  // all data cells or already-produced parity cells.
  std::vector<bool> produced(chains_.size(), false);
  encode_order_.reserve(chains_.size());
  bool progressed = true;
  while (encode_order_.size() < chains_.size() && progressed) {
    progressed = false;
    for (const Chain& ch : chains_) {
      if (produced[static_cast<std::size_t>(ch.id)]) {
        continue;
      }
      bool ready = true;
      for (const Cell& c : ch.cells) {
        if (c == ch.parity_cell) {
          continue;
        }
        if (kind(c) == CellKind::Parity) {
          // Find the chain producing this parity cell; it must be produced.
          bool cell_ready = false;
          for (int other : chains_containing(c)) {
            if (chains_[static_cast<std::size_t>(other)].parity_cell == c) {
              cell_ready = produced[static_cast<std::size_t>(other)];
              break;
            }
          }
          if (!cell_ready) {
            ready = false;
            break;
          }
        }
      }
      if (ready) {
        produced[static_cast<std::size_t>(ch.id)] = true;
        encode_order_.push_back(ch.id);
        progressed = true;
      }
    }
  }
  FBF_CHECK(encode_order_.size() == chains_.size(),
            "cyclic parity dependency in layout " + name_);

  // Coverage: every data cell participates in at least one chain, and in a
  // horizontal chain specifically (the "typical" recovery path). RDP-style
  // layouts legitimately leave the missing diagonal uncovered in the
  // diagonal direction, so per-direction coverage is NOT required; the
  // scheme generator falls back across directions.
  for (int idx = 0; idx < num_cells(); ++idx) {
    if (kind_[static_cast<std::size_t>(idx)] != CellKind::Data) {
      continue;
    }
    bool horizontal = false;
    for (int id : containing_[static_cast<std::size_t>(idx)]) {
      if (chains_[static_cast<std::size_t>(id)].dir ==
          Direction::Horizontal) {
        horizontal = true;
      }
    }
    FBF_CHECK(horizontal, "data cell " + to_string(cell_at(idx)) +
                              " lacks a horizontal chain in " + name_);
  }
}

Cell Layout::cell_at(int index) const {
  FBF_CHECK(index >= 0 && index < num_cells(), "cell_at out of bounds");
  return Cell{static_cast<std::int16_t>(index / cols_),
              static_cast<std::int16_t>(index % cols_)};
}

CellKind Layout::kind(Cell c) const {
  return kind_[static_cast<std::size_t>(cell_index(c))];
}

std::span<const int> Layout::chains_in(Direction d) const {
  return by_direction_[static_cast<std::size_t>(d)];
}

std::span<const int> Layout::chains_containing(Cell c) const {
  return containing_[static_cast<std::size_t>(cell_index(c))];
}

std::vector<int> Layout::chains_containing(Cell c, Direction d) const {
  std::vector<int> out;
  for (int id : chains_containing(c)) {
    if (chains_[static_cast<std::size_t>(id)].dir == d) {
      out.push_back(id);
    }
  }
  return out;
}

int Layout::update_complexity(Cell c) const {
  FBF_CHECK(kind(c) == CellKind::Data,
            "update complexity is defined for data cells");
  return static_cast<int>(chains_containing(c).size());
}

double Layout::average_update_complexity() const {
  double sum = 0.0;
  int data_cells = 0;
  for (int i = 0; i < num_cells(); ++i) {
    const Cell c = cell_at(i);
    if (kind(c) == CellKind::Data) {
      sum += static_cast<double>(chains_containing(c).size());
      ++data_cells;
    }
  }
  return data_cells == 0 ? 0.0 : sum / data_cells;
}

std::vector<Cell> Layout::column_cells(int col) const {
  FBF_CHECK(col >= 0 && col < cols_, "column out of range");
  std::vector<Cell> out;
  out.reserve(static_cast<std::size_t>(rows_));
  for (int r = 0; r < rows_; ++r) {
    out.push_back(Cell{static_cast<std::int16_t>(r),
                       static_cast<std::int16_t>(col)});
  }
  return out;
}

}  // namespace fbf::codes
