// AVX2 fold variant. This translation unit is compiled with -mavx2 (see
// src/codes/CMakeLists.txt); nothing here may be called unless runtime CPU
// detection in xor_kernels.cpp confirmed AVX2 support.
#include <immintrin.h>

#include <cstddef>

#include "codes/xor_kernels_internal.h"

namespace fbf::codes::detail {

void xor_fold_avx2(std::byte* dst, const std::byte* const* srcs,
                   std::size_t nsrcs, std::size_t size, bool accumulate) {
  std::size_t i = 0;
  // 64 bytes (two ymm registers) per iteration: each destination vector is
  // loaded/stored once while all sources stream past it.
  for (; i + 64 <= size; i += 64) {
    __m256i v0;
    __m256i v1;
    if (accumulate) {
      v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
    } else {
      v0 = _mm256_setzero_si256();
      v1 = _mm256_setzero_si256();
    }
    for (std::size_t s = 0; s < nsrcs; ++s) {
      const std::byte* src = srcs[s] + i;
      v0 = _mm256_xor_si256(
          v0, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src)));
      v1 = _mm256_xor_si256(
          v1, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 32)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), v1);
  }
  for (; i + 32 <= size; i += 32) {
    __m256i v = accumulate
                    ? _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                          dst + i))
                    : _mm256_setzero_si256();
    for (std::size_t s = 0; s < nsrcs; ++s) {
      v = _mm256_xor_si256(v, _mm256_loadu_si256(
                                  reinterpret_cast<const __m256i*>(
                                      srcs[s] + i)));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  xor_fold_tail(dst, srcs, nsrcs, i, size, accumulate);
}

}  // namespace fbf::codes::detail
