// Stripe geometry primitives shared by every 3DFT layout.
//
// A stripe is a (p-1) x n grid of chunks ("cells"). Erasure codes are
// described purely by their *parity chains*: sets of cells whose XOR is
// zero. This set-based view uniformly covers adjuster-style codes (STAR,
// where a diagonal parity also folds in a whole adjuster diagonal) and
// independent-parity codes (TIP-style), and is exactly the structure the
// FBF cache scheme reasons about.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace fbf::codes {

/// Position of a chunk inside one stripe.
struct Cell {
  std::int16_t row = 0;
  std::int16_t col = 0;

  friend auto operator<=>(const Cell&, const Cell&) = default;
};

/// Renders "C(row,col)" as used in the paper's figures.
std::string to_string(const Cell& c);

enum class CellKind : std::uint8_t { Data, Parity };

/// The three chain families of a 3DFT array code.
enum class Direction : std::uint8_t {
  Horizontal = 0,
  Diagonal = 1,
  AntiDiagonal = 2,
};

inline constexpr int kNumDirections = 3;

const char* to_string(Direction d);

/// One parity chain: XOR over `cells` (which includes `parity_cell`) is
/// always zero for a consistent stripe. `parity_cell` is the cell whose
/// value the encoder derives from the rest of the chain.
struct Chain {
  Direction dir = Direction::Horizontal;
  Cell parity_cell;
  std::vector<Cell> cells;  ///< sorted, unique, contains parity_cell
  int id = -1;              ///< index within Layout::chains()
};

}  // namespace fbf::codes
