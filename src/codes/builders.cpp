#include "codes/builders.h"

#include <algorithm>
#include <cctype>

#include "util/check.h"

namespace fbf::codes {

namespace {

Cell cell(int r, int c) {
  return Cell{static_cast<std::int16_t>(r), static_cast<std::int16_t>(c)};
}

/// Drops cells in removed (shortened, always-zero) logical columns and
/// remaps the remaining logical columns to physical ones.
/// `remap[logical_col]` is the physical column or -1 when removed.
std::vector<Chain> remap_chains(const std::vector<Chain>& logical,
                                const std::vector<int>& remap) {
  std::vector<Chain> out;
  out.reserve(logical.size());
  for (const Chain& ch : logical) {
    Chain next;
    next.dir = ch.dir;
    const int pcol = remap[static_cast<std::size_t>(ch.parity_cell.col)];
    FBF_CHECK(pcol >= 0, "parity cell must survive shortening");
    next.parity_cell = cell(ch.parity_cell.row, pcol);
    for (const Cell& c : ch.cells) {
      const int col = remap[static_cast<std::size_t>(c.col)];
      if (col >= 0) {
        next.cells.push_back(cell(c.row, col));
      }
    }
    out.push_back(std::move(next));
  }
  return out;
}

std::vector<int> shortening_remap(int logical_cols, int first_removed,
                                  int removed) {
  std::vector<int> remap(static_cast<std::size_t>(logical_cols));
  int phys = 0;
  for (int j = 0; j < logical_cols; ++j) {
    const bool gone = j >= first_removed && j < first_removed + removed;
    remap[static_cast<std::size_t>(j)] = gone ? -1 : phys++;
  }
  return remap;
}

}  // namespace

const char* to_string(CodeId id) {
  switch (id) {
    case CodeId::Tip:
      return "TIP";
    case CodeId::Hdd1:
      return "HDD1";
    case CodeId::TripleStar:
      return "TripleStar";
    case CodeId::Star:
      return "STAR";
  }
  return "?";
}

CodeId code_from_string(const std::string& name) {
  std::string low;
  low.reserve(name.size());
  for (char c : name) {
    if (c != '-' && c != '_') {
      low.push_back(static_cast<char>(std::tolower(c)));
    }
  }
  if (low == "tip") {
    return CodeId::Tip;
  }
  if (low == "hdd1") {
    return CodeId::Hdd1;
  }
  if (low == "triplestar") {
    return CodeId::TripleStar;
  }
  if (low == "star") {
    return CodeId::Star;
  }
  FBF_CHECK(false, "unknown code name: " + name);
  return CodeId::Tip;  // unreachable
}

bool is_prime(int p) {
  if (p < 2) {
    return false;
  }
  for (int d = 2; d * d <= p; ++d) {
    if (p % d == 0) {
      return false;
    }
  }
  return true;
}

Layout make_star(int p, int shorten) {
  FBF_CHECK(is_prime(p) && p >= 3, "STAR requires a prime p >= 3");
  FBF_CHECK(shorten >= 0 && shorten <= p - 2,
            "shortening must leave at least two data columns");
  const int rows = p - 1;
  // Logical columns: data 0..p-1, horizontal parity p, diagonal parity p+1,
  // anti-diagonal parity p+2. The imaginary row p-1 (all zero) is implied.
  std::vector<Chain> chains;

  for (int r = 0; r < rows; ++r) {
    Chain ch;
    ch.dir = Direction::Horizontal;
    ch.parity_cell = cell(r, p);
    for (int j = 0; j < p; ++j) {
      ch.cells.push_back(cell(r, j));
    }
    ch.cells.push_back(ch.parity_cell);
    chains.push_back(std::move(ch));
  }

  // Adjuster diagonal D*: cells with (row + col) % p == p-1, real rows only.
  std::vector<Cell> adj_diag;
  for (int j = 0; j < p; ++j) {
    const int r = (p - 1 - j % p + p) % p;
    if (r < rows) {
      adj_diag.push_back(cell(r, j));
    }
  }
  for (int k = 0; k < rows; ++k) {
    Chain ch;
    ch.dir = Direction::Diagonal;
    ch.parity_cell = cell(k, p + 1);
    for (int j = 0; j < p; ++j) {
      const int r = ((k - j) % p + p) % p;
      if (r < rows) {
        ch.cells.push_back(cell(r, j));
      }
    }
    // q_k = S xor diag_k  =>  chain = {q_k} ∪ diag_k ∪ D* (disjoint sets:
    // diag_k is diagonal k != p-1, D* is diagonal p-1).
    ch.cells.insert(ch.cells.end(), adj_diag.begin(), adj_diag.end());
    ch.cells.push_back(ch.parity_cell);
    chains.push_back(std::move(ch));
  }

  // Adjuster anti-diagonal A*: cells with (row - col) % p == p-1.
  std::vector<Cell> adj_anti;
  for (int j = 0; j < p; ++j) {
    const int r = ((p - 1 + j) % p);
    if (r < rows) {
      adj_anti.push_back(cell(r, j));
    }
  }
  for (int k = 0; k < rows; ++k) {
    Chain ch;
    ch.dir = Direction::AntiDiagonal;
    ch.parity_cell = cell(k, p + 2);
    for (int j = 0; j < p; ++j) {
      const int r = (k + j) % p;
      if (r < rows) {
        ch.cells.push_back(cell(r, j));
      }
    }
    ch.cells.insert(ch.cells.end(), adj_anti.begin(), adj_anti.end());
    ch.cells.push_back(ch.parity_cell);
    chains.push_back(std::move(ch));
  }

  const auto remap = shortening_remap(p + 3, p - shorten, shorten);
  auto mapped = shorten > 0 ? remap_chains(chains, remap) : std::move(chains);
  const std::string name =
      std::string(shorten == 0 ? "STAR" : "STAR-short") + "(p=" +
      std::to_string(p) + ",n=" + std::to_string(p + 3 - shorten) + ")";
  return Layout(name, p, rows, p + 3 - shorten, std::move(mapped));
}

Layout make_rtp(int p, int shorten) {
  FBF_CHECK(is_prime(p) && p >= 3, "RTP requires a prime p >= 3");
  FBF_CHECK(shorten >= 0 && shorten <= p - 3,
            "shortening must leave at least two data columns");
  const int rows = p - 1;
  // Logical columns: data 0..p-2, row parity p-1, diagonal parity p,
  // anti-diagonal parity p+1. Diagonal/anti-diagonal chains span the first
  // p columns (data + row parity), RDP-style, so no adjuster is needed.
  std::vector<Chain> chains;

  for (int r = 0; r < rows; ++r) {
    Chain ch;
    ch.dir = Direction::Horizontal;
    ch.parity_cell = cell(r, p - 1);
    for (int j = 0; j < p; ++j) {
      ch.cells.push_back(cell(r, j));
    }
    chains.push_back(std::move(ch));
  }

  for (int k = 0; k < rows; ++k) {  // diagonal p-1 is the missing one
    Chain ch;
    ch.dir = Direction::Diagonal;
    ch.parity_cell = cell(k, p);
    for (int j = 0; j < p; ++j) {
      const int r = ((k - j) % p + p) % p;
      if (r < rows) {
        ch.cells.push_back(cell(r, j));
      }
    }
    ch.cells.push_back(ch.parity_cell);
    chains.push_back(std::move(ch));
  }

  for (int k = 0; k < rows; ++k) {  // anti-diagonal p-1 is the missing one
    Chain ch;
    ch.dir = Direction::AntiDiagonal;
    ch.parity_cell = cell(k, p + 1);
    for (int j = 0; j < p; ++j) {
      const int r = (k + j) % p;
      if (r < rows) {
        ch.cells.push_back(cell(r, j));
      }
    }
    ch.cells.push_back(ch.parity_cell);
    chains.push_back(std::move(ch));
  }

  const auto remap = shortening_remap(p + 2, p - 1 - shorten, shorten);
  auto mapped = shorten > 0 ? remap_chains(chains, remap) : std::move(chains);
  const std::string name =
      std::string(shorten == 0 ? "RTP" : "RTP-short") + "(p=" +
      std::to_string(p) + ",n=" + std::to_string(p + 2 - shorten) + ")";
  return Layout(name, p, rows, p + 2 - shorten, std::move(mapped));
}

Layout make_layout(CodeId id, int p) {
  switch (id) {
    case CodeId::Tip:
      return make_rtp(p, 1);
    case CodeId::Hdd1:
      return make_star(p, 2);
    case CodeId::TripleStar:
      return make_rtp(p, 0);
    case CodeId::Star:
      return make_star(p, 0);
  }
  FBF_CHECK(false, "unreachable code id");
  return make_star(p, 0);
}

int code_disks(CodeId id, int p) {
  switch (id) {
    case CodeId::Tip:
    case CodeId::Hdd1:
      return p + 1;
    case CodeId::TripleStar:
      return p + 2;
    case CodeId::Star:
      return p + 3;
  }
  return 0;
}

}  // namespace fbf::codes
