#include "codes/xor_kernels.h"

#include <atomic>
#include <cstdint>
#include <cstring>

#include "codes/xor_kernels_internal.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace fbf::codes {

namespace detail {

// The scalar variant doubles as the differential-test reference, so it must
// stay genuinely scalar: letting the autovectorizer turn it into SSE code
// would have the tests compare vector code against vector code.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("no-tree-vectorize")))
#endif
void xor_fold_scalar(std::byte* dst, const std::byte* const* srcs,
                     std::size_t nsrcs, std::size_t size, bool accumulate) {
  // Four u64 lanes per iteration; memcpy keeps the accesses well-defined
  // at any alignment and compiles to plain loads/stores.
  std::size_t i = 0;
  for (; i + 32 <= size; i += 32) {
    std::uint64_t v0 = 0;
    std::uint64_t v1 = 0;
    std::uint64_t v2 = 0;
    std::uint64_t v3 = 0;
    if (accumulate) {
      std::memcpy(&v0, dst + i, 8);
      std::memcpy(&v1, dst + i + 8, 8);
      std::memcpy(&v2, dst + i + 16, 8);
      std::memcpy(&v3, dst + i + 24, 8);
    }
    for (std::size_t s = 0; s < nsrcs; ++s) {
      std::uint64_t a;
      std::uint64_t b;
      std::uint64_t c;
      std::uint64_t d;
      std::memcpy(&a, srcs[s] + i, 8);
      std::memcpy(&b, srcs[s] + i + 8, 8);
      std::memcpy(&c, srcs[s] + i + 16, 8);
      std::memcpy(&d, srcs[s] + i + 24, 8);
      v0 ^= a;
      v1 ^= b;
      v2 ^= c;
      v3 ^= d;
    }
    std::memcpy(dst + i, &v0, 8);
    std::memcpy(dst + i + 8, &v1, 8);
    std::memcpy(dst + i + 16, &v2, 8);
    std::memcpy(dst + i + 24, &v3, 8);
  }
  for (; i + 8 <= size; i += 8) {
    std::uint64_t v = 0;
    if (accumulate) {
      std::memcpy(&v, dst + i, 8);
    }
    for (std::size_t s = 0; s < nsrcs; ++s) {
      std::uint64_t a;
      std::memcpy(&a, srcs[s] + i, 8);
      v ^= a;
    }
    std::memcpy(dst + i, &v, 8);
  }
  xor_fold_tail(dst, srcs, nsrcs, i, size, accumulate);
}

namespace {

struct Variant {
  XorKernel kernel;
  FoldFn fold;
};

#if defined(__x86_64__) || defined(_M_X64)
bool cpu_supports(XorKernel k) {
  switch (k) {
    case XorKernel::Avx2:
      return __builtin_cpu_supports("avx2") != 0;
    case XorKernel::Avx512:
      return __builtin_cpu_supports("avx512f") != 0;
    default:
      return k == XorKernel::Scalar;
  }
}
#else
bool cpu_supports(XorKernel k) { return k == XorKernel::Scalar ||
                                        k == XorKernel::Neon; }
#endif

const std::vector<Variant>& variants() {
  static const std::vector<Variant> v = [] {
    std::vector<Variant> out{{XorKernel::Scalar, &xor_fold_scalar}};
#if defined(FBF_XOR_HAVE_NEON)
    if (cpu_supports(XorKernel::Neon)) {
      out.push_back({XorKernel::Neon, &xor_fold_neon});
    }
#endif
#if defined(FBF_XOR_HAVE_AVX2)
    if (cpu_supports(XorKernel::Avx2)) {
      out.push_back({XorKernel::Avx2, &xor_fold_avx2});
    }
#endif
#if defined(FBF_XOR_HAVE_AVX512)
    if (cpu_supports(XorKernel::Avx512)) {
      out.push_back({XorKernel::Avx512, &xor_fold_avx512});
    }
#endif
    return out;
  }();
  return v;
}

std::atomic<const Variant*> g_active{nullptr};

const Variant& active_variant() {
  const Variant* v = g_active.load(std::memory_order_acquire);
  if (v == nullptr) {
    v = &variants().back();  // widest supported
    g_active.store(v, std::memory_order_release);
  }
  return *v;
}

}  // namespace

}  // namespace detail

std::string_view to_string(XorKernel k) {
  switch (k) {
    case XorKernel::Scalar:
      return "scalar";
    case XorKernel::Avx2:
      return "avx2";
    case XorKernel::Avx512:
      return "avx512";
    case XorKernel::Neon:
      return "neon";
  }
  return "unknown";
}

const std::vector<XorKernel>& supported_xor_kernels() {
  static const std::vector<XorKernel> v = [] {
    std::vector<XorKernel> out;
    for (const detail::Variant& var : detail::variants()) {
      out.push_back(var.kernel);
    }
    return out;
  }();
  return v;
}

XorKernel active_xor_kernel() { return detail::active_variant().kernel; }

bool set_xor_kernel(XorKernel k) {
  for (const detail::Variant& var : detail::variants()) {
    if (var.kernel == k) {
      detail::g_active.store(&var, std::memory_order_release);
      return true;
    }
  }
  return false;
}

void xor_into(std::span<std::byte> dst, std::span<const std::byte> src) {
  FBF_CHECK(dst.size() == src.size(), "xor_into size mismatch");
  const std::byte* s = src.data();
  detail::active_variant().fold(dst.data(), &s, 1, dst.size(), true);
}

namespace {

void fold_dispatch(std::span<std::byte> dst,
                   std::span<const std::span<const std::byte>> srcs,
                   bool accumulate) {
  // The chain lengths in every supported layout are small; a fixed stack
  // array keeps the hot path allocation-free.
  constexpr std::size_t kMaxInline = 32;
  const std::byte* inline_ptrs[kMaxInline];
  std::vector<const std::byte*> heap_ptrs;
  const std::byte** ptrs = inline_ptrs;
  if (srcs.size() > kMaxInline) {
    heap_ptrs.resize(srcs.size());
    ptrs = heap_ptrs.data();
  }
  for (std::size_t i = 0; i < srcs.size(); ++i) {
    FBF_CHECK(srcs[i].size() == dst.size(), "xor_fold size mismatch");
    ptrs[i] = srcs[i].data();
  }
  detail::active_variant().fold(dst.data(), ptrs, srcs.size(), dst.size(),
                                accumulate);
}

}  // namespace

void xor_fold(std::span<std::byte> dst,
              std::span<const std::span<const std::byte>> srcs) {
  fold_dispatch(dst, srcs, false);
}

void xor_fold_into(std::span<std::byte> dst,
                   std::span<const std::span<const std::byte>> srcs) {
  fold_dispatch(dst, srcs, true);
}

void xor_fold_batch(std::span<const FoldJob> jobs, util::ThreadPool* pool) {
  if (jobs.empty()) {
    return;
  }
  // One dispatch decision for the whole batch.
  const detail::FoldFn fold = detail::active_variant().fold;
  if (pool != nullptr && jobs.size() > 1) {
    // Splitting across the pool only pays for real byte volume; tiny
    // batches would spend more on queue traffic than on XOR.
    constexpr std::size_t kParallelBytes = std::size_t{1} << 20;
    std::size_t touched = 0;
    for (const FoldJob& j : jobs) {
      touched += j.size * (j.nsrcs + 1);
    }
    if (touched >= kParallelBytes) {
      util::parallel_for(*pool, jobs.size(), [&jobs, fold](std::size_t i) {
        const FoldJob& j = jobs[i];
        fold(j.dst, j.srcs, j.nsrcs, j.size, j.accumulate);
      });
      return;
    }
  }
  for (const FoldJob& j : jobs) {
    fold(j.dst, j.srcs, j.nsrcs, j.size, j.accumulate);
  }
}

bool FoldBatch::conflicts(
    const std::byte* dst, std::size_t size,
    std::span<const std::span<const std::byte>> srcs) const {
  const auto overlap = [](const std::byte* a, std::size_t an,
                          const std::byte* b, std::size_t bn) {
    return a < b + bn && b < a + an;
  };
  for (const Pending& p : jobs_) {
    // New write or read over a pending write (WAW/RAW)?
    if (overlap(dst, size, p.dst, p.size)) {
      return true;
    }
    for (std::size_t s = 0; s < srcs.size(); ++s) {
      if (overlap(srcs[s].data(), srcs[s].size(), p.dst, p.size)) {
        return true;
      }
    }
    // New write over a pending read (WAR): the wave may run in any order.
    for (std::size_t s = 0; s < p.nsrcs; ++s) {
      if (overlap(dst, size, src_pool_[p.src_begin + s], p.size)) {
        return true;
      }
    }
  }
  return false;
}

void FoldBatch::add(std::span<std::byte> dst,
                    std::span<const std::span<const std::byte>> srcs,
                    bool accumulate) {
  for (const auto& s : srcs) {
    FBF_CHECK(s.size() == dst.size(), "xor_fold size mismatch");
  }
  if (!jobs_.empty() && conflicts(dst.data(), dst.size(), srcs)) {
    flush();
  }
  const std::size_t src_begin = src_pool_.size();
  for (const auto& s : srcs) {
    src_pool_.push_back(s.data());
  }
  jobs_.push_back(
      Pending{dst.data(), dst.size(), src_begin, srcs.size(), accumulate});
}

void FoldBatch::flush() {
  if (jobs_.empty()) {
    return;
  }
  dispatch_scratch_.clear();
  dispatch_scratch_.reserve(jobs_.size());
  for (const Pending& p : jobs_) {
    dispatch_scratch_.push_back(FoldJob{p.dst, src_pool_.data() + p.src_begin,
                                        p.nsrcs, p.size, p.accumulate});
  }
  xor_fold_batch(dispatch_scratch_, pool_);
  jobs_.clear();
  src_pool_.clear();
}

}  // namespace fbf::codes
