// Layout: the chain structure of one 3DFT erasure code instance.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "codes/geometry.h"
#include "util/check.h"

namespace fbf::codes {

/// Immutable description of a stripe's chain structure. Construction
/// validates the invariants every consumer relies on:
///  - every chain is sorted/unique and contains its parity cell,
///  - parity cells are distinct across chains,
///  - an encode order exists (parity dependencies are acyclic),
///  - every data cell is covered by at least one chain per direction.
class Layout {
 public:
  Layout(std::string name, int p, int rows, int cols,
         std::vector<Chain> chains);

  const std::string& name() const { return name_; }
  int p() const { return p_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int num_cells() const { return rows_ * cols_; }
  int num_data_cells() const { return num_cells() - num_parity_cells(); }
  int num_parity_cells() const { return static_cast<int>(chains_.size()); }

  // cell_index/in_bounds/chain are defined inline: the simulators call
  // them per planned read and per event, where an opaque cross-TU call
  // costs more than the two-instruction body.

  /// Dense index of a cell in [0, num_cells()).
  int cell_index(Cell c) const {
    FBF_CHECK(in_bounds(c), "cell_index out of bounds");
    return c.row * cols_ + c.col;
  }
  Cell cell_at(int index) const;
  bool in_bounds(Cell c) const {
    return c.row >= 0 && c.row < rows_ && c.col >= 0 && c.col < cols_;
  }

  CellKind kind(Cell c) const;

  const std::vector<Chain>& chains() const { return chains_; }
  const Chain& chain(int id) const {
    FBF_CHECK(id >= 0 && id < static_cast<int>(chains_.size()),
              "chain id out of range");
    return chains_[static_cast<std::size_t>(id)];
  }

  /// Chain ids belonging to one direction.
  std::span<const int> chains_in(Direction d) const;

  /// Ids of every chain containing `c` (any direction).
  std::span<const int> chains_containing(Cell c) const;

  /// Ids of chains in direction `d` containing `c`.
  std::vector<int> chains_containing(Cell c, Direction d) const;

  /// Chain ids in an order where each chain's parity cell can be computed
  /// from data cells and previously produced parity cells.
  const std::vector<int>& encode_order() const { return encode_order_; }

  /// All cells of one physical column (disk), top to bottom.
  std::vector<Cell> column_cells(int col) const;

  /// Update complexity of a data cell: how many parity cells change when
  /// it is written (= chains containing it). TIP-style layouts achieve
  /// the 3DFT optimum of <= 3; STAR's adjuster-diagonal cells sit on every
  /// diagonal (or anti-diagonal) chain and cost p+1 parity updates — the
  /// exact contrast the TIP paper's "optimal update complexity" draws.
  int update_complexity(Cell c) const;

  /// Mean update complexity over all data cells.
  double average_update_complexity() const;

 private:
  std::string name_;
  int p_;
  int rows_;
  int cols_;
  std::vector<Chain> chains_;
  std::vector<CellKind> kind_;                 // by cell index
  std::vector<std::vector<int>> by_direction_; // direction -> chain ids
  std::vector<std::vector<int>> containing_;   // cell index -> chain ids
  std::vector<int> encode_order_;
};

}  // namespace fbf::codes
