// CSV import/export of partial-stripe-error traces, so experiments can be
// replayed from files (e.g. traces derived from real latent-sector-error
// logs) instead of the synthetic generator.
//
// Format, one error per line, header required:
//   stripe,col,first_row,num_chunks,detect_time_ms
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/errors.h"

namespace fbf::workload {

void write_error_trace(std::ostream& os,
                       const std::vector<StripeError>& trace);

/// Parses a trace; throws CheckError on malformed rows. `layout` bounds-
/// checks columns and rows.
std::vector<StripeError> read_error_trace(std::istream& is,
                                          const codes::Layout& layout);

/// Convenience file wrappers.
void save_error_trace(const std::string& path,
                      const std::vector<StripeError>& trace);
std::vector<StripeError> load_error_trace(const std::string& path,
                                          const codes::Layout& layout);

}  // namespace fbf::workload
