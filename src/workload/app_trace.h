// Application I/O traces for the online-recovery extension: foreground
// requests that contend with reconstruction for the disks.
#pragma once

#include <cstdint>
#include <vector>

#include "codes/layout.h"
#include "util/rng.h"

namespace fbf::workload {

struct AppRequest {
  std::uint64_t stripe = 0;
  codes::Cell cell;
  bool is_read = true;
  double arrival_ms = 0.0;
  /// Response-time SLO for this request, relative to arrival; 0 = no
  /// deadline. A request completing after arrival_ms + deadline_ms counts
  /// as a deadline miss (SimMetrics::app_deadline_miss).
  double deadline_ms = 0.0;
};

struct AppTraceConfig {
  std::uint64_t num_stripes = 1 << 20;
  int num_requests = 10000;
  double read_fraction = 0.7;
  double zipf_skew = 0.9;            ///< hot-spot skew over stripes
  double mean_interarrival_ms = 2.0; ///< Poisson arrivals
  /// Stamped onto every generated request (0 = no deadlines). Rate sweeps
  /// vary mean_interarrival_ms against a fixed deadline to trace out the
  /// SLO cliff.
  double deadline_ms = 0.0;
  /// Fraction of writes that re-target one of the last 64 written chunks
  /// instead of a fresh Zipf draw, so a write-back cache sees dirty-line
  /// reuse (restamps, write hits). 0 draws no extra RNG values and keeps
  /// the trace byte-identical to the pre-write-path generator.
  double rewrite_fraction = 0.0;
  std::uint64_t seed = 7;
};

/// Zipf-over-stripes, uniform-over-cells request stream with Poisson
/// arrivals, sorted by arrival time.
std::vector<AppRequest> generate_app_trace(const codes::Layout& layout,
                                           const AppTraceConfig& config);

}  // namespace fbf::workload
