#include "workload/app_trace.h"

#include "util/check.h"

namespace fbf::workload {

std::vector<AppRequest> generate_app_trace(const codes::Layout& layout,
                                           const AppTraceConfig& config) {
  FBF_CHECK(config.num_requests >= 0, "negative request count");
  FBF_CHECK(config.read_fraction >= 0.0 && config.read_fraction <= 1.0,
            "read fraction must be a probability");
  FBF_CHECK(config.mean_interarrival_ms > 0.0,
            "interarrival mean must be positive");
  FBF_CHECK(config.deadline_ms >= 0.0, "deadline must be non-negative");
  FBF_CHECK(config.rewrite_fraction >= 0.0 && config.rewrite_fraction <= 1.0,
            "rewrite fraction must be a probability");

  util::Rng rng(config.seed);
  std::vector<AppRequest> trace;
  trace.reserve(static_cast<std::size_t>(config.num_requests));
  // Ring of recent write targets for rewrite_fraction; untouched (no RNG
  // draws) when the knob is 0, preserving byte-identical default traces.
  constexpr std::size_t kRewriteWindow = 64;
  std::vector<std::pair<std::uint64_t, codes::Cell>> recent_writes;
  std::size_t recent_next = 0;
  double clock_ms = 0.0;
  for (int i = 0; i < config.num_requests; ++i) {
    AppRequest r;
    r.stripe = rng.zipf(static_cast<std::size_t>(config.num_stripes),
                        config.zipf_skew);
    r.cell = layout.cell_at(static_cast<int>(
        rng.uniform_int(0, layout.num_cells() - 1)));
    r.is_read = rng.bernoulli(config.read_fraction);
    if (!r.is_read && config.rewrite_fraction > 0.0) {
      if (!recent_writes.empty() && rng.bernoulli(config.rewrite_fraction)) {
        const auto& [s, c] = recent_writes[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(recent_writes.size()) - 1))];
        r.stripe = s;
        r.cell = c;
      }
      if (recent_writes.size() < kRewriteWindow) {
        recent_writes.emplace_back(r.stripe, r.cell);
      } else {
        recent_writes[recent_next] = {r.stripe, r.cell};
        recent_next = (recent_next + 1) % kRewriteWindow;
      }
    }
    clock_ms += rng.exponential(config.mean_interarrival_ms);
    r.arrival_ms = clock_ms;
    r.deadline_ms = config.deadline_ms;
    trace.push_back(r);
  }
  return trace;
}

}  // namespace fbf::workload
